// The Theorem 1.2 reduction in action: sorting integers with a
// deletion-only DPSS structure over float (power-of-two) weights.
//
// The reduction needs float weights and per-query (α, β), so it runs on
// the "halt" backend (or any external registration with both capabilities).
//
//   ./build/example_integer_sorting [backend]   (default: halt)

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/integer_sort.h"
#include "util/random.h"

namespace {

std::string g_backend = "halt";

bool RunSort(const char* label, std::vector<uint64_t> values, uint64_t seed) {
  dpss::IntegerSortStats stats;
  const std::vector<uint64_t> sorted =
      dpss::SortIntegersDescendingViaDpss(values, seed, &stats, g_backend);

  std::vector<uint64_t> expected = values;
  std::sort(expected.rbegin(), expected.rend());
  const bool ok = sorted == expected;
  std::printf(
      "%-28s n=%5zu  queries=%7llu (%.2f/item)  swaps=%7llu (%.2f/item)  %s\n",
      label, values.size(), static_cast<unsigned long long>(stats.queries),
      static_cast<double>(stats.queries) / values.size(),
      static_cast<unsigned long long>(stats.swaps),
      static_cast<double>(stats.swaps) / values.size(),
      ok ? "OK" : "MISMATCH");
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) g_backend = argv[1];
  dpss::RandomEngine rng(123);

  // Distinct exponents — the paper's exact setting (Lemma 5.1 applies:
  // expected <= 2 queries and O(1) swaps per item).
  std::vector<uint64_t> distinct;
  for (uint64_t a = 0; a < 250; ++a) distinct.push_back(a);
  for (size_t i = distinct.size(); i > 1; --i) {
    std::swap(distinct[i - 1], distinct[rng.NextBelow(i)]);
  }
  bool ok = RunSort("distinct exponents:", distinct, 1);

  // With duplicates: still a correct sort; per-item costs stay O(1).
  std::vector<uint64_t> dup;
  for (int i = 0; i < 4000; ++i) dup.push_back(rng.NextBelow(200));
  ok &= RunSort("4000 values, range [0,200):", dup, 2);

  std::vector<uint64_t> skew;
  for (int i = 0; i < 2000; ++i) skew.push_back(rng.NextBelow(8));
  ok &= RunSort("2000 values, range [0,8):", skew, 3);

  if (!ok) {
    std::printf("FAILURE\n");
    return 1;
  }
  std::printf("all sorts verified against std::sort\n");
  return 0;
}
