// Streaming scenario: a sliding window of weighted events with per-tick
// re-parameterised sampling, driven through the Sampler interface with
// batched mutations.
//
// Events (e.g. flow records in network measurement, one of the paper's
// motivating domains) arrive continuously and expire after a fixed window.
// Live flows keep receiving packets, so their byte counters — the sampling
// weights — grow in place. Each tick assembles ONE ApplyBatch of inserts,
// expirations and in-place weight updates (the shape a service's ingest
// path would take off a queue), then draws a subset where each event is
// kept with probability proportional to its byte count; the *target sample
// rate* changes tick to tick via the query parameters — heavier sampling
// under suspected anomalies, lighter otherwise. With the "halt" backend
// every op in the batch is O(1) and each re-parameterised query is
// O(1 + μ); a fixed-probability backend would rebuild per tick.
//
//   ./build/example_dynamic_stream [backend]   (default: halt; needs a
//                                               parameterized backend)

#include <cstdio>
#include <deque>
#include <unordered_map>
#include <vector>

#include "core/sampler.h"
#include "util/random.h"

int main(int argc, char** argv) {
  constexpr int kWindow = 50000;   // events kept live
  constexpr int kTicks = 40;
  constexpr int kArrivalsPerTick = 5000;
  constexpr int kWeightUpdatesPerTick = 10000;  // in-place counter growth

  dpss::SamplerSpec spec;
  spec.seed = 99;
  const char* backend = argc > 1 ? argv[1] : "halt";
  auto sampler = dpss::MakeSampler(backend, spec);
  if (sampler == nullptr || !sampler->capabilities().parameterized) {
    std::printf("backend '%s' unavailable or not parameterized\n", backend);
    return 1;
  }
  dpss::RandomEngine events(7);
  std::deque<dpss::ItemId> window;

  // Pre-fill the window with one batch.
  {
    std::vector<uint64_t> weights;
    weights.reserve(kWindow);
    for (int i = 0; i < kWindow; ++i) {
      weights.push_back(1 + events.NextBelow(1 << 16));
    }
    std::vector<dpss::ItemId> ids;
    if (!sampler->InsertBatch(weights, &ids).ok()) return 1;
    window.assign(ids.begin(), ids.end());
  }

  uint64_t sampled_total = 0;
  uint64_t total_ops = 0;
  std::vector<dpss::Op> batch;
  std::vector<dpss::ItemId> arrivals;
  std::vector<dpss::ItemId> sample;
  std::unordered_map<dpss::ItemId, uint64_t> grown;
  for (int tick = 0; tick < kTicks; ++tick) {
    batch.clear();
    arrivals.clear();

    // Window slide: arrivals + expirations, one op each.
    for (int i = 0; i < kArrivalsPerTick; ++i) {
      batch.push_back(dpss::Op::Insert(1 + events.NextBelow(1 << 16)));
      batch.push_back(dpss::Op::Erase(window[i]));
    }

    // Packet arrivals on live flows: byte counters grow in place. These
    // dominate the update traffic; each is O(1) on "halt". (The first
    // kArrivalsPerTick window entries are already queued for erase, so
    // draw update targets from the survivors.) A flow hit several times
    // this tick must end at base + Σ increments, so the growth is
    // accumulated per flow before it becomes one SetWeight op — SetWeight
    // carries the final value, and a later duplicate op would otherwise
    // overwrite the earlier increment.
    grown.clear();
    for (int i = 0; i < kWeightUpdatesPerTick; ++i) {
      const size_t pick =
          kArrivalsPerTick +
          events.NextBelow(window.size() - kArrivalsPerTick);
      const dpss::ItemId id = window[pick];
      auto it = grown.find(id);
      if (it == grown.end()) {
        const auto w = sampler->GetWeight(id);
        if (!w.ok()) return 1;
        it = grown.emplace(id, w->mult).first;
      }
      it->second += 1 + events.NextBelow(1 << 10);
    }
    for (const auto& [id, bytes] : grown) {
      batch.push_back(dpss::Op::SetWeight(id, bytes));
    }

    // One batched application per tick.
    total_ops += batch.size();
    if (!sampler->ApplyBatch(batch, &arrivals).ok()) return 1;
    window.erase(window.begin(), window.begin() + kArrivalsPerTick);
    window.insert(window.end(), arrivals.begin(), arrivals.end());

    // Target expected sample size for this tick: 4 normally, 64 during the
    // simulated anomaly in ticks 20-24. With (α, β) = (1/μ, 0) the expected
    // sample size is exactly μ.
    const bool anomaly = tick >= 20 && tick < 25;
    const uint64_t mu = anomaly ? 64 : 4;
    if (!sampler->SampleInto({1, mu}, {0, 1}, &sample).ok()) return 1;
    sampled_total += sample.size();
    if (tick % 5 == 0 || anomaly) {
      std::printf("tick %2d: window=%llu target_mu=%2llu sampled=%zu\n", tick,
                  static_cast<unsigned long long>(sampler->size()),
                  static_cast<unsigned long long>(mu), sample.size());
    }
  }
  std::printf("total sampled across %d ticks: %llu\n", kTicks,
              static_cast<unsigned long long>(sampled_total));
  std::printf("window churn: %llu ops across %d ApplyBatch calls\n",
              static_cast<unsigned long long>(total_ops), kTicks);
  if (!sampler->CheckInvariants().ok()) return 1;
  std::printf("invariants OK\n");
  return 0;
}
