// Streaming scenario: a sliding window of weighted events with per-tick
// re-parameterised sampling.
//
// Events (e.g. flow records in network measurement, one of the paper's
// motivating domains) arrive continuously and expire after a fixed window.
// Live flows keep receiving packets, so their byte counters — the sampling
// weights — grow in place: SetWeight updates them in O(1) without
// disturbing the flow's id. Every tick the monitor draws a subset where
// each event is kept with probability proportional to its byte count, but
// the *target sample rate* changes tick to tick via the query parameters —
// heavier sampling under suspected anomalies, lighter sampling otherwise.
// With DPSS window maintenance (insert + expire), in-place weight growth,
// and each re-parameterised query are all cheap; a fixed-probability
// sampler would rebuild the whole window per tick.
//
//   ./build/examples/dynamic_stream

#include <cstdio>
#include <deque>

#include "core/dpss_sampler.h"
#include "util/random.h"

int main() {
  constexpr int kWindow = 50000;   // events kept live
  constexpr int kTicks = 40;
  constexpr int kArrivalsPerTick = 5000;
  constexpr int kWeightUpdatesPerTick = 10000;  // in-place counter growth

  dpss::DpssSampler sampler(/*seed=*/99);
  dpss::RandomEngine events(7);
  std::deque<dpss::DpssSampler::ItemId> window;

  // Pre-fill the window.
  for (int i = 0; i < kWindow; ++i) {
    window.push_back(sampler.Insert(1 + events.NextBelow(1 << 16)));
  }

  uint64_t sampled_total = 0;
  for (int tick = 0; tick < kTicks; ++tick) {
    // Window slide: kArrivalsPerTick inserts + expirations, all O(1).
    for (int i = 0; i < kArrivalsPerTick; ++i) {
      window.push_back(sampler.Insert(1 + events.NextBelow(1 << 16)));
      sampler.Erase(window.front());
      window.pop_front();
    }

    // Packet arrivals on live flows: byte counters grow in place. These
    // dominate the update traffic and cost O(1) each via SetWeight.
    for (int i = 0; i < kWeightUpdatesPerTick; ++i) {
      const auto id = window[events.NextBelow(window.size())];
      const uint64_t bytes = sampler.GetWeight(id).mult;
      sampler.SetWeight(id, bytes + 1 + events.NextBelow(1 << 10));
    }

    // Target expected sample size for this tick: 4 normally, 64 during the
    // simulated anomaly in ticks 20-24. With (α, β) = (1/μ, 0) the expected
    // sample size is exactly μ.
    const bool anomaly = tick >= 20 && tick < 25;
    const uint64_t mu = anomaly ? 64 : 4;
    const auto sample = sampler.Sample({1, mu}, {0, 1});
    sampled_total += sample.size();
    if (tick % 5 == 0 || anomaly) {
      std::printf("tick %2d: window=%llu target_mu=%2llu sampled=%zu\n", tick,
                  static_cast<unsigned long long>(sampler.size()),
                  static_cast<unsigned long long>(mu), sample.size());
    }
  }
  std::printf("total sampled across %d ticks: %llu\n", kTicks,
              static_cast<unsigned long long>(sampled_total));
  std::printf("window churn: %d updates (%d in-place), rebuilds: %llu\n",
              kTicks * (kArrivalsPerTick * 2 + kWeightUpdatesPerTick),
              kTicks * kWeightUpdatesPerTick,
              static_cast<unsigned long long>(sampler.rebuild_count()));
  sampler.CheckInvariants();
  std::printf("invariants OK\n");
  return 0;
}
