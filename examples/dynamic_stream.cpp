// Streaming scenario: a sliding window of weighted events with per-tick
// re-parameterised sampling.
//
// Events (e.g. flow records in network measurement, one of the paper's
// motivating domains) arrive continuously and expire after a fixed window.
// Every tick the monitor draws a subset where each event is kept with
// probability proportional to its byte count, but the *target sample rate*
// changes tick to tick via the query parameters — heavier sampling under
// suspected anomalies, lighter sampling otherwise. With DPSS both window
// maintenance (insert + expire) and each re-parameterised query are cheap;
// a fixed-probability sampler would rebuild the whole window per tick.
//
//   ./build/examples/dynamic_stream

#include <cstdio>
#include <deque>

#include "core/dpss_sampler.h"
#include "util/random.h"

int main() {
  constexpr int kWindow = 50000;   // events kept live
  constexpr int kTicks = 40;
  constexpr int kArrivalsPerTick = 5000;

  dpss::DpssSampler sampler(/*seed=*/99);
  dpss::RandomEngine events(7);
  std::deque<dpss::DpssSampler::ItemId> window;

  // Pre-fill the window.
  for (int i = 0; i < kWindow; ++i) {
    window.push_back(sampler.Insert(1 + events.NextBelow(1 << 16)));
  }

  uint64_t sampled_total = 0;
  for (int tick = 0; tick < kTicks; ++tick) {
    // Window slide: kArrivalsPerTick inserts + expirations, all O(1).
    for (int i = 0; i < kArrivalsPerTick; ++i) {
      window.push_back(sampler.Insert(1 + events.NextBelow(1 << 16)));
      sampler.Erase(window.front());
      window.pop_front();
    }

    // Target expected sample size for this tick: 4 normally, 64 during the
    // simulated anomaly in ticks 20-24. With (α, β) = (1/μ, 0) the expected
    // sample size is exactly μ.
    const bool anomaly = tick >= 20 && tick < 25;
    const uint64_t mu = anomaly ? 64 : 4;
    const auto sample = sampler.Sample({1, mu}, {0, 1});
    sampled_total += sample.size();
    if (tick % 5 == 0 || anomaly) {
      std::printf("tick %2d: window=%llu target_mu=%2llu sampled=%zu\n", tick,
                  static_cast<unsigned long long>(sampler.size()),
                  static_cast<unsigned long long>(mu), sample.size());
    }
  }
  std::printf("total sampled across %d ticks: %llu\n", kTicks,
              static_cast<unsigned long long>(sampled_total));
  std::printf("window churn: %d updates, rebuilds: %llu\n",
              kTicks * kArrivalsPerTick * 2,
              static_cast<unsigned long long>(sampler.rebuild_count()));
  sampler.CheckInvariants();
  std::printf("invariants OK\n");
  return 0;
}
