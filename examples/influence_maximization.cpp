// Influence maximization on a dynamic social network (paper Appendix A.1).
//
// Builds a preferential-attachment network, selects seed nodes by greedy
// coverage of DPSS-sampled reverse-reachable sets, then streams in new
// edges — each an O(1) DPSS update even though it changes the activation
// probability of every sibling in-edge — and re-selects.
//
// The per-node samplers come from the dpss::Sampler backend registry; pass
// a backend name to compare HALT against the baselines on the same
// workload (the fixed-probability ones pay Ω(deg) per edge update).
//
//   ./build/example_influence_maximization [backend]   (default: halt)

#include <cstdio>

#include "apps/graph.h"
#include "apps/influence_max.h"

int main(int argc, char** argv) {
  constexpr uint32_t kNodes = 2000;
  constexpr int kSeeds = 8;
  constexpr int kRRSets = 3000;

  const dpss::Graph g =
      dpss::Graph::PreferentialAttachment(kNodes, /*edges_per_node=*/3,
                                          /*max_weight=*/8, /*seed=*/7);
  std::printf("graph: %u nodes, %llu directed edges\n", g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()));

  const char* backend = argc > 1 ? argv[1] : "halt";
  std::printf("sampler backend: %s\n", backend);
  dpss::InfluenceMaximizer im(kNodes, /*seed=*/11, backend);
  for (uint32_t u = 0; u < kNodes; ++u) {
    for (const auto& e : g.OutEdges(u)) im.AddEdge(u, e.to, e.weight);
  }

  dpss::RandomEngine rng(13);
  auto result = im.SelectSeeds(kSeeds, kRRSets, rng);
  std::printf("initial seeds:");
  for (uint32_t s : result.seeds) std::printf(" %u", s);
  std::printf("\nestimated influence: %.1f nodes (%.2f%% of graph)\n",
              result.estimated_influence,
              100.0 * result.estimated_influence / kNodes);

  // Dynamic phase: a burst of new edges around a hub. Every AddEdge is an
  // O(1) DPSS update that implicitly rescales all activation probabilities
  // into the touched nodes.
  const uint32_t hub = result.seeds.empty() ? 0 : result.seeds[0];
  dpss::RandomEngine egen(17);
  for (int i = 0; i < 5000; ++i) {
    const uint32_t u = static_cast<uint32_t>(egen.NextBelow(kNodes));
    const uint32_t v = egen.NextBelow(4) == 0
                           ? hub
                           : static_cast<uint32_t>(egen.NextBelow(kNodes));
    if (u != v) im.AddEdge(u, v, 1 + egen.NextBelow(8));
  }
  std::printf("inserted 5000 edges (each an O(1) DPSS update)\n");

  result = im.SelectSeeds(kSeeds, kRRSets, rng);
  std::printf("re-selected seeds:");
  for (uint32_t s : result.seeds) std::printf(" %u", s);
  std::printf("\nestimated influence: %.1f nodes (%.2f%% of graph)\n",
              result.estimated_influence,
              100.0 * result.estimated_influence / kNodes);
  return 0;
}
