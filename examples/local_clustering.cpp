// Local clustering with subset-sampling probability propagation
// (paper Appendix A.2).
//
// Builds a planted-partition graph with two communities, estimates
// personalized-PageRank mass from a seed with quantum pushes — one PSS
// query with on-the-fly parameter α = 1/residue per push — and extracts the
// best-conductance sweep cluster. Reports how well the cluster recovers the
// seed's planted community.
//
// The per-node samplers come from the dpss::Sampler backend registry; the
// push loop re-parameterises α on every query, so only parameterized
// backends ("halt", "naive") qualify.
//
//   ./build/example_local_clustering [backend]   (default: halt)

#include <cstdio>

#include "apps/graph.h"
#include "apps/local_clustering.h"

int main(int argc, char** argv) {
  constexpr uint32_t kNodes = 600;
  const dpss::Graph g = dpss::Graph::PlantedPartition(
      kNodes, /*p_in=*/0.06, /*p_out=*/0.002, /*seed=*/5);
  std::printf("planted-partition graph: %u nodes, %llu directed edges\n",
              g.num_nodes(), static_cast<unsigned long long>(g.num_edges()));

  const char* backend = argc > 1 ? argv[1] : "halt";
  std::printf("sampler backend: %s\n", backend);
  dpss::LocalClusteringEngine engine(g, /*seed=*/9, backend);
  dpss::RandomEngine rng(21);

  const uint32_t seed_node = 17;  // inside community 0 (nodes 0..299)
  dpss::LocalClusteringEngine::PushStats stats;
  const auto mass = engine.EstimateMass(seed_node, /*num_quanta=*/200000,
                                        /*teleport_recip=*/6, rng, &stats);
  std::printf("pushes: %llu, PSS queries: %llu\n",
              static_cast<unsigned long long>(stats.pushes),
              static_cast<unsigned long long>(stats.queries));

  const auto sweep = engine.SweepCluster(mass);
  uint32_t in_community = 0;
  for (uint32_t u : sweep.cluster) in_community += u < kNodes / 2 ? 1 : 0;
  std::printf("cluster size: %zu, conductance: %.4f\n", sweep.cluster.size(),
              sweep.conductance);
  std::printf("%u/%zu cluster members in the seed's planted community "
              "(precision %.1f%%)\n",
              in_community, sweep.cluster.size(),
              sweep.cluster.empty()
                  ? 0.0
                  : 100.0 * in_community / sweep.cluster.size());

  // Dynamic phase: densify the link between the communities and observe the
  // conductance of the recovered cluster degrade.
  dpss::RandomEngine egen(33);
  for (int i = 0; i < 3000; ++i) {
    const uint32_t u = static_cast<uint32_t>(egen.NextBelow(kNodes / 2));
    const uint32_t v = static_cast<uint32_t>(kNodes / 2 +
                                             egen.NextBelow(kNodes / 2));
    engine.AddEdge(u, v, 1);
    engine.AddEdge(v, u, 1);
  }
  std::printf("added 3000 cross-community edges (O(1) updates each)\n");
  const auto sweep2 = engine.Cluster(seed_node, 200000, 6, rng);
  std::printf("new cluster size: %zu, conductance: %.4f\n",
              sweep2.cluster.size(), sweep2.conductance);
  return 0;
}
