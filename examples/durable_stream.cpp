// durable_stream — kill-and-recover demonstration for the persistence
// layer (src/persist/): a weighted stream served by a DurableSampler that
// is repeatedly KILLED mid-write (a forked child calls _exit with no
// cleanup — no destructors, no flushes) and then recovered by the parent
// from whatever bytes made it to disk.
//
//   ./example_durable_stream [backend] [state-dir]
//
// Each round the child applies a burst of inserts/updates/erases (fsync'd
// per record: wal_sync_every = 1), checkpoints occasionally, and dies at a
// pseudo-random op. The parent reopens the directory, prints what
// recovery found (snapshot epoch, WAL records replayed, torn bytes
// dropped), audits the invariants, and hands the directory to the next
// round. The final state then answers a PSS query — sampling hot items
// from a stream no single process survived.

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/sampler.h"
#include "persist/recovery.h"

namespace {

constexpr int kRounds = 6;
constexpr int kOpsPerRound = 400;

dpss::persist::DurableOptions Options(const std::string& backend) {
  dpss::persist::DurableOptions opts;
  opts.backend = backend;
  opts.spec.seed = 7;
  opts.wal_sync_every = 1;          // every acked op survives the kill
  opts.checkpoint_wal_bytes = 1 << 15;  // bound replay time
  return opts;
}

// The child's workload: deterministic per round, killed mid-flight.
void RunDoomedChild(const std::string& dir, const std::string& backend,
                    int round) {
  auto opened = dpss::persist::RecoveryManager::Open(dir, Options(backend));
  if (!opened.ok()) _exit(2);
  dpss::persist::DurableSampler& s = **opened;

  dpss::RandomEngine rng(1000 + round);
  const uint64_t die_at = 1 + rng.NextBelow(kOpsPerRound);
  std::vector<dpss::ItemId> live;
  for (uint64_t op = 0; op < static_cast<uint64_t>(kOpsPerRound); ++op) {
    if (op == die_at) _exit(0);  // the "crash": no cleanup of any kind
    const uint64_t dice = rng.NextBelow(10);
    if (dice < 6 || live.size() < 8) {
      const auto id = s.Insert(1 + rng.NextBelow(1 << 12));
      if (id.ok()) live.push_back(*id);
    } else if (dice < 8) {
      (void)s.SetWeight(live[rng.NextBelow(live.size())],
                        1 + rng.NextBelow(1 << 12));
    } else {
      const size_t pick = rng.NextBelow(live.size());
      (void)s.Erase(live[pick]);
      live[pick] = live.back();
      live.pop_back();
    }
    if (op % 128 == 96) (void)s.Checkpoint();
  }
  _exit(0);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string backend = argc > 1 ? argv[1] : "halt";
  const std::string dir =
      argc > 2 ? argv[2] : std::string("durable_stream_") + backend;
  std::printf("durable_stream: backend=%s dir=%s\n", backend.c_str(),
              dir.c_str());

  for (int round = 0; round < kRounds; ++round) {
    const pid_t child = fork();
    if (child < 0) {
      std::perror("fork");
      return 1;
    }
    if (child == 0) {
      RunDoomedChild(dir, backend, round);
    }
    int wstatus = 0;
    if (waitpid(child, &wstatus, 0) != child) {
      std::perror("waitpid");
      return 1;
    }

    // The parent recovers from whatever the dead child left behind.
    auto opened = dpss::persist::RecoveryManager::Open(dir, Options(backend));
    if (!opened.ok()) {
      std::printf("round %d: RECOVERY FAILED: %s\n", round,
                  opened.status().message());
      return 1;
    }
    const dpss::persist::RecoveryStats& rs = (*opened)->recovery_stats();
    if (!(*opened)->CheckInvariants().ok()) {
      std::printf("round %d: invariant audit failed\n", round);
      return 1;
    }
    std::printf(
        "round %d: recovered epoch %llu — %llu item(s), Σw=%s, replayed "
        "%llu wal record(s), truncated %llu torn byte(s)\n",
        round, (unsigned long long)rs.snapshot_epoch,
        (unsigned long long)(*opened)->size(),
        (*opened)->TotalWeight().ToDecimalString().c_str(),
        (unsigned long long)rs.records_replayed,
        (unsigned long long)rs.wal_bytes_truncated);
    // Handle closes cleanly here; the next round's child reopens the dir.
  }

  // The stream's survivors answer queries like any other sampler.
  auto final_state =
      dpss::persist::RecoveryManager::Open(dir, Options(backend));
  if (!final_state.ok()) return 1;
  std::vector<dpss::ItemId> sample;
  if (!(*final_state)->SampleInto({1, 64}, {0, 1}, &sample).ok()) return 1;
  std::printf("final state: %llu item(s); PSS query at α=1/64 drew %zu "
              "survivor(s) of %d kill(s)\n",
              (unsigned long long)(*final_state)->size(), sample.size(),
              kRounds);
  return 0;
}
