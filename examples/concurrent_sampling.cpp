// Concurrent sampling with the sharded wrapper.
//
// Spawns writer threads (Insert/Erase/SetWeight churn) and sampler
// threads (full PSS queries) against ONE sampler instance — something the
// plain backends forbid (their query paths share scratch state) but
// "sharded[K]:<inner>" supports on every method. Prints the aggregate
// throughput each side achieved and cross-checks the final bookkeeping.
//
//   ./build/example_concurrent_sampling [backend] [writers] [samplers]
//   (defaults: sharded:halt 2 4)

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "core/sampler.h"
#include "util/random.h"

int main(int argc, char** argv) {
  const char* backend = argc > 1 ? argv[1] : "sharded:halt";
  const int writers = argc > 2 ? std::atoi(argv[2]) : 2;
  const int samplers = argc > 3 ? std::atoi(argv[3]) : 4;

  dpss::SamplerSpec spec;
  spec.seed = 7;
  spec.num_shards = 16;
  auto maybe = dpss::MakeSamplerChecked(backend, spec);
  if (!maybe.ok()) {
    std::printf("cannot create '%s': %s\n", backend,
                maybe.status().message());
    return 1;
  }
  auto sampler = std::move(*maybe);
  std::printf("backend: %s\n", sampler->DebugString().c_str());

  // Preload.
  std::vector<uint64_t> weights(1 << 16);
  dpss::RandomEngine init(3);
  for (auto& w : weights) w = 1 + init.NextBelow(1 << 12);
  std::vector<dpss::ItemId> ids;
  if (!sampler->InsertBatch(weights, &ids).ok()) return 1;

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> total_updates{0};
  std::atomic<uint64_t> total_queries{0};
  std::vector<std::thread> threads;

  for (int w = 0; w < writers; ++w) {
    threads.emplace_back([&, w] {
      dpss::RandomEngine rng(100 + static_cast<uint64_t>(w));
      uint64_t done = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const dpss::ItemId id = ids[rng.NextBelow(ids.size())];
        // Weight updates shift every item's probability at once — the
        // dynamic regime the paper is about — and touch only the owning
        // shard's lock here.
        if (sampler->SetWeight(id, 1 + rng.NextBelow(1 << 12)).ok()) {
          ++done;
        }
      }
      total_updates.fetch_add(done, std::memory_order_relaxed);
    });
  }
  for (int s = 0; s < samplers; ++s) {
    threads.emplace_back([&] {
      std::vector<dpss::ItemId> out;
      uint64_t done = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        if (sampler->SampleInto({1, 1}, {0, 1}, &out).ok()) ++done;
      }
      total_queries.fetch_add(done, std::memory_order_relaxed);
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : threads) t.join();

  std::printf("%d writers:  %llu weight updates in 0.5s\n", writers,
              static_cast<unsigned long long>(total_updates.load()));
  std::printf("%d samplers: %llu exactly-weighted queries in 0.5s\n",
              samplers,
              static_cast<unsigned long long>(total_queries.load()));

  if (!sampler->CheckInvariants().ok()) return 1;
  std::printf("final: %s\n", sampler->DebugString().c_str());
  return 0;
}
