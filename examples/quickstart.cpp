// Quickstart for the dpss library.
//
// Builds a DpssSampler, runs parameterized subset-sampling queries with two
// different (α, β) settings, performs O(1) updates that shift every item's
// probability at once, and queries again.
//
//   ./build/examples/quickstart

#include <cstdio>
#include <vector>

#include "core/dpss_sampler.h"

namespace {

void PrintSample(const char* label,
                 const std::vector<dpss::DpssSampler::ItemId>& sample) {
  std::printf("%-28s {", label);
  for (size_t i = 0; i < sample.size(); ++i) {
    std::printf("%s%llu", i == 0 ? "" : ", ",
                static_cast<unsigned long long>(sample[i]));
  }
  std::printf("}\n");
}

}  // namespace

int main() {
  dpss::DpssSampler sampler(/*seed=*/2024);

  // Item ids are stable handles returned by Insert.
  std::vector<dpss::DpssSampler::ItemId> ids;
  const std::vector<uint64_t> weights = {1, 2, 4, 8, 500, 1000};
  for (uint64_t w : weights) ids.push_back(sampler.Insert(w));
  std::printf("inserted %llu items, total weight %s\n",
              static_cast<unsigned long long>(sampler.size()),
              sampler.total_weight().ToDecimalString().c_str());

  // Query 1: (α, β) = (1, 0) — probability w(x)/Σw for every item.
  const dpss::Rational64 one{1, 1}, zero{0, 1};
  std::printf("mu(1,0)  = %.4f\n", sampler.ExpectedSampleSize(one, zero));
  for (int i = 0; i < 3; ++i) PrintSample("sample (alpha=1, beta=0):", sampler.Sample(one, zero));

  // Query 2: (α, β) = (0, 100) — probability min(w(x)/100, 1): the two heavy
  // items are always selected.
  const dpss::Rational64 beta100{100, 1};
  std::printf("mu(0,100) = %.4f\n", sampler.ExpectedSampleSize(zero, beta100));
  for (int i = 0; i < 3; ++i) {
    PrintSample("sample (alpha=0, beta=100):", sampler.Sample(zero, beta100));
  }

  // Updates are O(1) even though they change every probability: inserting a
  // huge item halves everyone else's chance under (1, 0).
  const auto huge = sampler.Insert(1515);
  std::printf("after inserting weight 1515: mu(1,0) = %.4f\n",
              sampler.ExpectedSampleSize(one, zero));
  PrintSample("sample (alpha=1, beta=0):", sampler.Sample(one, zero));

  sampler.Erase(huge);
  sampler.Erase(ids[0]);
  std::printf("after deletions: n=%llu, mu(1,0) = %.4f\n",
              static_cast<unsigned long long>(sampler.size()),
              sampler.ExpectedSampleSize(one, zero));
  PrintSample("sample (alpha=1, beta=0):", sampler.Sample(one, zero));

  sampler.CheckInvariants();
  std::printf("invariants OK\n");
  return 0;
}
