// Quickstart for the dpss library's unified Sampler interface.
//
// Creates a sampler through the backend registry, runs parameterized
// subset-sampling queries with two different (α, β) settings, performs
// O(1) updates that shift every item's probability at once, and shows the
// recoverable Status error surface (no misuse aborts the process).
//
//   ./build/example_quickstart [backend]   (default: halt)

#include <cstdio>
#include <vector>

#include "core/sampler.h"

namespace {

void PrintSample(const char* label, const std::vector<dpss::ItemId>& sample) {
  std::printf("%-28s {", label);
  for (size_t i = 0; i < sample.size(); ++i) {
    std::printf("%s%llu", i == 0 ? "" : ", ",
                static_cast<unsigned long long>(sample[i]));
  }
  std::printf("}\n");
}

}  // namespace

int main(int argc, char** argv) {
  dpss::SamplerSpec spec;
  spec.seed = 2024;
  const char* backend = argc > 1 ? argv[1] : "halt";
  auto sampler = dpss::MakeSampler(backend, spec);
  if (sampler == nullptr) {
    std::printf("unknown backend '%s'; registered:\n", backend);
    for (const auto& name : dpss::RegisteredSamplerNames()) {
      std::printf("  %s\n", name.c_str());
    }
    return 1;
  }
  std::printf("backend: %s\n", sampler->name());

  // One InsertBatch instead of six Insert calls; ids are stable handles.
  std::vector<dpss::ItemId> ids;
  const std::vector<uint64_t> weights = {1, 2, 4, 8, 500, 1000};
  if (!sampler->InsertBatch(weights, &ids).ok()) return 1;
  std::printf("inserted %llu items, total weight %s\n",
              static_cast<unsigned long long>(sampler->size()),
              sampler->TotalWeight().ToDecimalString().c_str());

  // Query 1: (α, β) = (1, 0) — probability w(x)/Σw for every item. This is
  // the registry default for fixed-(α, β) backends, so it works everywhere.
  const dpss::Rational64 one{1, 1}, zero{0, 1};
  const auto mu = sampler->ExpectedSampleSize(one, zero);
  if (mu.ok()) std::printf("mu(1,0)  = %.4f\n", *mu);
  std::vector<dpss::ItemId> out;
  for (int i = 0; i < 3; ++i) {
    if (sampler->SampleInto(one, zero, &out).ok()) {
      PrintSample("sample (alpha=1, beta=0):", out);
    }
  }

  // Query 2: (α, β) = (0, 100) — probability min(w(x)/100, 1): the two
  // heavy items are always selected. Only parameterized backends answer a
  // second (α, β); the rest return kUnsupported — recoverably.
  const dpss::Rational64 beta100{100, 1};
  const dpss::Status st = sampler->SampleInto(zero, beta100, &out);
  if (st.ok()) {
    PrintSample("sample (alpha=0, beta=100):", out);
  } else {
    std::printf("(alpha=0, beta=100) -> %s: %s\n",
                dpss::StatusCodeName(st.code()), st.message());
  }

  // Updates are O(1) on "halt" even though they change every probability:
  // inserting a huge item halves everyone else's chance under (1, 0).
  const auto huge = sampler->Insert(1515);
  if (huge.ok() && sampler->SampleInto(one, zero, &out).ok()) {
    PrintSample("after inserting 1515:", out);
  }

  // Misuse is recoverable: erasing twice reports kInvalidId, no abort.
  if (huge.ok()) {
    if (!sampler->Erase(*huge).ok()) return 1;
    const dpss::Status stale = sampler->Erase(*huge);
    std::printf("double erase -> %s: %s\n",
                dpss::StatusCodeName(stale.code()), stale.message());
  }

  if (!sampler->Erase(ids[0]).ok()) return 1;
  std::printf("after deletions: n=%llu\n",
              static_cast<unsigned long long>(sampler->size()));
  if (sampler->SampleInto(one, zero, &out).ok()) {
    PrintSample("sample (alpha=1, beta=0):", out);
  }

  if (!sampler->CheckInvariants().ok()) return 1;
  std::printf("invariants OK\n");
  return 0;
}
