// Blocking protocol client. See server/client.h.

#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace dpss {
namespace server {

Status StatusFromWireStatus(WireStatus ws) {
  switch (ws) {
    case WireStatus::kOk:
      return Status::Ok();
    case WireStatus::kInvalidId:
      return InvalidIdError();
    case WireStatus::kInvalidArgument:
      return InvalidArgumentError("server rejected the request arguments");
    case WireStatus::kWeightOverflow:
      return WeightOverflowError("server rejected the weight");
    case WireStatus::kUnsupported:
      return UnsupportedError("operation unsupported by the served backend");
    case WireStatus::kIoError:
      return IoError("server-side persistence failure");
    case WireStatus::kShed:
      return UnsupportedError("request shed by admission control (retry)");
    case WireStatus::kShuttingDown:
      return UnsupportedError("server is draining");
    case WireStatus::kProtocolError:
      return InvalidArgumentError("server reported a protocol error");
    case WireStatus::kNotPrimary:
      return UnsupportedError(
          "server is a read replica; send mutations to the primary");
  }
  return IoError("unknown wire status");
}

StatusOr<std::unique_ptr<Client>> Client::Connect(const std::string& host,
                                                  int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return InvalidArgumentError("host is not an IPv4 dotted quad");
  }
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return IoError("socket failed");
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return IoError("connect failed");
  }
  const int on = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &on, sizeof(on));
  return std::unique_ptr<Client>(new Client(fd));
}

Client::~Client() {
  if (fd_ >= 0) close(fd_);
}

uint64_t Client::SendRequest(Request req) {
  req.seq = next_seq_++;
  EncodeRequest(req, &sendbuf_);
  ++sent_;
  return req.seq;
}

Status Client::Flush() {
  size_t written = 0;
  while (written < sendbuf_.size()) {
    const ssize_t n =
        write(fd_, sendbuf_.data() + written, sendbuf_.size() - written);
    if (n > 0) {
      written += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    sendbuf_.erase(0, written);
    return IoError("write to server failed");
  }
  sendbuf_.clear();
  return Status::Ok();
}

StatusOr<Response> Client::ReadResponse() {
  Status st = Flush();
  if (!st.ok()) return st;
  for (;;) {
    std::string_view payload;
    const FrameResult r = ExtractFrame(recvbuf_, &recvpos_, &payload);
    if (r == FrameResult::kFrame) {
      Response resp;
      if (!DecodeResponse(payload, &resp)) {
        return IoError("malformed response frame from server");
      }
      ++received_;
      if (recvpos_ == recvbuf_.size()) {
        recvbuf_.clear();
        recvpos_ = 0;
      }
      return resp;
    }
    if (r == FrameResult::kBadFrame) {
      return IoError("framing violation in server response stream");
    }
    char buf[65536];
    const ssize_t n = read(fd_, buf, sizeof(buf));
    if (n > 0) {
      recvbuf_.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return IoError("server closed the connection");
  }
}

StatusOr<Response> Client::Call(Request req) {
  const uint64_t seq = SendRequest(std::move(req));
  for (;;) {
    auto resp = ReadResponse();
    if (!resp.ok()) return resp.status();
    if (resp->seq == seq) return resp;
    // A response to an earlier pipelined request the caller abandoned;
    // drop it (one-shot RPCs interleaved with pipelining is unusual but
    // must not deadlock).
  }
}

Status Client::Ping() {
  Request req;
  req.type = MsgType::kPing;
  auto resp = Call(req);
  if (!resp.ok()) return resp.status();
  return StatusFromWireStatus(resp->status);
}

StatusOr<ItemId> Client::Insert(Weight w) {
  Request req;
  req.type = w.exp == 0 ? MsgType::kInsert : MsgType::kInsertW;
  req.weight = w;
  auto resp = Call(req);
  if (!resp.ok()) return resp.status();
  const Status st = StatusFromWireStatus(resp->status);
  if (!st.ok()) return st;
  return resp->id;
}

Status Client::Erase(ItemId id) {
  Request req;
  req.type = MsgType::kErase;
  req.id = id;
  auto resp = Call(req);
  if (!resp.ok()) return resp.status();
  return StatusFromWireStatus(resp->status);
}

Status Client::SetWeight(ItemId id, Weight w) {
  Request req;
  req.type = MsgType::kSetWeight;
  req.id = id;
  req.weight = w;
  auto resp = Call(req);
  if (!resp.ok()) return resp.status();
  return StatusFromWireStatus(resp->status);
}

StatusOr<Weight> Client::GetWeight(ItemId id) {
  Request req;
  req.type = MsgType::kGetWeight;
  req.id = id;
  auto resp = Call(req);
  if (!resp.ok()) return resp.status();
  const Status st = StatusFromWireStatus(resp->status);
  if (!st.ok()) return st;
  return resp->weight;
}

StatusOr<std::vector<ItemId>> Client::Sample(Rational64 alpha, Rational64 beta,
                                             uint32_t max_ids) {
  Request req;
  req.type = MsgType::kSample;
  req.alpha = alpha;
  req.beta = beta;
  req.max_ids = max_ids;
  auto resp = Call(std::move(req));
  if (!resp.ok()) return resp.status();
  const Status st = StatusFromWireStatus(resp->status);
  if (!st.ok()) return st;
  return std::move(resp->ids);
}

StatusOr<std::string> Client::Stats() {
  Request req;
  req.type = MsgType::kStats;
  auto resp = Call(req);
  if (!resp.ok()) return resp.status();
  const Status st = StatusFromWireStatus(resp->status);
  if (!st.ok()) return st;
  return std::move(resp->json);
}

StatusOr<Response> Client::Subscribe(uint64_t subscriber, uint64_t epoch,
                                     uint64_t applied_seq) {
  Request req;
  req.type = MsgType::kSubscribe;
  req.subscriber = subscriber;
  req.epoch = epoch;
  req.wal_seq = applied_seq;
  auto resp = Call(req);
  if (!resp.ok()) return resp.status();
  const Status st = StatusFromWireStatus(resp->status);
  if (!st.ok()) return st;
  return resp;
}

StatusOr<Response> Client::WalSegment(uint64_t subscriber, uint64_t epoch,
                                      uint64_t from_seq, uint32_t max_bytes) {
  Request req;
  req.type = MsgType::kWalSegment;
  req.subscriber = subscriber;
  req.epoch = epoch;
  req.wal_seq = from_seq;
  req.max_bytes = max_bytes;
  auto resp = Call(req);
  if (!resp.ok()) return resp.status();
  const Status st = StatusFromWireStatus(resp->status);
  if (!st.ok()) return st;
  return resp;
}

StatusOr<Response> Client::SnapshotChunk(uint64_t subscriber, uint64_t epoch,
                                         uint64_t offset, uint32_t max_bytes) {
  Request req;
  req.type = MsgType::kSnapshotChunk;
  req.subscriber = subscriber;
  req.epoch = epoch;
  req.offset = offset;
  req.max_bytes = max_bytes;
  auto resp = Call(req);
  if (!resp.ok()) return resp.status();
  const Status st = StatusFromWireStatus(resp->status);
  if (!st.ok()) return st;
  return resp;
}

Status Client::SendRaw(std::string_view bytes) {
  sendbuf_.append(bytes);
  return Flush();
}

std::string Client::ReadUntilClose() {
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = read(fd_, buf, sizeof(buf));
    if (n > 0) {
      out.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return out;
  }
}

}  // namespace server
}  // namespace dpss
