// Wire codec for the dpss-serverd protocol. Every multi-byte integer goes
// through util/little_endian.h, the same codec as the snapshot container
// and the WAL, so the wire format is bit-compatible with the rest of the
// repo's binary formats by construction.

#include "server/protocol.h"

#include "persist/crc32c.h"
#include "util/little_endian.h"

namespace dpss {
namespace server {

namespace {

// Request body sizes for the fixed-shape messages (everything but kStats's
// response). Used to reject trailing garbage: a frame that passes CRC but
// carries extra bytes after its body is malformed, not extensible.
bool BodySizeOk(MsgType type, size_t body) {
  switch (type) {
    case MsgType::kPing:
    case MsgType::kStats:
      return body == 0;
    case MsgType::kInsert:
    case MsgType::kErase:
    case MsgType::kGetWeight:
      return body == 8;
    case MsgType::kInsertW:
      return body == 12;
    case MsgType::kSetWeight:
      return body == 20;
    case MsgType::kSample:
      return body == 36;
    case MsgType::kSubscribe:
      return body == 24;
    case MsgType::kWalSegment:
    case MsgType::kSnapshotChunk:
      return body == 28;
    case MsgType::kResponse:
      return false;  // a response is not a request
  }
  return false;
}

// True iff `type` names a request (the range check that keeps a raw byte
// from becoming an out-of-enum MsgType). kResponse sits in the middle of
// the numeric range, so this is not a simple interval test.
bool ValidRequestType(uint8_t type) {
  return (type >= static_cast<uint8_t>(MsgType::kPing) &&
          type <= static_cast<uint8_t>(MsgType::kStats)) ||
         (type >= static_cast<uint8_t>(MsgType::kSubscribe) &&
          type <= static_cast<uint8_t>(MsgType::kSnapshotChunk));
}

void AppendFrame(std::string* out, const std::string& payload) {
  AppendU32(out, static_cast<uint32_t>(payload.size()));
  AppendU32(out, persist::MaskCrc(persist::Crc32c(payload)));
  out->append(payload);
}

}  // namespace

const char* WireStatusName(WireStatus s) {
  switch (s) {
    case WireStatus::kOk: return "kOk";
    case WireStatus::kInvalidId: return "kInvalidId";
    case WireStatus::kInvalidArgument: return "kInvalidArgument";
    case WireStatus::kWeightOverflow: return "kWeightOverflow";
    case WireStatus::kUnsupported: return "kUnsupported";
    case WireStatus::kIoError: return "kIoError";
    case WireStatus::kShed: return "kShed";
    case WireStatus::kShuttingDown: return "kShuttingDown";
    case WireStatus::kProtocolError: return "kProtocolError";
    case WireStatus::kNotPrimary: return "kNotPrimary";
  }
  return "kUnknown";
}

WireStatus WireStatusFromStatus(const Status& st) {
  switch (st.code()) {
    case StatusCode::kOk: return WireStatus::kOk;
    case StatusCode::kInvalidId: return WireStatus::kInvalidId;
    case StatusCode::kInvalidArgument: return WireStatus::kInvalidArgument;
    case StatusCode::kWeightOverflow: return WireStatus::kWeightOverflow;
    case StatusCode::kBadSnapshot: return WireStatus::kInvalidArgument;
    case StatusCode::kUnsupported: return WireStatus::kUnsupported;
    case StatusCode::kIoError: return WireStatus::kIoError;
  }
  return WireStatus::kInvalidArgument;
}

void EncodeRequest(const Request& req, std::string* out) {
  std::string payload;
  AppendU8(&payload, static_cast<uint8_t>(req.type));
  AppendU64(&payload, req.seq);
  switch (req.type) {
    case MsgType::kPing:
    case MsgType::kStats:
      break;
    case MsgType::kInsert:
      AppendU64(&payload, req.weight.mult);
      break;
    case MsgType::kErase:
    case MsgType::kGetWeight:
      AppendU64(&payload, req.id);
      break;
    case MsgType::kInsertW:
      AppendU64(&payload, req.weight.mult);
      AppendU32(&payload, req.weight.exp);
      break;
    case MsgType::kSetWeight:
      AppendU64(&payload, req.id);
      AppendU64(&payload, req.weight.mult);
      AppendU32(&payload, req.weight.exp);
      break;
    case MsgType::kSample:
      AppendU64(&payload, req.alpha.num);
      AppendU64(&payload, req.alpha.den);
      AppendU64(&payload, req.beta.num);
      AppendU64(&payload, req.beta.den);
      AppendU32(&payload, req.max_ids);
      break;
    case MsgType::kSubscribe:
      AppendU64(&payload, req.subscriber);
      AppendU64(&payload, req.epoch);
      AppendU64(&payload, req.wal_seq);
      break;
    case MsgType::kWalSegment:
      AppendU64(&payload, req.subscriber);
      AppendU64(&payload, req.epoch);
      AppendU64(&payload, req.wal_seq);
      AppendU32(&payload, req.max_bytes);
      break;
    case MsgType::kSnapshotChunk:
      AppendU64(&payload, req.subscriber);
      AppendU64(&payload, req.epoch);
      AppendU64(&payload, req.offset);
      AppendU32(&payload, req.max_bytes);
      break;
    case MsgType::kResponse:
      break;  // callers never encode a request of type kResponse
  }
  AppendFrame(out, payload);
}

void EncodeResponse(const Response& resp, std::string* out) {
  std::string payload;
  AppendU8(&payload, static_cast<uint8_t>(MsgType::kResponse));
  AppendU64(&payload, resp.seq);
  AppendU8(&payload, static_cast<uint8_t>(resp.status));
  AppendU8(&payload, static_cast<uint8_t>(resp.request_type));
  if (resp.status == WireStatus::kOk) {
    switch (resp.request_type) {
      case MsgType::kInsert:
      case MsgType::kInsertW:
        AppendU64(&payload, resp.id);
        break;
      case MsgType::kGetWeight:
        AppendU64(&payload, resp.weight.mult);
        AppendU32(&payload, resp.weight.exp);
        break;
      case MsgType::kSample:
        AppendU32(&payload, static_cast<uint32_t>(resp.ids.size()));
        for (ItemId id : resp.ids) AppendU64(&payload, id);
        break;
      case MsgType::kStats:
        AppendU32(&payload, static_cast<uint32_t>(resp.json.size()));
        payload.append(resp.json);
        break;
      case MsgType::kSubscribe:
        AppendU64(&payload, resp.subscriber);
        AppendU64(&payload, resp.epoch);
        AppendU64(&payload, resp.total_bytes);
        AppendU64(&payload, resp.wal_seq);
        AppendU8(&payload, resp.must_bootstrap ? 1 : 0);
        break;
      case MsgType::kWalSegment:
        AppendU64(&payload, resp.epoch);
        AppendU64(&payload, resp.wal_seq);
        AppendU8(&payload, resp.must_bootstrap ? 1 : 0);
        AppendU32(&payload, static_cast<uint32_t>(resp.blob.size()));
        payload.append(resp.blob);
        break;
      case MsgType::kSnapshotChunk:
        AppendU64(&payload, resp.epoch);
        AppendU64(&payload, resp.total_bytes);
        AppendU8(&payload, resp.must_bootstrap ? 1 : 0);
        AppendU32(&payload, static_cast<uint32_t>(resp.blob.size()));
        payload.append(resp.blob);
        break;
      default:
        break;  // kPing/kErase/kSetWeight: empty body
    }
  } else if (resp.status == WireStatus::kNotPrimary) {
    // The one non-kOk status with a body: the primary's address, so a
    // redirected client does not need a separate discovery channel.
    AppendU32(&payload, static_cast<uint32_t>(resp.primary_addr.size()));
    payload.append(resp.primary_addr);
  }
  AppendFrame(out, payload);
}

void EncodeErrorResponse(uint64_t seq, MsgType request_type, WireStatus ws,
                         std::string* out) {
  Response resp;
  resp.seq = seq;
  resp.status = ws;
  resp.request_type = request_type;
  EncodeResponse(resp, out);
}

FrameResult ExtractFrame(std::string_view buf, size_t* pos,
                         std::string_view* payload) {
  size_t cursor = *pos;
  uint32_t len = 0;
  uint32_t masked = 0;
  if (!ReadU32(buf, &cursor, &len) || !ReadU32(buf, &cursor, &masked)) {
    return FrameResult::kNeedMore;
  }
  if (len > kMaxPayloadLen) return FrameResult::kBadFrame;
  if (buf.size() - cursor < len) return FrameResult::kNeedMore;
  const std::string_view body = buf.substr(cursor, len);
  if (persist::MaskCrc(persist::Crc32c(body)) != masked) {
    return FrameResult::kBadFrame;
  }
  *payload = body;
  *pos = cursor + len;
  return FrameResult::kFrame;
}

bool DecodeRequest(std::string_view payload, Request* req) {
  *req = Request{};
  size_t pos = 0;
  uint8_t type = 0;
  if (!ReadU8(payload, &pos, &type)) return false;
  if (!ReadU64(payload, &pos, &req->seq)) return false;
  // Validate the type byte before trusting it as an enum.
  if (!ValidRequestType(type)) return false;
  req->type = static_cast<MsgType>(type);
  if (!BodySizeOk(req->type, payload.size() - pos)) return false;
  switch (req->type) {
    case MsgType::kPing:
    case MsgType::kStats:
      return true;
    case MsgType::kInsert:
      if (!ReadU64(payload, &pos, &req->weight.mult)) return false;
      req->weight.exp = 0;
      return true;
    case MsgType::kErase:
    case MsgType::kGetWeight:
      return ReadU64(payload, &pos, &req->id);
    case MsgType::kInsertW:
      return ReadU64(payload, &pos, &req->weight.mult) &&
             ReadU32(payload, &pos, &req->weight.exp);
    case MsgType::kSetWeight:
      return ReadU64(payload, &pos, &req->id) &&
             ReadU64(payload, &pos, &req->weight.mult) &&
             ReadU32(payload, &pos, &req->weight.exp);
    case MsgType::kSample:
      return ReadU64(payload, &pos, &req->alpha.num) &&
             ReadU64(payload, &pos, &req->alpha.den) &&
             ReadU64(payload, &pos, &req->beta.num) &&
             ReadU64(payload, &pos, &req->beta.den) &&
             ReadU32(payload, &pos, &req->max_ids);
    case MsgType::kSubscribe:
      return ReadU64(payload, &pos, &req->subscriber) &&
             ReadU64(payload, &pos, &req->epoch) &&
             ReadU64(payload, &pos, &req->wal_seq);
    case MsgType::kWalSegment:
      return ReadU64(payload, &pos, &req->subscriber) &&
             ReadU64(payload, &pos, &req->epoch) &&
             ReadU64(payload, &pos, &req->wal_seq) &&
             ReadU32(payload, &pos, &req->max_bytes);
    case MsgType::kSnapshotChunk:
      return ReadU64(payload, &pos, &req->subscriber) &&
             ReadU64(payload, &pos, &req->epoch) &&
             ReadU64(payload, &pos, &req->offset) &&
             ReadU32(payload, &pos, &req->max_bytes);
    case MsgType::kResponse:
      return false;
  }
  return false;
}

bool DecodeResponse(std::string_view payload, Response* resp) {
  *resp = Response{};
  size_t pos = 0;
  uint8_t type = 0, status = 0, req_type = 0;
  if (!ReadU8(payload, &pos, &type) ||
      type != static_cast<uint8_t>(MsgType::kResponse)) {
    return false;
  }
  if (!ReadU64(payload, &pos, &resp->seq)) return false;
  if (!ReadU8(payload, &pos, &status) ||
      status > static_cast<uint8_t>(WireStatus::kNotPrimary)) {
    return false;
  }
  resp->status = static_cast<WireStatus>(status);
  if (!ReadU8(payload, &pos, &req_type) || !ValidRequestType(req_type)) {
    return false;
  }
  resp->request_type = static_cast<MsgType>(req_type);
  if (resp->status == WireStatus::kNotPrimary) {
    uint32_t len = 0;
    if (!ReadU32(payload, &pos, &len)) return false;
    if (payload.size() - pos != len) return false;
    resp->primary_addr.assign(payload.substr(pos, len));
    return true;
  }
  if (resp->status != WireStatus::kOk) return pos == payload.size();
  switch (resp->request_type) {
    case MsgType::kInsert:
    case MsgType::kInsertW:
      return ReadU64(payload, &pos, &resp->id) && pos == payload.size();
    case MsgType::kGetWeight:
      return ReadU64(payload, &pos, &resp->weight.mult) &&
             ReadU32(payload, &pos, &resp->weight.exp) &&
             pos == payload.size();
    case MsgType::kSample: {
      uint32_t count = 0;
      if (!ReadU32(payload, &pos, &count)) return false;
      if (payload.size() - pos != static_cast<size_t>(count) * 8) {
        return false;
      }
      resp->ids.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        uint64_t id = 0;
        if (!ReadU64(payload, &pos, &id)) return false;
        resp->ids.push_back(id);
      }
      return true;
    }
    case MsgType::kStats: {
      uint32_t len = 0;
      if (!ReadU32(payload, &pos, &len)) return false;
      if (payload.size() - pos != len) return false;
      resp->json.assign(payload.substr(pos, len));
      return true;
    }
    case MsgType::kSubscribe: {
      uint8_t boot = 0;
      if (!ReadU64(payload, &pos, &resp->subscriber) ||
          !ReadU64(payload, &pos, &resp->epoch) ||
          !ReadU64(payload, &pos, &resp->total_bytes) ||
          !ReadU64(payload, &pos, &resp->wal_seq) ||
          !ReadU8(payload, &pos, &boot)) {
        return false;
      }
      resp->must_bootstrap = boot != 0;
      return pos == payload.size();
    }
    case MsgType::kWalSegment:
    case MsgType::kSnapshotChunk: {
      uint8_t boot = 0;
      uint32_t len = 0;
      uint64_t* second = resp->request_type == MsgType::kWalSegment
                             ? &resp->wal_seq
                             : &resp->total_bytes;
      if (!ReadU64(payload, &pos, &resp->epoch) ||
          !ReadU64(payload, &pos, second) || !ReadU8(payload, &pos, &boot) ||
          !ReadU32(payload, &pos, &len)) {
        return false;
      }
      resp->must_bootstrap = boot != 0;
      if (payload.size() - pos != len) return false;
      resp->blob.assign(payload.substr(pos, len));
      return true;
    }
    default:
      return pos == payload.size();  // kPing/kErase/kSetWeight
  }
}

}  // namespace server
}  // namespace dpss
