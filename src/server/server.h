/// \file
/// \brief `dpss::server::Server` — the long-running serving layer wrapping
/// any registered sampler backend (optionally durable) behind the wire
/// protocol of `server/protocol.h`.
///
/// \par Architecture
/// Thread-per-core: `io_threads` event-loop threads each own a
/// `SO_REUSEPORT` listening socket on the same port plus the connections
/// the kernel hashes to them, and run a `poll(2)` loop over those fds and
/// an eventfd used for cross-thread wakeups. The read path takes no locks:
/// bytes are read into a per-connection buffer, framed and decoded in
/// place, and pings are answered inline; admitted work is handed to the
/// *batch thread* in one lock acquisition per readable burst.
///
/// The batch thread is the only thread that touches the sampler. It drains
/// the global queue in arrival order, funnels mutation runs into
/// `Sampler::ApplyBatch` (one WAL record — and, in durable mode, one
/// group-commit fsync — per batch), and drains query runs as
/// `SampleInto` bursts, fanned out over the internal `ThreadPool` when the
/// backend is a thread-safe `sharded` composition. Replies are appended to
/// per-connection outboxes; the owning event loop is woken by eventfd and
/// writes them out.
///
/// \par Admission control
/// Three bounds protect latency under overload, all checked on the event
/// loop *before* enqueueing: the global queue depth, the global admitted
/// in-flight byte total, and a per-connection outstanding-request cap.
/// A request over any bound is answered immediately with
/// `WireStatus::kShed` and never touches the sampler. Slow consumers are
/// bounded separately: an outbox over `max_outbox_bytes` closes the
/// connection.
///
/// \par Drain
/// `RequestDrain()` (or the async-signal-safe `NotifyDrainFromSignal()`,
/// designed for a SIGTERM handler) stops the listeners, answers new
/// requests with `kShuttingDown`, lets the batch thread finish every
/// admitted request, then — in durable mode — fsyncs the WAL and writes a
/// final checkpoint before the event loops flush remaining replies and
/// exit. Every reply sent before the drain acknowledged a durable write
/// survives restart; `tools/dpss_loadgen --ack-log/--verify` proves it.

#ifndef DPSS_SERVER_SERVER_H_
#define DPSS_SERVER_SERVER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "core/sampler.h"
#include "server/metrics.h"

namespace dpss {
namespace persist {
class Env;  // persist/env.h
}  // namespace persist
namespace server {

/// Construction options for Server::Start.
struct ServerOptions {
  /// Address to bind (localhost-oriented; the protocol has no auth).
  std::string host = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  int port = 0;
  /// Event-loop threads, each with its own SO_REUSEPORT listener.
  /// 0 = one per hardware thread (capped at 16).
  int io_threads = 0;

  /// Registry name of the backend to serve ("halt", "sharded8:halt", ...).
  std::string backend = "sharded8:halt";
  /// Spec for the backend (seed, shard count, ...).
  SamplerSpec spec;

  /// Non-empty: run durable — recover this directory via RecoveryManager,
  /// write-ahead-log every mutation, checkpoint on drain.
  std::string durable_dir;
  /// Durable mode: WAL fsync cadence in *records*. Each ApplyBatch is one
  /// record, so 1 (the default) is one fsync per group-commit batch.
  uint32_t wal_sync_every = 1;
  /// Durable mode: auto-checkpoint once the WAL exceeds this many bytes
  /// (0 = only the final drain checkpoint).
  uint64_t checkpoint_wal_bytes = 256ull << 20;

  /// Most mutations funneled into one ApplyBatch call.
  uint32_t max_batch_ops = 2048;
  /// How long the batcher waits for more work after the first queued
  /// request, in microseconds. The knob trades mutation latency against
  /// fsyncs per op (durable mode) and per-op dispatch overhead.
  uint32_t batch_window_us = 200;

  /// Admission bound: queued-but-unprocessed requests across all
  /// connections. Exceeding it sheds.
  uint64_t max_queue_depth = 16384;
  /// Admission bound: admitted request bytes not yet replied to.
  uint64_t max_inflight_bytes = 32ull << 20;
  /// Admission bound: outstanding requests per connection.
  uint32_t max_conn_pending = 4096;
  /// Slow-consumer bound: a connection whose unread replies exceed this
  /// many bytes is closed.
  uint64_t max_outbox_bytes = 8ull << 20;
  /// Server-side cap on ids in one kSample reply (a request's smaller
  /// `max_ids` wins). Bounds reply frames well under kMaxPayloadLen.
  uint32_t max_sample_ids = 65536;

  /// Width of the query-burst drain pool. Effective only when the backend
  /// is a thread-safe `sharded` composition; 0 = match io_threads,
  /// 1 = drain bursts serially on the batch thread.
  int query_threads = 0;

  /// How long the drain epilogue keeps flushing unread reply bytes to
  /// slow sockets before giving up and closing them. 0 means *no grace*:
  /// whatever one final flush pass moves is sent and every socket still
  /// holding unread bytes is closed immediately — a deliberate fast-drain
  /// setting, not an error.
  uint32_t drain_flush_grace_ms = 2000;

  /// Filesystem for durable/replica state; null = the real filesystem.
  /// Tests inject a `persist::MemEnv` to run servers hermetically.
  persist::Env* env = nullptr;

  // --- Replication (docs/REPLICATION.md) ---------------------------------

  /// Non-empty "host:port": run as a *read replica* of that primary. The
  /// server bootstraps and follows it over the replication protocol,
  /// serves reads (kSample/kGetWeight/kStats) from the replicated state,
  /// and answers mutations with `kNotPrimary` carrying this address.
  /// Requires `durable_dir` (the local mirror directory); `backend`/`spec`
  /// shape only the empty pre-bootstrap sampler.
  std::string replica_of;

  /// Durable primary: a mutation is acked only once this many replicas
  /// have durably applied its WAL record (0 = ack on local fsync alone,
  /// the previous behaviour). Replies wait parked on the batch thread and
  /// fail with `kIoError` after `replica_ack_timeout_ms` — never a fake
  /// kOk.
  uint32_t min_replica_acks = 0;

  /// How long a mutation reply may wait for replica acks. Unlike
  /// `drain_flush_grace_ms`, 0 is *not* a meaningful setting here — it
  /// would expire every parked reply on arrival, failing all mutations —
  /// so `Start` rejects 0 with `kInvalidArgument` whenever
  /// `min_replica_acks > 0` (with acks off the field is unused and any
  /// value is accepted).
  uint32_t replica_ack_timeout_ms = 5000;

  /// Address handed out in `kNotPrimary` redirects (empty = `replica_of`
  /// verbatim). Set it when clients reach the primary by a different
  /// address than the replica dials.
  std::string advertise_addr;
};

/// A running server instance. Construction binds and spawns the threads;
/// destruction drains (see RequestDrain) and joins them.
class Server {
 public:
  /// Binds `host:port`, builds (or recovers) the backend, spawns the event
  /// loops and the batch thread.
  /// \return `kInvalidArgument` for an unknown backend or bad options,
  ///   `kIoError` when binding or recovery fails.
  static StatusOr<std::unique_ptr<Server>> Start(const ServerOptions& opts);

  /// Drains and joins (idempotent).
  ~Server();

  /// The bound TCP port (the resolved ephemeral port when opts.port == 0).
  int port() const;

  /// Begins a graceful drain from any ordinary thread: stop accepting,
  /// answer new requests with kShuttingDown, finish admitted work, flush
  /// WAL + final checkpoint (durable mode), flush replies, exit the
  /// threads. Idempotent.
  void RequestDrain();

  /// Async-signal-safe drain trigger (a single write(2) to an eventfd);
  /// install this in a SIGTERM/SIGINT handler.
  void NotifyDrainFromSignal();

  /// Blocks until every server thread has exited (the drain is complete
  /// and all durable state is on disk).
  void WaitUntilStopped();

  /// True once WaitUntilStopped would return without blocking.
  bool stopped() const;

  /// The live metrics document (the same JSON a kStats request returns).
  /// Safe from any thread at any rate; sampler-derived fields are the
  /// batch thread's most recent published snapshot.
  std::string StatsJson() const;

  /// Total load-shed responses so far (convenience for tests and tools).
  uint64_t shed_count() const;

  // --- Replication (docs/REPLICATION.md) ---------------------------------

  /// True while this server serves as a read replica (replica_of was set
  /// and Promote has not succeeded).
  bool is_replica() const;

  /// Replica: the followed epoch (0 until the first bootstrap).
  uint64_t replica_epoch() const;
  /// Replica: last WAL seq applied within replica_epoch().
  uint64_t replica_applied_seq() const;
  /// Ok while the follower is healthy; the terminal replication error
  /// otherwise (`kUnsupported` primary, or divergence).
  Status replication_status() const;

  /// Replica mode: stop following and become a primary. The follower is
  /// joined, the inherited epoch sealed, and the mirror directory opened
  /// through ordinary recovery (id-verified replay + rotation to a fresh
  /// WAL); afterwards the server accepts mutations and ships its own WAL.
  /// Refuses (`kInvalidArgument`) when the replica never bootstrapped or
  /// its applied position is behind (`min_epoch`, `min_seq`) — a stale
  /// replica must not silently become the source of truth.
  Status Promote(uint64_t min_epoch = 0, uint64_t min_seq = 0);

  /// Async-signal-safe promote trigger (a single write(2) to an eventfd);
  /// install this in a SIGUSR1 handler. The promotion itself runs on a
  /// background thread with a (0, 0) staleness floor.
  void NotifyPromoteFromSignal();

  /// Dumps the served sampler's live items through the batch thread (the
  /// only sampler owner), so it is safe at any time; tests use it to
  /// compare primary and replica state after quiescing writes.
  Status DumpItems(std::vector<ItemRecord>* out) const;

 private:
  class Impl;
  explicit Server(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace server
}  // namespace dpss

#endif  // DPSS_SERVER_SERVER_H_
