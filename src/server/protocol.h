/// \file
/// \brief The `dpss-serverd` wire protocol: length-prefixed, CRC32C-framed
/// request/response messages over a byte stream (TCP).
///
/// The protocol is deliberately minimal and binary — the server's job is to
/// move mutations and queries at memory speed, not to parse text. Every
/// message travels as one *frame*:
///
/// \code
///   | u32 payload_len | u32 masked_crc32c(payload) | payload bytes |
/// \endcode
///
/// (little-endian, like every other on-disk/on-wire format in the repo;
/// the CRC is masked with the same rotation+offset used by the snapshot
/// container so frames embedding CRCs stay well-distributed). A request
/// payload is
///
/// \code
///   | u8 MsgType | u64 seq | type-specific body |
/// \endcode
///
/// and the matching response payload is
///
/// \code
///   | u8 kResponse | u64 seq | u8 WireStatus | u8 MsgType echo | body |
/// \endcode
///
/// `seq` is chosen by the client and echoed verbatim, which is what makes
/// pipelining work: a client may have any number of requests in flight and
/// match responses by seq. The server answers mutations in per-connection
/// arrival order, but a client must not assume cross-type ordering beyond
/// that.
///
/// **Robustness contract (the fuzz suite's gate):** malformed bytes never
/// abort the decoder. A frame whose CRC does not match, whose declared
/// length exceeds kMaxPayloadLen, or that violates the fixed header shape
/// poisons the *stream* (the decoder cannot trust any later byte boundary)
/// and the server closes the connection. A frame that passes CRC but whose
/// body is malformed (unknown type, truncated body, trailing garbage) is
/// answered with `WireStatus::kProtocolError` and the connection lives on —
/// the framing layer is still synchronized.

#ifndef DPSS_SERVER_PROTOCOL_H_
#define DPSS_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "bigint/rational.h"
#include "core/item_id.h"
#include "core/status.h"
#include "core/weight.h"

namespace dpss {
namespace server {

/// Upper bound on one frame's payload bytes. Frames declaring more are a
/// framing violation (stream poisoned): the bound keeps a malicious or
/// corrupt length prefix from driving a multi-gigabyte allocation.
inline constexpr uint32_t kMaxPayloadLen = 1u << 20;  // 1 MiB

/// Bytes of the frame prelude (payload length + masked CRC).
inline constexpr size_t kFrameHeaderLen = 8;

/// Message types. Requests are client→server; `kResponse` is the single
/// server→client type (the request type is echoed inside the body).
enum class MsgType : uint8_t {
  kPing = 1,       ///< Liveness probe; empty body, empty response body.
  kInsert = 2,     ///< Body: u64 weight. Response body: u64 id.
  kInsertW = 3,    ///< Body: u64 mult, u32 exp. Response body: u64 id.
  kErase = 4,      ///< Body: u64 id. Empty response body.
  kSetWeight = 5,  ///< Body: u64 id, u64 mult, u32 exp. Empty response.
  kGetWeight = 6,  ///< Body: u64 id. Response body: u64 mult, u32 exp.
  kSample = 7,     ///< Body: 4×u64 (α,β as num/den pairs) + u32 max_ids.
                   ///< Response body: u32 count, count×u64 ids.
  kStats = 8,      ///< Empty body. Response body: u32 len + JSON bytes.
  kResponse = 9,   ///< Server→client; see file comment for the body shape.

  // Replication (replica→primary; docs/REPLICATION.md). A replica is an
  // ordinary protocol client: it subscribes, pulls snapshot chunks to
  // bootstrap, then pulls WAL segments forever. Each pull doubles as the
  // replica's ack ("applied through seq X"), which is what feeds the
  // primary's lag tracking and min_replica_acks accounting.
  kSubscribe = 10,     ///< Body: u64 subscriber (0 = new), u64 epoch,
                       ///< u64 applied_seq. Response body: u64 subscriber,
                       ///< u64 epoch, u64 total_bytes (snapshot size),
                       ///< u64 wal_seq (next seq the primary will log),
                       ///< u8 must_bootstrap.
  kWalSegment = 11,    ///< Body: u64 subscriber, u64 epoch, u64 from_seq,
                       ///< u32 max_bytes. Response body: u64 epoch,
                       ///< u64 wal_seq (seq after the last shipped record),
                       ///< u8 must_bootstrap, u32 len + raw record bytes.
  kSnapshotChunk = 12, ///< Body: u64 subscriber, u64 epoch, u64 offset,
                       ///< u32 max_bytes. Response body: u64 epoch,
                       ///< u64 total_bytes, u8 must_bootstrap,
                       ///< u32 len + chunk bytes.
};

/// Response status codes on the wire. The first six mirror dpss::StatusCode
/// one-to-one; the rest are serving-layer outcomes with no library
/// equivalent.
enum class WireStatus : uint8_t {
  kOk = 0,             ///< Success.
  kInvalidId = 1,      ///< StatusCode::kInvalidId.
  kInvalidArgument = 2,///< StatusCode::kInvalidArgument.
  kWeightOverflow = 3, ///< StatusCode::kWeightOverflow.
  kUnsupported = 4,    ///< StatusCode::kUnsupported.
  kIoError = 5,        ///< StatusCode::kIoError (durability lagging).
  kShed = 6,           ///< Admission control rejected the request — the
                       ///< server is over its queue-depth or in-flight-bytes
                       ///< limit. Retry with backoff; nothing was applied.
  kShuttingDown = 7,   ///< The server is draining (SIGTERM); nothing was
                       ///< applied and the connection will close.
  kProtocolError = 8,  ///< The request frame passed CRC but its body was
                       ///< malformed (unknown type, truncated, trailing
                       ///< bytes). Nothing was applied.
  kNotPrimary = 9,     ///< The server is a read replica and the request was
                       ///< a mutation. Nothing was applied. The one status
                       ///< whose response carries a body even though it is
                       ///< not kOk: u32 len + the primary's "host:port"
                       ///< (empty when unknown), so clients can redirect.
};

/// Human-readable name for a wire status ("kOk", "kShed", ...).
const char* WireStatusName(WireStatus s);

/// The wire status for a library Status (kOk → kOk, kInvalidId →
/// kInvalidId, ...).
WireStatus WireStatusFromStatus(const Status& st);

/// A decoded request, independent of which MsgType fields are meaningful.
struct Request {
  MsgType type = MsgType::kPing;  ///< Which request this is.
  uint64_t seq = 0;               ///< Client-chosen id echoed in the reply.
  uint64_t id = 0;                ///< kErase/kSetWeight/kGetWeight target.
  Weight weight{};                ///< kInsert/kInsertW/kSetWeight payload.
  Rational64 alpha{1, 1};         ///< kSample α.
  Rational64 beta{0, 1};          ///< kSample β.
  uint32_t max_ids = 0;           ///< kSample: cap on returned ids (0 = all).
  uint64_t subscriber = 0;        ///< Replication: subscriber id (0 = new).
  uint64_t epoch = 0;             ///< Replication: epoch the body refers to.
  uint64_t wal_seq = 0;           ///< kSubscribe: applied_seq; kWalSegment:
                                  ///< from_seq (first record wanted).
  uint64_t offset = 0;            ///< kSnapshotChunk: byte offset.
  uint32_t max_bytes = 0;         ///< Segment/chunk size cap (0 = server
                                  ///< default; capped well under
                                  ///< kMaxPayloadLen either way).
};

/// A decoded response.
struct Response {
  uint64_t seq = 0;                     ///< Echo of the request seq.
  WireStatus status = WireStatus::kOk;  ///< Outcome.
  MsgType request_type = MsgType::kPing;  ///< Echo of the request type.
  uint64_t id = 0;                      ///< kInsert/kInsertW result.
  Weight weight{};                      ///< kGetWeight result.
  std::vector<ItemId> ids;              ///< kSample result.
  std::string json;                     ///< kStats result.
  uint64_t subscriber = 0;              ///< kSubscribe: assigned id.
  uint64_t epoch = 0;                   ///< Replication: primary's epoch.
  uint64_t wal_seq = 0;                 ///< kSubscribe: next seq the primary
                                        ///< will log; kWalSegment: seq after
                                        ///< the last record in `blob`.
  uint64_t total_bytes = 0;             ///< kSubscribe/kSnapshotChunk:
                                        ///< snapshot size in bytes.
  bool must_bootstrap = false;          ///< Replication: the requested epoch
                                        ///< is gone; restart from the
                                        ///< current snapshot.
  std::string blob;                     ///< kWalSegment: raw WAL record
                                        ///< bytes; kSnapshotChunk: chunk.
  std::string primary_addr;             ///< kNotPrimary: "host:port".
};

// --- Encoding -------------------------------------------------------------

/// Appends one framed request to `*out` (prelude + payload).
void EncodeRequest(const Request& req, std::string* out);

/// Appends one framed response to `*out`.
void EncodeResponse(const Response& resp, std::string* out);

/// Appends a minimal framed error response (no body) for `seq`/`type`.
void EncodeErrorResponse(uint64_t seq, MsgType request_type, WireStatus ws,
                         std::string* out);

// --- Decoding -------------------------------------------------------------

/// Outcome of one ExtractFrame call.
enum class FrameResult : uint8_t {
  kFrame,       ///< A complete, CRC-valid payload was extracted.
  kNeedMore,    ///< The buffer holds only a prefix of the next frame.
  kBadFrame,    ///< Framing violation (oversized length or CRC mismatch).
                ///< The stream is poisoned; the connection must close.
};

/// Incremental framing: inspects `buf[*pos..)` for one complete frame.
/// On kFrame, `*payload` refers to the payload bytes inside `buf` (valid
/// until `buf` mutates) and `*pos` advances past the frame. On kNeedMore /
/// kBadFrame, `*pos` is unchanged.
FrameResult ExtractFrame(std::string_view buf, size_t* pos,
                         std::string_view* payload);

/// Decodes a request payload (the bytes ExtractFrame yielded).
/// \return False if the body is malformed for its declared type — the
///   caller should answer kProtocolError. On false, `req->seq` and
///   `req->type` still carry whatever could be parsed (zero otherwise), so
///   the error response can echo them.
bool DecodeRequest(std::string_view payload, Request* req);

/// Decodes a response payload.
/// \return False if the payload is not a well-formed kResponse.
bool DecodeResponse(std::string_view payload, Response* resp);

}  // namespace server
}  // namespace dpss

#endif  // DPSS_SERVER_PROTOCOL_H_
