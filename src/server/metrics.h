/// \file
/// \brief Live serving metrics: log-bucketed latency histograms and
/// lock-light per-core counters, aggregated on demand into a stable JSON
/// document (the `STATS` response payload).
///
/// The write path is designed for the event loop's budget: recording one
/// sample is a handful of relaxed atomic increments into the calling
/// thread's own `CoreMetrics` slot — no locks, no false sharing (slots are
/// cache-line aligned), no allocation. Aggregation walks every slot and
/// sums, which is O(cores × buckets) and happens only when someone asks
/// (a `STATS` request or the periodic dump), so its cost never shows up in
/// a request latency.
///
/// **Histogram shape.** Values (nanoseconds, or batch occupancies) are
/// binned into four linear sub-buckets per power-of-two octave: values
/// below 4 get exact unit buckets, and a value v ≥ 4 with
/// `o = floor(log2 v)` lands in bucket `4·(o−1) + ((v >> (o−2)) & 3)`.
/// A bucket's width is 2^(o−2), i.e. at most 25% of its lower bound, so
/// any quantile read from the histogram is off by at most one bucket
/// width — the bound `tests/server_metrics_test.cc` asserts.

#ifndef DPSS_SERVER_METRICS_H_
#define DPSS_SERVER_METRICS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace dpss {
namespace server {

/// Request categories tracked separately in the metrics (latency and
/// count per category).
enum class OpKind : uint8_t {
  kInsert = 0,   ///< kInsert and kInsertW requests.
  kErase = 1,    ///< kErase requests.
  kSetWeight = 2,///< kSetWeight requests.
  kGetWeight = 3,///< kGetWeight requests.
  kSample = 4,   ///< kSample requests.
  kStats = 5,    ///< kStats requests.
  kPing = 6,     ///< kPing requests.
};
/// Number of OpKind categories.
inline constexpr int kNumOpKinds = 7;

/// Short lower-case name for an OpKind ("insert", "sample", ...).
const char* OpKindName(OpKind kind);

/// A fixed-size log-bucketed histogram with single-writer relaxed-atomic
/// buckets. One instance is owned (written) by exactly one thread;
/// concurrent readers see each bucket atomically (the cross-bucket view is
/// only eventually consistent, which is all a stats export needs).
class LatencyHistogram {
 public:
  /// Bucket count: 4 unit buckets + 4 sub-buckets × 62 octaves.
  static constexpr int kNumBuckets = 252;

  /// Bucket index for a value (see the file comment for the formula).
  /// Values ≥ 2^63 clamp into the last bucket.
  static int BucketIndex(uint64_t value);
  /// Smallest value mapping to bucket `index`.
  static uint64_t BucketLowerBound(int index);
  /// Largest value mapping to bucket `index`.
  static uint64_t BucketUpperBound(int index);

  /// Records one sample (relaxed increment of its bucket; owner thread
  /// only).
  void Record(uint64_t value) {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  }

  /// Adds this histogram's bucket counts into `sums` (length kNumBuckets).
  void AccumulateInto(uint64_t* sums) const {
    for (int i = 0; i < kNumBuckets; ++i) {
      sums[i] += buckets_[i].load(std::memory_order_relaxed);
    }
  }

  /// Zeroes every bucket (owner thread only, like Record).
  void Reset() {
    for (int i = 0; i < kNumBuckets; ++i) {
      buckets_[i].store(0, std::memory_order_relaxed);
    }
  }

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
};

/// A merged (plain, non-atomic) histogram view supporting quantile reads.
class HistogramSnapshot {
 public:
  /// Empty snapshot.
  HistogramSnapshot() : buckets_(LatencyHistogram::kNumBuckets, 0) {}

  /// Mutable bucket array (length LatencyHistogram::kNumBuckets) for
  /// accumulation via LatencyHistogram::AccumulateInto.
  uint64_t* buckets() { return buckets_.data(); }

  /// Total recorded samples.
  uint64_t count() const;
  /// The value at quantile `q` in [0, 1]: the upper bound of the bucket
  /// holding the ⌈q·count⌉-th smallest sample (so the true quantile lies
  /// within one bucket width below the returned value). 0 when empty.
  uint64_t ValueAtQuantile(double q) const;
  /// Mean of the per-bucket midpoints weighted by count. 0 when empty.
  double Mean() const;

 private:
  std::vector<uint64_t> buckets_;
};

/// One thread's private metrics slot. All fields are written by the owner
/// thread with relaxed atomics and summed by the aggregator.
struct alignas(64) CoreMetrics {
  // --- transport (written by the owning I/O thread) ---
  std::atomic<uint64_t> bytes_in{0};        ///< Payload+frame bytes read.
  std::atomic<uint64_t> bytes_out{0};       ///< Bytes written to sockets.
  std::atomic<uint64_t> frames_in{0};       ///< CRC-valid frames parsed.
  std::atomic<uint64_t> conns_opened{0};    ///< Connections accepted.
  std::atomic<uint64_t> conns_closed{0};    ///< Connections torn down.
  std::atomic<uint64_t> bad_frames{0};      ///< Framing violations (closed).
  std::atomic<uint64_t> protocol_errors{0}; ///< CRC-valid but malformed.
  std::atomic<uint64_t> shed{0};            ///< Requests load-shed.
  std::atomic<uint64_t> shutdown_rejects{0};///< Rejected while draining.

  // --- request outcomes (written by whichever thread completed the op) ---
  std::atomic<uint64_t> op_count[kNumOpKinds] = {};   ///< Completed ops.
  std::atomic<uint64_t> op_errors[kNumOpKinds] = {};  ///< Non-kOk outcomes.
  LatencyHistogram op_latency_ns[kNumOpKinds];  ///< Arrival→reply latency.

  // --- batching (written by the batch thread) ---
  std::atomic<uint64_t> batches{0};       ///< ApplyBatch group commits.
  std::atomic<uint64_t> batched_ops{0};   ///< Mutations inside them.
  std::atomic<uint64_t> query_bursts{0};  ///< Query drain rounds.
  std::atomic<uint64_t> burst_queries{0}; ///< Queries inside them.
  LatencyHistogram batch_occupancy;       ///< Ops per ApplyBatch call.
};

/// One shard's occupancy as reported in the stats export (see
/// ShardedSampler::ShardOccupancy).
struct ShardOccupancyRow {
  uint64_t live = 0;          ///< Live items in the shard.
  double total_weight = 0.0;  ///< Shard Σw (double; export only).
};

/// One replica's replication position as exported by a primary (see
/// `replica::ReplicationLog::Lags`).
struct ReplicaLagRow {
  uint64_t subscriber = 0;   ///< Subscriber id.
  uint64_t epoch = 0;        ///< Epoch the replica last acked in.
  uint64_t applied_seq = 0;  ///< Last WAL seq the replica applied.
  uint64_t lag_records = 0;  ///< Primary records not yet acked.
};

/// Everything the JSON export needs besides the per-core counters;
/// filled in by the server at export time.
struct StatsContext {
  double uptime_seconds = 0.0;      ///< Since Server::Start.
  uint64_t open_connections = 0;    ///< Currently accepted sockets.
  uint64_t queue_depth = 0;         ///< Requests waiting for the batcher.
  uint64_t queue_limit = 0;         ///< Admission bound on queue_depth.
  uint64_t inflight_bytes = 0;      ///< Request bytes admitted, unreplied.
  uint64_t inflight_limit = 0;      ///< Admission bound on inflight_bytes.
  bool draining = false;            ///< SIGTERM received.
  std::string sampler_name;         ///< Backend registry name.
  uint64_t sampler_size = 0;        ///< Live items.
  double sampler_total_weight = 0.0;///< Σw (double; export only).
  uint64_t sampler_memory = 0;      ///< ApproxMemoryBytes.
  uint64_t wal_bytes = 0;           ///< Current WAL size (durable mode).
  std::vector<ShardOccupancyRow> shards;  ///< Per-shard occupancy.

  // --- replication (docs/REPLICATION.md) ---
  /// "primary" (durable, shipping its WAL), "replica" (following one), or
  /// empty (replication not configured; the section is omitted).
  std::string replication_role;
  uint64_t replica_epoch = 0;        ///< Replica: epoch being followed.
  uint64_t replica_applied_seq = 0;  ///< Replica: last applied WAL seq.
  bool replica_divergent = false;    ///< Replica: id-determinism failure.
  uint32_t min_replica_acks = 0;     ///< Primary: ack quorum (0 = off).
  uint64_t parked_mutations = 0;     ///< Primary: replies awaiting acks.
  std::vector<ReplicaLagRow> replica_lags;  ///< Primary: per-subscriber.
};

/// Fixed-size set of per-core slots, one per server thread.
class MetricsRegistry {
 public:
  /// Creates `num_cores` slots (io threads + the batch thread).
  explicit MetricsRegistry(int num_cores) : cores_(num_cores) {}

  /// Slot for core `i` (stable address for the registry's lifetime).
  CoreMetrics& core(int i) { return cores_[i]; }
  /// Number of slots.
  int num_cores() const { return static_cast<int>(cores_.size()); }

  /// Sums every slot and renders the stable JSON document described in
  /// docs/SERVING.md: `{"server": ..., "ops": {...}, "batch": ...,
  /// "queue": ..., "sampler": ..., "shards": [...]}`.
  std::string ToJson(const StatsContext& ctx) const;

 private:
  // std::deque-free fixed storage: CoreMetrics is not movable (atomics),
  // so the vector is sized once at construction and never resized.
  std::vector<CoreMetrics> cores_;
};

}  // namespace server
}  // namespace dpss

#endif  // DPSS_SERVER_METRICS_H_
