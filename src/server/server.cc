// dpss-serverd core: thread-per-core poll loops + a single batch thread
// that owns the sampler. See server/server.h for the architecture overview
// and docs/SERVING.md for the protocol and policy specification.
//
// Threading invariants, in one place:
//   - A connection (fd, inbuf, writebuf) is owned by exactly one I/O
//     thread; no other thread touches it.
//   - A connection's Outbox is the only cross-thread channel: the batch
//     thread appends encoded reply frames under its mutex, the I/O thread
//     moves them into the connection's write buffer under the same mutex.
//   - The sampler is touched only by the batch thread (and, for query
//     bursts on a thread-safe `sharded` backend, by the query pool it
//     drives synchronously via ParallelFor).
//   - Admission accounting (queue depth, in-flight bytes, per-connection
//     outstanding) is relaxed atomics: checked on the I/O threads,
//     released by the batch thread when it enqueues the reply.

#include "server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "concurrent/sharded_sampler.h"
#include "concurrent/thread_pool.h"
#include "persist/env.h"
#include "persist/recovery.h"
#include "replica/follower.h"
#include "replica/replica_sampler.h"
#include "replica/replication_log.h"
#include "server/protocol.h"

namespace dpss {
namespace server {

namespace {

uint64_t NowNs() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

OpKind OpKindFor(MsgType type) {
  switch (type) {
    case MsgType::kInsert:
    case MsgType::kInsertW:
      return OpKind::kInsert;
    case MsgType::kErase:
      return OpKind::kErase;
    case MsgType::kSetWeight:
      return OpKind::kSetWeight;
    case MsgType::kGetWeight:
      return OpKind::kGetWeight;
    case MsgType::kSample:
      return OpKind::kSample;
    case MsgType::kStats:
      return OpKind::kStats;
    default:
      return OpKind::kPing;
  }
}

bool IsMutation(MsgType type) {
  return type == MsgType::kInsert || type == MsgType::kInsertW ||
         type == MsgType::kErase || type == MsgType::kSetWeight;
}

// The per-connection reply channel shared between the owning I/O thread
// and the batch thread. Outlives the connection (the batch thread may hold
// references to it after a disconnect); `closed` makes late replies no-ops.
struct Outbox {
  std::mutex mu;
  std::string pending;                 // encoded frames awaiting the I/O thread
  bool closed = false;
  int wake_fd = -1;                    // owning I/O thread's eventfd
  std::atomic<uint64_t> inflight{0};   // admitted, unreplied requests
};

// One admitted request travelling from an I/O thread to the batch thread.
struct Work {
  Request req;
  std::shared_ptr<Outbox> outbox;
  uint64_t arrival_ns = 0;
  uint32_t bytes = 0;  // frame bytes, for the in-flight accounting
};

}  // namespace

class Server::Impl {
 public:
  explicit Impl(const ServerOptions& opts)
      : opts_(opts),
        num_io_(ResolveIoThreads(opts)),
        metrics_(num_io_ + 1),
        start_ns_(NowNs()) {}

  ~Impl() {
    if (follower_ != nullptr) follower_->Stop();
    RequestDrain();
    WaitUntilStopped();
    {
      std::lock_guard<std::mutex> lock(promote_mu_);
      if (promote_thread_.joinable()) promote_thread_.join();
    }
    for (int fd : wake_fds_) {
      if (fd >= 0) close(fd);
    }
    if (drain_efd_ >= 0) close(drain_efd_);
    if (promote_efd_ >= 0) close(promote_efd_);
    // Listener fds are closed by their I/O threads (or never opened on a
    // failed Start).
    for (int fd : listen_fds_) {
      if (fd >= 0) close(fd);
    }
  }

  static int ResolveIoThreads(const ServerOptions& opts) {
    int n = opts.io_threads;
    if (n <= 0) {
      const int hw = static_cast<int>(std::thread::hardware_concurrency());
      n = hw > 0 ? hw : 1;
      if (n > 16) n = 16;
    }
    if (n > 64) n = 64;
    return n;
  }

  Status Start() {
    if (opts_.max_batch_ops == 0) {
      return InvalidArgumentError("ServerOptions::max_batch_ops must be >= 1");
    }
    if (opts_.max_queue_depth == 0 || opts_.max_inflight_bytes == 0 ||
        opts_.max_conn_pending == 0) {
      return InvalidArgumentError(
          "ServerOptions admission limits must be >= 1");
    }
    // Zero timeouts are either meaningful or rejected, never accidental:
    // drain_flush_grace_ms == 0 legitimately means "close slow sockets
    // immediately on drain", but a zero ack timeout with replica acks
    // required would time out *every* mutation on arrival — reject it up
    // front like the admission limits.
    if (opts_.min_replica_acks > 0 && opts_.replica_ack_timeout_ms == 0) {
      return InvalidArgumentError(
          "ServerOptions::replica_ack_timeout_ms must be >= 1 when "
          "min_replica_acks > 0");
    }
    if (!opts_.replica_of.empty()) {
      if (opts_.durable_dir.empty()) {
        return InvalidArgumentError(
            "replica mode needs durable_dir as the local mirror directory");
      }
      if (opts_.min_replica_acks != 0) {
        return InvalidArgumentError(
            "min_replica_acks is a primary-side option");
      }
    }
    Status st = BuildSampler();
    if (!st.ok()) return st;
    st = BindListeners();
    if (!st.ok()) return st;
    drain_efd_ = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (drain_efd_ < 0) return IoError("eventfd failed");
    promote_efd_ = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (promote_efd_ < 0) return IoError("eventfd failed");
    for (int i = 0; i < num_io_; ++i) {
      const int efd = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
      if (efd < 0) return IoError("eventfd failed");
      wake_fds_.push_back(efd);
    }
    // Query-burst pool: effective only on a thread-safe sharded backend
    // (the only composition whose SampleInto may race with itself).
    int qthreads = opts_.query_threads;
    if (qthreads == 0) qthreads = num_io_;
    if (sharded_ != nullptr && qthreads > 1) {
      query_pool_ = std::make_unique<ThreadPool>(qthreads);
    }
    RefreshStatsCacheLocked();
    for (int i = 0; i < num_io_; ++i) {
      io_threads_.emplace_back([this, i] { IoLoop(i); });
    }
    batch_thread_ = std::thread([this] { BatchLoop(); });
    if (follower_ != nullptr) {
      st = follower_->Start();
      if (!st.ok()) return st;
    }
    return Status::Ok();
  }

  int port() const { return bound_port_; }

  void RequestDrain() {
    int expected = 0;
    if (phase_.compare_exchange_strong(expected, 1)) {
      qcv_.notify_all();
      WakeAllIo();
    }
  }

  void NotifyDrainFromSignal() {
    // write(2) is async-signal-safe; I/O thread 0 polls drain_efd_ and
    // turns it into an ordinary RequestDrain call.
    const uint64_t one = 1;
    if (drain_efd_ >= 0) {
      [[maybe_unused]] ssize_t n = write(drain_efd_, &one, sizeof(one));
    }
  }

  void WaitUntilStopped() {
    std::lock_guard<std::mutex> lock(join_mu_);
    for (std::thread& t : io_threads_) {
      if (t.joinable()) t.join();
    }
    if (batch_thread_.joinable()) batch_thread_.join();
    stopped_.store(true, std::memory_order_release);
  }

  bool stopped() const { return stopped_.load(std::memory_order_acquire); }

  std::string StatsJson() const {
    StatsContext ctx;
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ctx = cached_ctx_;
    }
    FillLiveContext(&ctx);
    return metrics_.ToJson(ctx);
  }

  uint64_t shed_count() const {
    uint64_t total = 0;
    for (int i = 0; i < metrics_.num_cores(); ++i) {
      total += const_cast<MetricsRegistry&>(metrics_)
                   .core(i)
                   .shed.load(std::memory_order_relaxed);
    }
    return total;
  }

  // --- Replication public surface -----------------------------------------

  bool is_replica() const {
    return is_replica_.load(std::memory_order_acquire);
  }

  uint64_t replica_epoch() const {
    return replica_ != nullptr ? replica_->epoch() : 0;
  }

  uint64_t replica_applied_seq() const {
    return replica_ != nullptr ? replica_->applied_seq() : 0;
  }

  Status replication_status() const {
    if (follower_ == nullptr) return Status::Ok();
    return follower_->fatal_status();
  }

  Status DumpItems(std::vector<ItemRecord>* out) {
    if (out == nullptr) return InvalidArgumentError("null output vector");
    Status result;
    Status rc = RunOnBatchThread([&] { result = sampler_->DumpItems(out); });
    return rc.ok() ? result : rc;
  }

  Status Promote(uint64_t min_epoch, uint64_t min_seq) {
    std::lock_guard<std::mutex> plock(promote_mu_);
    if (!is_replica_.load(std::memory_order_acquire)) {
      return InvalidArgumentError("not a replica (or already promoted)");
    }
    // Quiesce the feed first: after Stop() joins, no thread applies to the
    // replica, so its (epoch, applied_seq) is final for the staleness
    // check inside ReplicaSampler::Promote.
    follower_->Stop();
    Status result;
    Status rc = RunOnBatchThread([&] {
      StatusOr<std::unique_ptr<persist::DurableSampler>> promoted =
          replica_->Promote(DurableOpts(), min_epoch, min_seq);
      if (!promoted.ok()) {
        result = promoted.status();
        return;
      }
      durable_ = promoted->get();
      // The spent ReplicaSampler stays alive (not merely unreferenced):
      // replica_epoch()/replica_applied_seq() may be dereferencing it from
      // other threads, and it keeps answering with its final position.
      retired_replica_ = std::move(sampler_);
      sampler_ = std::move(*promoted);
      sharded_ = dynamic_cast<const ShardedSampler*>(&durable_->inner());
      repl_log_ = std::make_unique<replica::ReplicationLog>(durable_);
      is_replica_.store(false, std::memory_order_release);
      RefreshStatsCacheLocked();
    });
    return rc.ok() ? result : rc;
  }

  void NotifyPromoteFromSignal() {
    const uint64_t one = 1;
    if (promote_efd_ >= 0) {
      [[maybe_unused]] ssize_t n = write(promote_efd_, &one, sizeof(one));
    }
  }

  // I/O thread 0's handler for the promote eventfd: the promotion blocks
  // (it joins the follower and round-trips the batch thread), so it runs
  // on a one-shot thread instead of stalling the event loop.
  void StartSignalPromote() {
    std::lock_guard<std::mutex> lock(promote_mu_);
    if (promote_thread_.joinable() ||
        !is_replica_.load(std::memory_order_acquire)) {
      return;
    }
    promote_thread_ = std::thread([this] { (void)Promote(0, 0); });
  }

 private:
  // --- Startup ------------------------------------------------------------

  persist::DurableOptions DurableOpts() const {
    persist::DurableOptions dopts;
    dopts.backend = opts_.backend;
    dopts.spec = opts_.spec;
    dopts.wal_sync_every = opts_.wal_sync_every;
    dopts.checkpoint_wal_bytes = opts_.checkpoint_wal_bytes;
    dopts.env = opts_.env;
    return dopts;
  }

  Status BuildSampler() {
    if (!opts_.replica_of.empty()) {
      // Read replica: a ReplicaSampler mirroring into durable_dir, fed by
      // a Follower dialing the primary. The DurableSampler machinery only
      // enters the picture at Promote().
      const size_t colon = opts_.replica_of.rfind(':');
      int primary_port = 0;
      if (colon != std::string::npos) {
        primary_port = atoi(opts_.replica_of.c_str() + colon + 1);
      }
      if (colon == std::string::npos || primary_port <= 0) {
        return InvalidArgumentError(
            "ServerOptions::replica_of must be \"host:port\"");
      }
      auto made = replica::ReplicaSampler::Create(
          opts_.env, opts_.durable_dir, opts_.backend, opts_.spec);
      if (!made.ok()) return made.status();
      replica_ = made->get();
      sampler_ = std::move(*made);
      replica::FollowerOptions fopts;
      fopts.primary_host = opts_.replica_of.substr(0, colon);
      fopts.primary_port = primary_port;
      follower_ = std::make_unique<replica::Follower>(replica_, fopts);
      is_replica_.store(true, std::memory_order_release);
      redirect_addr_ = opts_.advertise_addr.empty() ? opts_.replica_of
                                                    : opts_.advertise_addr;
      return Status::Ok();
    }
    if (!opts_.durable_dir.empty()) {
      auto opened =
          persist::RecoveryManager::Open(opts_.durable_dir, DurableOpts());
      if (!opened.ok()) return opened.status();
      durable_ = opened->get();
      sampler_ = std::move(*opened);
      sharded_ = dynamic_cast<const ShardedSampler*>(&durable_->inner());
      repl_log_ = std::make_unique<replica::ReplicationLog>(durable_);
    } else {
      auto made = MakeSamplerChecked(opts_.backend, opts_.spec);
      if (!made.ok()) return made.status();
      sampler_ = std::move(*made);
      sharded_ = dynamic_cast<const ShardedSampler*>(sampler_.get());
    }
    if (opts_.min_replica_acks > 0 && durable_ == nullptr) {
      return InvalidArgumentError(
          "min_replica_acks needs durable mode (there is no WAL to "
          "replicate otherwise)");
    }
    return Status::Ok();
  }

  Status BindListeners() {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(opts_.port));
    if (inet_pton(AF_INET, opts_.host.c_str(), &addr.sin_addr) != 1) {
      return InvalidArgumentError("ServerOptions::host is not an IPv4 address");
    }
    for (int i = 0; i < num_io_; ++i) {
      const int fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
      if (fd < 0) return IoError("socket failed");
      const int on = 1;
      setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &on, sizeof(on));
      setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &on, sizeof(on));
      if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
          listen(fd, 511) != 0) {
        close(fd);
        return IoError("bind/listen failed (port in use?)");
      }
      if (i == 0 && opts_.port == 0) {
        // Learn the ephemeral port so the remaining listeners share it.
        sockaddr_in bound{};
        socklen_t len = sizeof(bound);
        if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
          close(fd);
          return IoError("getsockname failed");
        }
        addr.sin_port = bound.sin_port;
      }
      listen_fds_.push_back(fd);
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    getsockname(listen_fds_[0], reinterpret_cast<sockaddr*>(&bound), &len);
    bound_port_ = ntohs(bound.sin_port);
    return Status::Ok();
  }

  // --- I/O threads --------------------------------------------------------

  struct Conn {
    int fd = -1;
    std::string inbuf;
    size_t inpos = 0;
    std::string writebuf;
    std::shared_ptr<Outbox> outbox;
  };

  void WakeAllIo() {
    const uint64_t one = 1;
    for (int fd : wake_fds_) {
      if (fd >= 0) {
        [[maybe_unused]] ssize_t n = write(fd, &one, sizeof(one));
      }
    }
  }

  void CloseConn(Conn* conn, CoreMetrics& m) {
    if (conn->fd < 0) return;
    {
      std::lock_guard<std::mutex> lock(conn->outbox->mu);
      conn->outbox->closed = true;
      conn->outbox->pending.clear();
    }
    close(conn->fd);
    conn->fd = -1;
    m.conns_closed.fetch_add(1, std::memory_order_relaxed);
    open_conns_.fetch_sub(1, std::memory_order_relaxed);
  }

  // Moves any batch-thread replies into the connection's write buffer and
  // writes as much as the socket accepts. Returns false when the
  // connection must close (write error or slow-consumer overflow).
  bool PumpOut(Conn* conn, CoreMetrics& m) {
    {
      std::lock_guard<std::mutex> lock(conn->outbox->mu);
      if (!conn->outbox->pending.empty()) {
        if (conn->writebuf.empty()) {
          conn->writebuf = std::move(conn->outbox->pending);
          conn->outbox->pending.clear();
        } else {
          conn->writebuf.append(conn->outbox->pending);
          conn->outbox->pending.clear();
        }
      }
    }
    size_t written = 0;
    while (written < conn->writebuf.size()) {
      const ssize_t n = write(conn->fd, conn->writebuf.data() + written,
                              conn->writebuf.size() - written);
      if (n > 0) {
        written += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      return false;  // peer gone
    }
    if (written > 0) {
      m.bytes_out.fetch_add(written, std::memory_order_relaxed);
      conn->writebuf.erase(0, written);
    }
    return conn->writebuf.size() <= opts_.max_outbox_bytes;
  }

  // Appends one reply frame to the connection's own outbox (the I/O thread
  // path for inline replies: ping, shed, shutdown, protocol errors).
  void ReplyInline(Conn* conn, const Response& resp) {
    std::lock_guard<std::mutex> lock(conn->outbox->mu);
    if (!conn->outbox->closed) EncodeResponse(resp, &conn->outbox->pending);
  }

  // Parses every complete frame in the connection's input buffer. Returns
  // false when the connection must close (framing violation or EOF already
  // detected by the caller).
  bool ParseFrames(Conn* conn, CoreMetrics& m, std::vector<Work>* admitted) {
    const int phase = phase_.load(std::memory_order_acquire);
    for (;;) {
      std::string_view payload;
      const FrameResult r = ExtractFrame(conn->inbuf, &conn->inpos, &payload);
      if (r == FrameResult::kNeedMore) break;
      if (r == FrameResult::kBadFrame) {
        m.bad_frames.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      m.frames_in.fetch_add(1, std::memory_order_relaxed);
      const uint64_t now = NowNs();
      Request req;
      if (!DecodeRequest(payload, &req)) {
        m.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        Response resp;
        resp.seq = req.seq;
        resp.status = WireStatus::kProtocolError;
        resp.request_type = req.type;
        ReplyInline(conn, resp);
        continue;
      }
      if (req.type == MsgType::kPing) {
        Response resp;
        resp.seq = req.seq;
        resp.request_type = MsgType::kPing;
        ReplyInline(conn, resp);
        m.op_count[static_cast<int>(OpKind::kPing)].fetch_add(
            1, std::memory_order_relaxed);
        m.op_latency_ns[static_cast<int>(OpKind::kPing)].Record(NowNs() -
                                                                now);
        continue;
      }
      if (phase >= 1) {
        m.shutdown_rejects.fetch_add(1, std::memory_order_relaxed);
        Response resp;
        resp.seq = req.seq;
        resp.status = WireStatus::kShuttingDown;
        resp.request_type = req.type;
        ReplyInline(conn, resp);
        continue;
      }
      if (IsMutation(req.type) &&
          is_replica_.load(std::memory_order_acquire)) {
        // Read replicas redirect writers instead of queueing them; the
        // response body names the primary (server/protocol.h).
        const int k = static_cast<int>(OpKindFor(req.type));
        m.op_count[k].fetch_add(1, std::memory_order_relaxed);
        m.op_errors[k].fetch_add(1, std::memory_order_relaxed);
        Response resp;
        resp.seq = req.seq;
        resp.status = WireStatus::kNotPrimary;
        resp.request_type = req.type;
        resp.primary_addr = redirect_addr_;
        ReplyInline(conn, resp);
        continue;
      }
      // Admission control: all three bounds checked lock-free; a request
      // over any bound is shed without touching the queue or the sampler.
      const uint32_t bytes =
          static_cast<uint32_t>(payload.size() + kFrameHeaderLen);
      if (queue_depth_.load(std::memory_order_relaxed) >=
              opts_.max_queue_depth ||
          inflight_bytes_.load(std::memory_order_relaxed) >=
              opts_.max_inflight_bytes ||
          conn->outbox->inflight.load(std::memory_order_relaxed) >=
              opts_.max_conn_pending) {
        m.shed.fetch_add(1, std::memory_order_relaxed);
        Response resp;
        resp.seq = req.seq;
        resp.status = WireStatus::kShed;
        resp.request_type = req.type;
        ReplyInline(conn, resp);
        continue;
      }
      queue_depth_.fetch_add(1, std::memory_order_relaxed);
      inflight_bytes_.fetch_add(bytes, std::memory_order_relaxed);
      conn->outbox->inflight.fetch_add(1, std::memory_order_relaxed);
      admitted->push_back(Work{req, conn->outbox, now, bytes});
    }
    // Compact the consumed prefix once it dominates the buffer.
    if (conn->inpos == conn->inbuf.size()) {
      conn->inbuf.clear();
      conn->inpos = 0;
    } else if (conn->inpos > (1u << 20)) {
      conn->inbuf.erase(0, conn->inpos);
      conn->inpos = 0;
    }
    return true;
  }

  // Reads until EAGAIN. Returns false on EOF or error.
  bool ReadSocket(Conn* conn, CoreMetrics& m) {
    char buf[65536];
    for (;;) {
      const ssize_t n = read(conn->fd, buf, sizeof(buf));
      if (n > 0) {
        conn->inbuf.append(buf, static_cast<size_t>(n));
        m.bytes_in.fetch_add(static_cast<uint64_t>(n),
                             std::memory_order_relaxed);
        if (static_cast<size_t>(n) < sizeof(buf)) return true;
        continue;
      }
      if (n == 0) return false;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      return false;
    }
  }

  void IoLoop(int idx) {
    CoreMetrics& m = metrics_.core(idx);
    std::vector<std::unique_ptr<Conn>> conns;
    std::vector<pollfd> pfds;
    int listen_fd = listen_fds_[idx];
    const int wake_fd = wake_fds_[idx];
    uint64_t flush_deadline_ns = 0;
    std::vector<Work> admitted;

    for (;;) {
      const int phase = phase_.load(std::memory_order_acquire);
      if (phase >= 1 && listen_fd >= 0) {
        close(listen_fd);
        listen_fds_[idx] = -1;
        listen_fd = -1;
      }
      if (phase >= 2) {
        // The batch thread has finished (all admitted work is replied and
        // durable): flush what the sockets will take, bounded by a grace
        // deadline, then exit.
        if (flush_deadline_ns == 0) {
          flush_deadline_ns =
              NowNs() + opts_.drain_flush_grace_ms * 1'000'000ull;
        }
        bool any_pending = false;
        for (auto& conn : conns) {
          if (conn->fd < 0) continue;
          if (!PumpOut(conn.get(), m)) CloseConn(conn.get(), m);
          bool outbox_pending;
          {
            std::lock_guard<std::mutex> lock(conn->outbox->mu);
            outbox_pending = !conn->outbox->pending.empty();
          }
          if (conn->fd >= 0 &&
              (!conn->writebuf.empty() || outbox_pending)) {
            any_pending = true;
          }
        }
        if (!any_pending || NowNs() > flush_deadline_ns) {
          for (auto& conn : conns) CloseConn(conn.get(), m);
          break;
        }
      }

      pfds.clear();
      pfds.push_back({wake_fd, POLLIN, 0});
      if (idx == 0) {
        pfds.push_back({drain_efd_, POLLIN, 0});
        pfds.push_back({promote_efd_, POLLIN, 0});
      }
      const size_t fixed = pfds.size();
      if (listen_fd >= 0) pfds.push_back({listen_fd, POLLIN, 0});
      const size_t listen_at = listen_fd >= 0 ? pfds.size() - 1 : SIZE_MAX;
      const size_t conns_at = pfds.size();
      for (auto& conn : conns) {
        short events = POLLIN;
        bool outbox_pending;
        {
          std::lock_guard<std::mutex> lock(conn->outbox->mu);
          outbox_pending = !conn->outbox->pending.empty();
        }
        if (!conn->writebuf.empty() || outbox_pending) events |= POLLOUT;
        pfds.push_back({conn->fd, events, 0});
      }
      (void)fixed;

      const int timeout_ms = phase >= 2 ? 20 : 200;
      const int nready = ::poll(pfds.data(),
                                static_cast<nfds_t>(pfds.size()), timeout_ms);
      if (nready < 0 && errno != EINTR) break;

      // Wakeups (reply frames ready, or a phase change).
      if (pfds[0].revents & POLLIN) {
        uint64_t drain;
        while (read(wake_fd, &drain, sizeof(drain)) > 0) {
        }
      }
      if (idx == 0 && (pfds[1].revents & POLLIN)) {
        uint64_t drain;
        while (read(drain_efd_, &drain, sizeof(drain)) > 0) {
        }
        RequestDrain();
      }
      if (idx == 0 && (pfds[2].revents & POLLIN)) {
        uint64_t drain;
        while (read(promote_efd_, &drain, sizeof(drain)) > 0) {
        }
        StartSignalPromote();
      }

      // New connections.
      if (listen_at != SIZE_MAX && (pfds[listen_at].revents & POLLIN)) {
        for (;;) {
          const int fd = accept4(listen_fd, nullptr, nullptr,
                                 SOCK_NONBLOCK | SOCK_CLOEXEC);
          if (fd < 0) break;
          const int on = 1;
          setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &on, sizeof(on));
          auto conn = std::make_unique<Conn>();
          conn->fd = fd;
          conn->outbox = std::make_shared<Outbox>();
          conn->outbox->wake_fd = wake_fd;
          conns.push_back(std::move(conn));
          m.conns_opened.fetch_add(1, std::memory_order_relaxed);
          open_conns_.fetch_add(1, std::memory_order_relaxed);
        }
      }

      // Connection I/O.
      admitted.clear();
      for (size_t c = 0; c < conns.size(); ++c) {
        Conn* conn = conns[c].get();
        if (conn->fd < 0) continue;
        const short rev =
            conns_at + c < pfds.size() ? pfds[conns_at + c].revents : 0;
        bool alive = true;
        if (rev & (POLLERR | POLLHUP | POLLNVAL)) alive = false;
        if (alive && (rev & POLLIN)) {
          alive = ReadSocket(conn, m);
          // Parse even a final burst that arrived with EOF: the peer may
          // have pipelined requests and half-closed.
          if (!ParseFrames(conn, m, &admitted)) alive = false;
        }
        if (alive) alive = PumpOut(conn, m);
        if (!alive) {
          bool flushed;
          {
            std::lock_guard<std::mutex> lock(conn->outbox->mu);
            flushed = conn->outbox->pending.empty();
          }
          // Give the peer its final error frames when the socket is still
          // writable; otherwise just close.
          if (flushed && conn->writebuf.empty()) {
            CloseConn(conn, m);
          } else {
            PumpOut(conn, m);
            CloseConn(conn, m);
          }
        }
      }
      conns.erase(std::remove_if(conns.begin(), conns.end(),
                                 [](const std::unique_ptr<Conn>& c) {
                                   return c->fd < 0;
                                 }),
                  conns.end());

      if (!admitted.empty()) {
        {
          std::lock_guard<std::mutex> lock(qmu_);
          for (Work& w : admitted) queue_.push_back(std::move(w));
        }
        qcv_.notify_one();
        admitted.clear();
      }
    }
  }

  // --- Batch thread -------------------------------------------------------

  // Releases the admission accounting for `w` and appends the reply to its
  // outbox; records the op's latency and outcome. The wake fd is collected
  // for a deduplicated post-batch wakeup.
  void Reply(const Work& w, const Response& resp, CoreMetrics& m,
             std::vector<int>* wake) {
    queue_depth_.fetch_sub(1, std::memory_order_relaxed);
    inflight_bytes_.fetch_sub(w.bytes, std::memory_order_relaxed);
    w.outbox->inflight.fetch_sub(1, std::memory_order_relaxed);
    const int k = static_cast<int>(OpKindFor(w.req.type));
    m.op_count[k].fetch_add(1, std::memory_order_relaxed);
    if (resp.status != WireStatus::kOk) {
      m.op_errors[k].fetch_add(1, std::memory_order_relaxed);
    }
    m.op_latency_ns[k].Record(NowNs() - w.arrival_ns);
    bool enqueued = false;
    {
      std::lock_guard<std::mutex> lock(w.outbox->mu);
      if (!w.outbox->closed) {
        EncodeResponse(resp, &w.outbox->pending);
        enqueued = true;
      }
    }
    if (enqueued &&
        std::find(wake->begin(), wake->end(), w.outbox->wake_fd) ==
            wake->end()) {
      wake->push_back(w.outbox->wake_fd);
    }
  }

  void ApplyMutations(std::vector<Work>& batch,
                      const std::vector<size_t>& origin, CoreMetrics& m,
                      std::vector<int>* wake) {
    std::vector<Op> ops;
    ops.reserve(origin.size());
    for (size_t i : origin) {
      const Request& r = batch[i].req;
      switch (r.type) {
        case MsgType::kInsert:
        case MsgType::kInsertW:
          ops.push_back(Op::Insert(r.weight));
          break;
        case MsgType::kErase:
          ops.push_back(Op::Erase(r.id));
          break;
        default:
          ops.push_back(Op::SetWeight(r.id, r.weight));
          break;
      }
    }
    size_t start = 0;
    std::vector<ItemId> inserted;
    while (start < ops.size()) {
      inserted.clear();
      size_t applied = 0;
      const Status st = sampler_->ApplyBatch(
          std::span<const Op>(ops).subspan(start), &inserted, &applied);
      m.batches.fetch_add(1, std::memory_order_relaxed);
      m.batched_ops.fetch_add(applied, std::memory_order_relaxed);
      m.batch_occupancy.Record(applied);
      // Replicated-durability mode: successful mutations of this record
      // wait parked until min_replica_acks replicas cover its (epoch, seq)
      // — the ack is withheld, never faked (ReleaseParked fails them with
      // kIoError on timeout).
      const bool park = opts_.min_replica_acks > 0 && durable_ != nullptr &&
                        applied > 0;
      const uint64_t record_epoch = park ? durable_->epoch() : 0;
      const uint64_t record_seq = park ? durable_->wal_next_seq() - 1 : 0;
      size_t ins = 0;
      for (size_t k = start; k < start + applied; ++k) {
        Work& w = batch[origin[k]];
        Response resp;
        resp.seq = w.req.seq;
        resp.request_type = w.req.type;
        if (ops[k].kind == Op::Kind::kInsert) resp.id = inserted[ins++];
        if (park) {
          parked_.push_back(Parked{
              record_epoch, record_seq,
              w.arrival_ns + opts_.replica_ack_timeout_ms * 1'000'000ull,
              std::move(w), resp});
        } else {
          Reply(w, resp, m, wake);
        }
      }
      if (st.ok()) {
        start += applied;
        if (applied == 0) break;  // defensive: cannot make progress
        continue;
      }
      // The op at start+applied failed; answer it and resume past it so
      // one bad request (a stale id, say) cannot fail its whole batch.
      const Work& w = batch[origin[start + applied]];
      Response resp;
      resp.seq = w.req.seq;
      resp.request_type = w.req.type;
      resp.status = WireStatusFromStatus(st);
      Reply(w, resp, m, wake);
      start += applied + 1;
    }
  }

  void DrainQueries(std::vector<Work>& batch,
                    const std::vector<size_t>& origin, CoreMetrics& m,
                    std::vector<int>* wake) {
    // Partition the read run: kSample bursts can fan out over the pool on
    // a thread-safe backend, everything else is answered serially.
    std::vector<size_t> samples;
    for (size_t i : origin) {
      if (batch[i].req.type == MsgType::kSample) samples.push_back(i);
    }
    struct QueryResult {
      Status st;
      std::vector<ItemId> ids;
    };
    std::vector<QueryResult> results(samples.size());
    if (!samples.empty()) {
      m.query_bursts.fetch_add(1, std::memory_order_relaxed);
      m.burst_queries.fetch_add(samples.size(), std::memory_order_relaxed);
      auto run_one = [&](int qi) {
        const Request& r = batch[samples[static_cast<size_t>(qi)]].req;
        QueryResult& out = results[static_cast<size_t>(qi)];
        out.st = sampler_->SampleInto(r.alpha, r.beta, &out.ids);
      };
      if (query_pool_ != nullptr && samples.size() > 1) {
        query_pool_->ParallelFor(static_cast<int>(samples.size()), run_one);
      } else {
        for (int qi = 0; qi < static_cast<int>(samples.size()); ++qi) {
          run_one(qi);
        }
      }
    }
    size_t sample_i = 0;
    for (size_t i : origin) {
      Work& w = batch[i];
      Response resp;
      resp.seq = w.req.seq;
      resp.request_type = w.req.type;
      switch (w.req.type) {
        case MsgType::kSample: {
          QueryResult& qr = results[sample_i++];
          resp.status = WireStatusFromStatus(qr.st);
          if (qr.st.ok()) {
            uint32_t cap = opts_.max_sample_ids;
            if (w.req.max_ids != 0 && w.req.max_ids < cap) {
              cap = w.req.max_ids;
            }
            if (qr.ids.size() > cap) qr.ids.resize(cap);
            resp.ids = std::move(qr.ids);
          }
          break;
        }
        case MsgType::kGetWeight: {
          const auto weight = sampler_->GetWeight(w.req.id);
          resp.status = WireStatusFromStatus(weight.status());
          if (weight.ok()) resp.weight = *weight;
          break;
        }
        case MsgType::kStats: {
          RefreshStatsCacheLocked();
          resp.json = StatsJson();
          break;
        }
        case MsgType::kSubscribe: {
          if (repl_log_ == nullptr) {
            resp.status = WireStatus::kUnsupported;
            break;
          }
          replica::ReplicationLog::SubscribeResult r = repl_log_->Subscribe(
              w.req.subscriber, w.req.epoch, w.req.wal_seq);
          resp.status = WireStatusFromStatus(r.status);
          if (r.status.ok()) {
            resp.subscriber = r.subscriber;
            resp.epoch = r.epoch;
            resp.total_bytes = r.snapshot_bytes;
            resp.wal_seq = r.wal_next_seq;
            resp.must_bootstrap = r.must_bootstrap;
          }
          break;
        }
        case MsgType::kWalSegment: {
          if (repl_log_ == nullptr) {
            resp.status = WireStatus::kUnsupported;
            break;
          }
          replica::ReplicationLog::SegmentResult r = repl_log_->ReadSegment(
              w.req.subscriber, w.req.epoch, w.req.wal_seq, w.req.max_bytes);
          resp.status = WireStatusFromStatus(r.status);
          if (r.status.ok()) {
            resp.epoch = r.epoch;
            resp.wal_seq = r.next_seq;
            resp.must_bootstrap = r.must_bootstrap;
            resp.blob = std::move(r.bytes);
          }
          break;
        }
        case MsgType::kSnapshotChunk: {
          if (repl_log_ == nullptr) {
            resp.status = WireStatus::kUnsupported;
            break;
          }
          replica::ReplicationLog::ChunkResult r =
              repl_log_->ReadSnapshotChunk(w.req.subscriber, w.req.epoch,
                                           w.req.offset, w.req.max_bytes);
          resp.status = WireStatusFromStatus(r.status);
          if (r.status.ok()) {
            resp.epoch = r.epoch;
            resp.total_bytes = r.total_bytes;
            resp.must_bootstrap = r.must_bootstrap;
            resp.blob = std::move(r.bytes);
          }
          break;
        }
        default:
          resp.status = WireStatus::kProtocolError;
          break;
      }
      Reply(w, resp, m, wake);
    }
  }

  void ProcessBatch(std::vector<Work>& batch, CoreMetrics& m) {
    std::vector<size_t> mutations;
    std::vector<size_t> reads;
    for (size_t i = 0; i < batch.size(); ++i) {
      if (IsMutation(batch[i].req.type)) {
        mutations.push_back(i);
      } else {
        reads.push_back(i);
      }
    }
    std::vector<int> wake;
    // Mutations first: a query admitted in the same drain cycle as an
    // earlier mutation observes it (per-connection arrival order gives
    // read-your-writes; cross-cycle FIFO gives monotonicity).
    if (!mutations.empty()) ApplyMutations(batch, mutations, m, &wake);
    if (!reads.empty()) DrainQueries(batch, reads, m, &wake);
    const uint64_t one = 1;
    for (int fd : wake) {
      [[maybe_unused]] ssize_t n = write(fd, &one, sizeof(one));
    }
  }

  // Replies every parked mutation whose WAL record min_replica_acks
  // replicas now cover; fails the ones past their ack deadline — and, at
  // drain (`fail_all`), every remaining one — with kIoError. The ack was
  // withheld, so failing is honest: the write is locally durable but its
  // replication guarantee was not met.
  void ReleaseParked(bool fail_all, CoreMetrics& m) {
    if (parked_.empty()) return;
    std::vector<int> wake;
    const uint64_t now = NowNs();
    const int need = static_cast<int>(opts_.min_replica_acks);
    size_t kept = 0;
    for (Parked& p : parked_) {
      if (!fail_all && repl_log_->AckCount(p.epoch, p.seq) >= need) {
        Reply(p.work, p.resp, m, &wake);
      } else if (fail_all || now > p.deadline_ns) {
        p.resp.status = WireStatus::kIoError;
        Reply(p.work, p.resp, m, &wake);
      } else {
        parked_[kept++] = std::move(p);
      }
    }
    parked_.resize(kept);
    const uint64_t one = 1;
    for (int fd : wake) {
      [[maybe_unused]] ssize_t n = write(fd, &one, sizeof(one));
    }
  }

  void BatchLoop() {
    CoreMetrics& m = metrics_.core(num_io_);
    std::vector<Work> batch;
    std::vector<std::function<void()>> jobs;
    uint64_t last_stats_refresh = 0;
    for (;;) {
      batch.clear();
      jobs.clear();
      {
        std::unique_lock<std::mutex> lock(qmu_);
        const auto ready = [this] {
          return !queue_.empty() || !control_.empty() ||
                 phase_.load(std::memory_order_acquire) >= 1;
        };
        if (parked_.empty()) {
          qcv_.wait(lock, ready);
        } else {
          // Parked replies need their ack/timeout checks even when no new
          // work arrives.
          qcv_.wait_for(lock, std::chrono::milliseconds(5), ready);
        }
        if (queue_.empty() && control_.empty() &&
            phase_.load(std::memory_order_acquire) >= 1) {
          break;
        }
        while (!control_.empty()) {
          jobs.push_back(std::move(control_.front()));
          control_.pop_front();
        }
        if (!queue_.empty()) {
          // Group-commit window: give other connections batch_window_us to
          // contribute before paying the ApplyBatch + fsync. Skipped when
          // the batch is already full or the server is draining.
          if (opts_.batch_window_us > 0 &&
              queue_.size() < opts_.max_batch_ops &&
              phase_.load(std::memory_order_acquire) == 0) {
            qcv_.wait_for(
                lock, std::chrono::microseconds(opts_.batch_window_us),
                [this] {
                  return queue_.size() >= opts_.max_batch_ops ||
                         phase_.load(std::memory_order_acquire) >= 1;
                });
          }
          const size_t take = std::min(
              queue_.size(), static_cast<size_t>(opts_.max_batch_ops));
          batch.reserve(take);
          for (size_t i = 0; i < take; ++i) {
            batch.push_back(std::move(queue_.front()));
            queue_.pop_front();
          }
        }
      }
      for (std::function<void()>& job : jobs) job();
      if (!batch.empty()) ProcessBatch(batch, m);
      ReleaseParked(/*fail_all=*/false, m);
      const uint64_t now = NowNs();
      if (now - last_stats_refresh > 100'000'000ull) {  // 100 ms
        RefreshStatsCacheLocked();
        last_stats_refresh = now;
      }
    }
    // Drain epilogue: every admitted request has been answered or parked.
    // Run any control job that slipped in before the exit was published,
    // strictly fail the parked replies (their acks can no longer arrive),
    // and make the acked state durable before the I/O threads flush.
    jobs.clear();
    {
      std::lock_guard<std::mutex> lock(qmu_);
      batch_done_ = true;
      while (!control_.empty()) {
        jobs.push_back(std::move(control_.front()));
        control_.pop_front();
      }
    }
    for (std::function<void()>& job : jobs) job();
    ReleaseParked(/*fail_all=*/true, m);
    if (durable_ != nullptr) {
      (void)durable_->SyncWal();
      (void)durable_->Checkpoint();
    }
    RefreshStatsCacheLocked();
    phase_.store(2, std::memory_order_release);
    WakeAllIo();
  }

  // Runs `fn` on the batch thread — the sampler's only owner — and blocks
  // until it completes. Must not be called from the batch thread itself.
  // \return kUnsupported once the batch thread has exited (post-drain).
  Status RunOnBatchThread(const std::function<void()>& fn) {
    auto done_mu = std::make_shared<std::mutex>();
    auto done_cv = std::make_shared<std::condition_variable>();
    auto done = std::make_shared<bool>(false);
    {
      std::lock_guard<std::mutex> lock(qmu_);
      if (batch_done_) {
        return UnsupportedError("server has drained; batch thread exited");
      }
      control_.push_back([done_mu, done_cv, done, fn] {
        fn();
        std::lock_guard<std::mutex> dl(*done_mu);
        *done = true;
        done_cv->notify_all();
      });
    }
    qcv_.notify_all();
    std::unique_lock<std::mutex> lock(*done_mu);
    done_cv->wait(lock, [&] { return *done; });
    return Status::Ok();
  }

  // --- Stats --------------------------------------------------------------

  // Refreshes the sampler-derived fields of the cached stats context.
  // Called only from the batch thread (sampler access) and from Start
  // before any thread runs.
  void RefreshStatsCacheLocked() {
    StatsContext ctx;
    ctx.sampler_name = sampler_->name();
    ctx.sampler_size = sampler_->size();
    ctx.sampler_total_weight = sampler_->TotalWeight().ToDouble();
    ctx.sampler_memory = sampler_->ApproxMemoryBytes();
    if (durable_ != nullptr) ctx.wal_bytes = durable_->wal_bytes();
    if (is_replica_.load(std::memory_order_acquire) && replica_ != nullptr) {
      ctx.replication_role = "replica";
      ctx.replica_epoch = replica_->epoch();
      ctx.replica_applied_seq = replica_->applied_seq();
      ctx.replica_divergent = replica_->divergent();
    } else if (repl_log_ != nullptr) {
      ctx.replication_role = "primary";
      ctx.min_replica_acks = opts_.min_replica_acks;
      ctx.parked_mutations = parked_.size();
      for (const replica::ReplicaLag& lag : repl_log_->Lags()) {
        ctx.replica_lags.push_back(ReplicaLagRow{
            lag.subscriber, lag.epoch, lag.applied_seq, lag.lag_records});
      }
    }
    if (sharded_ != nullptr) {
      for (const ShardedSampler::ShardStats& row :
           sharded_->ShardOccupancy()) {
        ctx.shards.push_back(
            ShardOccupancyRow{row.live, row.total_weight_double});
      }
    }
    std::lock_guard<std::mutex> lock(stats_mu_);
    // Keep the live fields from being zeroed between refreshes: they are
    // overwritten by FillLiveContext on every export anyway.
    cached_ctx_ = std::move(ctx);
  }

  void FillLiveContext(StatsContext* ctx) const {
    ctx->uptime_seconds =
        static_cast<double>(NowNs() - start_ns_) / 1e9;
    ctx->open_connections = open_conns_.load(std::memory_order_relaxed);
    ctx->queue_depth = queue_depth_.load(std::memory_order_relaxed);
    ctx->queue_limit = opts_.max_queue_depth;
    ctx->inflight_bytes = inflight_bytes_.load(std::memory_order_relaxed);
    ctx->inflight_limit = opts_.max_inflight_bytes;
    ctx->draining = phase_.load(std::memory_order_acquire) >= 1;
  }

  // --- State --------------------------------------------------------------

  const ServerOptions opts_;
  const int num_io_;
  MetricsRegistry metrics_;
  const uint64_t start_ns_;

  std::unique_ptr<Sampler> sampler_;
  persist::DurableSampler* durable_ = nullptr;  // aliases sampler_
  const ShardedSampler* sharded_ = nullptr;     // aliases the inner backend
  std::unique_ptr<ThreadPool> query_pool_;

  // --- Replication (docs/REPLICATION.md) ---
  // Primary side: created on a durable primary, owned and touched only by
  // the batch thread (like the sampler it tails).
  std::unique_ptr<replica::ReplicationLog> repl_log_;
  // Replica side: aliases sampler_ while serving as a replica (and the
  // retired sampler after a promotion; set once in BuildSampler).
  replica::ReplicaSampler* replica_ = nullptr;
  std::unique_ptr<Sampler> retired_replica_;  // keeps replica_ alive
  std::unique_ptr<replica::Follower> follower_;
  std::atomic<bool> is_replica_{false};
  std::string redirect_addr_;  // kNotPrimary body; fixed after Start
  // A mutation reply parked until min_replica_acks replicas cover its
  // WAL record. Batch-thread-only.
  struct Parked {
    uint64_t epoch = 0;
    uint64_t seq = 0;
    uint64_t deadline_ns = 0;
    Work work;
    Response resp;
  };
  std::deque<Parked> parked_;
  // One-shot jobs executed on the batch thread (sampler owner): promote,
  // DumpItems. Guarded by qmu_; signalled by qcv_.
  std::deque<std::function<void()>> control_;
  std::mutex promote_mu_;
  std::thread promote_thread_;  // signal-triggered promotion
  int promote_efd_ = -1;

  std::vector<int> listen_fds_;
  std::vector<int> wake_fds_;
  int drain_efd_ = -1;
  int bound_port_ = 0;

  // 0 = serving, 1 = draining (no new admissions), 2 = batcher done
  // (I/O threads flush and exit).
  std::atomic<int> phase_{0};
  std::atomic<bool> stopped_{false};

  std::mutex qmu_;
  std::condition_variable qcv_;
  std::deque<Work> queue_;
  bool batch_done_ = false;  // guarded by qmu_; batch thread has exited
  std::atomic<uint64_t> queue_depth_{0};
  std::atomic<uint64_t> inflight_bytes_{0};
  std::atomic<uint64_t> open_conns_{0};

  mutable std::mutex stats_mu_;
  StatsContext cached_ctx_;

  std::mutex join_mu_;
  std::vector<std::thread> io_threads_;
  std::thread batch_thread_;
};

// --- Public surface -------------------------------------------------------

Server::Server(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}

Server::~Server() = default;

StatusOr<std::unique_ptr<Server>> Server::Start(const ServerOptions& opts) {
  auto impl = std::make_unique<Impl>(opts);
  const Status st = impl->Start();
  if (!st.ok()) return st;
  return std::unique_ptr<Server>(new Server(std::move(impl)));
}

int Server::port() const { return impl_->port(); }
void Server::RequestDrain() { impl_->RequestDrain(); }
void Server::NotifyDrainFromSignal() { impl_->NotifyDrainFromSignal(); }
void Server::WaitUntilStopped() { impl_->WaitUntilStopped(); }
bool Server::stopped() const { return impl_->stopped(); }
std::string Server::StatsJson() const { return impl_->StatsJson(); }
uint64_t Server::shed_count() const { return impl_->shed_count(); }
bool Server::is_replica() const { return impl_->is_replica(); }
uint64_t Server::replica_epoch() const { return impl_->replica_epoch(); }
uint64_t Server::replica_applied_seq() const {
  return impl_->replica_applied_seq();
}
Status Server::replication_status() const {
  return impl_->replication_status();
}
Status Server::Promote(uint64_t min_epoch, uint64_t min_seq) {
  return impl_->Promote(min_epoch, min_seq);
}
void Server::NotifyPromoteFromSignal() { impl_->NotifyPromoteFromSignal(); }
Status Server::DumpItems(std::vector<ItemRecord>* out) const {
  return impl_->DumpItems(out);
}

}  // namespace server
}  // namespace dpss
