/// \file
/// \brief `dpss::server::Client` — a blocking TCP client for the
/// `dpss-serverd` wire protocol (`server/protocol.h`).
///
/// Two usage levels share one connection:
///
/// - **One-shot RPCs** (Ping, Insert, Sample, ...): send one request, block
///   for its response, translate the wire status back into a library
///   Status. This is what `dpss_cli connect` uses.
/// - **Pipelining** (SendRequest / Flush / ReadResponse): keep many
///   requests in flight and match responses by seq. This is what
///   `tools/dpss_loadgen` uses to saturate the server from a handful of
///   client threads.
///
/// The client is deliberately not thread-safe: loadgen gives each worker
/// thread its own connection, which is also the honest way to exercise the
/// server's per-connection accounting.

#ifndef DPSS_SERVER_CLIENT_H_
#define DPSS_SERVER_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/sampler.h"
#include "server/protocol.h"

namespace dpss {
namespace server {

/// The library Status corresponding to a wire status (kOk → Ok; serving
/// outcomes kShed/kShuttingDown/kProtocolError map onto kUnsupported-free
/// codes: kIoError-style transient errors keep their own messages).
Status StatusFromWireStatus(WireStatus ws);

/// A blocking client connection. Not thread-safe; one per thread.
class Client {
 public:
  /// Connects to `host:port` (IPv4 dotted quad).
  /// \return kIoError when the connect fails, kInvalidArgument for a bad
  ///   host string.
  static StatusOr<std::unique_ptr<Client>> Connect(const std::string& host,
                                                   int port);

  /// Closes the socket.
  ~Client();

  /// Not copyable (owns the socket).
  Client(const Client&) = delete;
  /// Not assignable.
  Client& operator=(const Client&) = delete;

  // --- One-shot RPCs (send + block for the matching response) -----------

  /// Round-trips a kPing.
  Status Ping();
  /// Inserts an item with weight `w`; returns its server-assigned id.
  StatusOr<ItemId> Insert(Weight w);
  /// Erases the item with id `id`.
  Status Erase(ItemId id);
  /// Sets the weight of item `id` to `w`.
  Status SetWeight(ItemId id, Weight w);
  /// Reads back the weight of item `id`.
  StatusOr<Weight> GetWeight(ItemId id);
  /// Draws one subset with per-query (α, β); `max_ids` caps the returned
  /// ids (0 = server default).
  StatusOr<std::vector<ItemId>> Sample(Rational64 alpha, Rational64 beta,
                                       uint32_t max_ids = 0);
  /// Fetches the live metrics JSON document.
  StatusOr<std::string> Stats();

  // --- Replication RPCs (replica→primary; docs/REPLICATION.md) -----------

  /// Registers (subscriber == 0) or refreshes a replication subscription,
  /// reporting the replica's applied position as its ack. The returned
  /// Response carries `subscriber`, the primary's `epoch`, the snapshot's
  /// `total_bytes`, the primary's `wal_seq`, and `must_bootstrap`.
  StatusOr<Response> Subscribe(uint64_t subscriber, uint64_t epoch,
                               uint64_t applied_seq);

  /// Pulls WAL records of `epoch` starting at `from_seq` (doubles as the
  /// ack "applied through from_seq - 1"). `max_bytes` caps the shipped
  /// bytes (0 = server default). The Response's `blob` holds whole raw
  /// records; `wal_seq` is the seq after the last one.
  StatusOr<Response> WalSegment(uint64_t subscriber, uint64_t epoch,
                                uint64_t from_seq, uint32_t max_bytes = 0);

  /// Pulls `max_bytes` of epoch `epoch`'s snapshot starting at byte
  /// `offset` (bootstrap path). The Response's `total_bytes` is the full
  /// snapshot size.
  StatusOr<Response> SnapshotChunk(uint64_t subscriber, uint64_t epoch,
                                   uint64_t offset, uint32_t max_bytes = 0);

  // --- Pipelining --------------------------------------------------------

  /// Encodes `req` into the send buffer with a fresh seq (returned).
  /// Nothing hits the socket until Flush (or an implicit flush inside a
  /// blocking read when the buffer is large).
  uint64_t SendRequest(Request req);

  /// Writes the entire send buffer to the socket.
  Status Flush();

  /// Blocks until the next response frame arrives (flushing first).
  /// \return kIoError on disconnect or a framing violation from the server
  ///   (which a correct server never produces).
  StatusOr<Response> ReadResponse();

  /// Number of requests sent (or buffered) without a matching
  /// ReadResponse yet.
  uint64_t pending() const { return sent_ - received_; }

  // --- Test hooks ---------------------------------------------------------

  /// Writes raw bytes to the socket, bypassing the codec (fuzz tests use
  /// this to deliver corrupt frames).
  Status SendRaw(std::string_view bytes);

  /// Reads until the peer closes the connection; returns the bytes seen.
  /// Used by tests asserting "server disconnects on a poisoned stream".
  std::string ReadUntilClose();

  /// The underlying socket fd (test introspection only).
  int fd() const { return fd_; }

 private:
  explicit Client(int fd) : fd_(fd) {}

  /// Sends one request and blocks for the response with the same seq
  /// (responses to earlier pipelined requests are queued aside).
  StatusOr<Response> Call(Request req);

  int fd_;
  uint64_t next_seq_ = 1;
  uint64_t sent_ = 0;
  uint64_t received_ = 0;
  std::string sendbuf_;
  std::string recvbuf_;
  size_t recvpos_ = 0;
};

}  // namespace server
}  // namespace dpss

#endif  // DPSS_SERVER_CLIENT_H_
