// Metrics implementation: histogram bucket math, aggregation, and the JSON
// renderer for the STATS payload. The JSON is hand-rolled (no dependency)
// and its key set is part of the protocol surface — tests pin it, and
// tools/dpss_loadgen + dashboards parse it.

#include "server/metrics.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "util/bits.h"

namespace dpss {
namespace server {

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kInsert: return "insert";
    case OpKind::kErase: return "erase";
    case OpKind::kSetWeight: return "setweight";
    case OpKind::kGetWeight: return "getweight";
    case OpKind::kSample: return "sample";
    case OpKind::kStats: return "stats";
    case OpKind::kPing: return "ping";
  }
  return "unknown";
}

int LatencyHistogram::BucketIndex(uint64_t value) {
  if (value < 4) return static_cast<int>(value);
  const int o = FloorLog2(value);
  const int sub = static_cast<int>((value >> (o - 2)) & 3);
  const int index = 4 * (o - 1) + sub;
  return index < kNumBuckets ? index : kNumBuckets - 1;
}

uint64_t LatencyHistogram::BucketLowerBound(int index) {
  if (index < 4) return static_cast<uint64_t>(index);
  const int o = index / 4 + 1;
  const int sub = index % 4;
  return (uint64_t{1} << o) +
         static_cast<uint64_t>(sub) * (uint64_t{1} << (o - 2));
}

uint64_t LatencyHistogram::BucketUpperBound(int index) {
  if (index < 4) return static_cast<uint64_t>(index);
  const int o = index / 4 + 1;
  return BucketLowerBound(index) + (uint64_t{1} << (o - 2)) - 1;
}

uint64_t HistogramSnapshot::count() const {
  uint64_t n = 0;
  for (uint64_t c : buckets_) n += c;
  return n;
}

uint64_t HistogramSnapshot::ValueAtQuantile(double q) const {
  const uint64_t n = count();
  if (n == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Rank of the target sample, 1-based; q=0 means the smallest sample.
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(n));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  uint64_t seen = 0;
  for (int i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) return LatencyHistogram::BucketUpperBound(i);
  }
  return LatencyHistogram::BucketUpperBound(LatencyHistogram::kNumBuckets -
                                            1);
}

double HistogramSnapshot::Mean() const {
  const uint64_t n = count();
  if (n == 0) return 0.0;
  double sum = 0.0;
  for (int i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    const double mid =
        0.5 * (static_cast<double>(LatencyHistogram::BucketLowerBound(i)) +
               static_cast<double>(LatencyHistogram::BucketUpperBound(i)));
    sum += mid * static_cast<double>(buckets_[i]);
  }
  return sum / static_cast<double>(n);
}

namespace {

void AppendKV(std::string* out, const char* key, uint64_t v) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"%s\": %" PRIu64, key, v);
  out->append(buf);
}

void AppendKV(std::string* out, const char* key, double v) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"%s\": %.6g", key, v);
  out->append(buf);
}

void AppendKVString(std::string* out, const char* key, const std::string& v) {
  out->append("\"").append(key).append("\": \"");
  // The only strings exported are registry names and op names; escape the
  // JSON-special characters anyway so the document can never be broken.
  for (char c : v) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out->push_back(c);
    }
  }
  out->append("\"");
}

uint64_t SumCounter(const std::vector<CoreMetrics>& cores,
                    std::atomic<uint64_t> CoreMetrics::* field) {
  uint64_t total = 0;
  for (const CoreMetrics& c : cores) {
    total += (c.*field).load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace

std::string MetricsRegistry::ToJson(const StatsContext& ctx) const {
  std::string out;
  out.reserve(2048);
  out.append("{\n  \"server\": {");
  AppendKV(&out, "uptime_seconds", ctx.uptime_seconds);
  out.append(", ");
  AppendKV(&out, "open_connections", ctx.open_connections);
  out.append(", ");
  AppendKV(&out, "connections_opened",
           SumCounter(cores_, &CoreMetrics::conns_opened));
  out.append(", ");
  AppendKV(&out, "connections_closed",
           SumCounter(cores_, &CoreMetrics::conns_closed));
  out.append(", ");
  AppendKV(&out, "bytes_in", SumCounter(cores_, &CoreMetrics::bytes_in));
  out.append(", ");
  AppendKV(&out, "bytes_out", SumCounter(cores_, &CoreMetrics::bytes_out));
  out.append(", ");
  AppendKV(&out, "frames_in", SumCounter(cores_, &CoreMetrics::frames_in));
  out.append(", ");
  AppendKV(&out, "bad_frames", SumCounter(cores_, &CoreMetrics::bad_frames));
  out.append(", ");
  AppendKV(&out, "protocol_errors",
           SumCounter(cores_, &CoreMetrics::protocol_errors));
  out.append(", ");
  AppendKV(&out, "shed", SumCounter(cores_, &CoreMetrics::shed));
  out.append(", ");
  AppendKV(&out, "shutdown_rejects",
           SumCounter(cores_, &CoreMetrics::shutdown_rejects));
  out.append(", ");
  AppendKV(&out, "draining", static_cast<uint64_t>(ctx.draining ? 1 : 0));
  out.append("},\n  \"ops\": {");
  bool first_op = true;
  for (int k = 0; k < kNumOpKinds; ++k) {
    HistogramSnapshot snap;
    uint64_t count = 0, errors = 0;
    for (const CoreMetrics& c : cores_) {
      count += c.op_count[k].load(std::memory_order_relaxed);
      errors += c.op_errors[k].load(std::memory_order_relaxed);
      c.op_latency_ns[k].AccumulateInto(snap.buckets());
    }
    if (!first_op) out.append(", ");
    first_op = false;
    out.append("\"")
        .append(OpKindName(static_cast<OpKind>(k)))
        .append("\": {");
    AppendKV(&out, "count", count);
    out.append(", ");
    AppendKV(&out, "errors", errors);
    out.append(", ");
    AppendKV(&out, "mean_ns", snap.Mean());
    out.append(", ");
    AppendKV(&out, "p50_ns", snap.ValueAtQuantile(0.50));
    out.append(", ");
    AppendKV(&out, "p99_ns", snap.ValueAtQuantile(0.99));
    out.append(", ");
    AppendKV(&out, "p999_ns", snap.ValueAtQuantile(0.999));
    out.append("}");
  }
  out.append("},\n  \"batch\": {");
  {
    HistogramSnapshot occ;
    for (const CoreMetrics& c : cores_) {
      c.batch_occupancy.AccumulateInto(occ.buckets());
    }
    AppendKV(&out, "batches", SumCounter(cores_, &CoreMetrics::batches));
    out.append(", ");
    AppendKV(&out, "batched_ops",
             SumCounter(cores_, &CoreMetrics::batched_ops));
    out.append(", ");
    AppendKV(&out, "query_bursts",
             SumCounter(cores_, &CoreMetrics::query_bursts));
    out.append(", ");
    AppendKV(&out, "burst_queries",
             SumCounter(cores_, &CoreMetrics::burst_queries));
    out.append(", ");
    AppendKV(&out, "mean_occupancy", occ.Mean());
    out.append(", ");
    AppendKV(&out, "p99_occupancy", occ.ValueAtQuantile(0.99));
  }
  out.append("},\n  \"queue\": {");
  AppendKV(&out, "depth", ctx.queue_depth);
  out.append(", ");
  AppendKV(&out, "limit", ctx.queue_limit);
  out.append(", ");
  AppendKV(&out, "inflight_bytes", ctx.inflight_bytes);
  out.append(", ");
  AppendKV(&out, "inflight_limit", ctx.inflight_limit);
  out.append("},\n  \"sampler\": {");
  AppendKVString(&out, "name", ctx.sampler_name);
  out.append(", ");
  AppendKV(&out, "size", ctx.sampler_size);
  out.append(", ");
  AppendKV(&out, "total_weight", ctx.sampler_total_weight);
  out.append(", ");
  AppendKV(&out, "memory_bytes", ctx.sampler_memory);
  out.append(", ");
  AppendKV(&out, "wal_bytes", ctx.wal_bytes);
  out.append("},\n  \"shards\": [");
  for (size_t s = 0; s < ctx.shards.size(); ++s) {
    if (s != 0) out.append(", ");
    out.append("{");
    AppendKV(&out, "shard", static_cast<uint64_t>(s));
    out.append(", ");
    AppendKV(&out, "live", ctx.shards[s].live);
    out.append(", ");
    AppendKV(&out, "total_weight", ctx.shards[s].total_weight);
    out.append("}");
  }
  out.append("]");
  if (!ctx.replication_role.empty()) {
    out.append(",\n  \"replication\": {");
    AppendKVString(&out, "role", ctx.replication_role);
    if (ctx.replication_role == "replica") {
      out.append(", ");
      AppendKV(&out, "epoch", ctx.replica_epoch);
      out.append(", ");
      AppendKV(&out, "applied_seq", ctx.replica_applied_seq);
      out.append(", ");
      AppendKV(&out, "divergent",
               static_cast<uint64_t>(ctx.replica_divergent ? 1 : 0));
    } else {
      out.append(", ");
      AppendKV(&out, "min_replica_acks",
               static_cast<uint64_t>(ctx.min_replica_acks));
      out.append(", ");
      AppendKV(&out, "parked_mutations", ctx.parked_mutations);
      out.append(", \"replicas\": [");
      for (size_t r = 0; r < ctx.replica_lags.size(); ++r) {
        if (r != 0) out.append(", ");
        out.append("{");
        AppendKV(&out, "subscriber", ctx.replica_lags[r].subscriber);
        out.append(", ");
        AppendKV(&out, "epoch", ctx.replica_lags[r].epoch);
        out.append(", ");
        AppendKV(&out, "applied_seq", ctx.replica_lags[r].applied_seq);
        out.append(", ");
        AppendKV(&out, "lag_records", ctx.replica_lags[r].lag_records);
        out.append("}");
      }
      out.append("]");
    }
    out.append("}");
  }
  out.append("\n}\n");
  return out;
}

}  // namespace server
}  // namespace dpss
