#include "persist/crc32c.h"

namespace dpss {
namespace persist {

namespace {

// Table for the Castagnoli polynomial 0x1EDC6F41 (reflected 0x82F63B78).
struct Crc32cTable {
  uint32_t t[256];
  Crc32cTable() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0x82F63B78u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
  }
};

}  // namespace

uint32_t Crc32c(std::string_view data, uint32_t init) {
  static const Crc32cTable table;
  uint32_t c = ~init;
  for (const char ch : data) {
    c = table.t[(c ^ static_cast<unsigned char>(ch)) & 0xff] ^ (c >> 8);
  }
  return ~c;
}

}  // namespace persist
}  // namespace dpss
