#include "persist/crc32c.h"

#include <cstring>

namespace dpss {
namespace persist {

namespace {

// Table for the Castagnoli polynomial 0x1EDC6F41 (reflected 0x82F63B78).
struct Crc32cTable {
  uint32_t t[256];
  Crc32cTable() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0x82F63B78u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
  }
};

uint32_t Crc32cSoftware(std::string_view data, uint32_t init) {
  static const Crc32cTable table;
  uint32_t c = ~init;
  for (const char ch : data) {
    c = table.t[(c ^ static_cast<unsigned char>(ch)) & 0xff] ^ (c >> 8);
  }
  return ~c;
}

// 64-bit only: __builtin_ia32_crc32di does not exist in 32-bit mode.
#if defined(__x86_64__)

// Hardware path: SSE4.2's crc32 instruction computes exactly the
// Castagnoli polynomial. Matters here because the v2 snapshot checksums
// every 4-KiB arena page — at table speed (~1 byte/cycle) the CRC would
// rival the memcpy it guards; the instruction does 8 bytes/cycle.
__attribute__((target("sse4.2")))
uint32_t Crc32cHardware(std::string_view data, uint32_t init) {
  uint64_t c = ~init;
  const char* p = data.data();
  size_t n = data.size();
  while (n >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    c = __builtin_ia32_crc32di(c, word);
    p += 8;
    n -= 8;
  }
  uint32_t c32 = static_cast<uint32_t>(c);
  while (n > 0) {
    c32 = __builtin_ia32_crc32qi(c32, static_cast<unsigned char>(*p));
    ++p;
    --n;
  }
  return ~c32;
}

bool HaveSse42() { return __builtin_cpu_supports("sse4.2") != 0; }

#endif  // x86-64

}  // namespace

uint32_t Crc32c(std::string_view data, uint32_t init) {
#if defined(__x86_64__)
  static const bool hw = HaveSse42();
  if (hw) return Crc32cHardware(data, init);
#endif
  return Crc32cSoftware(data, init);
}

}  // namespace persist
}  // namespace dpss
