/// \file
/// \brief The versioned, checksummed snapshot container: one file format
/// that serializes **any** registered `dpss::Sampler` backend.
///
/// Layout (all integers little-endian):
///
/// \code
///   file   := magic(8) frame*                      magic = "DPSSNP01"
///   frame  := type(1) len(4) payload[len] crc(4)   crc = masked CRC32C
///                                                        over type+payload
///   frames := header (payload | generic) end
/// \endcode
///
/// The **header** frame records the container version, the backend registry
/// name, the `SamplerSpec` to rebuild it with, and the item count and exact
/// Σw of the saved state (cross-checked after restore). The **payload**
/// frame carries the backend's native `Serialize` bytes — every built-in
/// backend has a native format that round-trips ids, generations and
/// free-slot order exactly. Backends registered without
/// `capabilities().snapshots` fall back to a **generic** frame of
/// (id, weight) records dumped via `Sampler::DumpItems` and replayed
/// through `InsertWeight` (state-equivalent weights; fresh ids) — the same
/// frame doubles as the cross-backend export format. The **end** frame
/// seals the container (frame count + payload byte count), so a truncated
/// file is always detected even when the cut lands between frames.
///
/// Corruption policy: `LoadSampler`/`LoadSamplerInto` return `kBadSnapshot`
/// for *any* malformed input — truncations, bit flips, version bumps, a
/// backend name the registry does not know — and never abort or read out
/// of bounds (fuzzed in tests/persist_snapshot_test.cc). A future format
/// change must bump `kContainerVersion` and add an explicit reader; the
/// golden-file tests pin today's bytes so a silent change breaks loudly.

#ifndef DPSS_PERSIST_SNAPSHOT_H_
#define DPSS_PERSIST_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "bigint/big_uint.h"
#include "core/sampler.h"
#include "persist/env.h"

namespace dpss {
namespace persist {

/// Container magic: the ASCII bytes "DPSSNP01".
inline constexpr uint64_t kContainerMagic = 0x3130504E53535044ULL;
/// Current container format version (header frames carry it; readers must
/// reject versions they do not know).
inline constexpr uint32_t kContainerVersion = 1;

/// Frame tags of the container format.
enum class FrameType : uint8_t {
  kHeader = 1,   ///< Backend name, spec, size, Σw.
  kPayload = 2,  ///< Native backend Serialize bytes.
  kGeneric = 3,  ///< Portable (id, weight) item records.
  kEnd = 4,      ///< Seal: frame count + payload byte count.
};

/// Everything the header frame records about a snapshot.
struct SnapshotInfo {
  uint32_t version = 0;     ///< Container version the file was written at.
  std::string backend;      ///< Registry name ("halt", "sharded8:odss", ...).
  SamplerSpec spec;         ///< Spec to rebuild the backend with.
  uint64_t size = 0;        ///< Live items at save time.
  BigUInt total_weight;     ///< Exact Σw at save time.
};

/// Streams a container snapshot into a caller-owned string. Call order:
/// BeginSnapshot, then exactly one of AddPayloadFrame/AddGenericFrame
/// (normally via Sampler::SaveTo), then Finish. Not thread-safe.
class SnapshotWriter {
 public:
  /// Frames will be appended to `*out` (not cleared first).
  explicit SnapshotWriter(std::string* out) : out_(out) {}

  /// Writes the magic and the header frame describing `s` (name, size, Σw)
  /// and the spec it should be rebuilt with.
  Status BeginSnapshot(const Sampler& s, const SamplerSpec& spec);

  /// Adds the native-payload frame. \pre BeginSnapshot succeeded; no data
  /// frame written yet.
  Status AddPayloadFrame(std::string_view bytes);

  /// Adds the portable item-record frame. Same preconditions.
  Status AddGenericFrame(const std::vector<ItemRecord>& items);

  /// Seals the container with the end frame.
  Status Finish();

 private:
  void AppendFrame(FrameType type, std::string_view payload);

  std::string* out_;
  uint64_t payload_bytes_ = 0;
  uint32_t data_frames_ = 0;
  bool begun_ = false;
  bool finished_ = false;
};

/// Walks the frames of a container snapshot, validating the magic and
/// every frame CRC as it goes. Never reads out of bounds; any malformation
/// surfaces as `kBadSnapshot`.
class SnapshotReader {
 public:
  /// One validated frame; `payload` points into the reader's input.
  struct Frame {
    FrameType type = FrameType::kEnd;  ///< Frame tag.
    std::string_view payload;          ///< CRC-verified frame contents.
  };

  /// The reader borrows `bytes`; it must outlive the reader and any Frame.
  explicit SnapshotReader(std::string_view bytes) : bytes_(bytes) {}

  /// Validates the magic and reads the header frame into `*info`.
  Status ReadHeader(SnapshotInfo* info);

  /// The next frame after the header. A `kEnd` frame is validated against
  /// the frames actually seen and ends iteration.
  StatusOr<Frame> NextFrame();

 private:
  std::string_view bytes_;
  size_t pos_ = 0;
  uint64_t payload_bytes_ = 0;
  uint32_t data_frames_ = 0;
  bool header_done_ = false;
  bool end_seen_ = false;
};

// --- One-call drivers -----------------------------------------------------

/// Serializes `s` into a container snapshot appended to `*out` (native
/// payload when the backend has one, generic records otherwise).
Status SaveSampler(const Sampler& s, const SamplerSpec& spec,
                   std::string* out);

/// Like SaveSampler but forces the portable generic frame — the
/// cross-backend export path (restore via LoadSampler into any backend
/// name recorded... the header keeps `s`'s own name; use LoadSamplerAs to
/// import into a different backend).
Status ExportPortable(const Sampler& s, const SamplerSpec& spec,
                      std::string* out);

/// Writes SaveSampler's bytes to `path` through `env` and syncs them. Not
/// atomic on its own — callers needing atomic replacement write a temp
/// name and rename (see persist/recovery.cc).
Status SaveSamplerToFile(const Sampler& s, const SamplerSpec& spec, Env* env,
                         const std::string& path);

/// Parses just the header: which backend, which spec, how much state.
StatusOr<SnapshotInfo> ReadSnapshotInfo(const std::string& bytes);

/// Rebuilds a sampler from a container snapshot: constructs the backend
/// named in the header with the recorded spec, restores the payload (ids
/// preserved for native payloads), and cross-checks size and Σw.
StatusOr<std::unique_ptr<Sampler>> LoadSampler(const std::string& bytes);

/// Like LoadSampler but constructs backend `name` instead of the header's.
/// Only generic-frame snapshots can cross backends (native payloads return
/// `kBadSnapshot` on a name mismatch); ids are freshly assigned.
StatusOr<std::unique_ptr<Sampler>> LoadSamplerAs(const std::string& name,
                                                 const SamplerSpec& spec,
                                                 const std::string& bytes);

/// Restores a container snapshot into an existing sampler. Native payloads
/// require `s->name()` to equal the header backend; generic frames require
/// `s` to be empty (they insert, not replace).
Status LoadSamplerInto(const std::string& bytes, Sampler* s);

// --- Generic record codec (exposed for tests) -----------------------------

/// Encodes item records as the generic-frame payload.
void EncodeItemRecords(const std::vector<ItemRecord>& items,
                       std::string* out);
/// Decodes a generic-frame payload; `kBadSnapshot` on malformed input.
Status DecodeItemRecords(std::string_view payload,
                         std::vector<ItemRecord>* out);

}  // namespace persist
}  // namespace dpss

#endif  // DPSS_PERSIST_SNAPSHOT_H_
