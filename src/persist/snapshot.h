/// \file
/// \brief The versioned, checksummed snapshot container: one file format
/// that serializes **any** registered `dpss::Sampler` backend.
///
/// Layout (all integers little-endian):
///
/// \code
///   file   := magic(8) frame*                      magic = "DPSSNP01"
///   frame  := type(1) len(4) payload[len] crc(4)   crc = masked CRC32C
///                                                        over type+payload
///   frames := header (payload | generic) end
/// \endcode
///
/// The **header** frame records the container version, the backend registry
/// name, the `SamplerSpec` to rebuild it with, and the item count and exact
/// Σw of the saved state (cross-checked after restore). The **payload**
/// frame carries the backend's native `Serialize` bytes — every built-in
/// backend has a native format that round-trips ids, generations and
/// free-slot order exactly. Backends registered without
/// `capabilities().snapshots` fall back to a **generic** frame of
/// (id, weight) records dumped via `Sampler::DumpItems` and replayed
/// through `InsertWeight` (state-equivalent weights; fresh ids) — the same
/// frame doubles as the cross-backend export format. The **end** frame
/// seals the container (frame count + payload byte count), so a truncated
/// file is always detected even when the cut lands between frames.
///
/// **Version 2 (arena images).** Backends with
/// `capabilities().arena_image` can snapshot as a *raw arena image*
/// instead of a parsed payload: an **arena-image** frame carries only
/// metadata (per-image root block, sizes, and a CRC32C per 4-KiB page);
/// the raw pages follow the frame, zero-padded so they start on a 4-KiB
/// *file* offset. Because the arena layout is position-independent,
/// recovery can `Env::MapFile` the snapshot copy-on-write and hand the
/// mapped slices straight to `Sampler::RestoreFromArenas` — load cost is
/// page-fault-on-demand instead of a full parse. An **arena-delta** frame
/// is the same shape restricted to the pages dirtied since a base epoch
/// (`persist/recovery.cc` chains deltas onto the last full image). v2
/// files still parse through the ordinary byte-based `LoadSampler` (pages
/// are then copied to heap arenas), so golden files and fuzzing cover
/// both formats with one driver.
///
/// Corruption policy: `LoadSampler`/`LoadSamplerInto` return `kBadSnapshot`
/// for *any* malformed input — truncations, bit flips, version bumps, a
/// backend name the registry does not know — and never abort or read out
/// of bounds (fuzzed in tests/persist_snapshot_test.cc). A future format
/// change must bump `kContainerVersion` and add an explicit reader; the
/// golden-file tests pin today's bytes so a silent change breaks loudly.

#ifndef DPSS_PERSIST_SNAPSHOT_H_
#define DPSS_PERSIST_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "bigint/big_uint.h"
#include "core/sampler.h"
#include "persist/env.h"

namespace dpss {
namespace persist {

/// Container magic: the ASCII bytes "DPSSNP01".
inline constexpr uint64_t kContainerMagic = 0x3130504E53535044ULL;
/// The classic (parsed-payload) container format version.
inline constexpr uint32_t kContainerVersion = 1;
/// The arena-image container format version (see the file comment).
inline constexpr uint32_t kContainerVersionArena = 2;
/// Raw arena pages inside a v2 file start at a multiple of this file
/// offset and are written in whole 4-KiB units (== Arena::kPageSize).
inline constexpr uint64_t kArenaFileAlign = 4096;

/// Frame tags of the container format.
enum class FrameType : uint8_t {
  kHeader = 1,      ///< Backend name, spec, size, Σw.
  kPayload = 2,     ///< Native backend Serialize bytes.
  kGeneric = 3,     ///< Portable (id, weight) item records.
  kEnd = 4,         ///< Seal: frame count + payload byte count.
  kArenaImage = 5,  ///< v2: arena metadata; full raw pages follow the frame.
  kArenaDelta = 6,  ///< v2: arena metadata; only dirty pages follow.
};

/// Everything the header frame records about a snapshot.
struct SnapshotInfo {
  uint32_t version = 0;     ///< Container version the file was written at.
  std::string backend;      ///< Registry name ("halt", "sharded8:odss", ...).
  SamplerSpec spec;         ///< Spec to rebuild the backend with.
  uint64_t size = 0;        ///< Live items at save time.
  BigUInt total_weight;     ///< Exact Σw at save time.
};

/// Streams a container snapshot into a caller-owned string. Call order:
/// BeginSnapshot, then exactly one of AddPayloadFrame/AddGenericFrame
/// (normally via Sampler::SaveTo), then Finish. Not thread-safe.
class SnapshotWriter {
 public:
  /// Frames will be appended to `*out` (not cleared first). `version` is
  /// recorded in the header frame; arena frames require
  /// `kContainerVersionArena` *and* an `*out` that starts empty (raw-page
  /// alignment is computed from the start of the string).
  explicit SnapshotWriter(std::string* out,
                          uint32_t version = kContainerVersion)
      : out_(out), version_(version) {}

  /// Writes the magic and the header frame describing `s` (name, size, Σw)
  /// and the spec it should be rebuilt with.
  Status BeginSnapshot(const Sampler& s, const SamplerSpec& spec);

  /// Adds the native-payload frame. \pre BeginSnapshot succeeded; no data
  /// frame written yet.
  Status AddPayloadFrame(std::string_view bytes);

  /// Adds the portable item-record frame. Same preconditions.
  Status AddGenericFrame(const std::vector<ItemRecord>& items);

  /// Adds an arena frame (`kArenaImage` or `kArenaDelta`): the metadata
  /// payload is CRC-framed like any other frame, then the file is
  /// zero-padded to the next 4-KiB boundary and every page in `pages`
  /// (each exactly Arena::kPageSize bytes, covered by the per-page CRCs
  /// inside `meta`) is appended raw. Same preconditions as
  /// AddPayloadFrame, plus the writer must have been constructed with
  /// `kContainerVersionArena`.
  Status AddArenaFrame(FrameType type, std::string_view meta,
                       const std::vector<const std::string*>& pages);

  /// Seals the container with the end frame.
  Status Finish();

 private:
  void AppendFrame(FrameType type, std::string_view payload);

  std::string* out_;
  uint32_t version_ = kContainerVersion;
  uint64_t payload_bytes_ = 0;
  uint32_t data_frames_ = 0;
  bool begun_ = false;
  bool finished_ = false;
};

/// Walks the frames of a container snapshot, validating the magic and
/// every frame CRC as it goes. Never reads out of bounds; any malformation
/// surfaces as `kBadSnapshot`.
class SnapshotReader {
 public:
  /// One validated frame; `payload` points into the reader's input.
  struct Frame {
    FrameType type = FrameType::kEnd;  ///< Frame tag.
    std::string_view payload;          ///< CRC-verified frame contents.
    /// Arena frames only: byte offset (from the start of the container)
    /// where the frame's raw pages begin, and how many pages follow. The
    /// reader bounds-checks the region but leaves per-page CRC validation
    /// to the loader.
    uint64_t pages_offset = 0;
    uint64_t pages_stored = 0;
  };

  /// The reader borrows `bytes`; it must outlive the reader and any Frame.
  explicit SnapshotReader(std::string_view bytes) : bytes_(bytes) {}

  /// Validates the magic and reads the header frame into `*info`.
  Status ReadHeader(SnapshotInfo* info);

  /// The next frame after the header. A `kEnd` frame is validated against
  /// the frames actually seen and ends iteration.
  StatusOr<Frame> NextFrame();

  /// The container bytes the reader was constructed over (arena loaders
  /// slice raw-page regions out of it via Frame::pages_offset).
  std::string_view bytes() const { return bytes_; }

 private:
  std::string_view bytes_;
  size_t pos_ = 0;
  uint32_t version_ = kContainerVersion;
  uint64_t payload_bytes_ = 0;
  uint32_t data_frames_ = 0;
  bool header_done_ = false;
  bool end_seen_ = false;
};

// --- One-call drivers -----------------------------------------------------

/// Serializes `s` into a container snapshot appended to `*out` (native
/// payload when the backend has one, generic records otherwise).
Status SaveSampler(const Sampler& s, const SamplerSpec& spec,
                   std::string* out);

/// Like SaveSampler but forces the portable generic frame — the
/// cross-backend export path (restore via LoadSampler into any backend
/// name recorded... the header keeps `s`'s own name; use LoadSamplerAs to
/// import into a different backend).
Status ExportPortable(const Sampler& s, const SamplerSpec& spec,
                      std::string* out);

/// Writes SaveSampler's bytes to `path` through `env` and syncs them. Not
/// atomic on its own — callers needing atomic replacement write a temp
/// name and rename (see persist/recovery.cc).
Status SaveSamplerToFile(const Sampler& s, const SamplerSpec& spec, Env* env,
                         const std::string& path);

// --- v2 arena-image drivers -----------------------------------------------

/// Serializes `s` as a v2 arena-image snapshot (requires
/// `capabilities().arena_image`). Collects **full** images — which resets
/// the backend's dirty-page baseline, making this snapshot the base the
/// next incremental delta is relative to. Non-const for exactly that
/// reason; the item state is untouched.
Status SaveSamplerArena(Sampler* s, const SamplerSpec& spec,
                        std::string* out);

/// Serializes only the pages dirtied since the last collection as a v2
/// arena-delta container. `base_epoch` records which epoch the delta
/// extends; the header frame carries the *post-delta* size/Σw. Also
/// resets the dirty baseline (the delta is now the baseline).
Status SaveSamplerArenaDelta(Sampler* s, const SamplerSpec& spec,
                             uint64_t base_epoch, std::string* out);

/// Writes `bytes` to `path` through a `MapMode::kShared` mapping —
/// truncate to size, memcpy, one Msync, then an fsync of the mapped file
/// (Msync covers the pages; the fsync covers the size and block
/// allocations) — falling back to buffered Append+Sync when the env has
/// no write-through mappings. The file is durable (data and metadata,
/// not the directory entry) after Ok.
Status WriteFileViaMap(Env* env, const std::string& path,
                       std::string_view bytes);

/// Parses a mapped v2 container and stages its images as ArenaLoads whose
/// arenas adopt copy-on-write slices of `map` (no page copies; the
/// mapping is kept alive by the loads). `verify_pages` re-checksums every
/// stored page against the frame metadata up front; without it only the
/// metadata frame CRCs are checked and page integrity rests on the
/// write-path ordering (sync before rename). Appends to `*loads`.
Status ParseArenaContainer(std::shared_ptr<MappedFile> map,
                           bool verify_pages, SnapshotInfo* info,
                           std::vector<ArenaLoad>* loads);

/// Parses a mapped v2 arena-delta container and applies its dirty pages
/// onto `*loads` (staged by ParseArenaContainer / earlier deltas). The
/// delta must extend `expected_base_epoch` and carry the same image
/// count; `*info` is replaced with the delta's header (the post-delta
/// state). Copy-on-write: the base mapping is never written through.
Status ApplyArenaDeltaFile(std::shared_ptr<MappedFile> map,
                           bool verify_pages,
                           uint64_t expected_base_epoch, SnapshotInfo* info,
                           std::vector<ArenaLoad>* loads);

/// Finishes an arena restore: constructs the backend named in `info`,
/// hands it the staged loads, and cross-checks size and Σw against the
/// header.
StatusOr<std::unique_ptr<Sampler>> RestoreArenaSampler(
    const SnapshotInfo& info, std::vector<ArenaLoad>&& loads);

/// Parses just the header: which backend, which spec, how much state.
StatusOr<SnapshotInfo> ReadSnapshotInfo(std::string_view bytes);

/// Rebuilds a sampler from a container snapshot: constructs the backend
/// named in the header with the recorded spec, restores the payload (ids
/// preserved for native payloads), and cross-checks size and Σw.
StatusOr<std::unique_ptr<Sampler>> LoadSampler(const std::string& bytes);

/// Like LoadSampler but constructs backend `name` instead of the header's.
/// Only generic-frame snapshots can cross backends (native payloads return
/// `kBadSnapshot` on a name mismatch); ids are freshly assigned.
StatusOr<std::unique_ptr<Sampler>> LoadSamplerAs(const std::string& name,
                                                 const SamplerSpec& spec,
                                                 const std::string& bytes);

/// Restores a container snapshot into an existing sampler. Native payloads
/// require `s->name()` to equal the header backend; generic frames require
/// `s` to be empty (they insert, not replace).
Status LoadSamplerInto(const std::string& bytes, Sampler* s);

// --- Generic record codec (exposed for tests) -----------------------------

/// Encodes item records as the generic-frame payload.
void EncodeItemRecords(const std::vector<ItemRecord>& items,
                       std::string* out);
/// Decodes a generic-frame payload; `kBadSnapshot` on malformed input.
Status DecodeItemRecords(std::string_view payload,
                         std::vector<ItemRecord>* out);

}  // namespace persist
}  // namespace dpss

#endif  // DPSS_PERSIST_SNAPSHOT_H_
