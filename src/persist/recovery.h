/// \file
/// \brief Crash-safe persistence for any backend: `RecoveryManager::Open`
/// + the `DurableSampler` wrapper (snapshot + write-ahead log).
///
/// A durable directory holds exactly one logical state as a pair of files
/// per *epoch* N:
///
/// \code
///   <dir>/snapshot-N    container snapshot of the state at rotation time
///   <dir>/delta-N       arena-delta: pages dirtied since epoch N-1
///                       (incremental checkpoints only)
///   <dir>/wal-N         every mutation applied since epoch N
/// \endcode
///
/// Epoch N's state is either snapshot-N, or the newest snapshot-S (S < N)
/// plus the *consecutive* deltas delta-(S+1) .. delta-N. Incremental
/// checkpoints extend the chain; full checkpoints start a new one and
/// retire everything older.
///
/// `RecoveryManager::Open` loads the newest epoch that validates fully —
/// arena (v2) snapshots are mapped copy-on-write via `Env::MapFile` and
/// adopted without a parse, so load cost is page-fault-on-demand — then
/// replays the matching WAL's valid prefix (truncating any torn tail),
/// verifies every replayed insert reproduces its logged id, and then
/// *rotates*: it writes epoch N+1 of the recovered state (a delta when
/// incremental checkpoints are on and the chain allows it), starts
/// wal-(N+1), and deletes epochs outside the chain. Every step of the rotation is
/// ordered so that a crash at any point leaves either the old epoch or the
/// new one fully loadable — the kill-point harness in
/// tests/recovery_test.cc drives a crash at every single Env call index
/// and checks exactly that. The full argument lives in
/// docs/PERSISTENCE.md.
///
/// `DurableSampler` wraps the recovered backend behind the ordinary
/// `dpss::Sampler` interface. Mutations apply in memory first, then append
/// one WAL record, then sync per the group-commit policy
/// (`DurableOptions::wal_sync_every`); queries touch no I/O. The wrapper
/// is thread-compatible like any other sampler — external synchronization
/// is required even over a `sharded` inner backend, because the log append
/// itself is a serial point.

#ifndef DPSS_PERSIST_RECOVERY_H_
#define DPSS_PERSIST_RECOVERY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/sampler.h"
#include "persist/env.h"
#include "persist/wal.h"

namespace dpss {
namespace persist {

/// Which container format DurableSampler checkpoints write.
enum class SnapshotFormat {
  /// Arena-image (v2) when the backend has `capabilities().arena_image`,
  /// classic (v1) otherwise.
  kAuto,
  /// Always the classic parsed-payload (v1) container.
  kClassic,
  /// Always the arena-image (v2) container; Open fails with `kUnsupported`
  /// when the backend has no arena images.
  kArena,
};

/// Which files one Checkpoint call writes.
enum class CheckpointMode {
  /// A complete snapshot; every older epoch is retired afterwards.
  kFull,
  /// A delta holding only the pages dirtied since the previous checkpoint
  /// (arena format only). Falls back to a full snapshot whenever no valid
  /// dirty-page baseline exists — after Open on a foreign chain, after a
  /// failed checkpoint, or once the delta chain reaches
  /// `DurableOptions::max_delta_chain`.
  kIncremental,
};

/// Construction options for RecoveryManager::Open.
struct DurableOptions {
  /// Registry name of the backend to run ("halt", "sharded8:halt", ...).
  /// Ignored when the directory already holds a snapshot — the snapshot
  /// header's backend wins, so a directory cannot silently change type.
  std::string backend = "halt";
  /// Spec for a fresh backend (and the spec recorded into snapshots).
  SamplerSpec spec;
  /// Group-commit policy: fsync the WAL after every N-th record. 1 = every
  /// mutation is durable before it returns (safest, one fsync per op);
  /// N > 1 amortizes the fsync over N mutations; 0 = never sync
  /// automatically (caller drives SyncWal; a crash may lose the whole
  /// unsynced tail, never more).
  uint32_t wal_sync_every = 1;
  /// Auto-checkpoint once the WAL exceeds this many bytes (0 = manual
  /// checkpoints only). Bounds recovery replay time.
  uint64_t checkpoint_wal_bytes = 0;
  /// Container format for checkpoints (see SnapshotFormat).
  SnapshotFormat snapshot_format = SnapshotFormat::kAuto;
  /// Default mode for Checkpoint() and auto-checkpoints: incremental
  /// deltas whose size is proportional to the churn since the previous
  /// checkpoint, instead of full O(n) snapshots. Arena format only.
  bool incremental_checkpoints = false;
  /// Upper bound on the delta chain length (one full snapshot plus this
  /// many deltas); reaching it forces the next checkpoint full. Bounds the
  /// number of files recovery must map and apply.
  uint32_t max_delta_chain = 32;
  /// Re-verify every stored page CRC when loading arena snapshots. Costs
  /// one hardware-CRC pass over the mapped bytes; without it integrity
  /// rests on the frame CRCs plus the write-path ordering.
  bool verify_snapshot_pages = true;
  /// Filesystem to run on; null uses SystemEnv().
  Env* env = nullptr;
};

/// What Open found and did; exposed via DurableSampler::recovery_stats.
struct RecoveryStats {
  uint64_t snapshot_epoch = 0;     ///< Epoch loaded; 0 on a fresh start.
  uint64_t snapshots_skipped = 0;  ///< Newer snapshots that failed to load.
  uint64_t deltas_applied = 0;     ///< Incremental deltas in the loaded chain.
  uint64_t records_replayed = 0;   ///< WAL records applied.
  uint64_t ops_replayed = 0;       ///< Ops inside those records.
  uint64_t wal_bytes_truncated = 0;  ///< Torn-tail bytes dropped.
  uint32_t snapshot_version = 0;   ///< Container version loaded; 0 = fresh.
  bool fresh_start = false;        ///< No usable snapshot existed.
};

/// A backend plus its durability machinery. All Sampler mutations are
/// logged; see the file comment for ordering and durability semantics.
/// On a `kIoError` from any mutation the in-memory state is still correct
/// but its durable image may lag — reopen via RecoveryManager to
/// re-establish the invariant.
class DurableSampler final : public Sampler {
 public:
  ~DurableSampler() override;

  /// "durable:" + the inner backend's registry name.
  const char* name() const override;
  /// The inner backend's capabilities.
  Capabilities capabilities() const override;

  StatusOr<ItemId> Insert(uint64_t weight) override;
  StatusOr<ItemId> InsertWeight(Weight w) override;
  Status Erase(ItemId id) override;
  Status SetWeight(ItemId id, Weight w) override;
  /// Re-exposes the base's integer-weight SetWeight overload, which the
  /// override above would otherwise hide.
  using Sampler::SetWeight;
  /// Applies the decay in memory, then logs one `kDecay` record so
  /// recovery replays it at the same point in the mutation order (a
  /// backend holding the factor as pending metadata also serializes it in
  /// its own snapshot, so both the snapshot and the WAL paths restore it).
  Status Decay(Rational64 factor) override;

  /// Logs the applied inserts as one atomic WAL record.
  Status InsertBatch(std::span<const uint64_t> weights,
                     std::vector<ItemId>* ids) override;
  /// Logs the applied prefix of `ops` as one atomic WAL record (the whole
  /// batch when every op succeeds).
  Status ApplyBatch(std::span<const Op> ops,
                    std::vector<ItemId>* inserted_ids = nullptr,
                    size_t* num_applied = nullptr) override;

  bool Contains(ItemId id) const override;
  StatusOr<Weight> GetWeight(ItemId id) const override;
  uint64_t size() const override;
  BigUInt TotalWeight() const override;

  Status SampleInto(Rational64 alpha, Rational64 beta,
                    std::vector<ItemId>* out) override;
  Status SampleInto(Rational64 alpha, Rational64 beta, RandomEngine& rng,
                    std::vector<ItemId>* out) const override;
  StatusOr<double> ExpectedSampleSize(Rational64 alpha,
                                      Rational64 beta) const override;
  /// Read-style forwards: the park/restore inside SampleDistinct nets to
  /// zero observable change, so none of these touch the log.
  Status SampleDistinct(uint64_t k, std::vector<ItemId>* out) override;
  Status TopK(uint64_t k, std::vector<ItemId>* out) const override;
  Status ItemsAbove(Weight threshold,
                    std::vector<ItemId>* out) const override;

  Status Serialize(std::string* out) const override;
  /// Restores the inner backend, then checkpoints (full) immediately so
  /// the durable image matches the restored state.
  Status Restore(const std::string& bytes) override;
  /// Forwards to the inner backend. The collection consumes the backend's
  /// dirty-page baseline, so the next incremental checkpoint falls back to
  /// a full snapshot.
  Status CollectArenaImages(ArenaImageMode mode,
                            std::vector<ArenaImage>* out) override;
  /// Restores the inner backend from arena images, then checkpoints
  /// (full) immediately, like Restore.
  Status RestoreFromArenas(std::vector<ArenaLoad>&& loads) override;
  Status DumpItems(std::vector<ItemRecord>* out) const override;
  Status CheckInvariants() const override;
  size_t ApproxMemoryBytes() const override;
  std::string DebugString() const override;

  // --- Durability controls ----------------------------------------------

  /// Rotates to a fresh epoch: snapshots the current state, starts a new
  /// WAL, deletes older epochs. Crash-safe at every step; on error the
  /// previous epoch remains loadable. Mode follows
  /// `DurableOptions::incremental_checkpoints`.
  Status Checkpoint();

  /// Checkpoint with an explicit mode. `kIncremental` writes only the
  /// pages dirtied since the previous checkpoint — cost proportional to
  /// churn, not to n — and keeps the snapshot+delta chain; it silently
  /// performs a full checkpoint when no valid baseline exists (see
  /// CheckpointMode).
  Status Checkpoint(CheckpointMode mode);

  /// Forces a WAL fsync now (the group-commit override).
  Status SyncWal();

  /// Current WAL size in bytes (header + records).
  uint64_t wal_bytes() const { return wal_->bytes_written(); }
  /// Sequence number the next logged record will carry (last logged + 1).
  /// Replication uses it to name the durability point a mutation batch
  /// reached: the batch's record has seq `wal_next_seq() - 1` right after
  /// the mutation returns.
  uint64_t wal_next_seq() const { return wal_->next_seq(); }
  /// Current epoch number.
  uint64_t epoch() const { return epoch_; }
  /// The durable directory this sampler logs into (replication reads the
  /// live epoch's files out of it).
  const std::string& dir() const { return dir_; }
  /// The filesystem the durable files live on (never null after Open).
  Env* env() const { return options_.env; }
  /// What recovery found when this sampler was opened.
  const RecoveryStats& recovery_stats() const { return stats_; }
  /// Outcome of the most recent (auto-)checkpoint; Ok if none failed.
  const Status& last_checkpoint_status() const { return checkpoint_status_; }
  /// The wrapped backend (for read-only inspection).
  const Sampler& inner() const { return *inner_; }

 private:
  friend class RecoveryManager;
  DurableSampler(std::string dir, DurableOptions options,
                 std::unique_ptr<Sampler> inner,
                 std::unique_ptr<WalWriter> wal, uint64_t epoch,
                 RecoveryStats stats);

  // Refuses mutations while the log is poisoned (a rotation failed after
  // publishing its snapshot — appends to the old WAL would be silently
  // unreplayable). Checked *before* the in-memory apply, so memory and
  // log never diverge on this path.
  Status Writable() const;

  // Appends one record for the given ops and applies the group-commit
  // policy; then auto-checkpoints if the WAL outgrew its bound.
  Status LogAndCommit(const std::vector<WalOp>& ops);

  std::string dir_;
  std::string name_;
  DurableOptions options_;
  std::unique_ptr<Sampler> inner_;
  std::unique_ptr<WalWriter> wal_;
  // True after a rotation failed between publishing its snapshot and
  // opening the new WAL; cleared by the next fully successful Checkpoint.
  bool wal_broken_ = false;
  // Resolved at Open from options_.snapshot_format and the backend's
  // capabilities: checkpoints write v2 arena containers.
  bool use_arena_format_ = false;
  // True iff the on-disk chain tip is exactly epoch_ AND the backend's
  // dirty-page bitmap describes the churn since that tip — the
  // precondition for an incremental checkpoint. Cleared whenever the
  // baseline is consumed or unproven (a collect, a failed checkpoint, a
  // restore); set by a fully successful arena checkpoint.
  bool can_extend_chain_ = false;
  // Deltas currently chained onto the last full snapshot.
  uint32_t delta_chain_len_ = 0;
  uint64_t epoch_ = 0;
  uint64_t records_since_sync_ = 0;
  RecoveryStats stats_;
  Status checkpoint_status_;
};

/// Replays one WAL record (one atomic unit) onto `s`, verifying that every
/// logged insert reproduces its logged id — backends assign ids
/// deterministically from their state, so a mismatch means the replayed
/// base state diverged from the one the log was written against.
/// \return `kBadSnapshot` on any replay failure or id mismatch. Shared by
///   recovery and by replicas applying shipped WAL segments (the
///   "divergent replica fails loudly" guarantee).
Status ReplayWalRecord(const WalRecord& record, Sampler* s);

/// Name of epoch `epoch`'s snapshot inside a durable directory
/// ("snapshot-N"). Replication resolves the files it ships by these names.
std::string SnapshotFileName(uint64_t epoch);
/// Name of epoch `epoch`'s arena delta ("delta-N").
std::string DeltaFileName(uint64_t epoch);
/// Name of epoch `epoch`'s write-ahead log ("wal-N").
std::string WalFileName(uint64_t epoch);

/// Opens (or creates) a durable sampler directory. See the file comment
/// for the recovery protocol.
class RecoveryManager {
 public:
  /// Recovers the newest consistent state from `dir` (creating the
  /// directory and an empty state on first use), rotates to a fresh epoch,
  /// and returns the live handle.
  /// \return `kIoError` when the filesystem refuses the rotation,
  ///   `kBadSnapshot` when the directory's contents are corrupt beyond
  ///   what crash semantics can produce (e.g. a WAL replay id mismatch) —
  ///   never an abort.
  static StatusOr<std::unique_ptr<DurableSampler>> Open(
      const std::string& dir, const DurableOptions& options);
};

}  // namespace persist
}  // namespace dpss

#endif  // DPSS_PERSIST_RECOVERY_H_
