/// \file
/// \brief The write-ahead log: per-record CRCs, group-commit fsync
/// batching, and a torn-tail-tolerant reader.
///
/// Layout (all integers little-endian):
///
/// \code
///   file   := magic(8) version(4) epoch(8) record*     magic = "DPSSWAL1"
///   record := len(4) body[len] crc(4)                  crc = masked CRC32C
///   body   := seq(8) op_count(4) op[op_count]
///   op     := kind(1) id(8) mult(8) exp(4)
/// \endcode
///
/// One record is one *atomic replay unit*: a single mutation logs one
/// record with one op; `ApplyBatch` logs its applied prefix as one record
/// with many ops. `seq` increases by one per record, so a hole or repeat
/// (which a pure crash cannot produce) is detected as corruption.
///
/// For `kInsert` ops the `id` field holds the id the live insert
/// *returned*. Backends assign ids deterministically from their state
/// (snapshots round-trip the free-slot order precisely for this), so
/// replaying the ops on the restored snapshot must reproduce those ids —
/// `RecoveryManager` verifies each one, turning any snapshot/log mismatch
/// into a clean error instead of a silently wrong state.
///
/// Durability: `Append` only buffers; a record is crash-proof after the
/// next `Sync()`. Group commit is the caller's policy knob (see
/// `DurableOptions::wal_sync_every`): syncing every record gives
/// per-operation durability at one fsync per op; syncing every N amortizes
/// the fsync over N ops and risks losing at most the unsynced tail — never
/// a record that was synced, and never prefix consistency.
///
/// Reading: `ReadWal` validates records in order and stops at the first
/// malformed one. A torn tail (the expected shape after a crash mid-append)
/// is reported via `WalContents::valid_bytes` so recovery can truncate it;
/// it is not an error.

#ifndef DPSS_PERSIST_WAL_H_
#define DPSS_PERSIST_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/sampler.h"
#include "persist/env.h"

namespace dpss {
namespace persist {

/// WAL file magic: the ASCII bytes "DPSSWAL1".
inline constexpr uint64_t kWalMagic = 0x314C415753535044ULL;
/// Current WAL format version.
inline constexpr uint32_t kWalVersion = 1;

/// One logged mutation inside a record. For inserts, `id` is the id the
/// mutation returned when it was applied live (verified on replay).
struct WalOp {
  Op::Kind kind = Op::Kind::kInsert;  ///< Which mutation.
  ItemId id = 0;                      ///< Target id / produced insert id.
  Weight weight{};                    ///< Insert/SetWeight payload.
};

/// One atomic replay unit.
struct WalRecord {
  uint64_t seq = 0;          ///< 1-based record sequence number.
  std::vector<WalOp> ops;    ///< The ops applied as one unit.
};

/// Everything ReadWal recovers from a log file.
struct WalContents {
  uint64_t epoch = 0;                ///< The epoch stamped in the header.
  std::vector<WalRecord> records;    ///< The valid record prefix.
  uint64_t valid_bytes = 0;          ///< Bytes up to the last valid record.
  uint64_t dropped_bytes = 0;        ///< Torn/corrupt tail bytes past that.
};

/// Parses `bytes` as a WAL file. Never aborts and never reads out of
/// bounds: a malformed *header* is `kBadSnapshot` (the file is not a WAL),
/// while malformed *records* merely end the valid prefix (crash-normal).
StatusOr<WalContents> ReadWal(const std::string& bytes);

/// The 20-byte header (`magic version epoch`) a fresh epoch-`epoch` log
/// starts with. Replication mirrors use it to start a local log whose
/// bytes are exactly what `WalWriter::Create` would have written, so a
/// mirrored file is a byte prefix of the primary's.
std::string EncodeWalHeader(uint64_t epoch);

/// Parses a headerless run of records (the unit `kWalSegment` ships) from
/// `bytes`, requiring the first record's seq to be `expected_first_seq`
/// and each following seq to increase by one. Stops at the first
/// malformed record; `*valid_bytes` receives the byte length of the valid
/// prefix (record boundaries only, so a caller appending that prefix to a
/// mirror log keeps it well-formed). Shared by `ReadWal` and by replicas
/// applying shipped segments. Never errors: torn or corrupt bytes simply
/// end the run.
void ParseWalRecords(std::string_view bytes, uint64_t expected_first_seq,
                     std::vector<WalRecord>* records, uint64_t* valid_bytes);

/// What SealWal found (and left) in a log file.
struct WalSealInfo {
  uint64_t epoch = 0;       ///< Epoch from the header.
  uint64_t last_seq = 0;    ///< Seq of the last valid record (0 = none).
  uint64_t valid_bytes = 0; ///< File size after the seal.
  uint64_t dropped_bytes = 0;  ///< Torn-tail bytes truncated away.
};

/// Seals a log: validates `path`, truncates any torn tail so the file ends
/// on a record boundary, and reports the epoch + last seq it now holds.
/// Promotion runs this on the inherited epoch before recovery opens it, so
/// the promoted primary's chain starts from a clean, fully-valid log.
/// \return `kBadSnapshot` when the header is malformed (not a WAL at all).
StatusOr<WalSealInfo> SealWal(Env* env, const std::string& path);

/// Appends records to a fresh log file. Not thread-safe.
class WalWriter {
 public:
  /// Creates (truncating) `path` and writes the header. The header is
  /// synced immediately so an empty-but-valid log survives a crash right
  /// after rotation.
  static StatusOr<std::unique_ptr<WalWriter>> Create(Env* env,
                                                     const std::string& path,
                                                     uint64_t epoch);

  /// Encodes and buffers one record, assigning it the next sequence
  /// number. Durable only after Sync().
  Status Append(const std::vector<WalOp>& ops);

  /// Durability point for everything appended so far.
  Status Sync();

  /// Bytes written so far (header + records); drives checkpoint policy.
  uint64_t bytes_written() const { return bytes_written_; }
  /// Sequence number the next Append will use.
  uint64_t next_seq() const { return next_seq_; }
  /// Records appended but not yet covered by a successful Sync.
  uint64_t unsynced_records() const { return unsynced_records_; }

 private:
  WalWriter(std::unique_ptr<WritableFile> file, uint64_t bytes)
      : file_(std::move(file)), bytes_written_(bytes) {}

  std::unique_ptr<WritableFile> file_;
  uint64_t bytes_written_ = 0;
  uint64_t next_seq_ = 1;
  uint64_t unsynced_records_ = 0;
};

}  // namespace persist
}  // namespace dpss

#endif  // DPSS_PERSIST_WAL_H_
