// RecoveryManager / DurableSampler implementation. The crash-consistency
// ordering rules implemented here are documented (and argued) in
// docs/PERSISTENCE.md; the kill-point harness in tests/recovery_test.cc
// checks them by crashing at every Env call index.

#include "persist/recovery.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "persist/snapshot.h"
#include "util/little_endian.h"

namespace dpss {
namespace persist {

namespace {

std::string SnapshotName(uint64_t epoch) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "snapshot-%llu",
                static_cast<unsigned long long>(epoch));
  return buf;
}

std::string DeltaName(uint64_t epoch) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "delta-%llu",
                static_cast<unsigned long long>(epoch));
  return buf;
}

std::string WalName(uint64_t epoch) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%llu",
                static_cast<unsigned long long>(epoch));
  return buf;
}

std::string_view FileView(MappedFile& map) {
  return map.size() == 0 ? std::string_view()
                         : std::string_view(map.data(), map.size());
}

// Heap-backed MappedFile for the DPSS_PERSIST_FORCE_MMAP=0 escape hatch:
// recovery then runs the identical code path minus the OS mapping.
class OwnedBytesMappedFile final : public MappedFile {
 public:
  explicit OwnedBytesMappedFile(std::string bytes)
      : bytes_(std::move(bytes)) {}
  char* data() override { return bytes_.empty() ? nullptr : bytes_.data(); }
  uint64_t size() const override { return bytes_.size(); }
  Status Msync(uint64_t, uint64_t) override { return Status::Ok(); }
  Status Sync() override { return Status::Ok(); }

 private:
  std::string bytes_;
};

bool MmapDisabled() {
  const char* v = std::getenv("DPSS_PERSIST_FORCE_MMAP");
  return v != nullptr && v[0] == '0';
}

// Maps a snapshot/delta file for loading (copy-on-write; the returned
// mapping is kept alive by any arenas adopted out of it).
StatusOr<std::shared_ptr<MappedFile>> MapSnapshot(Env* env,
                                                  const std::string& path) {
  if (MmapDisabled()) {
    std::string bytes;
    Status st = env->ReadFileToString(path, &bytes);
    if (!st.ok()) return st;
    return std::shared_ptr<MappedFile>(
        new OwnedBytesMappedFile(std::move(bytes)));
  }
  StatusOr<std::unique_ptr<MappedFile>> map =
      env->MapFile(path, MapMode::kPrivate);
  if (!map.ok()) return map.status();
  return std::shared_ptr<MappedFile>(std::move(*map));
}

// Parses "<prefix><decimal epoch>" names; returns false for anything else.
bool ParseEpoch(const std::string& name, const char* prefix,
                uint64_t* epoch) {
  const size_t plen = std::string_view(prefix).size();
  if (name.compare(0, plen, prefix) != 0 || name.size() == plen) {
    return false;
  }
  uint64_t v = 0;
  for (size_t i = plen; i < name.size(); ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *epoch = v;
  return true;
}

}  // namespace

// Replays one WAL record (one atomic unit) onto `s`, verifying that every
// insert reproduces its logged id.
Status ReplayWalRecord(const WalRecord& record, Sampler* s) {
  for (const WalOp& op : record.ops) {
    switch (op.kind) {
      case Op::Kind::kInsert: {
        StatusOr<ItemId> id = s->InsertWeight(op.weight);
        if (!id.ok()) {
          return BadSnapshotError(
              "WAL replay: logged insert failed against the snapshot state");
        }
        if (*id != op.id) {
          return BadSnapshotError(
              "WAL replay produced a different id than the live run");
        }
        break;
      }
      case Op::Kind::kErase: {
        Status st = s->Erase(op.id);
        if (!st.ok()) {
          return BadSnapshotError(
              "WAL replay: logged erase failed against the snapshot state");
        }
        break;
      }
      case Op::Kind::kSetWeight: {
        Status st = s->SetWeight(op.id, op.weight);
        if (!st.ok()) {
          return BadSnapshotError(
              "WAL replay: logged update failed against the snapshot state");
        }
        break;
      }
      case Op::Kind::kDecay: {
        // Decay rides the fixed op layout: factor.num in the id field,
        // factor.den in weight.mult (the encoding Op::Decay uses).
        Status st = s->Decay(Rational64{op.id, op.weight.mult});
        if (!st.ok()) {
          return BadSnapshotError(
              "WAL replay: logged decay failed against the snapshot state");
        }
        break;
      }
    }
  }
  return Status::Ok();
}

std::string SnapshotFileName(uint64_t epoch) { return SnapshotName(epoch); }
std::string DeltaFileName(uint64_t epoch) { return DeltaName(epoch); }
std::string WalFileName(uint64_t epoch) { return WalName(epoch); }

// --- RecoveryManager ------------------------------------------------------

StatusOr<std::unique_ptr<DurableSampler>> RecoveryManager::Open(
    const std::string& dir, const DurableOptions& options_in) {
  DurableOptions options = options_in;
  if (options.env == nullptr) options.env = SystemEnv();
  Env* env = options.env;

  Status st = env->CreateDir(dir);
  if (!st.ok()) return st;

  // Inventory the directory: snapshot, delta and WAL epochs present.
  StatusOr<std::vector<std::string>> names = env->ListDir(dir);
  if (!names.ok()) return names.status();
  std::vector<uint64_t> snapshot_epochs;
  std::vector<uint64_t> delta_epochs;
  uint64_t max_epoch_seen = 0;
  for (const std::string& name : *names) {
    uint64_t epoch = 0;
    if (ParseEpoch(name, "snapshot-", &epoch)) {
      snapshot_epochs.push_back(epoch);
      max_epoch_seen = std::max(max_epoch_seen, epoch);
    } else if (ParseEpoch(name, "delta-", &epoch)) {
      delta_epochs.push_back(epoch);
      max_epoch_seen = std::max(max_epoch_seen, epoch);
    } else if (ParseEpoch(name, "wal-", &epoch)) {
      max_epoch_seen = std::max(max_epoch_seen, epoch);
    }
  }
  std::sort(snapshot_epochs.begin(), snapshot_epochs.end());
  std::sort(delta_epochs.begin(), delta_epochs.end());
  const auto has = [](const std::vector<uint64_t>& v, uint64_t e) {
    return std::binary_search(v.begin(), v.end(), e);
  };
  // Candidate chain tips, newest first.
  std::vector<uint64_t> tips;
  tips.reserve(snapshot_epochs.size() + delta_epochs.size());
  tips.insert(tips.end(), snapshot_epochs.begin(), snapshot_epochs.end());
  tips.insert(tips.end(), delta_epochs.begin(), delta_epochs.end());
  std::sort(tips.rbegin(), tips.rend());
  tips.erase(std::unique(tips.begin(), tips.end()), tips.end());

  // Load the newest epoch that validates end to end. An epoch is either a
  // full snapshot or a full snapshot plus the consecutive deltas up to it;
  // arena (v2) files are mapped copy-on-write and adopted, so the load is
  // page-fault-on-demand rather than a parse. An epoch that fails to load
  // (torn rotation, corruption) is skipped — the previous epoch is still
  // intact because rotation only deletes it after the new file is durable.
  RecoveryStats stats;
  std::unique_ptr<Sampler> inner;
  uint64_t epoch = 0;
  uint32_t loaded_version = 0;
  uint64_t loaded_deltas = 0;
  for (const uint64_t tip : tips) {
    // Walk down to the chain's full snapshot; every step below the tip
    // must be bridged by a delta.
    uint64_t anchor = tip;
    while (anchor != 0 && !has(snapshot_epochs, anchor) &&
           has(delta_epochs, anchor)) {
      --anchor;
    }
    if (anchor == 0 || !has(snapshot_epochs, anchor)) {
      ++stats.snapshots_skipped;
      continue;
    }
    const auto try_load = [&]() -> StatusOr<std::unique_ptr<Sampler>> {
      StatusOr<std::shared_ptr<MappedFile>> map =
          MapSnapshot(env, dir + "/" + SnapshotName(anchor));
      if (!map.ok()) return map.status();
      StatusOr<SnapshotInfo> sniff = ReadSnapshotInfo(FileView(**map));
      if (!sniff.ok()) return sniff.status();
      loaded_version = sniff->version;
      if (sniff->version != kContainerVersionArena) {
        if (anchor != tip) {
          return BadSnapshotError(
              "delta chained onto a classic (v1) snapshot");
        }
        return LoadSampler(std::string(FileView(**map)));
      }
      SnapshotInfo info;
      std::vector<ArenaLoad> loads;
      Status st = ParseArenaContainer(*map, options.verify_snapshot_pages,
                                      &info, &loads);
      if (!st.ok()) return st;
      for (uint64_t e = anchor + 1; e <= tip; ++e) {
        StatusOr<std::shared_ptr<MappedFile>> dmap =
            MapSnapshot(env, dir + "/" + DeltaName(e));
        if (!dmap.ok()) return dmap.status();
        st = ApplyArenaDeltaFile(*dmap, options.verify_snapshot_pages,
                                 /*expected_base_epoch=*/e - 1, &info,
                                 &loads);
        if (!st.ok()) return st;
      }
      return RestoreArenaSampler(info, std::move(loads));
    };
    StatusOr<std::unique_ptr<Sampler>> loaded = try_load();
    if (!loaded.ok()) {
      ++stats.snapshots_skipped;
      continue;
    }
    inner = std::move(*loaded);
    epoch = tip;
    loaded_deltas = tip - anchor;
    break;
  }
  if (inner == nullptr) {
    StatusOr<std::unique_ptr<Sampler>> fresh =
        MakeSamplerChecked(options.backend, options.spec);
    if (!fresh.ok()) return fresh.status();
    inner = std::move(*fresh);
    stats.fresh_start = true;
    loaded_version = 0;
  }
  stats.snapshot_epoch = epoch;
  stats.deltas_applied = loaded_deltas;
  stats.snapshot_version = stats.fresh_start ? 0 : loaded_version;

  // Replay the WAL paired with the loaded snapshot. A missing WAL is
  // crash-normal (died between the snapshot rename and the WAL creation);
  // a torn tail is truncated; an epoch-mismatched or structurally invalid
  // log is corruption a pure crash cannot produce.
  if (epoch != 0) {
    const std::string wal_path = dir + "/" + WalName(epoch);
    std::string bytes;
    if (env->FileExists(wal_path)) {
      // The file is present, so its records must be read: a transient read
      // failure here must NOT be mistaken for the crash-normal "no WAL
      // yet" shape — rotation would then delete acked records.
      Status read = env->ReadFileToString(wal_path, &bytes);
      if (!read.ok()) return read;
      StatusOr<WalContents> wal = ReadWal(bytes);
      if (!wal.ok()) {
        // A crash during WalWriter::Create can leave any prefix of the
        // 20-byte header. That exact shape is crash-normal and means "no
        // records yet"; anything else is real corruption.
        std::string expected_header;
        AppendU64(&expected_header, kWalMagic);
        AppendU32(&expected_header, kWalVersion);
        AppendU64(&expected_header, epoch);
        if (bytes.size() < expected_header.size() &&
            expected_header.compare(0, bytes.size(), bytes) == 0) {
          WalContents torn;
          torn.epoch = epoch;
          torn.dropped_bytes = bytes.size();
          wal = torn;
        } else {
          return wal.status();
        }
      } else if (wal->epoch != epoch) {
        return BadSnapshotError("WAL header epoch does not match its name");
      }
      for (const WalRecord& record : wal->records) {
        Status replay = ReplayWalRecord(record, inner.get());
        if (!replay.ok()) return replay;
        ++stats.records_replayed;
        stats.ops_replayed += record.ops.size();
      }
      stats.wal_bytes_truncated = wal->dropped_bytes;
    }
  }

  // Resolve the checkpoint format this handle will write.
  bool use_arena = false;
  switch (options.snapshot_format) {
    case SnapshotFormat::kClassic:
      break;
    case SnapshotFormat::kArena:
      if (!inner->capabilities().arena_image) {
        return UnsupportedError(
            "snapshot_format kArena needs a backend with arena images");
      }
      use_arena = true;
      break;
    case SnapshotFormat::kAuto:
      use_arena = inner->capabilities().arena_image;
      break;
  }

  // Rotate to a fresh epoch so this process starts from snapshot +
  // empty log. DurableSampler::Checkpoint implements the crash-safe
  // ordering; reuse it through a provisional wrapper with no live WAL yet.
  // The rotation base sits above every epoch seen on disk, valid or not,
  // so stale corrupt files can never shadow the epochs written from here.
  const uint64_t rotation_base = std::max(epoch, max_epoch_seen);
  std::unique_ptr<DurableSampler> durable(new DurableSampler(
      dir, options, std::move(inner), nullptr, rotation_base, stats));
  durable->use_arena_format_ = use_arena;
  // The loaded arenas' dirty bitmap describes exactly the churn since the
  // on-disk chain (adopted mappings start clean; WAL replay dirtied what
  // it touched) — a valid incremental baseline, but only when the chain's
  // tip is the rotation base: stale higher-numbered junk would break the
  // consecutive-epoch naming the chain walk relies on.
  durable->can_extend_chain_ = use_arena && !stats.fresh_start &&
                               loaded_version == kContainerVersionArena &&
                               epoch == rotation_base;
  durable->delta_chain_len_ = static_cast<uint32_t>(loaded_deltas);
  // The open-time rotation extends the chain when it can: cost
  // proportional to the WAL churn just replayed, which is what makes Open
  // on a v2 chain mmap-instant instead of O(n). Falls back to a full
  // snapshot automatically (fresh start, classic chain, chain at cap).
  st = durable->Checkpoint(use_arena ? CheckpointMode::kIncremental
                                     : CheckpointMode::kFull);
  if (!st.ok()) return st;
  return durable;
}

// --- DurableSampler -------------------------------------------------------

DurableSampler::DurableSampler(std::string dir, DurableOptions options,
                               std::unique_ptr<Sampler> inner,
                               std::unique_ptr<WalWriter> wal,
                               uint64_t epoch, RecoveryStats stats)
    : dir_(std::move(dir)),
      name_(std::string("durable:") + inner->name()),
      options_(std::move(options)),
      inner_(std::move(inner)),
      wal_(std::move(wal)),
      epoch_(epoch),
      stats_(stats) {}

DurableSampler::~DurableSampler() {
  // Best effort: push buffered records to the OS. Not a checkpoint and not
  // an fsync — an unclean death here is exactly what recovery handles.
  if (wal_ != nullptr) (void)wal_->Sync();
}

const char* DurableSampler::name() const { return name_.c_str(); }

Sampler::Capabilities DurableSampler::capabilities() const {
  return inner_->capabilities();
}

Status DurableSampler::Checkpoint() {
  return Checkpoint(options_.incremental_checkpoints
                        ? CheckpointMode::kIncremental
                        : CheckpointMode::kFull);
}

Status DurableSampler::Checkpoint(CheckpointMode mode) {
  Env* env = options_.env;
  const uint64_t next = epoch_ + 1;
  // Incremental needs the arena format, a proven dirty-page baseline, and
  // headroom in the chain; otherwise quietly do the full rotation.
  const bool incremental =
      mode == CheckpointMode::kIncremental && use_arena_format_ &&
      can_extend_chain_ && delta_chain_len_ + 1 < options_.max_delta_chain;
  // 1. Write the new epoch's file under a temporary name and sync its
  // bytes. Arena containers go out through the write-through mapping path;
  // the classic format keeps the exact Append+Sync sequence it always had.
  const std::string file_base =
      incremental ? DeltaName(next) : SnapshotName(next);
  const std::string tmp = dir_ + "/" + file_base + ".tmp";
  const std::string final_path = dir_ + "/" + file_base;
  Status st;
  if (use_arena_format_) {
    // Collecting consumes the dirty baseline; only a checkpoint that
    // succeeds end to end proves the on-disk chain matches it again.
    can_extend_chain_ = false;
    std::string bytes;
    st = incremental ? SaveSamplerArenaDelta(inner_.get(), options_.spec,
                                             /*base_epoch=*/epoch_, &bytes)
                     : SaveSamplerArena(inner_.get(), options_.spec, &bytes);
    if (st.ok()) st = WriteFileViaMap(env, tmp, bytes);
  } else {
    st = SaveSamplerToFile(*inner_, options_.spec, env, tmp);
  }
  if (!st.ok()) {
    checkpoint_status_ = st;
    return st;
  }
  // 2. Atomically publish it and make the rename durable. From this
  // instant, recovery prefers epoch `next`.
  st = env->RenameFile(tmp, final_path);
  if (st.ok()) st = env->SyncDir(dir_);
  if (!st.ok()) {
    checkpoint_status_ = st;
    return st;
  }
  // 3. Start the new epoch's (empty) WAL; its header syncs inside Create.
  StatusOr<std::unique_ptr<WalWriter>> wal =
      WalWriter::Create(env, dir_ + "/" + WalName(next), next);
  if (wal.ok()) {
    Status dsync = env->SyncDir(dir_);
    if (!dsync.ok()) wal = dsync;
  }
  if (!wal.ok()) {
    // The new snapshot is durable, so recovery will still pick it (with no
    // WAL — crash-normal shape). This handle, however, must not log:
    // appends would land in the *previous* epoch's WAL, which recovery no
    // longer replays — acked-then-lost mutations. Poison the log until a
    // later Checkpoint() succeeds end to end.
    wal_broken_ = true;
    checkpoint_status_ = wal.status();
    return wal.status();
  }
  wal_ = std::move(*wal);
  wal_broken_ = false;
  const uint64_t previous = epoch_;
  epoch_ = next;
  records_since_sync_ = 0;
  delta_chain_len_ = incremental ? delta_chain_len_ + 1 : 0;
  if (use_arena_format_) can_extend_chain_ = true;
  // 4. Retire epochs outside the live chain [anchor, next], where anchor
  // is the chain's full snapshot (== next after a full checkpoint).
  // Failures here are harmless (recovery always prefers the newest valid
  // epoch), so they do not fail the checkpoint; stray files are retried
  // on the next rotation.
  const uint64_t anchor = epoch_ - delta_chain_len_;
  StatusOr<std::vector<std::string>> names = env->ListDir(dir_);
  if (names.ok()) {
    for (const std::string& name : *names) {
      uint64_t e = 0;
      const bool old_snapshot =
          ParseEpoch(name, "snapshot-", &e) && e <= previous && e != anchor;
      const bool old_delta = ParseEpoch(name, "delta-", &e) && e <= anchor;
      const bool old_wal = ParseEpoch(name, "wal-", &e) && e <= previous;
      const bool stray_tmp =
          name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0 &&
          name != file_base + ".tmp";
      if (old_snapshot || old_delta || old_wal || stray_tmp) {
        (void)env->DeleteFile(dir_ + "/" + name);
      }
    }
    (void)env->SyncDir(dir_);
  }
  checkpoint_status_ = Status::Ok();
  return Status::Ok();
}

Status DurableSampler::SyncWal() {
  Status st = wal_->Sync();
  if (st.ok()) records_since_sync_ = 0;
  return st;
}

Status DurableSampler::Writable() const {
  if (wal_broken_) {
    return IoError(
        "durable log unavailable after a failed rotation; Checkpoint() to "
        "recover");
  }
  return Status::Ok();
}

Status DurableSampler::LogAndCommit(const std::vector<WalOp>& ops) {
  Status st = Writable();
  if (!st.ok()) return st;
  st = wal_->Append(ops);
  if (!st.ok()) return st;
  ++records_since_sync_;
  if (options_.wal_sync_every != 0 &&
      records_since_sync_ >= options_.wal_sync_every) {
    st = SyncWal();
    if (!st.ok()) return st;
  }
  if (options_.checkpoint_wal_bytes != 0 &&
      wal_->bytes_written() > options_.checkpoint_wal_bytes) {
    // The mutation itself succeeded and is logged; an auto-checkpoint
    // failure is reported out of band (last_checkpoint_status) because the
    // old epoch remains fully recoverable.
    (void)Checkpoint();
  }
  return Status::Ok();
}

StatusOr<ItemId> DurableSampler::Insert(uint64_t weight) {
  return InsertWeight(Weight::FromU64(weight));
}

StatusOr<ItemId> DurableSampler::InsertWeight(Weight w) {
  Status writable = Writable();
  if (!writable.ok()) return writable;
  StatusOr<ItemId> id = inner_->InsertWeight(w);
  if (!id.ok()) return id;
  Status st = LogAndCommit({{Op::Kind::kInsert, *id, w}});
  if (!st.ok()) return st;
  return id;
}

Status DurableSampler::Erase(ItemId id) {
  Status st = Writable();
  if (!st.ok()) return st;
  st = inner_->Erase(id);
  if (!st.ok()) return st;
  return LogAndCommit({{Op::Kind::kErase, id, Weight{}}});
}

Status DurableSampler::SetWeight(ItemId id, Weight w) {
  Status st = Writable();
  if (!st.ok()) return st;
  st = inner_->SetWeight(id, w);
  if (!st.ok()) return st;
  return LogAndCommit({{Op::Kind::kSetWeight, id, w}});
}

Status DurableSampler::Decay(Rational64 factor) {
  Status st = Writable();
  if (!st.ok()) return st;
  st = inner_->Decay(factor);
  if (!st.ok()) return st;
  // Same wire encoding as Op::Decay: factor.num rides the id field,
  // factor.den rides weight.mult.
  return LogAndCommit(
      {{Op::Kind::kDecay, factor.num, Weight{factor.den, 0}}});
}

Status DurableSampler::InsertBatch(std::span<const uint64_t> weights,
                                   std::vector<ItemId>* ids) {
  Status writable = Writable();
  if (!writable.ok()) return writable;
  std::vector<ItemId> local;
  std::vector<ItemId>* sink = ids != nullptr ? ids : &local;
  const size_t before = sink->size();
  const Status st = inner_->InsertBatch(weights, sink);
  // Log whatever prefix applied, even when the batch stopped early.
  const size_t applied = sink->size() - before;
  if (applied > 0) {
    std::vector<WalOp> ops;
    ops.reserve(applied);
    for (size_t i = 0; i < applied; ++i) {
      ops.push_back({Op::Kind::kInsert, (*sink)[before + i],
                     Weight::FromU64(weights[i])});
    }
    Status log = LogAndCommit(ops);
    if (st.ok() && !log.ok()) return log;
  }
  return st;
}

Status DurableSampler::ApplyBatch(std::span<const Op> ops,
                                  std::vector<ItemId>* inserted_ids,
                                  size_t* num_applied) {
  Status writable = Writable();
  if (!writable.ok()) {
    if (num_applied != nullptr) *num_applied = 0;
    return writable;
  }
  std::vector<ItemId> local;
  std::vector<ItemId>* sink = inserted_ids != nullptr ? inserted_ids : &local;
  const size_t ids_before = sink->size();
  size_t applied = 0;
  const Status st = inner_->ApplyBatch(ops, sink, &applied);
  if (num_applied != nullptr) *num_applied = applied;
  if (applied > 0) {
    std::vector<WalOp> wal_ops;
    wal_ops.reserve(applied);
    size_t insert_cursor = ids_before;
    for (size_t i = 0; i < applied; ++i) {
      const Op& op = ops[i];
      WalOp wal_op{op.kind, op.id, op.weight};
      if (op.kind == Op::Kind::kInsert) {
        wal_op.id = (*sink)[insert_cursor++];
      }
      wal_ops.push_back(wal_op);
    }
    Status log = LogAndCommit(wal_ops);
    if (st.ok() && !log.ok()) return log;
  }
  return st;
}

bool DurableSampler::Contains(ItemId id) const {
  return inner_->Contains(id);
}

StatusOr<Weight> DurableSampler::GetWeight(ItemId id) const {
  return inner_->GetWeight(id);
}

uint64_t DurableSampler::size() const { return inner_->size(); }

BigUInt DurableSampler::TotalWeight() const { return inner_->TotalWeight(); }

Status DurableSampler::SampleInto(Rational64 alpha, Rational64 beta,
                                  std::vector<ItemId>* out) {
  return inner_->SampleInto(alpha, beta, out);
}

Status DurableSampler::SampleInto(Rational64 alpha, Rational64 beta,
                                  RandomEngine& rng,
                                  std::vector<ItemId>* out) const {
  return inner_->SampleInto(alpha, beta, rng, out);
}

StatusOr<double> DurableSampler::ExpectedSampleSize(Rational64 alpha,
                                                    Rational64 beta) const {
  return inner_->ExpectedSampleSize(alpha, beta);
}

// Not logged: the park/restore inside an inner SampleDistinct nets to zero
// observable change, so the WAL does not need to see it.
Status DurableSampler::SampleDistinct(uint64_t k, std::vector<ItemId>* out) {
  return inner_->SampleDistinct(k, out);
}

Status DurableSampler::TopK(uint64_t k, std::vector<ItemId>* out) const {
  return inner_->TopK(k, out);
}

Status DurableSampler::ItemsAbove(Weight threshold,
                                  std::vector<ItemId>* out) const {
  return inner_->ItemsAbove(threshold, out);
}

Status DurableSampler::Serialize(std::string* out) const {
  return inner_->Serialize(out);
}

Status DurableSampler::Restore(const std::string& bytes) {
  Status st = inner_->Restore(bytes);
  if (!st.ok()) return st;
  // The WAL no longer describes deltas over the current snapshot; rotate
  // immediately so the durable image matches the restored state. Full: the
  // restore rebuilt the arenas, so no incremental baseline survives.
  return Checkpoint(CheckpointMode::kFull);
}

Status DurableSampler::CollectArenaImages(ArenaImageMode mode,
                                          std::vector<ArenaImage>* out) {
  // The caller walks away with the dirty baseline; the next incremental
  // checkpoint must not assume it still describes the on-disk chain.
  can_extend_chain_ = false;
  return inner_->CollectArenaImages(mode, out);
}

Status DurableSampler::RestoreFromArenas(std::vector<ArenaLoad>&& loads) {
  Status st = inner_->RestoreFromArenas(std::move(loads));
  if (!st.ok()) return st;
  // Same reasoning as Restore.
  return Checkpoint(CheckpointMode::kFull);
}

Status DurableSampler::DumpItems(std::vector<ItemRecord>* out) const {
  return inner_->DumpItems(out);
}

Status DurableSampler::CheckInvariants() const {
  return inner_->CheckInvariants();
}

size_t DurableSampler::ApproxMemoryBytes() const {
  return sizeof(*this) + inner_->ApproxMemoryBytes();
}

std::string DurableSampler::DebugString() const {
  return inner_->DebugString() + " epoch=" + std::to_string(epoch_) +
         " wal_bytes=" + std::to_string(wal_->bytes_written());
}

}  // namespace persist
}  // namespace dpss
