// RecoveryManager / DurableSampler implementation. The crash-consistency
// ordering rules implemented here are documented (and argued) in
// docs/PERSISTENCE.md; the kill-point harness in tests/recovery_test.cc
// checks them by crashing at every Env call index.

#include "persist/recovery.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "persist/snapshot.h"
#include "util/little_endian.h"

namespace dpss {
namespace persist {

namespace {

std::string SnapshotName(uint64_t epoch) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "snapshot-%llu",
                static_cast<unsigned long long>(epoch));
  return buf;
}

std::string WalName(uint64_t epoch) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%llu",
                static_cast<unsigned long long>(epoch));
  return buf;
}

// Parses "<prefix><decimal epoch>" names; returns false for anything else.
bool ParseEpoch(const std::string& name, const char* prefix,
                uint64_t* epoch) {
  const size_t plen = std::string_view(prefix).size();
  if (name.compare(0, plen, prefix) != 0 || name.size() == plen) {
    return false;
  }
  uint64_t v = 0;
  for (size_t i = plen; i < name.size(); ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *epoch = v;
  return true;
}

// Replays one WAL record (one atomic unit) onto `s`, verifying that every
// insert reproduces its logged id.
Status ReplayRecord(const WalRecord& record, Sampler* s) {
  for (const WalOp& op : record.ops) {
    switch (op.kind) {
      case Op::Kind::kInsert: {
        StatusOr<ItemId> id = s->InsertWeight(op.weight);
        if (!id.ok()) {
          return BadSnapshotError(
              "WAL replay: logged insert failed against the snapshot state");
        }
        if (*id != op.id) {
          return BadSnapshotError(
              "WAL replay produced a different id than the live run");
        }
        break;
      }
      case Op::Kind::kErase: {
        Status st = s->Erase(op.id);
        if (!st.ok()) {
          return BadSnapshotError(
              "WAL replay: logged erase failed against the snapshot state");
        }
        break;
      }
      case Op::Kind::kSetWeight: {
        Status st = s->SetWeight(op.id, op.weight);
        if (!st.ok()) {
          return BadSnapshotError(
              "WAL replay: logged update failed against the snapshot state");
        }
        break;
      }
    }
  }
  return Status::Ok();
}

}  // namespace

// --- RecoveryManager ------------------------------------------------------

StatusOr<std::unique_ptr<DurableSampler>> RecoveryManager::Open(
    const std::string& dir, const DurableOptions& options_in) {
  DurableOptions options = options_in;
  if (options.env == nullptr) options.env = SystemEnv();
  Env* env = options.env;

  Status st = env->CreateDir(dir);
  if (!st.ok()) return st;

  // Inventory the directory: snapshot and WAL epochs present.
  StatusOr<std::vector<std::string>> names = env->ListDir(dir);
  if (!names.ok()) return names.status();
  std::vector<uint64_t> snapshot_epochs;
  uint64_t max_epoch_seen = 0;
  for (const std::string& name : *names) {
    uint64_t epoch = 0;
    if (ParseEpoch(name, "snapshot-", &epoch)) {
      snapshot_epochs.push_back(epoch);
      max_epoch_seen = std::max(max_epoch_seen, epoch);
    } else if (ParseEpoch(name, "wal-", &epoch)) {
      max_epoch_seen = std::max(max_epoch_seen, epoch);
    }
  }
  std::sort(snapshot_epochs.rbegin(), snapshot_epochs.rend());

  // Load the newest snapshot that validates end to end. A snapshot that
  // fails to load (torn rotation, corruption) is skipped — the previous
  // epoch is still intact because rotation only deletes it after the new
  // snapshot is durable.
  RecoveryStats stats;
  std::unique_ptr<Sampler> inner;
  uint64_t epoch = 0;
  for (const uint64_t e : snapshot_epochs) {
    std::string bytes;
    if (!env->ReadFileToString(dir + "/" + SnapshotName(e), &bytes).ok()) {
      ++stats.snapshots_skipped;
      continue;
    }
    StatusOr<std::unique_ptr<Sampler>> loaded = LoadSampler(bytes);
    if (!loaded.ok()) {
      ++stats.snapshots_skipped;
      continue;
    }
    inner = std::move(*loaded);
    epoch = e;
    break;
  }
  if (inner == nullptr) {
    StatusOr<std::unique_ptr<Sampler>> fresh =
        MakeSamplerChecked(options.backend, options.spec);
    if (!fresh.ok()) return fresh.status();
    inner = std::move(*fresh);
    stats.fresh_start = true;
  }
  stats.snapshot_epoch = epoch;

  // Replay the WAL paired with the loaded snapshot. A missing WAL is
  // crash-normal (died between the snapshot rename and the WAL creation);
  // a torn tail is truncated; an epoch-mismatched or structurally invalid
  // log is corruption a pure crash cannot produce.
  if (epoch != 0) {
    const std::string wal_path = dir + "/" + WalName(epoch);
    std::string bytes;
    if (env->FileExists(wal_path)) {
      // The file is present, so its records must be read: a transient read
      // failure here must NOT be mistaken for the crash-normal "no WAL
      // yet" shape — rotation would then delete acked records.
      Status read = env->ReadFileToString(wal_path, &bytes);
      if (!read.ok()) return read;
      StatusOr<WalContents> wal = ReadWal(bytes);
      if (!wal.ok()) {
        // A crash during WalWriter::Create can leave any prefix of the
        // 20-byte header. That exact shape is crash-normal and means "no
        // records yet"; anything else is real corruption.
        std::string expected_header;
        AppendU64(&expected_header, kWalMagic);
        AppendU32(&expected_header, kWalVersion);
        AppendU64(&expected_header, epoch);
        if (bytes.size() < expected_header.size() &&
            expected_header.compare(0, bytes.size(), bytes) == 0) {
          WalContents torn;
          torn.epoch = epoch;
          torn.dropped_bytes = bytes.size();
          wal = torn;
        } else {
          return wal.status();
        }
      } else if (wal->epoch != epoch) {
        return BadSnapshotError("WAL header epoch does not match its name");
      }
      for (const WalRecord& record : wal->records) {
        Status replay = ReplayRecord(record, inner.get());
        if (!replay.ok()) return replay;
        ++stats.records_replayed;
        stats.ops_replayed += record.ops.size();
      }
      stats.wal_bytes_truncated = wal->dropped_bytes;
    }
  }

  // Rotate to a fresh epoch so this process starts from snapshot +
  // empty log. DurableSampler::Checkpoint implements the crash-safe
  // ordering; reuse it through a provisional wrapper with no live WAL yet.
  // The rotation base sits above every epoch seen on disk, valid or not,
  // so stale corrupt files can never shadow the epochs written from here.
  std::unique_ptr<DurableSampler> durable(new DurableSampler(
      dir, options, std::move(inner), nullptr,
      std::max(epoch, max_epoch_seen), stats));
  st = durable->Checkpoint();
  if (!st.ok()) return st;
  return durable;
}

// --- DurableSampler -------------------------------------------------------

DurableSampler::DurableSampler(std::string dir, DurableOptions options,
                               std::unique_ptr<Sampler> inner,
                               std::unique_ptr<WalWriter> wal,
                               uint64_t epoch, RecoveryStats stats)
    : dir_(std::move(dir)),
      name_(std::string("durable:") + inner->name()),
      options_(std::move(options)),
      inner_(std::move(inner)),
      wal_(std::move(wal)),
      epoch_(epoch),
      stats_(stats) {}

DurableSampler::~DurableSampler() {
  // Best effort: push buffered records to the OS. Not a checkpoint and not
  // an fsync — an unclean death here is exactly what recovery handles.
  if (wal_ != nullptr) (void)wal_->Sync();
}

const char* DurableSampler::name() const { return name_.c_str(); }

Sampler::Capabilities DurableSampler::capabilities() const {
  return inner_->capabilities();
}

Status DurableSampler::Checkpoint() {
  Env* env = options_.env;
  const uint64_t next = epoch_ + 1;
  // 1. Write the new snapshot under a temporary name and sync its bytes.
  const std::string tmp = dir_ + "/" + SnapshotName(next) + ".tmp";
  const std::string final_path = dir_ + "/" + SnapshotName(next);
  Status st = SaveSamplerToFile(*inner_, options_.spec, env, tmp);
  if (!st.ok()) {
    checkpoint_status_ = st;
    return st;
  }
  // 2. Atomically publish it and make the rename durable. From this
  // instant, recovery prefers epoch `next`.
  st = env->RenameFile(tmp, final_path);
  if (st.ok()) st = env->SyncDir(dir_);
  if (!st.ok()) {
    checkpoint_status_ = st;
    return st;
  }
  // 3. Start the new epoch's (empty) WAL; its header syncs inside Create.
  StatusOr<std::unique_ptr<WalWriter>> wal =
      WalWriter::Create(env, dir_ + "/" + WalName(next), next);
  if (wal.ok()) {
    Status dsync = env->SyncDir(dir_);
    if (!dsync.ok()) wal = dsync;
  }
  if (!wal.ok()) {
    // The new snapshot is durable, so recovery will still pick it (with no
    // WAL — crash-normal shape). This handle, however, must not log:
    // appends would land in the *previous* epoch's WAL, which recovery no
    // longer replays — acked-then-lost mutations. Poison the log until a
    // later Checkpoint() succeeds end to end.
    wal_broken_ = true;
    checkpoint_status_ = wal.status();
    return wal.status();
  }
  wal_ = std::move(*wal);
  wal_broken_ = false;
  const uint64_t previous = epoch_;
  epoch_ = next;
  records_since_sync_ = 0;
  // 4. Retire older epochs. Failures here are harmless (recovery always
  // prefers the newest valid snapshot), so they do not fail the
  // checkpoint; stray files are retried on the next rotation.
  StatusOr<std::vector<std::string>> names = env->ListDir(dir_);
  if (names.ok()) {
    for (const std::string& name : *names) {
      uint64_t e = 0;
      const bool old_snapshot =
          ParseEpoch(name, "snapshot-", &e) && e <= previous;
      const bool old_wal = ParseEpoch(name, "wal-", &e) && e <= previous;
      const bool stray_tmp =
          name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0 &&
          name != SnapshotName(next) + ".tmp";
      if (old_snapshot || old_wal || stray_tmp) {
        (void)env->DeleteFile(dir_ + "/" + name);
      }
    }
    (void)env->SyncDir(dir_);
  }
  checkpoint_status_ = Status::Ok();
  return Status::Ok();
}

Status DurableSampler::SyncWal() {
  Status st = wal_->Sync();
  if (st.ok()) records_since_sync_ = 0;
  return st;
}

Status DurableSampler::Writable() const {
  if (wal_broken_) {
    return IoError(
        "durable log unavailable after a failed rotation; Checkpoint() to "
        "recover");
  }
  return Status::Ok();
}

Status DurableSampler::LogAndCommit(const std::vector<WalOp>& ops) {
  Status st = Writable();
  if (!st.ok()) return st;
  st = wal_->Append(ops);
  if (!st.ok()) return st;
  ++records_since_sync_;
  if (options_.wal_sync_every != 0 &&
      records_since_sync_ >= options_.wal_sync_every) {
    st = SyncWal();
    if (!st.ok()) return st;
  }
  if (options_.checkpoint_wal_bytes != 0 &&
      wal_->bytes_written() > options_.checkpoint_wal_bytes) {
    // The mutation itself succeeded and is logged; an auto-checkpoint
    // failure is reported out of band (last_checkpoint_status) because the
    // old epoch remains fully recoverable.
    (void)Checkpoint();
  }
  return Status::Ok();
}

StatusOr<ItemId> DurableSampler::Insert(uint64_t weight) {
  return InsertWeight(Weight::FromU64(weight));
}

StatusOr<ItemId> DurableSampler::InsertWeight(Weight w) {
  Status writable = Writable();
  if (!writable.ok()) return writable;
  StatusOr<ItemId> id = inner_->InsertWeight(w);
  if (!id.ok()) return id;
  Status st = LogAndCommit({{Op::Kind::kInsert, *id, w}});
  if (!st.ok()) return st;
  return id;
}

Status DurableSampler::Erase(ItemId id) {
  Status st = Writable();
  if (!st.ok()) return st;
  st = inner_->Erase(id);
  if (!st.ok()) return st;
  return LogAndCommit({{Op::Kind::kErase, id, Weight{}}});
}

Status DurableSampler::SetWeight(ItemId id, Weight w) {
  Status st = Writable();
  if (!st.ok()) return st;
  st = inner_->SetWeight(id, w);
  if (!st.ok()) return st;
  return LogAndCommit({{Op::Kind::kSetWeight, id, w}});
}

Status DurableSampler::InsertBatch(std::span<const uint64_t> weights,
                                   std::vector<ItemId>* ids) {
  Status writable = Writable();
  if (!writable.ok()) return writable;
  std::vector<ItemId> local;
  std::vector<ItemId>* sink = ids != nullptr ? ids : &local;
  const size_t before = sink->size();
  const Status st = inner_->InsertBatch(weights, sink);
  // Log whatever prefix applied, even when the batch stopped early.
  const size_t applied = sink->size() - before;
  if (applied > 0) {
    std::vector<WalOp> ops;
    ops.reserve(applied);
    for (size_t i = 0; i < applied; ++i) {
      ops.push_back({Op::Kind::kInsert, (*sink)[before + i],
                     Weight::FromU64(weights[i])});
    }
    Status log = LogAndCommit(ops);
    if (st.ok() && !log.ok()) return log;
  }
  return st;
}

Status DurableSampler::ApplyBatch(std::span<const Op> ops,
                                  std::vector<ItemId>* inserted_ids,
                                  size_t* num_applied) {
  Status writable = Writable();
  if (!writable.ok()) {
    if (num_applied != nullptr) *num_applied = 0;
    return writable;
  }
  std::vector<ItemId> local;
  std::vector<ItemId>* sink = inserted_ids != nullptr ? inserted_ids : &local;
  const size_t ids_before = sink->size();
  size_t applied = 0;
  const Status st = inner_->ApplyBatch(ops, sink, &applied);
  if (num_applied != nullptr) *num_applied = applied;
  if (applied > 0) {
    std::vector<WalOp> wal_ops;
    wal_ops.reserve(applied);
    size_t insert_cursor = ids_before;
    for (size_t i = 0; i < applied; ++i) {
      const Op& op = ops[i];
      WalOp wal_op{op.kind, op.id, op.weight};
      if (op.kind == Op::Kind::kInsert) {
        wal_op.id = (*sink)[insert_cursor++];
      }
      wal_ops.push_back(wal_op);
    }
    Status log = LogAndCommit(wal_ops);
    if (st.ok() && !log.ok()) return log;
  }
  return st;
}

bool DurableSampler::Contains(ItemId id) const {
  return inner_->Contains(id);
}

StatusOr<Weight> DurableSampler::GetWeight(ItemId id) const {
  return inner_->GetWeight(id);
}

uint64_t DurableSampler::size() const { return inner_->size(); }

BigUInt DurableSampler::TotalWeight() const { return inner_->TotalWeight(); }

Status DurableSampler::SampleInto(Rational64 alpha, Rational64 beta,
                                  std::vector<ItemId>* out) {
  return inner_->SampleInto(alpha, beta, out);
}

Status DurableSampler::SampleInto(Rational64 alpha, Rational64 beta,
                                  RandomEngine& rng,
                                  std::vector<ItemId>* out) const {
  return inner_->SampleInto(alpha, beta, rng, out);
}

StatusOr<double> DurableSampler::ExpectedSampleSize(Rational64 alpha,
                                                    Rational64 beta) const {
  return inner_->ExpectedSampleSize(alpha, beta);
}

Status DurableSampler::Serialize(std::string* out) const {
  return inner_->Serialize(out);
}

Status DurableSampler::Restore(const std::string& bytes) {
  Status st = inner_->Restore(bytes);
  if (!st.ok()) return st;
  // The WAL no longer describes deltas over the current snapshot; rotate
  // immediately so the durable image matches the restored state.
  return Checkpoint();
}

Status DurableSampler::DumpItems(std::vector<ItemRecord>* out) const {
  return inner_->DumpItems(out);
}

Status DurableSampler::CheckInvariants() const {
  return inner_->CheckInvariants();
}

size_t DurableSampler::ApproxMemoryBytes() const {
  return sizeof(*this) + inner_->ApproxMemoryBytes();
}

std::string DurableSampler::DebugString() const {
  return inner_->DebugString() + " epoch=" + std::to_string(epoch_) +
         " wal_bytes=" + std::to_string(wal_->bytes_written());
}

}  // namespace persist
}  // namespace dpss
