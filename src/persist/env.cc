// Env implementations: the POSIX SystemEnv and the in-process MemEnv.
//
// SystemEnv's durability points map 1:1 onto the syscalls the
// crash-consistency argument in docs/PERSISTENCE.md is written against:
// WritableFile::Sync == fflush+fsync, SyncDir == fsync of the directory
// fd, RenameFile == rename(2). Status messages are static literals (the
// Status contract), so errno detail is not propagated — callers decide
// policy from the code alone.

#include "persist/env.h"

#include <cstdio>

#include <dirent.h>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

namespace dpss {
namespace persist {

namespace {

// The portable MapMode::kPrivate emulation: the whole file in a heap
// buffer. Writes are trivially private; Msync is meaningless and Ok.
class HeapMappedFile final : public MappedFile {
 public:
  explicit HeapMappedFile(std::string bytes) : bytes_(std::move(bytes)) {}

  char* data() override { return bytes_.empty() ? nullptr : bytes_.data(); }
  uint64_t size() const override { return bytes_.size(); }
  Status Msync(uint64_t /*offset*/, uint64_t /*len*/) override {
    return Status::Ok();
  }
  Status Sync() override { return Status::Ok(); }

 private:
  std::string bytes_;
};

}  // namespace

StatusOr<std::unique_ptr<MappedFile>> Env::MapFile(const std::string& path,
                                                   MapMode mode) {
  if (mode == MapMode::kShared) {
    return UnsupportedError("this Env has no write-through file mappings");
  }
  std::string bytes;
  Status st = ReadFileToString(path, &bytes);
  if (!st.ok()) return st;
  return StatusOr<std::unique_ptr<MappedFile>>(
      std::make_unique<HeapMappedFile>(std::move(bytes)));
}

namespace {

class PosixWritableFile final : public WritableFile {
 public:
  explicit PosixWritableFile(std::FILE* f) : f_(f) {}
  ~PosixWritableFile() override {
    if (f_ != nullptr) std::fclose(f_);
  }

  Status Append(std::string_view data) override {
    if (f_ == nullptr) return IoError("append on a closed file");
    if (std::fwrite(data.data(), 1, data.size(), f_) != data.size()) {
      return IoError("short write");
    }
    return Status::Ok();
  }

  Status Flush() override {
    if (f_ == nullptr) return IoError("flush on a closed file");
    if (std::fflush(f_) != 0) return IoError("fflush failed");
    return Status::Ok();
  }

  Status Sync() override {
    Status st = Flush();
    if (!st.ok()) return st;
    if (::fsync(::fileno(f_)) != 0) return IoError("fsync failed");
    return Status::Ok();
  }

  Status Close() override {
    if (f_ == nullptr) return IoError("double close");
    const int rc = std::fclose(f_);
    f_ = nullptr;
    if (rc != 0) return IoError("fclose failed");
    return Status::Ok();
  }

 private:
  std::FILE* f_;
};

// A real mmap(2) region. kPrivate maps MAP_PRIVATE over a read-only fd
// (writes stay copy-on-write in anonymous pages); kShared maps MAP_SHARED
// over a read-write fd and Msync is msync(MS_SYNC) — the durability point
// the checkpoint writer's crash argument uses.
class PosixMappedFile final : public MappedFile {
 public:
  // Shared mappings keep `fd` open so Sync can fsync the file's metadata;
  // private mappings pass -1 (the mapping holds its own reference).
  PosixMappedFile(void* addr, uint64_t len, bool shared, int fd)
      : addr_(addr), len_(len), shared_(shared), fd_(fd) {}
  ~PosixMappedFile() override {
    if (addr_ != nullptr) ::munmap(addr_, len_);
    if (fd_ >= 0) ::close(fd_);
  }

  char* data() override { return static_cast<char*>(addr_); }
  uint64_t size() const override { return len_; }

  Status Msync(uint64_t offset, uint64_t len) override {
    if (!shared_ || len == 0) return Status::Ok();
    if (offset > len_ || len > len_ - offset) {
      return IoError("msync range outside the mapping");
    }
    // msync wants a page-aligned start address.
    const uint64_t page = 4096;
    const uint64_t first = offset & ~(page - 1);
    const uint64_t span = (offset - first) + len;
    if (::msync(static_cast<char*>(addr_) + first, span, MS_SYNC) != 0) {
      return IoError("msync failed");
    }
    return Status::Ok();
  }

  Status Sync() override {
    if (fd_ < 0) return Status::Ok();  // private: writes never reach the file
    if (::fsync(fd_) != 0) return IoError("fsync of mapped file failed");
    return Status::Ok();
  }

 private:
  void* addr_;
  uint64_t len_;
  bool shared_;
  int fd_;
};

class PosixEnv final : public Env {
 public:
  StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override {
    std::FILE* f = std::fopen(path.c_str(), truncate ? "wb" : "ab");
    if (f == nullptr) return IoError("cannot open file for writing");
    return StatusOr<std::unique_ptr<WritableFile>>(
        std::make_unique<PosixWritableFile>(f));
  }

  Status ReadFileToString(const std::string& path,
                          std::string* out) override {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return IoError("cannot open file for reading");
    out->clear();
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      out->append(buf, n);
    }
    const bool bad = std::ferror(f) != 0;
    std::fclose(f);
    if (bad) return IoError("read failed");
    return Status::Ok();
  }

  bool FileExists(const std::string& path) override {
    struct stat st;
    return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
  }

  StatusOr<std::vector<std::string>> ListDir(
      const std::string& dir) override {
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) return IoError("cannot open directory");
    std::vector<std::string> names;
    while (struct dirent* e = ::readdir(d)) {
      const std::string name = e->d_name;
      if (name == "." || name == "..") continue;
      names.push_back(name);
    }
    ::closedir(d);
    return names;
  }

  Status CreateDir(const std::string& dir) override {
    if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) {
      return Status::Ok();
    }
    return IoError("mkdir failed");
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (std::rename(from.c_str(), to.c_str()) != 0) {
      return IoError("rename failed");
    }
    return Status::Ok();
  }

  Status DeleteFile(const std::string& path) override {
    if (std::remove(path.c_str()) != 0) return IoError("remove failed");
    return Status::Ok();
  }

  Status TruncateFile(const std::string& path, uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return IoError("truncate failed");
    }
    return Status::Ok();
  }

  Status SyncDir(const std::string& dir) override {
    const int fd = ::open(dir.c_str(), O_RDONLY);
    if (fd < 0) return IoError("cannot open directory for fsync");
    const int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0) return IoError("directory fsync failed");
    return Status::Ok();
  }

  StatusOr<std::unique_ptr<MappedFile>> MapFile(const std::string& path,
                                                MapMode mode) override {
    const bool shared = mode == MapMode::kShared;
    const int fd = ::open(path.c_str(), shared ? O_RDWR : O_RDONLY);
    if (fd < 0) return IoError("cannot open file for mapping");
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      return IoError("cannot stat file for mapping");
    }
    const uint64_t len = static_cast<uint64_t>(st.st_size);
    void* addr = nullptr;
    if (len > 0) {
      // kPrivate still asks for PROT_WRITE: the pages are copy-on-write,
      // so the arena can mutate the adopted image in place.
      addr = ::mmap(nullptr, len, PROT_READ | PROT_WRITE,
                    shared ? MAP_SHARED : MAP_PRIVATE, fd, 0);
      if (addr == MAP_FAILED) {
        ::close(fd);
        return IoError("mmap failed");
      }
    }
    // Shared mappings keep the fd for Sync's fsync; the private mapping
    // holds its own reference, so its fd closes here.
    int kept_fd = -1;
    if (shared) {
      kept_fd = fd;
    } else {
      ::close(fd);
    }
    return StatusOr<std::unique_ptr<MappedFile>>(
        std::make_unique<PosixMappedFile>(addr, len, shared, kept_fd));
  }
};

// A MemEnv file handle: writes go straight into the env's map, mirroring
// an OS page cache that survives process death (MemEnv models kill-crash
// durability; power-loss tails are modelled by the fault harness and the
// WAL truncation tests instead).
class MemWritableFile final : public WritableFile {
 public:
  MemWritableFile(MemEnv* env, std::string path)
      : env_(env), path_(std::move(path)) {}

  Status Append(std::string_view data) override {
    if (env_ == nullptr) return IoError("append on a closed file");
    env_->AppendTo(path_, data);
    return Status::Ok();
  }
  Status Flush() override {
    if (env_ == nullptr) return IoError("flush on a closed file");
    return Status::Ok();
  }
  Status Sync() override {
    if (env_ == nullptr) return IoError("sync on a closed file");
    return Status::Ok();
  }
  Status Close() override {
    if (env_ == nullptr) return IoError("double close");
    env_ = nullptr;
    return Status::Ok();
  }

 private:
  MemEnv* env_;
  std::string path_;
};

}  // namespace

Env* SystemEnv() {
  static PosixEnv* env = new PosixEnv;
  return env;
}

StatusOr<std::unique_ptr<WritableFile>> MemEnv::NewWritableFile(
    const std::string& path, bool truncate) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(path);
    if (it == files_.end()) {
      files_[path] = std::string();
    } else if (truncate) {
      it->second.clear();
    }
  }
  return StatusOr<std::unique_ptr<WritableFile>>(
      std::make_unique<MemWritableFile>(this, path));
}

Status MemEnv::ReadFileToString(const std::string& path, std::string* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return IoError("no such file");
  *out = it->second;
  return Status::Ok();
}

bool MemEnv::FileExists(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(path) != 0;
}

StatusOr<std::vector<std::string>> MemEnv::ListDir(const std::string& dir) {
  std::lock_guard<std::mutex> lock(mu_);
  if (dirs_.count(dir) == 0) return IoError("no such directory");
  const std::string prefix = dir + "/";
  std::vector<std::string> names;
  for (const auto& [path, contents] : files_) {
    (void)contents;
    if (path.compare(0, prefix.size(), prefix) != 0) continue;
    const std::string rest = path.substr(prefix.size());
    if (rest.find('/') == std::string::npos) names.push_back(rest);
  }
  return names;
}

Status MemEnv::CreateDir(const std::string& dir) {
  std::lock_guard<std::mutex> lock(mu_);
  dirs_.insert(dir);
  return Status::Ok();
}

Status MemEnv::RenameFile(const std::string& from, const std::string& to) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(from);
  if (it == files_.end()) return IoError("no such file");
  files_[to] = std::move(it->second);
  files_.erase(it);
  return Status::Ok();
}

Status MemEnv::DeleteFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (files_.erase(path) == 0) return IoError("no such file");
  return Status::Ok();
}

Status MemEnv::TruncateFile(const std::string& path, uint64_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return IoError("no such file");
  // POSIX semantics both ways: shrink drops the tail, grow zero-fills
  // (the checkpoint writer sizes a file before mapping it).
  it->second.resize(size, '\0');
  return Status::Ok();
}

Status MemEnv::SyncDir(const std::string& dir) {
  std::lock_guard<std::mutex> lock(mu_);
  if (dirs_.count(dir) == 0) return IoError("no such directory");
  return Status::Ok();
}

namespace {

// A write-through view of a MemEnv file: the mapping *is* the env's
// backing string, so stores land on the "disk" immediately (matching the
// kill-crash durability model, where Sync points are no-ops).
class MemSharedMappedFile final : public MappedFile {
 public:
  MemSharedMappedFile(std::string* bytes) : bytes_(bytes) {}

  char* data() override {
    return bytes_->empty() ? nullptr : bytes_->data();
  }
  uint64_t size() const override { return bytes_->size(); }
  Status Msync(uint64_t offset, uint64_t len) override {
    if (offset > bytes_->size() || len > bytes_->size() - offset) {
      return IoError("msync range outside the mapping");
    }
    return Status::Ok();
  }
  // MemEnv's "disk" is the backing string itself — size and contents are
  // already as durable as the model gets.
  Status Sync() override { return Status::Ok(); }

 private:
  std::string* bytes_;
};

}  // namespace

StatusOr<std::unique_ptr<MappedFile>> MemEnv::MapFile(
    const std::string& path, MapMode mode) {
  if (mode == MapMode::kPrivate) {
    // The base-class heap-copy emulation is exactly right for kPrivate.
    return Env::MapFile(path, mode);
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return IoError("no such file");
  return StatusOr<std::unique_ptr<MappedFile>>(
      std::make_unique<MemSharedMappedFile>(&it->second));
}

void MemEnv::CloneFrom(const MemEnv& other) {
  // Consistent ordering: this is only used single-threaded (benchmarks).
  std::lock_guard<std::mutex> self(mu_);
  std::lock_guard<std::mutex> theirs(other.mu_);
  files_ = other.files_;
  dirs_ = other.dirs_;
}

void MemEnv::AppendTo(const std::string& path, std::string_view data) {
  std::lock_guard<std::mutex> lock(mu_);
  files_[path].append(data.data(), data.size());
}

}  // namespace persist
}  // namespace dpss
