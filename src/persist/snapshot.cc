// Snapshot container implementation, plus the default Sampler::SaveTo
// (declared in core/sampler.h; defined here next to the frame format it
// writes).

#include "persist/snapshot.h"

#include <cstdint>
#include <cstring>
#include <utility>

#include "core/arena.h"
#include "persist/crc32c.h"
#include "util/little_endian.h"

namespace dpss {

// --- Sampler::SaveTo (interface default) ----------------------------------

Status Sampler::SaveTo(persist::SnapshotWriter* writer) const {
  if (writer == nullptr) {
    return InvalidArgumentError("null snapshot writer");
  }
  if (capabilities().snapshots) {
    std::string payload;
    Status st = Serialize(&payload);
    if (!st.ok()) return st;
    return writer->AddPayloadFrame(payload);
  }
  // No native format: fall back to the portable (id, weight) dump.
  std::vector<ItemRecord> items;
  Status st = DumpItems(&items);
  if (!st.ok()) return st;
  return writer->AddGenericFrame(items);
}

namespace persist {

namespace {

// Sanity cap on a single frame (the format field is u32; this guards
// readers against absurd lengths from corrupt input long before any
// allocation).
constexpr uint32_t kMaxFrameLen = 0xf0000000u;

void EncodeSpec(const SamplerSpec& spec, std::string* out) {
  AppendU64(out, spec.seed);
  AppendU8(out, spec.deamortized_rebuild ? 1 : 0);
  AppendU8(out, spec.exact_arithmetic ? 1 : 0);
  AppendU32(out, static_cast<uint32_t>(spec.migrate_per_update));
  AppendU64(out, spec.fixed_alpha.num);
  AppendU64(out, spec.fixed_alpha.den);
  AppendU64(out, spec.fixed_beta.num);
  AppendU64(out, spec.fixed_beta.den);
  AppendU32(out, static_cast<uint32_t>(spec.num_shards));
  AppendU32(out, static_cast<uint32_t>(spec.num_threads));
}

bool DecodeSpec(std::string_view in, size_t* pos, SamplerSpec* spec) {
  uint8_t deam = 0, exact = 0;
  uint32_t migrate = 0, shards = 0, threads = 0;
  if (!ReadU64(in, pos, &spec->seed) || !ReadU8(in, pos, &deam) ||
      !ReadU8(in, pos, &exact) || !ReadU32(in, pos, &migrate) ||
      !ReadU64(in, pos, &spec->fixed_alpha.num) ||
      !ReadU64(in, pos, &spec->fixed_alpha.den) ||
      !ReadU64(in, pos, &spec->fixed_beta.num) ||
      !ReadU64(in, pos, &spec->fixed_beta.den) ||
      !ReadU32(in, pos, &shards) || !ReadU32(in, pos, &threads)) {
    return false;
  }
  spec->deamortized_rebuild = deam != 0;
  spec->exact_arithmetic = exact != 0;
  spec->migrate_per_update = static_cast<int>(migrate);
  spec->num_shards = static_cast<int>(shards);
  spec->num_threads = static_cast<int>(threads);
  return true;
}

void EncodeBigUInt(const BigUInt& v, std::string* out) {
  AppendU16(out, static_cast<uint16_t>(v.WordCount()));
  for (int i = 0; i < v.WordCount(); ++i) AppendU64(out, v.Word(i));
}

bool DecodeBigUInt(std::string_view in, size_t* pos, BigUInt* out) {
  uint16_t words = 0;
  if (!ReadU16(in, pos, &words)) return false;
  BigUInt v;
  for (int i = words - 1; i >= 0; --i) {
    uint64_t w = 0;
    // Words are stored little-endian; rebuild from the top so each shift
    // makes room for the next lower word.
    size_t p = *pos + static_cast<size_t>(i) * 8;
    if (!ReadU64(in, &p, &w)) return false;
    v = (v << 64) + BigUInt(w);
  }
  *pos += static_cast<size_t>(words) * 8;
  if (*pos > in.size()) return false;
  *out = std::move(v);
  return true;
}

// --- Arena frame metadata codec -------------------------------------------
//
// kArenaImage metadata:
//   image_count(4) { roots_len(4) roots used(8) page_count(8)
//                    masked_crc(4) * page_count }*
// kArenaDelta metadata is the same prefixed with base_epoch(8), and each
// image adds dirty_count(8) and stores (page_index(8), masked_crc(4))
// pairs instead of the implicit-index CRC run.

static_assert(kArenaFileAlign == Arena::kPageSize,
              "raw-page file alignment must equal the arena page size");

struct ArenaPageRef {
  uint64_t index = 0;  ///< Page index within the image's full extent.
  uint32_t crc = 0;    ///< Unmasked CRC32C of the raw 4-KiB page.
};

struct ArenaImageMeta {
  std::string_view roots;            // points into the frame payload
  uint64_t used_bytes = 0;
  uint64_t page_count = 0;           // pages in the full extent
  std::vector<ArenaPageRef> stored;  // pages present in this file, in order
};

struct ArenaFrameMeta {
  uint64_t base_epoch = 0;   // deltas only
  uint64_t total_stored = 0; // Σ stored pages — the raw region's size
  std::vector<ArenaImageMeta> images;
};

// Sanity cap: no real sampler splits into this many arenas; corrupt input
// must not drive the reserve below.
constexpr uint32_t kMaxArenaImages = 1u << 20;

Status ParseArenaFrameMeta(FrameType type, std::string_view meta,
                           ArenaFrameMeta* out) {
  const bool delta = type == FrameType::kArenaDelta;
  size_t pos = 0;
  uint32_t image_count = 0;
  if (delta && !ReadU64(meta, &pos, &out->base_epoch)) {
    return BadSnapshotError("truncated arena frame metadata");
  }
  if (!ReadU32(meta, &pos, &image_count) || image_count > kMaxArenaImages) {
    return BadSnapshotError("malformed arena frame metadata");
  }
  out->images.reserve(image_count);
  for (uint32_t i = 0; i < image_count; ++i) {
    ArenaImageMeta im;
    uint32_t roots_len = 0;
    if (!ReadU32(meta, &pos, &roots_len) || pos + roots_len > meta.size()) {
      return BadSnapshotError("truncated arena image roots");
    }
    im.roots = meta.substr(pos, roots_len);
    pos += roots_len;
    if (!ReadU64(meta, &pos, &im.used_bytes) ||
        !ReadU64(meta, &pos, &im.page_count)) {
      return BadSnapshotError("truncated arena image metadata");
    }
    // Reject used_bytes in the top partial page of the u64 range first:
    // PageRoundUp would wrap to 0 there, letting a huge used_bytes pair
    // with page_count == 0 and sail past the cross-check (the loader would
    // then size dirty bitmaps / validate extents against a fictitious
    // multi-exabyte arena).
    if (im.used_bytes > UINT64_MAX - (Arena::kPageSize - 1)) {
      return BadSnapshotError("arena used bytes out of range");
    }
    if (im.page_count != Arena::PageRoundUp(im.used_bytes) / Arena::kPageSize) {
      return BadSnapshotError("arena page count does not match used bytes");
    }
    uint64_t stored_count = im.page_count;
    if (delta && (!ReadU64(meta, &pos, &stored_count) ||
                  stored_count > im.page_count)) {
      return BadSnapshotError("arena delta stores more pages than exist");
    }
    // Each stored page costs >= 4 metadata bytes, so a count that cannot
    // fit in the remaining payload is corrupt — reject before reserving.
    const uint64_t entry_bytes = delta ? 12 : 4;
    if (stored_count > (meta.size() - pos) / entry_bytes) {
      return BadSnapshotError("truncated arena page table");
    }
    im.stored.reserve(stored_count);
    uint64_t prev = 0;
    for (uint64_t p = 0; p < stored_count; ++p) {
      ArenaPageRef ref;
      if (delta) {
        if (!ReadU64(meta, &pos, &ref.index)) {
          return BadSnapshotError("truncated arena page table");
        }
        if (ref.index >= im.page_count || (p > 0 && ref.index <= prev)) {
          return BadSnapshotError("arena delta page indices not ascending");
        }
        prev = ref.index;
      } else {
        ref.index = p;
      }
      uint32_t masked = 0;
      if (!ReadU32(meta, &pos, &masked)) {
        return BadSnapshotError("truncated arena page table");
      }
      ref.crc = UnmaskCrc(masked);
      im.stored.push_back(ref);
    }
    out->total_stored += stored_count;
    out->images.push_back(std::move(im));
  }
  if (pos != meta.size()) {
    return BadSnapshotError("trailing bytes in arena frame metadata");
  }
  return Status::Ok();
}

std::string_view MapView(MappedFile& map) {
  return map.size() == 0 ? std::string_view()
                         : std::string_view(map.data(), map.size());
}

// Verifies the per-page CRCs of a full arena-image frame (when asked) and
// stages one ArenaLoad per image. With `map` the arenas adopt copy-on-write
// slices of the mapping (no page copies; each load keeps the mapping
// alive); without it the pages are copied into owned heap arenas.
Status StageArenaLoads(std::string_view file,
                       const SnapshotReader::Frame& frame,
                       std::shared_ptr<MappedFile> map, bool verify_pages,
                       std::vector<ArenaLoad>* loads) {
  ArenaFrameMeta meta;
  Status st =
      ParseArenaFrameMeta(FrameType::kArenaImage, frame.payload, &meta);
  if (!st.ok()) return st;
  uint64_t region = frame.pages_offset;
  for (const ArenaImageMeta& im : meta.images) {
    if (verify_pages) {
      for (uint64_t p = 0; p < im.stored.size(); ++p) {
        const std::string_view page(
            file.data() + region + p * Arena::kPageSize, Arena::kPageSize);
        if (Crc32c(page) != im.stored[p].crc) {
          return BadSnapshotError("arena page checksum mismatch");
        }
      }
    }
    const uint64_t extent = im.page_count * Arena::kPageSize;
    ArenaLoad load;
    load.roots.assign(im.roots);
    if (map != nullptr) {
      load.arena = Arena::Adopt(
          const_cast<char*>(file.data()) + region, im.used_bytes, map);
    } else {
      Arena arena;
      arena.ResetForLoad(im.used_bytes);
      if (extent != 0) {
        std::memcpy(arena.base(), file.data() + region, extent);
      }
      load.arena = std::move(arena);
    }
    region += extent;
    loads->push_back(std::move(load));
  }
  return Status::Ok();
}

}  // namespace

// --- SnapshotWriter -------------------------------------------------------

void SnapshotWriter::AppendFrame(FrameType type, std::string_view payload) {
  std::string head;
  AppendU8(&head, static_cast<uint8_t>(type));
  AppendU32(&head, static_cast<uint32_t>(payload.size()));
  out_->append(head);
  out_->append(payload);
  // CRC over the tag and the payload (not the length: a corrupt length
  // already fails the envelope parse or the CRC offset).
  const uint32_t crc =
      Crc32c(payload, Crc32c(std::string_view(head.data(), 1)));
  AppendU32(out_, MaskCrc(crc));
}

Status SnapshotWriter::BeginSnapshot(const Sampler& s,
                                     const SamplerSpec& spec) {
  if (out_ == nullptr) return InvalidArgumentError("null output string");
  if (begun_) return InvalidArgumentError("BeginSnapshot called twice");
  if (version_ != kContainerVersion && version_ != kContainerVersionArena) {
    return InvalidArgumentError("unknown container version for writing");
  }
  if (version_ == kContainerVersionArena && !out_->empty()) {
    // Raw-page alignment is relative to the start of the string, which
    // must therefore be the start of the file.
    return InvalidArgumentError("arena containers must start the string");
  }
  begun_ = true;
  AppendU64(out_, kContainerMagic);
  std::string header;
  AppendU32(&header, version_);
  const std::string name = s.name();
  AppendU16(&header, static_cast<uint16_t>(name.size()));
  header.append(name);
  AppendU64(&header, s.size());
  EncodeBigUInt(s.TotalWeight(), &header);
  EncodeSpec(spec, &header);
  AppendFrame(FrameType::kHeader, header);
  return Status::Ok();
}

Status SnapshotWriter::AddPayloadFrame(std::string_view bytes) {
  if (!begun_ || finished_) {
    return InvalidArgumentError("payload frame outside Begin/Finish");
  }
  if (data_frames_ != 0) {
    return InvalidArgumentError("container already holds a data frame");
  }
  if (bytes.size() > kMaxFrameLen) {
    return InvalidArgumentError("snapshot payload exceeds the frame limit");
  }
  AppendFrame(FrameType::kPayload, bytes);
  ++data_frames_;
  payload_bytes_ += bytes.size();
  return Status::Ok();
}

Status SnapshotWriter::AddGenericFrame(const std::vector<ItemRecord>& items) {
  if (!begun_ || finished_) {
    return InvalidArgumentError("generic frame outside Begin/Finish");
  }
  if (data_frames_ != 0) {
    return InvalidArgumentError("container already holds a data frame");
  }
  std::string payload;
  EncodeItemRecords(items, &payload);
  if (payload.size() > kMaxFrameLen) {
    return InvalidArgumentError("snapshot payload exceeds the frame limit");
  }
  AppendFrame(FrameType::kGeneric, payload);
  ++data_frames_;
  payload_bytes_ += payload.size();
  return Status::Ok();
}

Status SnapshotWriter::AddArenaFrame(
    FrameType type, std::string_view meta,
    const std::vector<const std::string*>& pages) {
  if (!begun_ || finished_) {
    return InvalidArgumentError("arena frame outside Begin/Finish");
  }
  if (data_frames_ != 0) {
    return InvalidArgumentError("container already holds a data frame");
  }
  if (version_ != kContainerVersionArena) {
    return InvalidArgumentError("arena frames need a version-2 writer");
  }
  if (type != FrameType::kArenaImage && type != FrameType::kArenaDelta) {
    return InvalidArgumentError("not an arena frame type");
  }
  if (meta.size() > kMaxFrameLen) {
    return InvalidArgumentError("snapshot payload exceeds the frame limit");
  }
  for (const std::string* page : pages) {
    if (page == nullptr || page->size() != Arena::kPageSize) {
      return InvalidArgumentError("arena pages must be whole 4-KiB units");
    }
  }
  AppendFrame(type, meta);
  ++data_frames_;
  payload_bytes_ += meta.size();
  // Zero-pad so the raw pages start on a 4-KiB file offset — the region a
  // recovery mapping hands to Arena::Adopt must be page-aligned.
  out_->resize(
      (out_->size() + kArenaFileAlign - 1) / kArenaFileAlign * kArenaFileAlign,
      '\0');
  for (const std::string* page : pages) out_->append(*page);
  return Status::Ok();
}

Status SnapshotWriter::Finish() {
  if (!begun_ || finished_) {
    return InvalidArgumentError("Finish outside an open snapshot");
  }
  if (data_frames_ == 0) {
    return InvalidArgumentError("container holds no data frame");
  }
  finished_ = true;
  std::string seal;
  AppendU32(&seal, data_frames_);
  AppendU64(&seal, payload_bytes_);
  AppendFrame(FrameType::kEnd, seal);
  return Status::Ok();
}

// --- SnapshotReader -------------------------------------------------------

Status SnapshotReader::ReadHeader(SnapshotInfo* info) {
  if (info == nullptr) return InvalidArgumentError("null info pointer");
  if (header_done_) return InvalidArgumentError("header already read");
  uint64_t magic = 0;
  if (!ReadU64(bytes_, &pos_, &magic) || magic != kContainerMagic) {
    return BadSnapshotError("bad magic / not a DPSSNP01 container");
  }
  StatusOr<Frame> frame = NextFrame();
  if (!frame.ok()) return frame.status();
  if (frame->type != FrameType::kHeader) {
    return BadSnapshotError("container does not start with a header frame");
  }
  std::string_view h = frame->payload;
  size_t pos = 0;
  uint16_t name_len = 0;
  if (!ReadU32(h, &pos, &info->version)) {
    return BadSnapshotError("truncated header frame");
  }
  if (info->version != kContainerVersion &&
      info->version != kContainerVersionArena) {
    return BadSnapshotError(
        "unknown container version (format bumps need an explicit reader)");
  }
  version_ = info->version;
  if (!ReadU16(h, &pos, &name_len) || pos + name_len > h.size()) {
    return BadSnapshotError("truncated backend name");
  }
  info->backend.assign(h.data() + pos, name_len);
  pos += name_len;
  if (!ReadU64(h, &pos, &info->size) ||
      !DecodeBigUInt(h, &pos, &info->total_weight) ||
      !DecodeSpec(h, &pos, &info->spec) || pos != h.size()) {
    return BadSnapshotError("malformed header frame");
  }
  header_done_ = true;
  return Status::Ok();
}

StatusOr<SnapshotReader::Frame> SnapshotReader::NextFrame() {
  if (end_seen_) return BadSnapshotError("read past the end frame");
  uint8_t type = 0;
  uint32_t len = 0;
  if (!ReadU8(bytes_, &pos_, &type) || !ReadU32(bytes_, &pos_, &len)) {
    return BadSnapshotError("truncated frame envelope");
  }
  if (len > kMaxFrameLen || pos_ + len + 4 > bytes_.size()) {
    return BadSnapshotError("frame length exceeds the container");
  }
  const std::string_view payload = bytes_.substr(pos_, len);
  pos_ += len;
  uint32_t stored = 0;
  ReadU32(bytes_, &pos_, &stored);
  const char tag = static_cast<char>(type);
  const uint32_t actual =
      Crc32c(payload, Crc32c(std::string_view(&tag, 1)));
  if (UnmaskCrc(stored) != actual) {
    return BadSnapshotError("frame checksum mismatch");
  }
  Frame frame;
  frame.payload = payload;
  switch (type) {
    case static_cast<uint8_t>(FrameType::kHeader):
      frame.type = FrameType::kHeader;
      break;
    case static_cast<uint8_t>(FrameType::kPayload):
    case static_cast<uint8_t>(FrameType::kGeneric):
      frame.type = static_cast<FrameType>(type);
      ++data_frames_;
      payload_bytes_ += payload.size();
      break;
    case static_cast<uint8_t>(FrameType::kArenaImage):
    case static_cast<uint8_t>(FrameType::kArenaDelta): {
      if (version_ != kContainerVersionArena) {
        return BadSnapshotError("arena frame in a version-1 container");
      }
      frame.type = static_cast<FrameType>(type);
      ++data_frames_;
      payload_bytes_ += payload.size();
      // The raw pages sit between this frame and the next, starting at the
      // next 4-KiB file offset. Parse the metadata to learn how many, and
      // bounds-check the region (per-page CRCs are the loader's job).
      ArenaFrameMeta meta;
      Status st = ParseArenaFrameMeta(frame.type, payload, &meta);
      if (!st.ok()) return st;
      const uint64_t aligned =
          (pos_ + kArenaFileAlign - 1) / kArenaFileAlign * kArenaFileAlign;
      const uint64_t raw_bytes = meta.total_stored * Arena::kPageSize;
      if (aligned > bytes_.size() || raw_bytes > bytes_.size() - aligned) {
        return BadSnapshotError("arena pages exceed the container");
      }
      frame.pages_offset = aligned;
      frame.pages_stored = meta.total_stored;
      pos_ = aligned + raw_bytes;
      break;
    }
    case static_cast<uint8_t>(FrameType::kEnd): {
      frame.type = FrameType::kEnd;
      size_t pos = 0;
      uint32_t frames = 0;
      uint64_t bytes = 0;
      if (!ReadU32(payload, &pos, &frames) ||
          !ReadU64(payload, &pos, &bytes) || pos != payload.size() ||
          frames != data_frames_ || bytes != payload_bytes_) {
        return BadSnapshotError("end frame does not match the container");
      }
      if (pos_ != bytes_.size()) {
        return BadSnapshotError("trailing bytes after the end frame");
      }
      end_seen_ = true;
      break;
    }
    default:
      return BadSnapshotError("unknown frame type");
  }
  return frame;
}

// --- Generic record codec -------------------------------------------------

void EncodeItemRecords(const std::vector<ItemRecord>& items,
                       std::string* out) {
  AppendU64(out, items.size());
  for (const ItemRecord& rec : items) {
    AppendU64(out, rec.id);
    AppendU64(out, rec.weight.mult);
    AppendU32(out, rec.weight.exp);
  }
}

Status DecodeItemRecords(std::string_view payload,
                         std::vector<ItemRecord>* out) {
  if (out == nullptr) return InvalidArgumentError("null output pointer");
  size_t pos = 0;
  uint64_t count = 0;
  if (!ReadU64(payload, &pos, &count) || count > payload.size() / 20 ||
      pos + count * 20 != payload.size()) {
    return BadSnapshotError("generic frame length mismatch");
  }
  out->clear();
  out->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    ItemRecord rec;
    if (!ReadU64(payload, &pos, &rec.id) ||
        !ReadU64(payload, &pos, &rec.weight.mult) ||
        !ReadU32(payload, &pos, &rec.weight.exp)) {
      return BadSnapshotError("truncated generic record");
    }
    out->push_back(rec);
  }
  return Status::Ok();
}

// --- One-call drivers -----------------------------------------------------

Status SaveSampler(const Sampler& s, const SamplerSpec& spec,
                   std::string* out) {
  if (out == nullptr) return InvalidArgumentError("null output string");
  SnapshotWriter writer(out);
  Status st = writer.BeginSnapshot(s, spec);
  if (!st.ok()) return st;
  st = s.SaveTo(&writer);
  if (!st.ok()) return st;
  return writer.Finish();
}

Status ExportPortable(const Sampler& s, const SamplerSpec& spec,
                      std::string* out) {
  if (out == nullptr) return InvalidArgumentError("null output string");
  std::vector<ItemRecord> items;
  Status st = s.DumpItems(&items);
  if (!st.ok()) return st;
  SnapshotWriter writer(out);
  st = writer.BeginSnapshot(s, spec);
  if (!st.ok()) return st;
  st = writer.AddGenericFrame(items);
  if (!st.ok()) return st;
  return writer.Finish();
}

Status SaveSamplerToFile(const Sampler& s, const SamplerSpec& spec, Env* env,
                         const std::string& path) {
  if (env == nullptr) return InvalidArgumentError("null env");
  std::string bytes;
  Status st = SaveSampler(s, spec, &bytes);
  if (!st.ok()) return st;
  StatusOr<std::unique_ptr<WritableFile>> file =
      env->NewWritableFile(path, /*truncate=*/true);
  if (!file.ok()) return file.status();
  st = (*file)->Append(bytes);
  if (!st.ok()) return st;
  st = (*file)->Sync();
  if (!st.ok()) return st;
  return (*file)->Close();
}

StatusOr<SnapshotInfo> ReadSnapshotInfo(std::string_view bytes) {
  SnapshotReader reader(bytes);
  SnapshotInfo info;
  Status st = reader.ReadHeader(&info);
  if (!st.ok()) return st;
  return info;
}

// --- v2 arena-image drivers -----------------------------------------------

namespace {

// Shared body of SaveSamplerArena / SaveSamplerArenaDelta: collect images,
// build the metadata payload (per-page CRC32C), and frame the container.
Status BuildArenaContainer(Sampler* s, const SamplerSpec& spec,
                           ArenaImageMode mode, uint64_t base_epoch,
                           std::string* out) {
  if (s == nullptr || out == nullptr) {
    return InvalidArgumentError("null argument");
  }
  if (!s->capabilities().arena_image) {
    return UnsupportedError("backend has no arena-image storage");
  }
  std::vector<ArenaImage> images;
  Status st = s->CollectArenaImages(mode, &images);
  if (!st.ok()) return st;
  const bool delta = mode == ArenaImageMode::kDirty;
  std::string meta;
  std::vector<const std::string*> pages;
  if (delta) AppendU64(&meta, base_epoch);
  AppendU32(&meta, static_cast<uint32_t>(images.size()));
  for (const ArenaImage& img : images) {
    AppendU32(&meta, static_cast<uint32_t>(img.roots.size()));
    meta.append(img.roots);
    AppendU64(&meta, img.used_bytes);
    AppendU64(&meta, img.page_count);
    if (delta) {
      AppendU64(&meta, img.pages.size());
    } else if (img.pages.size() != img.page_count) {
      return InvalidArgumentError("backend produced a partial full image");
    }
    for (size_t p = 0; p < img.pages.size(); ++p) {
      const auto& [index, bytes] = img.pages[p];
      if (bytes.size() != Arena::kPageSize || index >= img.page_count ||
          (!delta && index != p)) {
        return InvalidArgumentError("backend produced a malformed arena page");
      }
      if (delta) AppendU64(&meta, index);
      AppendU32(&meta, MaskCrc(Crc32c(bytes)));
      pages.push_back(&bytes);
    }
  }
  SnapshotWriter writer(out, kContainerVersionArena);
  st = writer.BeginSnapshot(*s, spec);
  if (!st.ok()) return st;
  st = writer.AddArenaFrame(
      delta ? FrameType::kArenaDelta : FrameType::kArenaImage, meta, pages);
  if (!st.ok()) return st;
  return writer.Finish();
}

}  // namespace

Status SaveSamplerArena(Sampler* s, const SamplerSpec& spec,
                        std::string* out) {
  return BuildArenaContainer(s, spec, ArenaImageMode::kFull, 0, out);
}

Status SaveSamplerArenaDelta(Sampler* s, const SamplerSpec& spec,
                             uint64_t base_epoch, std::string* out) {
  return BuildArenaContainer(s, spec, ArenaImageMode::kDirty, base_epoch, out);
}

Status WriteFileViaMap(Env* env, const std::string& path,
                       std::string_view bytes) {
  if (env == nullptr) return InvalidArgumentError("null env");
  // Create (or empty) the file, size it, then write through a shared
  // mapping with one Msync as the durability point.
  StatusOr<std::unique_ptr<WritableFile>> file =
      env->NewWritableFile(path, /*truncate=*/true);
  if (!file.ok()) return file.status();
  Status st = (*file)->Close();
  if (!st.ok()) return st;
  st = env->TruncateFile(path, bytes.size());
  if (!st.ok()) return st;
  StatusOr<std::unique_ptr<MappedFile>> map =
      env->MapFile(path, MapMode::kShared);
  if (!map.ok()) {
    if (map.status().code() != StatusCode::kUnsupported) return map.status();
    // This env has no write-through mappings: plain buffered write.
    file = env->NewWritableFile(path, /*truncate=*/true);
    if (!file.ok()) return file.status();
    st = (*file)->Append(bytes);
    if (!st.ok()) return st;
    st = (*file)->Sync();
    if (!st.ok()) return st;
    return (*file)->Close();
  }
  if ((*map)->size() != bytes.size()) {
    return IoError("mapped file size does not match the write");
  }
  if (!bytes.empty()) {
    std::memcpy((*map)->data(), bytes.data(), bytes.size());
  }
  st = (*map)->Msync(0, bytes.size());
  if (!st.ok()) return st;
  // Msync flushes the dirty pages but not the file's metadata (the size
  // set by the truncate above, block allocations); without this fsync the
  // publishing rename could become durable around a short or sparse file.
  return (*map)->Sync();
}

Status ParseArenaContainer(std::shared_ptr<MappedFile> map,
                           bool verify_pages, SnapshotInfo* info,
                           std::vector<ArenaLoad>* loads) {
  if (map == nullptr || info == nullptr || loads == nullptr) {
    return InvalidArgumentError("null argument");
  }
  const std::string_view file = MapView(*map);
  SnapshotReader reader(file);
  Status st = reader.ReadHeader(info);
  if (!st.ok()) return st;
  if (info->version != kContainerVersionArena) {
    return BadSnapshotError("not an arena-image container");
  }
  bool applied = false;
  for (;;) {
    StatusOr<SnapshotReader::Frame> frame = reader.NextFrame();
    if (!frame.ok()) return frame.status();
    if (frame->type == FrameType::kEnd) break;
    if (applied || frame->type != FrameType::kArenaImage) {
      return BadSnapshotError(
          "arena container must hold exactly one arena-image frame");
    }
    st = StageArenaLoads(file, *frame, map, verify_pages, loads);
    if (!st.ok()) return st;
    applied = true;
  }
  if (!applied) return BadSnapshotError("container holds no data frame");
  return Status::Ok();
}

Status ApplyArenaDeltaFile(std::shared_ptr<MappedFile> map,
                           bool verify_pages,
                           uint64_t expected_base_epoch, SnapshotInfo* info,
                           std::vector<ArenaLoad>* loads) {
  if (map == nullptr || info == nullptr || loads == nullptr) {
    return InvalidArgumentError("null argument");
  }
  const std::string_view file = MapView(*map);
  SnapshotReader reader(file);
  SnapshotInfo delta_info;
  Status st = reader.ReadHeader(&delta_info);
  if (!st.ok()) return st;
  if (delta_info.version != kContainerVersionArena) {
    return BadSnapshotError("not an arena-image container");
  }
  bool applied = false;
  for (;;) {
    StatusOr<SnapshotReader::Frame> frame = reader.NextFrame();
    if (!frame.ok()) return frame.status();
    if (frame->type == FrameType::kEnd) break;
    if (applied || frame->type != FrameType::kArenaDelta) {
      return BadSnapshotError(
          "delta container must hold exactly one arena-delta frame");
    }
    ArenaFrameMeta meta;
    st = ParseArenaFrameMeta(FrameType::kArenaDelta, frame->payload, &meta);
    if (!st.ok()) return st;
    if (meta.base_epoch != expected_base_epoch) {
      return BadSnapshotError("delta does not extend the staged epoch");
    }
    if (meta.images.size() != loads->size()) {
      return BadSnapshotError("delta image count does not match the base");
    }
    uint64_t region = frame->pages_offset;
    for (size_t i = 0; i < meta.images.size(); ++i) {
      const ArenaImageMeta& im = meta.images[i];
      Arena& arena = (*loads)[i].arena;
      if (im.used_bytes < arena.used_bytes()) {
        return BadSnapshotError("delta shrinks an arena");
      }
      // Every page past the base extent was dirtied when it was first
      // bump-allocated, so a genuine delta stores all of them. This also
      // bounds GrowForLoad below to file-proportional allocations — a
      // corrupt used_bytes cannot demand an exabyte arena.
      if (im.page_count > arena.page_count() + im.stored.size()) {
        return BadSnapshotError("delta grows an arena past its stored pages");
      }
      if (verify_pages) {
        for (size_t p = 0; p < im.stored.size(); ++p) {
          const std::string_view page(
              file.data() + region + p * Arena::kPageSize, Arena::kPageSize);
          if (Crc32c(page) != im.stored[p].crc) {
            return BadSnapshotError("arena page checksum mismatch");
          }
        }
      }
      // Dirty pages land on the staged arena. For an adopted base mapping
      // the writes are copy-on-write — the snapshot file is never touched.
      arena.GrowForLoad(im.used_bytes);
      for (size_t p = 0; p < im.stored.size(); ++p) {
        std::memcpy(arena.base() + im.stored[p].index * Arena::kPageSize,
                    file.data() + region + p * Arena::kPageSize,
                    Arena::kPageSize);
      }
      (*loads)[i].roots.assign(im.roots);
      region += im.stored.size() * Arena::kPageSize;
    }
    applied = true;
  }
  if (!applied) return BadSnapshotError("container holds no data frame");
  *info = std::move(delta_info);
  return Status::Ok();
}

StatusOr<std::unique_ptr<Sampler>> RestoreArenaSampler(
    const SnapshotInfo& info, std::vector<ArenaLoad>&& loads) {
  StatusOr<std::unique_ptr<Sampler>> s =
      MakeSamplerChecked(info.backend, info.spec);
  if (!s.ok()) {
    return BadSnapshotError("header names a backend the registry rejects");
  }
  Status st = (*s)->RestoreFromArenas(std::move(loads));
  if (!st.ok()) return st;
  if ((*s)->size() != info.size ||
      !((*s)->TotalWeight() == info.total_weight)) {
    return BadSnapshotError(
        "restored state does not match the header's size/total-weight");
  }
  return std::move(*s);
}

namespace {

// Shared tail of the load paths: walk the data frames, apply them to `s`,
// and cross-check the restored state against the header.
Status LoadFramesInto(SnapshotReader& reader, const SnapshotInfo& info,
                      bool allow_native, Sampler* s) {
  bool applied = false;
  for (;;) {
    StatusOr<SnapshotReader::Frame> frame = reader.NextFrame();
    if (!frame.ok()) return frame.status();
    if (frame->type == FrameType::kEnd) break;
    if (applied) {
      return BadSnapshotError("container holds more than one data frame");
    }
    if (frame->type == FrameType::kPayload) {
      if (!allow_native) {
        return BadSnapshotError(
            "native snapshot payload is for a different backend");
      }
      Status st = s->Restore(std::string(frame->payload));
      if (!st.ok()) return st;
    } else if (frame->type == FrameType::kArenaImage) {
      // The byte-based load path for a v2 container: copy the raw pages
      // into owned heap arenas (per-page CRCs always verified here) and
      // hand them to the backend. Same restore entry point the mmap
      // recovery path uses, minus the zero-copy adoption.
      if (!allow_native) {
        return BadSnapshotError(
            "native snapshot payload is for a different backend");
      }
      std::vector<ArenaLoad> loads;
      Status st = StageArenaLoads(reader.bytes(), *frame, /*map=*/nullptr,
                                  /*verify_pages=*/true, &loads);
      if (!st.ok()) return st;
      st = s->RestoreFromArenas(std::move(loads));
      if (!st.ok()) return st;
    } else if (frame->type == FrameType::kArenaDelta) {
      return BadSnapshotError(
          "arena-delta container cannot be loaded standalone");
    } else {  // kGeneric
      if (!s->empty()) {
        return InvalidArgumentError(
            "generic snapshot import needs an empty sampler");
      }
      std::vector<ItemRecord> items;
      Status st = DecodeItemRecords(frame->payload, &items);
      if (!st.ok()) return st;
      for (const ItemRecord& rec : items) {
        StatusOr<ItemId> id = s->InsertWeight(rec.weight);
        if (!id.ok()) return id.status();
      }
    }
    applied = true;
  }
  if (!applied) return BadSnapshotError("container holds no data frame");
  if (s->size() != info.size || !(s->TotalWeight() == info.total_weight)) {
    return BadSnapshotError(
        "restored state does not match the header's size/total-weight");
  }
  return Status::Ok();
}

}  // namespace

StatusOr<std::unique_ptr<Sampler>> LoadSampler(const std::string& bytes) {
  SnapshotReader reader(bytes);
  SnapshotInfo info;
  Status st = reader.ReadHeader(&info);
  if (!st.ok()) return st;
  StatusOr<std::unique_ptr<Sampler>> s =
      MakeSamplerChecked(info.backend, info.spec);
  if (!s.ok()) {
    return BadSnapshotError("header names a backend the registry rejects");
  }
  st = LoadFramesInto(reader, info, /*allow_native=*/true, s->get());
  if (!st.ok()) return st;
  return std::move(*s);
}

StatusOr<std::unique_ptr<Sampler>> LoadSamplerAs(const std::string& name,
                                                 const SamplerSpec& spec,
                                                 const std::string& bytes) {
  SnapshotReader reader(bytes);
  SnapshotInfo info;
  Status st = reader.ReadHeader(&info);
  if (!st.ok()) return st;
  StatusOr<std::unique_ptr<Sampler>> s = MakeSamplerChecked(name, spec);
  if (!s.ok()) return s.status();
  st = LoadFramesInto(reader, info, /*allow_native=*/info.backend == name,
                      s->get());
  if (!st.ok()) return st;
  return std::move(*s);
}

Status LoadSamplerInto(const std::string& bytes, Sampler* s) {
  if (s == nullptr) return InvalidArgumentError("null sampler");
  SnapshotReader reader(bytes);
  SnapshotInfo info;
  Status st = reader.ReadHeader(&info);
  if (!st.ok()) return st;
  return LoadFramesInto(reader, info,
                        /*allow_native=*/info.backend == s->name(), s);
}

}  // namespace persist
}  // namespace dpss
