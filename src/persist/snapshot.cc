// Snapshot container implementation, plus the default Sampler::SaveTo
// (declared in core/sampler.h; defined here next to the frame format it
// writes).

#include "persist/snapshot.h"

#include <utility>

#include "persist/crc32c.h"
#include "util/little_endian.h"

namespace dpss {

// --- Sampler::SaveTo (interface default) ----------------------------------

Status Sampler::SaveTo(persist::SnapshotWriter* writer) const {
  if (writer == nullptr) {
    return InvalidArgumentError("null snapshot writer");
  }
  if (capabilities().snapshots) {
    std::string payload;
    Status st = Serialize(&payload);
    if (!st.ok()) return st;
    return writer->AddPayloadFrame(payload);
  }
  // No native format: fall back to the portable (id, weight) dump.
  std::vector<ItemRecord> items;
  Status st = DumpItems(&items);
  if (!st.ok()) return st;
  return writer->AddGenericFrame(items);
}

namespace persist {

namespace {

// Sanity cap on a single frame (the format field is u32; this guards
// readers against absurd lengths from corrupt input long before any
// allocation).
constexpr uint32_t kMaxFrameLen = 0xf0000000u;

void EncodeSpec(const SamplerSpec& spec, std::string* out) {
  AppendU64(out, spec.seed);
  AppendU8(out, spec.deamortized_rebuild ? 1 : 0);
  AppendU8(out, spec.exact_arithmetic ? 1 : 0);
  AppendU32(out, static_cast<uint32_t>(spec.migrate_per_update));
  AppendU64(out, spec.fixed_alpha.num);
  AppendU64(out, spec.fixed_alpha.den);
  AppendU64(out, spec.fixed_beta.num);
  AppendU64(out, spec.fixed_beta.den);
  AppendU32(out, static_cast<uint32_t>(spec.num_shards));
  AppendU32(out, static_cast<uint32_t>(spec.num_threads));
}

bool DecodeSpec(std::string_view in, size_t* pos, SamplerSpec* spec) {
  uint8_t deam = 0, exact = 0;
  uint32_t migrate = 0, shards = 0, threads = 0;
  if (!ReadU64(in, pos, &spec->seed) || !ReadU8(in, pos, &deam) ||
      !ReadU8(in, pos, &exact) || !ReadU32(in, pos, &migrate) ||
      !ReadU64(in, pos, &spec->fixed_alpha.num) ||
      !ReadU64(in, pos, &spec->fixed_alpha.den) ||
      !ReadU64(in, pos, &spec->fixed_beta.num) ||
      !ReadU64(in, pos, &spec->fixed_beta.den) ||
      !ReadU32(in, pos, &shards) || !ReadU32(in, pos, &threads)) {
    return false;
  }
  spec->deamortized_rebuild = deam != 0;
  spec->exact_arithmetic = exact != 0;
  spec->migrate_per_update = static_cast<int>(migrate);
  spec->num_shards = static_cast<int>(shards);
  spec->num_threads = static_cast<int>(threads);
  return true;
}

void EncodeBigUInt(const BigUInt& v, std::string* out) {
  AppendU16(out, static_cast<uint16_t>(v.WordCount()));
  for (int i = 0; i < v.WordCount(); ++i) AppendU64(out, v.Word(i));
}

bool DecodeBigUInt(std::string_view in, size_t* pos, BigUInt* out) {
  uint16_t words = 0;
  if (!ReadU16(in, pos, &words)) return false;
  BigUInt v;
  for (int i = words - 1; i >= 0; --i) {
    uint64_t w = 0;
    // Words are stored little-endian; rebuild from the top so each shift
    // makes room for the next lower word.
    size_t p = *pos + static_cast<size_t>(i) * 8;
    if (!ReadU64(in, &p, &w)) return false;
    v = (v << 64) + BigUInt(w);
  }
  *pos += static_cast<size_t>(words) * 8;
  if (*pos > in.size()) return false;
  *out = std::move(v);
  return true;
}

}  // namespace

// --- SnapshotWriter -------------------------------------------------------

void SnapshotWriter::AppendFrame(FrameType type, std::string_view payload) {
  std::string head;
  AppendU8(&head, static_cast<uint8_t>(type));
  AppendU32(&head, static_cast<uint32_t>(payload.size()));
  out_->append(head);
  out_->append(payload);
  // CRC over the tag and the payload (not the length: a corrupt length
  // already fails the envelope parse or the CRC offset).
  const uint32_t crc =
      Crc32c(payload, Crc32c(std::string_view(head.data(), 1)));
  AppendU32(out_, MaskCrc(crc));
}

Status SnapshotWriter::BeginSnapshot(const Sampler& s,
                                     const SamplerSpec& spec) {
  if (out_ == nullptr) return InvalidArgumentError("null output string");
  if (begun_) return InvalidArgumentError("BeginSnapshot called twice");
  begun_ = true;
  AppendU64(out_, kContainerMagic);
  std::string header;
  AppendU32(&header, kContainerVersion);
  const std::string name = s.name();
  AppendU16(&header, static_cast<uint16_t>(name.size()));
  header.append(name);
  AppendU64(&header, s.size());
  EncodeBigUInt(s.TotalWeight(), &header);
  EncodeSpec(spec, &header);
  AppendFrame(FrameType::kHeader, header);
  return Status::Ok();
}

Status SnapshotWriter::AddPayloadFrame(std::string_view bytes) {
  if (!begun_ || finished_) {
    return InvalidArgumentError("payload frame outside Begin/Finish");
  }
  if (data_frames_ != 0) {
    return InvalidArgumentError("container already holds a data frame");
  }
  if (bytes.size() > kMaxFrameLen) {
    return InvalidArgumentError("snapshot payload exceeds the frame limit");
  }
  AppendFrame(FrameType::kPayload, bytes);
  ++data_frames_;
  payload_bytes_ += bytes.size();
  return Status::Ok();
}

Status SnapshotWriter::AddGenericFrame(const std::vector<ItemRecord>& items) {
  if (!begun_ || finished_) {
    return InvalidArgumentError("generic frame outside Begin/Finish");
  }
  if (data_frames_ != 0) {
    return InvalidArgumentError("container already holds a data frame");
  }
  std::string payload;
  EncodeItemRecords(items, &payload);
  if (payload.size() > kMaxFrameLen) {
    return InvalidArgumentError("snapshot payload exceeds the frame limit");
  }
  AppendFrame(FrameType::kGeneric, payload);
  ++data_frames_;
  payload_bytes_ += payload.size();
  return Status::Ok();
}

Status SnapshotWriter::Finish() {
  if (!begun_ || finished_) {
    return InvalidArgumentError("Finish outside an open snapshot");
  }
  if (data_frames_ == 0) {
    return InvalidArgumentError("container holds no data frame");
  }
  finished_ = true;
  std::string seal;
  AppendU32(&seal, data_frames_);
  AppendU64(&seal, payload_bytes_);
  AppendFrame(FrameType::kEnd, seal);
  return Status::Ok();
}

// --- SnapshotReader -------------------------------------------------------

Status SnapshotReader::ReadHeader(SnapshotInfo* info) {
  if (info == nullptr) return InvalidArgumentError("null info pointer");
  if (header_done_) return InvalidArgumentError("header already read");
  uint64_t magic = 0;
  if (!ReadU64(bytes_, &pos_, &magic) || magic != kContainerMagic) {
    return BadSnapshotError("bad magic / not a DPSSNP01 container");
  }
  StatusOr<Frame> frame = NextFrame();
  if (!frame.ok()) return frame.status();
  if (frame->type != FrameType::kHeader) {
    return BadSnapshotError("container does not start with a header frame");
  }
  std::string_view h = frame->payload;
  size_t pos = 0;
  uint16_t name_len = 0;
  if (!ReadU32(h, &pos, &info->version)) {
    return BadSnapshotError("truncated header frame");
  }
  if (info->version != kContainerVersion) {
    return BadSnapshotError(
        "unknown container version (format bumps need an explicit reader)");
  }
  if (!ReadU16(h, &pos, &name_len) || pos + name_len > h.size()) {
    return BadSnapshotError("truncated backend name");
  }
  info->backend.assign(h.data() + pos, name_len);
  pos += name_len;
  if (!ReadU64(h, &pos, &info->size) ||
      !DecodeBigUInt(h, &pos, &info->total_weight) ||
      !DecodeSpec(h, &pos, &info->spec) || pos != h.size()) {
    return BadSnapshotError("malformed header frame");
  }
  header_done_ = true;
  return Status::Ok();
}

StatusOr<SnapshotReader::Frame> SnapshotReader::NextFrame() {
  if (end_seen_) return BadSnapshotError("read past the end frame");
  uint8_t type = 0;
  uint32_t len = 0;
  if (!ReadU8(bytes_, &pos_, &type) || !ReadU32(bytes_, &pos_, &len)) {
    return BadSnapshotError("truncated frame envelope");
  }
  if (len > kMaxFrameLen || pos_ + len + 4 > bytes_.size()) {
    return BadSnapshotError("frame length exceeds the container");
  }
  const std::string_view payload = bytes_.substr(pos_, len);
  pos_ += len;
  uint32_t stored = 0;
  ReadU32(bytes_, &pos_, &stored);
  const char tag = static_cast<char>(type);
  const uint32_t actual =
      Crc32c(payload, Crc32c(std::string_view(&tag, 1)));
  if (UnmaskCrc(stored) != actual) {
    return BadSnapshotError("frame checksum mismatch");
  }
  Frame frame;
  frame.payload = payload;
  switch (type) {
    case static_cast<uint8_t>(FrameType::kHeader):
      frame.type = FrameType::kHeader;
      break;
    case static_cast<uint8_t>(FrameType::kPayload):
    case static_cast<uint8_t>(FrameType::kGeneric):
      frame.type = static_cast<FrameType>(type);
      ++data_frames_;
      payload_bytes_ += payload.size();
      break;
    case static_cast<uint8_t>(FrameType::kEnd): {
      frame.type = FrameType::kEnd;
      size_t pos = 0;
      uint32_t frames = 0;
      uint64_t bytes = 0;
      if (!ReadU32(payload, &pos, &frames) ||
          !ReadU64(payload, &pos, &bytes) || pos != payload.size() ||
          frames != data_frames_ || bytes != payload_bytes_) {
        return BadSnapshotError("end frame does not match the container");
      }
      if (pos_ != bytes_.size()) {
        return BadSnapshotError("trailing bytes after the end frame");
      }
      end_seen_ = true;
      break;
    }
    default:
      return BadSnapshotError("unknown frame type");
  }
  return frame;
}

// --- Generic record codec -------------------------------------------------

void EncodeItemRecords(const std::vector<ItemRecord>& items,
                       std::string* out) {
  AppendU64(out, items.size());
  for (const ItemRecord& rec : items) {
    AppendU64(out, rec.id);
    AppendU64(out, rec.weight.mult);
    AppendU32(out, rec.weight.exp);
  }
}

Status DecodeItemRecords(std::string_view payload,
                         std::vector<ItemRecord>* out) {
  if (out == nullptr) return InvalidArgumentError("null output pointer");
  size_t pos = 0;
  uint64_t count = 0;
  if (!ReadU64(payload, &pos, &count) || count > payload.size() / 20 ||
      pos + count * 20 != payload.size()) {
    return BadSnapshotError("generic frame length mismatch");
  }
  out->clear();
  out->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    ItemRecord rec;
    if (!ReadU64(payload, &pos, &rec.id) ||
        !ReadU64(payload, &pos, &rec.weight.mult) ||
        !ReadU32(payload, &pos, &rec.weight.exp)) {
      return BadSnapshotError("truncated generic record");
    }
    out->push_back(rec);
  }
  return Status::Ok();
}

// --- One-call drivers -----------------------------------------------------

Status SaveSampler(const Sampler& s, const SamplerSpec& spec,
                   std::string* out) {
  if (out == nullptr) return InvalidArgumentError("null output string");
  SnapshotWriter writer(out);
  Status st = writer.BeginSnapshot(s, spec);
  if (!st.ok()) return st;
  st = s.SaveTo(&writer);
  if (!st.ok()) return st;
  return writer.Finish();
}

Status ExportPortable(const Sampler& s, const SamplerSpec& spec,
                      std::string* out) {
  if (out == nullptr) return InvalidArgumentError("null output string");
  std::vector<ItemRecord> items;
  Status st = s.DumpItems(&items);
  if (!st.ok()) return st;
  SnapshotWriter writer(out);
  st = writer.BeginSnapshot(s, spec);
  if (!st.ok()) return st;
  st = writer.AddGenericFrame(items);
  if (!st.ok()) return st;
  return writer.Finish();
}

Status SaveSamplerToFile(const Sampler& s, const SamplerSpec& spec, Env* env,
                         const std::string& path) {
  if (env == nullptr) return InvalidArgumentError("null env");
  std::string bytes;
  Status st = SaveSampler(s, spec, &bytes);
  if (!st.ok()) return st;
  StatusOr<std::unique_ptr<WritableFile>> file =
      env->NewWritableFile(path, /*truncate=*/true);
  if (!file.ok()) return file.status();
  st = (*file)->Append(bytes);
  if (!st.ok()) return st;
  st = (*file)->Sync();
  if (!st.ok()) return st;
  return (*file)->Close();
}

StatusOr<SnapshotInfo> ReadSnapshotInfo(const std::string& bytes) {
  SnapshotReader reader(bytes);
  SnapshotInfo info;
  Status st = reader.ReadHeader(&info);
  if (!st.ok()) return st;
  return info;
}

namespace {

// Shared tail of the load paths: walk the data frames, apply them to `s`,
// and cross-check the restored state against the header.
Status LoadFramesInto(SnapshotReader& reader, const SnapshotInfo& info,
                      bool allow_native, Sampler* s) {
  bool applied = false;
  for (;;) {
    StatusOr<SnapshotReader::Frame> frame = reader.NextFrame();
    if (!frame.ok()) return frame.status();
    if (frame->type == FrameType::kEnd) break;
    if (applied) {
      return BadSnapshotError("container holds more than one data frame");
    }
    if (frame->type == FrameType::kPayload) {
      if (!allow_native) {
        return BadSnapshotError(
            "native snapshot payload is for a different backend");
      }
      Status st = s->Restore(std::string(frame->payload));
      if (!st.ok()) return st;
    } else {  // kGeneric
      if (!s->empty()) {
        return InvalidArgumentError(
            "generic snapshot import needs an empty sampler");
      }
      std::vector<ItemRecord> items;
      Status st = DecodeItemRecords(frame->payload, &items);
      if (!st.ok()) return st;
      for (const ItemRecord& rec : items) {
        StatusOr<ItemId> id = s->InsertWeight(rec.weight);
        if (!id.ok()) return id.status();
      }
    }
    applied = true;
  }
  if (!applied) return BadSnapshotError("container holds no data frame");
  if (s->size() != info.size || !(s->TotalWeight() == info.total_weight)) {
    return BadSnapshotError(
        "restored state does not match the header's size/total-weight");
  }
  return Status::Ok();
}

}  // namespace

StatusOr<std::unique_ptr<Sampler>> LoadSampler(const std::string& bytes) {
  SnapshotReader reader(bytes);
  SnapshotInfo info;
  Status st = reader.ReadHeader(&info);
  if (!st.ok()) return st;
  StatusOr<std::unique_ptr<Sampler>> s =
      MakeSamplerChecked(info.backend, info.spec);
  if (!s.ok()) {
    return BadSnapshotError("header names a backend the registry rejects");
  }
  st = LoadFramesInto(reader, info, /*allow_native=*/true, s->get());
  if (!st.ok()) return st;
  return std::move(*s);
}

StatusOr<std::unique_ptr<Sampler>> LoadSamplerAs(const std::string& name,
                                                 const SamplerSpec& spec,
                                                 const std::string& bytes) {
  SnapshotReader reader(bytes);
  SnapshotInfo info;
  Status st = reader.ReadHeader(&info);
  if (!st.ok()) return st;
  StatusOr<std::unique_ptr<Sampler>> s = MakeSamplerChecked(name, spec);
  if (!s.ok()) return s.status();
  st = LoadFramesInto(reader, info, /*allow_native=*/info.backend == name,
                      s->get());
  if (!st.ok()) return st;
  return std::move(*s);
}

Status LoadSamplerInto(const std::string& bytes, Sampler* s) {
  if (s == nullptr) return InvalidArgumentError("null sampler");
  SnapshotReader reader(bytes);
  SnapshotInfo info;
  Status st = reader.ReadHeader(&info);
  if (!st.ok()) return st;
  return LoadFramesInto(reader, info,
                        /*allow_native=*/info.backend == s->name(), s);
}

}  // namespace persist
}  // namespace dpss
