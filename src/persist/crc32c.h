/// \file
/// \brief CRC32C (Castagnoli) checksums for the persistence formats.
///
/// Every snapshot frame and WAL record carries a CRC32C of its contents,
/// computed by this software (table-driven) implementation — no external
/// dependency, deterministic across platforms, and fast enough that
/// checksumming is never the bottleneck next to an fsync. Checksums are
/// *masked* before storage (the leveldb rotation+offset trick) so a CRC of
/// data that itself embeds CRCs does not degenerate.

#ifndef DPSS_PERSIST_CRC32C_H_
#define DPSS_PERSIST_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace dpss {
namespace persist {

/// CRC32C of `data`, optionally continuing from a previous value
/// (`Crc32c(b, Crc32c(a))` == `Crc32c(ab)`).
uint32_t Crc32c(std::string_view data, uint32_t init = 0);

/// Masks a raw CRC for storage so that checksummed data containing
/// embedded checksums stays well-distributed.
inline uint32_t MaskCrc(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}

/// Inverse of MaskCrc.
inline uint32_t UnmaskCrc(uint32_t masked) {
  const uint32_t rot = masked - 0xa282ead8u;
  return (rot >> 17) | (rot << 15);
}

}  // namespace persist
}  // namespace dpss

#endif  // DPSS_PERSIST_CRC32C_H_
