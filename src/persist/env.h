/// \file
/// \brief Filesystem abstraction for the persistence layer: `persist::Env`
/// and `persist::WritableFile`.
///
/// Everything in `src/persist/` performs I/O exclusively through this
/// interface, for two reasons. First, crash-consistency is a property of an
/// *ordered sequence of durability points* (append, fsync, rename,
/// directory sync), and an interface whose calls are exactly those points
/// makes the ordering auditable — `docs/PERSISTENCE.md` argues correctness
/// in terms of these calls. Second, the kill-point recovery harness
/// (`tests/recovery_test.cc`) injects a crash at *every* call index by
/// wrapping an Env, which is only possible when no code path sidesteps the
/// interface.
///
/// Two implementations ship: `SystemEnv()` (POSIX files; fsync-backed
/// durability) and `MemEnv` (an in-process filesystem used by the fault
/// harness, the benchmarks and the golden tests — its "disk" is exactly
/// the bytes a crashed process would leave behind).

#ifndef DPSS_PERSIST_ENV_H_
#define DPSS_PERSIST_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "core/status.h"

namespace dpss {

/// \namespace dpss::persist
/// \brief The durability layer: filesystem abstraction, the CRC-framed
/// snapshot container, the write-ahead log, and crash recovery for any
/// `dpss::Sampler` backend. See docs/PERSISTENCE.md.
namespace persist {

/// An append-only output file. Append buffers in process memory (or the OS
/// page cache); data is guaranteed durable only after a successful Sync().
/// Not thread-safe; one writer per file.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// Appends bytes to the file. The write is *not* durable yet.
  /// \return `kIoError` on failure; the file may then hold any prefix of
  ///   the data (exactly the torn-write behaviour recovery must handle).
  virtual Status Append(std::string_view data) = 0;

  /// Pushes buffered bytes to the operating system (no durability).
  virtual Status Flush() = 0;

  /// Durability point: after Ok, every previously appended byte survives a
  /// crash (fsync for SystemEnv).
  virtual Status Sync() = 0;

  /// Flushes and closes. Further calls are invalid.
  virtual Status Close() = 0;
};

/// How a file mapping behaves with respect to the underlying file.
enum class MapMode {
  /// Copy-on-write: reads see the file, writes stay private to the mapping
  /// and never reach the file. The arena recovery path adopts such a
  /// mapping directly — the OS faults pages in on demand, so "load" is
  /// O(1) instead of O(file size).
  kPrivate,
  /// Write-through: stores hit the file's pages; `Msync` is the durability
  /// point for a written range (msync(MS_SYNC) for SystemEnv). Used by the
  /// checkpoint writer to emit page images without a second buffering copy.
  kShared,
};

/// A file mapped into the address space. The region is writable in both
/// modes (see MapMode for where writes go). The mapping — and therefore
/// `data()` — stays valid until the object is destroyed; the file must not
/// be resized while mapped.
class MappedFile {
 public:
  virtual ~MappedFile() = default;

  /// Base of the mapped region (nullptr iff size() == 0).
  virtual char* data() = 0;

  /// Mapped length in bytes (the file size at MapFile time).
  virtual uint64_t size() const = 0;

  /// Durability point for `[offset, offset+len)` of a kShared mapping:
  /// after Ok those bytes survive a crash. No-op for kPrivate mappings.
  /// \return `kIoError` on failure (the fault harness injects crashes
  ///   here, exactly like WritableFile::Sync).
  virtual Status Msync(uint64_t offset, uint64_t len) = 0;

  /// File-level durability point for a kShared mapping: after Ok the
  /// file's *metadata* (its size from the sizing truncate, block
  /// allocations) has reached disk too. `Msync` alone only flushes the
  /// mapped pages — a crash after it can still surface the file short or
  /// sparse, so writers call Sync before publishing via rename. fsync(2)
  /// of the mapped fd for SystemEnv; no-op for kPrivate mappings.
  virtual Status Sync() = 0;
};

/// The filesystem surface the persistence layer runs on. All paths are
/// plain strings; directories separate with '/'. Implementations must be
/// thread-compatible (the callers serialize access per directory).
class Env {
 public:
  virtual ~Env() = default;

  /// Opens `path` for writing. `truncate` starts the file empty; otherwise
  /// appends to existing content (creating the file if absent).
  virtual StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) = 0;

  /// Reads the whole file into `*out` (replacing its contents).
  /// \return `kIoError` if the file does not exist or cannot be read.
  virtual Status ReadFileToString(const std::string& path,
                                  std::string* out) = 0;

  /// True iff the path names an existing file.
  virtual bool FileExists(const std::string& path) = 0;

  /// Names (not paths) of the entries in `dir`, unsorted; "." and ".."
  /// excluded.
  virtual StatusOr<std::vector<std::string>> ListDir(
      const std::string& dir) = 0;

  /// Creates a directory; Ok if it already exists.
  virtual Status CreateDir(const std::string& dir) = 0;

  /// Atomically replaces `to` with `from` (POSIX rename semantics). The
  /// rename itself is durable only after SyncDir on the parent.
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;

  /// Removes a file. `kIoError` if it does not exist.
  virtual Status DeleteFile(const std::string& path) = 0;

  /// Truncates a file to `size` bytes (used to drop a torn WAL tail).
  virtual Status TruncateFile(const std::string& path, uint64_t size) = 0;

  /// Durability point for directory metadata: makes completed renames,
  /// creations and deletions in `dir` survive a crash.
  virtual Status SyncDir(const std::string& dir) = 0;

  /// Maps `path` into memory (see MapMode). The base-class default
  /// emulates kPrivate by reading the file into a heap buffer — correct
  /// for every Env, just without the lazy-fault win — and reports
  /// `kUnsupported` for kShared (callers fall back to buffered writes).
  virtual StatusOr<std::unique_ptr<MappedFile>> MapFile(
      const std::string& path, MapMode mode);
};

/// The process-wide POSIX environment (never null, never freed).
Env* SystemEnv();

/// An in-process filesystem: files are strings in a map, every operation
/// is atomic under one mutex, Sync/SyncDir are no-ops (the "disk" is
/// process memory). Used by the recovery fault harness — the map contents
/// at any instant are exactly what a crash at that instant would leave —
/// and by benchmarks that must not measure the host filesystem.
class MemEnv final : public Env {
 public:
  StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override;
  Status ReadFileToString(const std::string& path, std::string* out) override;
  bool FileExists(const std::string& path) override;
  StatusOr<std::vector<std::string>> ListDir(const std::string& dir) override;
  Status CreateDir(const std::string& dir) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status DeleteFile(const std::string& path) override;
  Status TruncateFile(const std::string& path, uint64_t size) override;
  Status SyncDir(const std::string& dir) override;
  /// kPrivate maps a heap copy; kShared maps the env's own backing string
  /// (write-through, Msync a no-op — MemEnv's "disk" is process memory).
  /// The file must not be appended to, renamed or truncated while a
  /// kShared mapping is live (the std::map node is stable, the string
  /// buffer is stable only while its size is).
  StatusOr<std::unique_ptr<MappedFile>> MapFile(const std::string& path,
                                                MapMode mode) override;

  /// Copies every file and directory of `other` into this env (this env's
  /// previous contents are dropped). Benchmarks use it to re-run recovery
  /// on identical on-disk state.
  void CloneFrom(const MemEnv& other);

  /// Direct append used by MemEnv's WritableFile (public for the file
  /// object only; not part of the Env surface).
  void AppendTo(const std::string& path, std::string_view data);

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::string> files_;
  std::set<std::string> dirs_;
};

}  // namespace persist
}  // namespace dpss

#endif  // DPSS_PERSIST_ENV_H_
