#include "persist/wal.h"

#include <utility>

#include "persist/crc32c.h"
#include "util/little_endian.h"

namespace dpss {
namespace persist {

namespace {

// Header: magic(8) + version(4) + epoch(8).
constexpr uint64_t kHeaderBytes = 20;
// Caps one record body; a length beyond this is treated as corruption
// before any allocation happens.
constexpr uint32_t kMaxRecordLen = 1u << 28;

bool ValidKind(uint8_t kind) {
  return kind == static_cast<uint8_t>(Op::Kind::kInsert) ||
         kind == static_cast<uint8_t>(Op::Kind::kErase) ||
         kind == static_cast<uint8_t>(Op::Kind::kSetWeight) ||
         kind == static_cast<uint8_t>(Op::Kind::kDecay);
}

}  // namespace

void ParseWalRecords(std::string_view bytes, uint64_t expected_first_seq,
                     std::vector<WalRecord>* records, uint64_t* valid_bytes) {
  size_t pos = 0;
  uint64_t expected_seq = expected_first_seq;
  *valid_bytes = 0;
  for (;;) {
    size_t cursor = pos;
    uint32_t len = 0;
    if (!ReadU32(bytes, &cursor, &len)) break;  // clean end or torn length
    if (len > kMaxRecordLen || cursor + len + 4 > bytes.size()) break;
    const std::string_view body(bytes.data() + cursor, len);
    cursor += len;
    uint32_t stored = 0;
    ReadU32(bytes, &cursor, &stored);
    if (UnmaskCrc(stored) != Crc32c(body)) break;

    // CRC-valid body; decode it. A body that passes the CRC but fails to
    // decode is corruption of the writer, not a torn tail — but the policy
    // is the same either way: the valid prefix ends here.
    size_t bpos = 0;
    uint64_t seq = 0;
    uint32_t op_count = 0;
    if (!ReadU64(body, &bpos, &seq) || !ReadU32(body, &bpos, &op_count) ||
        seq != expected_seq ||
        bpos + static_cast<uint64_t>(op_count) * 21 != body.size()) {
      break;
    }
    WalRecord record;
    record.seq = seq;
    record.ops.reserve(op_count);
    bool ok = true;
    for (uint32_t i = 0; i < op_count; ++i) {
      uint8_t kind = 0;
      WalOp op;
      if (!ReadU8(body, &bpos, &kind) || !ValidKind(kind) ||
          !ReadU64(body, &bpos, &op.id) ||
          !ReadU64(body, &bpos, &op.weight.mult) ||
          !ReadU32(body, &bpos, &op.weight.exp)) {
        ok = false;
        break;
      }
      op.kind = static_cast<Op::Kind>(kind);
      record.ops.push_back(op);
    }
    if (!ok) break;

    records->push_back(std::move(record));
    ++expected_seq;
    pos = cursor;
    *valid_bytes = pos;
  }
}

StatusOr<WalContents> ReadWal(const std::string& bytes) {
  WalContents contents;
  size_t pos = 0;
  uint64_t magic = 0;
  uint32_t version = 0;
  if (!ReadU64(bytes, &pos, &magic) || magic != kWalMagic) {
    return BadSnapshotError("bad magic / not a DPSSWAL1 log");
  }
  if (!ReadU32(bytes, &pos, &version) || version != kWalVersion) {
    return BadSnapshotError("unknown WAL version");
  }
  if (!ReadU64(bytes, &pos, &contents.epoch)) {
    return BadSnapshotError("truncated WAL header");
  }

  uint64_t record_bytes = 0;
  ParseWalRecords(std::string_view(bytes).substr(pos), /*expected_first_seq=*/1,
                  &contents.records, &record_bytes);
  contents.valid_bytes = pos + record_bytes;
  contents.dropped_bytes = bytes.size() - contents.valid_bytes;
  return contents;
}

std::string EncodeWalHeader(uint64_t epoch) {
  std::string header;
  AppendU64(&header, kWalMagic);
  AppendU32(&header, kWalVersion);
  AppendU64(&header, epoch);
  return header;
}

StatusOr<WalSealInfo> SealWal(Env* env, const std::string& path) {
  if (env == nullptr) return InvalidArgumentError("null env");
  std::string bytes;
  Status st = env->ReadFileToString(path, &bytes);
  if (!st.ok()) return st;
  StatusOr<WalContents> wal = ReadWal(bytes);
  if (!wal.ok()) return wal.status();
  WalSealInfo info;
  info.epoch = wal->epoch;
  info.last_seq = wal->records.empty() ? 0 : wal->records.back().seq;
  info.valid_bytes = wal->valid_bytes;
  info.dropped_bytes = wal->dropped_bytes;
  if (info.dropped_bytes > 0) {
    st = env->TruncateFile(path, info.valid_bytes);
    if (!st.ok()) return st;
  }
  return info;
}

StatusOr<std::unique_ptr<WalWriter>> WalWriter::Create(
    Env* env, const std::string& path, uint64_t epoch) {
  if (env == nullptr) return InvalidArgumentError("null env");
  StatusOr<std::unique_ptr<WritableFile>> file =
      env->NewWritableFile(path, /*truncate=*/true);
  if (!file.ok()) return file.status();
  const std::string header = EncodeWalHeader(epoch);
  Status st = (*file)->Append(header);
  if (!st.ok()) return st;
  // The header syncs immediately: right after a rotation the log must be
  // recognizable even if the process dies before the first record.
  st = (*file)->Sync();
  if (!st.ok()) return st;
  return StatusOr<std::unique_ptr<WalWriter>>(std::unique_ptr<WalWriter>(
      new WalWriter(std::move(*file), kHeaderBytes)));
}

Status WalWriter::Append(const std::vector<WalOp>& ops) {
  std::string body;
  AppendU64(&body, next_seq_);
  AppendU32(&body, static_cast<uint32_t>(ops.size()));
  for (const WalOp& op : ops) {
    AppendU8(&body, static_cast<uint8_t>(op.kind));
    AppendU64(&body, op.id);
    AppendU64(&body, op.weight.mult);
    AppendU32(&body, op.weight.exp);
  }
  if (body.size() > kMaxRecordLen) {
    return InvalidArgumentError("WAL record exceeds the length limit");
  }
  std::string record;
  AppendU32(&record, static_cast<uint32_t>(body.size()));
  record.append(body);
  AppendU32(&record, MaskCrc(Crc32c(body)));
  Status st = file_->Append(record);
  if (!st.ok()) return st;
  ++next_seq_;
  ++unsynced_records_;
  bytes_written_ += record.size();
  return Status::Ok();
}

Status WalWriter::Sync() {
  Status st = file_->Sync();
  if (!st.ok()) return st;
  unsynced_records_ = 0;
  return Status::Ok();
}

}  // namespace persist
}  // namespace dpss
