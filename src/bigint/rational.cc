#include "bigint/rational.h"

#include <cmath>

namespace dpss {

int BigRational::CompareWithPowerOfTwo(int k) const {
  // Compare num/den with 2^k, i.e., num with den * 2^k.
  if (num_.IsZero()) return -1;
  if (k >= 0) return BigUInt::Compare(num_, den_ << k);
  return BigUInt::Compare(num_ << (-k), den_);
}

int BigRational::FloorLog2() const {
  DPSS_CHECK(!num_.IsZero());
  // x = A/B with bit lengths a, b satisfies 2^{a-b-1} < x < 2^{a-b+1},
  // so floor(log2 x) ∈ {a-b-1, a-b}.
  const int k0 = num_.BitLength() - den_.BitLength();
  return CompareWithPowerOfTwo(k0) >= 0 ? k0 : k0 - 1;
}

int BigRational::CeilLog2() const {
  DPSS_CHECK(!num_.IsZero());
  const int f = FloorLog2();
  // ceil == floor iff x is an exact power of two.
  return CompareWithPowerOfTwo(f) == 0 ? f : f + 1;
}

double BigRational::ToDouble() const {
  if (num_.IsZero()) return 0.0;
  // Scale both terms to ~53-bit integers and divide; track the exponent
  // difference exactly.
  const int na = num_.BitLength();
  const int nb = den_.BitLength();
  const int sa = na > 62 ? na - 62 : 0;
  const int sb = nb > 62 ? nb - 62 : 0;
  const double top = static_cast<double>((num_ >> sa).ToU64());
  const double bot = static_cast<double>((den_ >> sb).ToU64());
  return std::ldexp(top / bot, sa - sb);
}

std::string BigRational::ToString() const {
  return num_.ToDecimalString() + "/" + den_.ToDecimalString();
}

}  // namespace dpss
