// Exact non-negative rational numbers.
//
// Two flavours:
//  * Rational64  — numerator/denominator in one word each; the form the
//    paper allows for query parameters (α, β) ("O(1)-word numerator and
//    denominator").
//  * BigRational — numerator/denominator as BigUInt; used internally for the
//    parameterized total weight W_S(α,β), item probabilities, and
//    acceptance coins.
//
// BigRational deliberately does not reduce to lowest terms: all values the
// library builds stay within a handful of words, and comparisons are exact
// cross-multiplications.
//
// FloorLog2 / CeilLog2 implement Claim 4.3: O(1)-time exact ⌊log2 x⌋ and
// ⌈log2 x⌉ for a positive rational, via word bit lengths plus one shifted
// comparison.

#ifndef DPSS_BIGINT_RATIONAL_H_
#define DPSS_BIGINT_RATIONAL_H_

#include <cstdint>
#include <string>

#include "bigint/big_uint.h"
#include "util/check.h"

namespace dpss {

// A non-negative rational with one-word terms. den must be > 0.
struct Rational64 {
  uint64_t num = 0;
  uint64_t den = 1;

  constexpr Rational64() = default;
  constexpr Rational64(uint64_t n, uint64_t d) : num(n), den(d) {}

  bool IsZero() const { return num == 0; }
  double ToDouble() const {
    return static_cast<double>(num) / static_cast<double>(den);
  }
};

class BigRational {
 public:
  // Zero.
  BigRational() : num_(), den_(uint64_t{1}) {}

  BigRational(BigUInt num, BigUInt den)
      : num_(std::move(num)), den_(std::move(den)) {
    DPSS_CHECK(!den_.IsZero());
  }

  static BigRational FromU64(uint64_t num, uint64_t den) {
    return BigRational(BigUInt(num), BigUInt(den));
  }
  static BigRational FromRational64(Rational64 r) {
    return FromU64(r.num, r.den);
  }
  static BigRational FromUInt(BigUInt v) {
    return BigRational(std::move(v), BigUInt(uint64_t{1}));
  }

  const BigUInt& num() const { return num_; }
  const BigUInt& den() const { return den_; }

  bool IsZero() const { return num_.IsZero(); }

  // <0, 0, >0 as a < b, a == b, a > b. Exact.
  static int Compare(const BigRational& a, const BigRational& b) {
    return BigUInt::Compare(a.num_ * b.den_, b.num_ * a.den_);
  }

  friend bool operator==(const BigRational& a, const BigRational& b) {
    return Compare(a, b) == 0;
  }
  friend bool operator<(const BigRational& a, const BigRational& b) {
    return Compare(a, b) < 0;
  }
  friend bool operator<=(const BigRational& a, const BigRational& b) {
    return Compare(a, b) <= 0;
  }
  friend bool operator>(const BigRational& a, const BigRational& b) {
    return Compare(a, b) > 0;
  }
  friend bool operator>=(const BigRational& a, const BigRational& b) {
    return Compare(a, b) >= 0;
  }

  // Comparison against 2^k (k may be negative). <0 if *this < 2^k, etc.
  int CompareWithPowerOfTwo(int k) const;

  // Comparison against 1.
  int CompareWithOne() const { return BigUInt::Compare(num_, den_); }

  static BigRational Add(const BigRational& a, const BigRational& b) {
    return BigRational(a.num_ * b.den_ + b.num_ * a.den_, a.den_ * b.den_);
  }
  static BigRational Mul(const BigRational& a, const BigRational& b) {
    return BigRational(a.num_ * b.num_, a.den_ * b.den_);
  }
  // Requires a >= b.
  static BigRational Sub(const BigRational& a, const BigRational& b) {
    return BigRational(a.num_ * b.den_ - b.num_ * a.den_, a.den_ * b.den_);
  }
  // Requires b > 0.
  static BigRational Div(const BigRational& a, const BigRational& b) {
    DPSS_CHECK(!b.IsZero());
    return BigRational(a.num_ * b.den_, a.den_ * b.num_);
  }

  // ⌊log2 x⌋ for x > 0 (Claim 4.3). May be negative.
  int FloorLog2() const;
  // ⌈log2 x⌉ for x > 0 (Claim 4.3). May be negative.
  int CeilLog2() const;

  // Closest double; exact exponent handling via bit lengths, so values far
  // outside the double range saturate to 0 / +inf. Diagnostics only.
  double ToDouble() const;

  // "num/den" in decimal. Debugging and tests.
  std::string ToString() const;

 private:
  BigUInt num_;
  BigUInt den_;
};

}  // namespace dpss

#endif  // DPSS_BIGINT_RATIONAL_H_
