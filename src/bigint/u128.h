// Two-word ("small") integer layer for the query fast path.
//
// In the common u64-weight regime every numerator and denominator the query
// algorithms manipulate fits in at most two machine words. This header
// provides the u128 primitives the fast-path overloads in src/random/ and
// the HALT query code build on: bit lengths, overflow-checked shifts, and
// the fixed-point division kernel used by the first approximation rung of
// the lazy Bernoulli samplers.
//
// Every fast-path routine is an exact value-level mirror of its BigUInt
// counterpart: given equal operand values it consumes the same random bits
// and returns the same result, so dispatching on operand size never changes
// the sampling distribution (tests/fastpath_equivalence_test.cc drives both
// paths from one seed and asserts identical outputs).

#ifndef DPSS_BIGINT_U128_H_
#define DPSS_BIGINT_U128_H_

#include <cstdint>

#include "util/bits.h"
#include "util/check.h"

namespace dpss {

using U128 = unsigned __int128;

// Number of significant bits of `x`: 0 for x == 0 (mirrors
// BigUInt::BitLength).
inline int BitLength(U128 x) {
  const uint64_t hi = static_cast<uint64_t>(x >> 64);
  return hi != 0 ? 64 + BitLength(hi) : BitLength(static_cast<uint64_t>(x));
}

// True iff v << k is representable in 128 bits (v != 0).
inline bool ShiftLeftFits(U128 v, int k) {
  return BitLength(v) + k <= 128;
}

// True iff a * b is representable in 128 bits. Conservative only in the
// exact-boundary sense: BitLength(a) + BitLength(b) <= 128 guarantees
// a * b < 2^128.
inline bool MulFits(U128 a, U128 b) {
  return a == 0 || b == 0 || BitLength(a) + BitLength(b) <= 128;
}

// Compares a with b << k (k >= 0) without overflow. Returns <0, 0, >0.
inline int CompareShifted(U128 a, U128 b, int k) {
  DPSS_DCHECK(k >= 0);
  if (b != 0 && BitLength(b) + k > 128) return -1;  // b << k >= 2^128 > a
  const U128 s = b << k;
  return a < s ? -1 : (a == s ? 0 : 1);
}

// ⌈log2(a/b)⌉ for a, b > 0 — the u128 mirror of BigRational::CeilLog2
// (Claim 4.3): bit lengths give the candidate within one, a shifted
// comparison settles it. May be negative.
inline int CeilLog2Ratio(U128 a, U128 b) {
  DPSS_DCHECK(a != 0 && b != 0);
  const int k0 = BitLength(a) - BitLength(b);
  // floor(log2(a/b)) ∈ {k0-1, k0}: compare a with b·2^k0.
  int floor_log;
  if (k0 >= 0) {
    floor_log = CompareShifted(a, b, k0) >= 0 ? k0 : k0 - 1;
  } else {
    floor_log = CompareShifted(b, a, -k0) <= 0 ? k0 : k0 - 1;
  }
  // ceil == floor iff a/b is an exact power of two.
  const int cmp = floor_log >= 0 ? CompareShifted(a, b, floor_log)
                                 : CompareShifted(b, a, -floor_log);
  return cmp == 0 ? floor_log : floor_log + 1;
}

// floor((a << f) / b) for a < b, b != 0, 0 <= f <= 60 (so the quotient fits
// one word). Shift-subtract long division: 192-bit intermediates are
// simulated by tracking the bit shifted out of the 128-bit remainder.
inline uint64_t ShlDivFloor(U128 a, U128 b, int f, bool* exact) {
  DPSS_DCHECK(b != 0 && a < b && f >= 0 && f <= 60);
  U128 r = a;
  uint64_t q = 0;
  for (int s = 0; s < f; ++s) {
    const bool top = (r >> 127) != 0;
    r <<= 1;
    q <<= 1;
    // If the shifted-out bit is set the true remainder is r + 2^128 >= b,
    // and (r - b) mod 2^128 is the correct new remainder (< b < 2^128).
    if (top || r >= b) {
      r -= b;
      q |= 1;
    }
  }
  if (exact != nullptr) *exact = (r == 0);
  return q;
}

}  // namespace dpss

#endif  // DPSS_BIGINT_U128_H_
