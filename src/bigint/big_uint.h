// Multi-word unsigned integers for the Word RAM model.
//
// The paper (§2.1) represents every "long integer" as an array of words.
// BigUInt is that array, with the full arithmetic kit the sampling
// algorithms need: add/sub/mul, Knuth-D division, shifts, bit access and
// comparisons. Values of at most four words (the overwhelmingly common case:
// weights, parameterized total weights, acceptance-coin numerators) are
// stored inline without heap allocation.
//
// Representation invariant: `size_` counts significant words; the value zero
// has size_ == 0; the most significant stored word is non-zero.

#ifndef DPSS_BIGINT_BIG_UINT_H_
#define DPSS_BIGINT_BIG_UINT_H_

#include <cstdint>
#include <string>
#include <utility>

#include "util/check.h"

namespace dpss {

class BigUInt {
 public:
  // Zero.
  BigUInt() : size_(0), capacity_(kInlineWords) {}

  // From a single word.
  explicit BigUInt(uint64_t v) : size_(v != 0 ? 1 : 0),
                                 capacity_(kInlineWords) {
    inline_[0] = v;
  }

  // From a 128-bit value.
  static BigUInt FromU128(unsigned __int128 v);

  // 2^k (k >= 0).
  static BigUInt PowerOfTwo(int k);

  BigUInt(const BigUInt& other);
  BigUInt& operator=(const BigUInt& other);
  BigUInt(BigUInt&& other) noexcept;
  BigUInt& operator=(BigUInt&& other) noexcept;
  ~BigUInt();

  // --- Observers ------------------------------------------------------

  bool IsZero() const { return size_ == 0; }

  // Number of significant 64-bit words (0 for zero).
  int WordCount() const { return static_cast<int>(size_); }

  // The i-th word (little-endian); 0 for i >= WordCount().
  uint64_t Word(int i) const {
    return i < static_cast<int>(size_) ? Words()[i] : 0;
  }

  // Number of significant bits; 0 for zero.
  int BitLength() const;

  // The i-th bit (i >= 0).
  bool Bit(int i) const {
    const int w = i / 64;
    return ((Word(w) >> (i % 64)) & 1) != 0;
  }

  // True iff the value fits in 64 / 128 bits.
  bool FitsU64() const { return size_ <= 1; }
  bool FitsU128() const { return size_ <= 2; }

  // Narrowing accessors; require the value to fit.
  uint64_t ToU64() const {
    DPSS_CHECK(FitsU64());
    return Word(0);
  }
  unsigned __int128 ToU128() const {
    DPSS_CHECK(FitsU128());
    return (static_cast<unsigned __int128>(Word(1)) << 64) | Word(0);
  }

  // Closest double (round-to-nearest on the top bits, then scaled); may be
  // +inf for huge values. Diagnostics and baselines only.
  double ToDouble() const;

  // Lowercase hex, no leading zeros ("0" for zero). For debugging and tests.
  std::string ToHexString() const;

  // Decimal representation. For debugging and tests.
  std::string ToDecimalString() const;

  // --- Comparisons ------------------------------------------------------

  // <0, 0, >0 as a < b, a == b, a > b.
  static int Compare(const BigUInt& a, const BigUInt& b);

  friend bool operator==(const BigUInt& a, const BigUInt& b) {
    return Compare(a, b) == 0;
  }
  friend bool operator!=(const BigUInt& a, const BigUInt& b) {
    return Compare(a, b) != 0;
  }
  friend bool operator<(const BigUInt& a, const BigUInt& b) {
    return Compare(a, b) < 0;
  }
  friend bool operator<=(const BigUInt& a, const BigUInt& b) {
    return Compare(a, b) <= 0;
  }
  friend bool operator>(const BigUInt& a, const BigUInt& b) {
    return Compare(a, b) > 0;
  }
  friend bool operator>=(const BigUInt& a, const BigUInt& b) {
    return Compare(a, b) >= 0;
  }

  // --- Arithmetic -------------------------------------------------------

  static BigUInt Add(const BigUInt& a, const BigUInt& b);
  // Requires a >= b.
  static BigUInt Sub(const BigUInt& a, const BigUInt& b);
  static BigUInt Mul(const BigUInt& a, const BigUInt& b);
  static BigUInt MulU64(const BigUInt& a, uint64_t b);
  // Returns {quotient, remainder}. Requires b != 0.
  static std::pair<BigUInt, BigUInt> DivMod(const BigUInt& a,
                                            const BigUInt& b);
  static BigUInt Div(const BigUInt& a, const BigUInt& b) {
    return DivMod(a, b).first;
  }
  static BigUInt Mod(const BigUInt& a, const BigUInt& b) {
    return DivMod(a, b).second;
  }
  static BigUInt ShiftLeft(const BigUInt& a, int k);
  static BigUInt ShiftRight(const BigUInt& a, int k);

  // In-place increment by one.
  void Increment();

  friend BigUInt operator+(const BigUInt& a, const BigUInt& b) {
    return Add(a, b);
  }
  friend BigUInt operator-(const BigUInt& a, const BigUInt& b) {
    return Sub(a, b);
  }
  friend BigUInt operator*(const BigUInt& a, const BigUInt& b) {
    return Mul(a, b);
  }
  friend BigUInt operator<<(const BigUInt& a, int k) {
    return ShiftLeft(a, k);
  }
  friend BigUInt operator>>(const BigUInt& a, int k) {
    return ShiftRight(a, k);
  }

 private:
  static constexpr uint32_t kInlineWords = 4;

  const uint64_t* Words() const {
    return capacity_ == kInlineWords ? inline_ : heap_;
  }
  uint64_t* Words() { return capacity_ == kInlineWords ? inline_ : heap_; }

  // Ensures capacity for `words` words; does not preserve contents.
  void ResetTo(uint32_t words);
  // Drops leading zero words to restore the representation invariant.
  void Normalize();

  uint32_t size_;
  uint32_t capacity_;  // kInlineWords when inline, otherwise heap capacity
  union {
    uint64_t inline_[kInlineWords];
    uint64_t* heap_;
  };
};

}  // namespace dpss

#endif  // DPSS_BIGINT_BIG_UINT_H_
