#include "bigint/big_uint.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/bits.h"

namespace dpss {

namespace {

using u128 = unsigned __int128;

}  // namespace

// --- Storage management ---------------------------------------------------

void BigUInt::ResetTo(uint32_t words) {
  if (words > capacity_) {
    if (capacity_ != kInlineWords) delete[] heap_;
    uint32_t cap = std::max(words, capacity_ * 2);
    heap_ = new uint64_t[cap];
    capacity_ = cap;
  }
  size_ = words;
}

void BigUInt::Normalize() {
  const uint64_t* w = Words();
  while (size_ > 0 && w[size_ - 1] == 0) --size_;
}

BigUInt::BigUInt(const BigUInt& other)
    : size_(other.size_), capacity_(kInlineWords) {
  if (size_ <= kInlineWords) {
    std::memcpy(inline_, other.Words(), size_ * sizeof(uint64_t));
  } else {
    heap_ = new uint64_t[size_];
    capacity_ = size_;
    std::memcpy(heap_, other.Words(), size_ * sizeof(uint64_t));
  }
}

BigUInt& BigUInt::operator=(const BigUInt& other) {
  if (this == &other) return *this;
  ResetTo(other.size_);
  std::memcpy(Words(), other.Words(), size_ * sizeof(uint64_t));
  return *this;
}

BigUInt::BigUInt(BigUInt&& other) noexcept
    : size_(other.size_), capacity_(other.capacity_) {
  if (other.capacity_ == kInlineWords) {
    std::memcpy(inline_, other.inline_, size_ * sizeof(uint64_t));
  } else {
    heap_ = other.heap_;
    other.capacity_ = kInlineWords;
    other.size_ = 0;
  }
}

BigUInt& BigUInt::operator=(BigUInt&& other) noexcept {
  if (this == &other) return *this;
  if (capacity_ != kInlineWords) delete[] heap_;
  size_ = other.size_;
  capacity_ = other.capacity_;
  if (other.capacity_ == kInlineWords) {
    std::memcpy(inline_, other.inline_, size_ * sizeof(uint64_t));
  } else {
    heap_ = other.heap_;
    other.capacity_ = kInlineWords;
    other.size_ = 0;
  }
  return *this;
}

BigUInt::~BigUInt() {
  if (capacity_ != kInlineWords) delete[] heap_;
}

// --- Constructors -----------------------------------------------------------

BigUInt BigUInt::FromU128(u128 v) {
  BigUInt r;
  r.ResetTo(2);
  uint64_t* w = r.Words();
  w[0] = static_cast<uint64_t>(v);
  w[1] = static_cast<uint64_t>(v >> 64);
  r.Normalize();
  return r;
}

BigUInt BigUInt::PowerOfTwo(int k) {
  DPSS_CHECK(k >= 0);
  BigUInt r;
  const uint32_t words = static_cast<uint32_t>(k / 64) + 1;
  r.ResetTo(words);
  uint64_t* w = r.Words();
  std::memset(w, 0, words * sizeof(uint64_t));
  w[words - 1] = uint64_t{1} << (k % 64);
  return r;
}

// --- Observers --------------------------------------------------------------

int BigUInt::BitLength() const {
  if (size_ == 0) return 0;
  return static_cast<int>(size_ - 1) * 64 + dpss::BitLength(Words()[size_ - 1]);
}

double BigUInt::ToDouble() const {
  if (size_ == 0) return 0.0;
  if (size_ == 1) return static_cast<double>(Words()[0]);
  // Take the top two words and scale.
  const int top = static_cast<int>(size_) - 1;
  const double hi = static_cast<double>(Words()[top]);
  const double lo = static_cast<double>(Words()[top - 1]);
  return std::ldexp(hi, 64 * top) + std::ldexp(lo, 64 * (top - 1));
}

std::string BigUInt::ToHexString() const {
  if (size_ == 0) return "0";
  char buf[17];
  std::string out;
  std::snprintf(buf, sizeof(buf), "%llx",
                static_cast<unsigned long long>(Words()[size_ - 1]));
  out += buf;
  for (int i = static_cast<int>(size_) - 2; i >= 0; --i) {
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(Words()[i]));
    out += buf;
  }
  return out;
}

std::string BigUInt::ToDecimalString() const {
  if (size_ == 0) return "0";
  constexpr uint64_t kChunk = 10000000000000000000ULL;  // 10^19
  std::string out;
  BigUInt v = *this;
  const BigUInt chunk(kChunk);
  while (!v.IsZero()) {
    auto [q, r] = DivMod(v, chunk);
    char buf[24];
    if (q.IsZero()) {
      std::snprintf(buf, sizeof(buf), "%llu",
                    static_cast<unsigned long long>(r.Word(0)));
    } else {
      std::snprintf(buf, sizeof(buf), "%019llu",
                    static_cast<unsigned long long>(r.Word(0)));
    }
    out.insert(0, buf);
    v = std::move(q);
  }
  return out;
}

// --- Comparison -------------------------------------------------------------

int BigUInt::Compare(const BigUInt& a, const BigUInt& b) {
  if (a.size_ != b.size_) return a.size_ < b.size_ ? -1 : 1;
  const uint64_t* aw = a.Words();
  const uint64_t* bw = b.Words();
  for (int i = static_cast<int>(a.size_) - 1; i >= 0; --i) {
    if (aw[i] != bw[i]) return aw[i] < bw[i] ? -1 : 1;
  }
  return 0;
}

// --- Arithmetic -------------------------------------------------------------

BigUInt BigUInt::Add(const BigUInt& a, const BigUInt& b) {
  const BigUInt& hi = a.size_ >= b.size_ ? a : b;
  const BigUInt& lo = a.size_ >= b.size_ ? b : a;
  BigUInt r;
  r.ResetTo(hi.size_ + 1);
  uint64_t* rw = r.Words();
  const uint64_t* hw = hi.Words();
  const uint64_t* lw = lo.Words();
  uint64_t carry = 0;
  uint32_t i = 0;
  for (; i < lo.size_; ++i) {
    u128 s = static_cast<u128>(hw[i]) + lw[i] + carry;
    rw[i] = static_cast<uint64_t>(s);
    carry = static_cast<uint64_t>(s >> 64);
  }
  for (; i < hi.size_; ++i) {
    u128 s = static_cast<u128>(hw[i]) + carry;
    rw[i] = static_cast<uint64_t>(s);
    carry = static_cast<uint64_t>(s >> 64);
  }
  rw[i] = carry;
  r.Normalize();
  return r;
}

BigUInt BigUInt::Sub(const BigUInt& a, const BigUInt& b) {
  DPSS_CHECK(Compare(a, b) >= 0);
  BigUInt r;
  r.ResetTo(a.size_);
  uint64_t* rw = r.Words();
  const uint64_t* aw = a.Words();
  uint64_t borrow = 0;
  for (uint32_t i = 0; i < a.size_; ++i) {
    const uint64_t bi = b.Word(static_cast<int>(i));
    const uint64_t ai = aw[i];
    uint64_t d = ai - bi - borrow;
    borrow = (ai < bi || (ai == bi && borrow)) ? 1 : 0;
    rw[i] = d;
  }
  r.Normalize();
  return r;
}

BigUInt BigUInt::Mul(const BigUInt& a, const BigUInt& b) {
  if (a.IsZero() || b.IsZero()) return BigUInt();
  BigUInt r;
  r.ResetTo(a.size_ + b.size_);
  uint64_t* rw = r.Words();
  std::memset(rw, 0, (a.size_ + b.size_) * sizeof(uint64_t));
  const uint64_t* aw = a.Words();
  const uint64_t* bw = b.Words();
  for (uint32_t i = 0; i < a.size_; ++i) {
    uint64_t carry = 0;
    const uint64_t ai = aw[i];
    for (uint32_t j = 0; j < b.size_; ++j) {
      u128 s = static_cast<u128>(ai) * bw[j] + rw[i + j] + carry;
      rw[i + j] = static_cast<uint64_t>(s);
      carry = static_cast<uint64_t>(s >> 64);
    }
    rw[i + b.size_] += carry;
  }
  r.Normalize();
  return r;
}

BigUInt BigUInt::MulU64(const BigUInt& a, uint64_t b) {
  if (a.IsZero() || b == 0) return BigUInt();
  BigUInt r;
  r.ResetTo(a.size_ + 1);
  uint64_t* rw = r.Words();
  const uint64_t* aw = a.Words();
  uint64_t carry = 0;
  for (uint32_t i = 0; i < a.size_; ++i) {
    u128 s = static_cast<u128>(aw[i]) * b + carry;
    rw[i] = static_cast<uint64_t>(s);
    carry = static_cast<uint64_t>(s >> 64);
  }
  rw[a.size_] = carry;
  r.Normalize();
  return r;
}

BigUInt BigUInt::ShiftLeft(const BigUInt& a, int k) {
  DPSS_CHECK(k >= 0);
  if (a.IsZero() || k == 0) return a;
  const int word_shift = k / 64;
  const int bit_shift = k % 64;
  BigUInt r;
  r.ResetTo(a.size_ + static_cast<uint32_t>(word_shift) + 1);
  uint64_t* rw = r.Words();
  const uint64_t* aw = a.Words();
  std::memset(rw, 0, r.size_ * sizeof(uint64_t));
  for (uint32_t i = 0; i < a.size_; ++i) {
    rw[i + word_shift] |= bit_shift == 0 ? aw[i] : (aw[i] << bit_shift);
    if (bit_shift != 0) {
      rw[i + word_shift + 1] |= aw[i] >> (64 - bit_shift);
    }
  }
  r.Normalize();
  return r;
}

BigUInt BigUInt::ShiftRight(const BigUInt& a, int k) {
  DPSS_CHECK(k >= 0);
  if (a.IsZero() || k == 0) return a;
  const int word_shift = k / 64;
  const int bit_shift = k % 64;
  if (word_shift >= static_cast<int>(a.size_)) return BigUInt();
  BigUInt r;
  r.ResetTo(a.size_ - static_cast<uint32_t>(word_shift));
  uint64_t* rw = r.Words();
  const uint64_t* aw = a.Words();
  for (uint32_t i = 0; i < r.size_; ++i) {
    uint64_t v = aw[i + word_shift] >> bit_shift;
    if (bit_shift != 0 && i + word_shift + 1 < a.size_) {
      v |= aw[i + word_shift + 1] << (64 - bit_shift);
    }
    rw[i] = v;
  }
  r.Normalize();
  return r;
}

void BigUInt::Increment() {
  for (uint32_t i = 0; i < size_; ++i) {
    if (++Words()[i] != 0) return;
  }
  // All words overflowed (or value was zero): grow by one word.
  const uint32_t old_size = size_;
  BigUInt grown;
  grown.ResetTo(old_size + 1);
  std::memset(grown.Words(), 0, (old_size + 1) * sizeof(uint64_t));
  grown.Words()[old_size] = 1;
  if (old_size == 0) grown.Words()[0] = 1;
  grown.size_ = old_size == 0 ? 1 : old_size + 1;
  *this = std::move(grown);
}

// Knuth Algorithm D (TAOCP vol. 2, 4.3.1) with 64-bit limbs.
std::pair<BigUInt, BigUInt> BigUInt::DivMod(const BigUInt& a,
                                            const BigUInt& b) {
  DPSS_CHECK(!b.IsZero());
  if (Compare(a, b) < 0) return {BigUInt(), a};

  // Single-word divisor: simple loop.
  if (b.size_ == 1) {
    const uint64_t d = b.Words()[0];
    BigUInt q;
    q.ResetTo(a.size_);
    uint64_t* qw = q.Words();
    const uint64_t* aw = a.Words();
    u128 rem = 0;
    for (int i = static_cast<int>(a.size_) - 1; i >= 0; --i) {
      u128 cur = (rem << 64) | aw[i];
      qw[i] = static_cast<uint64_t>(cur / d);
      rem = cur % d;
    }
    q.Normalize();
    return {std::move(q), BigUInt(static_cast<uint64_t>(rem))};
  }

  // Normalize: shift so the top bit of the divisor is set.
  const int shift = 64 - dpss::BitLength(b.Words()[b.size_ - 1]);
  BigUInt u = ShiftLeft(a, shift);
  BigUInt v = ShiftLeft(b, shift);
  const int n = static_cast<int>(v.size_);
  const int m = static_cast<int>(u.size_) - n;
  DPSS_CHECK(m >= 0);

  // Ensure u has m + n + 1 accessible words.
  BigUInt uu;
  uu.ResetTo(static_cast<uint32_t>(m + n + 1));
  std::memset(uu.Words(), 0, (m + n + 1) * sizeof(uint64_t));
  std::memcpy(uu.Words(), u.Words(), u.size_ * sizeof(uint64_t));
  uint64_t* uw = uu.Words();
  const uint64_t* vw = v.Words();

  BigUInt q;
  q.ResetTo(static_cast<uint32_t>(m + 1));
  uint64_t* qw = q.Words();
  std::memset(qw, 0, (m + 1) * sizeof(uint64_t));

  const u128 base = static_cast<u128>(1) << 64;
  for (int j = m; j >= 0; --j) {
    u128 top = (static_cast<u128>(uw[j + n]) << 64) | uw[j + n - 1];
    u128 qhat = top / vw[n - 1];
    u128 rhat = top % vw[n - 1];
    while (qhat >= base ||
           qhat * vw[n - 2] > ((rhat << 64) | uw[j + n - 2])) {
      --qhat;
      rhat += vw[n - 1];
      if (rhat >= base) break;
    }
    // Multiply-subtract qhat * v from u[j .. j+n].
    u128 borrow = 0;
    u128 carry = 0;
    for (int i = 0; i < n; ++i) {
      u128 p = qhat * vw[i] + carry;
      carry = p >> 64;
      const uint64_t plow = static_cast<uint64_t>(p);
      u128 sub = static_cast<u128>(uw[i + j]) - plow - borrow;
      uw[i + j] = static_cast<uint64_t>(sub);
      borrow = (sub >> 64) != 0 ? 1 : 0;
    }
    u128 subtop = static_cast<u128>(uw[j + n]) - carry - borrow;
    uw[j + n] = static_cast<uint64_t>(subtop);
    bool negative = (subtop >> 64) != 0;

    qw[j] = static_cast<uint64_t>(qhat);
    if (negative) {
      // Add back.
      --qw[j];
      u128 c = 0;
      for (int i = 0; i < n; ++i) {
        u128 s = static_cast<u128>(uw[i + j]) + vw[i] + c;
        uw[i + j] = static_cast<uint64_t>(s);
        c = s >> 64;
      }
      uw[j + n] += static_cast<uint64_t>(c);
    }
  }

  q.Normalize();
  // Remainder = uw[0..n-1] >> shift.
  BigUInt rem;
  rem.ResetTo(static_cast<uint32_t>(n));
  std::memcpy(rem.Words(), uw, n * sizeof(uint64_t));
  rem.Normalize();
  rem = ShiftRight(rem, shift);
  return {std::move(q), std::move(rem)};
}

}  // namespace dpss
