// ShardedSampler implementation. The exactness-critical piece is the
// two-step query: every shard's inner sampler draws against the *shard*
// total it maintains itself, and the wrapper then thins each returned item
// with an exact Bernoulli coin so the effective denominator becomes the
// global parameterized total W̃ = α·(W_s + Σ_{t≠s} W_t^pub) + β, where W_s
// is the shard's true total read under its lock and the other shards
// contribute their last published totals. Because W̃ >= α·W_s + β, every
// acceptance probability is a genuine probability; in a quiescent sampler
// the published totals equal the true totals and W̃ is exactly α·Σw + β.
// The algebra (including the min{·, 1} clamps) is spelled out in
// docs/CONCURRENCY.md.

#include "concurrent/sharded_sampler.h"

#include <algorithm>
#include <thread>
#include <tuple>
#include <utility>

#include "random/bernoulli.h"
#include "util/check.h"
#include "util/little_endian.h"

namespace dpss {

namespace {

// splitmix64 finalizer: decorrelates the per-shard seeds (and the
// per-shard query engines) derived from one user seed.
uint64_t MixSeed(uint64_t seed, uint64_t salt) {
  uint64_t z = seed + (salt + 1) * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

StatusOr<std::unique_ptr<Sampler>> ShardedSampler::Create(
    const std::string& registry_key, const std::string& inner_name,
    int num_shards, const SamplerSpec& spec) {
  if (num_shards < 1 || num_shards > kMaxShards) {
    return InvalidArgumentError(
        "SamplerSpec::num_shards must be in [1, 4096]");
  }
  if (spec.num_threads < 0 || spec.num_threads > kMaxThreads) {
    return InvalidArgumentError(
        "SamplerSpec::num_threads must be in [0, 256]");
  }
  std::unique_ptr<ShardedSampler> s(
      new ShardedSampler(registry_key, inner_name, num_shards, spec));
  for (int i = 0; i < num_shards; ++i) {
    SamplerSpec inner_spec = spec;
    inner_spec.seed = MixSeed(spec.seed, static_cast<uint64_t>(i));
    StatusOr<std::unique_ptr<Sampler>> inner =
        MakeSamplerChecked(inner_name, inner_spec);
    if (!inner.ok()) return inner.status();
    s->shards_[i].inner = std::move(*inner);
    s->shards_[i].rng.Seed(
        MixSeed(spec.seed, static_cast<uint64_t>(i) + 0x51ab1eULL));
  }
  s->caps_ = s->shards_[0].inner->capabilities();
  // Snapshots — like decay, sample_distinct and top_k — follow the inner
  // backend (the overrides below forward per shard). Expected-size would
  // need a frozen cross-shard cut per query and stays off (documented
  // non-goal).
  s->caps_.expected_size = false;
  return StatusOr<std::unique_ptr<Sampler>>(std::move(s));
}

ShardedSampler::ShardedSampler(std::string registry_key,
                               std::string inner_name, int num_shards,
                               const SamplerSpec& spec)
    : key_(std::move(registry_key)),
      inner_name_(std::move(inner_name)),
      spec_(spec),
      num_shards_(static_cast<uint64_t>(num_shards)),
      shards_(static_cast<size_t>(num_shards)) {
  int width = spec.num_threads;
  if (width == 0) {
    const int hw = static_cast<int>(std::thread::hardware_concurrency());
    width = hw > 0 ? hw : 1;
  }
  if (width > num_shards) width = num_shards;
  if (width > 1) pool_ = std::make_unique<ThreadPool>(width);
  // Drives the cross-shard SampleDistinct coins (the per-shard engines
  // are reserved for SampleInto drains).
  SeedFallbackRng(spec.seed);
}

ShardedSampler::~ShardedSampler() = default;

const char* ShardedSampler::name() const { return key_.c_str(); }

Sampler::Capabilities ShardedSampler::capabilities() const { return caps_; }

uint64_t ShardedSampler::PickShard() const {
  uint64_t best = 0;
  uint64_t best_count =
      shards_[0].live_count.load(std::memory_order_relaxed);
  for (uint64_t s = 1; s < num_shards_; ++s) {
    const uint64_t c = shards_[s].live_count.load(std::memory_order_relaxed);
    if (c < best_count) {
      best = s;
      best_count = c;
    }
  }
  return best;
}

void ShardedSampler::DecodeId(ItemId id, uint64_t* shard,
                              ItemId* inner_id) const {
  const uint64_t slot = SlotIndexOf(id);
  *shard = slot % num_shards_;
  *inner_id = MakeItemId(slot / num_shards_, GenerationOf(id));
}

ItemId ShardedSampler::TranslateOut(uint64_t shard, ItemId inner_id) const {
  const uint64_t inner_slot = SlotIndexOf(inner_id);
  // The global slot space is K-way interleaved; running out would need
  // ~2^40 / K live slots in one shard.
  DPSS_CHECK(inner_slot <= (kIdSlotMask - shard) / num_shards_);
  return MakeItemId(inner_slot * num_shards_ + shard,
                    GenerationOf(inner_id));
}

// --- Published totals (single-writer seqlock) ----------------------------
//
// The writer holds the shard's exclusive lock, so there is exactly one
// publisher at a time. All accesses are atomic with acquire/release pairs
// (no fences), which both the C++ memory model and TSan reason about
// directly: the release data stores keep the odd seq visible before any
// torn value, and the acquire data loads keep the re-check of seq after
// the reads.

void ShardedSampler::PublishTotalLocked(Shard& shard) {
  const uint64_t s0 = shard.pub_seq.load(std::memory_order_relaxed);
  shard.pub_seq.store(s0 + 1, std::memory_order_relaxed);
  if (shard.total.FitsU128()) {
    const unsigned __int128 v = shard.total.ToU128();
    shard.pub_lo.store(static_cast<uint64_t>(v),
                       std::memory_order_release);
    shard.pub_hi.store(static_cast<uint64_t>(v >> 64),
                       std::memory_order_release);
    shard.pub_big.store(false, std::memory_order_release);
  } else {
    shard.pub_big.store(true, std::memory_order_release);
  }
  shard.pub_seq.store(s0 + 2, std::memory_order_release);
}

BigUInt ShardedSampler::ReadShardTotal(const Shard& shard) {
  for (int attempt = 0; attempt < 16; ++attempt) {
    const uint64_t s0 = shard.pub_seq.load(std::memory_order_acquire);
    if ((s0 & 1) != 0) continue;
    const uint64_t lo = shard.pub_lo.load(std::memory_order_acquire);
    const uint64_t hi = shard.pub_hi.load(std::memory_order_acquire);
    const bool big = shard.pub_big.load(std::memory_order_acquire);
    if (shard.pub_seq.load(std::memory_order_relaxed) != s0) continue;
    if (big) break;  // float-weight regime: take the lock below
    return BigUInt::FromU128(
        (static_cast<unsigned __int128>(hi) << 64) | lo);
  }
  std::shared_lock<std::shared_mutex> lock(shard.mu);
  return shard.total;
}

// --- Mutations -----------------------------------------------------------

StatusOr<ItemId> ShardedSampler::Insert(uint64_t weight) {
  const uint64_t s = PickShard();
  Shard& shard = shards_[s];
  std::unique_lock<std::shared_mutex> lock(shard.mu);
  StatusOr<ItemId> id = shard.inner->Insert(weight);
  if (!id.ok()) return id;
  shard.total = shard.total + BigUInt(weight);
  PublishTotalLocked(shard);
  shard.live_count.fetch_add(1, std::memory_order_relaxed);
  return TranslateOut(s, *id);
}

StatusOr<ItemId> ShardedSampler::InsertWeight(Weight w) {
  const uint64_t s = PickShard();
  Shard& shard = shards_[s];
  std::unique_lock<std::shared_mutex> lock(shard.mu);
  StatusOr<ItemId> id = shard.inner->InsertWeight(w);
  if (!id.ok()) return id;
  shard.total = shard.total + w.ToBigUInt();
  PublishTotalLocked(shard);
  shard.live_count.fetch_add(1, std::memory_order_relaxed);
  return TranslateOut(s, *id);
}

Status ShardedSampler::Erase(ItemId id) {
  uint64_t s = 0;
  ItemId inner_id = 0;
  DecodeId(id, &s, &inner_id);
  Shard& shard = shards_[s];
  std::unique_lock<std::shared_mutex> lock(shard.mu);
  const StatusOr<Weight> old = shard.inner->GetWeight(inner_id);
  if (!old.ok()) return old.status();
  const Status st = shard.inner->Erase(inner_id);
  if (!st.ok()) return st;
  shard.total = shard.total - old->ToBigUInt();
  PublishTotalLocked(shard);
  shard.live_count.fetch_sub(1, std::memory_order_relaxed);
  return Status::Ok();
}

Status ShardedSampler::SetWeight(ItemId id, Weight w) {
  uint64_t s = 0;
  ItemId inner_id = 0;
  DecodeId(id, &s, &inner_id);
  Shard& shard = shards_[s];
  std::unique_lock<std::shared_mutex> lock(shard.mu);
  const StatusOr<Weight> old = shard.inner->GetWeight(inner_id);
  if (!old.ok()) return old.status();
  const Status st = shard.inner->SetWeight(inner_id, w);
  if (!st.ok()) return st;
  // Unsigned arithmetic: add the new weight first so the intermediate
  // value stays >= the old contribution being subtracted.
  shard.total = (shard.total + w.ToBigUInt()) - old->ToBigUInt();
  PublishTotalLocked(shard);
  return Status::Ok();
}

// --- Accessors -----------------------------------------------------------

bool ShardedSampler::Contains(ItemId id) const {
  uint64_t s = 0;
  ItemId inner_id = 0;
  DecodeId(id, &s, &inner_id);
  std::shared_lock<std::shared_mutex> lock(shards_[s].mu);
  return shards_[s].inner->Contains(inner_id);
}

StatusOr<Weight> ShardedSampler::GetWeight(ItemId id) const {
  uint64_t s = 0;
  ItemId inner_id = 0;
  DecodeId(id, &s, &inner_id);
  std::shared_lock<std::shared_mutex> lock(shards_[s].mu);
  return shards_[s].inner->GetWeight(inner_id);
}

uint64_t ShardedSampler::size() const {
  uint64_t n = 0;
  for (uint64_t s = 0; s < num_shards_; ++s) {
    n += shards_[s].live_count.load(std::memory_order_relaxed);
  }
  return n;
}

BigUInt ShardedSampler::TotalWeight() const {
  BigUInt total;
  for (uint64_t s = 0; s < num_shards_; ++s) {
    std::shared_lock<std::shared_mutex> lock(shards_[s].mu);
    total = total + shards_[s].total;
  }
  return total;
}

// --- Queries -------------------------------------------------------------

Status ShardedSampler::DrainShardLocked(const Shard& shard,
                                        uint64_t shard_index,
                                        Rational64 alpha, Rational64 beta,
                                        const BigUInt& observed_total,
                                        const BigUInt& global_total,
                                        RandomEngine& rng,
                                        std::vector<ItemId>* out) const {
  // Reuse the shard's staging buffer (we hold its exclusive lock), so a
  // warmed-up query does not pay one allocation per shard. The remaining
  // per-call allocations (the observed-totals vector, and the per-shard
  // output buffers of the opt-in parallel drain) are per *query*, not per
  // shard, and cannot be cached per shard or per thread without breaking
  // nested "sharded:sharded:x" composition.
  std::vector<ItemId>& buf = shard.query_buf;
  const Status st = shard.inner->SampleInto(alpha, beta, rng, &buf);
  if (!st.ok()) return st;
  if (buf.empty()) return Status::Ok();

  // Shard denominator numerator N_s and global numerator N' over the
  // common denominator α.den·β.den:
  //   N_s = α.num·W_s·β.den + β.num·α.den          (A_s = α·W_s + β)
  //   N'  = N_s + α.num·(W̃ - W_s^pub)·β.den       (A' = α·W̃_s + β)
  // with W_s the true shard total under this lock and W̃ - W_s^pub the
  // other shards' published mass. N' >= N_s always (published totals are
  // non-negative), so every thinning ratio below is a probability.
  const BigUInt beta_term =
      BigUInt::FromU128(static_cast<unsigned __int128>(beta.num) *
                        alpha.den);
  const BigUInt ns =
      BigUInt::MulU64(BigUInt::MulU64(shard.total, alpha.num), beta.den) +
      beta_term;
  const BigUInt rest = global_total - observed_total;
  const BigUInt nprime =
      ns + BigUInt::MulU64(BigUInt::MulU64(rest, alpha.num), beta.den);

  if (ns == nprime) {
    // α == 0 or no other shard carries weight: the inner draw already used
    // the exact global denominator. No thinning, no per-item work.
    for (const ItemId inner_id : buf) {
      out->push_back(TranslateOut(shard_index, inner_id));
    }
    return Status::Ok();
  }

  const unsigned __int128 scale =
      static_cast<unsigned __int128>(alpha.den) * beta.den;
  for (const ItemId inner_id : buf) {
    const StatusOr<Weight> w = shard.inner->GetWeight(inner_id);
    DPSS_CHECK(w.ok());  // sampled under this lock, so necessarily live
    // w·α.den·β.den, comparable against N_s / N' over the common
    // denominator.
    const BigUInt wnum =
        BigUInt::Mul(w->ToBigUInt(), BigUInt::FromU128(scale));
    bool accept;
    if (wnum >= ns) {
      // Clamped inside the shard (p_inner = 1): accept with the full
      // target probability min{w / A', 1}.
      accept = SampleBernoulliRational(wnum, nprime, rng);
    } else {
      // p_inner = w/A_s, target w/A': accept with A_s/A' = N_s/N',
      // independent of w.
      accept = SampleBernoulliRational(ns, nprime, rng);
    }
    if (accept) out->push_back(TranslateOut(shard_index, inner_id));
  }
  return Status::Ok();
}

Status ShardedSampler::SampleInto(Rational64 alpha, Rational64 beta,
                                  std::vector<ItemId>* out) {
  Status st = ValidateQueryArgs(alpha, beta, out);
  if (!st.ok()) return st;
  out->clear();

  std::vector<BigUInt> observed(num_shards_);
  BigUInt global_total;
  for (uint64_t s = 0; s < num_shards_; ++s) {
    observed[s] = ReadShardTotal(shards_[s]);
    global_total = global_total + observed[s];
  }
  // Rotate the visiting order so concurrent queries pipeline across the
  // shards instead of convoying behind one another.
  const uint64_t start =
      query_offset_.fetch_add(1, std::memory_order_relaxed) % num_shards_;

  if (pool_ != nullptr) {
    std::vector<std::vector<ItemId>> per_shard(num_shards_);
    std::vector<Status> statuses(num_shards_);
    pool_->ParallelFor(static_cast<int>(num_shards_), [&](int i) {
      const uint64_t s = (start + static_cast<uint64_t>(i)) % num_shards_;
      Shard& shard = shards_[s];
      std::unique_lock<std::shared_mutex> lock(shard.mu);
      statuses[s] = DrainShardLocked(shard, s, alpha, beta, observed[s],
                                     global_total, shard.rng,
                                     &per_shard[s]);
    });
    for (uint64_t s = 0; s < num_shards_; ++s) {
      if (!statuses[s].ok()) {
        out->clear();
        return statuses[s];
      }
      out->insert(out->end(), per_shard[s].begin(), per_shard[s].end());
    }
    return Status::Ok();
  }

  for (uint64_t i = 0; i < num_shards_; ++i) {
    const uint64_t s = (start + i) % num_shards_;
    Shard& shard = shards_[s];
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    st = DrainShardLocked(shard, s, alpha, beta, observed[s], global_total,
                          shard.rng, out);
    if (!st.ok()) {
      out->clear();
      return st;
    }
  }
  return Status::Ok();
}

Status ShardedSampler::SampleInto(Rational64 alpha, Rational64 beta,
                                  RandomEngine& rng,
                                  std::vector<ItemId>* out) const {
  Status st = ValidateQueryArgs(alpha, beta, out);
  if (!st.ok()) return st;
  out->clear();

  std::vector<BigUInt> observed(num_shards_);
  BigUInt global_total;
  for (uint64_t s = 0; s < num_shards_; ++s) {
    observed[s] = ReadShardTotal(shards_[s]);
    global_total = global_total + observed[s];
  }
  // Deterministic variant: fixed visiting order, one caller-owned engine.
  for (uint64_t s = 0; s < num_shards_; ++s) {
    const Shard& shard = shards_[s];
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    st = DrainShardLocked(shard, s, alpha, beta, observed[s], global_total,
                          rng, out);
    if (!st.ok()) {
      out->clear();
      return st;
    }
  }
  return Status::Ok();
}

// --- Decay / distinct draws / ranked reads -------------------------------

Status ShardedSampler::Decay(Rational64 factor) {
  if (!caps_.decay) {
    return UnsupportedError("inner backend does not support Decay");
  }
  Status st = ValidateDecayFactor(factor);
  if (!st.ok()) return st;
  if (factor.num == factor.den) return Status::Ok();
  for (uint64_t s = 0; s < num_shards_; ++s) {
    Shard& shard = shards_[s];
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    st = shard.inner->Decay(factor);
    if (!st.ok()) return st;  // shards [0, s) keep their decayed weights
    // Re-derive rather than scale the cached copy: the inner backend
    // floors per item (or keeps exact pending metadata), and the cached
    // total must mirror inner TotalWeight() bit-exactly for
    // CheckInvariants.
    shard.total = shard.inner->TotalWeight();
    PublishTotalLocked(shard);
  }
  return Status::Ok();
}

Status ShardedSampler::SampleDistinct(uint64_t k,
                                      std::vector<ItemId>* out) {
  if (!caps_.sample_distinct) {
    return UnsupportedError("inner backend does not support SampleDistinct");
  }
  if (out == nullptr) return InvalidArgumentError("null output pointer");
  out->clear();
  if (k == 0) return Status::Ok();

  // Without-replacement draws couple the shards through the already-drawn
  // items, so the whole call runs under every shard's exclusive lock — the
  // one place shard locks nest; index order keeps acquisition globally
  // consistent (no other path holds two shard locks at once).
  std::vector<std::unique_lock<std::shared_mutex>> locks;
  locks.reserve(num_shards_);
  for (uint64_t s = 0; s < num_shards_; ++s) {
    locks.emplace_back(shards_[s].mu);
  }

  std::vector<BigUInt> totals(num_shards_);
  BigUInt grand;
  for (uint64_t s = 0; s < num_shards_; ++s) {
    totals[s] = shards_[s].inner->TotalWeight();
    grand = grand + totals[s];
  }

  // Each round: pick the owning shard with probability T_s/T, then let the
  // shard draw one distinct item with its inner law w_x/T_s — the product
  // is exactly w_x/T, the single-structure without-replacement marginal
  // (bit-exact whenever the inner observable weights are exact, i.e.
  // everywhere outside mid-decay floor loss). The drawn item is parked at
  // weight zero so later rounds exclude it; parking is scale-invariant,
  // so the shards' cached totals need no republish.
  std::vector<std::tuple<uint64_t, ItemId, Weight>> parked;
  parked.reserve(static_cast<size_t>(k));
  Status st = Status::Ok();
  RandomEngine& rng = fallback_rng();
  while (out->size() < k && !grand.IsZero()) {
    const BigUInt r = RandomBigBelow(grand, rng);
    uint64_t s = 0;
    BigUInt cum;
    for (; s < num_shards_; ++s) {
      cum = cum + totals[s];
      if (r < cum) break;
    }
    DPSS_CHECK(s < num_shards_);  // r < grand = Σ totals
    Shard& shard = shards_[s];
    std::vector<ItemId>& one = shard.query_buf;
    st = shard.inner->SampleDistinct(1, &one);
    if (!st.ok()) break;
    if (one.empty()) {
      st = InvalidArgumentError("shard total disagrees with its items");
      break;
    }
    const ItemId inner_id = one[0];
    const StatusOr<Weight> w = shard.inner->GetWeight(inner_id);
    DPSS_CHECK(w.ok());  // drawn under this lock, so necessarily live
    out->push_back(TranslateOut(s, inner_id));
    parked.emplace_back(s, inner_id, *w);
    st = shard.inner->SetWeight(inner_id, Weight());
    if (!st.ok()) break;
    totals[s] = totals[s] - w->ToBigUInt();
    grand = grand - w->ToBigUInt();
  }

  // Restore in reverse draw order; observable weights end exactly where
  // they started, so the published totals were never stale.
  for (auto it = parked.rbegin(); it != parked.rend(); ++it) {
    const Status restore =
        shards_[std::get<0>(*it)].inner->SetWeight(std::get<1>(*it),
                                                   std::get<2>(*it));
    DPSS_CHECK(restore.ok());
  }
  if (!st.ok()) out->clear();
  return st;
}

Status ShardedSampler::TopK(uint64_t k, std::vector<ItemId>* out) const {
  if (!caps_.top_k) {
    return UnsupportedError("inner backend does not support TopK");
  }
  if (out == nullptr) return InvalidArgumentError("null output pointer");
  out->clear();
  if (k == 0) return Status::Ok();
  // The global top-k is a subset of the union of per-shard top-k lists,
  // so each shard reports k candidates and one merge keeps the heaviest.
  std::vector<std::pair<ItemId, Weight>> merged;
  for (uint64_t s = 0; s < num_shards_; ++s) {
    const Shard& shard = shards_[s];
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    std::vector<ItemId> ids;
    Status st = shard.inner->TopK(k, &ids);
    if (!st.ok()) return st;
    merged.reserve(merged.size() + ids.size());
    for (const ItemId inner_id : ids) {
      const StatusOr<Weight> w = shard.inner->GetWeight(inner_id);
      DPSS_CHECK(w.ok());  // reported under this lock, so necessarily live
      merged.emplace_back(TranslateOut(s, inner_id), *w);
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const std::pair<ItemId, Weight>& a,
               const std::pair<ItemId, Weight>& b) {
              return CompareWeights(a.second, b.second) > 0;
            });
  if (merged.size() > k) merged.resize(static_cast<size_t>(k));
  out->reserve(merged.size());
  for (const std::pair<ItemId, Weight>& entry : merged) {
    out->push_back(entry.first);
  }
  return Status::Ok();
}

Status ShardedSampler::ItemsAbove(Weight threshold,
                                  std::vector<ItemId>* out) const {
  if (!caps_.top_k) {
    return UnsupportedError("inner backend does not support ItemsAbove");
  }
  if (out == nullptr) return InvalidArgumentError("null output pointer");
  out->clear();
  for (uint64_t s = 0; s < num_shards_; ++s) {
    const Shard& shard = shards_[s];
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    std::vector<ItemId> ids;
    Status st = shard.inner->ItemsAbove(threshold, &ids);
    if (!st.ok()) return st;
    out->reserve(out->size() + ids.size());
    for (const ItemId inner_id : ids) {
      out->push_back(TranslateOut(s, inner_id));
    }
  }
  return Status::Ok();
}

// --- Snapshots -----------------------------------------------------------

namespace {

// Sharded snapshot section header magic: the ASCII bytes "DPSSSHD1".
constexpr uint64_t kShardedMagic = 0x3144485353535044ULL;

}  // namespace

Status ShardedSampler::Serialize(std::string* out) const {
  if (out == nullptr) return InvalidArgumentError("null output pointer");
  if (!caps_.snapshots) {
    return UnsupportedError("inner backend has no snapshot format");
  }
  AppendU64(out, kShardedMagic);
  AppendU64(out, num_shards_);
  AppendU16(out, static_cast<uint16_t>(inner_name_.size()));
  out->append(inner_name_);
  for (uint64_t s = 0; s < num_shards_; ++s) {
    // Exclusive, not shared: Serialize is const but some inner backends'
    // const methods touch scratch state (the library-wide caveat).
    std::unique_lock<std::shared_mutex> lock(shards_[s].mu);
    std::string section;
    Status st = shards_[s].inner->Serialize(&section);
    if (!st.ok()) return st;
    AppendU64(out, section.size());
    out->append(section);
  }
  return Status::Ok();
}

Status ShardedSampler::Restore(const std::string& bytes) {
  if (!caps_.snapshots) {
    return UnsupportedError("inner backend has no snapshot format");
  }
  size_t pos = 0;
  uint64_t magic = 0, shard_count = 0;
  uint16_t name_len = 0;
  if (!ReadU64(bytes, &pos, &magic) || magic != kShardedMagic) {
    return BadSnapshotError("bad magic / not a sharded snapshot");
  }
  if (!ReadU64(bytes, &pos, &shard_count) ||
      shard_count != num_shards_) {
    return BadSnapshotError("snapshot was taken with a different shard count");
  }
  if (!ReadU16(bytes, &pos, &name_len) ||
      pos + name_len > bytes.size() ||
      bytes.compare(pos, name_len, inner_name_) != 0) {
    return BadSnapshotError(
        "snapshot was taken with a different inner backend");
  }
  pos += name_len;

  // Build every replacement shard before touching any live one, so a
  // corrupt section leaves the current state fully intact.
  std::vector<std::unique_ptr<Sampler>> fresh(num_shards_);
  for (uint64_t s = 0; s < num_shards_; ++s) {
    uint64_t len = 0;
    if (!ReadU64(bytes, &pos, &len) ||
        len > bytes.size() - pos) {
      return BadSnapshotError("truncated shard section");
    }
    SamplerSpec inner_spec = spec_;
    inner_spec.seed = MixSeed(spec_.seed, s);
    StatusOr<std::unique_ptr<Sampler>> inner =
        MakeSamplerChecked(inner_name_, inner_spec);
    if (!inner.ok()) return inner.status();
    Status st = (*inner)->Restore(bytes.substr(pos, len));
    if (!st.ok()) return st;
    pos += len;
    fresh[s] = std::move(*inner);
  }
  if (pos != bytes.size()) {
    return BadSnapshotError("trailing bytes after the last shard section");
  }

  for (uint64_t s = 0; s < num_shards_; ++s) {
    Shard& shard = shards_[s];
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    shard.inner = std::move(fresh[s]);
    shard.total = shard.inner->TotalWeight();
    shard.live_count.store(shard.inner->size(), std::memory_order_relaxed);
    PublishTotalLocked(shard);
  }
  return Status::Ok();
}

Status ShardedSampler::CollectArenaImages(ArenaImageMode mode,
                                          std::vector<ArenaImage>* out) {
  if (out == nullptr) return InvalidArgumentError("null output pointer");
  if (!caps_.arena_image) {
    return UnsupportedError("inner backend has no arena-image storage");
  }
  std::vector<ArenaImage> images;
  size_t per_shard = 0;
  for (uint64_t s = 0; s < num_shards_; ++s) {
    std::unique_lock<std::shared_mutex> lock(shards_[s].mu);
    const size_t before = images.size();
    Status st = shards_[s].inner->CollectArenaImages(mode, &images);
    if (!st.ok()) return st;
    const size_t count = images.size() - before;
    if (s == 0) {
      per_shard = count;
    } else if (count != per_shard) {
      // The on-disk layout infers the shard split from position alone, so
      // ragged counts would be unrecoverable.
      return BadSnapshotError("shards produced unequal arena image counts");
    }
  }
  out->insert(out->end(), std::make_move_iterator(images.begin()),
              std::make_move_iterator(images.end()));
  return Status::Ok();
}

Status ShardedSampler::RestoreFromArenas(std::vector<ArenaLoad>&& loads) {
  if (!caps_.arena_image) {
    return UnsupportedError("inner backend has no arena-image storage");
  }
  if (loads.empty() || loads.size() % num_shards_ != 0) {
    return BadSnapshotError(
        "arena image count is not a multiple of the shard count");
  }
  const size_t per_shard = loads.size() / num_shards_;

  // Build every replacement shard before touching any live one, mirroring
  // Restore: a bad image leaves the current state fully intact.
  std::vector<std::unique_ptr<Sampler>> fresh(num_shards_);
  for (uint64_t s = 0; s < num_shards_; ++s) {
    SamplerSpec inner_spec = spec_;
    inner_spec.seed = MixSeed(spec_.seed, s);
    StatusOr<std::unique_ptr<Sampler>> inner =
        MakeSamplerChecked(inner_name_, inner_spec);
    if (!inner.ok()) return inner.status();
    std::vector<ArenaLoad> shard_loads;
    shard_loads.reserve(per_shard);
    for (size_t i = 0; i < per_shard; ++i) {
      shard_loads.push_back(std::move(loads[s * per_shard + i]));
    }
    Status st = (*inner)->RestoreFromArenas(std::move(shard_loads));
    if (!st.ok()) return st;
    fresh[s] = std::move(*inner);
  }

  for (uint64_t s = 0; s < num_shards_; ++s) {
    Shard& shard = shards_[s];
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    shard.inner = std::move(fresh[s]);
    shard.total = shard.inner->TotalWeight();
    shard.live_count.store(shard.inner->size(), std::memory_order_relaxed);
    PublishTotalLocked(shard);
  }
  return Status::Ok();
}

Status ShardedSampler::DumpItems(std::vector<ItemRecord>* out) const {
  if (out == nullptr) return InvalidArgumentError("null output pointer");
  for (uint64_t s = 0; s < num_shards_; ++s) {
    std::unique_lock<std::shared_mutex> lock(shards_[s].mu);
    std::vector<ItemRecord> inner_items;
    Status st = shards_[s].inner->DumpItems(&inner_items);
    if (!st.ok()) return st;
    out->reserve(out->size() + inner_items.size());
    for (const ItemRecord& rec : inner_items) {
      out->push_back({TranslateOut(s, rec.id), rec.weight});
    }
  }
  return Status::Ok();
}

// --- Diagnostics ---------------------------------------------------------

std::vector<ShardedSampler::ShardStats> ShardedSampler::ShardOccupancy()
    const {
  std::vector<ShardStats> rows(num_shards_);
  for (uint64_t s = 0; s < num_shards_; ++s) {
    const Shard& shard = shards_[s];
    rows[s].live = shard.live_count.load(std::memory_order_relaxed);
    rows[s].total_weight_big =
        shard.pub_big.load(std::memory_order_relaxed);
    // ReadShardTotal serves the common (≤128-bit) regime lock-free from
    // the seqlock and takes a brief reader lock only for big totals.
    rows[s].total_weight_double = ReadShardTotal(shard).ToDouble();
  }
  return rows;
}

Status ShardedSampler::CheckInvariants() const {
  for (uint64_t s = 0; s < num_shards_; ++s) {
    const Shard& shard = shards_[s];
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    const Status st = shard.inner->CheckInvariants();
    if (!st.ok()) return st;
    // Wrapper bookkeeping: cached totals and live counters must mirror the
    // inner structures exactly; a mismatch is an internal invariant
    // violation, not caller misuse.
    DPSS_CHECK(shard.inner->TotalWeight() == shard.total);
    DPSS_CHECK(shard.inner->size() ==
               shard.live_count.load(std::memory_order_relaxed));
    if (!shard.pub_big.load(std::memory_order_relaxed)) {
      DPSS_CHECK(shard.total.FitsU128());
      const unsigned __int128 published =
          (static_cast<unsigned __int128>(
               shard.pub_hi.load(std::memory_order_relaxed))
           << 64) |
          shard.pub_lo.load(std::memory_order_relaxed);
      DPSS_CHECK(published == shard.total.ToU128());
    }
  }
  return Status::Ok();
}

size_t ShardedSampler::ApproxMemoryBytes() const {
  size_t bytes = sizeof(*this) + num_shards_ * sizeof(Shard);
  for (uint64_t s = 0; s < num_shards_; ++s) {
    std::shared_lock<std::shared_mutex> lock(shards_[s].mu);
    bytes += shards_[s].inner->ApproxMemoryBytes();
  }
  return bytes;
}

std::string ShardedSampler::DebugString() const {
  return Sampler::DebugString() + " shards=" +
         std::to_string(num_shards_) + " drain_threads=" +
         std::to_string(pool_ != nullptr ? pool_->width() : 1);
}

namespace internal_registry {

StatusOr<std::unique_ptr<Sampler>> MakeShardedSampler(
    const std::string& registry_key, const std::string& inner_name,
    int num_shards, const SamplerSpec& spec) {
  return ShardedSampler::Create(registry_key, inner_name, num_shards, spec);
}

}  // namespace internal_registry

}  // namespace dpss
