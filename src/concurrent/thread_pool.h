// A small fixed-size worker pool used by the concurrent sampling layer to
// fan one query out across shards (ShardedSampler's parallel drain). It is
// deliberately minimal: one task shape (an indexed loop body), one barrier
// semantic (ParallelFor returns only when every index ran), and internal
// serialization so concurrent ParallelFor calls from different threads take
// turns instead of interleaving task sets.

#ifndef DPSS_CONCURRENT_THREAD_POOL_H_
#define DPSS_CONCURRENT_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dpss {

/// A fixed-size pool of worker threads running indexed parallel loops.
///
/// The calling thread always participates as one worker, so a pool built
/// with `num_workers == n` runs loop bodies on at most `n` threads while
/// only `n - 1` are parked between calls. With `num_workers <= 1` the pool
/// spawns no threads at all and ParallelFor degenerates to an inline loop.
///
/// \par Thread safety
/// ParallelFor may be called from any thread; concurrent calls are
/// serialized internally (one loop drains completely before the next
/// starts). The destructor must not run concurrently with ParallelFor.
class ThreadPool {
 public:
  /// Spawns `num_workers - 1` threads (the caller is the last worker).
  explicit ThreadPool(int num_workers) {
    for (int i = 0; i + 1 < num_workers; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  /// Not copyable (owns threads).
  ThreadPool(const ThreadPool&) = delete;
  /// Not assignable.
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Joins all workers. Pending work is drained first (ParallelFor never
  /// returns with tasks outstanding, so there is none to drop).
  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    wake_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  /// Number of threads a loop may run on (workers + the caller).
  int width() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs `fn(0), ..., fn(tasks - 1)` across the pool plus the calling
  /// thread and returns once every call finished. Task indices are claimed
  /// dynamically, so uneven task costs still balance. `fn` must not call
  /// back into the same pool.
  void ParallelFor(int tasks, const std::function<void(int)>& fn) {
    if (tasks <= 0) return;
    if (workers_.empty() || tasks == 1) {
      for (int i = 0; i < tasks; ++i) fn(i);
      return;
    }
    // One loop at a time: a second caller blocks here until the first
    // loop's tasks all completed and its state was torn down.
    std::lock_guard<std::mutex> serialize(serialize_);
    {
      std::lock_guard<std::mutex> lock(mu_);
      fn_ = &fn;
      total_ = tasks;
      next_ = 0;
      pending_ = tasks;
      ++generation_;
    }
    wake_.notify_all();
    RunTasks();
    std::unique_lock<std::mutex> lock(mu_);
    done_.wait(lock, [this] { return pending_ == 0; });
    fn_ = nullptr;
  }

 private:
  void WorkerLoop() {
    uint64_t seen = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mu_);
        wake_.wait(lock,
                   [&] { return shutdown_ || generation_ != seen; });
        if (shutdown_) return;
        seen = generation_;
      }
      RunTasks();
    }
  }

  // Claims and runs task indices until the current loop is exhausted.
  void RunTasks() {
    for (;;) {
      int task;
      const std::function<void(int)>* fn;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (next_ >= total_) return;
        task = next_++;
        fn = fn_;
      }
      (*fn)(task);
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) done_.notify_all();
    }
  }

  std::vector<std::thread> workers_;
  std::mutex serialize_;  // one ParallelFor at a time
  std::mutex mu_;         // guards everything below
  std::condition_variable wake_;
  std::condition_variable done_;
  const std::function<void(int)>* fn_ = nullptr;
  int total_ = 0;
  int next_ = 0;
  int pending_ = 0;
  uint64_t generation_ = 0;
  bool shutdown_ = false;
};

}  // namespace dpss

#endif  // DPSS_CONCURRENT_THREAD_POOL_H_
