/// \file
/// \brief Thread-safe sharded wrapper over any registered `dpss::Sampler`
/// backend.
///
/// `ShardedSampler` partitions the item set across K shards, each owning an
/// independent inner sampler from the backend registry guarded by its own
/// reader-writer lock. Mutations touch exactly one shard (writers on
/// disjoint shards never contend); queries visit every shard — a PSS query
/// must give *every* item its independent inclusion chance — taking each
/// shard's lock one at a time, so concurrent queries pipeline across
/// shards instead of serializing globally.
///
/// The wrapper stays **exactly weighted** even though no global lock ever
/// freezes a cross-shard snapshot: each shard's contribution is drawn by
/// the inner sampler against the shard-local total and then thinned with
/// exact Bernoulli coins against the global denominator (rejection against
/// the shard's true total, read under its lock, plus the other shards'
/// lock-free published totals). In a quiescent sampler this reproduces the
/// single-structure distribution bit-exactly in distribution; under
/// concurrent writes every item is still included with probability
/// `min{w / (α·W̃ + β), 1}` for a global total W̃ inside the concurrent
/// window. See `docs/CONCURRENCY.md` for the full argument.
///
/// Construction goes through the registry: `MakeSampler("sharded:halt",
/// spec)` (shard count from `SamplerSpec::num_shards`) or
/// `MakeSampler("sharded8:halt", spec)` (count embedded in the name).

#ifndef DPSS_CONCURRENT_SHARDED_SAMPLER_H_
#define DPSS_CONCURRENT_SHARDED_SAMPLER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "concurrent/thread_pool.h"
#include "core/sampler.h"

namespace dpss {

/// Concurrency-safe sampler that shards items over K inner backends.
///
/// \par Sharding
/// An item inserted into shard `s` with inner slot `t` gets the global id
/// slot `t·K + s`, so `SlotIndexOf(id) % K` recovers the owning shard and
/// ids from different shards never collide. Generations pass through
/// unchanged, preserving the library-wide stale-id guarantee. Inserts are
/// routed to the least-loaded shard (ties to the lowest index), which both
/// balances the shards and reuses freed slots.
///
/// \par Thread safety
/// All methods, including the non-`const` ones, may be called from any
/// number of threads concurrently. Mutations and queries take the owning
/// shard's writer lock; `Contains`/`GetWeight`/`TotalWeight` take reader
/// locks; `size()` is lock-free. Queries need the writer lock because the
/// inner backends' query paths reuse per-structure scratch state (HALT's
/// pooled `QueryScratch`, bucket_jump's lazy rebuild) — see
/// `docs/CONCURRENCY.md` for the per-backend table.
///
/// \par Capabilities
/// `parameterized`, `float_weights`, `snapshots`, `decay`,
/// `sample_distinct` and `top_k` follow the inner backend —
/// Serialize/Restore capture every shard as its own section,
/// locking one shard at a time (see those methods for the consistency
/// contract). `expected_size` is not offered (it would need a frozen
/// cross-shard cut per query, a documented non-goal).
class ShardedSampler final : public Sampler {
 public:
  /// One shard's occupancy as reported by ShardOccupancy(): the live-item
  /// count and the shard's Σw. `total_weight_big` is set when the shard's
  /// exact total outgrew 128 bits (the float-weight regime);
  /// `total_weight_double` is always the best double rendering of the
  /// total (exports and dashboards need a number, not a BigUInt).
  struct ShardStats {
    uint64_t live = 0;              ///< Live items in the shard.
    double total_weight_double = 0; ///< Shard Σw as a double.
    bool total_weight_big = false;  ///< True iff Σw exceeds 128 bits.
  };

  /// Hard upper bound on `SamplerSpec::num_shards` (sanity bound; the id
  /// encoding itself supports far more).
  static constexpr int kMaxShards = 4096;
  /// Hard upper bound on `SamplerSpec::num_threads`.
  static constexpr int kMaxThreads = 256;

  /// Builds a sharded sampler whose shards are `inner_name` backends
  /// created through the registry (each with a distinct derived seed).
  ///
  /// \param registry_key The full name this instance was requested under
  ///   (returned verbatim by name()), e.g. "sharded8:halt".
  /// \param inner_name Registry key of the per-shard backend ("halt", ...).
  /// \param num_shards Shard count K; must be in [1, kMaxShards].
  /// \param spec Forwarded to every inner backend (seeds are re-derived
  ///   per shard); `num_threads` sizes the parallel-drain pool (0 = one
  ///   thread per shard up to the hardware concurrency, 1 = no pool).
  /// \return The sampler, or `kInvalidArgument` naming the offending spec
  ///   field / an error from the inner backend's own construction.
  static StatusOr<std::unique_ptr<Sampler>> Create(
      const std::string& registry_key, const std::string& inner_name,
      int num_shards, const SamplerSpec& spec);

  /// Joins the drain pool (no locks held; no shard may be in use).
  ~ShardedSampler() override;

  /// The registry key this instance was created under.
  const char* name() const override;
  /// Inner backend capabilities minus snapshots/expected-size (see class
  /// docs).
  Capabilities capabilities() const override;

  /// Inserts into the least-loaded shard under its writer lock. O(K) to
  /// pick the shard, then the inner backend's insert cost.
  StatusOr<ItemId> Insert(uint64_t weight) override;
  /// Float-form insert, same routing and locking as Insert.
  StatusOr<ItemId> InsertWeight(Weight w) override;
  /// Erases under the owning shard's writer lock. `kInvalidId` for
  /// unknown/stale ids, as everywhere.
  Status Erase(ItemId id) override;
  /// Updates a weight under the owning shard's writer lock.
  Status SetWeight(ItemId id, Weight w) override;

  /// Reader-locked id check on the owning shard.
  bool Contains(ItemId id) const override;
  /// Reader-locked weight lookup on the owning shard.
  StatusOr<Weight> GetWeight(ItemId id) const override;
  /// Lock-free: sums the per-shard live counters (each exact; the sum is a
  /// consistent value whenever no mutation is in flight).
  uint64_t size() const override;
  /// Exact Σw: sums the per-shard totals under reader locks, one shard at
  /// a time (cross-shard consistency under concurrent writes is bounded by
  /// the concurrent window, not a frozen cut).
  BigUInt TotalWeight() const override;

  /// One exactly-weighted PSS query using per-shard engines; shards are
  /// visited starting at a rotating offset (and drained by the worker pool
  /// when `num_threads > 1`).
  Status SampleInto(Rational64 alpha, Rational64 beta,
                    std::vector<ItemId>* out) override;
  /// Deterministic variant: shards are visited in index order, all coins
  /// drawn from the caller's engine.
  Status SampleInto(Rational64 alpha, Rational64 beta, RandomEngine& rng,
                    std::vector<ItemId>* out) const override;

  /// Forwards the decay to every shard in index order, each under its
  /// writer lock, republishing the shard total after each one. The factor
  /// is identical across shards, so relative weights between shards are
  /// preserved exactly (up to the library-wide floor semantics). On an
  /// inner error the already-visited shards keep their decayed weights
  /// (the same partial-application caveat as the base contract).
  Status Decay(Rational64 factor) override;

  /// Exact cross-shard sampling without replacement. Holds *every*
  /// shard's writer lock for the whole call (the one place shard locks
  /// nest — acquired in index order), because without-replacement draws
  /// couple the shards through the already-drawn items: each round picks
  /// the owning shard with probability T_s/T and delegates one distinct
  /// draw to it, giving the single-structure marginal w_x/T exactly; the
  /// drawn item is then parked (weight zero) until the call completes.
  Status SampleDistinct(uint64_t k, std::vector<ItemId>* out) override;

  /// Global top-k: each shard reports its own top-k under its writer
  /// lock (the global top-k is a subset of the union), then one merge
  /// sort keeps the k heaviest.
  Status TopK(uint64_t k, std::vector<ItemId>* out) const override;

  /// Concatenation of every shard's ItemsAbove, ids translated to the
  /// global slot space.
  Status ItemsAbove(Weight threshold,
                    std::vector<ItemId>* out) const override;

  /// Snapshots every shard's inner sampler as a length-prefixed per-shard
  /// section, taking each shard's lock in turn. Under concurrent mutation
  /// the result is a *per-shard-consistent* cut (each shard internally
  /// exact, shards captured at slightly different instants); quiesce
  /// writers for a globally exact cut. `kUnsupported` when the inner
  /// backend has no snapshot format.
  Status Serialize(std::string* out) const override;
  /// Restores all shards from a Serialize image. The image must have been
  /// taken from the same configuration (shard count and inner backend);
  /// `kBadSnapshot` otherwise, with the current state untouched — fresh
  /// inner samplers are fully built from the image before any shard is
  /// swapped.
  Status Restore(const std::string& bytes) override;
  /// Collects every shard's arena images in shard order (each shard's
  /// images are contiguous), taking each shard's lock in turn — the same
  /// per-shard-consistent cut contract as Serialize. All shards must
  /// report the same image count; `kUnsupported` when the inner backend
  /// has no arena-image storage.
  Status CollectArenaImages(ArenaImageMode mode,
                            std::vector<ArenaImage>* out) override;
  /// Restores all shards from a CollectArenaImages capture. The image
  /// count must be a multiple of the shard count (consecutive runs map to
  /// shards in order); fresh inner samplers are fully built before any
  /// shard is swapped, so a bad image leaves the state untouched.
  Status RestoreFromArenas(std::vector<ArenaLoad>&& loads) override;
  /// Every live item across all shards, ids translated to the global slot
  /// space; shard-by-shard under exclusive locks (inner backends' const
  /// methods may touch scratch state — the library-wide caveat).
  Status DumpItems(std::vector<ItemRecord>* out) const override;

  /// Per-shard occupancy (live items and Σw), one row per shard in shard
  /// order. Lock-free: live counts are the relaxed per-shard counters and
  /// totals come from the seqlock-published copies (falling back to a
  /// brief reader lock only for shards in the big-total regime), so a
  /// metrics exporter can call this at any rate without perturbing the
  /// serving path. Each row is individually exact; the cross-shard view is
  /// as consistent as any unlocked sweep (bounded by the concurrent
  /// window).
  std::vector<ShardStats> ShardOccupancy() const;

  /// Verifies every inner backend's invariants plus the wrapper's own
  /// bookkeeping (cached totals == inner totals, live counters, published
  /// values). Takes each shard's writer lock in turn.
  Status CheckInvariants() const override;
  /// Sum of the inner backends' footprints plus the wrapper's shard state.
  size_t ApproxMemoryBytes() const override;
  /// Name, size, total weight, shard count and drain-pool width.
  std::string DebugString() const override;

 private:
  // One shard: the inner sampler plus everything needed to mutate and
  // query it without touching any other shard. `total` is the wrapper's
  // own exact Σw of the shard (inner TotalWeight() is not safe to call
  // under a reader lock for every backend — see CONCURRENCY.md), written
  // only under the exclusive lock; the pub_* fields are its lock-free
  // published copy (single-writer seqlock, acquire/release only).
  struct alignas(64) Shard {
    mutable std::shared_mutex mu;
    std::unique_ptr<Sampler> inner;
    BigUInt total;
    RandomEngine rng{0};  // used only under the exclusive lock
    // Inner-query staging reused across queries (capacity warms up once);
    // touched only under the exclusive lock, like rng.
    mutable std::vector<ItemId> query_buf;
    std::atomic<uint64_t> live_count{0};
    std::atomic<uint64_t> pub_seq{0};
    std::atomic<uint64_t> pub_lo{0};
    std::atomic<uint64_t> pub_hi{0};
    // True when `total` outgrew two words; readers then fall back to a
    // reader-locked copy of `total` (float-weight regime only).
    std::atomic<bool> pub_big{false};
  };

  ShardedSampler(std::string registry_key, std::string inner_name,
                 int num_shards, const SamplerSpec& spec);

  uint64_t PickShard() const;
  void DecodeId(ItemId id, uint64_t* shard, ItemId* inner_id) const;
  ItemId TranslateOut(uint64_t shard, ItemId inner_id) const;

  // Republishes shard.total through the seqlock. Caller holds the
  // exclusive lock (single writer).
  static void PublishTotalLocked(Shard& shard);
  // Lock-free read of a shard's published total; falls back to a
  // reader-locked copy while the shard is in the big-total regime.
  static BigUInt ReadShardTotal(const Shard& shard);

  // Queries one shard under its exclusive lock and appends the accepted,
  // translated ids to *out. `observed_total` is the shard total used in
  // `global_total`; the thinning coins re-read the true total under the
  // lock (see file comment).
  Status DrainShardLocked(const Shard& shard, uint64_t shard_index,
                          Rational64 alpha, Rational64 beta,
                          const BigUInt& observed_total,
                          const BigUInt& global_total, RandomEngine& rng,
                          std::vector<ItemId>* out) const;

  const std::string key_;
  // Inner backend name and construction spec, kept so Restore can build
  // fresh per-shard samplers before swapping them in.
  const std::string inner_name_;
  const SamplerSpec spec_;
  const uint64_t num_shards_;
  Capabilities caps_{};
  mutable std::vector<Shard> shards_;
  mutable std::atomic<uint64_t> query_offset_{0};
  std::unique_ptr<ThreadPool> pool_;
};

namespace internal_registry {

/// Registry hook for the `"sharded[K]:<inner>"` grammar, implemented in
/// `src/concurrent/sharded_sampler.cc` and called by `MakeSamplerChecked`.
StatusOr<std::unique_ptr<Sampler>> MakeShardedSampler(
    const std::string& registry_key, const std::string& inner_name,
    int num_shards, const SamplerSpec& spec);

}  // namespace internal_registry

}  // namespace dpss

#endif  // DPSS_CONCURRENT_SHARDED_SAMPLER_H_
