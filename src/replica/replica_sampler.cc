// Replica-side state machine. See replica/replica_sampler.h.

#include "replica/replica_sampler.h"

#include <utility>

#include "persist/snapshot.h"
#include "persist/wal.h"

namespace dpss {
namespace replica {

StatusOr<std::unique_ptr<ReplicaSampler>> ReplicaSampler::Create(
    persist::Env* env, const std::string& dir, const std::string& backend,
    const SamplerSpec& spec) {
  if (env == nullptr) env = persist::SystemEnv();
  Status st = env->CreateDir(dir);
  if (!st.ok()) return st;
  StatusOr<std::unique_ptr<Sampler>> inner = MakeSamplerChecked(backend, spec);
  if (!inner.ok()) return inner.status();
  return std::unique_ptr<ReplicaSampler>(
      new ReplicaSampler(env, dir, std::move(*inner)));
}

ReplicaSampler::ReplicaSampler(persist::Env* env, std::string dir,
                               std::unique_ptr<Sampler> inner)
    : env_(env),
      dir_(std::move(dir)),
      inner_(std::move(inner)),
      name_(std::string("replica:") + inner_->name()) {}

Status ReplicaSampler::Usable() const {
  if (promoted_) {
    return InvalidArgumentError("replica was promoted; this handle is spent");
  }
  if (divergent_) {
    return BadSnapshotError(
        "replica diverged from the primary's log and refuses further work");
  }
  return Status::Ok();
}

Status ReplicaSampler::InstallSnapshot(uint64_t epoch,
                                       const std::string& bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  Status st = Usable();
  if (!st.ok()) return st;
  if (epoch == 0) return InvalidArgumentError("epoch 0 is reserved");

  StatusOr<std::unique_ptr<Sampler>> loaded = persist::LoadSampler(bytes);
  if (!loaded.ok()) return loaded.status();

  // Mirror the snapshot bytes first, then start the local log — the same
  // publish order a primary's rotation uses, so a crash between the two
  // leaves the crash-normal "snapshot without WAL" shape recovery accepts.
  const std::string snap_path =
      dir_ + "/" + persist::SnapshotFileName(epoch);
  {
    StatusOr<std::unique_ptr<persist::WritableFile>> file =
        env_->NewWritableFile(snap_path, /*truncate=*/true);
    if (!file.ok()) return file.status();
    st = (*file)->Append(bytes);
    if (st.ok()) st = (*file)->Sync();
    if (st.ok()) st = (*file)->Close();
    if (!st.ok()) return st;
  }
  st = env_->SyncDir(dir_);
  if (!st.ok()) return st;

  StatusOr<std::unique_ptr<persist::WritableFile>> wal =
      env_->NewWritableFile(dir_ + "/" + persist::WalFileName(epoch),
                            /*truncate=*/true);
  if (!wal.ok()) return wal.status();
  st = (*wal)->Append(persist::EncodeWalHeader(epoch));
  if (st.ok()) st = (*wal)->Sync();
  if (!st.ok()) return st;

  // Retire older local epochs; only the epoch just installed is live.
  StatusOr<std::vector<std::string>> names = env_->ListDir(dir_);
  if (names.ok()) {
    for (const std::string& name : *names) {
      if (name == persist::SnapshotFileName(epoch) ||
          name == persist::WalFileName(epoch)) {
        continue;
      }
      (void)env_->DeleteFile(dir_ + "/" + name);
    }
    (void)env_->SyncDir(dir_);
  }

  inner_ = std::move(*loaded);
  name_ = std::string("replica:") + inner_->name();
  wal_mirror_ = std::move(*wal);
  epoch_ = epoch;
  applied_seq_ = 0;
  bootstrapped_ = true;
  return Status::Ok();
}

Status ReplicaSampler::ApplySegment(uint64_t epoch, std::string_view bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  Status st = Usable();
  if (!st.ok()) return st;
  if (!bootstrapped_) {
    return InvalidArgumentError("replica has no snapshot to apply onto");
  }
  if (epoch != epoch_) {
    return InvalidArgumentError("segment is for a different epoch");
  }
  if (bytes.empty()) return Status::Ok();

  std::vector<persist::WalRecord> records;
  uint64_t valid = 0;
  persist::ParseWalRecords(bytes, applied_seq_ + 1, &records, &valid);
  if (records.empty()) {
    // Nothing usable at the segment's head: a torn first record, a CRC
    // failure, or records out of seq order. Reject the whole segment; the
    // next pull re-fetches from applied_seq_ + 1.
    return BadSnapshotError("unusable WAL segment (torn or corrupt head)");
  }

  // Mirror before applying: the local log must always hold at least what
  // the in-memory state reflects, so promotion's replay can never come up
  // short of the served state.
  st = wal_mirror_->Append(bytes.substr(0, valid));
  if (st.ok()) st = wal_mirror_->Sync();
  if (!st.ok()) return st;

  for (const persist::WalRecord& record : records) {
    st = persist::ReplayWalRecord(record, inner_.get());
    if (!st.ok()) {
      // Fail loudly, never guess: the replica no longer matches the log it
      // mirrors, so serving reads or promoting would publish wrong state.
      divergent_ = true;
      return st;
    }
    applied_seq_ = record.seq;
  }
  if (valid != bytes.size()) {
    return BadSnapshotError("WAL segment had a torn tail past its records");
  }
  return Status::Ok();
}

uint64_t ReplicaSampler::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

uint64_t ReplicaSampler::applied_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return applied_seq_;
}

bool ReplicaSampler::bootstrapped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bootstrapped_;
}

bool ReplicaSampler::divergent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return divergent_;
}

StatusOr<std::unique_ptr<persist::DurableSampler>> ReplicaSampler::Promote(
    const persist::DurableOptions& options, uint64_t min_epoch,
    uint64_t min_seq) {
  std::lock_guard<std::mutex> lock(mu_);
  Status st = Usable();
  if (!st.ok()) return st;
  if (!bootstrapped_) {
    return InvalidArgumentError(
        "replica never bootstrapped; nothing to promote");
  }
  if (epoch_ < min_epoch ||
      (epoch_ == min_epoch && applied_seq_ < min_seq)) {
    return InvalidArgumentError(
        "stale replica refuses promotion: applied position is behind the "
        "required (epoch, seq) floor");
  }

  // Seal the inherited epoch: flush the mirror, close it, truncate any
  // torn tail so the chain recovery walks is fully valid.
  st = wal_mirror_->Sync();
  if (st.ok()) st = wal_mirror_->Close();
  if (!st.ok()) return st;
  wal_mirror_.reset();
  StatusOr<persist::WalSealInfo> seal =
      persist::SealWal(env_, dir_ + "/" + persist::WalFileName(epoch_));
  if (!seal.ok()) return seal.status();

  persist::DurableOptions opts = options;
  opts.env = env_;
  StatusOr<std::unique_ptr<persist::DurableSampler>> opened =
      persist::RecoveryManager::Open(dir_, opts);
  if (!opened.ok()) return opened.status();
  promoted_ = true;
  return opened;
}

// --- Sampler interface ----------------------------------------------------

const char* ReplicaSampler::name() const {
  std::lock_guard<std::mutex> lock(mu_);
  return name_.c_str();
}

Sampler::Capabilities ReplicaSampler::capabilities() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inner_->capabilities();
}

StatusOr<ItemId> ReplicaSampler::Insert(uint64_t weight) {
  (void)weight;
  return UnsupportedError("replica is read-only; mutate the primary");
}

StatusOr<ItemId> ReplicaSampler::InsertWeight(Weight w) {
  (void)w;
  return UnsupportedError("replica is read-only; mutate the primary");
}

Status ReplicaSampler::Erase(ItemId id) {
  (void)id;
  return UnsupportedError("replica is read-only; mutate the primary");
}

Status ReplicaSampler::SetWeight(ItemId id, Weight w) {
  (void)id;
  (void)w;
  return UnsupportedError("replica is read-only; mutate the primary");
}

Status ReplicaSampler::InsertBatch(std::span<const uint64_t> weights,
                                   std::vector<ItemId>* ids) {
  (void)weights;
  (void)ids;
  return UnsupportedError("replica is read-only; mutate the primary");
}

Status ReplicaSampler::ApplyBatch(std::span<const Op> ops,
                                  std::vector<ItemId>* inserted_ids,
                                  size_t* num_applied) {
  (void)ops;
  (void)inserted_ids;
  if (num_applied != nullptr) *num_applied = 0;
  return UnsupportedError("replica is read-only; mutate the primary");
}

bool ReplicaSampler::Contains(ItemId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return inner_->Contains(id);
}

StatusOr<Weight> ReplicaSampler::GetWeight(ItemId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return inner_->GetWeight(id);
}

uint64_t ReplicaSampler::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inner_->size();
}

BigUInt ReplicaSampler::TotalWeight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inner_->TotalWeight();
}

Status ReplicaSampler::SampleInto(Rational64 alpha, Rational64 beta,
                                  std::vector<ItemId>* out) {
  std::lock_guard<std::mutex> lock(mu_);
  return inner_->SampleInto(alpha, beta, out);
}

Status ReplicaSampler::SampleInto(Rational64 alpha, Rational64 beta,
                                  RandomEngine& rng,
                                  std::vector<ItemId>* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  return inner_->SampleInto(alpha, beta, rng, out);
}

StatusOr<double> ReplicaSampler::ExpectedSampleSize(Rational64 alpha,
                                                    Rational64 beta) const {
  std::lock_guard<std::mutex> lock(mu_);
  return inner_->ExpectedSampleSize(alpha, beta);
}

Status ReplicaSampler::DumpItems(std::vector<ItemRecord>* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  return inner_->DumpItems(out);
}

Status ReplicaSampler::CheckInvariants() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inner_->CheckInvariants();
}

size_t ReplicaSampler::ApproxMemoryBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sizeof(*this) + inner_->ApproxMemoryBytes();
}

std::string ReplicaSampler::DebugString() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inner_->DebugString() + " replica_epoch=" + std::to_string(epoch_) +
         " applied_seq=" + std::to_string(applied_seq_);
}

}  // namespace replica
}  // namespace dpss
