// Primary-side WAL shipping. See replica/replication_log.h for the
// contract and docs/REPLICATION.md for the protocol argument.

#include "replica/replication_log.h"

#include <algorithm>

#include "persist/wal.h"

namespace dpss {
namespace replica {

namespace {

// Hard cap on one shipped segment/chunk, comfortably under the protocol's
// 1 MiB frame bound after the response header and length prefix.
constexpr uint32_t kMaxShipBytes = 512u * 1024;
// What a request with max_bytes == 0 gets.
constexpr uint32_t kDefaultShipBytes = 256u * 1024;

uint32_t ClampShipBytes(uint32_t requested) {
  if (requested == 0) return kDefaultShipBytes;
  return std::min(requested, kMaxShipBytes);
}

// Exact wire size of one record: len(4) + body(12 + 21*ops) + crc(4).
uint64_t RecordWireSize(const persist::WalRecord& record) {
  return 20 + 21 * static_cast<uint64_t>(record.ops.size());
}

}  // namespace

ReplicationLog::ReplicationLog(persist::DurableSampler* primary)
    : primary_(primary) {}

void ReplicationLog::RecordAck(uint64_t subscriber, uint64_t epoch,
                               uint64_t applied_seq) {
  Ack& ack = acks_[subscriber];
  // Acks are monotone: a reconnecting replica re-reading old records must
  // not roll its recorded position back.
  if (epoch > ack.epoch ||
      (epoch == ack.epoch && applied_seq > ack.applied_seq)) {
    ack.epoch = epoch;
    ack.applied_seq = applied_seq;
  }
}

ReplicationLog::SubscribeResult ReplicationLog::Subscribe(
    uint64_t subscriber, uint64_t replica_epoch, uint64_t applied_seq) {
  SubscribeResult out;
  if (subscriber == 0) subscriber = next_subscriber_++;
  out.subscriber = subscriber;
  out.epoch = primary_->epoch();
  out.wal_next_seq = primary_->wal_next_seq();
  RecordAck(subscriber, replica_epoch, applied_seq);
  out.must_bootstrap = replica_epoch != out.epoch;

  persist::Env* env = primary_->env();
  const std::string snap =
      primary_->dir() + "/" + persist::SnapshotFileName(out.epoch);
  if (!env->FileExists(snap)) {
    // A delta at the tip means the primary runs incremental checkpoints —
    // there is no single file a bootstrap can ship.
    if (env->FileExists(primary_->dir() + "/" +
                        persist::DeltaFileName(out.epoch))) {
      out.status = UnsupportedError(
          "replication requires full checkpoints; the primary's chain tip "
          "is an incremental delta");
    } else {
      out.status = IoError("primary snapshot file is missing");
    }
    return out;
  }
  if (snapshot_cache_epoch_ != out.epoch || snapshot_cache_.empty()) {
    std::string bytes;
    Status st = env->ReadFileToString(snap, &bytes);
    if (!st.ok()) {
      out.status = st;
      return out;
    }
    snapshot_cache_ = std::move(bytes);
    snapshot_cache_epoch_ = out.epoch;
  }
  out.snapshot_bytes = snapshot_cache_.size();
  return out;
}

ReplicationLog::SegmentResult ReplicationLog::ReadSegment(uint64_t subscriber,
                                                          uint64_t epoch,
                                                          uint64_t from_seq,
                                                          uint32_t max_bytes) {
  SegmentResult out;
  out.epoch = primary_->epoch();
  out.next_seq = from_seq;
  if (from_seq == 0) {
    out.status = InvalidArgumentError("WAL seq numbers start at 1");
    return out;
  }
  RecordAck(subscriber, epoch, from_seq - 1);
  if (epoch != out.epoch) {
    out.must_bootstrap = true;
    return out;
  }
  if (from_seq >= primary_->wal_next_seq()) return out;  // caught up

  std::string bytes;
  Status st = primary_->env()->ReadFileToString(
      primary_->dir() + "/" + persist::WalFileName(epoch), &bytes);
  if (!st.ok()) {
    out.status = st;
    return out;
  }
  const uint64_t header_bytes = persist::EncodeWalHeader(epoch).size();

  // Resolve the byte offset of record `from_seq`: the per-subscriber
  // cursor makes the tail-follow case one parse of the new bytes; any
  // mismatch (reconnect, replay of older records) rescans from the header.
  Cursor cur;
  const auto it = cursors_.find(subscriber);
  if (it != cursors_.end() && it->second.epoch == epoch &&
      it->second.next_seq <= from_seq && it->second.offset <= bytes.size()) {
    cur = it->second;
  } else {
    cur.epoch = epoch;
    cur.next_seq = 1;
    cur.offset = header_bytes;
  }
  std::vector<persist::WalRecord> records;
  uint64_t valid = 0;
  persist::ParseWalRecords(std::string_view(bytes).substr(cur.offset),
                           cur.next_seq, &records, &valid);

  uint64_t off = cur.offset;
  size_t i = 0;
  while (i < records.size() && records[i].seq < from_seq) {
    off += RecordWireSize(records[i]);
    ++i;
  }
  const uint32_t budget = ClampShipBytes(max_bytes);
  uint64_t end = off;
  uint64_t shipped = 0;
  // Always ship at least one record so an oversized record cannot stall
  // the feed (the frame bound still holds: one record is at most the WAL's
  // own record cap, and the server batches at most max_batch_ops ≈ tens of
  // KiB per record).
  while (i < records.size()) {
    const uint64_t size = RecordWireSize(records[i]);
    if (shipped > 0 && end + size - off > budget) break;
    end += size;
    ++shipped;
    ++i;
  }
  out.bytes = bytes.substr(off, end - off);
  out.next_seq = from_seq + shipped;
  cursors_[subscriber] = Cursor{epoch, out.next_seq, end};
  return out;
}

ReplicationLog::ChunkResult ReplicationLog::ReadSnapshotChunk(
    uint64_t subscriber, uint64_t epoch, uint64_t offset,
    uint32_t max_bytes) {
  (void)subscriber;
  ChunkResult out;
  out.epoch = primary_->epoch();
  if (epoch != out.epoch) {
    out.must_bootstrap = true;
    return out;
  }
  if (snapshot_cache_epoch_ != out.epoch || snapshot_cache_.empty()) {
    std::string bytes;
    Status st = primary_->env()->ReadFileToString(
        primary_->dir() + "/" + persist::SnapshotFileName(epoch), &bytes);
    if (!st.ok()) {
      out.status = st;
      return out;
    }
    snapshot_cache_ = std::move(bytes);
    snapshot_cache_epoch_ = out.epoch;
  }
  out.total_bytes = snapshot_cache_.size();
  if (offset < snapshot_cache_.size()) {
    out.bytes = snapshot_cache_.substr(offset, ClampShipBytes(max_bytes));
  }
  return out;
}

int ReplicationLog::AckCount(uint64_t epoch, uint64_t seq) const {
  int count = 0;
  for (const auto& [subscriber, ack] : acks_) {
    (void)subscriber;
    if (ack.epoch > epoch ||
        (ack.epoch == epoch && ack.applied_seq >= seq)) {
      ++count;
    }
  }
  return count;
}

std::vector<ReplicaLag> ReplicationLog::Lags() const {
  std::vector<ReplicaLag> lags;
  lags.reserve(acks_.size());
  const uint64_t epoch = primary_->epoch();
  const uint64_t last_seq = primary_->wal_next_seq() - 1;
  for (const auto& [subscriber, ack] : acks_) {
    ReplicaLag lag;
    lag.subscriber = subscriber;
    lag.epoch = ack.epoch;
    lag.applied_seq = ack.applied_seq;
    if (ack.epoch == epoch && ack.applied_seq < last_seq) {
      lag.lag_records = last_seq - ack.applied_seq;
    } else if (ack.epoch < epoch) {
      // Behind by at least the whole current epoch; report the current
      // epoch's records as a lower bound.
      lag.lag_records = last_seq;
    }
    lags.push_back(lag);
  }
  return lags;
}

}  // namespace replica
}  // namespace dpss
