/// \file
/// \brief `dpss::replica::ReplicationLog` — the primary-side source of the
/// WAL-shipping protocol (docs/REPLICATION.md).
///
/// The log tails a live `persist::DurableSampler`'s durable directory and
/// answers the three replication requests a replica issues:
///
/// - **Subscribe**: register (or refresh) a subscriber and tell it where
///   the primary is — current epoch, snapshot size, next WAL seq — plus
///   whether it must (re-)bootstrap from the snapshot.
/// - **ReadSnapshotChunk**: a byte range of the current epoch's snapshot
///   (the bootstrap path).
/// - **ReadSegment**: whole raw WAL records of the current epoch starting
///   at a seq. Raw bytes, not re-encoded records: a replica appending the
///   shipped bytes to its own header keeps a *byte-identical prefix* of
///   the primary's log, which is what makes promotion a plain
///   `RecoveryManager::Open` and makes divergence detectable by the replay
///   id checks.
///
/// Every pull doubles as an ack ("applied through seq X"), so the log is
/// also the primary's lag tracker: `AckCount` answers "how many replicas
/// have durably applied through (epoch, seq)?" — the predicate behind the
/// server's `min_replica_acks` durability mode — and `Lags` exposes the
/// per-replica positions for the stats document.
///
/// Threading: every method must be called from the thread that owns the
/// primary sampler (the server's batch thread). The log reads the WAL file
/// the primary appends to, and same-thread use is what makes that safe
/// without any locking.
///
/// Replication is restricted to full-checkpoint chains: a primary running
/// incremental (delta) checkpoints has no single snapshot file to ship, so
/// `Subscribe` reports `kUnsupported` when the current epoch's snapshot is
/// a delta.

#ifndef DPSS_REPLICA_REPLICATION_LOG_H_
#define DPSS_REPLICA_REPLICATION_LOG_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/status.h"
#include "persist/recovery.h"

namespace dpss {
namespace replica {

/// One replica's reported position, for lag export.
struct ReplicaLag {
  uint64_t subscriber = 0;   ///< Subscriber id.
  uint64_t epoch = 0;        ///< Epoch the replica last acked in.
  uint64_t applied_seq = 0;  ///< Last WAL seq the replica applied.
  uint64_t lag_records = 0;  ///< Primary records not yet acked (0 = caught
                             ///< up; counts only same-epoch lag).
};

/// See the file comment. One instance per primary, owned by the server.
class ReplicationLog {
 public:
  /// Tails `primary`'s durable directory. `primary` must outlive the log.
  explicit ReplicationLog(persist::DurableSampler* primary);

  /// Subscribe outcome (mirrors the kSubscribe response body).
  struct SubscribeResult {
    Status status = Status::Ok();  ///< kUnsupported on a delta-tip chain.
    uint64_t subscriber = 0;       ///< Assigned (or echoed) subscriber id.
    uint64_t epoch = 0;            ///< The primary's current epoch.
    uint64_t snapshot_bytes = 0;   ///< Size of the current snapshot file.
    uint64_t wal_next_seq = 0;     ///< Seq the next logged record will use.
    bool must_bootstrap = false;   ///< True unless the replica is already
                                   ///< on the current epoch.
  };

  /// Registers (`subscriber` == 0) or refreshes a subscriber that claims
  /// to have applied through (`replica_epoch`, `applied_seq`).
  SubscribeResult Subscribe(uint64_t subscriber, uint64_t replica_epoch,
                            uint64_t applied_seq);

  /// Segment outcome (mirrors the kWalSegment response body).
  struct SegmentResult {
    Status status = Status::Ok();  ///< kInvalidArgument for a zero from_seq.
    uint64_t epoch = 0;            ///< The primary's current epoch.
    uint64_t next_seq = 0;         ///< Seq after the last record in `bytes`.
    bool must_bootstrap = false;   ///< The requested epoch is gone.
    std::string bytes;             ///< Whole raw records (possibly empty).
  };

  /// Ships whole records of `epoch` starting at `from_seq`, at most
  /// `max_bytes` (clamped to the protocol's frame budget; always at least
  /// one record when one is available). Records the subscriber's ack as
  /// "applied through (`epoch`, `from_seq` - 1)".
  SegmentResult ReadSegment(uint64_t subscriber, uint64_t epoch,
                            uint64_t from_seq, uint32_t max_bytes);

  /// Chunk outcome (mirrors the kSnapshotChunk response body).
  struct ChunkResult {
    Status status = Status::Ok();  ///< kIoError when the file vanished.
    uint64_t epoch = 0;            ///< The primary's current epoch.
    uint64_t total_bytes = 0;      ///< Full snapshot size.
    bool must_bootstrap = false;   ///< The requested epoch is gone.
    std::string bytes;             ///< The requested byte range.
  };

  /// Reads `max_bytes` of epoch `epoch`'s snapshot starting at `offset`.
  ChunkResult ReadSnapshotChunk(uint64_t subscriber, uint64_t epoch,
                                uint64_t offset, uint32_t max_bytes);

  /// Number of subscribers whose acked position covers (`epoch`, `seq`):
  /// an ack at (E', S') covers iff E' > `epoch`, or E' == `epoch` and
  /// S' >= `seq`. The cross-epoch case is rotation-safe because a replica
  /// on epoch E+1 bootstrapped from snapshot-(E+1), which contains every
  /// record of epoch E by construction.
  int AckCount(uint64_t epoch, uint64_t seq) const;

  /// Per-replica positions, sorted by subscriber id.
  std::vector<ReplicaLag> Lags() const;

  /// Number of registered subscribers.
  size_t subscriber_count() const { return acks_.size(); }

 private:
  struct Ack {
    uint64_t epoch = 0;
    uint64_t applied_seq = 0;
  };
  // Sequential-pull fast path: where the last shipped segment ended.
  struct Cursor {
    uint64_t epoch = 0;
    uint64_t next_seq = 1;
    uint64_t offset = 0;  // byte offset of record `next_seq` in the file
  };

  void RecordAck(uint64_t subscriber, uint64_t epoch, uint64_t applied_seq);

  persist::DurableSampler* primary_;  // not owned
  uint64_t next_subscriber_ = 1;
  std::map<uint64_t, Ack> acks_;
  std::map<uint64_t, Cursor> cursors_;
  // Bootstrap cache: the snapshot is immutable per epoch, so chunk
  // requests slice one cached read instead of re-reading the file.
  uint64_t snapshot_cache_epoch_ = 0;
  std::string snapshot_cache_;
};

}  // namespace replica
}  // namespace dpss

#endif  // DPSS_REPLICA_REPLICATION_LOG_H_
