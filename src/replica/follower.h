/// \file
/// \brief `dpss::replica::Follower` — the replica-side pull loop: a thread
/// that owns a `server::Client` connection to the primary and feeds a
/// `ReplicaSampler` through the replication protocol.
///
/// The loop is the protocol's whole client side (docs/REPLICATION.md):
///
/// \code
///   connect → Subscribe → [SnapshotChunk* → InstallSnapshot] →
///     WalSegment → ApplySegment → WalSegment → ...
/// \endcode
///
/// Every step is idempotent from the replica's durable position
/// (`epoch()`, `applied_seq()`), so any failure — connection loss, a torn
/// segment, the primary rotating its epoch mid-bootstrap — is handled the
/// same way: drop back and re-drive from that position. Two conditions are
/// *fatal* and stop the loop for good, surfaced through `fatal_status()`:
/// the primary declaring replication unsupported (delta-checkpoint chain),
/// and the replica diverging (id-determinism failure in apply).
///
/// Threading: `Start`/`Stop`/accessors may be called from any thread; the
/// loop itself is the only caller of the Client. `Stop()` joins, so after
/// it returns the `ReplicaSampler` is quiescent — the precondition for
/// `Promote()`.

#ifndef DPSS_REPLICA_FOLLOWER_H_
#define DPSS_REPLICA_FOLLOWER_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "replica/replica_sampler.h"
#include "server/client.h"

namespace dpss {
namespace replica {

/// Tuning for one Follower. The defaults suit tests and LAN replication.
struct FollowerOptions {
  std::string primary_host = "127.0.0.1";  ///< Primary's IPv4 address.
  int primary_port = 0;                    ///< Primary's port.
  /// Per-pull byte budget passed to kWalSegment/kSnapshotChunk
  /// (0 = the primary's default).
  uint32_t segment_max_bytes = 0;
  /// Sleep between pulls while caught up with the primary.
  int poll_ms = 10;
  /// Backoff after a failed connect or a dropped connection.
  int reconnect_ms = 200;
};

/// See the file comment. One instance per replica server.
class Follower {
 public:
  /// Feeds `replica` (not owned; must outlive the follower).
  Follower(ReplicaSampler* replica, FollowerOptions options);

  /// Stops and joins the loop if still running.
  ~Follower();

  /// Not copyable (owns the pull thread).
  Follower(const Follower&) = delete;
  /// Not assignable.
  Follower& operator=(const Follower&) = delete;

  /// Spawns the pull thread. Call once.
  Status Start();

  /// Signals the loop and joins it. Idempotent; after return the replica
  /// is quiescent.
  void Stop();

  /// True between Start and the loop's exit (fatal error or Stop).
  bool running() const;

  /// Ok while the loop is healthy (transient errors do not register);
  /// the terminal error once the loop has given up — `kUnsupported` from
  /// the primary or divergence (`kBadSnapshot`/`kInvalidId`).
  Status fatal_status() const;

  /// The subscriber id the primary assigned (0 until the first subscribe).
  uint64_t subscriber_id() const;

  /// "host:port" of the primary, for kNotPrimary redirects.
  std::string primary_addr() const;

 private:
  void Run();
  /// Drives one connection until it drops, a fatal error, or Stop.
  void RunConnection(server::Client* client);
  /// Bootstrap: chunk down the snapshot of `epoch` and install it.
  /// \return false when the connection should be dropped.
  bool Bootstrap(server::Client* client, uint64_t epoch,
                 uint64_t total_bytes);
  /// Interruptible sleep. \return false when Stop was signalled.
  bool SleepFor(int ms);
  void SetFatal(const Status& st);

  ReplicaSampler* replica_;  // not owned
  const FollowerOptions options_;

  std::thread thread_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool running_ = false;
  Status fatal_ = Status::Ok();
  uint64_t subscriber_ = 0;
};

}  // namespace replica
}  // namespace dpss

#endif  // DPSS_REPLICA_FOLLOWER_H_
