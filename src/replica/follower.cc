// Replica-side pull loop. See replica/follower.h.

#include "replica/follower.h"

#include <chrono>
#include <utility>

namespace dpss {
namespace replica {

Follower::Follower(ReplicaSampler* replica, FollowerOptions options)
    : replica_(replica), options_(std::move(options)) {}

Follower::~Follower() { Stop(); }

Status Follower::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_ || thread_.joinable()) {
    return InvalidArgumentError("follower already started");
  }
  if (options_.primary_port <= 0) {
    return InvalidArgumentError("follower needs a primary port");
  }
  stop_ = false;
  running_ = true;
  thread_ = std::thread(&Follower::Run, this);
  return Status::Ok();
}

void Follower::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

bool Follower::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

Status Follower::fatal_status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fatal_;
}

uint64_t Follower::subscriber_id() const {
  std::lock_guard<std::mutex> lock(mu_);
  return subscriber_;
}

std::string Follower::primary_addr() const {
  return options_.primary_host + ":" + std::to_string(options_.primary_port);
}

bool Follower::SleepFor(int ms) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait_for(lock, std::chrono::milliseconds(ms),
               [this] { return stop_; });
  return !stop_;
}

void Follower::SetFatal(const Status& st) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fatal_.ok()) fatal_ = st;
}

void Follower::Run() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_ || !fatal_.ok()) break;
    }
    StatusOr<std::unique_ptr<server::Client>> client =
        server::Client::Connect(options_.primary_host, options_.primary_port);
    if (!client.ok()) {
      if (!SleepFor(options_.reconnect_ms)) break;
      continue;
    }
    RunConnection(client->get());
    // The connection dropped (or a fatal/stop condition ended it); back
    // off before dialing again.
    if (!SleepFor(options_.reconnect_ms)) break;
  }
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

void Follower::RunConnection(server::Client* client) {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_ || !fatal_.ok()) return;
    }
    StatusOr<server::Response> sub = client->Subscribe(
        subscriber_id(), replica_->epoch(), replica_->applied_seq());
    if (!sub.ok()) {
      if (sub.status().code() == StatusCode::kUnsupported) {
        // The primary cannot replicate at all (delta-checkpoint chain, or
        // it is itself a replica). Retrying will not change that.
        SetFatal(sub.status());
      }
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      subscriber_ = sub->subscriber;
    }
    if (sub->must_bootstrap) {
      if (!Bootstrap(client, sub->epoch, sub->total_bytes)) return;
      // Re-subscribe so the primary records the fresh position before the
      // steady-state pulls begin.
      continue;
    }

    // Steady state: pull segments until the epoch rotates under us (back
    // to Subscribe) or the connection drops.
    for (;;) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (stop_ || !fatal_.ok()) return;
      }
      StatusOr<server::Response> seg = client->WalSegment(
          subscriber_id(), replica_->epoch(), replica_->applied_seq() + 1,
          options_.segment_max_bytes);
      if (!seg.ok()) return;
      if (seg->must_bootstrap) break;  // epoch rotated: re-subscribe
      if (seg->blob.empty()) {
        if (!SleepFor(options_.poll_ms)) return;
        continue;
      }
      Status st = replica_->ApplySegment(replica_->epoch(), seg->blob);
      if (!st.ok()) {
        if (replica_->divergent()) {
          // Permanent: the replica refuses to follow a log it no longer
          // matches (replica/replica_sampler.h).
          SetFatal(st);
          return;
        }
        // A torn or otherwise unusable segment: drop the connection and
        // re-pull from the durable position.
        return;
      }
    }
  }
}

bool Follower::Bootstrap(server::Client* client, uint64_t epoch,
                         uint64_t total_bytes) {
  std::string snapshot;
  snapshot.reserve(total_bytes);
  while (snapshot.size() < total_bytes) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_ || !fatal_.ok()) return false;
    }
    StatusOr<server::Response> chunk =
        client->SnapshotChunk(subscriber_id(), epoch, snapshot.size(),
                              options_.segment_max_bytes);
    if (!chunk.ok()) return false;
    // Epoch rotated mid-bootstrap, or the primary shipped nothing for an
    // in-range offset: restart from Subscribe on this connection.
    if (chunk->must_bootstrap || chunk->blob.empty()) return true;
    snapshot.append(chunk->blob);
  }
  Status st = replica_->InstallSnapshot(epoch, snapshot);
  if (!st.ok()) {
    if (replica_->divergent()) {
      SetFatal(st);
      return false;
    }
    // Transient (bad bytes mid-rotation, a mirror write failure): the
    // position is unchanged, so pace the retry and re-subscribe.
    return SleepFor(options_.poll_ms);
  }
  return true;
}

}  // namespace replica
}  // namespace dpss
