/// \file
/// \brief `dpss::replica::ReplicaSampler` — a read-only sampler that
/// follows a primary by applying shipped WAL segments, plus the
/// `Promote()` path that turns a caught-up replica into a primary.
///
/// \par Lifecycle
/// A replica starts empty (an ordinary fresh backend, so reads work from
/// the first instant — they just see an empty set). `InstallSnapshot`
/// bootstraps it onto the primary's current epoch; `ApplySegment` then
/// applies shipped records in seq order forever. Both mirror the exact
/// bytes into a local durable directory:
///
/// \code
///   <dir>/snapshot-E   byte-for-byte the primary's snapshot-E
///   <dir>/wal-E        the standard 20-byte header + every shipped record
/// \endcode
///
/// so the mirror is always a *byte prefix* of the primary's epoch-E state
/// — exactly the crash-consistent shape `RecoveryManager::Open`
/// understands. That identity is what `tests/replica_consistency_test.cc`
/// checks (`DumpItems` byte-identical) and what makes promotion ordinary
/// recovery.
///
/// \par Divergence policy: refuse, never guess
/// Every applied record runs through `persist::ReplayWalRecord`, which
/// verifies each logged insert reproduces its logged id. A mismatch means
/// the replica's state differs from what the primary logged against — a
/// bug, a corrupt bootstrap, or a mixed-up directory. The replica marks
/// itself divergent and refuses all further applies and promotion; it
/// never guesses its way past the mismatch (docs/REPLICATION.md makes the
/// argument).
///
/// \par Promotion
/// `Promote` seals the inherited epoch (`persist::SealWal` truncates any
/// torn tail) and hands the mirror directory to `RecoveryManager::Open`,
/// which re-verifies the whole chain and rotates to a fresh epoch with a
/// new WAL — the returned `DurableSampler` is a full primary. A stale
/// replica (behind the caller's required position) refuses to promote.
///
/// \par Threading
/// Thread-safe: an internal mutex serializes applies (the feed thread)
/// against reads (the serving thread). Mutations are rejected with
/// `kUnsupported` — the serving layer answers them `kNotPrimary` before
/// they ever reach the sampler.

#ifndef DPSS_REPLICA_REPLICA_SAMPLER_H_
#define DPSS_REPLICA_REPLICA_SAMPLER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/sampler.h"
#include "persist/env.h"
#include "persist/recovery.h"

namespace dpss {
namespace replica {

/// See the file comment.
class ReplicaSampler final : public Sampler {
 public:
  /// Creates an un-bootstrapped replica mirroring into `dir` (created if
  /// absent) on `env` (null = SystemEnv). `backend`/`spec` shape the empty
  /// pre-bootstrap sampler; after a bootstrap the snapshot header's
  /// backend wins, as everywhere else.
  static StatusOr<std::unique_ptr<ReplicaSampler>> Create(
      persist::Env* env, const std::string& dir, const std::string& backend,
      const SamplerSpec& spec);

  // --- Replication state machine ----------------------------------------

  /// Bootstraps onto epoch `epoch` from the primary's snapshot bytes:
  /// loads them, mirrors them to `<dir>/snapshot-<epoch>`, starts the
  /// local `<dir>/wal-<epoch>` with the standard header, and retires older
  /// local epochs. Resets `applied_seq()` to 0.
  Status InstallSnapshot(uint64_t epoch, const std::string& bytes);

  /// Applies a shipped segment: whole raw records starting at
  /// `applied_seq() + 1`. The valid record prefix is mirrored to the local
  /// log (synced) and applied under the id-determinism check; a torn or
  /// corrupt *tail* merely ends the segment (the next pull re-fetches from
  /// `applied_seq() + 1`), but a segment whose first record is unusable is
  /// an error, and an id mismatch poisons the replica permanently.
  /// \return `kBadSnapshot` for a wholly unusable segment or divergence,
  ///   `kInvalidArgument` for a segment of the wrong epoch or before
  ///   bootstrap.
  Status ApplySegment(uint64_t epoch, std::string_view bytes);

  /// The epoch this replica follows (0 = not bootstrapped yet).
  uint64_t epoch() const;
  /// Last WAL seq applied within `epoch()` (0 = none).
  uint64_t applied_seq() const;
  /// True once InstallSnapshot succeeded.
  bool bootstrapped() const;
  /// True after an id-determinism failure; the replica is poisoned.
  bool divergent() const;

  /// Turns the mirror into a primary: refuses when divergent, never
  /// bootstrapped, or behind (`min_epoch`, `min_seq`); otherwise seals the
  /// inherited epoch and opens the mirror directory via
  /// `RecoveryManager::Open` (id-verified replay + rotation to a fresh
  /// epoch). On success this replica is spent: every further call fails.
  /// `options.env` and durable-dir-derived fields are overridden to the
  /// replica's own.
  StatusOr<std::unique_ptr<persist::DurableSampler>> Promote(
      const persist::DurableOptions& options, uint64_t min_epoch,
      uint64_t min_seq);

  // --- Sampler interface (reads serve; mutations refuse) ----------------

  /// "replica:" + the inner backend's registry name.
  const char* name() const override;
  Capabilities capabilities() const override;

  StatusOr<ItemId> Insert(uint64_t weight) override;
  StatusOr<ItemId> InsertWeight(Weight w) override;
  Status Erase(ItemId id) override;
  Status SetWeight(ItemId id, Weight w) override;
  /// Re-exposes the base's integer-weight overload hidden by the override.
  using Sampler::SetWeight;
  Status InsertBatch(std::span<const uint64_t> weights,
                     std::vector<ItemId>* ids) override;
  Status ApplyBatch(std::span<const Op> ops,
                    std::vector<ItemId>* inserted_ids = nullptr,
                    size_t* num_applied = nullptr) override;

  bool Contains(ItemId id) const override;
  StatusOr<Weight> GetWeight(ItemId id) const override;
  uint64_t size() const override;
  BigUInt TotalWeight() const override;
  Status SampleInto(Rational64 alpha, Rational64 beta,
                    std::vector<ItemId>* out) override;
  Status SampleInto(Rational64 alpha, Rational64 beta, RandomEngine& rng,
                    std::vector<ItemId>* out) const override;
  StatusOr<double> ExpectedSampleSize(Rational64 alpha,
                                      Rational64 beta) const override;
  Status DumpItems(std::vector<ItemRecord>* out) const override;
  Status CheckInvariants() const override;
  size_t ApproxMemoryBytes() const override;
  std::string DebugString() const override;

 private:
  ReplicaSampler(persist::Env* env, std::string dir,
                 std::unique_ptr<Sampler> inner);

  // Shared precondition for the replication mutators.
  Status Usable() const;  // mu_ held

  persist::Env* env_;
  const std::string dir_;

  mutable std::mutex mu_;
  std::unique_ptr<Sampler> inner_;
  std::unique_ptr<persist::WritableFile> wal_mirror_;
  std::string name_;
  uint64_t epoch_ = 0;
  uint64_t applied_seq_ = 0;
  bool bootstrapped_ = false;
  bool divergent_ = false;
  bool promoted_ = false;
};

}  // namespace replica
}  // namespace dpss

#endif  // DPSS_REPLICA_REPLICA_SAMPLER_H_
