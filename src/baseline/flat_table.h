// Shared slot-table bookkeeping for the flat (array-backed) samplers:
// NaiveDpss, RebuildDpss, and the adapter-owned interface backends for
// BucketJumpSampler/OdssSampler. One definition of the id contract —
// slot reuse off a LIFO free list, a generation bump on Erase so stale
// ids fail ContainsId (core/item_id.h), and Σw as a u128 (64-bit weights
// over <= 2^40 slots cannot overflow it).
//
// Mutators other than InsertWeightValue assume the caller has already
// validated the id with ContainsId; the owning sampler decides whether a
// bad id is a DPSS_CHECK (concrete classes) or a Status (backends).

#ifndef DPSS_BASELINE_FLAT_TABLE_H_
#define DPSS_BASELINE_FLAT_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/item_id.h"

namespace dpss {

// Rough per-live-item heap footprint of the rational-probability samplers
// (BucketJumpSampler/OdssSampler): two BigUInt rationals plus bucket
// bookkeeping. Shared by every ApproxMemoryBytes estimate that wraps one.
inline constexpr size_t kApproxRationalItemBytes = 120;

struct FlatTable {
  std::vector<uint64_t> weights;
  std::vector<bool> live;
  std::vector<uint32_t> gens;
  std::vector<uint64_t> free_slots;
  uint64_t count = 0;
  unsigned __int128 total = 0;

  bool ContainsId(ItemId id) const {
    const uint64_t slot = SlotIndexOf(id);
    return slot < live.size() && live[slot] && gens[slot] == GenerationOf(id);
  }

  uint64_t WeightOf(ItemId id) const { return weights[SlotIndexOf(id)]; }

  ItemId InsertWeightValue(uint64_t w) {
    uint64_t slot;
    if (!free_slots.empty()) {
      slot = free_slots.back();
      free_slots.pop_back();
      weights[slot] = w;
      live[slot] = true;
    } else {
      slot = weights.size();
      weights.push_back(w);
      live.push_back(true);
      gens.push_back(0);
    }
    total += w;
    ++count;
    return MakeItemId(slot, gens[slot]);
  }

  void EraseId(ItemId id) {
    const uint64_t slot = SlotIndexOf(id);
    total -= weights[slot];
    live[slot] = false;
    // Bumping the generation invalidates every outstanding id for the slot.
    gens[slot] = (gens[slot] + 1) & kIdGenerationMask;
    free_slots.push_back(slot);
    --count;
  }

  void SetWeightValue(ItemId id, uint64_t w) {
    const uint64_t slot = SlotIndexOf(id);
    total -= weights[slot];
    total += w;
    weights[slot] = w;
  }

  // Capacity-based (not live-count-based): after heavy churn the slot
  // arrays keep their high-water footprint, and that is what a capacity
  // planner needs to see.
  size_t ApproxBytes() const {
    return weights.capacity() * 8 + live.capacity() / 8 +
           gens.capacity() * 4 + free_slots.capacity() * 8;
  }
};

}  // namespace dpss

#endif  // DPSS_BASELINE_FLAT_TABLE_H_
