// Shared slot-table bookkeeping for the flat (array-backed) samplers:
// NaiveDpss, RebuildDpss, and the adapter-owned interface backends for
// BucketJumpSampler/OdssSampler. One definition of the id contract —
// slot reuse off a LIFO free list, a generation bump on Erase so stale
// ids fail ContainsId (core/item_id.h), and Σw as a u128 (64-bit weights
// over <= 2^40 slots cannot overflow it).
//
// The four slot arrays live in a relocatable dpss::Arena (core/arena.h)
// addressed through ArenaVec: the table's entire item state is one
// position-independent, dirty-page-tracked region, so the v2 snapshot
// format can checkpoint it as a raw page image and restore it by adopting
// a file mapping (see EncodeFlatTableRoots / FlatTableFromArena below).
// The classic v1 record serialization is kept byte-identical.
//
// Mutators other than InsertWeightValue assume the caller has already
// validated the id with ContainsId; the owning sampler decides whether a
// bad id is a DPSS_CHECK (concrete classes) or a Status (backends).

#ifndef DPSS_BASELINE_FLAT_TABLE_H_
#define DPSS_BASELINE_FLAT_TABLE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/arena.h"
#include "core/item_id.h"
#include "core/status.h"
#include "util/little_endian.h"

namespace dpss {

// Rough per-live-item heap footprint of the rational-probability samplers
// (BucketJumpSampler/OdssSampler): two BigUInt rationals plus bucket
// bookkeeping. Shared by every ApproxMemoryBytes estimate that wraps one.
inline constexpr size_t kApproxRationalItemBytes = 120;

struct FlatTable {
  // The slot arrays' backing region. Behind a unique_ptr so its address is
  // stable under FlatTable moves (the ArenaVecs hold a pointer to it).
  std::unique_ptr<Arena> arena;
  ArenaVec<uint64_t> weights;
  ArenaVec<uint8_t> live;  // 0/1 per slot
  ArenaVec<uint32_t> gens;
  ArenaVec<uint64_t> free_slots;
  uint64_t count = 0;
  unsigned __int128 total = 0;

  FlatTable()
      : arena(std::make_unique<Arena>()),
        weights(arena.get()),
        live(arena.get()),
        gens(arena.get()),
        free_slots(arena.get()) {}

  FlatTable(FlatTable&&) = default;
  FlatTable& operator=(FlatTable&&) = default;

  bool ContainsId(ItemId id) const {
    const uint64_t slot = SlotIndexOf(id);
    return slot < live.size() && live[slot] != 0 &&
           gens[slot] == GenerationOf(id);
  }

  uint64_t WeightOf(ItemId id) const { return weights[SlotIndexOf(id)]; }

  ItemId InsertWeightValue(uint64_t w) {
    uint64_t slot;
    if (!free_slots.empty()) {
      slot = free_slots.back();
      free_slots.pop_back();
      weights[slot] = w;
      live[slot] = 1;
    } else {
      slot = weights.size();
      weights.push_back(w);
      live.push_back(1);
      gens.push_back(0);
    }
    total += w;
    ++count;
    return MakeItemId(slot, gens[slot]);
  }

  void EraseId(ItemId id) {
    const uint64_t slot = SlotIndexOf(id);
    total -= weights[slot];
    live[slot] = 0;
    // Bumping the generation invalidates every outstanding id for the slot.
    gens[slot] = (gens[slot] + 1) & kIdGenerationMask;
    free_slots.push_back(slot);
    --count;
  }

  void SetWeightValue(ItemId id, uint64_t w) {
    const uint64_t slot = SlotIndexOf(id);
    total -= weights[slot];
    total += w;
    weights[slot] = w;
  }

  // Capacity-based (not live-count-based): after heavy churn the slot
  // arrays keep their high-water footprint, and that is what a capacity
  // planner needs to see.
  size_t ApproxBytes() const {
    return weights.capacity() * 8 + live.capacity() + gens.capacity() * 4 +
           free_slots.capacity() * 8;
  }
};

// --- Serialization (classic v1 records) -----------------------------------
//
// One snapshot format shared by every FlatTable-backed backend ("naive",
// "rebuild", "bucket_jump", "odss"): per-slot records plus the free-slot
// LIFO *in order*, so a restored table assigns exactly the ids the
// original would have (the determinism WAL replay depends on — see
// docs/PERSISTENCE.md). Layout, all u64 little-endian:
//
//   magic | slot_count | {live, weight, gen} * slot_count
//         | free_count | free_slot * free_count

inline constexpr uint64_t kFlatTableMagic = 0x3154465353504400ULL;

inline void SerializeFlatTable(const FlatTable& t, std::string* out) {
  AppendU64(out, kFlatTableMagic);
  AppendU64(out, t.weights.size());
  for (uint64_t slot = 0; slot < t.weights.size(); ++slot) {
    AppendU64(out, t.live[slot] != 0 ? 1 : 0);
    AppendU64(out, t.live[slot] != 0 ? t.weights[slot] : 0);
    AppendU64(out, t.gens[slot]);
  }
  AppendU64(out, t.free_slots.size());
  for (uint64_t i = 0; i < t.free_slots.size(); ++i) {
    AppendU64(out, t.free_slots[i]);
  }
}

// Parses and fully validates a FlatTable snapshot into *t (only written on
// success). Returns kBadSnapshot — never aborts or reads out of bounds —
// for truncated, corrupted or malformed input.
inline Status DeserializeFlatTable(const std::string& bytes, FlatTable* t) {
  size_t pos = 0;
  const auto read = [&bytes, &pos](uint64_t* v) {
    return ReadU64(bytes, &pos, v);
  };
  uint64_t magic = 0, count = 0;
  if (!read(&magic) || magic != kFlatTableMagic) {
    return BadSnapshotError("bad magic / not a flat-table snapshot");
  }
  if (!read(&count) || count > kIdSlotMask + 1 ||
      pos + count * 24 + 8 > bytes.size()) {
    return BadSnapshotError("slot count does not match snapshot length");
  }
  FlatTable fresh;
  fresh.weights.resize(count);
  fresh.live.resize(count);
  fresh.gens.resize(count);
  for (uint64_t slot = 0; slot < count; ++slot) {
    uint64_t is_live = 0, weight = 0, gen = 0;
    if (!read(&is_live) || !read(&weight) || !read(&gen)) {
      return BadSnapshotError("truncated slot record");
    }
    if (is_live > 1 || gen > kIdGenerationMask) {
      return BadSnapshotError("corrupt slot record");
    }
    fresh.live[slot] = is_live != 0 ? 1 : 0;
    fresh.weights[slot] = is_live != 0 ? weight : 0;
    fresh.gens[slot] = static_cast<uint32_t>(gen);
    if (is_live != 0) {
      fresh.total += weight;
      ++fresh.count;
    }
  }
  // The free list must be a permutation of exactly the dead slots.
  uint64_t free_count = 0;
  if (!read(&free_count) || free_count != count - fresh.count ||
      pos + free_count * 8 != bytes.size()) {
    return BadSnapshotError("free-slot list does not match snapshot length");
  }
  std::vector<bool> seen(count, false);
  fresh.free_slots.resize(free_count);
  for (uint64_t i = 0; i < free_count; ++i) {
    uint64_t slot = 0;
    if (!read(&slot)) return BadSnapshotError("truncated free-slot list");
    if (slot >= count || fresh.live[slot] != 0 || seen[slot]) {
      return BadSnapshotError("free-slot list names a live or repeated slot");
    }
    seen[slot] = true;
    fresh.free_slots[i] = slot;
  }
  *t = std::move(fresh);
  return Status::Ok();
}

// --- Arena image (v2 snapshots) -------------------------------------------
//
// The roots block names where inside the arena the four slot arrays live,
// plus the derived totals for cross-checking. Together with the raw arena
// pages it captures the table exactly — including the free-slot LIFO order
// that id-assignment determinism (WAL replay) depends on. Layout, all u64
// little-endian:
//
//   magic | slot_count
//         | weights_off | weights_cap | live_off | live_cap
//         | gens_off    | gens_cap    | free_off | free_size | free_cap
//         | count | total_lo | total_hi

inline constexpr uint64_t kFlatTableRootsMagic = 0x3241465353504400ULL;

inline void EncodeFlatTableRoots(const FlatTable& t, std::string* out) {
  out->clear();
  AppendU64(out, kFlatTableRootsMagic);
  AppendU64(out, t.weights.size());
  AppendU64(out, t.weights.offset());
  AppendU64(out, t.weights.capacity());
  AppendU64(out, t.live.offset());
  AppendU64(out, t.live.capacity());
  AppendU64(out, t.gens.offset());
  AppendU64(out, t.gens.capacity());
  AppendU64(out, t.free_slots.offset());
  AppendU64(out, t.free_slots.size());
  AppendU64(out, t.free_slots.capacity());
  AppendU64(out, t.count);
  AppendU64(out, static_cast<uint64_t>(t.total));
  AppendU64(out, static_cast<uint64_t>(t.total >> 64));
}

// Collects the table's arena image (roots + pages). Clears the arena's
// dirty bitmap: the collected image becomes the incremental baseline.
inline void CollectFlatTableImage(FlatTable* t, ArenaImageMode mode,
                                  ArenaImage* out) {
  EncodeFlatTableRoots(*t, &out->roots);
  CollectArenaPages(t->arena.get(), mode, out);
}

// Rebuilds a FlatTable over a loaded arena, fully validating the roots
// block and the arena contents (extent bounds and alignment, live flags,
// generation range, free list = permutation of the dead slots, recomputed
// count/Σw matching the stored ones). Only writes *t on success; never
// reads out of bounds. This is the restore path's whole parse cost: O(n)
// over in-place storage instead of decoding per-slot records.
inline Status FlatTableFromArena(ArenaLoad&& load, FlatTable* t) {
  const Arena& a = load.arena;
  size_t pos = 0;
  const auto read = [&load, &pos](uint64_t* v) {
    return ReadU64(load.roots, &pos, v);
  };
  uint64_t magic = 0, slot_count = 0;
  if (!read(&magic) || magic != kFlatTableRootsMagic) {
    return BadSnapshotError("bad magic / not a flat-table arena image");
  }
  uint64_t woff = 0, wcap = 0, loff = 0, lcap = 0, goff = 0, gcap = 0;
  uint64_t foff = 0, fsize = 0, fcap = 0, count = 0, tlo = 0, thi = 0;
  if (!read(&slot_count) || !read(&woff) || !read(&wcap) || !read(&loff) ||
      !read(&lcap) || !read(&goff) || !read(&gcap) || !read(&foff) ||
      !read(&fsize) || !read(&fcap) || !read(&count) || !read(&tlo) ||
      !read(&thi) || pos != load.roots.size()) {
    return BadSnapshotError("malformed flat-table roots block");
  }
  if (slot_count > kIdSlotMask + 1) {
    return BadSnapshotError("slot count out of range");
  }
  // Every extent must be a 64-byte-aligned in-bounds region of the arena
  // (offset 0 is the null sentinel, only valid for capacity 0).
  const auto extent_ok = [&a](uint64_t off, uint64_t cap, uint64_t elem) {
    if (cap == 0) return true;
    return off % Arena::kAlignment == 0 && off >= Arena::kAlignment &&
           off <= a.used_bytes() && cap <= (a.used_bytes() - off) / elem;
  };
  if (slot_count > wcap || slot_count > lcap || slot_count > gcap ||
      fsize > fcap || !extent_ok(woff, wcap, 8) || !extent_ok(loff, lcap, 1) ||
      !extent_ok(goff, gcap, 4) || !extent_ok(foff, fcap, 8)) {
    return BadSnapshotError("slot-array extent out of arena bounds");
  }
  // The four extents must also be pairwise disjoint: aliased arrays would
  // pass the count/Σw cross-check below and then silently corrupt each
  // other on the first mutation, breaking the id-determinism invariant
  // WAL replay depends on. (extent_ok proved off + cap*elem <= used, so
  // the byte spans below cannot overflow.)
  {
    const std::pair<uint64_t, uint64_t> all[4] = {
        {woff, wcap * 8}, {loff, lcap}, {goff, gcap * 4}, {foff, fcap * 8}};
    std::vector<std::pair<uint64_t, uint64_t>> spans;  // (offset, byte length)
    for (const auto& s : all) {
      if (s.second != 0) spans.push_back(s);
    }
    std::sort(spans.begin(), spans.end());
    for (size_t i = 1; i < spans.size(); ++i) {
      if (spans[i - 1].first + spans[i - 1].second > spans[i].first) {
        return BadSnapshotError("slot-array extents overlap");
      }
    }
  }
  const uint64_t* warr = a.PtrAt<uint64_t>(woff);
  const uint8_t* larr = a.PtrAt<uint8_t>(loff);
  const uint32_t* garr = a.PtrAt<uint32_t>(goff);
  const uint64_t* farr = a.PtrAt<uint64_t>(foff);
  uint64_t live_count = 0;
  unsigned __int128 live_total = 0;
  for (uint64_t slot = 0; slot < slot_count; ++slot) {
    if (larr[slot] > 1 || garr[slot] > kIdGenerationMask) {
      return BadSnapshotError("corrupt slot record");
    }
    if (larr[slot] != 0) {
      live_total += warr[slot];
      ++live_count;
    }
  }
  if (live_count != count ||
      live_total != ((static_cast<unsigned __int128>(thi) << 64) | tlo)) {
    return BadSnapshotError("stored count/total do not match slot contents");
  }
  if (fsize != slot_count - live_count) {
    return BadSnapshotError("free-slot list does not cover the dead slots");
  }
  std::vector<bool> seen(slot_count, false);
  for (uint64_t i = 0; i < fsize; ++i) {
    const uint64_t slot = farr[i];
    if (slot >= slot_count || larr[slot] != 0 || seen[slot]) {
      return BadSnapshotError("free-slot list names a live or repeated slot");
    }
    seen[slot] = true;
  }
  FlatTable fresh;
  *fresh.arena = std::move(load.arena);
  fresh.weights.AdoptStorage(woff, slot_count, wcap);
  fresh.live.AdoptStorage(loff, slot_count, lcap);
  fresh.gens.AdoptStorage(goff, slot_count, gcap);
  fresh.free_slots.AdoptStorage(foff, fsize, fcap);
  fresh.count = count;
  fresh.total = (static_cast<unsigned __int128>(thi) << 64) | tlo;
  *t = std::move(fresh);
  return Status::Ok();
}

}  // namespace dpss

#endif  // DPSS_BASELINE_FLAT_TABLE_H_
