// Shared slot-table bookkeeping for the flat (array-backed) samplers:
// NaiveDpss, RebuildDpss, and the adapter-owned interface backends for
// BucketJumpSampler/OdssSampler. One definition of the id contract —
// slot reuse off a LIFO free list, a generation bump on Erase so stale
// ids fail ContainsId (core/item_id.h), and Σw as a u128 (64-bit weights
// over <= 2^40 slots cannot overflow it).
//
// Mutators other than InsertWeightValue assume the caller has already
// validated the id with ContainsId; the owning sampler decides whether a
// bad id is a DPSS_CHECK (concrete classes) or a Status (backends).

#ifndef DPSS_BASELINE_FLAT_TABLE_H_
#define DPSS_BASELINE_FLAT_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/item_id.h"
#include "core/status.h"
#include "util/little_endian.h"

namespace dpss {

// Rough per-live-item heap footprint of the rational-probability samplers
// (BucketJumpSampler/OdssSampler): two BigUInt rationals plus bucket
// bookkeeping. Shared by every ApproxMemoryBytes estimate that wraps one.
inline constexpr size_t kApproxRationalItemBytes = 120;

struct FlatTable {
  std::vector<uint64_t> weights;
  std::vector<bool> live;
  std::vector<uint32_t> gens;
  std::vector<uint64_t> free_slots;
  uint64_t count = 0;
  unsigned __int128 total = 0;

  bool ContainsId(ItemId id) const {
    const uint64_t slot = SlotIndexOf(id);
    return slot < live.size() && live[slot] && gens[slot] == GenerationOf(id);
  }

  uint64_t WeightOf(ItemId id) const { return weights[SlotIndexOf(id)]; }

  ItemId InsertWeightValue(uint64_t w) {
    uint64_t slot;
    if (!free_slots.empty()) {
      slot = free_slots.back();
      free_slots.pop_back();
      weights[slot] = w;
      live[slot] = true;
    } else {
      slot = weights.size();
      weights.push_back(w);
      live.push_back(true);
      gens.push_back(0);
    }
    total += w;
    ++count;
    return MakeItemId(slot, gens[slot]);
  }

  void EraseId(ItemId id) {
    const uint64_t slot = SlotIndexOf(id);
    total -= weights[slot];
    live[slot] = false;
    // Bumping the generation invalidates every outstanding id for the slot.
    gens[slot] = (gens[slot] + 1) & kIdGenerationMask;
    free_slots.push_back(slot);
    --count;
  }

  void SetWeightValue(ItemId id, uint64_t w) {
    const uint64_t slot = SlotIndexOf(id);
    total -= weights[slot];
    total += w;
    weights[slot] = w;
  }

  // Capacity-based (not live-count-based): after heavy churn the slot
  // arrays keep their high-water footprint, and that is what a capacity
  // planner needs to see.
  size_t ApproxBytes() const {
    return weights.capacity() * 8 + live.capacity() / 8 +
           gens.capacity() * 4 + free_slots.capacity() * 8;
  }
};

// --- Serialization --------------------------------------------------------
//
// One snapshot format shared by every FlatTable-backed backend ("naive",
// "rebuild", "bucket_jump", "odss"): per-slot records plus the free-slot
// LIFO *in order*, so a restored table assigns exactly the ids the
// original would have (the determinism WAL replay depends on — see
// docs/PERSISTENCE.md). Layout, all u64 little-endian:
//
//   magic | slot_count | {live, weight, gen} * slot_count
//         | free_count | free_slot * free_count

inline constexpr uint64_t kFlatTableMagic = 0x3154465353504400ULL;

inline void SerializeFlatTable(const FlatTable& t, std::string* out) {
  AppendU64(out, kFlatTableMagic);
  AppendU64(out, t.weights.size());
  for (uint64_t slot = 0; slot < t.weights.size(); ++slot) {
    AppendU64(out, t.live[slot] ? 1 : 0);
    AppendU64(out, t.live[slot] ? t.weights[slot] : 0);
    AppendU64(out, t.gens[slot]);
  }
  AppendU64(out, t.free_slots.size());
  for (const uint64_t slot : t.free_slots) AppendU64(out, slot);
}

// Parses and fully validates a FlatTable snapshot into *t (only written on
// success). Returns kBadSnapshot — never aborts or reads out of bounds —
// for truncated, corrupted or malformed input.
inline Status DeserializeFlatTable(const std::string& bytes, FlatTable* t) {
  size_t pos = 0;
  const auto read = [&bytes, &pos](uint64_t* v) {
    return ReadU64(bytes, &pos, v);
  };
  uint64_t magic = 0, count = 0;
  if (!read(&magic) || magic != kFlatTableMagic) {
    return BadSnapshotError("bad magic / not a flat-table snapshot");
  }
  if (!read(&count) || count > kIdSlotMask + 1 ||
      pos + count * 24 + 8 > bytes.size()) {
    return BadSnapshotError("slot count does not match snapshot length");
  }
  FlatTable fresh;
  fresh.weights.resize(count);
  fresh.live.resize(count);
  fresh.gens.resize(count);
  for (uint64_t slot = 0; slot < count; ++slot) {
    uint64_t is_live = 0, weight = 0, gen = 0;
    if (!read(&is_live) || !read(&weight) || !read(&gen)) {
      return BadSnapshotError("truncated slot record");
    }
    if (is_live > 1 || gen > kIdGenerationMask) {
      return BadSnapshotError("corrupt slot record");
    }
    fresh.live[slot] = is_live != 0;
    fresh.weights[slot] = is_live != 0 ? weight : 0;
    fresh.gens[slot] = static_cast<uint32_t>(gen);
    if (is_live != 0) {
      fresh.total += weight;
      ++fresh.count;
    }
  }
  // The free list must be a permutation of exactly the dead slots.
  uint64_t free_count = 0;
  if (!read(&free_count) || free_count != count - fresh.count ||
      pos + free_count * 8 != bytes.size()) {
    return BadSnapshotError("free-slot list does not match snapshot length");
  }
  std::vector<bool> seen(count, false);
  fresh.free_slots.resize(free_count);
  for (uint64_t i = 0; i < free_count; ++i) {
    uint64_t slot = 0;
    if (!read(&slot)) return BadSnapshotError("truncated free-slot list");
    if (slot >= count || fresh.live[slot] || seen[slot]) {
      return BadSnapshotError("free-slot list names a live or repeated slot");
    }
    seen[slot] = true;
    fresh.free_slots[i] = slot;
  }
  *t = std::move(fresh);
  return Status::Ok();
}

}  // namespace dpss

#endif  // DPSS_BASELINE_FLAT_TABLE_H_
