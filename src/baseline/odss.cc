#include "baseline/odss.h"

#include "bigint/rational.h"
#include "random/bernoulli.h"
#include "random/geometric.h"
#include "util/bits.h"
#include "util/check.h"

namespace dpss {

OdssSampler::OdssSampler() : level2_nonempty_(kLevel2Universe) {}

int OdssSampler::Level2Index(int j, uint64_t n) {
  DPSS_DCHECK(n >= 1);
  return FloorLog2(n) - j + kLevel2Offset;
}

void OdssSampler::AttachLevel1(int j) {
  Level1Bucket& b = level1_[j];
  const int kk = Level2Index(j, b.items.size());
  DPSS_CHECK(kk >= 0 && kk < kLevel2Universe);
  if (level2_[kk].empty()) level2_nonempty_.Insert(kk);
  b.l2_bucket = kk;
  b.l2_pos = static_cast<uint32_t>(level2_[kk].size());
  level2_[kk].push_back(j);
}

void OdssSampler::DetachLevel1(int j) {
  Level1Bucket& b = level1_[j];
  DPSS_CHECK(b.l2_bucket >= 0);
  std::vector<int>& l2 = level2_[b.l2_bucket];
  const uint32_t last = static_cast<uint32_t>(l2.size() - 1);
  if (b.l2_pos != last) {
    l2[b.l2_pos] = l2[last];
    level1_[l2[b.l2_pos]].l2_pos = b.l2_pos;
  }
  l2.pop_back();
  if (l2.empty()) level2_nonempty_.Erase(b.l2_bucket);
  b.l2_bucket = -1;
}

uint64_t OdssSampler::Insert(uint64_t payload, const BigUInt& pnum,
                             const BigUInt& pden) {
  DPSS_CHECK(!pden.IsZero());
  uint64_t handle;
  if (!free_.empty()) {
    handle = free_.back();
    free_.pop_back();
  } else {
    handle = items_.size();
    items_.emplace_back();
  }
  Item& item = items_[handle];
  item.payload = payload;
  const bool clamp = BigUInt::Compare(pnum, pden) >= 0;
  item.pnum = clamp ? pden : pnum;
  item.pden = pden;
  item.live = true;
  item.bucket = -1;
  ++count_;
  if (item.pnum.IsZero()) return handle;

  int j = BigRational(item.pden, item.pnum).FloorLog2();
  if (j >= kMaxLevel1) return handle;  // probability ~0: never sampled
  DPSS_CHECK(j >= 0);
  item.bucket = j;
  Level1Bucket& b = level1_[j];
  if (!b.items.empty()) DetachLevel1(j);
  item.pos = static_cast<uint32_t>(b.items.size());
  b.items.push_back(handle);
  AttachLevel1(j);
  return handle;
}

void OdssSampler::Erase(uint64_t handle) {
  DPSS_CHECK(handle < items_.size() && items_[handle].live);
  Item& item = items_[handle];
  if (item.bucket >= 0) {
    const int j = item.bucket;
    Level1Bucket& b = level1_[j];
    DetachLevel1(j);
    const uint32_t last = static_cast<uint32_t>(b.items.size() - 1);
    if (item.pos != last) {
      b.items[item.pos] = b.items[last];
      items_[b.items[item.pos]].pos = item.pos;
    }
    b.items.pop_back();
    if (!b.items.empty()) AttachLevel1(j);
  }
  item.live = false;
  item.bucket = -1;
  free_.push_back(handle);
  --count_;
}

void OdssSampler::UpdateProbability(uint64_t handle, const BigUInt& pnum,
                                    const BigUInt& pden) {
  DPSS_CHECK(handle < items_.size() && items_[handle].live);
  const uint64_t payload = items_[handle].payload;
  Erase(handle);
  const uint64_t fresh = Insert(payload, pnum, pden);
  // Slot reuse keeps the handle stable.
  DPSS_CHECK(fresh == handle);
}

void OdssSampler::OpenBucket(int j, RandomEngine& rng,
                             std::vector<uint64_t>* out) const {
  // Identical case analysis to the paper's Algorithm 5 with the per-item
  // potential probability p = 2^-j and W = 1.
  const Level1Bucket& b = level1_[j];
  const uint64_t n = b.items.size();
  const BigUInt pnum(uint64_t{1});
  const BigUInt pden = BigUInt::PowerOfTwo(j);

  uint64_t k;
  if (n >= (j < 63 ? (uint64_t{1} << j) : ~uint64_t{0})) {
    // p·n >= 1: the bucket was a certain candidate.
    k = SampleBoundedGeo(pnum, pden, n + 1, rng);
    if (k > n) return;
  } else if (j == 0) {
    k = 1;  // p = 1: visit everything
  } else {
    if (!SampleBernoulliPStar(pnum, pden, n, rng)) return;
    k = SampleTruncatedGeo(pnum, pden, n, rng);
  }

  while (k <= n) {
    const Item& item = items_[b.items[k - 1]];
    // Accept with p_i / 2^-j = p_i · 2^j in (1/2, 1].
    if (SampleBernoulliRational(item.pnum << j, item.pden, rng)) {
      out->push_back(item.payload);
    }
    k += SampleBoundedGeo(pnum, pden, n + 1, rng);
  }
}

std::vector<uint64_t> OdssSampler::Sample(RandomEngine& rng) const {
  std::vector<uint64_t> out;
  const BigUInt one(uint64_t{1});
  for (int kk = level2_nonempty_.Min(); kk != -1;
       kk = level2_nonempty_.Next(kk)) {
    const int e = kk - kLevel2Offset;  // super-weights in [2^e, 2^{e+1})
    const std::vector<int>& l2 = level2_[kk];
    const uint64_t len = l2.size();
    // Visit super-items with coin q = min(1, 2^{e+1}).
    const bool q_is_one = e + 1 >= 0;
    const BigUInt qden = BigUInt::PowerOfTwo(q_is_one ? 0 : -(e + 1));
    uint64_t pos = q_is_one ? 1 : SampleBoundedGeo(one, qden, len + 1, rng);
    while (pos <= len) {
      const int j = l2[pos - 1];
      const uint64_t n_j = level1_[j].items.size();
      // Accept the bucket as a candidate with min(1, n_j·2^-j)/q.
      // ratio numerator/denominator: n_j / 2^{j} / q = n_j / 2^{j - shift}.
      const int qshift = q_is_one ? 0 : -(e + 1);
      // ratio = n_j·2^-j / 2^-qshift = n_j / 2^{j - qshift}.
      const int denom_exp = j - qshift;
      bool candidate;
      if (denom_exp <= 0) {
        candidate = true;  // ratio >= 1 (clamped)
      } else {
        candidate = SampleBernoulliRational(BigUInt(n_j),
                                            BigUInt::PowerOfTwo(denom_exp),
                                            rng);
      }
      if (candidate) OpenBucket(j, rng, &out);
      pos += q_is_one ? 1 : SampleBoundedGeo(one, qden, len + 1, rng);
    }
  }
  return out;
}

}  // namespace dpss
