// BucketJumpSampler — static subset sampling with fixed probabilities,
// the Bringmann–Friedrich / DSS-family baseline.
//
// Items carry fixed sampling probabilities p_x (rationals). They are
// bucketed by probability: bucket j holds items with p_x in (2^{-j-1}, 2^{-j}].
// A query visits each non-empty bucket, jumps through it with bounded
// geometric variates of parameter 2^{-j} (the bucket's upper bound), and
// accepts each visited item with the exact ratio p_x·2^j >= 1/2 — so the
// per-bucket work is proportional to its output, plus O(1).
//
// Complexity: O(#non-empty buckets + μ) per query, O(1) per item update
// (with its probability supplied), O(n) space. This is the standard method
// the DSS literature builds on; it stands in for ODSS (Yi et al. 2023),
// which is Real-RAM and closed-source (DESIGN.md §5(f)). Crucially, it
// requires the probabilities p_x to be FIXED: in the DPSS setting every
// total-weight change invalidates all of them — see RebuildDpss.

#ifndef DPSS_BASELINE_BUCKET_JUMP_H_
#define DPSS_BASELINE_BUCKET_JUMP_H_

#include <cstdint>
#include <vector>

#include "bigint/big_uint.h"
#include "bigint/rational.h"
#include "util/random.h"
#include "wordram/bitmap_sorted_list.h"

namespace dpss {

class BucketJumpSampler {
 public:
  // Probabilities deeper than 2^-kMaxBucket are treated as 0.
  static constexpr int kMaxBucket = 320;

  BucketJumpSampler() : nonempty_(kMaxBucket) {}

  BucketJumpSampler(const BucketJumpSampler&) = delete;
  BucketJumpSampler& operator=(const BucketJumpSampler&) = delete;

  uint64_t size() const { return count_; }

  // Adds an item with fixed probability min(1, pnum/pden); returns a handle.
  // O(1) (amortised vector growth).
  uint64_t Insert(uint64_t payload, const BigUInt& pnum, const BigUInt& pden);

  // Removes an item by the handle returned from Insert. O(1).
  void Erase(uint64_t handle);

  // One subset sample: payload values of the selected items.
  std::vector<uint64_t> Sample(RandomEngine& rng) const;

 private:
  struct Item {
    uint64_t payload = 0;
    BigUInt pnum;  // probability = pnum / pden (pre-clamped to <= pden)
    BigUInt pden;
    int bucket = -1;
    uint32_t pos = 0;
    bool live = false;
  };

  std::vector<Item> items_;
  std::vector<uint64_t> free_;
  // Bucket -> item handles.
  std::vector<std::vector<uint64_t>> buckets_{
      static_cast<size_t>(kMaxBucket)};
  BitmapSortedList nonempty_;
  uint64_t count_ = 0;
};

}  // namespace dpss

#endif  // DPSS_BASELINE_BUCKET_JUMP_H_
