// The baseline sampler backends behind the dpss::Sampler interface:
//
//   "naive"       — NaiveDpss: O(n) per query, parameterized (α, β).
//   "rebuild"     — RebuildDpss: fixed (α, β), eager Ω(n) rebuild on every
//                   mutation (the paper's §1 motivation made concrete).
//   "bucket_jump" — BucketJumpSampler with a *lazy* rebuild: mutations are
//                   O(1) and dirty the structure; the next query pays one
//                   Ω(n) reconstruction. Batching mutations therefore
//                   amortizes to one rebuild per batch — the batch-friendly
//                   cousin of "rebuild".
//   "odss"        — OdssSampler (Yi et al.-style DSS): each mutation
//                   changes Σw and hence every item's probability, so the
//                   adapter refreshes all n probabilities per mutation;
//                   ApplyBatch defers the refresh to once per batch.
//
// All four enforce the interface contract themselves (Status on misuse,
// generation-checked ids via core/item_id.h) and only answer queries for
// the SamplerSpec's fixed (α, β) unless parameterized.

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baseline/bucket_jump.h"
#include "baseline/flat_table.h"
#include "baseline/naive_dpss.h"
#include "baseline/odss.h"
#include "baseline/rebuild_dpss.h"
#include "bigint/big_uint.h"
#include "core/sampler.h"
#include "util/bits.h"

namespace dpss {
namespace {

// Exact equality of two non-negative rationals by cross-multiplication.
bool SameRational(Rational64 a, Rational64 b) {
  return static_cast<unsigned __int128>(a.num) * b.den ==
         static_cast<unsigned __int128>(b.num) * a.den;
}

// The integer-only backends store plain 64-bit weights; a float weight
// mult·2^exp is accepted exactly when its value fits a word.
Status WeightToU64(Weight w, uint64_t* out) {
  if (w.IsZero()) {
    *out = 0;
    return Status::Ok();
  }
  if (w.exp >= 64 ||
      BitLength(w.mult) + static_cast<int>(w.exp) > 64) {
    return WeightOverflowError(
        "integer-weight backend: mult*2^exp must fit 64 bits");
  }
  *out = w.mult << w.exp;
  return Status::Ok();
}

// W(α, β) = α·Σw + β as an exact rational wnum/wden (wden > 0).
void ComputeFixedW(Rational64 alpha, Rational64 beta,
                   unsigned __int128 total, BigUInt* wnum, BigUInt* wden) {
  *wnum = BigUInt::MulU64(
              BigUInt::MulU64(BigUInt::FromU128(total), alpha.num),
              beta.den) +
          BigUInt::FromU128(static_cast<unsigned __int128>(beta.num) *
                            alpha.den);
  *wden = BigUInt::FromU128(static_cast<unsigned __int128>(alpha.den) *
                            beta.den);
}

Status CheckFixedParams(Rational64 alpha, Rational64 beta,
                        Rational64 fixed_alpha, Rational64 fixed_beta) {
  if (!SameRational(alpha, fixed_alpha) || !SameRational(beta, fixed_beta)) {
    return UnsupportedError(
        "fixed-(alpha,beta) backend: query parameters must equal the "
        "SamplerSpec's fixed_alpha/fixed_beta");
  }
  return Status::Ok();
}

// Shared DumpItems over a FlatTable: live items in slot order.
Status DumpFlatTable(const FlatTable& t, std::vector<ItemRecord>* out) {
  if (out == nullptr) return InvalidArgumentError("null output pointer");
  out->reserve(out->size() + t.count);
  for (uint64_t slot = 0; slot < t.weights.size(); ++slot) {
    if (!t.live[slot]) continue;
    out->push_back(
        {MakeItemId(slot, t.gens[slot]), Weight::FromU64(t.weights[slot])});
  }
  return Status::Ok();
}

// Shared Serialize over a FlatTable.
Status SerializeFlat(const FlatTable& t, std::string* out) {
  if (out == nullptr) return InvalidArgumentError("null output pointer");
  SerializeFlatTable(t, out);
  return Status::Ok();
}

// Shared arena-image collection over a FlatTable: every flat backend keeps
// its entire item state in the table's arena, so one image captures the
// sampler exactly (the auxiliary DSS structures are rebuilt on restore).
Status CollectFlatImage(FlatTable* t, ArenaImageMode mode,
                        std::vector<ArenaImage>* out) {
  if (out == nullptr) return InvalidArgumentError("null output pointer");
  ArenaImage img;
  CollectFlatTableImage(t, mode, &img);
  out->push_back(std::move(img));
  return Status::Ok();
}

// Shared arena restore: a flat backend is exactly one image.
Status FlatFromLoads(std::vector<ArenaLoad>&& loads, FlatTable* t) {
  if (loads.size() != 1) {
    return BadSnapshotError("flat backend expects exactly one arena image");
  }
  return FlatTableFromArena(std::move(loads[0]), t);
}

// --- "naive" -------------------------------------------------------------

class NaiveBackend final : public Sampler {
 public:
  explicit NaiveBackend(const SamplerSpec& spec)
      : naive_(spec.exact_arithmetic), rng_(spec.seed) {
    SeedFallbackRng(spec.seed);
  }

  const char* name() const override { return "naive"; }

  Capabilities capabilities() const override {
    Capabilities caps;
    caps.parameterized = true;
    caps.snapshots = true;
    caps.arena_image = true;
    caps.decay = true;          // generic O(n) weight rewrite
    caps.sample_distinct = true;  // generic exact WOR engine
    caps.top_k = true;          // generic dump-and-rank
    return caps;
  }

  StatusOr<ItemId> Insert(uint64_t weight) override {
    return naive_.Insert(weight);
  }

  StatusOr<ItemId> InsertWeight(Weight w) override {
    uint64_t value = 0;
    Status st = WeightToU64(w, &value);
    if (!st.ok()) return st;
    return naive_.Insert(value);
  }

  Status Erase(ItemId id) override {
    if (!naive_.Contains(id)) return InvalidIdError();
    naive_.Erase(id);
    return Status::Ok();
  }

  Status SetWeight(ItemId id, Weight w) override {
    if (!naive_.Contains(id)) return InvalidIdError();
    uint64_t value = 0;
    Status st = WeightToU64(w, &value);
    if (!st.ok()) return st;
    naive_.SetWeight(id, value);
    return Status::Ok();
  }

  bool Contains(ItemId id) const override { return naive_.Contains(id); }

  StatusOr<Weight> GetWeight(ItemId id) const override {
    if (!naive_.Contains(id)) return InvalidIdError();
    return Weight::FromU64(naive_.GetWeight(id));
  }

  uint64_t size() const override { return naive_.size(); }

  BigUInt TotalWeight() const override {
    return BigUInt::FromU128(naive_.total_weight());
  }

  Status SampleInto(Rational64 alpha, Rational64 beta,
                    std::vector<ItemId>* out) override {
    Status st = ValidateQueryArgs(alpha, beta, out);
    if (!st.ok()) return st;
    *out = naive_.Sample(alpha, beta, rng_);
    return Status::Ok();
  }

  Status SampleInto(Rational64 alpha, Rational64 beta, RandomEngine& rng,
                    std::vector<ItemId>* out) const override {
    Status st = ValidateQueryArgs(alpha, beta, out);
    if (!st.ok()) return st;
    *out = naive_.Sample(alpha, beta, rng);
    return Status::Ok();
  }

  Status Serialize(std::string* out) const override {
    return SerializeFlat(naive_.table(), out);
  }

  Status Restore(const std::string& bytes) override {
    FlatTable t;
    Status st = DeserializeFlatTable(bytes, &t);
    if (!st.ok()) return st;
    naive_.RestoreTable(std::move(t));
    return Status::Ok();
  }

  Status CollectArenaImages(ArenaImageMode mode,
                            std::vector<ArenaImage>* out) override {
    return CollectFlatImage(naive_.mutable_table(), mode, out);
  }

  Status RestoreFromArenas(std::vector<ArenaLoad>&& loads) override {
    FlatTable t;
    Status st = FlatFromLoads(std::move(loads), &t);
    if (!st.ok()) return st;
    naive_.RestoreTable(std::move(t));
    return Status::Ok();
  }

  Status DumpItems(std::vector<ItemRecord>* out) const override {
    return DumpFlatTable(naive_.table(), out);
  }

  size_t ApproxMemoryBytes() const override {
    return sizeof(*this) + naive_.ApproxMemoryBytes();
  }

 private:
  NaiveDpss naive_;
  RandomEngine rng_;
};

// --- "rebuild" -----------------------------------------------------------

class RebuildBackend final : public Sampler {
 public:
  explicit RebuildBackend(const SamplerSpec& spec)
      : alpha_(spec.fixed_alpha),
        beta_(spec.fixed_beta),
        rebuild_(spec.fixed_alpha, spec.fixed_beta),
        rng_(spec.seed) {
    SeedFallbackRng(spec.seed);
  }

  const char* name() const override { return "rebuild"; }

  Capabilities capabilities() const override {
    Capabilities caps;
    caps.snapshots = true;
    caps.arena_image = true;
    caps.decay = true;
    caps.sample_distinct = true;
    caps.top_k = true;
    return caps;
  }

  // The base-class generic Decay would go through SetWeight — and this
  // backend's whole point is that every SetWeight pays an Ω(n) rebuild, so
  // the loop would be Ω(n²). Rewrite the table directly and pay exactly
  // one rebuild instead.
  Status Decay(Rational64 factor) override {
    Status st = ValidateDecayFactor(factor);
    if (!st.ok()) return st;
    if (factor.num == factor.den) return Status::Ok();
    FlatTable t = std::move(*rebuild_.mutable_table());
    for (uint64_t slot = 0; slot < t.weights.size(); ++slot) {
      if (t.live[slot] == 0 || t.weights[slot] == 0) continue;
      t.SetWeightValue(
          MakeItemId(slot, t.gens[slot]),
          static_cast<uint64_t>(
              static_cast<unsigned __int128>(t.weights[slot]) * factor.num /
              factor.den));
    }
    rebuild_.RestoreTable(std::move(t));
    return Status::Ok();
  }

  StatusOr<ItemId> Insert(uint64_t weight) override {
    return rebuild_.Insert(weight);
  }

  StatusOr<ItemId> InsertWeight(Weight w) override {
    uint64_t value = 0;
    Status st = WeightToU64(w, &value);
    if (!st.ok()) return st;
    return rebuild_.Insert(value);
  }

  Status Erase(ItemId id) override {
    if (!rebuild_.Contains(id)) return InvalidIdError();
    rebuild_.Erase(id);
    return Status::Ok();
  }

  Status SetWeight(ItemId id, Weight w) override {
    if (!rebuild_.Contains(id)) return InvalidIdError();
    uint64_t value = 0;
    Status st = WeightToU64(w, &value);
    if (!st.ok()) return st;
    rebuild_.SetWeight(id, value);
    return Status::Ok();
  }

  bool Contains(ItemId id) const override { return rebuild_.Contains(id); }

  StatusOr<Weight> GetWeight(ItemId id) const override {
    if (!rebuild_.Contains(id)) return InvalidIdError();
    return Weight::FromU64(rebuild_.GetWeight(id));
  }

  uint64_t size() const override { return rebuild_.size(); }

  BigUInt TotalWeight() const override {
    return BigUInt::FromU128(rebuild_.total_weight());
  }

  Status SampleInto(Rational64 alpha, Rational64 beta,
                    std::vector<ItemId>* out) override {
    Status st = ValidateQueryArgs(alpha, beta, out);
    if (!st.ok()) return st;
    st = CheckFixedParams(alpha, beta, alpha_, beta_);
    if (!st.ok()) return st;
    *out = rebuild_.Sample(rng_);
    return Status::Ok();
  }

  Status SampleInto(Rational64 alpha, Rational64 beta, RandomEngine& rng,
                    std::vector<ItemId>* out) const override {
    Status st = ValidateQueryArgs(alpha, beta, out);
    if (!st.ok()) return st;
    st = CheckFixedParams(alpha, beta, alpha_, beta_);
    if (!st.ok()) return st;
    *out = rebuild_.Sample(rng);
    return Status::Ok();
  }

  Status Serialize(std::string* out) const override {
    return SerializeFlat(rebuild_.table(), out);
  }

  Status Restore(const std::string& bytes) override {
    FlatTable t;
    Status st = DeserializeFlatTable(bytes, &t);
    if (!st.ok()) return st;
    rebuild_.RestoreTable(std::move(t));  // pays the signature Ω(n) rebuild
    return Status::Ok();
  }

  Status CollectArenaImages(ArenaImageMode mode,
                            std::vector<ArenaImage>* out) override {
    return CollectFlatImage(rebuild_.mutable_table(), mode, out);
  }

  Status RestoreFromArenas(std::vector<ArenaLoad>&& loads) override {
    FlatTable t;
    Status st = FlatFromLoads(std::move(loads), &t);
    if (!st.ok()) return st;
    rebuild_.RestoreTable(std::move(t));  // same Ω(n) rebuild as Restore
    return Status::Ok();
  }

  Status DumpItems(std::vector<ItemRecord>* out) const override {
    return DumpFlatTable(rebuild_.table(), out);
  }

  size_t ApproxMemoryBytes() const override {
    return sizeof(*this) + rebuild_.ApproxMemoryBytes();
  }

 private:
  Rational64 alpha_;
  Rational64 beta_;
  RebuildDpss rebuild_;
  RandomEngine rng_;
};

// bucket_jump and odss wrap structures keyed by opaque handles, so the
// adapter owns the id table itself — the shared FlatTable from
// baseline/flat_table.h.

// --- "bucket_jump" -------------------------------------------------------

class BucketJumpBackend final : public Sampler {
 public:
  explicit BucketJumpBackend(const SamplerSpec& spec)
      : alpha_(spec.fixed_alpha), beta_(spec.fixed_beta), rng_(spec.seed) {
    SeedFallbackRng(spec.seed);
  }

  const char* name() const override { return "bucket_jump"; }

  Capabilities capabilities() const override {
    Capabilities caps;
    caps.snapshots = true;
    caps.arena_image = true;
    // The generic Decay loop is the right cost here: each SetWeight is
    // O(1) and only dirties the lazy structure, so a decay is O(n) with
    // one deferred rebuild at the next query.
    caps.decay = true;
    caps.sample_distinct = true;
    caps.top_k = true;
    return caps;
  }

  StatusOr<ItemId> Insert(uint64_t weight) override {
    dirty_ = true;
    return table_.InsertWeightValue(weight);
  }

  StatusOr<ItemId> InsertWeight(Weight w) override {
    uint64_t value = 0;
    Status st = WeightToU64(w, &value);
    if (!st.ok()) return st;
    dirty_ = true;
    return table_.InsertWeightValue(value);
  }

  Status Erase(ItemId id) override {
    if (!table_.ContainsId(id)) return InvalidIdError();
    table_.EraseId(id);
    dirty_ = true;
    return Status::Ok();
  }

  Status SetWeight(ItemId id, Weight w) override {
    if (!table_.ContainsId(id)) return InvalidIdError();
    uint64_t value = 0;
    Status st = WeightToU64(w, &value);
    if (!st.ok()) return st;
    table_.SetWeightValue(id, value);
    dirty_ = true;
    return Status::Ok();
  }

  bool Contains(ItemId id) const override { return table_.ContainsId(id); }

  StatusOr<Weight> GetWeight(ItemId id) const override {
    if (!table_.ContainsId(id)) return InvalidIdError();
    return Weight::FromU64(table_.weights[SlotIndexOf(id)]);
  }

  uint64_t size() const override { return table_.count; }

  BigUInt TotalWeight() const override {
    return BigUInt::FromU128(table_.total);
  }

  Status SampleInto(Rational64 alpha, Rational64 beta,
                    std::vector<ItemId>* out) override {
    return SampleInto(alpha, beta, rng_, out);
  }

  Status SampleInto(Rational64 alpha, Rational64 beta, RandomEngine& rng,
                    std::vector<ItemId>* out) const override {
    Status st = ValidateQueryArgs(alpha, beta, out);
    if (!st.ok()) return st;
    st = CheckFixedParams(alpha, beta, alpha_, beta_);
    if (!st.ok()) return st;
    EnsureBuilt();
    *out = jump_->Sample(rng);
    return Status::Ok();
  }

  Status Serialize(std::string* out) const override {
    return SerializeFlat(table_, out);
  }

  Status Restore(const std::string& bytes) override {
    FlatTable t;
    Status st = DeserializeFlatTable(bytes, &t);
    if (!st.ok()) return st;
    table_ = std::move(t);
    // The lazy structure indexes the old item set; drop it and let the
    // next query rebuild, exactly like any other mutation.
    jump_.reset();
    dirty_ = true;
    return Status::Ok();
  }

  Status CollectArenaImages(ArenaImageMode mode,
                            std::vector<ArenaImage>* out) override {
    return CollectFlatImage(&table_, mode, out);
  }

  Status RestoreFromArenas(std::vector<ArenaLoad>&& loads) override {
    FlatTable t;
    Status st = FlatFromLoads(std::move(loads), &t);
    if (!st.ok()) return st;
    table_ = std::move(t);
    jump_.reset();
    dirty_ = true;
    return Status::Ok();
  }

  Status DumpItems(std::vector<ItemRecord>* out) const override {
    return DumpFlatTable(table_, out);
  }

  size_t ApproxMemoryBytes() const override {
    return sizeof(*this) + table_.ApproxBytes() +
           (jump_ == nullptr ? 0 : table_.count * kApproxRationalItemBytes);
  }

  std::string DebugString() const override {
    return Sampler::DebugString() +
           " lazy_rebuilds=" + std::to_string(rebuilds_) +
           (dirty_ ? " (dirty)" : "");
  }

 private:
  // Deferred Ω(n) reconstruction: mutations are O(1) and only mark the
  // structure dirty; the next query pays one rebuild. A batch of k
  // mutations therefore costs O(k + n) up to the next query, versus the
  // "rebuild" backend's O(k·n).
  void EnsureBuilt() const {
    if (!dirty_ && jump_ != nullptr) return;
    jump_ = std::make_unique<BucketJumpSampler>();
    BigUInt wnum, wden;
    ComputeFixedW(alpha_, beta_, table_.total, &wnum, &wden);
    for (uint64_t slot = 0; slot < table_.weights.size(); ++slot) {
      if (!table_.live[slot] || table_.weights[slot] == 0) continue;
      const ItemId id = MakeItemId(slot, table_.gens[slot]);
      if (wnum.IsZero()) {
        jump_->Insert(id, BigUInt(uint64_t{1}), BigUInt(uint64_t{1}));
      } else {
        jump_->Insert(id, BigUInt::MulU64(wden, table_.weights[slot]), wnum);
      }
    }
    dirty_ = false;
    ++rebuilds_;
  }

  Rational64 alpha_;
  Rational64 beta_;
  FlatTable table_;
  mutable std::unique_ptr<BucketJumpSampler> jump_;
  mutable bool dirty_ = true;
  mutable uint64_t rebuilds_ = 0;
  RandomEngine rng_;
};

// --- "odss" --------------------------------------------------------------

class OdssBackend final : public Sampler {
 public:
  explicit OdssBackend(const SamplerSpec& spec)
      : alpha_(spec.fixed_alpha), beta_(spec.fixed_beta), rng_(spec.seed) {
    SeedFallbackRng(spec.seed);
  }

  const char* name() const override { return "odss"; }

  Capabilities capabilities() const override {
    Capabilities caps;
    caps.snapshots = true;
    caps.arena_image = true;
    caps.decay = true;  // override below: one refresh, not one per item
    caps.sample_distinct = true;  // generic exact WOR engine
    caps.top_k = true;            // generic dump-and-rank
    return caps;
  }

  // The generic Decay would route through SetWeight and pay an Ω(n)
  // probability refresh per item (O(n²) total). Scale the flat table
  // directly and refresh once.
  Status Decay(Rational64 factor) override {
    Status st = ValidateDecayFactor(factor);
    if (!st.ok()) return st;
    if (factor.num == factor.den) return Status::Ok();
    for (uint64_t slot = 0; slot < table_.weights.size(); ++slot) {
      if (!table_.live[slot] || table_.weights[slot] == 0) continue;
      table_.SetWeightValue(
          MakeItemId(slot, table_.gens[slot]),
          static_cast<uint64_t>(
              static_cast<unsigned __int128>(table_.weights[slot]) *
              factor.num / factor.den));
    }
    RefreshAllProbabilities();
    return Status::Ok();
  }

  StatusOr<ItemId> Insert(uint64_t weight) override {
    return InsertValue(weight, /*refresh=*/true);
  }

  StatusOr<ItemId> InsertWeight(Weight w) override {
    uint64_t value = 0;
    Status st = WeightToU64(w, &value);
    if (!st.ok()) return st;
    return InsertValue(value, /*refresh=*/true);
  }

  Status Erase(ItemId id) override { return EraseId(id, /*refresh=*/true); }

  Status SetWeight(ItemId id, Weight w) override {
    return SetWeightId(id, w, /*refresh=*/true);
  }

  // Bulk load with one refresh at the end (u64 weights cannot fail), not
  // the default loop of per-insert O(n) refreshes.
  Status InsertBatch(std::span<const uint64_t> weights,
                     std::vector<ItemId>* ids) override {
    if (ids != nullptr) ids->reserve(ids->size() + weights.size());
    for (const uint64_t w : weights) {
      StatusOr<ItemId> id = InsertValue(w, /*refresh=*/false);
      if (ids != nullptr) ids->push_back(*id);
    }
    if (!weights.empty()) RefreshAllProbabilities();
    return Status::Ok();
  }

  // A mutation changes Σw and with it every item's probability — the DSS
  // structure only supports per-item updates, so each op costs Ω(n)
  // probability refreshes (the separation Theorem 1.1 closes). Batching
  // defers the refresh to once per batch: O(n + k) instead of O(n·k).
  Status ApplyBatch(std::span<const Op> ops,
                    std::vector<ItemId>* inserted_ids,
                    size_t* num_applied) override {
    Status result = Status::Ok();
    size_t applied = 0;
    for (const Op& op : ops) {
      switch (op.kind) {
        case Op::Kind::kInsert: {
          StatusOr<ItemId> id = InsertValueFromWeight(op.weight);
          if (!id.ok()) {
            result = id.status();
            break;
          }
          ++applied;
          if (inserted_ids != nullptr) inserted_ids->push_back(*id);
          continue;
        }
        case Op::Kind::kErase:
          result = EraseId(op.id, /*refresh=*/false);
          if (result.ok()) {
            ++applied;
            continue;
          }
          break;
        case Op::Kind::kSetWeight:
          result = SetWeightId(op.id, op.weight, /*refresh=*/false);
          if (result.ok()) {
            ++applied;
            continue;
          }
          break;
        case Op::Kind::kDecay:
          // Decay refreshes internally; the extra batch-end refresh is
          // redundant but harmless.
          result = Decay(op.DecayFactor());
          if (result.ok()) {
            ++applied;
            continue;
          }
          break;
        default:
          result = InvalidArgumentError("malformed Op record");
          break;
      }
      break;
    }
    if (applied > 0) RefreshAllProbabilities();
    if (num_applied != nullptr) *num_applied = applied;
    return result;
  }

  bool Contains(ItemId id) const override { return table_.ContainsId(id); }

  StatusOr<Weight> GetWeight(ItemId id) const override {
    if (!table_.ContainsId(id)) return InvalidIdError();
    return Weight::FromU64(table_.weights[SlotIndexOf(id)]);
  }

  uint64_t size() const override { return table_.count; }

  BigUInt TotalWeight() const override {
    return BigUInt::FromU128(table_.total);
  }

  Status SampleInto(Rational64 alpha, Rational64 beta,
                    std::vector<ItemId>* out) override {
    return SampleInto(alpha, beta, rng_, out);
  }

  Status SampleInto(Rational64 alpha, Rational64 beta, RandomEngine& rng,
                    std::vector<ItemId>* out) const override {
    Status st = ValidateQueryArgs(alpha, beta, out);
    if (!st.ok()) return st;
    st = CheckFixedParams(alpha, beta, alpha_, beta_);
    if (!st.ok()) return st;
    *out = odss_->Sample(rng);
    return Status::Ok();
  }

  Status Serialize(std::string* out) const override {
    return SerializeFlat(table_, out);
  }

  Status Restore(const std::string& bytes) override {
    FlatTable t;
    Status st = DeserializeFlatTable(bytes, &t);
    if (!st.ok()) return st;
    AdoptTable(std::move(t));
    return Status::Ok();
  }

  Status CollectArenaImages(ArenaImageMode mode,
                            std::vector<ArenaImage>* out) override {
    return CollectFlatImage(&table_, mode, out);
  }

  Status RestoreFromArenas(std::vector<ArenaLoad>&& loads) override {
    FlatTable t;
    Status st = FlatFromLoads(std::move(loads), &t);
    if (!st.ok()) return st;
    AdoptTable(std::move(t));
    return Status::Ok();
  }

  Status DumpItems(std::vector<ItemRecord>* out) const override {
    return DumpFlatTable(table_, out);
  }

  size_t ApproxMemoryBytes() const override {
    return sizeof(*this) + table_.ApproxBytes() + handles_.capacity() * 8 +
           table_.count * kApproxRationalItemBytes;
  }

 private:
  // Replace the whole state: fresh DSS structure, fresh handle map, one
  // probability refresh at the end (exactly the batch-load shape).
  void AdoptTable(FlatTable&& t) {
    table_ = std::move(t);
    odss_ = std::make_unique<OdssSampler>();
    handles_.assign(table_.weights.size(), 0);
    for (uint64_t slot = 0; slot < table_.weights.size(); ++slot) {
      if (!table_.live[slot]) continue;
      handles_[slot] = odss_->Insert(MakeItemId(slot, table_.gens[slot]),
                                     BigUInt(), BigUInt(uint64_t{1}));
    }
    RefreshAllProbabilities();
  }

  StatusOr<ItemId> InsertValueFromWeight(Weight w) {
    uint64_t value = 0;
    Status st = WeightToU64(w, &value);
    if (!st.ok()) return st;
    return InsertValue(value, /*refresh=*/false);
  }

  StatusOr<ItemId> InsertValue(uint64_t weight, bool refresh) {
    const ItemId id = table_.InsertWeightValue(weight);
    const uint64_t slot = SlotIndexOf(id);
    // Insert with probability 0; the refresh assigns the real value (and
    // re-targets every other item's probability, which the new Σw shifted).
    const uint64_t handle = odss_->Insert(id, BigUInt(), BigUInt(uint64_t{1}));
    if (handles_.size() <= slot) handles_.resize(slot + 1);
    handles_[slot] = handle;
    if (refresh) RefreshAllProbabilities();
    return id;
  }

  Status EraseId(ItemId id, bool refresh) {
    if (!table_.ContainsId(id)) return InvalidIdError();
    odss_->Erase(handles_[SlotIndexOf(id)]);
    table_.EraseId(id);
    if (refresh) RefreshAllProbabilities();
    return Status::Ok();
  }

  Status SetWeightId(ItemId id, Weight w, bool refresh) {
    if (!table_.ContainsId(id)) return InvalidIdError();
    uint64_t value = 0;
    Status st = WeightToU64(w, &value);
    if (!st.ok()) return st;
    table_.SetWeightValue(id, value);
    if (refresh) RefreshAllProbabilities();
    return Status::Ok();
  }

  void RefreshAllProbabilities() {
    BigUInt wnum, wden;
    ComputeFixedW(alpha_, beta_, table_.total, &wnum, &wden);
    const bool w_zero = wnum.IsZero();
    for (uint64_t slot = 0; slot < table_.weights.size(); ++slot) {
      if (!table_.live[slot]) continue;
      const uint64_t w = table_.weights[slot];
      if (w == 0) {
        odss_->UpdateProbability(handles_[slot], BigUInt(),
                                 BigUInt(uint64_t{1}));
      } else if (w_zero) {
        // W == 0: probability 1.
        odss_->UpdateProbability(handles_[slot], BigUInt(uint64_t{1}),
                                 BigUInt(uint64_t{1}));
      } else {
        odss_->UpdateProbability(handles_[slot], BigUInt::MulU64(wden, w),
                                 wnum);
      }
    }
  }

  Rational64 alpha_;
  Rational64 beta_;
  FlatTable table_;
  std::vector<uint64_t> handles_;  // slot -> OdssSampler handle
  // By pointer so Restore can swap in a fresh structure (OdssSampler is
  // neither copyable nor assignable).
  std::unique_ptr<OdssSampler> odss_ = std::make_unique<OdssSampler>();
  RandomEngine rng_;
};

// --- Factories -----------------------------------------------------------

// The fixed-(α, β) backends bake spec.fixed_alpha/fixed_beta into every
// maintained probability, so malformed values must be rejected up front —
// a zero denominator would otherwise surface as a divide-by-zero deep in
// the first refresh instead of a construction-time diagnostic.
Status ValidateFixedParams(const SamplerSpec& spec) {
  if (spec.fixed_alpha.den == 0) {
    return InvalidArgumentError(
        "SamplerSpec::fixed_alpha has a zero denominator");
  }
  if (spec.fixed_beta.den == 0) {
    return InvalidArgumentError(
        "SamplerSpec::fixed_beta has a zero denominator");
  }
  return Status::Ok();
}

template <typename Backend>
StatusOr<std::unique_ptr<Sampler>> MakeBackend(const SamplerSpec& spec) {
  return StatusOr<std::unique_ptr<Sampler>>(
      std::make_unique<Backend>(spec));
}

template <typename Backend>
StatusOr<std::unique_ptr<Sampler>> MakeFixedBackend(
    const SamplerSpec& spec) {
  Status st = ValidateFixedParams(spec);
  if (!st.ok()) return st;
  return MakeBackend<Backend>(spec);
}

}  // namespace

namespace internal_registry {

std::vector<NamedFactory> BaselineBackends() {
  return {
      {"naive", &MakeBackend<NaiveBackend>},
      {"rebuild", &MakeFixedBackend<RebuildBackend>},
      {"bucket_jump", &MakeFixedBackend<BucketJumpBackend>},
      {"odss", &MakeFixedBackend<OdssBackend>},
  };
}

}  // namespace internal_registry
}  // namespace dpss
