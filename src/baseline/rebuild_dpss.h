// RebuildDpss — a DSS-style sampler forced into the DPSS setting.
//
// The paper's motivation (§1): in DPSS every update to Σw changes every
// item's probability simultaneously, so a dynamic-subset-sampling structure
// built for fixed probabilities must be rebuilt — Ω(n) per update even with
// fixed, known (α, β). RebuildDpss makes that cost concrete: it keeps a
// BucketJumpSampler whose probabilities are w/(α·Σw+β) for a fixed (α, β)
// supplied at construction, and reconstructs it from scratch after every
// insert or delete. Benchmark experiment E3 plots its update cost against
// HALT's O(1).

#ifndef DPSS_BASELINE_REBUILD_DPSS_H_
#define DPSS_BASELINE_REBUILD_DPSS_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "baseline/bucket_jump.h"
#include "baseline/flat_table.h"
#include "bigint/rational.h"
#include "core/item_id.h"
#include "util/random.h"

namespace dpss {

class RebuildDpss {
 public:
  using ItemId = dpss::ItemId;

  RebuildDpss(Rational64 alpha, Rational64 beta)
      : alpha_(alpha), beta_(beta) {}

  ItemId Insert(uint64_t weight);
  void Erase(ItemId id);
  // A weight update changes Σw and hence every probability: Ω(n) rebuild,
  // exactly like Insert/Erase. HALT's O(1) SetWeight is benchmarked against
  // this in experiment E3 (bench_update).
  void SetWeight(ItemId id, uint64_t weight);
  // Ids follow the library-wide slot+generation encoding (core/item_id.h),
  // so stale ids kept past Erase are rejected instead of aliasing.
  bool Contains(ItemId id) const { return table_.ContainsId(id); }
  uint64_t GetWeight(ItemId id) const;
  uint64_t size() const { return table_.count; }
  unsigned __int128 total_weight() const { return table_.total; }
  size_t ApproxMemoryBytes() const {
    return table_.ApproxBytes() + table_.count * kApproxRationalItemBytes +
           sizeof(*this);
  }

  // Snapshot hooks for the interface backend (baseline/backends.cc). The
  // restore pays the structure's signature Ω(n) rebuild, like any other
  // mutation.
  const FlatTable& table() const { return table_; }
  // Mutable access for the arena-image snapshot path (collection clears
  // the table's dirty-page baseline; the item state is untouched).
  FlatTable* mutable_table() { return &table_; }
  void RestoreTable(FlatTable&& t) {
    table_ = std::move(t);
    RebuildSampler();
  }

  std::vector<ItemId> Sample(RandomEngine& rng) const {
    return sampler_ == nullptr ? std::vector<ItemId>{}
                               : sampler_->Sample(rng);
  }

 private:
  void RebuildSampler();

  Rational64 alpha_;
  Rational64 beta_;
  FlatTable table_;
  std::unique_ptr<BucketJumpSampler> sampler_;
};

}  // namespace dpss

#endif  // DPSS_BASELINE_REBUILD_DPSS_H_
