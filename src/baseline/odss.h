// OdssSampler — a two-level dynamic subset sampler for FIXED probabilities,
// in the spirit of Yi et al.'s ODSS (KDD 2023), the paper's [32].
//
// Items carry fixed rational probabilities. Level 1 buckets items by
// probability range (2^{-j-1}, 2^{-j}]; bucket j appears in a sample with
// probability min{1, n_j·2^{-j}}, so the buckets themselves form a subset
// sampling instance over "super-items" of weight n_j·2^{-j}. Level 2
// buckets those super-items by weight exponent and samples them with
// bounded-geometric jumps; selected buckets are then opened exactly like the
// paper's Algorithm 5 (B-Geo for dense buckets, Ber(p*) + T-Geo for sparse
// ones), so per-item work is charged to the output.
//
// Complexity: O(#non-empty level-2 buckets + μ) per query — the additive
// term is logarithmic in the probability range (Yi et al. remove it with a
// third level + lookup table; see DESIGN.md §5(f)) — and O(1) per update.
// Unlike DPSS, an update only ever changes ONE item's probability; in the
// parameterized setting every query parameter change would invalidate all
// of them, which is exactly the gap Theorem 1.1 closes.

#ifndef DPSS_BASELINE_ODSS_H_
#define DPSS_BASELINE_ODSS_H_

#include <cstdint>
#include <vector>

#include "bigint/big_uint.h"
#include "util/random.h"
#include "wordram/bitmap_sorted_list.h"

namespace dpss {

class OdssSampler {
 public:
  // Probabilities below 2^-kMaxLevel1 are treated as 0.
  static constexpr int kMaxLevel1 = 320;
  // Level-2 exponent range: super-weights lie in (2^-kMaxLevel1, 2^63].
  static constexpr int kLevel2Offset = kMaxLevel1;
  static constexpr int kLevel2Universe = kMaxLevel1 + 80;

  OdssSampler();

  OdssSampler(const OdssSampler&) = delete;
  OdssSampler& operator=(const OdssSampler&) = delete;

  uint64_t size() const { return count_; }

  // Adds an item sampled with probability min(1, pnum/pden); returns a
  // stable handle. O(1).
  uint64_t Insert(uint64_t payload, const BigUInt& pnum, const BigUInt& pden);

  // Removes an item. O(1).
  void Erase(uint64_t handle);

  // Replaces an item's probability (the DSS update operation). O(1).
  void UpdateProbability(uint64_t handle, const BigUInt& pnum,
                         const BigUInt& pden);

  // One subset sample: payloads of the selected items, each selected
  // independently with its probability.
  std::vector<uint64_t> Sample(RandomEngine& rng) const;

 private:
  struct Item {
    uint64_t payload = 0;
    BigUInt pnum;  // clamped to <= pden
    BigUInt pden;
    int bucket = -1;  // level-1 bucket, -1 if p == 0
    uint32_t pos = 0;
    bool live = false;
  };

  struct Level1Bucket {
    std::vector<uint64_t> items;  // item handles
    int l2_bucket = -1;           // current level-2 position (or -1)
    uint32_t l2_pos = 0;
  };

  // Level-2 bucket index of a level-1 bucket j holding n items:
  // floor(log2(n·2^-j)) + offset.
  static int Level2Index(int j, uint64_t n);

  void AttachLevel1(int j);  // (re-)inserts bucket j into level 2
  void DetachLevel1(int j);
  void OpenBucket(int j, RandomEngine& rng, std::vector<uint64_t>* out) const;

  std::vector<Item> items_;
  std::vector<uint64_t> free_;
  std::vector<Level1Bucket> level1_{static_cast<size_t>(kMaxLevel1)};
  std::vector<std::vector<int>> level2_{static_cast<size_t>(kLevel2Universe)};
  BitmapSortedList level2_nonempty_;
  uint64_t count_ = 0;
};

}  // namespace dpss

#endif  // DPSS_BASELINE_ODSS_H_
