#include "baseline/rebuild_dpss.h"

#include "bigint/big_uint.h"
#include "util/check.h"

namespace dpss {

RebuildDpss::ItemId RebuildDpss::Insert(uint64_t weight) {
  const ItemId id = table_.InsertWeightValue(weight);
  RebuildSampler();
  return id;
}

void RebuildDpss::Erase(ItemId id) {
  DPSS_CHECK(Contains(id));
  table_.EraseId(id);
  RebuildSampler();
}

void RebuildDpss::SetWeight(ItemId id, uint64_t weight) {
  DPSS_CHECK(Contains(id));
  table_.SetWeightValue(id, weight);
  RebuildSampler();
}

uint64_t RebuildDpss::GetWeight(ItemId id) const {
  DPSS_CHECK(Contains(id));
  return table_.WeightOf(id);
}

void RebuildDpss::RebuildSampler() {
  // Every update changes W(α,β) and hence every probability: rebuild.
  sampler_ = std::make_unique<BucketJumpSampler>();
  const BigUInt wnum =
      BigUInt::MulU64(BigUInt::MulU64(BigUInt::FromU128(table_.total),
                                      alpha_.num),
                      beta_.den) +
      BigUInt::FromU128(static_cast<unsigned __int128>(beta_.num) *
                        alpha_.den);
  const BigUInt wden = BigUInt::FromU128(
      static_cast<unsigned __int128>(alpha_.den) * beta_.den);
  for (uint64_t slot = 0; slot < table_.weights.size(); ++slot) {
    if (!table_.live[slot] || table_.weights[slot] == 0) continue;
    const ItemId id = MakeItemId(slot, table_.gens[slot]);
    if (wnum.IsZero()) {
      // W == 0: probability 1.
      sampler_->Insert(id, BigUInt(uint64_t{1}), BigUInt(uint64_t{1}));
    } else {
      sampler_->Insert(id, BigUInt::MulU64(wden, table_.weights[slot]),
                       wnum);
    }
  }
}

}  // namespace dpss
