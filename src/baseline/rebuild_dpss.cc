#include "baseline/rebuild_dpss.h"

#include "bigint/big_uint.h"
#include "util/check.h"

namespace dpss {

RebuildDpss::ItemId RebuildDpss::Insert(uint64_t weight) {
  ItemId id;
  if (!free_.empty()) {
    id = free_.back();
    free_.pop_back();
    weights_[id] = weight;
    live_[id] = true;
  } else {
    id = weights_.size();
    weights_.push_back(weight);
    live_.push_back(true);
  }
  total_weight_ += weight;
  ++count_;
  RebuildSampler();
  return id;
}

void RebuildDpss::Erase(ItemId id) {
  DPSS_CHECK(id < weights_.size() && live_[id]);
  total_weight_ -= weights_[id];
  live_[id] = false;
  free_.push_back(id);
  --count_;
  RebuildSampler();
}

void RebuildDpss::SetWeight(ItemId id, uint64_t weight) {
  DPSS_CHECK(id < weights_.size() && live_[id]);
  total_weight_ -= weights_[id];
  total_weight_ += weight;
  weights_[id] = weight;
  RebuildSampler();
}

void RebuildDpss::RebuildSampler() {
  // Every update changes W(α,β) and hence every probability: rebuild.
  sampler_ = std::make_unique<BucketJumpSampler>();
  const BigUInt wnum =
      BigUInt::MulU64(BigUInt::MulU64(BigUInt::FromU128(total_weight_),
                                      alpha_.num),
                      beta_.den) +
      BigUInt::FromU128(static_cast<unsigned __int128>(beta_.num) *
                        alpha_.den);
  const BigUInt wden = BigUInt::FromU128(
      static_cast<unsigned __int128>(alpha_.den) * beta_.den);
  for (ItemId id = 0; id < weights_.size(); ++id) {
    if (!live_[id] || weights_[id] == 0) continue;
    if (wnum.IsZero()) {
      // W == 0: probability 1.
      sampler_->Insert(id, BigUInt(uint64_t{1}), BigUInt(uint64_t{1}));
    } else {
      sampler_->Insert(id, BigUInt::MulU64(wden, weights_[id]), wnum);
    }
  }
}

}  // namespace dpss
