#include "baseline/bucket_jump.h"

#include "random/bernoulli.h"
#include "random/geometric.h"
#include "util/check.h"

namespace dpss {

uint64_t BucketJumpSampler::Insert(uint64_t payload, const BigUInt& pnum,
                                   const BigUInt& pden) {
  DPSS_CHECK(!pden.IsZero());
  uint64_t handle;
  if (!free_.empty()) {
    handle = free_.back();
    free_.pop_back();
  } else {
    handle = items_.size();
    items_.emplace_back();
  }
  Item& item = items_[handle];
  item.payload = payload;
  const bool clamp = BigUInt::Compare(pnum, pden) >= 0;
  item.pnum = clamp ? pden : pnum;
  item.pden = pden;
  item.live = true;
  ++count_;

  if (item.pnum.IsZero()) {
    item.bucket = -1;  // never sampled; parked outside the buckets
    return handle;
  }
  // bucket j: p in (2^{-j-1}, 2^{-j}]  <=>  j = floor(log2(pden/pnum)),
  // with the exact-power boundary landing in the shallower bucket.
  int j = BigRational(item.pden, item.pnum).FloorLog2();
  if (j >= kMaxBucket) {
    item.bucket = -1;
    return handle;
  }
  DPSS_CHECK(j >= 0);
  item.bucket = j;
  if (buckets_[j].empty()) nonempty_.Insert(j);
  item.pos = static_cast<uint32_t>(buckets_[j].size());
  buckets_[j].push_back(handle);
  return handle;
}

void BucketJumpSampler::Erase(uint64_t handle) {
  DPSS_CHECK(handle < items_.size() && items_[handle].live);
  Item& item = items_[handle];
  if (item.bucket >= 0) {
    std::vector<uint64_t>& b = buckets_[item.bucket];
    const uint32_t last = static_cast<uint32_t>(b.size() - 1);
    if (item.pos != last) {
      b[item.pos] = b[last];
      items_[b[item.pos]].pos = item.pos;
    }
    b.pop_back();
    if (b.empty()) nonempty_.Erase(item.bucket);
  }
  item.live = false;
  item.bucket = -1;
  free_.push_back(handle);
  --count_;
}

std::vector<uint64_t> BucketJumpSampler::Sample(RandomEngine& rng) const {
  std::vector<uint64_t> out;
  const BigUInt one(uint64_t{1});
  for (int j = nonempty_.Min(); j != -1; j = nonempty_.Next(j)) {
    const std::vector<uint64_t>& b = buckets_[j];
    const uint64_t n = b.size();
    // Visit potential items with coin 2^-j, accept with p_x·2^j in [1/2, 1].
    const BigUInt coin_den = BigUInt::PowerOfTwo(j);
    uint64_t k = j == 0 ? 1 : SampleBoundedGeo(one, coin_den, n + 1, rng);
    while (k <= n) {
      const Item& item = items_[b[k - 1]];
      const BigUInt num = item.pnum << j;
      if (SampleBernoulliRational(num, item.pden, rng)) {
        out.push_back(item.payload);
      }
      k += j == 0 ? 1 : SampleBoundedGeo(one, coin_den, n + 1, rng);
    }
  }
  return out;
}

}  // namespace dpss
