#include "baseline/naive_dpss.h"

#include "random/bernoulli.h"

namespace dpss {

NaiveDpss::NaiveDpss(const std::vector<uint64_t>& weights, bool exact)
    : exact_(exact) {
  table_.weights.reserve(weights.size());
  for (uint64_t w : weights) Insert(w);
}

NaiveDpss::ItemId NaiveDpss::Insert(uint64_t weight) {
  return table_.InsertWeightValue(weight);
}

void NaiveDpss::Erase(ItemId id) {
  DPSS_CHECK(Contains(id));
  table_.EraseId(id);
}

void NaiveDpss::SetWeight(ItemId id, uint64_t weight) {
  DPSS_CHECK(Contains(id));
  table_.SetWeightValue(id, weight);
}

uint64_t NaiveDpss::GetWeight(ItemId id) const {
  DPSS_CHECK(Contains(id));
  return table_.WeightOf(id);
}

std::vector<NaiveDpss::ItemId> NaiveDpss::Sample(Rational64 alpha,
                                                 Rational64 beta,
                                                 RandomEngine& rng) const {
  DPSS_CHECK(alpha.den > 0 && beta.den > 0);
  // W = (alpha.num·Σw·beta.den + beta.num·alpha.den) / (alpha.den·beta.den).
  const BigUInt wnum =
      BigUInt::MulU64(
          BigUInt::MulU64(BigUInt::FromU128(table_.total), alpha.num),
          beta.den) +
      BigUInt::FromU128(static_cast<unsigned __int128>(beta.num) * alpha.den);
  const BigUInt wden = BigUInt::FromU128(
      static_cast<unsigned __int128>(alpha.den) * beta.den);

  std::vector<ItemId> out;
  if (wnum.IsZero()) {
    for (uint64_t slot = 0; slot < table_.weights.size(); ++slot) {
      if (table_.live[slot] && table_.weights[slot] != 0) {
        out.push_back(MakeItemId(slot, table_.gens[slot]));
      }
    }
    return out;
  }

  const double inv_w = exact_ ? 0.0 : BigRational(wden, wnum).ToDouble();
  for (uint64_t slot = 0; slot < table_.weights.size(); ++slot) {
    if (!table_.live[slot] || table_.weights[slot] == 0) continue;
    bool hit;
    if (exact_) {
      hit = SampleBernoulliRational(
          BigUInt::MulU64(wden, table_.weights[slot]), wnum, rng);
    } else {
      const double p = static_cast<double>(table_.weights[slot]) * inv_w;
      hit = rng.NextDouble() < p;
    }
    if (hit) out.push_back(MakeItemId(slot, table_.gens[slot]));
  }
  return out;
}

}  // namespace dpss
