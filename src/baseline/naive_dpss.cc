#include "baseline/naive_dpss.h"

#include "random/bernoulli.h"

namespace dpss {

NaiveDpss::NaiveDpss(const std::vector<uint64_t>& weights, bool exact)
    : exact_(exact) {
  weights_.reserve(weights.size());
  for (uint64_t w : weights) Insert(w);
}

NaiveDpss::ItemId NaiveDpss::Insert(uint64_t weight) {
  ItemId id;
  if (!free_.empty()) {
    id = free_.back();
    free_.pop_back();
    weights_[id] = weight;
    live_[id] = true;
  } else {
    id = weights_.size();
    weights_.push_back(weight);
    live_.push_back(true);
  }
  total_weight_ = total_weight_ + BigUInt(weight);
  ++count_;
  return id;
}

void NaiveDpss::Erase(ItemId id) {
  DPSS_CHECK(Contains(id));
  total_weight_ = BigUInt::Sub(total_weight_, BigUInt(weights_[id]));
  live_[id] = false;
  free_.push_back(id);
  --count_;
}

void NaiveDpss::SetWeight(ItemId id, uint64_t weight) {
  DPSS_CHECK(Contains(id));
  total_weight_ = BigUInt::Sub(total_weight_, BigUInt(weights_[id])) +
                  BigUInt(weight);
  weights_[id] = weight;
}

std::vector<NaiveDpss::ItemId> NaiveDpss::Sample(Rational64 alpha,
                                                 Rational64 beta,
                                                 RandomEngine& rng) const {
  DPSS_CHECK(alpha.den > 0 && beta.den > 0);
  // W = (alpha.num·Σw·beta.den + beta.num·alpha.den) / (alpha.den·beta.den).
  const BigUInt wnum =
      BigUInt::MulU64(BigUInt::MulU64(total_weight_, alpha.num), beta.den) +
      BigUInt::FromU128(static_cast<unsigned __int128>(beta.num) * alpha.den);
  const BigUInt wden = BigUInt::FromU128(
      static_cast<unsigned __int128>(alpha.den) * beta.den);

  std::vector<ItemId> out;
  if (wnum.IsZero()) {
    for (ItemId id = 0; id < weights_.size(); ++id) {
      if (live_[id] && weights_[id] != 0) out.push_back(id);
    }
    return out;
  }

  const double inv_w = exact_ ? 0.0 : BigRational(wden, wnum).ToDouble();
  for (ItemId id = 0; id < weights_.size(); ++id) {
    if (!live_[id] || weights_[id] == 0) continue;
    bool hit;
    if (exact_) {
      hit = SampleBernoulliRational(BigUInt::MulU64(wden, weights_[id]), wnum,
                                    rng);
    } else {
      const double p = static_cast<double>(weights_[id]) * inv_w;
      hit = rng.NextDouble() < p;
    }
    if (hit) out.push_back(id);
  }
  return out;
}

}  // namespace dpss
