// NaiveDpss — the trivial DPSS baseline.
//
// Stores the items in a flat array; each query walks every item and flips
// one exact Bernoulli coin per item. O(1) updates, O(n) queries, O(n) space.
// Used by the benchmark harness (experiment E1) to exhibit the query-time
// separation from HALT, and by integration tests as an independent
// implementation of the same sampling semantics.

#ifndef DPSS_BASELINE_NAIVE_DPSS_H_
#define DPSS_BASELINE_NAIVE_DPSS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "baseline/flat_table.h"
#include "bigint/big_uint.h"
#include "bigint/rational.h"
#include "core/item_id.h"
#include "core/weight.h"
#include "util/random.h"

namespace dpss {

class NaiveDpss {
 public:
  using ItemId = dpss::ItemId;

  // `exact` selects exact rational coins (default); false uses double
  // arithmetic (biased by ~1 ulp, an order of magnitude faster) for
  // benchmarking the "what people actually write" variant.
  explicit NaiveDpss(bool exact = true) : exact_(exact) {}
  explicit NaiveDpss(const std::vector<uint64_t>& weights, bool exact = true);

  ItemId Insert(uint64_t weight);
  void Erase(ItemId id);
  // In-place weight update (the flat array makes this trivially O(1));
  // keeps the baseline API aligned with DpssSampler::SetWeight so the test
  // and benchmark harnesses can mirror update sequences one-to-one.
  void SetWeight(ItemId id, uint64_t weight);
  // Ids follow the library-wide slot+generation encoding (core/item_id.h):
  // a stale id kept past Erase fails here instead of aliasing the item
  // that later reuses the slot — the same contract as DpssSampler.
  bool Contains(ItemId id) const { return table_.ContainsId(id); }
  uint64_t GetWeight(ItemId id) const;

  uint64_t size() const { return table_.count; }
  unsigned __int128 total_weight() const { return table_.total; }
  size_t ApproxMemoryBytes() const {
    return table_.ApproxBytes() + sizeof(*this);
  }

  // Snapshot hooks for the interface backend (baseline/backends.cc): the
  // flat table is the entire item state, so serializing it captures the
  // sampler exactly.
  const FlatTable& table() const { return table_; }
  // Mutable access for the arena-image snapshot path (collection clears
  // the table's dirty-page baseline; the item state is untouched).
  FlatTable* mutable_table() { return &table_; }
  void RestoreTable(FlatTable&& t) { table_ = std::move(t); }

  std::vector<ItemId> Sample(Rational64 alpha, Rational64 beta,
                             RandomEngine& rng) const;

 private:
  bool exact_;
  FlatTable table_;
};

}  // namespace dpss

#endif  // DPSS_BASELINE_NAIVE_DPSS_H_
