// NaiveDpss — the trivial DPSS baseline.
//
// Stores the items in a flat array; each query walks every item and flips
// one exact Bernoulli coin per item. O(1) updates, O(n) queries, O(n) space.
// Used by the benchmark harness (experiment E1) to exhibit the query-time
// separation from HALT, and by integration tests as an independent
// implementation of the same sampling semantics.

#ifndef DPSS_BASELINE_NAIVE_DPSS_H_
#define DPSS_BASELINE_NAIVE_DPSS_H_

#include <cstdint>
#include <vector>

#include "bigint/big_uint.h"
#include "bigint/rational.h"
#include "core/weight.h"
#include "util/random.h"

namespace dpss {

class NaiveDpss {
 public:
  using ItemId = uint64_t;

  // `exact` selects exact rational coins (default); false uses double
  // arithmetic (biased by ~1 ulp, an order of magnitude faster) for
  // benchmarking the "what people actually write" variant.
  explicit NaiveDpss(bool exact = true) : exact_(exact) {}
  explicit NaiveDpss(const std::vector<uint64_t>& weights, bool exact = true);

  ItemId Insert(uint64_t weight);
  void Erase(ItemId id);
  // In-place weight update (the flat array makes this trivially O(1));
  // keeps the baseline API aligned with DpssSampler::SetWeight so the test
  // and benchmark harnesses can mirror update sequences one-to-one.
  void SetWeight(ItemId id, uint64_t weight);
  bool Contains(ItemId id) const {
    return id < live_.size() && live_[id];
  }

  uint64_t size() const { return count_; }
  const BigUInt& total_weight() const { return total_weight_; }

  std::vector<ItemId> Sample(Rational64 alpha, Rational64 beta,
                             RandomEngine& rng) const;

 private:
  bool exact_;
  std::vector<uint64_t> weights_;
  std::vector<bool> live_;
  std::vector<ItemId> free_;
  uint64_t count_ = 0;
  BigUInt total_weight_;
};

}  // namespace dpss

#endif  // DPSS_BASELINE_NAIVE_DPSS_H_
