// The one-level Bucket-Grouping Structure, BG-Str (paper §4.1).
//
// Elements (real items at level 1, synthetic next-level items at levels 2/3)
// are assigned to bucket i when their weight lies in [2^i, 2^{i+1}), and
// buckets are organised into groups of `group_width` consecutive indices.
// Non-empty buckets and non-empty groups are maintained in the Fact 2.1
// bitmap structures, so activation, deactivation, predecessor and successor
// are all O(1).
//
// Storage is cache-line conscious AND relocatable: the entry slab, the
// per-bucket header array, and the two Fact 2.1 bitmap word blocks all live
// inside a dpss::Arena (core/arena.h), referenced purely by arena offsets.
// The structure either owns a private arena or shares an external one (the
// HALT hierarchy places all of its instances in a single arena), and every
// mutation marks the touched pages dirty, so the owning sampler can emit
// page-granular incremental snapshots of the whole region.
//
// All entries live in one 64-byte-aligned slab of 16-byte PackedEntry
// records (four per cache line), and each bucket owns a power-of-two-sized
// extent of that slab. The per-bucket metadata (size, capacity, extent
// offset) is a dense 16-byte header array scanned in the same order as the
// bitmap words, so one level step of the query walk touches one header line
// plus the extent it points at — both of which callers can software-prefetch
// via PrefetchBucket while working on the previous bucket.
//
// The 16-byte packing is lossless: within bucket b every weight mult·2^exp
// satisfies BucketIndex() == exp + floor(log2 mult) == b, so the exponent is
// implied, exp == b + 1 - bitlen(mult), and only (handle, mult) is stored.
//
// Each bucket keeps its entries dense with swap-with-last deletion; the
// owner is informed of relocations through RelocationListener so it can keep
// handle→Location maps current (this replaces the paper's pointer/menu
// arrays of Appendix B). When a bucket outgrows its extent it moves to a
// fresh extent of twice the capacity and the old extent goes on a per-size
// free list for reuse, so steady-state churn never touches the heap. The
// free lists themselves are rebuildable metadata and stay on the heap — the
// arena holds only the position-independent state.

#ifndef DPSS_CORE_BUCKET_STRUCTURE_H_
#define DPSS_CORE_BUCKET_STRUCTURE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/arena.h"
#include "core/weight.h"
#include "util/bits.h"
#include "util/check.h"
#include "wordram/bitmap_sorted_list.h"

namespace dpss {

class BucketStructure {
 public:
  struct Location {
    int bucket = -1;
    uint32_t pos = 0;
    bool IsValid() const { return bucket >= 0; }
  };

  // Materialized entry (accessors / collection helpers).
  struct Entry {
    uint64_t handle = 0;
    Weight weight;
  };

  // Slab record: handle + weight multiplier; the weight exponent is implied
  // by the bucket index (see ExpFor). Exactly four records per cache line.
  struct PackedEntry {
    uint64_t handle;
    uint64_t mult;
  };
  static_assert(sizeof(PackedEntry) == 16, "four packed entries per line");

  // Implied exponent of a weight with multiplier `mult` stored in bucket
  // `bucket`: BucketIndex == exp + bitlen(mult) - 1 == bucket.
  static uint32_t ExpFor(int bucket, uint64_t mult) {
    DPSS_DCHECK(mult != 0 && bucket + 1 >= BitLength(mult));
    return static_cast<uint32_t>(bucket + 1 - BitLength(mult));
  }
  static Weight WeightFor(int bucket, uint64_t mult) {
    return Weight(mult, ExpFor(bucket, mult));
  }

  // Span-style read view of one bucket's extent. Iteration yields
  // PackedEntry; WeightAt / EntryAt reconstruct the implied exponent. The
  // view is invalidated by any mutation of the structure (Insert / Erase /
  // SetWeight), exactly like the iterator rules of the old vector storage.
  class BucketView {
   public:
    BucketView(const PackedEntry* data, uint32_t size, int bucket)
        : data_(data), size_(size), bucket_(bucket) {}

    uint32_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    int bucket() const { return bucket_; }
    const PackedEntry* data() const { return data_; }
    const PackedEntry* begin() const { return data_; }
    const PackedEntry* end() const { return data_ + size_; }
    const PackedEntry& operator[](uint32_t i) const {
      DPSS_DCHECK(i < size_);
      return data_[i];
    }
    Weight WeightAt(uint32_t i) const {
      return WeightFor(bucket_, (*this)[i].mult);
    }
    Entry EntryAt(uint32_t i) const {
      return Entry{(*this)[i].handle, WeightAt(i)};
    }

   private:
    const PackedEntry* data_;
    uint32_t size_;
    int bucket_;
  };

  // Receives a callback whenever an entry is moved to a new position by a
  // swap-with-last deletion.
  class RelocationListener {
   public:
    virtual ~RelocationListener() = default;
    virtual void OnRelocate(uint64_t handle, Location loc) = 0;
  };

  // Slab accounting for ApproxMemoryBytes / BENCH_memory: how much of the
  // arena is allocated, reserved by live extents, actually occupied by
  // entries, or parked on the free lists awaiting reuse. Structures that own
  // their arena also report its page footprint and dirty-page count; for a
  // shared arena those fields stay zero here and the sharing owner reports
  // them once (see HaltStructure::SlabStatsTotal).
  struct SlabStats {
    size_t capacity_bytes = 0;  // whole slab allocation
    size_t extent_bytes = 0;    // bytes inside live bucket extents
    size_t live_bytes = 0;      // bytes of stored entries (size * 16)
    size_t free_bytes = 0;      // bytes parked on the extent free lists
    size_t arena_page_count = 0;   // 4 KiB pages backing the whole arena
    size_t arena_dirty_pages = 0;  // pages dirtied since the last image
    // Fraction of live-extent bytes holding entries (1.0 for empty slab).
    double Occupancy() const {
      return extent_bytes == 0
                 ? 1.0
                 : static_cast<double>(live_bytes) / extent_bytes;
    }
    // Fraction of the slab that is neither live data nor reusable free
    // extents (slack inside extents + the unbumped arena tail).
    double Fragmentation() const {
      return capacity_bytes == 0
                 ? 0.0
                 : static_cast<double>(capacity_bytes - live_bytes -
                                       free_bytes) /
                       capacity_bytes;
    }
  };

  // `universe` bounds the bucket indices (exclusive); `group_width` is the
  // paper's log2(N). `listener` may be null if the owner never erases.
  // `arena` designates an external shared arena for the storage; when null
  // the structure owns a private one. An external arena must outlive the
  // structure and be address-stable.
  BucketStructure(int universe, int group_width, RelocationListener* listener,
                  Arena* arena = nullptr);
  ~BucketStructure() = default;

  BucketStructure(const BucketStructure&) = delete;
  BucketStructure& operator=(const BucketStructure&) = delete;

  int universe() const { return universe_; }
  int group_width() const { return group_width_; }
  int num_groups() const { return num_groups_; }
  uint64_t size() const { return size_; }
  bool Empty() const { return size_ == 0; }

  int GroupOfBucket(int bucket) const { return bucket / group_width_; }

  // Inserts an element with a non-zero weight; returns its location.
  Location Insert(uint64_t handle, Weight w);

  // Removes the entry at `loc`. The entry swapped into its place (if any)
  // is reported through the listener.
  void Erase(Location loc);

  // Replaces the weight of the entry at `loc` in place. The new weight must
  // map to the same bucket as the old one, so the entry does not move, no
  // bucket size changes, and no relocation is reported. O(1).
  void SetWeight(Location loc, Weight w);

  Entry EntryAt(Location loc) const {
    DPSS_DCHECK(loc.IsValid() && loc.bucket < universe_);
    const BucketHeader& h = headers()[loc.bucket];
    DPSS_DCHECK(loc.pos < h.size);
    const PackedEntry& pe = slab()[h.offset + loc.pos];
    return Entry{pe.handle, WeightFor(loc.bucket, pe.mult)};
  }

  uint64_t BucketSize(int bucket) const { return headers()[bucket].size; }
  BucketView Bucket(int bucket) const {
    const BucketHeader& h = headers()[bucket];
    return BucketView(slab() + h.offset, h.size, bucket);
  }

  // Issues a software prefetch for the bucket's header-adjacent extent so a
  // caller can overlap the memory latency of the NEXT bucket with work on
  // the current one. A hint only; never required for correctness.
  void PrefetchBucket(int bucket) const {
    const BucketHeader& h = headers()[bucket];
    __builtin_prefetch(slab() + h.offset, /*rw=*/0, /*locality=*/3);
  }

  BitmapConstRef nonempty_buckets() const {
    return BitmapConstRef(bitmap_words(0), universe_);
  }
  BitmapConstRef nonempty_groups() const {
    return BitmapConstRef(bitmap_words(1), num_groups_);
  }

  // Appends all entries in non-empty buckets with index <= max_bucket to
  // `out`, in bucket order.
  void CollectUpTo(int max_bucket, std::vector<Entry>* out) const;
  // Appends all entries in non-empty buckets with index >= min_bucket.
  void CollectFrom(int min_bucket, std::vector<Entry>* out) const;

  // Copy-free variants for the query paths that only need handles (the
  // certain instance and W == 0): reserve once, then stream the handles
  // straight out of the slab, prefetching the next extent per bucket.
  void AppendHandlesUpTo(int max_bucket, std::vector<uint64_t>* out) const;
  void AppendHandlesFrom(int min_bucket, std::vector<uint64_t>* out) const;

  // Slab occupancy / fragmentation counters (see SlabStats).
  SlabStats slab_stats() const;
  // Total heap footprint of the structure in bytes, for ApproxMemoryBytes
  // estimates. Includes the arena only when privately owned; a shared
  // arena's footprint is the sharing owner's to count (once).
  size_t MemoryBytes() const;

  // The arena holding this structure's slab/headers/bitmaps.
  const Arena& arena() const { return *arena_; }

 private:
  // Dense per-bucket extent descriptor; four per cache line, scanned in the
  // same index order as the bitmap words above it.
  struct BucketHeader {
    uint64_t offset = 0;    // extent start, in entries from the slab base
    uint32_t size = 0;      // live entries
    uint32_t capacity = 0;  // extent capacity (0 or kMinExtentEntries << c)
  };
  static_assert(sizeof(BucketHeader) == 16, "four headers per line");

  // Smallest extent: one full cache line of entries.
  static constexpr uint32_t kMinExtentEntries = 4;
  // Size classes cover capacities kMinExtentEntries << c; 40 classes allow
  // ~2^41 entries per bucket, far beyond any supported capacity.
  static constexpr int kNumSizeClasses = 40;

  static int SizeClass(uint32_t capacity) {
    DPSS_DCHECK(capacity >= kMinExtentEntries && IsPowerOfTwo(capacity));
    return FloorLog2(capacity / kMinExtentEntries);
  }

  // Arena views of the three storage blocks. Recomputed from the base on
  // every access: the arena may move under us when any sharer grows it.
  BucketHeader* headers() { return arena_->PtrAt<BucketHeader>(headers_off_); }
  const BucketHeader* headers() const {
    return arena_->PtrAt<BucketHeader>(headers_off_);
  }
  PackedEntry* slab() { return arena_->PtrAt<PackedEntry>(slab_off_); }
  const PackedEntry* slab() const {
    return arena_->PtrAt<PackedEntry>(slab_off_);
  }
  // Word block `which` (0 = buckets, 1 = groups), one cache line each.
  const uint64_t* bitmap_words(int which) const {
    return arena_->PtrAt<uint64_t>(bitmaps_off_ + which * kBitmapBlockBytes);
  }
  BitmapRef buckets_bitmap() {
    return BitmapRef(arena_->PtrAt<uint64_t>(bitmaps_off_), universe_);
  }
  BitmapRef groups_bitmap() {
    return BitmapRef(arena_->PtrAt<uint64_t>(bitmaps_off_ + kBitmapBlockBytes),
                     num_groups_);
  }

  // Dirty-page bookkeeping for the mutators. Over-marking is harmless;
  // under-marking would corrupt incremental snapshots.
  void MarkHeaderDirty(int bucket) {
    arena_->MarkDirty(headers_off_ + bucket * sizeof(BucketHeader),
                      sizeof(BucketHeader));
  }
  void MarkEntriesDirty(uint64_t first_entry, uint64_t count) {
    arena_->MarkDirty(slab_off_ + first_entry * sizeof(PackedEntry),
                      count * sizeof(PackedEntry));
  }
  void MarkBitmapsDirty() {
    arena_->MarkDirty(bitmaps_off_, 2 * kBitmapBlockBytes);
  }

  // One cache line of bitmap words per Fact 2.1 set.
  static constexpr uint64_t kBitmapBlockBytes =
      kBitmapWords * sizeof(uint64_t);
  static_assert(kBitmapBlockBytes == Arena::kAlignment,
                "each bitmap block is exactly one cache line");

  // Returns the offset (in entries) of an extent with the given power-of-two
  // capacity, reusing a free-listed extent when one exists.
  uint64_t AllocExtent(uint32_t capacity);
  // Grows the slab so at least `needed` more entries fit.
  void GrowSlab(uint64_t needed);
  // Moves bucket `bucket` to a fresh extent of twice its capacity.
  void GrowBucket(int bucket);

  int universe_;
  int group_width_;
  int num_groups_;
  uint64_t size_ = 0;
  // Position-independent storage: a privately owned arena, or a shared
  // external one (owned_arena_ empty, arena_ borrowed).
  std::unique_ptr<Arena> owned_arena_;
  Arena* arena_;
  uint64_t bitmaps_off_ = 0;  // 2 cache lines: buckets words, groups words
  uint64_t headers_off_ = 0;  // universe_ * sizeof(BucketHeader)
  uint64_t slab_off_ = 0;     // current slab extent (bytes; 0 = none yet)
  uint64_t slab_used_ = 0;    // bump pointer, in entries
  uint64_t slab_capacity_ = 0;  // slab extent size, in entries
  // Freed extents by size class (entry offsets), reused before bumping.
  // Heap-resident on purpose: rebuildable metadata, not snapshot state.
  std::vector<std::vector<uint64_t>> free_extents_;
  size_t free_extent_entries_ = 0;  // total entries parked on free lists
  RelocationListener* listener_;
};

}  // namespace dpss

#endif  // DPSS_CORE_BUCKET_STRUCTURE_H_
