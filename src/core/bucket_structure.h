// The one-level Bucket-Grouping Structure, BG-Str (paper §4.1).
//
// Elements (real items at level 1, synthetic next-level items at levels 2/3)
// are assigned to bucket i when their weight lies in [2^i, 2^{i+1}), and
// buckets are organised into groups of `group_width` consecutive indices.
// Non-empty buckets and non-empty groups are maintained in the Fact 2.1
// bitmap structures, so activation, deactivation, predecessor and successor
// are all O(1).
//
// Each bucket stores its entries in a dense array with swap-with-last
// deletion; the owner is informed of relocations through RelocationListener
// so it can keep handle→Location maps current (this replaces the paper's
// pointer/menu arrays of Appendix B).

#ifndef DPSS_CORE_BUCKET_STRUCTURE_H_
#define DPSS_CORE_BUCKET_STRUCTURE_H_

#include <cstdint>
#include <vector>

#include "core/weight.h"
#include "util/check.h"
#include "wordram/bitmap_sorted_list.h"

namespace dpss {

class BucketStructure {
 public:
  struct Location {
    int bucket = -1;
    uint32_t pos = 0;
    bool IsValid() const { return bucket >= 0; }
  };

  struct Entry {
    uint64_t handle = 0;
    Weight weight;
  };

  // Receives a callback whenever an entry is moved to a new position by a
  // swap-with-last deletion.
  class RelocationListener {
   public:
    virtual ~RelocationListener() = default;
    virtual void OnRelocate(uint64_t handle, Location loc) = 0;
  };

  // `universe` bounds the bucket indices (exclusive); `group_width` is the
  // paper's log2(N). `listener` may be null if the owner never erases.
  BucketStructure(int universe, int group_width, RelocationListener* listener);

  BucketStructure(const BucketStructure&) = delete;
  BucketStructure& operator=(const BucketStructure&) = delete;

  int universe() const { return universe_; }
  int group_width() const { return group_width_; }
  int num_groups() const { return num_groups_; }
  uint64_t size() const { return size_; }
  bool Empty() const { return size_ == 0; }

  int GroupOfBucket(int bucket) const { return bucket / group_width_; }

  // Inserts an element with a non-zero weight; returns its location.
  Location Insert(uint64_t handle, Weight w);

  // Removes the entry at `loc`. The entry swapped into its place (if any)
  // is reported through the listener.
  void Erase(Location loc);

  // Replaces the weight of the entry at `loc` in place. The new weight must
  // map to the same bucket as the old one, so the entry does not move, no
  // bucket size changes, and no relocation is reported. O(1).
  void SetWeight(Location loc, Weight w);

  const Entry& EntryAt(Location loc) const {
    DPSS_DCHECK(loc.IsValid() && loc.bucket < universe_);
    DPSS_DCHECK(loc.pos < buckets_[loc.bucket].size());
    return buckets_[loc.bucket][loc.pos];
  }

  uint64_t BucketSize(int bucket) const { return buckets_[bucket].size(); }
  const std::vector<Entry>& Bucket(int bucket) const {
    return buckets_[bucket];
  }

  const BitmapSortedList& nonempty_buckets() const { return buckets_bitmap_; }
  const BitmapSortedList& nonempty_groups() const { return groups_bitmap_; }

  // Appends all entries in non-empty buckets with index <= max_bucket to
  // `out`, in bucket order.
  void CollectUpTo(int max_bucket, std::vector<Entry>* out) const;
  // Appends all entries in non-empty buckets with index >= min_bucket.
  void CollectFrom(int min_bucket, std::vector<Entry>* out) const;

 private:
  int universe_;
  int group_width_;
  int num_groups_;
  uint64_t size_ = 0;
  std::vector<std::vector<Entry>> buckets_;
  BitmapSortedList buckets_bitmap_;
  BitmapSortedList groups_bitmap_;
  RelocationListener* listener_;
};

}  // namespace dpss

#endif  // DPSS_CORE_BUCKET_STRUCTURE_H_
