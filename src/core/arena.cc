// Arena growth, release, and image collection. The header keeps the
// offset/dirty accessors inline (they sit on the update hot paths); the
// page-sized operations live here.

#include "core/arena.h"

#include <new>

namespace dpss {

namespace {

char* AllocPages(uint64_t bytes) {
  return static_cast<char*>(
      ::operator new(bytes, std::align_val_t{Arena::kPageSize}));
}

void FreePages(char* p, uint64_t bytes) {
  ::operator delete(p, bytes, std::align_val_t{Arena::kPageSize});
}

}  // namespace

void Arena::Grow(uint64_t min_capacity) {
  uint64_t cap = capacity_ == 0 ? 4 * kPageSize : capacity_ * 2;
  if (cap < min_capacity) cap = PageRoundUp(min_capacity);
  char* fresh = AllocPages(cap);
  if (used_ != 0) std::memcpy(fresh, base_, used_);
  std::memset(fresh + used_, 0, cap - used_);
  Release();
  base_ = fresh;
  capacity_ = cap;
  owned_ = true;
  dirty_.resize(DirtyWords(cap / kPageSize), 0);
}

void Arena::Release() {
  if (owned_ && base_ != nullptr) FreePages(base_, capacity_);
  base_ = nullptr;
  keepalive_.reset();
}

void Arena::ResetForLoad(uint64_t used_bytes) {
  Release();
  used_ = 0;
  capacity_ = 0;
  owned_ = true;
  dirty_.clear();
  if (used_bytes != 0) {
    Grow(used_bytes);
    used_ = used_bytes;
  }
  MarkAllDirty();
}

void Arena::GrowForLoad(uint64_t used_bytes) {
  DPSS_CHECK(used_bytes >= used_);
  if (used_bytes > capacity_) Grow(used_bytes);
  const uint64_t old_used = used_;
  used_ = used_bytes;
  MarkDirty(old_used, used_bytes - old_used);
}

void CollectArenaPages(Arena* arena, ArenaImageMode mode, ArenaImage* out) {
  out->used_bytes = arena->used_bytes();
  out->page_count = arena->page_count();
  out->pages.clear();
  const char* base = arena->base();
  const uint64_t pages = out->page_count;
  const uint64_t tail = arena->used_bytes();
  for (uint64_t p = 0; p < pages; ++p) {
    if (mode == ArenaImageMode::kDirty && !arena->PageDirty(p)) continue;
    const uint64_t start = p * Arena::kPageSize;
    const uint64_t len =
        start + Arena::kPageSize <= tail ? Arena::kPageSize : tail - start;
    std::string page(Arena::kPageSize, '\0');
    std::memcpy(page.data(), base + start, len);
    out->pages.emplace_back(p, std::move(page));
  }
  arena->ClearDirty();
}

}  // namespace dpss
