// Sampler interface defaults, the backend registry, and the "halt" backend
// (the paper's HALT structure behind the interface). The baseline backends
// live in baseline/backends.cc; the registry pulls them in explicitly so a
// static link cannot drop their registrations.

#include "core/sampler.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <numeric>
#include <utility>

#include "concurrent/sharded_sampler.h"
#include "core/dpss_sampler.h"
#include "core/halt.h"
#include "random/bernoulli.h"
#include "util/little_endian.h"

namespace dpss {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "kOk";
    case StatusCode::kInvalidId:
      return "kInvalidId";
    case StatusCode::kInvalidArgument:
      return "kInvalidArgument";
    case StatusCode::kWeightOverflow:
      return "kWeightOverflow";
    case StatusCode::kBadSnapshot:
      return "kBadSnapshot";
    case StatusCode::kUnsupported:
      return "kUnsupported";
    case StatusCode::kIoError:
      return "kIoError";
  }
  return "k?";
}

// --- Sampler defaults ----------------------------------------------------

Status Sampler::ValidateQueryArgs(Rational64 alpha, Rational64 beta,
                                  const void* out) {
  if (alpha.den == 0 || beta.den == 0) {
    return InvalidArgumentError("query parameter with zero denominator");
  }
  if (out == nullptr) {
    return InvalidArgumentError("null output pointer");
  }
  return Status::Ok();
}

Status Sampler::InsertBatch(std::span<const uint64_t> weights,
                            std::vector<ItemId>* ids) {
  if (ids != nullptr) ids->reserve(ids->size() + weights.size());
  for (const uint64_t w : weights) {
    StatusOr<ItemId> id = Insert(w);
    if (!id.ok()) return id.status();
    if (ids != nullptr) ids->push_back(*id);
  }
  return Status::Ok();
}

Status Sampler::ApplyBatch(std::span<const Op> ops,
                           std::vector<ItemId>* inserted_ids,
                           size_t* num_applied) {
  if (num_applied != nullptr) *num_applied = 0;
  for (const Op& op : ops) {
    switch (op.kind) {
      case Op::Kind::kInsert: {
        StatusOr<ItemId> id = InsertWeight(op.weight);
        if (!id.ok()) return id.status();
        if (inserted_ids != nullptr) inserted_ids->push_back(*id);
        break;
      }
      case Op::Kind::kErase: {
        Status st = Erase(op.id);
        if (!st.ok()) return st;
        break;
      }
      case Op::Kind::kSetWeight: {
        Status st = SetWeight(op.id, op.weight);
        if (!st.ok()) return st;
        break;
      }
      case Op::Kind::kDecay: {
        Status st = Decay(op.DecayFactor());
        if (!st.ok()) return st;
        break;
      }
      default:
        return InvalidArgumentError("malformed Op record");
    }
    if (num_applied != nullptr) ++*num_applied;
  }
  return Status::Ok();
}

StatusOr<std::vector<ItemId>> Sampler::Sample(Rational64 alpha,
                                              Rational64 beta) {
  std::vector<ItemId> out;
  Status st = SampleInto(alpha, beta, &out);
  if (!st.ok()) return st;
  return out;
}

StatusOr<double> Sampler::ExpectedSampleSize(Rational64 /*alpha*/,
                                             Rational64 /*beta*/) const {
  return UnsupportedError("backend does not compute expected sample sizes");
}

Status Sampler::ValidateDecayFactor(Rational64 factor) {
  if (factor.den == 0) {
    return InvalidArgumentError("decay factor with zero denominator");
  }
  if (factor.num == 0) {
    return InvalidArgumentError("decay factor must be positive");
  }
  if (factor.num > factor.den) {
    return InvalidArgumentError("decay factor must not exceed 1");
  }
  return Status::Ok();
}

Status Sampler::Decay(Rational64 factor) {
  if (!capabilities().decay) {
    return UnsupportedError("backend does not implement Decay");
  }
  Status st = ValidateDecayFactor(factor);
  if (!st.ok()) return st;
  if (factor.num == factor.den) return Status::Ok();
  std::vector<ItemRecord> items;
  st = DumpItems(&items);
  if (!st.ok()) return st;
  for (const ItemRecord& rec : items) {
    if (rec.weight.IsZero()) continue;
    st = SetWeight(rec.id,
                   FloorScaleWeight(rec.weight, factor.num, factor.den));
    if (!st.ok()) return st;
  }
  return Status::Ok();
}

Status Sampler::SampleDistinct(uint64_t k, std::vector<ItemId>* out) {
  if (!capabilities().sample_distinct) {
    return UnsupportedError("backend does not implement SampleDistinct");
  }
  return GenericSampleDistinct(k, fallback_rng_, out);
}

Status Sampler::GenericSampleDistinct(uint64_t k, RandomEngine& rng,
                                      std::vector<ItemId>* out) {
  if (out == nullptr) return InvalidArgumentError("null output pointer");
  out->clear();
  if (k == 0) return Status::Ok();

  // One WOR draw ∝ weight over the current (residual) item set. Two exact
  // sub-strategies, mixed by an outcome-independent rule so the mixture
  // stays exact:
  //
  //  * Singleton rejection over the backend's own (α, β) = (1, 0) query:
  //    P(output == {x}) = p_x·Π_{y≠x}(1 − p_y) with p_x = w_x/Σw. Accepting
  //    a singleton with one extra coin Ber(1 − p_x) multiplies that into
  //    p_x·Π_y(1 − p_y) — the x-independent product makes the accepted law
  //    exactly w_x/Σw. With (1, 0) no item is capped at p = 1 except when a
  //    single item carries all weight, which the round bound handles.
  //
  //  * Exact prefix-sum inversion over DumpItems: r uniform in [0, Σw),
  //    pick the item whose cumulative-weight interval contains r.
  //
  // Rejection is O(1 + μ) per round on "halt"-style backends; inversion is
  // the O(n) safety net after a fixed round budget (or immediately when the
  // backend cannot answer (1, 0) — a fixed-(α, β) baseline).
  auto draw_one = [&](const BigUInt& total,
                      std::vector<ItemId>* singleton,
                      std::vector<ItemRecord>* dump) -> StatusOr<ItemId> {
    const Rational64 kOne{1, 1}, kZero{0, 1};
    for (int round = 0; round < 16; ++round) {
      singleton->clear();
      Status qs = SampleInto(kOne, kZero, rng, singleton);
      if (!qs.ok()) {
        if (qs.code() == StatusCode::kUnsupported) break;
        return qs;
      }
      if (singleton->size() != 1) continue;
      StatusOr<Weight> w = GetWeight(singleton->front());
      if (!w.ok()) return w.status();
      const BigUInt wx = w->ToBigUInt();
      if (SampleBernoulliRational(total - wx, total, rng)) {
        return singleton->front();
      }
    }
    dump->clear();
    Status ds = DumpItems(dump);
    if (!ds.ok()) return ds;
    const BigUInt r = RandomBigBelow(total, rng);
    BigUInt cum;
    for (const ItemRecord& rec : *dump) {
      if (rec.weight.IsZero()) continue;
      cum = cum + rec.weight.ToBigUInt();
      if (r < cum) return rec.id;
    }
    return InvalidArgumentError("DumpItems disagrees with TotalWeight");
  };

  // Draw, park at weight 0 (so the next draw sees the residual set), and
  // restore every parked weight before returning — observably read-only
  // apart from the RNG state.
  std::vector<std::pair<ItemId, Weight>> parked;
  std::vector<ItemId> singleton;
  std::vector<ItemRecord> dump;
  Status st = Status::Ok();
  while (out->size() < k) {
    const BigUInt total = TotalWeight();
    if (total.IsZero()) break;
    StatusOr<ItemId> picked = draw_one(total, &singleton, &dump);
    if (!picked.ok()) {
      st = picked.status();
      break;
    }
    StatusOr<Weight> w = GetWeight(*picked);
    if (!w.ok()) {
      st = w.status();
      break;
    }
    Status ps = SetWeight(*picked, Weight());
    if (!ps.ok()) {
      st = ps;
      break;
    }
    parked.emplace_back(*picked, *w);
    out->push_back(*picked);
  }
  for (auto it = parked.rbegin(); it != parked.rend(); ++it) {
    Status rs = SetWeight(it->first, it->second);
    if (st.ok() && !rs.ok()) st = rs;
  }
  if (!st.ok()) out->clear();
  return st;
}

Status Sampler::TopK(uint64_t k, std::vector<ItemId>* out) const {
  if (!capabilities().top_k) {
    return UnsupportedError("backend does not implement TopK/ItemsAbove");
  }
  if (out == nullptr) return InvalidArgumentError("null output pointer");
  out->clear();
  if (k == 0) return Status::Ok();
  std::vector<ItemRecord> items;
  Status st = DumpItems(&items);
  if (!st.ok()) return st;
  items.erase(std::remove_if(
                  items.begin(), items.end(),
                  [](const ItemRecord& r) { return r.weight.IsZero(); }),
              items.end());
  const size_t take =
      static_cast<size_t>(std::min<uint64_t>(k, items.size()));
  std::partial_sort(items.begin(), items.begin() + take, items.end(),
                    [](const ItemRecord& a, const ItemRecord& b) {
                      return CompareWeights(a.weight, b.weight) > 0;
                    });
  out->reserve(take);
  for (size_t i = 0; i < take; ++i) out->push_back(items[i].id);
  return Status::Ok();
}

Status Sampler::ItemsAbove(Weight threshold,
                           std::vector<ItemId>* out) const {
  if (!capabilities().top_k) {
    return UnsupportedError("backend does not implement TopK/ItemsAbove");
  }
  if (out == nullptr) return InvalidArgumentError("null output pointer");
  out->clear();
  std::vector<ItemRecord> items;
  Status st = DumpItems(&items);
  if (!st.ok()) return st;
  for (const ItemRecord& rec : items) {
    if (rec.weight.IsZero()) continue;
    if (CompareWeights(rec.weight, threshold) >= 0) out->push_back(rec.id);
  }
  return Status::Ok();
}

Status Sampler::Serialize(std::string* /*out*/) const {
  return UnsupportedError("backend has no snapshot format");
}

Status Sampler::Restore(const std::string& /*bytes*/) {
  return UnsupportedError("backend has no snapshot format");
}

Status Sampler::DumpItems(std::vector<ItemRecord>* /*out*/) const {
  return UnsupportedError("backend cannot enumerate its items");
}

Status Sampler::CollectArenaImages(ArenaImageMode /*mode*/,
                                   std::vector<ArenaImage>* /*out*/) {
  return UnsupportedError("backend has no arena-image storage");
}

Status Sampler::RestoreFromArenas(std::vector<ArenaLoad>&& /*loads*/) {
  return UnsupportedError("backend has no arena-image storage");
}

// Sampler::SaveTo lives in persist/snapshot.cc next to the frame format it
// writes.

Status Sampler::CheckInvariants() const { return Status::Ok(); }

std::string Sampler::DebugString() const {
  return std::string(name()) + ": n=" + std::to_string(size()) +
         " total_weight=" + TotalWeight().ToDecimalString();
}

// --- "halt" backend ------------------------------------------------------

namespace {

// The full-featured backend: DpssSampler (paper Theorem 1.1) behind the
// interface. All validation that DpssSampler enforces with DPSS_CHECK at
// its concrete API boundary is performed here first and surfaced as Status.
//
// Lazy decay: Decay(factor) does not rewrite the stored weights — it folds
// into a pending rational factor f = dnum_/dden_ (gcd-reduced u64s,
// accumulated across calls). Observably:
//   * GetWeight / TotalWeight / DumpItems report FloorScaleWeight(stored,
//     f) — the same values an eager rewrite would produce;
//   * sampling applies f *exactly* (no flooring): p_x = stored_x·f /
//     (α·f·T + β) = stored_x / W' with W' = α·T + β/f, a pure rational
//     rewrite of the parameterized total (ComputeDecayedW), so queries
//     need no flush and stay O(1 + μ);
//   * Flush() materializes the floors into the stored weights. Since the
//     reported values are already the floored ones, a flush changes no
//     observable value — the invariance the sharded wrapper's per-shard
//     total bookkeeping relies on.
// Inserting or setting a *nonzero* weight under a pending factor flushes
// first (the new weight must not be scaled); parking at zero and erasing
// are scale-invariant and skip the flush.
class HaltBackend final : public Sampler {
 public:
  explicit HaltBackend(const SamplerSpec& spec)
      : options_{spec.seed, spec.deamortized_rebuild,
                 spec.migrate_per_update},
        sampler_(std::make_unique<DpssSampler>(options_)) {
    SeedFallbackRng(spec.seed);
  }

  const char* name() const override { return "halt"; }

  Capabilities capabilities() const override {
    Capabilities caps;
    caps.parameterized = true;
    caps.float_weights = true;
    caps.snapshots = true;
    caps.deep_invariants = true;
    caps.expected_size = true;
    caps.decay = true;
    caps.sample_distinct = true;
    caps.top_k = true;
    return caps;
  }

  StatusOr<ItemId> Insert(uint64_t weight) override {
    if (weight != 0 && HasPendingDecay()) Flush();
    InvalidateTotalCache();
    return sampler_->Insert(weight);
  }

  StatusOr<ItemId> InsertWeight(Weight w) override {
    Status st = ValidateWeight(w);
    if (!st.ok()) return st;
    if (!w.IsZero() && HasPendingDecay()) Flush();
    InvalidateTotalCache();
    return sampler_->InsertWeight(w);
  }

  Status Erase(ItemId id) override {
    if (!sampler_->Contains(id)) return InvalidIdError();
    sampler_->Erase(id);
    InvalidateTotalCache();
    return Status::Ok();
  }

  Status SetWeight(ItemId id, Weight w) override {
    if (!sampler_->Contains(id)) return InvalidIdError();
    Status st = ValidateWeight(w);
    if (!st.ok()) return st;
    // Parking at zero commutes with any pending factor (0·f = 0); a
    // nonzero weight is given in post-decay units, so the factor must be
    // materialized before it lands.
    if (!w.IsZero() && HasPendingDecay()) Flush();
    sampler_->SetWeight(id, w);
    InvalidateTotalCache();
    return Status::Ok();
  }

  Status Decay(Rational64 factor) override {
    Status st = ValidateDecayFactor(factor);
    if (!st.ok()) return st;
    uint64_t fn = factor.num, fd = factor.den;
    const uint64_t g = std::gcd(fn, fd);
    fn /= g;
    fd /= g;
    if (fn == fd) return Status::Ok();
    // Fold into the pending factor, cross-reduced so the u64 products only
    // overflow when the reduced factor genuinely needs more than 64 bits —
    // then the current factor is materialized first and the new one fits
    // verbatim.
    const uint64_t g1 = std::gcd(dnum_, fd);
    const uint64_t g2 = std::gcd(fn, dden_);
    const uint64_t a = dnum_ / g1, d2 = fd / g1;
    const uint64_t n2 = fn / g2, b = dden_ / g2;
    if (a > UINT64_MAX / n2 || b > UINT64_MAX / d2) {
      Flush();
      dnum_ = fn;
      dden_ = fd;
    } else {
      dnum_ = a * n2;
      dden_ = b * d2;
    }
    InvalidateTotalCache();
    return Status::Ok();
  }

  bool Contains(ItemId id) const override { return sampler_->Contains(id); }

  StatusOr<Weight> GetWeight(ItemId id) const override {
    if (!sampler_->Contains(id)) return InvalidIdError();
    return Scaled(sampler_->GetWeight(id));
  }

  uint64_t size() const override { return sampler_->size(); }

  BigUInt TotalWeight() const override {
    if (!HasPendingDecay()) return sampler_->total_weight();
    if (!total_cache_valid_) {
      BigUInt sum;
      sampler_->ForEachItem([&](ItemId, Weight w) {
        const Weight s = Scaled(w);
        if (!s.IsZero()) sum = sum + s.ToBigUInt();
      });
      total_cache_ = std::move(sum);
      total_cache_valid_ = true;
    }
    return total_cache_;
  }

  Status SampleInto(Rational64 alpha, Rational64 beta,
                    std::vector<ItemId>* out) override {
    Status st = ValidateQueryArgs(alpha, beta, out);
    if (!st.ok()) return st;
    if (!HasPendingDecay()) {
      sampler_->SampleInto(alpha, beta, out);
      return Status::Ok();
    }
    BigUInt wnum, wden;
    ComputeDecayedW(alpha, beta, &wnum, &wden);
    sampler_->SampleIntoW(wnum, wden, out);
    return Status::Ok();
  }

  Status SampleInto(Rational64 alpha, Rational64 beta, RandomEngine& rng,
                    std::vector<ItemId>* out) const override {
    Status st = ValidateQueryArgs(alpha, beta, out);
    if (!st.ok()) return st;
    if (!HasPendingDecay()) {
      sampler_->SampleInto(alpha, beta, rng, out);
      return Status::Ok();
    }
    BigUInt wnum, wden;
    ComputeDecayedW(alpha, beta, &wnum, &wden);
    sampler_->SampleIntoW(wnum, wden, rng, out);
    return Status::Ok();
  }

  StatusOr<double> ExpectedSampleSize(Rational64 alpha,
                                      Rational64 beta) const override {
    if (alpha.den == 0 || beta.den == 0) {
      return InvalidArgumentError("query parameter with zero denominator");
    }
    if (!HasPendingDecay()) return sampler_->ExpectedSampleSize(alpha, beta);
    BigUInt wnum, wden;
    ComputeDecayedW(alpha, beta, &wnum, &wden);
    return sampler_->ExpectedSampleSizeW(wnum, wden);
  }

  Status SampleDistinct(uint64_t k, std::vector<ItemId>* out) override {
    if (out == nullptr) return InvalidArgumentError("null output pointer");
    out->clear();
    // Native WOR: one exact ∝-weight draw per item via the structure's
    // bucket walk, parking each drawn item at stored weight 0 so the next
    // draw sees the residual set, then restoring the stored weights. The
    // draws run on the *stored* weights, which under a pending factor f
    // are the true weights uniformly scaled by 1/f — proportional draws
    // are scale-invariant, and parking at 0 commutes with f, so no flush
    // is needed and the WOR law on the decayed weights is exact.
    std::vector<std::pair<ItemId, Weight>> parked;
    while (out->size() < k) {
      ItemId id = 0;
      if (!sampler_->SampleOne(fallback_rng(), &id)) break;
      const Weight w = sampler_->GetWeight(id);
      sampler_->SetWeight(id, Weight());
      parked.emplace_back(id, w);
      out->push_back(id);
    }
    for (auto it = parked.rbegin(); it != parked.rend(); ++it) {
      sampler_->SetWeight(it->first, it->second);
    }
    InvalidateTotalCache();
    return Status::Ok();
  }

  Status TopK(uint64_t k, std::vector<ItemId>* out) const override {
    if (out == nullptr) return InvalidArgumentError("null output pointer");
    out->clear();
    if (k == 0) return Status::Ok();
    std::vector<std::pair<ItemId, Weight>> top;
    if (!HasPendingDecay()) {
      sampler_->CollectTop(k, &top);
    } else {
      // Flooring does not preserve cross-exponent order (a heavier
      // mult·2^exp can floor below a lighter one), so under a pending
      // factor the bucket walk cannot rank — scan and sort the scaled
      // weights instead.
      CollectScaled(&top);
      const size_t take =
          static_cast<size_t>(std::min<uint64_t>(k, top.size()));
      std::partial_sort(top.begin(), top.begin() + take, top.end(),
                        [](const std::pair<ItemId, Weight>& a,
                           const std::pair<ItemId, Weight>& b) {
                          return CompareWeights(a.second, b.second) > 0;
                        });
      top.resize(take);
    }
    out->reserve(top.size());
    for (const auto& entry : top) out->push_back(entry.first);
    return Status::Ok();
  }

  Status ItemsAbove(Weight threshold,
                    std::vector<ItemId>* out) const override {
    if (out == nullptr) return InvalidArgumentError("null output pointer");
    out->clear();
    std::vector<std::pair<ItemId, Weight>> hits;
    if (!HasPendingDecay()) {
      sampler_->CollectAtLeast(threshold, &hits);
      out->reserve(hits.size());
      for (const auto& entry : hits) out->push_back(entry.first);
    } else {
      sampler_->ForEachItem([&](ItemId id, Weight w) {
        const Weight s = Scaled(w);
        if (!s.IsZero() && CompareWeights(s, threshold) >= 0) {
          out->push_back(id);
        }
      });
    }
    return Status::Ok();
  }

  Status Serialize(std::string* out) const override {
    if (out == nullptr) return InvalidArgumentError("null output pointer");
    // Decay envelope around the native DpssSampler snapshot: the pending
    // factor must survive a snapshot → crash → recover cycle so replayed
    // WAL suffixes observe the same weights the live run did. Written
    // only when a factor is actually pending — the common no-decay case
    // keeps the historical byte layout, so pinned pre-decay snapshots
    // round-trip bit-identically.
    if (HasPendingDecay()) {
      AppendU64(out, kDecayEnvelopeMagic);
      AppendU64(out, dnum_);
      AppendU64(out, dden_);
    }
    sampler_->Serialize(out);
    return Status::Ok();
  }

  Status Restore(const std::string& bytes) override {
    uint64_t dnum = 1, dden = 1;
    std::string inner_bytes;
    const std::string* payload = &bytes;
    size_t pos = 0;
    uint64_t magic = 0;
    if (ReadU64(bytes, &pos, &magic) && magic == kDecayEnvelopeMagic) {
      if (!ReadU64(bytes, &pos, &dnum) || !ReadU64(bytes, &pos, &dden) ||
          dnum == 0 || dden == 0 || dnum > dden) {
        return BadSnapshotError("corrupt decay envelope");
      }
      inner_bytes = bytes.substr(pos);
      payload = &inner_bytes;
    }
    // No envelope: a pre-decay snapshot — restore with no pending factor.
    auto fresh = std::make_unique<DpssSampler>(options_);
    Status st = DpssSampler::Deserialize(*payload, options_, fresh.get());
    if (!st.ok()) return st;
    sampler_ = std::move(fresh);
    const uint64_t g = std::gcd(dnum, dden);
    dnum_ = dnum / g;
    dden_ = dden / g;
    InvalidateTotalCache();
    return Status::Ok();
  }

  Status DumpItems(std::vector<ItemRecord>* out) const override {
    if (out == nullptr) return InvalidArgumentError("null output pointer");
    out->reserve(out->size() + sampler_->size());
    sampler_->ForEachItem(
        [this, out](ItemId id, Weight w) { out->push_back({id, Scaled(w)}); });
    return Status::Ok();
  }

  Status CheckInvariants() const override {
    sampler_->CheckInvariants();
    DPSS_CHECK(dden_ >= 1 && dnum_ >= 1 && dnum_ <= dden_);
    return Status::Ok();
  }

  size_t ApproxMemoryBytes() const override {
    return sampler_->ApproxMemoryBytes() + sizeof(*this);
  }

  std::string DebugString() const override {
    std::string s = Sampler::DebugString() +
                    " level1_capacity=2^" +
                    std::to_string(sampler_->level1_log2_capacity()) +
                    " rebuilds=" + std::to_string(sampler_->rebuild_count());
    if (HasPendingDecay()) {
      s += " pending_decay=" + std::to_string(dnum_) + "/" +
           std::to_string(dden_);
    }
    return s;
  }

 private:
  // "DPSSDK01", little-endian; distinct from every DpssSampler snapshot
  // magic so envelope-less (pre-decay) snapshots are recognized.
  static constexpr uint64_t kDecayEnvelopeMagic = 0x31304B4453535044ULL;

  static Status ValidateWeight(Weight w) {
    if (w.IsZero()) return Status::Ok();
    if (w.exp >= static_cast<uint32_t>(kLevel1Universe) ||
        w.BucketIndex() >= kLevel1Universe) {
      return WeightOverflowError(
          "weight outside the level-1 universe (exp+log2(mult) >= 256)");
    }
    return Status::Ok();
  }

  bool HasPendingDecay() const { return dnum_ != 1 || dden_ != 1; }

  Weight Scaled(Weight w) const { return FloorScaleWeight(w, dnum_, dden_); }

  void InvalidateTotalCache() const { total_cache_valid_ = false; }

  // W' = α·T + β/f for pending factor f = dnum_/dden_ and stored total T:
  // sampling the stored weights against W' realizes p_x = min{stored_x·f /
  // (α·f·T + β), 1} — the exact parameterized law on the exactly-scaled
  // (unfloored) decayed weights. All BigUInt, no overflow at any operand
  // size.
  void ComputeDecayedW(Rational64 alpha, Rational64 beta, BigUInt* num,
                       BigUInt* den) const {
    // num = α.num·T·β.den·dnum + β.num·α.den·dden
    // den = α.den·β.den·dnum
    const BigUInt term1 = BigUInt::MulU64(
        BigUInt::MulU64(
            BigUInt::MulU64(sampler_->total_weight(), alpha.num), beta.den),
        dnum_);
    const BigUInt term2 = BigUInt::MulU64(
        BigUInt::FromU128(static_cast<unsigned __int128>(beta.num) *
                          alpha.den),
        dden_);
    *num = term1 + term2;
    *den = BigUInt::MulU64(
        BigUInt::FromU128(static_cast<unsigned __int128>(alpha.den) *
                          beta.den),
        dnum_);
  }

  // Every live item with a nonzero scaled weight, as (id, scaled weight).
  void CollectScaled(std::vector<std::pair<ItemId, Weight>>* out) const {
    out->reserve(sampler_->size());
    sampler_->ForEachItem([&](ItemId id, Weight w) {
      const Weight s = Scaled(w);
      if (!s.IsZero()) out->emplace_back(id, s);
    });
  }

  // Materializes the pending factor: every stored weight becomes its
  // FloorScaleWeight image and the factor resets to 1. Reported weights
  // and totals are unchanged (they were already the floored values), so a
  // flush is observably a no-op.
  void Flush() {
    if (!HasPendingDecay()) return;
    // One pass over the *original* stored weights (a second pass would
    // re-scale already-rewritten entries): every nonzero stored weight
    // maps to its floored image, which may be zero (the item parks).
    std::vector<std::pair<ItemId, Weight>> rewrite;
    rewrite.reserve(sampler_->size());
    sampler_->ForEachItem([&](ItemId id, Weight w) {
      if (!w.IsZero()) rewrite.emplace_back(id, Scaled(w));
    });
    dnum_ = dden_ = 1;
    for (const auto& [id, w] : rewrite) sampler_->SetWeight(id, w);
    InvalidateTotalCache();
  }

  DpssSampler::Options options_;
  std::unique_ptr<DpssSampler> sampler_;
  // Pending decay factor, gcd-reduced; 1/1 = none.
  uint64_t dnum_ = 1;
  uint64_t dden_ = 1;
  // Cached Σ FloorScale(stored, pending); only consulted while a factor is
  // pending (the structure's own total is exact otherwise).
  mutable BigUInt total_cache_;
  mutable bool total_cache_valid_ = false;
};

StatusOr<std::unique_ptr<Sampler>> MakeHaltBackend(const SamplerSpec& spec) {
  if (spec.migrate_per_update < 1) {
    return InvalidArgumentError(
        "SamplerSpec::migrate_per_update must be >= 1");
  }
  if (spec.deamortized_rebuild && spec.migrate_per_update < 5) {
    // Contradictory: below 5 items per update a de-amortized migration
    // cannot be guaranteed to finish before the next size-doubling
    // threshold fires (see DpssSampler::Options).
    return InvalidArgumentError(
        "SamplerSpec::migrate_per_update must be >= 5 when "
        "deamortized_rebuild is set");
  }
  return StatusOr<std::unique_ptr<Sampler>>(
      std::make_unique<HaltBackend>(spec));
}

// Parses the sharding grammar "sharded[K]:<inner>". Returns true and fills
// *inner/*num_shards (-1 = no count in the name, take
// SamplerSpec::num_shards) when `name` uses the grammar; plain registry
// names return false.
bool ParseShardedName(const std::string& name, std::string* inner,
                      int* num_shards) {
  constexpr const char kPrefix[] = "sharded";
  constexpr size_t kPrefixLen = sizeof(kPrefix) - 1;
  if (name.compare(0, kPrefixLen, kPrefix) != 0) return false;
  size_t pos = kPrefixLen;
  long shards = 0;
  bool has_digits = false;
  while (pos < name.size() && name[pos] >= '0' && name[pos] <= '9') {
    has_digits = true;
    shards = shards * 10 + (name[pos] - '0');
    if (shards > ShardedSampler::kMaxShards) shards =
        ShardedSampler::kMaxShards + 1;  // out of range, rejected later
    ++pos;
  }
  if (pos >= name.size() || name[pos] != ':') return false;
  *inner = name.substr(pos + 1);
  *num_shards = has_digits ? static_cast<int>(shards) : -1;
  return true;
}

// --- Registry ------------------------------------------------------------

struct Registry {
  std::mutex mu;
  std::map<std::string, SamplerFactory> factories;
};

Registry& GetRegistry() {
  // The baseline backends are pulled in through this explicit call
  // (defined in baseline/backends.cc) rather than via per-TU static
  // initializers, which a static-library link would dead-strip.
  static Registry* registry = [] {
    auto* r = new Registry;
    r->factories["halt"] = &MakeHaltBackend;
    for (const auto& [name, factory] :
         internal_registry::BaselineBackends()) {
      r->factories.emplace(name, factory);
    }
    return r;
  }();
  return *registry;
}

}  // namespace

bool RegisterSampler(const std::string& name, SamplerFactory factory) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  return r.factories.emplace(name, factory).second;
}

StatusOr<std::unique_ptr<Sampler>> MakeSamplerChecked(
    const std::string& name, const SamplerSpec& spec) {
  Registry& r = GetRegistry();
  SamplerFactory factory = nullptr;
  {
    std::lock_guard<std::mutex> lock(r.mu);
    auto it = r.factories.find(name);
    if (it != r.factories.end()) factory = it->second;
  }
  if (factory != nullptr) return factory(spec);

  std::string inner;
  int num_shards = 0;
  if (ParseShardedName(name, &inner, &num_shards)) {
    return internal_registry::MakeShardedSampler(
        name, inner, num_shards < 0 ? spec.num_shards : num_shards, spec);
  }
  return InvalidArgumentError("unknown backend name");
}

std::unique_ptr<Sampler> MakeSampler(const std::string& name,
                                     const SamplerSpec& spec) {
  StatusOr<std::unique_ptr<Sampler>> s = MakeSamplerChecked(name, spec);
  if (!s.ok()) return nullptr;
  return std::move(*s);
}

std::vector<std::string> RegisteredSamplerNames() {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<std::string> names;
  names.reserve(r.factories.size());
  for (const auto& entry : r.factories) names.push_back(entry.first);
  return names;
}

}  // namespace dpss
