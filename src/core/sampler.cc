// Sampler interface defaults, the backend registry, and the "halt" backend
// (the paper's HALT structure behind the interface). The baseline backends
// live in baseline/backends.cc; the registry pulls them in explicitly so a
// static link cannot drop their registrations.

#include "core/sampler.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <utility>

#include "concurrent/sharded_sampler.h"
#include "core/dpss_sampler.h"
#include "core/halt.h"

namespace dpss {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "kOk";
    case StatusCode::kInvalidId:
      return "kInvalidId";
    case StatusCode::kInvalidArgument:
      return "kInvalidArgument";
    case StatusCode::kWeightOverflow:
      return "kWeightOverflow";
    case StatusCode::kBadSnapshot:
      return "kBadSnapshot";
    case StatusCode::kUnsupported:
      return "kUnsupported";
    case StatusCode::kIoError:
      return "kIoError";
  }
  return "k?";
}

// --- Sampler defaults ----------------------------------------------------

Status Sampler::ValidateQueryArgs(Rational64 alpha, Rational64 beta,
                                  const void* out) {
  if (alpha.den == 0 || beta.den == 0) {
    return InvalidArgumentError("query parameter with zero denominator");
  }
  if (out == nullptr) {
    return InvalidArgumentError("null output pointer");
  }
  return Status::Ok();
}

Status Sampler::InsertBatch(std::span<const uint64_t> weights,
                            std::vector<ItemId>* ids) {
  if (ids != nullptr) ids->reserve(ids->size() + weights.size());
  for (const uint64_t w : weights) {
    StatusOr<ItemId> id = Insert(w);
    if (!id.ok()) return id.status();
    if (ids != nullptr) ids->push_back(*id);
  }
  return Status::Ok();
}

Status Sampler::ApplyBatch(std::span<const Op> ops,
                           std::vector<ItemId>* inserted_ids,
                           size_t* num_applied) {
  if (num_applied != nullptr) *num_applied = 0;
  for (const Op& op : ops) {
    switch (op.kind) {
      case Op::Kind::kInsert: {
        StatusOr<ItemId> id = InsertWeight(op.weight);
        if (!id.ok()) return id.status();
        if (inserted_ids != nullptr) inserted_ids->push_back(*id);
        break;
      }
      case Op::Kind::kErase: {
        Status st = Erase(op.id);
        if (!st.ok()) return st;
        break;
      }
      case Op::Kind::kSetWeight: {
        Status st = SetWeight(op.id, op.weight);
        if (!st.ok()) return st;
        break;
      }
      default:
        return InvalidArgumentError("malformed Op record");
    }
    if (num_applied != nullptr) ++*num_applied;
  }
  return Status::Ok();
}

StatusOr<std::vector<ItemId>> Sampler::Sample(Rational64 alpha,
                                              Rational64 beta) {
  std::vector<ItemId> out;
  Status st = SampleInto(alpha, beta, &out);
  if (!st.ok()) return st;
  return out;
}

StatusOr<double> Sampler::ExpectedSampleSize(Rational64 /*alpha*/,
                                             Rational64 /*beta*/) const {
  return UnsupportedError("backend does not compute expected sample sizes");
}

Status Sampler::Serialize(std::string* /*out*/) const {
  return UnsupportedError("backend has no snapshot format");
}

Status Sampler::Restore(const std::string& /*bytes*/) {
  return UnsupportedError("backend has no snapshot format");
}

Status Sampler::DumpItems(std::vector<ItemRecord>* /*out*/) const {
  return UnsupportedError("backend cannot enumerate its items");
}

Status Sampler::CollectArenaImages(ArenaImageMode /*mode*/,
                                   std::vector<ArenaImage>* /*out*/) {
  return UnsupportedError("backend has no arena-image storage");
}

Status Sampler::RestoreFromArenas(std::vector<ArenaLoad>&& /*loads*/) {
  return UnsupportedError("backend has no arena-image storage");
}

// Sampler::SaveTo lives in persist/snapshot.cc next to the frame format it
// writes.

Status Sampler::CheckInvariants() const { return Status::Ok(); }

std::string Sampler::DebugString() const {
  return std::string(name()) + ": n=" + std::to_string(size()) +
         " total_weight=" + TotalWeight().ToDecimalString();
}

// --- "halt" backend ------------------------------------------------------

namespace {

// The full-featured backend: DpssSampler (paper Theorem 1.1) behind the
// interface. All validation that DpssSampler enforces with DPSS_CHECK at
// its concrete API boundary is performed here first and surfaced as Status.
class HaltBackend final : public Sampler {
 public:
  explicit HaltBackend(const SamplerSpec& spec)
      : options_{spec.seed, spec.deamortized_rebuild,
                 spec.migrate_per_update},
        sampler_(std::make_unique<DpssSampler>(options_)) {}

  const char* name() const override { return "halt"; }

  Capabilities capabilities() const override {
    Capabilities caps;
    caps.parameterized = true;
    caps.float_weights = true;
    caps.snapshots = true;
    caps.deep_invariants = true;
    caps.expected_size = true;
    return caps;
  }

  StatusOr<ItemId> Insert(uint64_t weight) override {
    return sampler_->Insert(weight);
  }

  StatusOr<ItemId> InsertWeight(Weight w) override {
    Status st = ValidateWeight(w);
    if (!st.ok()) return st;
    return sampler_->InsertWeight(w);
  }

  Status Erase(ItemId id) override {
    if (!sampler_->Contains(id)) return InvalidIdError();
    sampler_->Erase(id);
    return Status::Ok();
  }

  Status SetWeight(ItemId id, Weight w) override {
    if (!sampler_->Contains(id)) return InvalidIdError();
    Status st = ValidateWeight(w);
    if (!st.ok()) return st;
    sampler_->SetWeight(id, w);
    return Status::Ok();
  }

  bool Contains(ItemId id) const override { return sampler_->Contains(id); }

  StatusOr<Weight> GetWeight(ItemId id) const override {
    if (!sampler_->Contains(id)) return InvalidIdError();
    return sampler_->GetWeight(id);
  }

  uint64_t size() const override { return sampler_->size(); }

  BigUInt TotalWeight() const override { return sampler_->total_weight(); }

  Status SampleInto(Rational64 alpha, Rational64 beta,
                    std::vector<ItemId>* out) override {
    Status st = ValidateQueryArgs(alpha, beta, out);
    if (!st.ok()) return st;
    sampler_->SampleInto(alpha, beta, out);
    return Status::Ok();
  }

  Status SampleInto(Rational64 alpha, Rational64 beta, RandomEngine& rng,
                    std::vector<ItemId>* out) const override {
    Status st = ValidateQueryArgs(alpha, beta, out);
    if (!st.ok()) return st;
    sampler_->SampleInto(alpha, beta, rng, out);
    return Status::Ok();
  }

  StatusOr<double> ExpectedSampleSize(Rational64 alpha,
                                      Rational64 beta) const override {
    if (alpha.den == 0 || beta.den == 0) {
      return InvalidArgumentError("query parameter with zero denominator");
    }
    return sampler_->ExpectedSampleSize(alpha, beta);
  }

  Status Serialize(std::string* out) const override {
    if (out == nullptr) return InvalidArgumentError("null output pointer");
    sampler_->Serialize(out);
    return Status::Ok();
  }

  Status Restore(const std::string& bytes) override {
    auto fresh = std::make_unique<DpssSampler>(options_);
    Status st = DpssSampler::Deserialize(bytes, options_, fresh.get());
    if (!st.ok()) return st;
    sampler_ = std::move(fresh);
    return Status::Ok();
  }

  Status DumpItems(std::vector<ItemRecord>* out) const override {
    if (out == nullptr) return InvalidArgumentError("null output pointer");
    out->reserve(out->size() + sampler_->size());
    sampler_->ForEachItem(
        [out](ItemId id, Weight w) { out->push_back({id, w}); });
    return Status::Ok();
  }

  Status CheckInvariants() const override {
    sampler_->CheckInvariants();
    return Status::Ok();
  }

  size_t ApproxMemoryBytes() const override {
    return sampler_->ApproxMemoryBytes() + sizeof(*this);
  }

  std::string DebugString() const override {
    return Sampler::DebugString() +
           " level1_capacity=2^" +
           std::to_string(sampler_->level1_log2_capacity()) +
           " rebuilds=" + std::to_string(sampler_->rebuild_count());
  }

 private:
  static Status ValidateWeight(Weight w) {
    if (w.IsZero()) return Status::Ok();
    if (w.exp >= static_cast<uint32_t>(kLevel1Universe) ||
        w.BucketIndex() >= kLevel1Universe) {
      return WeightOverflowError(
          "weight outside the level-1 universe (exp+log2(mult) >= 256)");
    }
    return Status::Ok();
  }

  DpssSampler::Options options_;
  std::unique_ptr<DpssSampler> sampler_;
};

StatusOr<std::unique_ptr<Sampler>> MakeHaltBackend(const SamplerSpec& spec) {
  if (spec.migrate_per_update < 1) {
    return InvalidArgumentError(
        "SamplerSpec::migrate_per_update must be >= 1");
  }
  if (spec.deamortized_rebuild && spec.migrate_per_update < 5) {
    // Contradictory: below 5 items per update a de-amortized migration
    // cannot be guaranteed to finish before the next size-doubling
    // threshold fires (see DpssSampler::Options).
    return InvalidArgumentError(
        "SamplerSpec::migrate_per_update must be >= 5 when "
        "deamortized_rebuild is set");
  }
  return StatusOr<std::unique_ptr<Sampler>>(
      std::make_unique<HaltBackend>(spec));
}

// Parses the sharding grammar "sharded[K]:<inner>". Returns true and fills
// *inner/*num_shards (-1 = no count in the name, take
// SamplerSpec::num_shards) when `name` uses the grammar; plain registry
// names return false.
bool ParseShardedName(const std::string& name, std::string* inner,
                      int* num_shards) {
  constexpr const char kPrefix[] = "sharded";
  constexpr size_t kPrefixLen = sizeof(kPrefix) - 1;
  if (name.compare(0, kPrefixLen, kPrefix) != 0) return false;
  size_t pos = kPrefixLen;
  long shards = 0;
  bool has_digits = false;
  while (pos < name.size() && name[pos] >= '0' && name[pos] <= '9') {
    has_digits = true;
    shards = shards * 10 + (name[pos] - '0');
    if (shards > ShardedSampler::kMaxShards) shards =
        ShardedSampler::kMaxShards + 1;  // out of range, rejected later
    ++pos;
  }
  if (pos >= name.size() || name[pos] != ':') return false;
  *inner = name.substr(pos + 1);
  *num_shards = has_digits ? static_cast<int>(shards) : -1;
  return true;
}

// --- Registry ------------------------------------------------------------

struct Registry {
  std::mutex mu;
  std::map<std::string, SamplerFactory> factories;
};

Registry& GetRegistry() {
  // The baseline backends are pulled in through this explicit call
  // (defined in baseline/backends.cc) rather than via per-TU static
  // initializers, which a static-library link would dead-strip.
  static Registry* registry = [] {
    auto* r = new Registry;
    r->factories["halt"] = &MakeHaltBackend;
    for (const auto& [name, factory] :
         internal_registry::BaselineBackends()) {
      r->factories.emplace(name, factory);
    }
    return r;
  }();
  return *registry;
}

}  // namespace

bool RegisterSampler(const std::string& name, SamplerFactory factory) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  return r.factories.emplace(name, factory).second;
}

StatusOr<std::unique_ptr<Sampler>> MakeSamplerChecked(
    const std::string& name, const SamplerSpec& spec) {
  Registry& r = GetRegistry();
  SamplerFactory factory = nullptr;
  {
    std::lock_guard<std::mutex> lock(r.mu);
    auto it = r.factories.find(name);
    if (it != r.factories.end()) factory = it->second;
  }
  if (factory != nullptr) return factory(spec);

  std::string inner;
  int num_shards = 0;
  if (ParseShardedName(name, &inner, &num_shards)) {
    return internal_registry::MakeShardedSampler(
        name, inner, num_shards < 0 ? spec.num_shards : num_shards, spec);
  }
  return InvalidArgumentError("unknown backend name");
}

std::unique_ptr<Sampler> MakeSampler(const std::string& name,
                                     const SamplerSpec& spec) {
  StatusOr<std::unique_ptr<Sampler>> s = MakeSamplerChecked(name, spec);
  if (!s.ok()) return nullptr;
  return std::move(*s);
}

std::vector<std::string> RegisteredSamplerNames() {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<std::string> names;
  names.reserve(r.factories.size());
  for (const auto& entry : r.factories) names.push_back(entry.first);
  return names;
}

}  // namespace dpss
