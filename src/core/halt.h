// The HALT data structure: Hierarchy + Adapter + Lookup Table (paper §4).
//
// HaltStructure maintains the paper's three-level sampling hierarchy over a
// set of weighted elements:
//
//   level 1: BG-Str(S) over the real items;
//   level 2: for each level-1 group G_S(j), BG-Str(Y_j) over synthetic items
//            y_i with weight 2^{i+1}·|B_S(i)| (one per non-empty bucket);
//   level 3: for each level-2 group G_{Y_j}(k), BG-Str(Z_k) plus a packed
//            Adapter; its buckets form the final-level 4S instance answered
//            by the LookupTable.
//
// Updates propagate bottom-up in O(1): one item insert/delete changes one
// level-1 bucket size, which re-inserts one synthetic level-2 item, which
// changes at most two level-2 bucket sizes, which re-inserts at most two
// level-3 items, which updates at most four adapter counts.
//
// A query with parameterized total weight W samples, per instance, the
// insignificant instance (one bounded-geometric coin), the certain instance
// (all items, output-charged), and at most three significant groups whose
// next-level instances are solved recursively — at the final level via the
// adapter + lookup table (paper §4.4). Candidate buckets returned by a
// child are opened with ExtractItems (Algorithm 5): B-Geo/T-Geo variates
// locate potential items, each accepted with an exact rejection coin.
//
// All thresholds are group-aligned: groups entirely below the
// insignificance boundary go to the insignificant instance, groups entirely
// above the certainty boundary go to the certain instance, and every group
// in between is treated as significant (at most a constant number by
// Lemma 4.2). This covers every bucket exactly once.

#ifndef DPSS_CORE_HALT_H_
#define DPSS_CORE_HALT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "bigint/big_uint.h"
#include "bigint/u128.h"
#include "core/adapter.h"
#include "core/bucket_structure.h"
#include "core/lookup_table.h"
#include "core/weight.h"
#include "util/random.h"

namespace dpss {

// Bucket-index universes per level. Level-1 weights mult·2^exp satisfy
// exp + bitlen(mult) <= kLevel1Universe; synthetic weights add at most
// 1 + bitlen(count) bits per level.
inline constexpr int kLevel1Universe = 256;
inline constexpr int kLevel2Universe = 384;
inline constexpr int kLevel3Universe = 448;

class HaltStructure {
 public:
  using Location = BucketStructure::Location;
  using Entry = BucketStructure::Entry;

  // `level1_log2_capacity` is the paper's log2(N) with N the power-of-16
  // padded capacity (>= 4, multiple of 4). `item_listener` receives the
  // location of every inserted or relocated level-1 element.
  HaltStructure(int level1_log2_capacity,
                BucketStructure::RelocationListener* item_listener);
  ~HaltStructure();

  HaltStructure(const HaltStructure&) = delete;
  HaltStructure& operator=(const HaltStructure&) = delete;

  int level1_log2_capacity() const { return g1_; }
  // The 4S grid parameter m (= level-2 group width, Θ(log log n0)).
  int m() const { return m_; }
  // Number of 4S configuration slots K.
  int k_slots() const { return k_; }

  uint64_t size() const;
  const BucketStructure& level1() const;
  const LookupTable& lookup_table() const { return table_; }

  // Inserts an element with non-zero weight. The element's level-1 location
  // is reported through the item listener. O(1) worst case.
  void Insert(uint64_t handle, Weight w);

  // Erases the element at the given level-1 location. O(1) worst case.
  void Erase(Location loc);

  // Patches the weight of the level-1 element at `loc` in place. The new
  // weight must be non-zero and map to the same level-1 bucket as the old
  // one: the bucket's size is unchanged, so the synthetic items above it
  // keep their weights and nothing propagates up the hierarchy. O(1), no
  // relocation, no listener callback.
  void SetWeight(Location loc, Weight w);

  // Answers one PSS query with parameterized total weight W = wnum/wden:
  // every element with weight w is included in the result independently
  // with probability min{1, w/W}. W == 0 (wnum zero) selects everything.
  // Expected time O(1 + output size). Queries mutate the shared scratch
  // pool (and the engine), so despite constness two queries on one
  // structure must not run concurrently — see SampleInto.
  std::vector<uint64_t> Sample(const BigUInt& wnum, const BigUInt& wden,
                               RandomEngine& rng) const;

  // Same query, appending into a caller-owned buffer (cleared first). This
  // is the allocation-free entry point: per-query temporaries live in an
  // internal scratch pool that is reused across calls, so a warmed-up query
  // whose operands fit the u128 fast path performs zero heap allocations.
  // Queries share that scratch — do not run two queries on the same
  // structure concurrently (updates already have the same restriction).
  void SampleInto(const BigUInt& wnum, const BigUInt& wden, RandomEngine& rng,
                  std::vector<uint64_t>* out) const;

  // Exhaustive structural self-check (tests): cross-level weight and
  // location consistency, adapter windows, bitmap state. Aborts on failure.
  void CheckInvariants() const;

  // Approximate heap footprint in bytes (benchmarks).
  size_t ApproxMemoryBytes() const;

  // Aggregated slab occupancy / fragmentation counters over every bucket
  // structure in the hierarchy (benchmarks, BENCH_memory.json).
  BucketStructure::SlabStats SlabStatsTotal() const;

  // --- Ablation switches (benchmark experiments A1/A2) -------------------
  // Disables the lookup table: final-level significant buckets are then
  // sampled with one exact Bernoulli coin each (O(K) instead of O(1)).
  void SetUseLookupTable(bool v) { use_lookup_table_ = v; }
  // Replaces the bounded-geometric skip over insignificant items by a
  // linear scan with one coin per item (O(#insignificant) instead of O(1)).
  void SetInsignificantLinearScan(bool v) { insignificant_linear_scan_ = v; }
  // Disables the u128 small-integer fast path so every coin and variate
  // runs through exact BigUInt arithmetic. The fast path is a value-level
  // mirror of the BigUInt path (same bit stream, same results), so flipping
  // this must not change any query outcome for a fixed seed — the
  // equivalence tests assert exactly that.
  void SetForceBigIntArithmetic(bool v) { force_bigint_ = v; }
  // Disables the block-RNG word prefetching in the query walk (the engine
  // then steps one word at a time). Batching is stream-invisible by
  // construction — RandomEngine's block buffer serves words in generation
  // order — so flipping this must not change any query outcome for a fixed
  // seed; the equivalence tests drive both modes in lockstep.
  void SetUseBlockRng(bool v) { use_block_rng_ = v; }

 private:
  struct Instance;
  struct QueryContext;
  struct QueryScratch;

  Instance* EnsureChild(Instance* inst, int group);
  void InsertInto(Instance* inst, uint64_t handle, Weight w);
  void EraseFrom(Instance* inst, Location loc);
  void BucketSizeChanged(Instance* inst, int bucket, uint64_t old_size,
                         uint64_t new_size);

  void Query(const Instance* inst, const QueryContext& ctx,
             std::vector<uint64_t>* out) const;
  void QueryFinalLevel(const Instance* inst, const QueryContext& ctx,
                       std::vector<uint64_t>* out) const;
  void QueryInsignificant(const Instance* inst, const QueryContext& ctx,
                          int max_bucket, uint64_t coin_num,
                          const BigUInt& coin_den, U128 coin_den128,
                          std::vector<uint64_t>* out) const;
  void QueryCertain(const Instance* inst, const QueryContext& ctx,
                    int min_bucket, std::vector<uint64_t>* out) const;
  void ExtractItems(const Instance* inst,
                    const std::vector<uint64_t>& candidate_buckets,
                    const QueryContext& ctx, std::vector<uint64_t>* out) const;

  void CheckInstanceInvariants(const Instance* inst) const;
  size_t InstanceBytes(const Instance* inst) const;

  int g1_;  // level-1 group width = log2(level-1 capacity)
  int g2_;  // level-2 group width = log2(level-2 capacity)
  int m_;   // 4S grid parameter (= g2_)
  int k_;   // 4S slots
  bool use_lookup_table_ = true;
  bool insignificant_linear_scan_ = false;
  bool force_bigint_ = false;
  bool use_block_rng_ = true;
  LookupTable table_;
  // One shared relocatable arena holds the slab/header/bitmap storage of
  // every BucketStructure in the hierarchy. Behind a unique_ptr so its
  // address is stable for the instances borrowing it; declared before
  // root_ so it outlives them.
  std::unique_ptr<Arena> arena_;
  std::unique_ptr<Instance> root_;
  // Per-query temporaries, pooled across calls (see SampleInto).
  mutable std::unique_ptr<QueryScratch> scratch_;
};

}  // namespace dpss

#endif  // DPSS_CORE_HALT_H_
