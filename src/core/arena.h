/// \file
/// \brief Relocatable, page-granular storage arena for the hot-path data
/// structures, plus the offset-addressed vector built on it.
///
/// An Arena is one contiguous byte region addressed purely by *offsets*:
/// nothing stored inside it is ever a pointer, so the whole region is
/// position-independent — it can be memcpy'd, written to disk as raw pages
/// and mapped back at any address without fixups. That property is what the
/// v2 snapshot format (persist/snapshot.h) is built on: the checkpoint
/// payload *is* the live layout, and recovery adopts a copy-on-write file
/// mapping instead of parsing.
///
/// Properties:
///  * Allocation is bump-only (64-byte aligned, zero-filled); memory is
///    reclaimed by dropping the whole arena, never piecewise. Owners that
///    recycle storage (e.g. BucketStructure's extent free lists) keep their
///    own offset free lists on the side.
///  * Every byte written through a mutating accessor is tracked in a
///    per-4-KiB-page dirty bitmap, so an incremental checkpoint can write
///    only the pages touched since the last epoch (churn-proportional cost).
///  * An arena either owns heap pages or *adopts* an externally owned,
///    writable, page-aligned region (a MAP_PRIVATE file mapping). Growth
///    past an adopted region's capacity migrates to owned heap pages.

#ifndef DPSS_CORE_ARENA_H_
#define DPSS_CORE_ARENA_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/check.h"

namespace dpss {

/// Relocatable bump arena with page-granular dirty tracking. See \ref
/// arena.h for the design contract. Movable, not copyable.
class Arena {
 public:
  /// Dirty-tracking and snapshot-image granularity.
  static constexpr uint64_t kPageSize = 4096;
  /// Alignment of every allocation (one cache line).
  static constexpr uint64_t kAlignment = 64;

  /// An empty arena owning no pages yet.
  Arena() = default;
  ~Arena() { Release(); }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Moves transfer ownership (or the adopted mapping) wholesale; offsets
  /// held by clients remain valid against the moved-to arena.
  Arena(Arena&& other) noexcept { MoveFrom(std::move(other)); }
  Arena& operator=(Arena&& other) noexcept {
    if (this != &other) {
      Release();
      MoveFrom(std::move(other));
    }
    return *this;
  }

  /// Wraps an externally owned, page-aligned, *writable* region of
  /// `used_bytes` meaningful bytes (e.g. a copy-on-write file mapping).
  /// `keepalive` is held until the arena is destroyed or outgrows the
  /// region. Every page starts clean.
  static Arena Adopt(void* base, uint64_t used_bytes,
                     std::shared_ptr<void> keepalive) {
    DPSS_CHECK(base != nullptr || used_bytes == 0);
    Arena a;
    a.base_ = static_cast<char*>(base);
    a.used_ = used_bytes;
    a.capacity_ = PageRoundUp(used_bytes);
    a.owned_ = false;
    a.keepalive_ = std::move(keepalive);
    a.dirty_.assign(DirtyWords(a.capacity_ / kPageSize), 0);
    return a;
  }

  /// Bump-allocates `bytes` zero-filled bytes at a 64-byte-aligned offset
  /// and marks the range dirty. Offsets are stable forever (the arena never
  /// frees); offset 0 is reserved as a null sentinel.
  uint64_t Allocate(uint64_t bytes) {
    const uint64_t off = AlignUp(used_ == 0 ? kAlignment : used_);
    if (off + bytes > capacity_) Grow(off + bytes);
    used_ = off + bytes;
    MarkDirty(off, bytes);
    return off;
  }

  /// Base of the region; recomputed by callers on every access (the base
  /// moves on growth), which is exactly what keeps the layout pointer-free.
  char* base() { return base_; }
  /// Const base of the region.
  const char* base() const { return base_; }

  /// Typed pointer at `offset`. Valid only until the next Allocate.
  template <typename T>
  T* PtrAt(uint64_t offset) {
    return reinterpret_cast<T*>(base_ + offset);
  }
  /// Const typed pointer at `offset`.
  template <typename T>
  const T* PtrAt(uint64_t offset) const {
    return reinterpret_cast<const T*>(base_ + offset);
  }

  /// Meaningful bytes (the bump high-water mark).
  uint64_t used_bytes() const { return used_; }
  /// Reserved bytes (always a multiple of kPageSize).
  uint64_t capacity_bytes() const { return capacity_; }
  /// Pages needed to cover used_bytes(); this is the v2 snapshot image size.
  uint64_t page_count() const { return PageRoundUp(used_) / kPageSize; }

  /// Marks every page overlapping [offset, offset+len) dirty.
  void MarkDirty(uint64_t offset, uint64_t len) {
    if (len == 0) return;
    const uint64_t first = offset / kPageSize;
    const uint64_t last = (offset + len - 1) / kPageSize;
    for (uint64_t p = first; p <= last; ++p) {
      dirty_[p >> 6] |= uint64_t{1} << (p & 63);
    }
  }

  /// True iff `page` has been written since the last ClearDirty.
  bool PageDirty(uint64_t page) const {
    return ((dirty_[page >> 6] >> (page & 63)) & 1) != 0;
  }

  /// Number of dirty pages within page_count().
  uint64_t DirtyPageCount() const {
    uint64_t n = 0;
    const uint64_t pages = page_count();
    for (uint64_t p = 0; p < pages; ++p) n += PageDirty(p) ? 1 : 0;
    return n;
  }

  /// Marks every page clean — the new incremental-checkpoint baseline.
  void ClearDirty() {
    for (uint64_t& w : dirty_) w = 0;
  }

  /// Marks every in-use page dirty (e.g. after a restore whose provenance
  /// the dirty bitmap cannot vouch for).
  void MarkAllDirty() { MarkDirty(0, used_); }

  /// Restore support: sizes the arena to exactly `used_bytes` meaningful
  /// bytes of zeroed, owned storage (callers then memcpy pages in). Any
  /// previous contents are discarded; all pages start dirty.
  void ResetForLoad(uint64_t used_bytes);

  /// Restore support for deltas: grows used_bytes() to `used_bytes`
  /// (which must not shrink), zero-filling the new tail.
  void GrowForLoad(uint64_t used_bytes);

  /// `v` rounded up to a whole number of pages (the snapshot codec uses it
  /// to cross-check stored page counts against used bytes).
  static uint64_t PageRoundUp(uint64_t v) {
    return (v + (kPageSize - 1)) & ~(kPageSize - 1);
  }

 private:
  static uint64_t AlignUp(uint64_t v) {
    return (v + (kAlignment - 1)) & ~(kAlignment - 1);
  }
  static uint64_t DirtyWords(uint64_t pages) { return (pages + 63) / 64; }

  void Grow(uint64_t min_capacity);
  void Release();
  void MoveFrom(Arena&& other) noexcept {
    base_ = other.base_;
    used_ = other.used_;
    capacity_ = other.capacity_;
    owned_ = other.owned_;
    keepalive_ = std::move(other.keepalive_);
    dirty_ = std::move(other.dirty_);
    other.base_ = nullptr;
    other.used_ = 0;
    other.capacity_ = 0;
    other.owned_ = true;
    other.dirty_.clear();
  }

  char* base_ = nullptr;
  uint64_t used_ = 0;
  uint64_t capacity_ = 0;
  bool owned_ = true;
  std::shared_ptr<void> keepalive_;  // pins an adopted mapping
  std::vector<uint64_t> dirty_;      // one bit per page of capacity_
};

/// One collected arena snapshot image: the owner-defined root block (where
/// inside the arena its structures live) plus owned copies of pages. For
/// `ArenaImageMode::kFull` the pages cover the whole arena; for `kDirty`
/// only the pages touched since the previous collection.
struct ArenaImage {
  /// Owner-defined root block (offsets/sizes/totals), opaque to persist/.
  std::string roots;
  /// Arena used_bytes() at collection time.
  uint64_t used_bytes = 0;
  /// Arena page_count() at collection time (full image extent).
  uint64_t page_count = 0;
  /// (page index, 4096-byte page copy), ascending by index.
  std::vector<std::pair<uint64_t, std::string>> pages;
};

/// Which pages CollectArenaImages gathers. Both modes clear the dirty
/// bitmap: the collected image is the new incremental baseline.
enum class ArenaImageMode {
  kFull,   ///< Every page up to page_count().
  kDirty,  ///< Only pages dirtied since the last collection.
};

/// One arena handed back to a backend on restore: a fully loaded region
/// (owned heap pages, or an adopted copy-on-write file mapping) plus the
/// root block that was collected with it.
struct ArenaLoad {
  /// The root block stored alongside the image.
  std::string roots;
  /// The loaded region; the backend takes ownership.
  Arena arena;
};

/// Copies pages out of `arena` into `*out` (roots are the caller's to fill)
/// and clears the dirty bitmap. The helper every backend's
/// CollectArenaImages is built from.
void CollectArenaPages(Arena* arena, ArenaImageMode mode, ArenaImage* out);

/// A std::vector-shaped view of trivially copyable elements stored in an
/// Arena. Holds (offset, size, capacity) plus the arena pointer — never an
/// element pointer — so the backing region stays relocatable. Mutating
/// accessors mark the touched pages dirty. The arena object must outlive
/// the vector and be address-stable (owners keep it behind a unique_ptr).
template <typename T>
class ArenaVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "arena storage is raw bytes; elements must be trivial");

 public:
  /// An unbound vector (must be bound before use).
  ArenaVec() = default;
  /// An empty vector allocating from `*arena`.
  explicit ArenaVec(Arena* arena) : arena_(arena) {}

  /// Rebinds to `arena` (e.g. after moving the owning structure); the
  /// element storage itself is identified by offset and needs no fixup.
  void BindArena(Arena* arena) { arena_ = arena; }

  /// Adopts storage already present in the bound arena (the restore path).
  /// The caller has validated offset/size/capacity against the arena.
  void AdoptStorage(uint64_t offset, uint64_t size, uint64_t capacity) {
    off_ = offset;
    size_ = size;
    cap_ = capacity;
  }

  /// Number of elements.
  uint64_t size() const { return size_; }
  /// True iff size() == 0.
  bool empty() const { return size_ == 0; }
  /// Elements the current extent can hold without reallocating.
  uint64_t capacity() const { return cap_; }
  /// Arena byte offset of element 0 (0 when never allocated).
  uint64_t offset() const { return off_; }

  /// Mutable element access; marks the element's page dirty.
  T& operator[](uint64_t i) {
    DPSS_DCHECK(i < size_);
    arena_->MarkDirty(off_ + i * sizeof(T), sizeof(T));
    return data()[i];
  }
  /// Const element access.
  const T& operator[](uint64_t i) const {
    DPSS_DCHECK(i < size_);
    return data()[i];
  }

  /// Mutable raw storage (valid until the next allocation from the arena).
  T* data() { return arena_->PtrAt<T>(off_); }
  /// Const raw storage.
  const T* data() const { return arena_->PtrAt<const T>(off_); }

  /// Last element (mutable; marks dirty).
  T& back() { return (*this)[size_ - 1]; }
  /// Last element.
  const T& back() const { return (*this)[size_ - 1]; }

  /// Appends `v`, growing the extent geometrically when full.
  void push_back(const T& v) {
    if (size_ == cap_) Grow(size_ + 1);
    const uint64_t i = size_++;
    arena_->MarkDirty(off_ + i * sizeof(T), sizeof(T));
    data()[i] = v;
  }

  /// Drops the last element (storage is retained).
  void pop_back() {
    DPSS_DCHECK(size_ > 0);
    --size_;
  }

  /// Pre-sizes the extent for at least `n` elements (size() unchanged).
  void reserve(uint64_t n) {
    if (n > cap_) Grow(n);
  }

  /// Resizes to `n` elements; new elements are zero (the arena zero-fills),
  /// matching std::vector's value-initialization for trivial types.
  void resize(uint64_t n) {
    if (n > cap_) Grow(n);
    if (n > size_) {
      // A fresh extent is still-zero arena memory, but a shrink-then-grow
      // within one extent re-exposes old bytes: re-zero them.
      std::memset(reinterpret_cast<char*>(data() + size_), 0,
                  (n - size_) * sizeof(T));
      arena_->MarkDirty(off_ + size_ * sizeof(T), (n - size_) * sizeof(T));
    }
    size_ = n;
  }

 private:
  void Grow(uint64_t min_capacity) {
    uint64_t cap = cap_ == 0 ? 8 : cap_ * 2;
    if (cap < min_capacity) cap = min_capacity;
    const uint64_t fresh = arena_->Allocate(cap * sizeof(T));
    if (size_ != 0) {
      std::memcpy(arena_->base() + fresh, arena_->base() + off_,
                  size_ * sizeof(T));
    }
    off_ = fresh;
    cap_ = cap;
  }

  Arena* arena_ = nullptr;
  uint64_t off_ = 0;
  uint64_t size_ = 0;
  uint64_t cap_ = 0;
};

}  // namespace dpss

#endif  // DPSS_CORE_ARENA_H_
