#include "core/bucket_structure.h"

#include <algorithm>
#include <cstring>
#include <new>

namespace dpss {

namespace {

BucketStructure::PackedEntry* AllocAligned(uint64_t entries) {
  return static_cast<BucketStructure::PackedEntry*>(::operator new(
      entries * sizeof(BucketStructure::PackedEntry), std::align_val_t{64}));
}

void FreeAligned(BucketStructure::PackedEntry* p) {
  if (p != nullptr) ::operator delete(p, std::align_val_t{64});
}

}  // namespace

BucketStructure::BucketStructure(int universe, int group_width,
                                 RelocationListener* listener)
    : universe_(universe),
      group_width_(group_width),
      num_groups_((universe + group_width - 1) / group_width),
      buckets_bitmap_(universe),
      groups_bitmap_(num_groups_),
      headers_(universe),
      free_extents_(kNumSizeClasses),
      listener_(listener) {
  DPSS_CHECK(universe >= 1 && universe <= BitmapSortedList::kMaxUniverse);
  DPSS_CHECK(group_width >= 1);
}

BucketStructure::~BucketStructure() { FreeAligned(slab_); }

void BucketStructure::GrowSlab(uint64_t needed) {
  uint64_t new_capacity = std::max<uint64_t>(slab_capacity_ * 2, 64);
  while (new_capacity < slab_used_ + needed) new_capacity *= 2;
  PackedEntry* new_slab = AllocAligned(new_capacity);
  if (slab_used_ > 0) {
    std::memcpy(new_slab, slab_, slab_used_ * sizeof(PackedEntry));
  }
  FreeAligned(slab_);
  slab_ = new_slab;
  slab_capacity_ = new_capacity;
}

uint64_t BucketStructure::AllocExtent(uint32_t capacity) {
  std::vector<uint64_t>& fl = free_extents_[SizeClass(capacity)];
  if (!fl.empty()) {
    const uint64_t offset = fl.back();
    fl.pop_back();
    free_extent_entries_ -= capacity;
    return offset;
  }
  if (slab_used_ + capacity > slab_capacity_) GrowSlab(capacity);
  const uint64_t offset = slab_used_;
  slab_used_ += capacity;
  // Extent capacities are multiples of kMinExtentEntries and the slab base
  // is 64-byte-aligned, so every extent starts on a cache-line boundary.
  DPSS_DCHECK(offset % kMinExtentEntries == 0);
  return offset;
}

void BucketStructure::GrowBucket(int bucket) {
  BucketHeader& h = headers_[bucket];
  if (h.capacity == 0) {
    h.capacity = kMinExtentEntries;
    h.offset = AllocExtent(h.capacity);
    return;
  }
  const uint32_t old_capacity = h.capacity;
  const uint64_t old_offset = h.offset;
  const uint32_t new_capacity = old_capacity * 2;
  // Allocate first: AllocExtent may move the slab, and the copy below must
  // read the old extent from the (possibly new) arena.
  const uint64_t new_offset = AllocExtent(new_capacity);
  std::memcpy(slab_ + new_offset, slab_ + old_offset,
              h.size * sizeof(PackedEntry));
  h.offset = new_offset;
  h.capacity = new_capacity;
  free_extents_[SizeClass(old_capacity)].push_back(old_offset);
  free_extent_entries_ += old_capacity;
}

BucketStructure::Location BucketStructure::Insert(uint64_t handle, Weight w) {
  DPSS_CHECK(!w.IsZero());
  const int bucket = w.BucketIndex();
  DPSS_CHECK(bucket < universe_);
  BucketHeader& h = headers_[bucket];
  if (h.size == 0) {
    buckets_bitmap_.Insert(bucket);
    groups_bitmap_.Insert(GroupOfBucket(bucket));
  }
  if (h.size == h.capacity) GrowBucket(bucket);
  slab_[h.offset + h.size] = PackedEntry{handle, w.mult};
  DPSS_DCHECK(ExpFor(bucket, w.mult) == w.exp);
  ++size_;
  return Location{bucket, h.size++};
}

void BucketStructure::Erase(Location loc) {
  DPSS_CHECK(loc.IsValid() && loc.bucket < universe_);
  BucketHeader& h = headers_[loc.bucket];
  DPSS_CHECK(loc.pos < h.size);
  const uint32_t last = h.size - 1;
  if (loc.pos != last) {
    slab_[h.offset + loc.pos] = slab_[h.offset + last];
    if (listener_ != nullptr) {
      listener_->OnRelocate(slab_[h.offset + loc.pos].handle,
                            Location{loc.bucket, loc.pos});
    }
  }
  h.size = last;
  --size_;
  if (h.size == 0) {
    // The bucket keeps its extent for the next insertion — churn at a
    // stable size distribution then never touches an allocator.
    buckets_bitmap_.Erase(loc.bucket);
    // Deactivate the group iff no other bucket in it is non-empty.
    const int g = GroupOfBucket(loc.bucket);
    const int lo = g * group_width_;
    const int hi = std::min((g + 1) * group_width_ - 1, universe_ - 1);
    const int next = buckets_bitmap_.Ceiling(lo);
    if (next == -1 || next > hi) groups_bitmap_.Erase(g);
  }
}

void BucketStructure::SetWeight(Location loc, Weight w) {
  DPSS_CHECK(loc.IsValid() && loc.bucket < universe_);
  DPSS_CHECK(!w.IsZero() && w.BucketIndex() == loc.bucket);
  BucketHeader& h = headers_[loc.bucket];
  DPSS_CHECK(loc.pos < h.size);
  slab_[h.offset + loc.pos].mult = w.mult;
}

void BucketStructure::CollectUpTo(int max_bucket,
                                  std::vector<Entry>* out) const {
  if (max_bucket < 0 || Empty()) return;
  const int cap = std::min(max_bucket, universe_ - 1);
  for (int i = buckets_bitmap_.Min(); i != -1 && i <= cap;
       i = buckets_bitmap_.Next(i)) {
    const int next = buckets_bitmap_.Next(i);
    if (next != -1 && next <= cap) PrefetchBucket(next);
    const BucketHeader& h = headers_[i];
    const PackedEntry* e = slab_ + h.offset;
    for (uint32_t k = 0; k < h.size; ++k) {
      out->push_back(Entry{e[k].handle, WeightFor(i, e[k].mult)});
    }
  }
}

void BucketStructure::CollectFrom(int min_bucket,
                                  std::vector<Entry>* out) const {
  if (Empty()) return;
  const int lo = std::max(min_bucket, 0);
  if (lo >= universe_) return;
  for (int i = buckets_bitmap_.Ceiling(lo); i != -1;
       i = buckets_bitmap_.Next(i)) {
    const int next = buckets_bitmap_.Next(i);
    if (next != -1) PrefetchBucket(next);
    const BucketHeader& h = headers_[i];
    const PackedEntry* e = slab_ + h.offset;
    for (uint32_t k = 0; k < h.size; ++k) {
      out->push_back(Entry{e[k].handle, WeightFor(i, e[k].mult)});
    }
  }
}

void BucketStructure::AppendHandlesUpTo(int max_bucket,
                                        std::vector<uint64_t>* out) const {
  if (max_bucket < 0 || Empty()) return;
  const int cap = std::min(max_bucket, universe_ - 1);
  size_t total = 0;
  for (int i = buckets_bitmap_.Min(); i != -1 && i <= cap;
       i = buckets_bitmap_.Next(i)) {
    total += headers_[i].size;
  }
  out->reserve(out->size() + total);
  for (int i = buckets_bitmap_.Min(); i != -1 && i <= cap;
       i = buckets_bitmap_.Next(i)) {
    const int next = buckets_bitmap_.Next(i);
    if (next != -1 && next <= cap) PrefetchBucket(next);
    const BucketHeader& h = headers_[i];
    const PackedEntry* e = slab_ + h.offset;
    for (uint32_t k = 0; k < h.size; ++k) out->push_back(e[k].handle);
  }
}

void BucketStructure::AppendHandlesFrom(int min_bucket,
                                        std::vector<uint64_t>* out) const {
  if (Empty()) return;
  const int lo = std::max(min_bucket, 0);
  if (lo >= universe_) return;
  size_t total = 0;
  for (int i = buckets_bitmap_.Ceiling(lo); i != -1;
       i = buckets_bitmap_.Next(i)) {
    total += headers_[i].size;
  }
  out->reserve(out->size() + total);
  for (int i = buckets_bitmap_.Ceiling(lo); i != -1;
       i = buckets_bitmap_.Next(i)) {
    const int next = buckets_bitmap_.Next(i);
    if (next != -1) PrefetchBucket(next);
    const BucketHeader& h = headers_[i];
    const PackedEntry* e = slab_ + h.offset;
    for (uint32_t k = 0; k < h.size; ++k) out->push_back(e[k].handle);
  }
}

BucketStructure::SlabStats BucketStructure::slab_stats() const {
  SlabStats s;
  s.capacity_bytes = slab_capacity_ * sizeof(PackedEntry);
  s.live_bytes = size_ * sizeof(PackedEntry);
  s.free_bytes = free_extent_entries_ * sizeof(PackedEntry);
  size_t extent_entries = 0;
  for (const BucketHeader& h : headers_) extent_entries += h.capacity;
  s.extent_bytes = extent_entries * sizeof(PackedEntry);
  return s;
}

size_t BucketStructure::MemoryBytes() const {
  size_t bytes = slab_capacity_ * sizeof(PackedEntry);
  bytes += headers_.capacity() * sizeof(BucketHeader);
  bytes += free_extents_.capacity() * sizeof(std::vector<uint64_t>);
  for (const auto& fl : free_extents_) bytes += fl.capacity() * sizeof(uint64_t);
  return bytes;
}

}  // namespace dpss
