#include "core/bucket_structure.h"

#include <algorithm>

namespace dpss {

BucketStructure::BucketStructure(int universe, int group_width,
                                 RelocationListener* listener)
    : universe_(universe),
      group_width_(group_width),
      num_groups_((universe + group_width - 1) / group_width),
      buckets_(universe),
      buckets_bitmap_(universe),
      groups_bitmap_(num_groups_),
      listener_(listener) {
  DPSS_CHECK(universe >= 1 && universe <= BitmapSortedList::kMaxUniverse);
  DPSS_CHECK(group_width >= 1);
}

BucketStructure::Location BucketStructure::Insert(uint64_t handle, Weight w) {
  DPSS_CHECK(!w.IsZero());
  const int bucket = w.BucketIndex();
  DPSS_CHECK(bucket < universe_);
  std::vector<Entry>& b = buckets_[bucket];
  if (b.empty()) {
    buckets_bitmap_.Insert(bucket);
    groups_bitmap_.Insert(GroupOfBucket(bucket));
  }
  b.push_back(Entry{handle, w});
  ++size_;
  return Location{bucket, static_cast<uint32_t>(b.size() - 1)};
}

void BucketStructure::Erase(Location loc) {
  DPSS_CHECK(loc.IsValid() && loc.bucket < universe_);
  std::vector<Entry>& b = buckets_[loc.bucket];
  DPSS_CHECK(loc.pos < b.size());
  const uint32_t last = static_cast<uint32_t>(b.size() - 1);
  if (loc.pos != last) {
    b[loc.pos] = b[last];
    if (listener_ != nullptr) {
      listener_->OnRelocate(b[loc.pos].handle, Location{loc.bucket, loc.pos});
    }
  }
  b.pop_back();
  --size_;
  if (b.empty()) {
    buckets_bitmap_.Erase(loc.bucket);
    // Deactivate the group iff no other bucket in it is non-empty.
    const int g = GroupOfBucket(loc.bucket);
    const int lo = g * group_width_;
    const int hi = std::min((g + 1) * group_width_ - 1, universe_ - 1);
    const int next = buckets_bitmap_.Ceiling(lo);
    if (next == -1 || next > hi) groups_bitmap_.Erase(g);
  }
}

void BucketStructure::SetWeight(Location loc, Weight w) {
  DPSS_CHECK(loc.IsValid() && loc.bucket < universe_);
  DPSS_CHECK(!w.IsZero() && w.BucketIndex() == loc.bucket);
  std::vector<Entry>& b = buckets_[loc.bucket];
  DPSS_CHECK(loc.pos < b.size());
  b[loc.pos].weight = w;
}

void BucketStructure::CollectUpTo(int max_bucket,
                                  std::vector<Entry>* out) const {
  if (max_bucket < 0 || Empty()) return;
  const int cap = std::min(max_bucket, universe_ - 1);
  for (int i = buckets_bitmap_.Min(); i != -1 && i <= cap;
       i = buckets_bitmap_.Next(i)) {
    out->insert(out->end(), buckets_[i].begin(), buckets_[i].end());
  }
}

void BucketStructure::CollectFrom(int min_bucket,
                                  std::vector<Entry>* out) const {
  if (Empty()) return;
  const int lo = std::max(min_bucket, 0);
  if (lo >= universe_) return;
  for (int i = buckets_bitmap_.Ceiling(lo); i != -1;
       i = buckets_bitmap_.Next(i)) {
    out->insert(out->end(), buckets_[i].begin(), buckets_[i].end());
  }
}

}  // namespace dpss
