#include "core/bucket_structure.h"

#include <algorithm>
#include <cstring>

namespace dpss {

BucketStructure::BucketStructure(int universe, int group_width,
                                 RelocationListener* listener, Arena* arena)
    : universe_(universe),
      group_width_(group_width),
      num_groups_((universe + group_width - 1) / group_width),
      owned_arena_(arena == nullptr ? std::make_unique<Arena>() : nullptr),
      arena_(arena == nullptr ? owned_arena_.get() : arena),
      free_extents_(kNumSizeClasses),
      listener_(listener) {
  DPSS_CHECK(universe >= 1 && universe <= BitmapSortedList::kMaxUniverse);
  DPSS_CHECK(group_width >= 1);
  // Arena allocations are zero-filled, so the bitmaps start empty and every
  // header starts {offset 0, size 0, capacity 0} without explicit init.
  bitmaps_off_ = arena_->Allocate(2 * kBitmapBlockBytes);
  headers_off_ = arena_->Allocate(universe_ * sizeof(BucketHeader));
}

void BucketStructure::GrowSlab(uint64_t needed) {
  uint64_t new_capacity = std::max<uint64_t>(slab_capacity_ * 2, 64);
  while (new_capacity < slab_used_ + needed) new_capacity *= 2;
  // Allocate first (it may move the whole arena), then resolve offsets.
  const uint64_t new_off = arena_->Allocate(new_capacity * sizeof(PackedEntry));
  if (slab_used_ > 0) {
    std::memcpy(arena_->base() + new_off, arena_->base() + slab_off_,
                slab_used_ * sizeof(PackedEntry));
  }
  // The old slab block stays behind in the arena unreferenced. Doubling
  // bounds the total waste at 2x live, same as the heap-vector regime.
  slab_off_ = new_off;
  slab_capacity_ = new_capacity;
}

uint64_t BucketStructure::AllocExtent(uint32_t capacity) {
  std::vector<uint64_t>& fl = free_extents_[SizeClass(capacity)];
  if (!fl.empty()) {
    const uint64_t offset = fl.back();
    fl.pop_back();
    free_extent_entries_ -= capacity;
    return offset;
  }
  if (slab_used_ + capacity > slab_capacity_) GrowSlab(capacity);
  const uint64_t offset = slab_used_;
  slab_used_ += capacity;
  // Extent capacities are multiples of kMinExtentEntries and the slab base
  // is 64-byte-aligned, so every extent starts on a cache-line boundary.
  DPSS_DCHECK(offset % kMinExtentEntries == 0);
  return offset;
}

void BucketStructure::GrowBucket(int bucket) {
  if (headers()[bucket].capacity == 0) {
    BucketHeader& h = headers()[bucket];
    h.capacity = kMinExtentEntries;
    h.offset = AllocExtent(h.capacity);
    MarkHeaderDirty(bucket);
    return;
  }
  const uint32_t old_capacity = headers()[bucket].capacity;
  const uint64_t old_offset = headers()[bucket].offset;
  const uint32_t new_capacity = old_capacity * 2;
  // Allocate first: AllocExtent may move the arena, and the copy below must
  // read the old extent from the (possibly new) base.
  const uint64_t new_offset = AllocExtent(new_capacity);
  BucketHeader& h = headers()[bucket];
  std::memcpy(slab() + new_offset, slab() + old_offset,
              h.size * sizeof(PackedEntry));
  MarkEntriesDirty(new_offset, h.size);
  h.offset = new_offset;
  h.capacity = new_capacity;
  MarkHeaderDirty(bucket);
  free_extents_[SizeClass(old_capacity)].push_back(old_offset);
  free_extent_entries_ += old_capacity;
}

BucketStructure::Location BucketStructure::Insert(uint64_t handle, Weight w) {
  DPSS_CHECK(!w.IsZero());
  const int bucket = w.BucketIndex();
  DPSS_CHECK(bucket < universe_);
  if (headers()[bucket].size == 0) {
    buckets_bitmap().Insert(bucket);
    groups_bitmap().Insert(GroupOfBucket(bucket));
    MarkBitmapsDirty();
  }
  if (headers()[bucket].size == headers()[bucket].capacity) GrowBucket(bucket);
  BucketHeader& h = headers()[bucket];
  slab()[h.offset + h.size] = PackedEntry{handle, w.mult};
  MarkEntriesDirty(h.offset + h.size, 1);
  DPSS_DCHECK(ExpFor(bucket, w.mult) == w.exp);
  ++size_;
  MarkHeaderDirty(bucket);
  return Location{bucket, h.size++};
}

void BucketStructure::Erase(Location loc) {
  DPSS_CHECK(loc.IsValid() && loc.bucket < universe_);
  BucketHeader& h = headers()[loc.bucket];
  DPSS_CHECK(loc.pos < h.size);
  const uint32_t last = h.size - 1;
  if (loc.pos != last) {
    slab()[h.offset + loc.pos] = slab()[h.offset + last];
    MarkEntriesDirty(h.offset + loc.pos, 1);
    if (listener_ != nullptr) {
      listener_->OnRelocate(slab()[h.offset + loc.pos].handle,
                            Location{loc.bucket, loc.pos});
    }
  }
  h.size = last;
  MarkHeaderDirty(loc.bucket);
  --size_;
  if (h.size == 0) {
    // The bucket keeps its extent for the next insertion — churn at a
    // stable size distribution then never touches an allocator.
    buckets_bitmap().Erase(loc.bucket);
    // Deactivate the group iff no other bucket in it is non-empty.
    const int g = GroupOfBucket(loc.bucket);
    const int lo = g * group_width_;
    const int hi = std::min((g + 1) * group_width_ - 1, universe_ - 1);
    const int next = nonempty_buckets().Ceiling(lo);
    if (next == -1 || next > hi) groups_bitmap().Erase(g);
    MarkBitmapsDirty();
  }
}

void BucketStructure::SetWeight(Location loc, Weight w) {
  DPSS_CHECK(loc.IsValid() && loc.bucket < universe_);
  DPSS_CHECK(!w.IsZero() && w.BucketIndex() == loc.bucket);
  BucketHeader& h = headers()[loc.bucket];
  DPSS_CHECK(loc.pos < h.size);
  slab()[h.offset + loc.pos].mult = w.mult;
  MarkEntriesDirty(h.offset + loc.pos, 1);
}

void BucketStructure::CollectUpTo(int max_bucket,
                                  std::vector<Entry>* out) const {
  if (max_bucket < 0 || Empty()) return;
  const int cap = std::min(max_bucket, universe_ - 1);
  const BitmapConstRef nonempty = nonempty_buckets();
  for (int i = nonempty.Min(); i != -1 && i <= cap; i = nonempty.Next(i)) {
    const int next = nonempty.Next(i);
    if (next != -1 && next <= cap) PrefetchBucket(next);
    const BucketHeader& h = headers()[i];
    const PackedEntry* e = slab() + h.offset;
    for (uint32_t k = 0; k < h.size; ++k) {
      out->push_back(Entry{e[k].handle, WeightFor(i, e[k].mult)});
    }
  }
}

void BucketStructure::CollectFrom(int min_bucket,
                                  std::vector<Entry>* out) const {
  if (Empty()) return;
  const int lo = std::max(min_bucket, 0);
  if (lo >= universe_) return;
  const BitmapConstRef nonempty = nonempty_buckets();
  for (int i = nonempty.Ceiling(lo); i != -1; i = nonempty.Next(i)) {
    const int next = nonempty.Next(i);
    if (next != -1) PrefetchBucket(next);
    const BucketHeader& h = headers()[i];
    const PackedEntry* e = slab() + h.offset;
    for (uint32_t k = 0; k < h.size; ++k) {
      out->push_back(Entry{e[k].handle, WeightFor(i, e[k].mult)});
    }
  }
}

void BucketStructure::AppendHandlesUpTo(int max_bucket,
                                        std::vector<uint64_t>* out) const {
  if (max_bucket < 0 || Empty()) return;
  const int cap = std::min(max_bucket, universe_ - 1);
  const BitmapConstRef nonempty = nonempty_buckets();
  size_t total = 0;
  for (int i = nonempty.Min(); i != -1 && i <= cap; i = nonempty.Next(i)) {
    total += headers()[i].size;
  }
  out->reserve(out->size() + total);
  for (int i = nonempty.Min(); i != -1 && i <= cap; i = nonempty.Next(i)) {
    const int next = nonempty.Next(i);
    if (next != -1 && next <= cap) PrefetchBucket(next);
    const BucketHeader& h = headers()[i];
    const PackedEntry* e = slab() + h.offset;
    for (uint32_t k = 0; k < h.size; ++k) out->push_back(e[k].handle);
  }
}

void BucketStructure::AppendHandlesFrom(int min_bucket,
                                        std::vector<uint64_t>* out) const {
  if (Empty()) return;
  const int lo = std::max(min_bucket, 0);
  if (lo >= universe_) return;
  const BitmapConstRef nonempty = nonempty_buckets();
  size_t total = 0;
  for (int i = nonempty.Ceiling(lo); i != -1; i = nonempty.Next(i)) {
    total += headers()[i].size;
  }
  out->reserve(out->size() + total);
  for (int i = nonempty.Ceiling(lo); i != -1; i = nonempty.Next(i)) {
    const int next = nonempty.Next(i);
    if (next != -1) PrefetchBucket(next);
    const BucketHeader& h = headers()[i];
    const PackedEntry* e = slab() + h.offset;
    for (uint32_t k = 0; k < h.size; ++k) out->push_back(e[k].handle);
  }
}

BucketStructure::SlabStats BucketStructure::slab_stats() const {
  SlabStats s;
  s.capacity_bytes = slab_capacity_ * sizeof(PackedEntry);
  s.live_bytes = size_ * sizeof(PackedEntry);
  s.free_bytes = free_extent_entries_ * sizeof(PackedEntry);
  size_t extent_entries = 0;
  for (int b = 0; b < universe_; ++b) extent_entries += headers()[b].capacity;
  s.extent_bytes = extent_entries * sizeof(PackedEntry);
  if (owned_arena_ != nullptr) {
    s.arena_page_count = arena_->page_count();
    s.arena_dirty_pages = arena_->DirtyPageCount();
  }
  return s;
}

size_t BucketStructure::MemoryBytes() const {
  // A shared arena is counted once by its owner, not per structure.
  size_t bytes =
      owned_arena_ != nullptr ? owned_arena_->capacity_bytes() : 0;
  bytes += free_extents_.capacity() * sizeof(std::vector<uint64_t>);
  for (const auto& fl : free_extents_) bytes += fl.capacity() * sizeof(uint64_t);
  return bytes;
}

}  // namespace dpss
