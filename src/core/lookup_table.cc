#include "core/lookup_table.h"

#include "util/bits.h"

namespace dpss {

int LookupTable::BitsPerSlot(int m) {
  DPSS_CHECK(m >= 1);
  return CeilLog2(static_cast<uint64_t>(m) + 1);
}

LookupTable::LookupTable(int m, int k_slots)
    : m_(m), k_(k_slots), bits_(BitsPerSlot(m)) {
  DPSS_CHECK(m >= 1 && k_slots >= 1);
  DPSS_CHECK(k_ * bits_ <= 64);
  m_sq_ = static_cast<uint64_t>(m_) * static_cast<uint64_t>(m_);
  // (m²)^K must fit a word with room for the alias scaling by 2^K.
  DPSS_CHECK(k_ * (2 * CeilLog2(static_cast<uint64_t>(m_)) ) + k_ + 2 <= 63);
  mass_den_ = 1;
  for (int i = 0; i < k_; ++i) mass_den_ *= m_sq_;
}

uint64_t LookupTable::SlotProbNumerator(int j, int c) const {
  DPSS_DCHECK(j >= 1 && j <= k_ && c >= 0 && c <= m_);
  const uint64_t raw = (static_cast<uint64_t>(c) << (j + 1));
  return raw < m_sq_ ? raw : m_sq_;
}

uint64_t LookupTable::OutcomeMassNumerator(uint64_t packed_config,
                                           uint32_t r) const {
  uint64_t mass = 1;
  for (int j = 1; j <= k_; ++j) {
    const uint64_t a = SlotProbNumerator(j, CountAt(packed_config, j));
    mass *= ((r >> (j - 1)) & 1) != 0 ? a : (m_sq_ - a);
  }
  return mass;
}

const LookupTable::Row& LookupTable::GetOrBuildRow(
    uint64_t packed_config) const {
  auto it = rows_.find(packed_config);
  if (it != rows_.end()) return it->second;

  // Exact integer alias construction (Vose): outcome weights w_r sum to
  // D = (m²)^K; scale by the number of outcomes n = 2^K and fill n buckets
  // of capacity D each.
  const uint32_t n = uint32_t{1} << k_;
  std::vector<uint64_t> scaled(n);
  for (uint32_t r = 0; r < n; ++r) {
    scaled[r] = OutcomeMassNumerator(packed_config, r) << k_;
  }

  Row row;
  row.alias.assign(n, 0);
  row.threshold.assign(n, 0);
  row.bucket_cap = mass_den_;

  std::vector<uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (uint32_t r = 0; r < n; ++r) {
    (scaled[r] < mass_den_ ? small : large).push_back(r);
  }
  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    small.pop_back();
    const uint32_t l = large.back();
    row.threshold[s] = scaled[s];
    row.alias[s] = l;
    scaled[l] -= (mass_den_ - scaled[s]);
    if (scaled[l] < mass_den_) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (uint32_t r : large) {
    row.threshold[r] = mass_den_;
    row.alias[r] = r;
  }
  for (uint32_t r : small) {
    // Only reachable through rounding-free exhaustion; weights are exact so
    // any slot left here holds exactly its own full bucket.
    row.threshold[r] = mass_den_;
    row.alias[r] = r;
  }

  return rows_.emplace(packed_config, std::move(row)).first->second;
}

uint32_t LookupTable::Sample(uint64_t packed_config, RandomEngine& rng) const {
  const Row& row = GetOrBuildRow(packed_config);
  const uint32_t s = static_cast<uint32_t>(rng.NextBits(k_));
  const uint64_t t = rng.NextBelow(row.bucket_cap);
  return t < row.threshold[s] ? s : row.alias[s];
}

void LookupTable::BuildRow(uint64_t packed_config) const {
  GetOrBuildRow(packed_config);
}

size_t LookupTable::CacheBytes() const {
  const size_t per_row = (uint64_t{1} << k_) * (sizeof(uint32_t) + sizeof(uint64_t)) +
                         sizeof(Row) + 2 * sizeof(uint64_t);
  return rows_.size() * per_row;
}

}  // namespace dpss
