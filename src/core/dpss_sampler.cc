#include "core/dpss_sampler.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "random/bernoulli.h"
#include "util/bits.h"
#include "util/check.h"
#include "util/little_endian.h"

namespace dpss {

int DpssSampler::CapacityLog2For(uint64_t n) {
  uint64_t clamped = n < 16 ? 16 : n;
  if (clamped > (uint64_t{1} << 56)) clamped = uint64_t{1} << 56;
  return FloorLog2(NextPowerOf16(clamped));
}

DpssSampler::DpssSampler(const Options& options)
    : options_(options), rng_(options.seed) {
  DPSS_CHECK(options.migrate_per_update >= 5);
  Init(nullptr);
}

DpssSampler::DpssSampler(const std::vector<uint64_t>& weights, uint64_t seed)
    : DpssSampler(weights, Options{seed}) {}

DpssSampler::DpssSampler(const std::vector<uint64_t>& weights,
                         const Options& options)
    : options_(options), rng_(options.seed) {
  DPSS_CHECK(options.migrate_per_update >= 5);
  Init(&weights);
}

void DpssSampler::Init(const std::vector<uint64_t>* weights) {
  for (int c = 0; c < 2; ++c) {
    listeners_[c].owner = this;
    listeners_[c].column = c;
  }
  uint64_t nonzero = 0;
  if (weights != nullptr) {
    for (uint64_t w : *weights) nonzero += w != 0 ? 1 : 0;
  }
  halt_ = std::make_unique<HaltStructure>(CapacityLog2For(nonzero),
                                          &listeners_[active_]);
  n0_ = nonzero < 16 ? 16 : nonzero;
  if (weights == nullptr) return;
  slots_.reserve(weights->size());
  for (uint64_t w : *weights) {
    const ItemId id = AllocateSlot(Weight::FromU64(w));
    const Slot& slot = slots_[SlotIndexOf(id)];
    if (w != 0) {
      halt_->Insert(id, slot.weight);
      AddWeightToTotal(slot.weight);
      ++nonzero_count_;
    }
  }
}

DpssSampler::ItemId DpssSampler::AllocateSlot(Weight w) {
  uint64_t index;
  if (!free_slots_.empty()) {
    index = free_slots_.back();
    free_slots_.pop_back();
  } else {
    index = slots_.size();
    DPSS_CHECK(index <= kIdSlotMask);
    slots_.emplace_back();
  }
  Slot& slot = slots_[index];
  slot.weight = w;
  slot.locs[0] = BucketStructure::Location{};
  slot.locs[1] = BucketStructure::Location{};
  slot.in_next_epoch = 0;
  slot.live = true;
  ++live_count_;
  return MakeId(index, slot.generation);
}

void DpssSampler::AddWeightToTotal(Weight w) {
  if (total_fast_ && w.FitsU128()) {
    const unsigned __int128 v = w.ToU128();
    const unsigned __int128 sum = total_u128_ + v;
    if (sum >= total_u128_) {  // no 128-bit wrap
      total_u128_ = sum;
      total_big_fresh_ = false;
      return;
    }
  }
  // Overflow (or an over-2^128 weight): BigUInt becomes authoritative.
  total_weight_ = total_weight() + w.ToBigUInt();
  total_big_fresh_ = true;
  total_fast_ = false;
}

void DpssSampler::SubWeightFromTotal(Weight w) {
  if (total_fast_) {
    // In fast mode Σw fits u128, and every live weight is <= Σw, so the
    // subtrahend fits too.
    total_u128_ -= w.ToU128();
    total_big_fresh_ = false;
    return;
  }
  total_weight_ = BigUInt::Sub(total_weight_, w.ToBigUInt());
  total_big_fresh_ = true;
  if (total_weight_.FitsU128()) {  // shrink back onto the fast path
    total_u128_ = total_weight_.ToU128();
    total_fast_ = true;
  }
}

DpssSampler::ItemId DpssSampler::Insert(uint64_t weight) {
  return InsertWeight(Weight::FromU64(weight));
}

DpssSampler::ItemId DpssSampler::InsertWeight(Weight w) {
  DPSS_CHECK(w.IsZero() || w.BucketIndex() < kLevel1Universe);
  if (w.IsZero()) w = Weight();  // canonical zero: exp carries no value
  const ItemId id = AllocateSlot(w);
  if (!w.IsZero()) {
    halt_->Insert(id, w);
    if (next_halt_ != nullptr) {
      next_halt_->Insert(id, w);
      slots_[SlotIndexOf(id)].in_next_epoch = migration_epoch_;
    }
    AddWeightToTotal(w);
    ++nonzero_count_;
  }
  AfterUpdate();
  return id;
}

void DpssSampler::Erase(ItemId id) {
  DPSS_CHECK(Contains(id));
  Slot& slot = slots_[SlotIndexOf(id)];
  if (!slot.weight.IsZero()) {
    halt_->Erase(slot.locs[active_]);
    if (next_halt_ != nullptr && slot.in_next_epoch == migration_epoch_) {
      next_halt_->Erase(slot.locs[1 - active_]);
    }
    SubWeightFromTotal(slot.weight);
    --nonzero_count_;
  }
  slot.live = false;
  slot.in_next_epoch = 0;
  // Invalidate every outstanding id for this slot before it is reused.
  slot.generation = (slot.generation + 1) & kIdGenerationMask;
  --live_count_;
  free_slots_.push_back(SlotIndexOf(id));
  AfterUpdate();
}

void DpssSampler::SetWeight(ItemId id, Weight w) {
  DPSS_CHECK(Contains(id));
  DPSS_CHECK(w.IsZero() || w.BucketIndex() < kLevel1Universe);
  // Canonicalize zero so zero-to-zero transitions with different exp
  // representations compare equal below (stored zeros are canonical too).
  if (w.IsZero()) w = Weight();
  Slot& slot = slots_[SlotIndexOf(id)];
  const Weight old = slot.weight;
  if (old == w) {
    AfterUpdate();  // a no-op update still advances any in-flight migration
    return;
  }
  const bool in_next =
      next_halt_ != nullptr && slot.in_next_epoch == migration_epoch_;
  if (old.IsZero()) {
    // Revival: structural insert under the existing id.
    halt_->Insert(id, w);
    if (next_halt_ != nullptr) {
      next_halt_->Insert(id, w);
      slot.in_next_epoch = migration_epoch_;
    }
    AddWeightToTotal(w);
    ++nonzero_count_;
  } else if (w.IsZero()) {
    // Park the item: structural erase, but the slot stays live and the id
    // stays valid (no generation bump).
    halt_->Erase(slot.locs[active_]);
    if (in_next) next_halt_->Erase(slot.locs[1 - active_]);
    slot.in_next_epoch = 0;
    SubWeightFromTotal(old);
    --nonzero_count_;
  } else if (w.BucketIndex() == old.BucketIndex()) {
    // Same level-1 bucket: patch the entries in place — no relocation, no
    // hierarchy propagation, in either structure.
    halt_->SetWeight(slot.locs[active_], w);
    if (in_next) next_halt_->SetWeight(slot.locs[1 - active_], w);
    SubWeightFromTotal(old);
    AddWeightToTotal(w);
  } else {
    // Bucket change: internal erase+reinsert that preserves the id, the
    // slot, and the migration bookkeeping (the listener rewrites locs).
    halt_->Erase(slot.locs[active_]);
    halt_->Insert(id, w);
    if (in_next) {
      next_halt_->Erase(slot.locs[1 - active_]);
      next_halt_->Insert(id, w);
    }
    SubWeightFromTotal(old);
    AddWeightToTotal(w);
  }
  slot.weight = w;
  AfterUpdate();
}

Weight DpssSampler::GetWeight(ItemId id) const {
  DPSS_CHECK(Contains(id));
  return slots_[SlotIndexOf(id)].weight;
}

void DpssSampler::AfterUpdate() {
  if (next_halt_ != nullptr) {
    StepMigration();
    return;
  }
  if (!SizeDrifted()) return;
  if (options_.deamortized_rebuild) {
    StartMigration(nonzero_count_);
    StepMigration();
  } else {
    RebuildAmortized(nonzero_count_);
  }
}

void DpssSampler::RebuildAmortized(uint64_t target_size) {
  halt_ = std::make_unique<HaltStructure>(CapacityLog2For(target_size),
                                          &listeners_[active_]);
  n0_ = target_size < 16 ? 16 : target_size;
  halt_->SetUseLookupTable(use_lookup_table_);
  halt_->SetInsignificantLinearScan(insignificant_linear_scan_);
  halt_->SetForceBigIntArithmetic(force_bigint_);
  halt_->SetUseBlockRng(use_block_rng_);
  ++rebuild_count_;
  for (uint64_t index = 0; index < slots_.size(); ++index) {
    Slot& slot = slots_[index];
    if (slot.live && !slot.weight.IsZero()) {
      halt_->Insert(MakeId(index, slot.generation), slot.weight);
    }
  }
}

void DpssSampler::StartMigration(uint64_t target_size) {
  ++migration_epoch_;
  migration_cursor_ = 0;
  next_halt_ = std::make_unique<HaltStructure>(CapacityLog2For(target_size),
                                               &listeners_[1 - active_]);
  next_halt_->SetUseLookupTable(use_lookup_table_);
  next_halt_->SetInsignificantLinearScan(insignificant_linear_scan_);
  next_halt_->SetForceBigIntArithmetic(force_bigint_);
  next_halt_->SetUseBlockRng(use_block_rng_);
}

void DpssSampler::StepMigration() {
  DPSS_DCHECK(next_halt_ != nullptr);
  // Copy up to migrate_per_update items; skip (cheaply) over dead or
  // already-copied slots, with the scan budget capped so one step stays
  // O(migrate_per_update).
  uint64_t copied = 0;
  uint64_t scanned = 0;
  const uint64_t copy_budget =
      static_cast<uint64_t>(options_.migrate_per_update);
  const uint64_t scan_budget = copy_budget * 8;
  while (migration_cursor_ < slots_.size() && copied < copy_budget &&
         scanned < scan_budget) {
    Slot& slot = slots_[migration_cursor_];
    ++scanned;
    if (slot.live && !slot.weight.IsZero() &&
        slot.in_next_epoch != migration_epoch_) {
      next_halt_->Insert(MakeId(migration_cursor_, slot.generation),
                         slot.weight);
      slot.in_next_epoch = migration_epoch_;
      ++copied;
    }
    ++migration_cursor_;
  }
  if (copied > max_migration_step_) max_migration_step_ = copied;
  if (migration_cursor_ >= slots_.size()) FinishMigration();
}

void DpssSampler::FinishMigration() {
  halt_ = std::move(next_halt_);
  active_ = 1 - active_;
  n0_ = nonzero_count_ < 16 ? 16 : nonzero_count_;
  ++rebuild_count_;
}

void DpssSampler::SetUseLookupTable(bool v) {
  use_lookup_table_ = v;
  halt_->SetUseLookupTable(v);
  if (next_halt_ != nullptr) next_halt_->SetUseLookupTable(v);
}

void DpssSampler::SetInsignificantLinearScan(bool v) {
  insignificant_linear_scan_ = v;
  halt_->SetInsignificantLinearScan(v);
  if (next_halt_ != nullptr) next_halt_->SetInsignificantLinearScan(v);
}

void DpssSampler::SetForceBigIntArithmetic(bool v) {
  force_bigint_ = v;
  halt_->SetForceBigIntArithmetic(v);
  if (next_halt_ != nullptr) next_halt_->SetForceBigIntArithmetic(v);
}

void DpssSampler::SetUseBlockRng(bool v) {
  use_block_rng_ = v;
  halt_->SetUseBlockRng(v);
  if (next_halt_ != nullptr) next_halt_->SetUseBlockRng(v);
}

void DpssSampler::ComputeW(Rational64 alpha, Rational64 beta, BigUInt* num,
                           BigUInt* den) const {
  DPSS_CHECK(alpha.den > 0 && beta.den > 0);
  // W = (alpha.num·Σw·beta.den + beta.num·alpha.den) / (alpha.den·beta.den)
  const BigUInt term1 =
      BigUInt::MulU64(BigUInt::MulU64(total_weight(), alpha.num), beta.den);
  const BigUInt term2 =
      BigUInt::FromU128(static_cast<unsigned __int128>(beta.num) * alpha.den);
  *num = term1 + term2;
  *den = BigUInt::FromU128(static_cast<unsigned __int128>(alpha.den) *
                           beta.den);
}

std::vector<DpssSampler::ItemId> DpssSampler::Sample(Rational64 alpha,
                                                     Rational64 beta) {
  return Sample(alpha, beta, rng_);
}

std::vector<DpssSampler::ItemId> DpssSampler::Sample(Rational64 alpha,
                                                     Rational64 beta,
                                                     RandomEngine& rng) const {
  std::vector<ItemId> out;
  SampleInto(alpha, beta, rng, &out);
  return out;
}

void DpssSampler::SampleInto(Rational64 alpha, Rational64 beta,
                             std::vector<ItemId>* out) {
  SampleInto(alpha, beta, rng_, out);
}

void DpssSampler::SampleInto(Rational64 alpha, Rational64 beta,
                             RandomEngine& rng,
                             std::vector<ItemId>* out) const {
  BigUInt wnum, wden;
  ComputeW(alpha, beta, &wnum, &wden);
  SampleIntoW(wnum, wden, rng, out);
}

void DpssSampler::SampleIntoW(const BigUInt& wnum, const BigUInt& wden,
                              RandomEngine& rng,
                              std::vector<ItemId>* out) const {
  // μ ≈ Σw·wden/wnum when no item probability caps at 1; the bit-length
  // quotient brackets that within 2x, which is enough for a reserve hint.
  // Capped items make the estimate an overcount (arbitrarily so for skewed
  // weights), so the hint is also bounded by a constant: beyond it the
  // buffer reaches steady state through actual outputs in O(log) doublings
  // and stays there across calls.
  if (!wnum.IsZero() && !total_weight().IsZero()) {
    constexpr uint64_t kMaxReserveHint = 4096;
    const int diff =
        total_weight().BitLength() + wden.BitLength() - wnum.BitLength();
    if (diff >= 0) {
      const uint64_t est =
          diff >= 62 ? kMaxReserveHint : std::min(kMaxReserveHint,
                                                  uint64_t{2} << diff);
      out->reserve(std::min(est, nonzero_count_));
    }
  }
  halt_->SampleInto(wnum, wden, rng, out);
}

double DpssSampler::ExpectedSampleSize(Rational64 alpha,
                                       Rational64 beta) const {
  BigUInt wnum, wden;
  ComputeW(alpha, beta, &wnum, &wden);
  return ExpectedSampleSizeW(wnum, wden);
}

double DpssSampler::ExpectedSampleSizeW(const BigUInt& wnum,
                                        const BigUInt& wden) const {
  if (wnum.IsZero()) return static_cast<double>(nonzero_count_);
  // inv_w = wden / wnum; p_x = min(1, mult·2^exp·inv_w).
  const double inv_w = BigRational(wden, wnum).ToDouble();
  double mu = 0;
  const BucketStructure& bg = halt_->level1();
  const BitmapConstRef buckets = bg.nonempty_buckets();
  for (int b = buckets.Min(); b != -1; b = buckets.Next(b)) {
    const BucketStructure::BucketView view = bg.Bucket(b);
    for (uint32_t i = 0; i < view.size(); ++i) {
      const Weight w = view.WeightAt(i);
      const double p = static_cast<double>(w.mult) * inv_w *
                       std::exp2(static_cast<double>(w.exp));
      mu += p < 1.0 ? p : 1.0;
    }
  }
  return mu;
}

bool DpssSampler::SampleOne(RandomEngine& rng, ItemId* out) const {
  DPSS_CHECK(out != nullptr);
  if (nonzero_count_ == 0) return false;
  // Bucket-proportional rejection over the level-1 buckets: bucket b holds
  // count_b items with weights in [2^b, 2^{b+1}), so count_b·2^{b+1}
  // overestimates its mass by less than 2x. Draw a bucket ∝ that bound and
  // a uniform member, then accept with the exact ratio w/2^{b+1} =
  // mult/2^{L+1} (L = floor(log2 mult), so L+1 <= 64 random bits per
  // coin). Acceptance is >= 1/2 everywhere, so O(1) expected rounds, and
  // the accepted law is exactly w(x)/Σw.
  const BucketStructure& bg = halt_->level1();
  const BitmapConstRef buckets = bg.nonempty_buckets();
  struct BucketCum {
    int b;
    BigUInt cum;  // inclusive prefix sum of count·2^{b+1} bounds
  };
  std::vector<BucketCum> cums;
  BigUInt grand;
  for (int b = buckets.Min(); b != -1; b = buckets.Next(b)) {
    const uint64_t count = bg.BucketSize(b);
    if (count == 0) continue;
    grand = grand + BigUInt::ShiftLeft(BigUInt(count), b + 1);
    cums.push_back({b, grand});
  }
  DPSS_CHECK(!cums.empty());
  for (;;) {
    const BigUInt r = RandomBigBelow(grand, rng);
    int b = -1;
    for (const BucketCum& bc : cums) {
      if (r < bc.cum) {
        b = bc.b;
        break;
      }
    }
    DPSS_CHECK(b >= 0);
    const BucketStructure::BucketView view = bg.Bucket(b);
    const uint32_t i =
        static_cast<uint32_t>(rng.NextBelow(view.size()));
    const Weight w = view.WeightAt(i);
    if (rng.NextBits(BitLength(w.mult)) < w.mult) {
      *out = view.EntryAt(i).handle;
      return true;
    }
  }
}

void DpssSampler::CollectTop(
    uint64_t k, std::vector<std::pair<ItemId, Weight>>* out) const {
  DPSS_CHECK(out != nullptr);
  out->clear();
  if (k == 0 || nonzero_count_ == 0) return;
  const BucketStructure& bg = halt_->level1();
  const BitmapConstRef buckets = bg.nonempty_buckets();
  std::vector<int> order;
  for (int b = buckets.Min(); b != -1; b = buckets.Next(b)) {
    order.push_back(b);
  }
  // Harvest whole buckets from the heaviest down until k items are in
  // hand: everything in a lighter bucket is strictly lighter than
  // everything collected, so only the last bucket over-collects — by less
  // than one bucket's worth, which the final sort-and-truncate trims.
  for (auto it = order.rbegin(); it != order.rend() && out->size() < k;
       ++it) {
    const BucketStructure::BucketView view = bg.Bucket(*it);
    for (uint32_t i = 0; i < view.size(); ++i) {
      const BucketStructure::Entry e = view.EntryAt(i);
      out->emplace_back(e.handle, e.weight);
    }
  }
  std::sort(out->begin(), out->end(),
            [](const std::pair<ItemId, Weight>& a,
               const std::pair<ItemId, Weight>& b) {
              return CompareWeights(a.second, b.second) > 0;
            });
  if (out->size() > k) out->resize(k);
}

void DpssSampler::CollectAtLeast(
    Weight threshold, std::vector<std::pair<ItemId, Weight>>* out) const {
  DPSS_CHECK(out != nullptr);
  out->clear();
  if (nonzero_count_ == 0) return;
  // Buckets strictly above the threshold's bucket qualify wholesale
  // (their weights are >= 2^b > threshold), buckets below are skipped
  // wholesale (their weights are < 2^{b+1} <= 2^{tb} <= threshold); only
  // the threshold's own bucket needs per-entry comparison.
  const int tb = threshold.IsZero() ? -1 : threshold.BucketIndex();
  const BucketStructure& bg = halt_->level1();
  const BitmapConstRef buckets = bg.nonempty_buckets();
  for (int b = buckets.Min(); b != -1; b = buckets.Next(b)) {
    if (b < tb) continue;
    const BucketStructure::BucketView view = bg.Bucket(b);
    for (uint32_t i = 0; i < view.size(); ++i) {
      const BucketStructure::Entry e = view.EntryAt(i);
      if (b == tb && CompareWeights(e.weight, threshold) < 0) continue;
      out->emplace_back(e.handle, e.weight);
    }
  }
}

void DpssSampler::CheckInvariants() const {
  halt_->CheckInvariants();
  if (next_halt_ != nullptr) next_halt_->CheckInvariants();
  uint64_t live = 0, nonzero = 0, in_next = 0;
  BigUInt total;
  for (uint64_t index = 0; index < slots_.size(); ++index) {
    const Slot& slot = slots_[index];
    DPSS_CHECK(slot.generation <= kIdGenerationMask);
    if (!slot.live) continue;
    ++live;
    if (slot.weight.IsZero()) continue;
    ++nonzero;
    total = total + slot.weight.ToBigUInt();
    const ItemId id = MakeId(index, slot.generation);
    const BucketStructure::Entry e =
        halt_->level1().EntryAt(slot.locs[active_]);
    DPSS_CHECK(e.handle == id);
    DPSS_CHECK(e.weight == slot.weight);
    if (next_halt_ != nullptr && slot.in_next_epoch == migration_epoch_) {
      ++in_next;
      const BucketStructure::Entry e2 =
          next_halt_->level1().EntryAt(slot.locs[1 - active_]);
      DPSS_CHECK(e2.handle == id);
      DPSS_CHECK(e2.weight == slot.weight);
    }
  }
  DPSS_CHECK(live == live_count_);
  DPSS_CHECK(nonzero == nonzero_count_);
  DPSS_CHECK(nonzero == halt_->size());
  if (next_halt_ != nullptr) DPSS_CHECK(in_next == next_halt_->size());
  DPSS_CHECK(total == total_weight());
  // The u128 cache and the BigUInt mirror must agree whenever both exist.
  if (total_fast_) DPSS_CHECK(total == BigUInt::FromU128(total_u128_));
}

namespace {

// Snapshot format v3: v1 ("DPSS1S") records were (live, mult, exp); v2
// added the slot generation so live ids — which embed the generation —
// survive a round trip and stale pre-snapshot ids stay invalid after a
// load. v3 additionally records the free-slot LIFO *in order*, so a
// restored sampler assigns exactly the ids the original would have — the
// determinism the write-ahead-log replay in persist/recovery.h depends on
// (a v2 load rebuilt the free list in ascending slot order, which made
// post-restore inserts pick different slots than the live run).
constexpr uint64_t kSnapshotMagic = 0x445053533353ULL;  // "DPSS3S"

}  // namespace

void DpssSampler::Serialize(std::string* out) const {
  DPSS_CHECK(out != nullptr);
  AppendU64(out, kSnapshotMagic);
  AppendU64(out, slots_.size());
  for (const Slot& slot : slots_) {
    // One record per slot: liveness, multiplier, exponent, generation. Dead
    // slots keep their position (and generation) so live item ids survive
    // the round trip and stale ids stay stale.
    AppendU64(out, slot.live ? 1 : 0);
    AppendU64(out, slot.live ? slot.weight.mult : 0);
    AppendU64(out, slot.live ? slot.weight.exp : 0);
    AppendU64(out, slot.generation);
  }
  // The free-slot LIFO, bottom to top: restoring it verbatim makes slot
  // assignment after a load identical to slot assignment after the save.
  AppendU64(out, free_slots_.size());
  for (const uint64_t slot : free_slots_) AppendU64(out, slot);
}

Status DpssSampler::Deserialize(const std::string& bytes,
                                const Options& options, DpssSampler* out) {
  DPSS_CHECK(out != nullptr);
  size_t pos = 0;
  uint64_t magic = 0, count = 0;
  if (!ReadU64(bytes, &pos, &magic) || magic != kSnapshotMagic) {
    return BadSnapshotError("bad magic / not a DPSS2S snapshot");
  }
  if (!ReadU64(bytes, &pos, &count)) {
    return BadSnapshotError("truncated header");
  }
  if (count > kIdSlotMask + 1 || pos + count * 32 + 8 > bytes.size()) {
    return BadSnapshotError("slot count does not match snapshot length");
  }

  // Validate the whole snapshot before mutating `out`.
  std::vector<Weight> weights(count);
  std::vector<bool> live(count, false);
  std::vector<uint32_t> generations(count, 0);
  uint64_t live_count = 0, nonzero_count = 0;
  for (uint64_t id = 0; id < count; ++id) {
    uint64_t is_live = 0, mult = 0, exp = 0, gen = 0;
    if (!ReadU64(bytes, &pos, &is_live) || !ReadU64(bytes, &pos, &mult) ||
        !ReadU64(bytes, &pos, &exp) || !ReadU64(bytes, &pos, &gen)) {
      return BadSnapshotError("truncated slot record");
    }
    if (is_live > 1) {
      return BadSnapshotError("corrupt slot record");
    }
    if (gen > kIdGenerationMask) {
      return BadSnapshotError("slot generation out of range");
    }
    generations[id] = static_cast<uint32_t>(gen);
    if (is_live == 0) continue;
    // Any valid non-zero weight has exp < kLevel1Universe (the bucket index
    // exp + log2(mult) must stay below it). Checking exp against that small
    // bound *before* building the Weight also keeps a corrupt 2^31-ish exp
    // from overflowing BucketIndex()'s int arithmetic into a negative
    // bucket — an out-of-bounds write during the rebuild below.
    if (mult != 0 && exp >= static_cast<uint64_t>(kLevel1Universe)) {
      return BadSnapshotError("weight exponent outside the level-1 universe");
    }
    // Canonical zero, as everywhere else in the sampler.
    const Weight w =
        mult == 0 ? Weight() : Weight(mult, static_cast<uint32_t>(exp));
    if (!w.IsZero() && w.BucketIndex() >= kLevel1Universe) {
      return BadSnapshotError("weight outside the level-1 universe");
    }
    live[id] = true;
    weights[id] = w;
    ++live_count;
    if (!w.IsZero()) ++nonzero_count;
  }

  // The serialized free-slot LIFO must be a permutation of exactly the
  // dead slots: every entry in range, dead, and listed once. Anything else
  // (a bit flip into the list, a truncated tail) is rejected before `out`
  // is touched.
  uint64_t free_count = 0;
  if (!ReadU64(bytes, &pos, &free_count) ||
      free_count != count - live_count ||
      pos + free_count * 8 != bytes.size()) {
    return BadSnapshotError("free-slot list does not match snapshot length");
  }
  std::vector<uint64_t> free_list(free_count);
  std::vector<bool> seen_free(count, false);
  for (uint64_t i = 0; i < free_count; ++i) {
    uint64_t slot = 0;
    if (!ReadU64(bytes, &pos, &slot)) {
      return BadSnapshotError("truncated free-slot list");
    }
    if (slot >= count || live[slot] || seen_free[slot]) {
      return BadSnapshotError("free-slot list names a live or repeated slot");
    }
    seen_free[slot] = true;
    free_list[i] = slot;
  }

  // Reset `out` in place (the listeners are self-referential, so the object
  // cannot be moved).
  out->options_ = options;
  out->rng_.Seed(options.seed);
  out->slots_.assign(count, Slot{});
  out->free_slots_ = std::move(free_list);
  out->live_count_ = live_count;
  out->nonzero_count_ = nonzero_count;
  out->ResetTotals();
  out->next_halt_.reset();
  out->migration_cursor_ = 0;
  out->max_migration_step_ = 0;
  out->rebuild_count_ = 0;
  out->halt_ = std::make_unique<HaltStructure>(
      CapacityLog2For(nonzero_count), &out->listeners_[out->active_]);
  out->halt_->SetUseLookupTable(out->use_lookup_table_);
  out->halt_->SetInsignificantLinearScan(out->insignificant_linear_scan_);
  out->halt_->SetForceBigIntArithmetic(out->force_bigint_);
  out->halt_->SetUseBlockRng(out->use_block_rng_);
  out->n0_ = nonzero_count < 16 ? 16 : nonzero_count;
  for (uint64_t id = 0; id < count; ++id) {
    Slot& slot = out->slots_[id];
    slot.generation = generations[id];
    if (!live[id]) continue;
    slot.live = true;
    slot.weight = weights[id];
    if (!slot.weight.IsZero()) {
      out->halt_->Insert(MakeId(id, slot.generation), slot.weight);
      out->AddWeightToTotal(slot.weight);
    }
  }
  return Status::Ok();
}

size_t DpssSampler::ApproxMemoryBytes() const {
  size_t bytes = halt_->ApproxMemoryBytes() + slots_.capacity() * sizeof(Slot) +
                 free_slots_.capacity() * sizeof(ItemId) + sizeof(*this);
  if (next_halt_ != nullptr) bytes += next_halt_->ApproxMemoryBytes();
  return bytes;
}

}  // namespace dpss
