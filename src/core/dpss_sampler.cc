#include "core/dpss_sampler.h"

#include <algorithm>
#include <cmath>

#include "util/bits.h"
#include "util/check.h"

namespace dpss {

int DpssSampler::CapacityLog2For(uint64_t n) {
  uint64_t clamped = n < 16 ? 16 : n;
  if (clamped > (uint64_t{1} << 56)) clamped = uint64_t{1} << 56;
  return FloorLog2(NextPowerOf16(clamped));
}

DpssSampler::DpssSampler(const Options& options)
    : options_(options), rng_(options.seed) {
  DPSS_CHECK(options.migrate_per_update >= 5);
  Init(nullptr);
}

DpssSampler::DpssSampler(const std::vector<uint64_t>& weights, uint64_t seed)
    : DpssSampler(weights, Options{seed}) {}

DpssSampler::DpssSampler(const std::vector<uint64_t>& weights,
                         const Options& options)
    : options_(options), rng_(options.seed) {
  DPSS_CHECK(options.migrate_per_update >= 5);
  Init(&weights);
}

void DpssSampler::Init(const std::vector<uint64_t>* weights) {
  for (int c = 0; c < 2; ++c) {
    listeners_[c].owner = this;
    listeners_[c].column = c;
  }
  uint64_t nonzero = 0;
  if (weights != nullptr) {
    for (uint64_t w : *weights) nonzero += w != 0 ? 1 : 0;
  }
  halt_ = std::make_unique<HaltStructure>(CapacityLog2For(nonzero),
                                          &listeners_[active_]);
  n0_ = nonzero < 16 ? 16 : nonzero;
  if (weights == nullptr) return;
  slots_.reserve(weights->size());
  for (uint64_t w : *weights) {
    const ItemId id = AllocateSlot(Weight::FromU64(w));
    if (w != 0) {
      halt_->Insert(id, slots_[id].weight);
      total_weight_ = total_weight_ + slots_[id].weight.ToBigUInt();
      ++nonzero_count_;
    }
  }
}

DpssSampler::ItemId DpssSampler::AllocateSlot(Weight w) {
  ItemId id;
  if (!free_slots_.empty()) {
    id = free_slots_.back();
    free_slots_.pop_back();
  } else {
    id = slots_.size();
    slots_.emplace_back();
  }
  Slot& slot = slots_[id];
  slot.weight = w;
  slot.locs[0] = BucketStructure::Location{};
  slot.locs[1] = BucketStructure::Location{};
  slot.in_next_epoch = 0;
  slot.live = true;
  ++live_count_;
  return id;
}

DpssSampler::ItemId DpssSampler::Insert(uint64_t weight) {
  return InsertWeight(Weight::FromU64(weight));
}

DpssSampler::ItemId DpssSampler::InsertWeight(Weight w) {
  DPSS_CHECK(w.IsZero() || w.BucketIndex() < kLevel1Universe);
  const ItemId id = AllocateSlot(w);
  if (!w.IsZero()) {
    halt_->Insert(id, w);
    if (next_halt_ != nullptr) {
      next_halt_->Insert(id, w);
      slots_[id].in_next_epoch = migration_epoch_;
    }
    total_weight_ = total_weight_ + w.ToBigUInt();
    ++nonzero_count_;
  }
  AfterUpdate();
  return id;
}

void DpssSampler::Erase(ItemId id) {
  DPSS_CHECK(Contains(id));
  Slot& slot = slots_[id];
  if (!slot.weight.IsZero()) {
    halt_->Erase(slot.locs[active_]);
    if (next_halt_ != nullptr && slot.in_next_epoch == migration_epoch_) {
      next_halt_->Erase(slot.locs[1 - active_]);
    }
    total_weight_ = BigUInt::Sub(total_weight_, slot.weight.ToBigUInt());
    --nonzero_count_;
  }
  slot.live = false;
  slot.in_next_epoch = 0;
  --live_count_;
  free_slots_.push_back(id);
  AfterUpdate();
}

Weight DpssSampler::GetWeight(ItemId id) const {
  DPSS_CHECK(Contains(id));
  return slots_[id].weight;
}

void DpssSampler::AfterUpdate() {
  if (next_halt_ != nullptr) {
    StepMigration();
    return;
  }
  if (!SizeDrifted()) return;
  if (options_.deamortized_rebuild) {
    StartMigration(nonzero_count_);
    StepMigration();
  } else {
    RebuildAmortized(nonzero_count_);
  }
}

void DpssSampler::RebuildAmortized(uint64_t target_size) {
  halt_ = std::make_unique<HaltStructure>(CapacityLog2For(target_size),
                                          &listeners_[active_]);
  n0_ = target_size < 16 ? 16 : target_size;
  halt_->SetUseLookupTable(use_lookup_table_);
  halt_->SetInsignificantLinearScan(insignificant_linear_scan_);
  halt_->SetForceBigIntArithmetic(force_bigint_);
  ++rebuild_count_;
  for (ItemId id = 0; id < slots_.size(); ++id) {
    Slot& slot = slots_[id];
    if (slot.live && !slot.weight.IsZero()) {
      halt_->Insert(id, slot.weight);
    }
  }
}

void DpssSampler::StartMigration(uint64_t target_size) {
  ++migration_epoch_;
  migration_cursor_ = 0;
  next_halt_ = std::make_unique<HaltStructure>(CapacityLog2For(target_size),
                                               &listeners_[1 - active_]);
  next_halt_->SetUseLookupTable(use_lookup_table_);
  next_halt_->SetInsignificantLinearScan(insignificant_linear_scan_);
  next_halt_->SetForceBigIntArithmetic(force_bigint_);
}

void DpssSampler::StepMigration() {
  DPSS_DCHECK(next_halt_ != nullptr);
  // Copy up to migrate_per_update items; skip (cheaply) over dead or
  // already-copied slots, with the scan budget capped so one step stays
  // O(migrate_per_update).
  uint64_t copied = 0;
  uint64_t scanned = 0;
  const uint64_t copy_budget =
      static_cast<uint64_t>(options_.migrate_per_update);
  const uint64_t scan_budget = copy_budget * 8;
  while (migration_cursor_ < slots_.size() && copied < copy_budget &&
         scanned < scan_budget) {
    Slot& slot = slots_[migration_cursor_];
    ++scanned;
    if (slot.live && !slot.weight.IsZero() &&
        slot.in_next_epoch != migration_epoch_) {
      next_halt_->Insert(migration_cursor_, slot.weight);
      slot.in_next_epoch = migration_epoch_;
      ++copied;
    }
    ++migration_cursor_;
  }
  if (copied > max_migration_step_) max_migration_step_ = copied;
  if (migration_cursor_ >= slots_.size()) FinishMigration();
}

void DpssSampler::FinishMigration() {
  halt_ = std::move(next_halt_);
  active_ = 1 - active_;
  n0_ = nonzero_count_ < 16 ? 16 : nonzero_count_;
  ++rebuild_count_;
}

void DpssSampler::SetUseLookupTable(bool v) {
  use_lookup_table_ = v;
  halt_->SetUseLookupTable(v);
  if (next_halt_ != nullptr) next_halt_->SetUseLookupTable(v);
}

void DpssSampler::SetInsignificantLinearScan(bool v) {
  insignificant_linear_scan_ = v;
  halt_->SetInsignificantLinearScan(v);
  if (next_halt_ != nullptr) next_halt_->SetInsignificantLinearScan(v);
}

void DpssSampler::SetForceBigIntArithmetic(bool v) {
  force_bigint_ = v;
  halt_->SetForceBigIntArithmetic(v);
  if (next_halt_ != nullptr) next_halt_->SetForceBigIntArithmetic(v);
}

void DpssSampler::ComputeW(Rational64 alpha, Rational64 beta, BigUInt* num,
                           BigUInt* den) const {
  DPSS_CHECK(alpha.den > 0 && beta.den > 0);
  // W = (alpha.num·Σw·beta.den + beta.num·alpha.den) / (alpha.den·beta.den)
  const BigUInt term1 =
      BigUInt::MulU64(BigUInt::MulU64(total_weight_, alpha.num), beta.den);
  const BigUInt term2 =
      BigUInt::FromU128(static_cast<unsigned __int128>(beta.num) * alpha.den);
  *num = term1 + term2;
  *den = BigUInt::FromU128(static_cast<unsigned __int128>(alpha.den) *
                           beta.den);
}

std::vector<DpssSampler::ItemId> DpssSampler::Sample(Rational64 alpha,
                                                     Rational64 beta) {
  return Sample(alpha, beta, rng_);
}

std::vector<DpssSampler::ItemId> DpssSampler::Sample(Rational64 alpha,
                                                     Rational64 beta,
                                                     RandomEngine& rng) const {
  std::vector<ItemId> out;
  SampleInto(alpha, beta, rng, &out);
  return out;
}

void DpssSampler::SampleInto(Rational64 alpha, Rational64 beta,
                             std::vector<ItemId>* out) {
  SampleInto(alpha, beta, rng_, out);
}

void DpssSampler::SampleInto(Rational64 alpha, Rational64 beta,
                             RandomEngine& rng,
                             std::vector<ItemId>* out) const {
  BigUInt wnum, wden;
  ComputeW(alpha, beta, &wnum, &wden);
  // μ ≈ Σw·wden/wnum when no item probability caps at 1; the bit-length
  // quotient brackets that within 2x, which is enough for a reserve hint.
  // Capped items make the estimate an overcount (arbitrarily so for skewed
  // weights), so the hint is also bounded by a constant: beyond it the
  // buffer reaches steady state through actual outputs in O(log) doublings
  // and stays there across calls.
  if (!wnum.IsZero() && !total_weight_.IsZero()) {
    constexpr uint64_t kMaxReserveHint = 4096;
    const int diff =
        total_weight_.BitLength() + wden.BitLength() - wnum.BitLength();
    if (diff >= 0) {
      const uint64_t est =
          diff >= 62 ? kMaxReserveHint : std::min(kMaxReserveHint,
                                                  uint64_t{2} << diff);
      out->reserve(std::min(est, nonzero_count_));
    }
  }
  halt_->SampleInto(wnum, wden, rng, out);
}

double DpssSampler::ExpectedSampleSize(Rational64 alpha,
                                       Rational64 beta) const {
  BigUInt wnum, wden;
  ComputeW(alpha, beta, &wnum, &wden);
  if (wnum.IsZero()) return static_cast<double>(nonzero_count_);
  // inv_w = wden / wnum; p_x = min(1, mult·2^exp·inv_w).
  const double inv_w = BigRational(wden, wnum).ToDouble();
  double mu = 0;
  const BucketStructure& bg = halt_->level1();
  const BitmapSortedList& buckets = bg.nonempty_buckets();
  for (int b = buckets.Min(); b != -1; b = buckets.Next(b)) {
    for (const BucketStructure::Entry& e : bg.Bucket(b)) {
      const double p = static_cast<double>(e.weight.mult) * inv_w *
                       std::exp2(static_cast<double>(e.weight.exp));
      mu += p < 1.0 ? p : 1.0;
    }
  }
  return mu;
}

void DpssSampler::CheckInvariants() const {
  halt_->CheckInvariants();
  if (next_halt_ != nullptr) next_halt_->CheckInvariants();
  uint64_t live = 0, nonzero = 0, in_next = 0;
  BigUInt total;
  for (ItemId id = 0; id < slots_.size(); ++id) {
    const Slot& slot = slots_[id];
    if (!slot.live) continue;
    ++live;
    if (slot.weight.IsZero()) continue;
    ++nonzero;
    total = total + slot.weight.ToBigUInt();
    const BucketStructure::Entry& e =
        halt_->level1().EntryAt(slot.locs[active_]);
    DPSS_CHECK(e.handle == id);
    DPSS_CHECK(e.weight == slot.weight);
    if (next_halt_ != nullptr && slot.in_next_epoch == migration_epoch_) {
      ++in_next;
      const BucketStructure::Entry& e2 =
          next_halt_->level1().EntryAt(slot.locs[1 - active_]);
      DPSS_CHECK(e2.handle == id);
      DPSS_CHECK(e2.weight == slot.weight);
    }
  }
  DPSS_CHECK(live == live_count_);
  DPSS_CHECK(nonzero == nonzero_count_);
  DPSS_CHECK(nonzero == halt_->size());
  if (next_halt_ != nullptr) DPSS_CHECK(in_next == next_halt_->size());
  DPSS_CHECK(total == total_weight_);
}

namespace {

constexpr uint64_t kSnapshotMagic = 0x445053533153ULL;  // "DPSS1S"

void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

bool ReadU64(const std::string& in, size_t* pos, uint64_t* v) {
  if (*pos + 8 > in.size()) return false;
  uint64_t r = 0;
  for (int i = 0; i < 8; ++i) {
    r |= static_cast<uint64_t>(static_cast<unsigned char>(in[*pos + i]))
         << (8 * i);
  }
  *pos += 8;
  *v = r;
  return true;
}

}  // namespace

void DpssSampler::Serialize(std::string* out) const {
  DPSS_CHECK(out != nullptr);
  AppendU64(out, kSnapshotMagic);
  AppendU64(out, slots_.size());
  for (const Slot& slot : slots_) {
    // One record per slot: liveness, multiplier, exponent. Dead slots keep
    // their position so live item ids survive the round trip.
    AppendU64(out, slot.live ? 1 : 0);
    AppendU64(out, slot.live ? slot.weight.mult : 0);
    AppendU64(out, slot.live ? slot.weight.exp : 0);
  }
}

bool DpssSampler::Deserialize(const std::string& bytes, const Options& options,
                              DpssSampler* out) {
  DPSS_CHECK(out != nullptr);
  size_t pos = 0;
  uint64_t magic = 0, count = 0;
  if (!ReadU64(bytes, &pos, &magic) || magic != kSnapshotMagic) return false;
  if (!ReadU64(bytes, &pos, &count)) return false;
  if (pos + count * 24 != bytes.size()) return false;

  // Validate the whole snapshot before mutating `out`.
  std::vector<Weight> weights(count);
  std::vector<bool> live(count, false);
  uint64_t live_count = 0, nonzero_count = 0;
  for (uint64_t id = 0; id < count; ++id) {
    uint64_t is_live = 0, mult = 0, exp = 0;
    if (!ReadU64(bytes, &pos, &is_live) || !ReadU64(bytes, &pos, &mult) ||
        !ReadU64(bytes, &pos, &exp)) {
      return false;
    }
    if (is_live > 1 || exp > (uint64_t{1} << 31)) return false;
    if (is_live == 0) continue;
    const Weight w(mult, static_cast<uint32_t>(exp));
    if (!w.IsZero() && w.BucketIndex() >= kLevel1Universe) return false;
    live[id] = true;
    weights[id] = w;
    ++live_count;
    if (!w.IsZero()) ++nonzero_count;
  }

  // Reset `out` in place (the listeners are self-referential, so the object
  // cannot be moved).
  out->options_ = options;
  out->rng_.Seed(options.seed);
  out->slots_.assign(count, Slot{});
  out->free_slots_.clear();
  out->live_count_ = live_count;
  out->nonzero_count_ = nonzero_count;
  out->total_weight_ = BigUInt();
  out->next_halt_.reset();
  out->migration_cursor_ = 0;
  out->max_migration_step_ = 0;
  out->rebuild_count_ = 0;
  out->halt_ = std::make_unique<HaltStructure>(
      CapacityLog2For(nonzero_count), &out->listeners_[out->active_]);
  out->halt_->SetUseLookupTable(out->use_lookup_table_);
  out->halt_->SetInsignificantLinearScan(out->insignificant_linear_scan_);
  out->halt_->SetForceBigIntArithmetic(out->force_bigint_);
  out->n0_ = nonzero_count < 16 ? 16 : nonzero_count;
  for (uint64_t id = 0; id < count; ++id) {
    if (!live[id]) {
      out->free_slots_.push_back(id);
      continue;
    }
    Slot& slot = out->slots_[id];
    slot.live = true;
    slot.weight = weights[id];
    if (!slot.weight.IsZero()) {
      out->halt_->Insert(id, slot.weight);
      out->total_weight_ = out->total_weight_ + slot.weight.ToBigUInt();
    }
  }
  return true;
}

size_t DpssSampler::ApproxMemoryBytes() const {
  size_t bytes = halt_->ApproxMemoryBytes() + slots_.capacity() * sizeof(Slot) +
                 free_slots_.capacity() * sizeof(ItemId) + sizeof(*this);
  if (next_halt_ != nullptr) bytes += next_halt_->ApproxMemoryBytes();
  return bytes;
}

}  // namespace dpss
