// The static lookup table for the 4S problem (paper §4.3).
//
// A 4S instance has K items; item j (1-based) is sampled independently with
// probability p_j = min{1, 2^{j+1}·c_j / m²}, where the configuration vector
// c = (c_1..c_K), c_j ∈ [0, m], fully describes the instance. Every subset
// result is a K-bit string r with
//     Pr(r) = Π_j (r_j ? p_j : 1-p_j),
// an integer multiple of (m²)^-K.
//
// The paper materialises, per configuration, an array of (m²)^K cells so one
// uniform cell pick answers the query. That literal array is astronomically
// large for practical n₀ (see DESIGN.md §5(a)); we store instead, per
// configuration, an exact integer alias table over the 2^K outcomes with
// weights on the common denominator (m²)^K — the identical output
// distribution with O(1)-time queries and O(2^K) words per row. Rows are
// built lazily and cached, keyed by the packed O(1)-word configuration
// (Lemma 4.12).

#ifndef DPSS_CORE_LOOKUP_TABLE_H_
#define DPSS_CORE_LOOKUP_TABLE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/check.h"
#include "util/random.h"

namespace dpss {

class LookupTable {
 public:
  // Requires 1 <= k_slots, 1 <= m, and k_slots * BitsPerSlot(m) <= 64 so a
  // configuration packs into one word.
  LookupTable(int m, int k_slots);

  LookupTable(const LookupTable&) = delete;
  LookupTable& operator=(const LookupTable&) = delete;

  int m() const { return m_; }
  int k_slots() const { return k_; }
  int bits_per_slot() const { return bits_; }

  // Bits needed to store one count c_j in [0, m].
  static int BitsPerSlot(int m);

  // Sampling probability numerator of slot j (1-based) with count c, over
  // the denominator m²: a_j = min(m², 2^{j+1}·c).
  uint64_t SlotProbNumerator(int j, int c) const;

  // Draws one 4S subset-sampling result for the packed configuration:
  // bit (j-1) of the result is set iff item j is sampled. O(1) after the
  // row for this configuration has been built; the first query on a
  // configuration builds its row (O(K·2^K)) and caches it.
  uint32_t Sample(uint64_t packed_config, RandomEngine& rng) const;

  // Exact probability mass of outcome r under `packed_config`, as a
  // numerator over (m²)^K. Exposed for tests (distribution exactness) and
  // for the eager-build path.
  uint64_t OutcomeMassNumerator(uint64_t packed_config, uint32_t r) const;

  // Common denominator (m²)^K of all outcome masses.
  uint64_t MassDenominator() const { return mass_den_; }

  // Eagerly materialises the row for a configuration (tests/benchmarks).
  void BuildRow(uint64_t packed_config) const;

  // Number of cached rows (diagnostics).
  size_t CachedRows() const { return rows_.size(); }
  // Approximate memory footprint of the cached rows in bytes.
  size_t CacheBytes() const;

 private:
  struct Row {
    // Integer alias table over 2^K outcomes: pick slot s uniformly, then
    // t uniform in [0, bucket_cap): outcome = t < threshold[s] ? s : alias[s].
    std::vector<uint32_t> alias;
    std::vector<uint64_t> threshold;
    uint64_t bucket_cap = 0;
  };

  int CountAt(uint64_t packed_config, int j) const {  // j is 1-based
    return static_cast<int>((packed_config >> ((j - 1) * bits_)) &
                            ((uint64_t{1} << bits_) - 1));
  }

  const Row& GetOrBuildRow(uint64_t packed_config) const;

  int m_;
  int k_;
  int bits_;
  uint64_t m_sq_;
  uint64_t mass_den_;  // (m²)^K
  mutable std::unordered_map<uint64_t, Row> rows_;
};

}  // namespace dpss

#endif  // DPSS_CORE_LOOKUP_TABLE_H_
