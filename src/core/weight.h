// Item weights for the HALT structure.
//
// Level-1 items carry plain integer weights. The synthetic "next-level"
// items of the bucket-grouping hierarchy (paper §4.1, Step 4) carry weights
// of the form 2^{i+1}·|B(i)|, which a plain word cannot hold once i exceeds
// 63. Weight stores every weight the hierarchy ever produces losslessly as
// mult·2^exp with a one-word multiplier — this is also exactly the paper's
// "float" weight representation (O(1)-word exponent + mantissa) used by the
// Theorem 1.2 integer-sorting reduction.

#ifndef DPSS_CORE_WEIGHT_H_
#define DPSS_CORE_WEIGHT_H_

#include <cstdint>

#include "bigint/big_uint.h"
#include "util/bits.h"
#include "util/check.h"

namespace dpss {

struct Weight {
  uint64_t mult = 0;
  uint32_t exp = 0;

  constexpr Weight() = default;
  constexpr Weight(uint64_t m, uint32_t e) : mult(m), exp(e) {}

  static Weight FromU64(uint64_t w) { return Weight(w, 0); }

  bool IsZero() const { return mult == 0; }

  // floor(log2(value)); this is the index of the weight bucket the item
  // belongs to (paper §4.1, Step 2). Requires a non-zero weight.
  int BucketIndex() const {
    DPSS_DCHECK(mult != 0);
    return static_cast<int>(exp) + FloorLog2(mult);
  }

  // Exact value as a big integer.
  BigUInt ToBigUInt() const {
    return BigUInt(mult) << static_cast<int>(exp);
  }

  // True iff mult·2^exp is representable in 128 bits — the precondition of
  // ToU128 and the guard for the update hot path's u128 total-weight cache.
  bool FitsU128() const {
    return mult == 0 || BitLength(mult) + static_cast<int>(exp) <= 128;
  }

  // Exact value as a two-word integer. Requires FitsU128(). The explicit
  // zero case keeps the shift count below the operand width (mult == 0
  // satisfies FitsU128() for any exp, but 0 << 128 would be UB).
  unsigned __int128 ToU128() const {
    DPSS_DCHECK(FitsU128());
    if (mult == 0) return 0;
    return static_cast<unsigned __int128>(mult) << exp;
  }

  // Approximate value (diagnostics only).
  double ToDouble() const;

  friend bool operator==(const Weight& a, const Weight& b) {
    return a.mult == b.mult && a.exp == b.exp;
  }
};

inline double Weight::ToDouble() const {
  double v = static_cast<double>(mult);
  for (uint32_t i = 0; i < exp; i += 60) {
    const uint32_t step = exp - i >= 60 ? 60 : exp - i;
    v *= static_cast<double>(uint64_t{1} << step);
  }
  return v;
}

// Exact value comparison of two weights (mult·2^exp as integers): <0, 0, >0
// as a < b, a == b, a > b. O(1): bit lengths decide except when they tie,
// and a tie bounds the exponent gap below 64 so one u128 shift settles it.
inline int CompareWeights(Weight a, Weight b) {
  if (a.IsZero() || b.IsZero()) {
    return (a.IsZero() ? 0 : 1) - (b.IsZero() ? 0 : 1);
  }
  const int la = BitLength(a.mult) + static_cast<int>(a.exp);
  const int lb = BitLength(b.mult) + static_cast<int>(b.exp);
  if (la != lb) return la < lb ? -1 : 1;
  // Equal bit lengths: |a.exp - b.exp| = |bitlen(b.mult) - bitlen(a.mult)|
  // < 64, so the smaller-exponent side fits a u128 after alignment.
  unsigned __int128 am = a.mult, bm = b.mult;
  if (a.exp >= b.exp) {
    am <<= (a.exp - b.exp);
  } else {
    bm <<= (b.exp - a.exp);
  }
  if (am == bm) return 0;
  return am < bm ? -1 : 1;
}

// floor(w·num/den) with the exponent preserved: the multiplier is scaled
// and floored, so the result is exactly representable and never exceeds w
// when num <= den. The multiplicative-decay primitive shared by every
// backend (Sampler::Decay): requires den > 0 and num <= den. A result
// whose multiplier floors to 0 is the canonical zero weight (parked).
inline Weight FloorScaleWeight(Weight w, uint64_t num, uint64_t den) {
  DPSS_DCHECK(den > 0 && num <= den);
  if (w.IsZero() || num == den) return w;
  // mult, num < 2^64, so the product fits an unsigned 128-bit word.
  const unsigned __int128 scaled =
      static_cast<unsigned __int128>(w.mult) * num / den;
  if (scaled == 0) return Weight();
  return Weight(static_cast<uint64_t>(scaled), w.exp);
}

}  // namespace dpss

#endif  // DPSS_CORE_WEIGHT_H_
