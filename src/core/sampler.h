// dpss::Sampler — the unified, backend-agnostic interface over every
// subset-sampling structure in the repo.
//
// The library carries five samplers: the paper's HALT structure
// (DpssSampler, Theorem 1.1) and four baselines it is measured against
// (NaiveDpss, RebuildDpss, OdssSampler, BucketJumpSampler). Historically
// each had its own ad-hoc API, so every test, benchmark, example and the
// CLI re-implemented per-backend driver code. Sampler gives them one
// surface:
//
//   dpss::SamplerSpec spec;
//   spec.seed = 7;
//   auto s = dpss::MakeSampler("halt", spec);          // or "naive", ...
//   auto id = s->Insert(10);                            // StatusOr<ItemId>
//   if (!id.ok()) { /* recoverable: no abort */ }
//   std::vector<dpss::ItemId> out;
//   dpss::Status st = s->SampleInto({1, 1}, {0, 1}, &out);
//
// Error surface: all interface mutators return Status/StatusOr and never
// abort on caller misuse (stale ids, overflowing weights, unsupported
// operations, corrupt snapshots). DPSS_CHECK remains in the concrete
// structures for *internal* invariants only.
//
// Capability flags: the baselines intentionally do not implement the full
// DPSS feature set (that gap is the paper's point). A fixed-(α, β) backend
// answers queries only for the (α, β) given in its SamplerSpec and returns
// kUnsupported for any other parameters; capabilities() lets generic
// drivers (the contract test suite, the CLI) adapt instead of hard-coding
// backend names.
//
// Batched mutations: InsertBatch and ApplyBatch amortize per-call overhead
// (virtual dispatch, per-op validation, and — for the rebuild-style
// baselines — whole-structure reconstruction, which lazy backends defer to
// the next query). Ops apply in order; on the first failure the batch stops
// and returns that error, with earlier ops left applied.

#ifndef DPSS_CORE_SAMPLER_H_
#define DPSS_CORE_SAMPLER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bigint/big_uint.h"
#include "bigint/rational.h"
#include "core/item_id.h"
#include "core/status.h"
#include "core/weight.h"
#include "util/random.h"

namespace dpss {

// Construction-time options understood by the registered backends. Fields
// irrelevant to a backend are ignored (e.g. fixed_alpha for "halt").
struct SamplerSpec {
  // Seed for the sampler-owned random engine.
  uint64_t seed = 0x5eed;
  // "halt": spread global rebuilds across updates (paper §4.5).
  bool deamortized_rebuild = false;
  // "halt": items migrated per update while a rebuild is in flight.
  int migrate_per_update = 8;
  // "naive": exact rational coins (true) vs double arithmetic (false).
  bool exact_arithmetic = true;
  // Fixed query parameters for the non-parameterized backends ("rebuild",
  // "odss", "bucket_jump"): they maintain the probabilities
  // w/(fixed_alpha·Σw + fixed_beta) and only answer queries for exactly
  // this (α, β).
  Rational64 fixed_alpha{1, 1};
  Rational64 fixed_beta{0, 1};
};

// A tagged mutation record for Sampler::ApplyBatch.
struct Op {
  enum class Kind : uint8_t { kInsert, kErase, kSetWeight };

  Kind kind = Kind::kInsert;
  ItemId id = 0;    // kErase / kSetWeight target; ignored for kInsert
  Weight weight{};  // kInsert / kSetWeight payload; ignored for kErase

  static Op Insert(Weight w) { return {Kind::kInsert, 0, w}; }
  static Op Insert(uint64_t w) { return Insert(Weight::FromU64(w)); }
  static Op Erase(ItemId id) { return {Kind::kErase, id, Weight{}}; }
  static Op SetWeight(ItemId id, Weight w) {
    return {Kind::kSetWeight, id, w};
  }
  static Op SetWeight(ItemId id, uint64_t w) {
    return SetWeight(id, Weight::FromU64(w));
  }
};

class Sampler {
 public:
  // What a backend implements beyond the universal core (insert/erase/
  // set-weight/contains/size/total-weight/sample at the spec's (α, β)).
  struct Capabilities {
    // Per-query (α, β): any non-negative rationals, changing per call.
    // False: only the SamplerSpec's fixed (α, β) is answered.
    bool parameterized = false;
    // Weights mult·2^exp beyond uint64 (the paper's float-weight regime).
    bool float_weights = false;
    // Serialize/Restore snapshots.
    bool snapshots = false;
    // CheckInvariants performs a deep structural audit (otherwise it is a
    // cheap bookkeeping cross-check).
    bool deep_invariants = false;
    // ExpectedSampleSize is implemented.
    bool expected_size = false;
  };

  virtual ~Sampler() = default;

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  // Registry key this instance was created under ("halt", "naive", ...).
  virtual const char* name() const = 0;
  virtual Capabilities capabilities() const = 0;

  // --- Mutations --------------------------------------------------------

  // Inserts an item with the given integer weight (0 allowed: such items
  // are never sampled but count toward size()). Returns a stable id.
  virtual StatusOr<ItemId> Insert(uint64_t weight) = 0;

  // Inserts an item with weight mult·2^exp. Backends without float_weights
  // accept it only when the value fits a uint64 (kWeightOverflow
  // otherwise); "halt" accepts the full level-1 universe.
  virtual StatusOr<ItemId> InsertWeight(Weight w) = 0;

  // Removes a live item. kInvalidId for unknown/stale ids.
  virtual Status Erase(ItemId id) = 0;

  // Updates a live item's weight in place; the id stays valid. Weight 0
  // parks the item (never sampled) until a later SetWeight revives it.
  virtual Status SetWeight(ItemId id, Weight w) = 0;
  Status SetWeight(ItemId id, uint64_t weight) {
    return SetWeight(id, Weight::FromU64(weight));
  }

  // --- Batched mutations ------------------------------------------------

  // Inserts weights.size() items, appending their ids to *ids (which may
  // be null if the caller does not need them). Equivalent to a loop of
  // Insert but lets backends amortize per-op overhead.
  virtual Status InsertBatch(std::span<const uint64_t> weights,
                             std::vector<ItemId>* ids);

  // Applies the ops in order. Ids of successful kInsert ops are appended
  // to *inserted_ids when non-null. On the first failing op the batch
  // stops and returns that op's error; earlier ops stay applied (the batch
  // is a throughput device, not a transaction).
  virtual Status ApplyBatch(std::span<const Op> ops,
                            std::vector<ItemId>* inserted_ids = nullptr);

  // --- Accessors --------------------------------------------------------

  // True iff the id names a live item (stale generations fail).
  virtual bool Contains(ItemId id) const = 0;
  virtual StatusOr<Weight> GetWeight(ItemId id) const = 0;

  // Number of live items (including zero-weight ones).
  virtual uint64_t size() const = 0;
  bool empty() const { return size() == 0; }

  // Exact Σw over live items.
  virtual BigUInt TotalWeight() const = 0;

  // --- Queries ----------------------------------------------------------

  // One PSS query: *out is cleared and filled with the ids of a subset in
  // which each item x appears independently with probability
  // min{w(x)/(α·Σw + β), 1}. Uses the sampler-owned RNG.
  virtual Status SampleInto(Rational64 alpha, Rational64 beta,
                            std::vector<ItemId>* out) = 0;

  // Deterministic variant with an external engine.
  virtual Status SampleInto(Rational64 alpha, Rational64 beta,
                            RandomEngine& rng,
                            std::vector<ItemId>* out) const = 0;

  // Convenience wrapper over SampleInto.
  StatusOr<std::vector<ItemId>> Sample(Rational64 alpha, Rational64 beta);

  // μ_S(α, β) = Σ p_x(α, β) in double precision, when the backend supports
  // it (capabilities().expected_size).
  virtual StatusOr<double> ExpectedSampleSize(Rational64 alpha,
                                              Rational64 beta) const;

  // --- Snapshots, diagnostics -------------------------------------------

  // Appends a versioned binary snapshot to *out / rebuilds the sampler
  // from one. kUnsupported unless capabilities().snapshots.
  virtual Status Serialize(std::string* out) const;
  virtual Status Restore(const std::string& bytes);

  // Structural self-check. A returned error means the *caller's bytes*
  // were bad (never happens for in-process state); a broken internal
  // invariant still aborts, as everywhere in the library.
  virtual Status CheckInvariants() const;

  // Approximate heap footprint (benchmarks, capacity planning).
  virtual size_t ApproxMemoryBytes() const = 0;

  // One-line backend-specific stats for CLIs and logs.
  virtual std::string DebugString() const;

 protected:
  Sampler() = default;

  // Shared parameter validation: rationals must have non-zero
  // denominators and `out` must be non-null.
  static Status ValidateQueryArgs(Rational64 alpha, Rational64 beta,
                                  const void* out);
};

// --- Backend registry ----------------------------------------------------

using SamplerFactory =
    std::unique_ptr<Sampler> (*)(const SamplerSpec& spec);

// Registers a backend under `name`. Returns false (and leaves the registry
// unchanged) if the name is already taken. The built-in backends ("halt",
// "naive", "rebuild", "odss", "bucket_jump") are pre-registered.
bool RegisterSampler(const std::string& name, SamplerFactory factory);

// Creates a sampler by registry key; null for an unknown name.
std::unique_ptr<Sampler> MakeSampler(const std::string& name,
                                     const SamplerSpec& spec = {});

// All registered backend names, sorted.
std::vector<std::string> RegisteredSamplerNames();

namespace internal_registry {

// Implemented in baseline/backends.cc; called once by the registry so the
// baseline registrations survive static-library dead-stripping.
struct NamedFactory {
  const char* name;
  SamplerFactory factory;
};
std::vector<NamedFactory> BaselineBackends();

}  // namespace internal_registry

}  // namespace dpss

#endif  // DPSS_CORE_SAMPLER_H_
