/// \file
/// \brief `dpss::Sampler` — the unified, backend-agnostic interface over
/// every subset-sampling structure in the repo, plus its backend registry.
///
/// The library carries the paper's HALT structure (`DpssSampler`, Theorem
/// 1.1), four baselines it is measured against (`NaiveDpss`, `RebuildDpss`,
/// `OdssSampler`, `BucketJumpSampler`), and a thread-safe sharding wrapper
/// (`ShardedSampler`) that composes over any of them. Historically each had
/// its own ad-hoc API, so every test, benchmark, example and the CLI
/// re-implemented per-backend driver code. `Sampler` gives them one surface:
///
/// \code
///   dpss::SamplerSpec spec;
///   spec.seed = 7;
///   auto s = dpss::MakeSampler("halt", spec);          // or "naive", ...
///   auto id = s->Insert(10);                            // StatusOr<ItemId>
///   if (!id.ok()) { /* recoverable: no abort */ }
///   std::vector<dpss::ItemId> out;
///   dpss::Status st = s->SampleInto({1, 1}, {0, 1}, &out);
/// \endcode
///
/// **Error surface:** all interface mutators return Status/StatusOr and
/// never abort on caller misuse (stale ids, overflowing weights,
/// unsupported operations, corrupt snapshots). DPSS_CHECK remains in the
/// concrete structures for *internal* invariants only.
///
/// **Capability flags:** the baselines intentionally do not implement the
/// full DPSS feature set (that gap is the paper's point). A fixed-(α, β)
/// backend answers queries only for the (α, β) given in its SamplerSpec and
/// returns kUnsupported for any other parameters; capabilities() lets
/// generic drivers (the contract test suite, the CLI) adapt instead of
/// hard-coding backend names.
///
/// **Thread safety:** unless a backend documents otherwise, one `Sampler`
/// instance must not be used from multiple threads at the same time — not
/// even through the `const` methods, whose implementations may touch
/// per-structure scratch state. The `"sharded[K]:<inner>"` wrapper
/// (`concurrent/sharded_sampler.h`) is the concurrency-safe composition:
/// all of its methods may race freely. `docs/CONCURRENCY.md` has the
/// per-backend table.

#ifndef DPSS_CORE_SAMPLER_H_
#define DPSS_CORE_SAMPLER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bigint/big_uint.h"
#include "bigint/rational.h"
#include "core/arena.h"
#include "core/item_id.h"
#include "core/status.h"
#include "core/weight.h"
#include "util/random.h"

/// \namespace dpss
/// \brief Dynamic Parameterized Subset Sampling: the HALT structure, its
/// baselines, and the backend-agnostic interface layer over them.
namespace dpss {

namespace persist {
class SnapshotWriter;  // persist/snapshot.h
}  // namespace persist

/// Construction-time options understood by the registered backends.
///
/// Fields a backend has no use for are ignored (for example `fixed_alpha`
/// on the parameterized `"halt"`/`"naive"` backends, or `num_shards` on
/// anything but the sharded wrapper) — reusing one spec across backends is
/// deliberate and cheap. *Malformed* values, by contrast, are rejected at
/// construction: `MakeSamplerChecked` returns `kInvalidArgument` with a
/// message naming the offending field (zero-denominator fixed parameters,
/// out-of-range shard/thread counts, a `migrate_per_update` that cannot
/// keep a de-amortized migration ahead of the next rebuild threshold).
struct SamplerSpec {
  /// Seed for the sampler-owned random engine. Any value is valid; equal
  /// seeds give bit-identical single-threaded behaviour.
  uint64_t seed = 0x5eed;
  /// `"halt"`: spread global rebuilds across updates (paper §4.5).
  bool deamortized_rebuild = false;
  /// `"halt"`: items migrated per update while a rebuild is in flight.
  /// Must be >= 1; with `deamortized_rebuild` it must be >= 5, the minimum
  /// that provably finishes a migration before the next size-doubling
  /// threshold can fire.
  int migrate_per_update = 8;
  /// `"naive"`: exact rational coins (true) vs double arithmetic (false).
  bool exact_arithmetic = true;
  /// Fixed query parameter α for the non-parameterized backends
  /// (`"rebuild"`, `"odss"`, `"bucket_jump"`): they maintain the
  /// probabilities w/(α·Σw + β) and only answer queries for exactly this
  /// (α, β). The denominator must be non-zero.
  Rational64 fixed_alpha{1, 1};
  /// Fixed query parameter β; see `fixed_alpha`.
  Rational64 fixed_beta{0, 1};
  /// `"sharded:<inner>"`: number of shards K, in [1, 4096]. A
  /// `"sharded<K>:<inner>"` registry name overrides this field.
  int num_shards = 8;
  /// `"sharded:<inner>"`: width of the per-query parallel-drain pool, in
  /// [0, 256]. 1 (the default) drains shards on the calling thread — the
  /// right choice when many caller threads sample concurrently; 0 sizes
  /// the pool to the hardware; >= 2 fans each single query out across
  /// that many workers.
  int num_threads = 1;
};

/// A tagged mutation record for Sampler::ApplyBatch.
struct Op {
  /// Which mutation this record encodes.
  enum class Kind : uint8_t {
    kInsert,     ///< Insert a new item with weight `weight`.
    kErase,      ///< Erase the live item `id`.
    kSetWeight,  ///< Set the live item `id`'s weight to `weight`.
    /// Multiply every weight by a factor in (0, 1] (Sampler::Decay). The
    /// factor's numerator rides in `id` and its denominator in
    /// `weight.mult`, so the record fits the fixed WAL op layout
    /// (persist/wal.h) without a format bump.
    kDecay
  };

  Kind kind = Kind::kInsert;  ///< Mutation tag.
  ItemId id = 0;    ///< kErase / kSetWeight target; ignored for kInsert.
  Weight weight{};  ///< kInsert / kSetWeight payload; ignored for kErase.

  /// An insert op with float-form weight `w`.
  static Op Insert(Weight w) { return {Kind::kInsert, 0, w}; }
  /// An insert op with integer weight `w`.
  static Op Insert(uint64_t w) { return Insert(Weight::FromU64(w)); }
  /// An erase op targeting `id`.
  static Op Erase(ItemId id) { return {Kind::kErase, id, Weight{}}; }
  /// A weight-update op setting `id` to float-form weight `w`.
  static Op SetWeight(ItemId id, Weight w) {
    return {Kind::kSetWeight, id, w};
  }
  /// A weight-update op setting `id` to integer weight `w`.
  static Op SetWeight(ItemId id, uint64_t w) {
    return SetWeight(id, Weight::FromU64(w));
  }
  /// A decay op scaling every weight by `factor` (see Sampler::Decay).
  static Op Decay(Rational64 factor) {
    return {Kind::kDecay, factor.num, Weight(factor.den, 0)};
  }
  /// The factor carried by a kDecay op (the inverse of the Decay factory).
  Rational64 DecayFactor() const { return {id, weight.mult}; }
};

/// One live item as reported by Sampler::DumpItems: its id (slot +
/// generation) and current weight. The portable currency of the generic
/// snapshot fallback and cross-backend export (persist/snapshot.h).
struct ItemRecord {
  ItemId id = 0;    ///< The item's id in the dumping sampler.
  Weight weight{};  ///< Its weight at dump time (may be zero: parked).
};

/// Backend-agnostic dynamic weighted subset sampler.
///
/// Maintains a dynamic set of weighted items; a query with non-negative
/// rational parameters (α, β) returns a subset in which each item x
/// appears independently with probability `min{w(x)/(α·Σw + β), 1}`.
/// Instances come from MakeSampler()/MakeSamplerChecked() and are neither
/// copyable nor movable.
///
/// \par Thread safety
/// Thread-compatible, not thread-safe: distinct instances may be used from
/// distinct threads freely, but one instance must be externally
/// synchronized — including its `const` queries, which may reuse internal
/// scratch state. The `"sharded[K]:<inner>"` backend lifts this
/// restriction (every method internally synchronized).
class Sampler {
 public:
  /// What a backend implements beyond the universal core (insert/erase/
  /// set-weight/contains/size/total-weight/sample at the spec's (α, β)).
  /// Operations behind a false flag return kUnsupported instead of
  /// aborting, so generic drivers can probe instead of hard-coding names.
  struct Capabilities {
    /// Per-query (α, β): any non-negative rationals, changing per call.
    /// False: only the SamplerSpec's fixed (α, β) is answered.
    bool parameterized = false;
    /// Weights mult·2^exp beyond uint64 (the paper's float-weight regime).
    bool float_weights = false;
    /// Serialize/Restore snapshots.
    bool snapshots = false;
    /// CheckInvariants performs a deep structural audit (otherwise it is a
    /// cheap bookkeeping cross-check).
    bool deep_invariants = false;
    /// ExpectedSampleSize is implemented.
    bool expected_size = false;
    /// CollectArenaImages/RestoreFromArenas: the backend's full item state
    /// lives in relocatable arenas (core/arena.h), so snapshots can be raw
    /// page images (the v2 format) and checkpoints can be incremental.
    bool arena_image = false;
    /// Decay(factor) multiplies every weight by a rational in (0, 1] —
    /// O(1) metadata on "halt" (the factor folds into the (α, β)
    /// parameterization), an honest O(n) weight rewrite elsewhere.
    bool decay = false;
    /// SampleDistinct(k) draws k distinct items by successive weighted
    /// sampling without replacement.
    bool sample_distinct = false;
    /// TopK/ItemsAbove rank or threshold items by weight without the
    /// caller dumping and sorting the whole set.
    bool top_k = false;
  };

  virtual ~Sampler() = default;

  /// Not copyable (backends hold engines and internal self-references).
  Sampler(const Sampler&) = delete;
  /// Not assignable.
  Sampler& operator=(const Sampler&) = delete;

  /// Registry key this instance was created under ("halt", "naive",
  /// "sharded8:halt", ...). The pointer stays valid for the sampler's
  /// lifetime.
  virtual const char* name() const = 0;
  /// The feature set this backend implements; see Capabilities.
  virtual Capabilities capabilities() const = 0;

  // --- Mutations --------------------------------------------------------

  /// Inserts an item with the given integer weight (0 allowed: such items
  /// are never sampled but count toward size()).
  /// \return A stable id for the new item, or `kWeightOverflow` if the
  ///   backend cannot represent the weight. O(1) for "halt"; see the
  ///   backend table in docs/ARCHITECTURE.md for the baselines.
  virtual StatusOr<ItemId> Insert(uint64_t weight) = 0;

  /// Inserts an item with float-form weight mult·2^exp. Backends without
  /// `capabilities().float_weights` accept it only when the value fits a
  /// uint64 (`kWeightOverflow` otherwise); "halt" accepts the full level-1
  /// universe (exp + log2(mult) < 256).
  /// \return The new item's id, or `kWeightOverflow`.
  virtual StatusOr<ItemId> InsertWeight(Weight w) = 0;

  /// Removes a live item.
  /// \return `kInvalidId` for ids that were never issued, were already
  ///   erased, or carry a stale generation; the sampler is unchanged then.
  virtual Status Erase(ItemId id) = 0;

  /// Updates a live item's weight in place; the id stays valid. Weight 0
  /// parks the item (never sampled) until a later SetWeight revives it.
  /// \return `kInvalidId` for unknown/stale ids, `kWeightOverflow` if the
  ///   backend cannot represent `w`; the item is unchanged on error.
  virtual Status SetWeight(ItemId id, Weight w) = 0;
  /// \overload
  Status SetWeight(ItemId id, uint64_t weight) {
    return SetWeight(id, Weight::FromU64(weight));
  }

  /// Multiplies every live item's weight by `factor`, a rational in
  /// (0, 1] (`1 <= num <= den`) — the time-decay primitive of streaming
  /// workloads. Each item's new weight is `FloorScaleWeight(w, factor)`:
  /// the multiplier scales and floors, the exponent is preserved, and a
  /// weight that floors to 0 is parked (the id stays valid). On "halt" the
  /// call is O(1): the factor folds into the (α, β) parameterization as
  /// pending metadata, applied exactly (no flooring) by every subsequent
  /// query and materialized lazily — see the backend notes in
  /// docs/WORKLOADS.md. Other built-in backends rewrite the weights
  /// eagerly in O(n) (one deferred rebuild/refresh, not one per item).
  /// \return `kInvalidArgument` for a zero numerator/denominator or a
  ///   factor above 1; `kUnsupported` unless `capabilities().decay`. An
  ///   error from an individual weight rewrite (cannot happen for the
  ///   built-in backends) may leave the decay partially applied, like a
  ///   failing ApplyBatch.
  virtual Status Decay(Rational64 factor);

  // --- Batched mutations ------------------------------------------------

  /// Inserts `weights.size()` items, appending their ids to `*ids` (which
  /// may be null if the caller does not need them). Equivalent to a loop
  /// of Insert but lets backends amortize per-op overhead (the lazy
  /// rebuild-style baselines defer their Ω(n) reconstruction to once per
  /// batch).
  /// \return The first failing insert's error, with earlier inserts left
  ///   applied; Ok otherwise.
  virtual Status InsertBatch(std::span<const uint64_t> weights,
                             std::vector<ItemId>* ids);

  /// Applies the ops in order. Ids of successful kInsert ops are appended
  /// to `*inserted_ids` when non-null. When `num_applied` is non-null it
  /// receives the count of ops that applied successfully — on success that
  /// is `ops.size()`; on error it tells the caller (notably the
  /// write-ahead log in persist/recovery.h) exactly which prefix of the
  /// batch mutated the sampler.
  /// \return On the first failing op, that op's error — the batch stops
  ///   and earlier ops stay applied (the batch is a throughput device, not
  ///   a transaction). Ok when every op applied.
  virtual Status ApplyBatch(std::span<const Op> ops,
                            std::vector<ItemId>* inserted_ids = nullptr,
                            size_t* num_applied = nullptr);

  // --- Accessors --------------------------------------------------------

  /// True iff the id names a live item (stale generations fail).
  virtual bool Contains(ItemId id) const = 0;
  /// The live item's current weight.
  /// \return `kInvalidId` for unknown/stale ids.
  virtual StatusOr<Weight> GetWeight(ItemId id) const = 0;

  /// Number of live items (including zero-weight ones).
  virtual uint64_t size() const = 0;
  /// True iff size() == 0.
  bool empty() const { return size() == 0; }

  /// Exact Σw over live items.
  virtual BigUInt TotalWeight() const = 0;

  // --- Queries ----------------------------------------------------------

  /// One PSS query: `*out` is cleared and filled with the ids of a subset
  /// in which each item x appears independently with probability
  /// `min{w(x)/(α·Σw + β), 1}`. Uses the sampler-owned RNG.
  /// \pre alpha.den != 0, beta.den != 0, out != nullptr (else
  ///   `kInvalidArgument`).
  /// \return `kUnsupported` when (α, β) differs from the spec's fixed
  ///   parameters on a non-parameterized backend. O(1 + μ) expected for
  ///   "halt", μ = expected output size.
  virtual Status SampleInto(Rational64 alpha, Rational64 beta,
                            std::vector<ItemId>* out) = 0;

  /// Deterministic variant of SampleInto with an external engine: given
  /// equal sampler state and engine state, the output is reproducible.
  virtual Status SampleInto(Rational64 alpha, Rational64 beta,
                            RandomEngine& rng,
                            std::vector<ItemId>* out) const = 0;

  /// Convenience wrapper over SampleInto returning a fresh vector.
  StatusOr<std::vector<ItemId>> Sample(Rational64 alpha, Rational64 beta);

  /// μ_S(α, β) = Σ_x p_x(α, β) in double precision.
  /// \return `kUnsupported` unless `capabilities().expected_size`. O(n).
  virtual StatusOr<double> ExpectedSampleSize(Rational64 alpha,
                                              Rational64 beta) const;

  /// Draws `min(k, #nonzero items)` **distinct** items by successive
  /// weighted sampling without replacement: the first item is x with
  /// probability `w(x)/Σw`, the second is y ≠ x with probability
  /// `w(y)/(Σw − w(x))`, and so on — the classic WOR law, exact (all coins
  /// are rational, never floating point). `*out` is cleared first; the
  /// items land in draw order. Zero-weight items are never drawn. Uses the
  /// sampler-owned RNG, so equal seeds give reproducible draws.
  /// \return `kUnsupported` unless `capabilities().sample_distinct`;
  ///   `kInvalidArgument` for a null out.
  virtual Status SampleDistinct(uint64_t k, std::vector<ItemId>* out);

  /// Appends the ids of the `min(k, #nonzero items)` heaviest items to
  /// `*out` (cleared first), sorted by weight descending; ties are broken
  /// arbitrarily. Zero-weight items never appear. "halt" walks its bucket
  /// structure and touches O(output + one bucket) entries instead of
  /// dumping the whole set.
  /// \return `kUnsupported` unless `capabilities().top_k`;
  ///   `kInvalidArgument` for a null out.
  virtual Status TopK(uint64_t k, std::vector<ItemId>* out) const;

  /// Appends the ids of every item with weight >= `threshold` to `*out`
  /// (cleared first), in unspecified order. A zero threshold selects every
  /// nonzero item (zero-weight items never appear).
  /// \return `kUnsupported` unless `capabilities().top_k`;
  ///   `kInvalidArgument` for a null out.
  virtual Status ItemsAbove(Weight threshold, std::vector<ItemId>* out) const;

  // --- Snapshots, diagnostics -------------------------------------------

  /// Appends a versioned binary snapshot to `*out`. The bytes restore the
  /// full id state — per-slot weights, generations, and the free-slot
  /// order — so a restore followed by the same mutation sequence assigns
  /// the same ids (the property WAL replay in persist/recovery.h depends
  /// on). Every built-in backend implements this.
  /// \return `kUnsupported` unless `capabilities().snapshots`;
  ///   `kInvalidArgument` for a null out.
  virtual Status Serialize(std::string* out) const;
  /// Rebuilds the sampler from a snapshot, replacing the current item set
  /// entirely (slots, generations and free-list order all come from the
  /// snapshot — ids live before Restore but absent from it are invalid
  /// afterwards). Live-item ids in the snapshot are preserved.
  /// \return `kBadSnapshot` (leaving the current state untouched) if the
  ///   bytes are truncated, corrupted or version-mismatched;
  ///   `kUnsupported` unless `capabilities().snapshots`.
  virtual Status Restore(const std::string& bytes);

  /// Collects the backend's item state as relocatable arena images — the
  /// payload of the v2 snapshot format (persist/snapshot.h). Appends one
  /// ArenaImage per internal arena to `*out` in a stable order (the same
  /// order RestoreFromArenas expects). `kFull` copies every page; `kDirty`
  /// copies only pages touched since the previous collection. Both modes
  /// reset the dirty baseline, so interleaving two independent checkpoint
  /// streams over one sampler is not supported.
  /// \return `kUnsupported` unless `capabilities().arena_image`;
  ///   `kInvalidArgument` for a null out.
  virtual Status CollectArenaImages(ArenaImageMode mode,
                                    std::vector<ArenaImage>* out);

  /// Rebuilds the sampler from loaded arena images (the counterpart of
  /// CollectArenaImages, in the same order), replacing the current item
  /// set entirely. The arenas may be heap-loaded copies or adopted
  /// copy-on-write file mappings; the backend takes ownership either way.
  /// \return `kBadSnapshot` (leaving the current state untouched) when the
  ///   images fail validation; `kUnsupported` unless
  ///   `capabilities().arena_image`.
  virtual Status RestoreFromArenas(std::vector<ArenaLoad>&& loads);

  /// Appends every live item (id and current weight) to `*out` in a
  /// backend-chosen deterministic order. The basis of the persistence
  /// layer's *generic* snapshot frame and of cross-backend export: the
  /// records can be replayed into any backend via InsertWeight (fresh ids).
  /// \return `kUnsupported` if the backend cannot enumerate its items
  ///   (built-in backends all can); `kInvalidArgument` for a null out.
  virtual Status DumpItems(std::vector<ItemRecord>* out) const;

  /// Writes this sampler's payload into an open container snapshot
  /// (persist/snapshot.h): the native Serialize bytes as one payload frame
  /// when `capabilities().snapshots`, falling back to a generic DumpItems
  /// frame otherwise. Drivers normally call persist::SaveSampler, which
  /// wraps the payload in the magic/version/backend/spec header and the
  /// CRC-sealed frame envelope.
  /// \return `kUnsupported` if the backend has neither a native format nor
  ///   DumpItems; any frame-write error otherwise.
  virtual Status SaveTo(persist::SnapshotWriter* writer) const;

  /// Structural self-check. A returned error means the *caller's bytes*
  /// were bad (never happens for in-process state); a broken internal
  /// invariant still aborts, as everywhere in the library. O(n) when
  /// `capabilities().deep_invariants`.
  virtual Status CheckInvariants() const;

  /// Approximate heap footprint (benchmarks, capacity planning).
  virtual size_t ApproxMemoryBytes() const = 0;

  /// One-line backend-specific stats for CLIs and logs.
  virtual std::string DebugString() const;

 protected:
  /// Subclass-only construction; instances come from the registry.
  Sampler() = default;

  /// Shared parameter validation: rationals must have non-zero
  /// denominators and `out` must be non-null.
  /// \return `kInvalidArgument` naming the violation, Ok otherwise.
  static Status ValidateQueryArgs(Rational64 alpha, Rational64 beta,
                                  const void* out);

  /// Shared Decay-factor validation: `1 <= num <= den`.
  /// \return `kInvalidArgument` naming the violation, Ok otherwise.
  static Status ValidateDecayFactor(Rational64 factor);

  /// The exact WOR engine behind the base-class SampleDistinct: draws one
  /// item at a time ∝ weight (singleton-rejection over `SampleInto(1, 0)`
  /// with an exact acceptance coin, falling back to prefix-sum inversion
  /// over DumpItems), parks it via `SetWeight(id, 0)`, and restores every
  /// parked weight before returning. Backends with a cheaper native path
  /// override SampleDistinct instead of calling this.
  Status GenericSampleDistinct(uint64_t k, RandomEngine& rng,
                               std::vector<ItemId>* out);

  /// Re-seeds the engine behind the base-class generic SampleDistinct.
  /// Backends that rely on the generic path call this from their
  /// constructor with `spec.seed` so draws are reproducible per spec. The
  /// seed is salted internally so this stream never mirrors a backend's
  /// own query engine seeded with the same spec value.
  void SeedFallbackRng(uint64_t seed) {
    fallback_rng_.Seed(seed ^ 0x5eedf417b4c7a921ULL);
  }
  /// The engine behind the base-class generic SampleDistinct.
  RandomEngine& fallback_rng() const { return fallback_rng_; }

 private:
  /// Engine for the generic SampleDistinct path; mutable because draws
  /// mutate it while logically read-only helpers may use it too.
  mutable RandomEngine fallback_rng_{0x5eedull};
};

// --- Backend registry ----------------------------------------------------

/// A backend constructor: validates the spec and builds a sampler, or
/// returns `kInvalidArgument` naming the offending spec field.
using SamplerFactory =
    StatusOr<std::unique_ptr<Sampler>> (*)(const SamplerSpec& spec);

/// Registers a backend under `name`.
/// \return False (leaving the registry unchanged) if the name is already
///   taken. The built-in backends ("halt", "naive", "rebuild", "odss",
///   "bucket_jump") are pre-registered; the `"sharded[K]:<inner>"` grammar
///   is resolved structurally and needs no registration.
bool RegisterSampler(const std::string& name, SamplerFactory factory);

/// Creates a sampler by registry key, with construction-time diagnostics.
///
/// Accepted names are the registered backends plus the sharding grammar:
/// `"sharded:<inner>"` (shard count from `SamplerSpec::num_shards`) and
/// `"sharded<K>:<inner>"` (count embedded in the name), where `<inner>` is
/// recursively any accepted name.
/// \return `kInvalidArgument` for an unknown name or a spec the backend
///   rejects (the message names the offending field).
StatusOr<std::unique_ptr<Sampler>> MakeSamplerChecked(
    const std::string& name, const SamplerSpec& spec = {});

/// Creates a sampler by registry key; null for an unknown name or an
/// invalid spec. Prefer MakeSamplerChecked when the caller can surface the
/// diagnostic.
std::unique_ptr<Sampler> MakeSampler(const std::string& name,
                                     const SamplerSpec& spec = {});

/// All registered backend names, sorted. The sharded grammar is not
/// enumerated (it is a combinator, not a registry entry).
std::vector<std::string> RegisteredSamplerNames();

/// \brief Internal wiring between the registry and the backend translation
/// units; not part of the public API surface.
namespace internal_registry {

/// One named factory, as returned by BaselineBackends().
struct NamedFactory {
  const char* name;        ///< Registry key.
  SamplerFactory factory;  ///< Its constructor.
};
/// Implemented in baseline/backends.cc; called once by the registry so the
/// baseline registrations survive static-library dead-stripping.
std::vector<NamedFactory> BaselineBackends();

}  // namespace internal_registry

}  // namespace dpss

#endif  // DPSS_CORE_SAMPLER_H_
