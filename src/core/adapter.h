// Dynamic adapters (paper §4.4).
//
// Each final-level instance keeps, per possible bucket index in its static
// window [l1, l1+slots), the current bucket size, packed into a single word
// (Lemma 4.18: the window spans O(log log n · log log log n) bits). The
// adapter is what lets a query translate the dynamic final-level instance
// into a static 4S-problem input configuration for the lookup table in O(1)
// word operations: extraction of the K relevant counts is one shift + mask.

#ifndef DPSS_CORE_ADAPTER_H_
#define DPSS_CORE_ADAPTER_H_

#include <cstdint>

#include "util/check.h"

namespace dpss {

class Adapter {
 public:
  Adapter() = default;

  // Window of `slots` bucket indices starting at `first_bucket`, each count
  // occupying `bits_per_count` bits. The whole window must fit in one word.
  void Init(int first_bucket, int slots, int bits_per_count) {
    DPSS_CHECK(slots >= 1 && bits_per_count >= 1);
    DPSS_CHECK(slots * bits_per_count <= 64);
    first_bucket_ = first_bucket;
    slots_ = slots;
    bits_ = bits_per_count;
    packed_ = 0;
  }

  int first_bucket() const { return first_bucket_; }
  int slots() const { return slots_; }

  // Current count for `bucket`; 0 outside the window.
  int GetCount(int bucket) const {
    const int s = bucket - first_bucket_;
    if (s < 0 || s >= slots_) return 0;
    return static_cast<int>((packed_ >> (s * bits_)) & Mask());
  }

  // Records the bucket size. Non-zero counts outside the window violate
  // Lemma 4.18 and abort.
  void SetCount(int bucket, int count) {
    const int s = bucket - first_bucket_;
    if (s < 0 || s >= slots_) {
      DPSS_CHECK(count == 0);
      return;
    }
    DPSS_CHECK(count >= 0 && static_cast<uint64_t>(count) <= Mask());
    const int shift = s * bits_;
    packed_ = (packed_ & ~(Mask() << shift)) |
              (static_cast<uint64_t>(count) << shift);
  }

  // Packs the counts of buckets first, first+1, ..., first+num_slots-1 into
  // a 4S input configuration (slot j of the result = bucket first+j).
  // Buckets outside the window contribute 0. Requires num_slots*bits <= 64.
  uint64_t ExtractConfig(int first, int num_slots) const {
    DPSS_CHECK(num_slots >= 0 && num_slots * bits_ <= 64);
    if (num_slots == 0) return 0;
    const uint64_t out_mask = num_slots * bits_ == 64
                                  ? ~uint64_t{0}
                                  : (uint64_t{1} << (num_slots * bits_)) - 1;
    const int offset = first - first_bucket_;
    uint64_t cfg;
    if (offset >= 0) {
      cfg = offset * bits_ >= 64 ? 0 : packed_ >> (offset * bits_);
    } else {
      cfg = -offset * bits_ >= 64 ? 0 : packed_ << (-offset * bits_);
    }
    return cfg & out_mask;
  }

 private:
  uint64_t Mask() const { return (uint64_t{1} << bits_) - 1; }

  uint64_t packed_ = 0;
  int first_bucket_ = 0;
  int slots_ = 0;
  int bits_ = 1;
};

}  // namespace dpss

#endif  // DPSS_CORE_ADAPTER_H_
