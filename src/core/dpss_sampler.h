// DpssSampler — the library's public entry point for Dynamic Parameterized
// Subset Sampling (paper Theorem 1.1).
//
// Maintains a dynamic set of items with non-negative integer weights
// (general mult·2^exp weights are supported for the paper's float-weight
// regime). A query with non-negative rational parameters (α, β) returns a
// subset in which each item x appears independently with probability
//
//     p_x(α, β) = min{ w(x) / (α·Σw + β), 1 }.
//
// Guarantees (matching the paper):
//   * construction from n items: O(n);
//   * each query: O(1 + μ) expected time, μ = expected output size;
//   * each insert/delete: O(1) worst-case, plus a global rebuild when the
//     size drifts by a factor of 2 (§4.5) — amortised O(1) by default, or
//     spread across subsequent updates in O(1) chunks when
//     Options::deamortized_rebuild is set (the paper's dynamic-array-style
//     de-amortization);
//   * space: O(n) words at all times.
//
// Example:
//   dpss::DpssSampler s(/*seed=*/7);
//   auto a = s.Insert(10);
//   auto b = s.Insert(90);
//   auto t = s.Sample({1, 1}, {0, 1});   // p_x = w(x) / Σw
//   s.Erase(a);

#ifndef DPSS_CORE_DPSS_SAMPLER_H_
#define DPSS_CORE_DPSS_SAMPLER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bigint/big_uint.h"
#include "bigint/rational.h"
#include "core/halt.h"
#include "core/weight.h"
#include "util/random.h"

namespace dpss {

class DpssSampler {
 public:
  using ItemId = uint64_t;

  struct Options {
    // Seed for the sampler-owned random engine.
    uint64_t seed = 0x5eed;
    // Spread each global rebuild across subsequent updates instead of
    // performing it in one O(n) burst (paper §4.5 de-amortization). While a
    // migration is in flight both structures are maintained, so updates cost
    // a constant factor more but stay O(1) worst-case.
    bool deamortized_rebuild = false;
    // Items copied into the new structure per update during a migration.
    // Any value >= 5 guarantees the migration finishes before the next
    // size-doubling threshold can fire.
    int migrate_per_update = 8;
  };

  explicit DpssSampler(uint64_t seed = 0x5eed) : DpssSampler(Options{seed}) {}
  explicit DpssSampler(const Options& options);

  // Bulk O(n) construction.
  explicit DpssSampler(const std::vector<uint64_t>& weights,
                       uint64_t seed = 0x5eed);
  DpssSampler(const std::vector<uint64_t>& weights, const Options& options);

  // The structure holds internal self-references (relocation listeners);
  // it is neither copyable nor movable.
  DpssSampler(const DpssSampler&) = delete;
  DpssSampler& operator=(const DpssSampler&) = delete;

  // Inserts an item with the given integer weight (0 allowed: such items
  // are simply never sampled). Returns a stable id. O(1).
  ItemId Insert(uint64_t weight);

  // Inserts an item with weight mult·2^exp — the paper's float-weight form
  // used by the Theorem 1.2 reduction. Requires exp + bitlen(mult) <=
  // kLevel1Universe.
  ItemId InsertWeight(Weight w);

  // Removes an existing item. O(1).
  void Erase(ItemId id);

  bool Contains(ItemId id) const {
    return id < slots_.size() && slots_[id].live;
  }
  Weight GetWeight(ItemId id) const;

  // Number of live items (including zero-weight ones).
  uint64_t size() const { return live_count_; }
  bool empty() const { return live_count_ == 0; }

  // Exact Σw over live items.
  const BigUInt& total_weight() const { return total_weight_; }

  // One PSS query with parameters (α, β), using the sampler's own RNG.
  std::vector<ItemId> Sample(Rational64 alpha, Rational64 beta);

  // Deterministic variant with an external engine.
  std::vector<ItemId> Sample(Rational64 alpha, Rational64 beta,
                             RandomEngine& rng) const;

  // Batched variants that reuse a caller-owned output buffer (cleared
  // first, reserved with a μ-derived hint). Together with the structure's
  // pooled query scratch this makes steady-state queries allocation-free on
  // the u128 fast path. Queries on one sampler must not run concurrently.
  void SampleInto(Rational64 alpha, Rational64 beta, std::vector<ItemId>* out);
  void SampleInto(Rational64 alpha, Rational64 beta, RandomEngine& rng,
                  std::vector<ItemId>* out) const;

  // μ_S(α, β) = Σ p_x(α, β), in double precision. O(n); diagnostics and
  // benchmark calibration only.
  double ExpectedSampleSize(Rational64 alpha, Rational64 beta) const;

  // The parameterized total weight W_S(α,β) = α·Σw + β as an exact rational.
  void ComputeW(Rational64 alpha, Rational64 beta, BigUInt* num,
                BigUInt* den) const;

  // --- Serialization ----------------------------------------------------
  // Appends a versioned binary snapshot of the item set to `out`. Item ids
  // of live items are preserved across a save/load round trip; the RNG
  // state and any in-flight migration are not (the load performs a fresh
  // O(n) bulk build).
  void Serialize(std::string* out) const;

  // Reconstructs a sampler from a snapshot. Returns false (and leaves
  // `out` untouched) if the bytes are not a valid snapshot.
  static bool Deserialize(const std::string& bytes, const Options& options,
                          DpssSampler* out);

  // Structural self-check; aborts on any violated invariant. O(n).
  void CheckInvariants() const;

  // Approximate heap footprint (benchmarks).
  size_t ApproxMemoryBytes() const;

  // Ablation switches (benchmark experiments A1/A2); survive rebuilds.
  void SetUseLookupTable(bool v);
  void SetInsignificantLinearScan(bool v);
  // Disables the u128 small-integer fast path (exact-arithmetic cross-check
  // switch; see HaltStructure::SetForceBigIntArithmetic). Survives rebuilds.
  void SetForceBigIntArithmetic(bool v);

  // --- Diagnostics ------------------------------------------------------

  // Number of global rebuilds performed (amortised mode) or migrations
  // completed (de-amortized mode).
  uint64_t rebuild_count() const { return rebuild_count_; }
  // True while an incremental migration is in flight.
  bool migration_in_progress() const { return next_halt_ != nullptr; }
  // Maximum number of items copied by a single update's migration step —
  // the de-amortization guarantee made observable (<= migrate_per_update).
  uint64_t max_migration_step() const { return max_migration_step_; }
  // log2 of the current level-1 capacity.
  int level1_log2_capacity() const { return halt_->level1_log2_capacity(); }
  const HaltStructure& halt() const { return *halt_; }

 private:
  // Relocation listeners bound to one of the two location columns, so a
  // structure keeps writing to its own column across the active/next swap.
  struct LocListener : BucketStructure::RelocationListener {
    void OnRelocate(uint64_t handle, BucketStructure::Location loc) override {
      owner->slots_[handle].locs[column] = loc;
    }
    DpssSampler* owner = nullptr;
    int column = 0;
  };

  struct Slot {
    Weight weight;
    BucketStructure::Location locs[2];
    uint64_t in_next_epoch = 0;  // == migration_epoch_ if present in next
    bool live = false;
  };

  void Init(const std::vector<uint64_t>* weights);
  ItemId AllocateSlot(Weight w);
  void AfterUpdate();
  void RebuildAmortized(uint64_t target_size);
  void StartMigration(uint64_t target_size);
  void StepMigration();
  void FinishMigration();
  bool SizeDrifted() const {
    return nonzero_count_ > 2 * n0_ || (n0_ > 16 && nonzero_count_ < n0_ / 2);
  }
  static int CapacityLog2For(uint64_t n);

  Options options_;
  std::vector<Slot> slots_;
  std::vector<ItemId> free_slots_;
  uint64_t live_count_ = 0;     // live items, including zero-weight
  uint64_t nonzero_count_ = 0;  // live items inside the HALT structure
  BigUInt total_weight_;

  LocListener listeners_[2];
  int active_ = 0;  // column/structure currently serving queries
  std::unique_ptr<HaltStructure> halt_;       // active structure
  std::unique_ptr<HaltStructure> next_halt_;  // migration target (or null)
  uint64_t migration_epoch_ = 0;
  uint64_t migration_cursor_ = 0;
  uint64_t max_migration_step_ = 0;

  uint64_t n0_ = 0;  // nonzero_count_ at the last (re)build
  uint64_t rebuild_count_ = 0;
  bool use_lookup_table_ = true;
  bool insignificant_linear_scan_ = false;
  bool force_bigint_ = false;
  RandomEngine rng_;
};

}  // namespace dpss

#endif  // DPSS_CORE_DPSS_SAMPLER_H_
