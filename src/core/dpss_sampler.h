// DpssSampler — the library's public entry point for Dynamic Parameterized
// Subset Sampling (paper Theorem 1.1).
//
// Maintains a dynamic set of items with non-negative integer weights
// (general mult·2^exp weights are supported for the paper's float-weight
// regime). A query with non-negative rational parameters (α, β) returns a
// subset in which each item x appears independently with probability
//
//     p_x(α, β) = min{ w(x) / (α·Σw + β), 1 }.
//
// Guarantees (matching the paper):
//   * construction from n items: O(n);
//   * each query: O(1 + μ) expected time, μ = expected output size;
//   * each insert/delete/weight-update: O(1) worst-case, plus a global
//     rebuild when the size drifts by a factor of 2 (§4.5) — amortised O(1)
//     by default, or spread across subsequent updates in O(1) chunks when
//     Options::deamortized_rebuild is set (the paper's dynamic-array-style
//     de-amortization);
//   * space: O(n) words at all times.
//
// Item ids are safe against slot reuse: an id retained after Erase never
// aliases the item that later reuses its slot (see kIdSlotBits below).
//
// Example:
//   dpss::DpssSampler s(/*seed=*/7);
//   auto a = s.Insert(10);
//   auto b = s.Insert(90);
//   auto t = s.Sample({1, 1}, {0, 1});   // p_x = w(x) / Σw
//   s.SetWeight(b, 45);                  // O(1), id preserved
//   s.Erase(a);

#ifndef DPSS_CORE_DPSS_SAMPLER_H_
#define DPSS_CORE_DPSS_SAMPLER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bigint/big_uint.h"
#include "bigint/rational.h"
#include "core/halt.h"
#include "core/item_id.h"
#include "core/status.h"
#include "core/weight.h"
#include "util/random.h"

namespace dpss {

class DpssSampler {
 public:
  using ItemId = dpss::ItemId;

  // Item ids use the library-wide encoding from core/item_id.h: a slot
  // index in the low kIdSlotBits bits, a per-slot generation in the high
  // bits, bumped every time Erase frees the slot so stale ids fail
  // Contains(). The aliases below predate item_id.h and are kept for
  // compatibility.
  static constexpr int kIdSlotBits = dpss::kIdSlotBits;
  static constexpr int kIdGenerationBits = dpss::kIdGenerationBits;
  static constexpr ItemId kIdSlotMask = dpss::kIdSlotMask;
  static constexpr uint32_t kIdGenerationMask = dpss::kIdGenerationMask;

  // The dense slot index of an id — stable for the item's lifetime and
  // reused (with a fresh generation) after Erase. Apps that maintain
  // ItemId-indexed side arrays should index them by SlotIndexOf(id).
  static constexpr uint64_t SlotIndexOf(ItemId id) {
    return dpss::SlotIndexOf(id);
  }
  static constexpr uint32_t GenerationOf(ItemId id) {
    return dpss::GenerationOf(id);
  }

  struct Options {
    // Seed for the sampler-owned random engine.
    uint64_t seed = 0x5eed;
    // Spread each global rebuild across subsequent updates instead of
    // performing it in one O(n) burst (paper §4.5 de-amortization). While a
    // migration is in flight both structures are maintained, so updates cost
    // a constant factor more but stay O(1) worst-case.
    bool deamortized_rebuild = false;
    // Items copied into the new structure per update during a migration.
    // Any value >= 5 guarantees the migration finishes before the next
    // size-doubling threshold can fire.
    int migrate_per_update = 8;
  };

  explicit DpssSampler(uint64_t seed = 0x5eed) : DpssSampler(Options{seed}) {}
  explicit DpssSampler(const Options& options);

  // Bulk O(n) construction.
  explicit DpssSampler(const std::vector<uint64_t>& weights,
                       uint64_t seed = 0x5eed);
  DpssSampler(const std::vector<uint64_t>& weights, const Options& options);

  // The structure holds internal self-references (relocation listeners);
  // it is neither copyable nor movable.
  DpssSampler(const DpssSampler&) = delete;
  DpssSampler& operator=(const DpssSampler&) = delete;

  // Inserts an item with the given integer weight (0 allowed: such items
  // are simply never sampled). Returns a stable id. O(1).
  ItemId Insert(uint64_t weight);

  // Inserts an item with weight mult·2^exp — the paper's float-weight form
  // used by the Theorem 1.2 reduction. Requires exp + bitlen(mult) <=
  // kLevel1Universe.
  ItemId InsertWeight(Weight w);

  // Removes an existing item. O(1).
  void Erase(ItemId id);

  // Updates an existing item's weight in place. O(1) worst-case; the item
  // id stays valid (no generation bump), as does its slot. When the new
  // weight stays in the same level-1 bucket the entry is patched without
  // relocation or hierarchy propagation; otherwise the structure performs
  // an internal erase+reinsert that preserves the id and any in-flight
  // migration bookkeeping. Weight 0 parks the item outside the sampling
  // structure (never sampled) until a later SetWeight revives it.
  void SetWeight(ItemId id, Weight w);
  void SetWeight(ItemId id, uint64_t weight) {
    SetWeight(id, Weight::FromU64(weight));
  }

  bool Contains(ItemId id) const {
    const uint64_t slot = SlotIndexOf(id);
    return slot < slots_.size() && slots_[slot].live &&
           slots_[slot].generation == GenerationOf(id);
  }
  Weight GetWeight(ItemId id) const;

  // Number of live items (including zero-weight ones).
  uint64_t size() const { return live_count_; }
  bool empty() const { return live_count_ == 0; }

  // Exact Σw over live items. In the steady state Σw is maintained as a
  // u128 (see AddWeightToTotal); this refreshes the BigUInt mirror lazily —
  // a ≤2-word value, so the refresh itself never heap-allocates.
  const BigUInt& total_weight() const {
    if (!total_big_fresh_) {
      total_weight_ = BigUInt::FromU128(total_u128_);
      total_big_fresh_ = true;
    }
    return total_weight_;
  }

  // One PSS query with parameters (α, β), using the sampler's own RNG.
  std::vector<ItemId> Sample(Rational64 alpha, Rational64 beta);

  // Deterministic variant with an external engine.
  std::vector<ItemId> Sample(Rational64 alpha, Rational64 beta,
                             RandomEngine& rng) const;

  // Batched variants that reuse a caller-owned output buffer (cleared
  // first, reserved with a μ-derived hint). Together with the structure's
  // pooled query scratch this makes steady-state queries allocation-free on
  // the u128 fast path. Queries on one sampler must not run concurrently.
  void SampleInto(Rational64 alpha, Rational64 beta, std::vector<ItemId>* out);
  void SampleInto(Rational64 alpha, Rational64 beta, RandomEngine& rng,
                  std::vector<ItemId>* out) const;

  // μ_S(α, β) = Σ p_x(α, β), in double precision. O(n); diagnostics and
  // benchmark calibration only.
  double ExpectedSampleSize(Rational64 alpha, Rational64 beta) const;

  // The parameterized total weight W_S(α,β) = α·Σw + β as an exact rational.
  void ComputeW(Rational64 alpha, Rational64 beta, BigUInt* num,
                BigUInt* den) const;

  // One PSS query against an explicit parameterized total W = wnum/wden
  // (p_x = min{w(x)·wden/wnum, 1}): the core that SampleInto wraps after
  // ComputeW. Callers that must adjust W beyond the (α, β) form — e.g. the
  // interface layer's lazy decay, which rescales β by the pending factor —
  // compute their own rational and come in here. Requires wden > 0.
  void SampleIntoW(const BigUInt& wnum, const BigUInt& wden,
                   RandomEngine& rng, std::vector<ItemId>* out) const;
  // Same, with the sampler-owned engine.
  void SampleIntoW(const BigUInt& wnum, const BigUInt& wden,
                   std::vector<ItemId>* out) {
    SampleIntoW(wnum, wden, rng_, out);
  }

  // μ for an explicit parameterized total W = wnum/wden; the core that
  // ExpectedSampleSize wraps after ComputeW.
  double ExpectedSampleSizeW(const BigUInt& wnum, const BigUInt& wden) const;

  // Draws exactly one item with probability w(x)/Σw (exact, all coins
  // rational) into *out. Returns false iff no item has non-zero weight.
  // O(1) expected after an O(#nonempty buckets) setup. The workhorse of
  // sampling without replacement at the interface layer.
  bool SampleOne(RandomEngine& rng, ItemId* out) const;

  // Appends the min(k, #nonzero) heaviest items as (id, weight) pairs,
  // sorted by weight descending (ties arbitrary). Walks the level-1
  // buckets from the heaviest down, touching O(answer + one bucket)
  // entries instead of the whole item set.
  void CollectTop(uint64_t k,
                  std::vector<std::pair<ItemId, Weight>>* out) const;

  // Appends every item with weight >= threshold as (id, weight) pairs, in
  // unspecified order; a zero threshold selects every nonzero item. Only
  // the threshold's own bucket is filtered entry-by-entry — heavier
  // buckets are taken wholesale, lighter ones skipped.
  void CollectAtLeast(Weight threshold,
                      std::vector<std::pair<ItemId, Weight>>* out) const;

  // --- Serialization ----------------------------------------------------
  // Appends a versioned binary snapshot of the item set to `out`. Item ids
  // of live items are preserved across a save/load round trip; the RNG
  // state and any in-flight migration are not (the load performs a fresh
  // O(n) bulk build).
  void Serialize(std::string* out) const;

  // Reconstructs a sampler from a snapshot. Returns kBadSnapshot (and
  // leaves `out` untouched) if the bytes are not a valid snapshot; never
  // aborts or reads out of bounds, whatever the input.
  static Status Deserialize(const std::string& bytes, const Options& options,
                            DpssSampler* out);

  // Calls fn(ItemId, Weight) for every live item, in slot order. O(n);
  // used by snapshot export and diagnostics.
  template <typename Fn>
  void ForEachItem(Fn&& fn) const {
    for (uint64_t slot = 0; slot < slots_.size(); ++slot) {
      if (!slots_[slot].live) continue;
      fn(MakeId(slot, slots_[slot].generation), slots_[slot].weight);
    }
  }

  // Structural self-check; aborts on any violated invariant. O(n).
  void CheckInvariants() const;

  // Approximate heap footprint (benchmarks).
  size_t ApproxMemoryBytes() const;

  // Ablation switches (benchmark experiments A1/A2); survive rebuilds.
  void SetUseLookupTable(bool v);
  void SetInsignificantLinearScan(bool v);
  // Disables the u128 small-integer fast path (exact-arithmetic cross-check
  // switch; see HaltStructure::SetForceBigIntArithmetic). Survives rebuilds.
  void SetForceBigIntArithmetic(bool v);
  // Disables block prefetching of random words in the query walk (lockstep
  // cross-check switch; see HaltStructure::SetUseBlockRng). Survives
  // rebuilds.
  void SetUseBlockRng(bool v);

  // --- Diagnostics ------------------------------------------------------

  // Number of global rebuilds performed (amortised mode) or migrations
  // completed (de-amortized mode).
  uint64_t rebuild_count() const { return rebuild_count_; }
  // True while an incremental migration is in flight.
  bool migration_in_progress() const { return next_halt_ != nullptr; }
  // Maximum number of items copied by a single update's migration step —
  // the de-amortization guarantee made observable (<= migrate_per_update).
  uint64_t max_migration_step() const { return max_migration_step_; }
  // log2 of the current level-1 capacity.
  int level1_log2_capacity() const { return halt_->level1_log2_capacity(); }
  const HaltStructure& halt() const { return *halt_; }

 private:
  // Relocation listeners bound to one of the two location columns, so a
  // structure keeps writing to its own column across the active/next swap.
  struct LocListener : BucketStructure::RelocationListener {
    void OnRelocate(uint64_t handle, BucketStructure::Location loc) override {
      owner->slots_[SlotIndexOf(handle)].locs[column] = loc;
    }
    DpssSampler* owner = nullptr;
    int column = 0;
  };

  struct Slot {
    Weight weight;
    BucketStructure::Location locs[2];
    uint64_t in_next_epoch = 0;  // == migration_epoch_ if present in next
    uint32_t generation = 0;     // low kIdGenerationBits bits only
    bool live = false;
  };

  static constexpr ItemId MakeId(uint64_t slot, uint32_t generation) {
    return MakeItemId(slot, generation);
  }

  void Init(const std::vector<uint64_t>* weights);
  ItemId AllocateSlot(Weight w);
  void AfterUpdate();
  // Σw maintenance with a u128 fast path: while every contribution and the
  // running sum fit 128 bits, only total_u128_ is updated (the BigUInt
  // mirror refreshes lazily in total_weight()). Once the sum outgrows two
  // words, total_weight_ becomes authoritative until an erase shrinks the
  // sum back into u128 range. Same dispatch-by-value style as the query
  // fast path in halt.cc: the representation switch is value-invisible.
  void AddWeightToTotal(Weight w);
  void SubWeightFromTotal(Weight w);
  void ResetTotals() {
    total_u128_ = 0;
    total_fast_ = true;
    total_weight_ = BigUInt();
    total_big_fresh_ = true;
  }
  void RebuildAmortized(uint64_t target_size);
  void StartMigration(uint64_t target_size);
  void StepMigration();
  void FinishMigration();
  bool SizeDrifted() const {
    return nonzero_count_ > 2 * n0_ || (n0_ > 16 && nonzero_count_ < n0_ / 2);
  }
  static int CapacityLog2For(uint64_t n);

  Options options_;
  std::vector<Slot> slots_;
  std::vector<uint64_t> free_slots_;  // slot indices, not full ids
  uint64_t live_count_ = 0;     // live items, including zero-weight
  uint64_t nonzero_count_ = 0;  // live items inside the HALT structure
  // Σw: total_u128_ is authoritative while total_fast_; total_weight_ is
  // authoritative otherwise and a lazily refreshed mirror in fast mode
  // (mutable so the const accessor can refresh it without allocating).
  unsigned __int128 total_u128_ = 0;
  bool total_fast_ = true;
  mutable BigUInt total_weight_;
  mutable bool total_big_fresh_ = true;

  LocListener listeners_[2];
  int active_ = 0;  // column/structure currently serving queries
  std::unique_ptr<HaltStructure> halt_;       // active structure
  std::unique_ptr<HaltStructure> next_halt_;  // migration target (or null)
  uint64_t migration_epoch_ = 0;
  uint64_t migration_cursor_ = 0;
  uint64_t max_migration_step_ = 0;

  uint64_t n0_ = 0;  // nonzero_count_ at the last (re)build
  uint64_t rebuild_count_ = 0;
  bool use_lookup_table_ = true;
  bool insignificant_linear_scan_ = false;
  bool force_bigint_ = false;
  bool use_block_rng_ = true;
  RandomEngine rng_;
};

}  // namespace dpss

#endif  // DPSS_CORE_DPSS_SAMPLER_H_
