// The shared item-id encoding used by every sampler backend.
//
// Ids pack a dense slot index in the low kIdSlotBits bits and a per-slot
// generation in the high kIdGenerationBits bits. Every backend bumps the
// slot's generation when Erase frees it, so an id retained past Erase fails
// Contains() instead of silently aliasing the item that later reuses the
// slot (generations wrap modulo 2^24: a stale id could only alias again
// after ~16.7M erase cycles of one specific slot while it is still held).
//
// Keeping the encoding identical across backends means the Sampler
// interface contract ("stale ids are detected") is one definition, and apps
// that maintain side arrays indexed by SlotIndexOf(id) work against any
// backend.

#ifndef DPSS_CORE_ITEM_ID_H_
#define DPSS_CORE_ITEM_ID_H_

#include <cstdint>

namespace dpss {

using ItemId = uint64_t;

inline constexpr int kIdSlotBits = 40;
inline constexpr int kIdGenerationBits = 24;
inline constexpr ItemId kIdSlotMask = (ItemId{1} << kIdSlotBits) - 1;
inline constexpr uint32_t kIdGenerationMask =
    (uint32_t{1} << kIdGenerationBits) - 1;

// The dense slot index of an id — stable for the item's lifetime and reused
// (with a fresh generation) after Erase. Side arrays should be indexed by
// this, not the full id.
constexpr uint64_t SlotIndexOf(ItemId id) { return id & kIdSlotMask; }

constexpr uint32_t GenerationOf(ItemId id) {
  return static_cast<uint32_t>(id >> kIdSlotBits);
}

constexpr ItemId MakeItemId(uint64_t slot, uint32_t generation) {
  return (static_cast<ItemId>(generation) << kIdSlotBits) | slot;
}

}  // namespace dpss

#endif  // DPSS_CORE_ITEM_ID_H_
