/// \file
/// \brief The shared item-id encoding used by every sampler backend.
///
/// Ids pack a dense slot index in the low kIdSlotBits bits and a per-slot
/// generation in the high kIdGenerationBits bits. Every backend bumps the
/// slot's generation when Erase frees it, so an id retained past Erase
/// fails Contains() instead of silently aliasing the item that later
/// reuses the slot (generations wrap modulo 2^24: a stale id could only
/// alias again after ~16.7M erase cycles of one specific slot while it is
/// still held).
///
/// Keeping the encoding identical across backends means the Sampler
/// interface contract ("stale ids are detected") is one definition, and
/// apps that maintain side arrays indexed by SlotIndexOf(id) work against
/// any backend. The sharded wrapper interleaves its shards into the same
/// slot space (shard = SlotIndexOf(id) % K) without touching the
/// generation bits.

#ifndef DPSS_CORE_ITEM_ID_H_
#define DPSS_CORE_ITEM_ID_H_

#include <cstdint>

namespace dpss {

/// Opaque item handle: slot index (low bits) + generation (high bits).
/// Treat as a token; decompose only via SlotIndexOf()/GenerationOf().
using ItemId = uint64_t;

/// Bits of ItemId holding the dense slot index.
inline constexpr int kIdSlotBits = 40;
/// Bits of ItemId holding the per-slot generation.
inline constexpr int kIdGenerationBits = 24;
/// Mask selecting the slot-index bits of an ItemId.
inline constexpr ItemId kIdSlotMask = (ItemId{1} << kIdSlotBits) - 1;
/// Mask selecting the (shifted-down) generation bits.
inline constexpr uint32_t kIdGenerationMask =
    (uint32_t{1} << kIdGenerationBits) - 1;

/// The dense slot index of an id — stable for the item's lifetime and
/// reused (with a fresh generation) after Erase. Side arrays should be
/// indexed by this, not the full id. O(1).
constexpr uint64_t SlotIndexOf(ItemId id) { return id & kIdSlotMask; }

/// The id's generation — bumped by the owning backend each time the slot
/// is freed, so stale ids fail Contains(). O(1).
constexpr uint32_t GenerationOf(ItemId id) {
  return static_cast<uint32_t>(id >> kIdSlotBits);
}

/// Packs a slot index and generation into an ItemId. Backend-internal;
/// applications receive ids from Insert and never forge them.
/// \pre `slot <= kIdSlotMask` and `generation <= kIdGenerationMask` (not
///   checked; out-of-range bits would alias other fields).
constexpr ItemId MakeItemId(uint64_t slot, uint32_t generation) {
  return (static_cast<ItemId>(generation) << kIdSlotBits) | slot;
}

}  // namespace dpss

#endif  // DPSS_CORE_ITEM_ID_H_
