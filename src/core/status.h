/// \file
/// \brief Recoverable error handling for the public `dpss::Sampler`
/// interface: Status, StatusOr and the closed StatusCode set.
///
/// The concrete structures (DpssSampler, the baselines) keep the library's
/// Google-style contract: internal invariant violations abort via
/// DPSS_CHECK. The *interface* layer, by contrast, must never take the
/// process down on caller misuse — a service embedding a sampler cannot
/// afford an abort on a stale id arriving over the wire. Status carries a
/// closed error-code set plus a static diagnostic string; `StatusOr<T>` is
/// the value-or-error return used by Insert and the accessors. Neither
/// ever heap-allocates: messages are string literals, so Status is two
/// words and cheap to return by value.

#ifndef DPSS_CORE_STATUS_H_
#define DPSS_CORE_STATUS_H_

#include <cstdint>
#include <utility>

#include "util/check.h"

namespace dpss {

/// The closed set of error categories the Sampler interface can report.
/// Every interface method documents which of these it returns; no other
/// failure modes exist (anything else is an internal invariant violation
/// and aborts).
enum class StatusCode : uint8_t {
  /// Success.
  kOk = 0,
  /// The id does not name a live item (never issued, already erased, or a
  /// stale generation left over from before an Erase).
  kInvalidId,
  /// A parameter is malformed: a query rational with a zero denominator, a
  /// null output pointer, a malformed Op record, or a SamplerSpec field a
  /// backend rejects at construction.
  kInvalidArgument,
  /// The weight exceeds what the backend can represent (mult·2^exp outside
  /// the level-1 universe, or a float weight given to an integer-only
  /// backend).
  kWeightOverflow,
  /// Serialized bytes are not a valid snapshot (truncated, corrupted, or
  /// wrong version).
  kBadSnapshot,
  /// The backend does not implement this operation (see
  /// Sampler::capabilities()), e.g. per-query (α, β) on a fixed-parameter
  /// baseline or snapshots on a backend without a serial format.
  kUnsupported,
  /// A filesystem operation of the persistence layer failed (open, write,
  /// fsync, rename, ...). The in-memory sampler is unaffected, but its
  /// durable image may lag; see `persist::DurableSampler`.
  kIoError,
};

/// Returns a human-readable name for the code ("kOk", "kInvalidId", ...).
/// The pointer is a string literal; never null.
const char* StatusCodeName(StatusCode code);

/// A two-word value-type result: a StatusCode plus a static diagnostic
/// message. Returned by value from every Sampler interface mutator; never
/// heap-allocates and never throws.
class Status {
 public:
  /// OK status.
  Status() : code_(StatusCode::kOk), message_("") {}
  /// A status with the given code and static message.
  /// \pre `message` points to storage outliving the Status (in practice: a
  ///   string literal).
  Status(StatusCode code, const char* message)
      : code_(code), message_(message) {}

  /// The canonical OK value.
  static Status Ok() { return Status(); }

  /// True iff code() == StatusCode::kOk.
  bool ok() const { return code_ == StatusCode::kOk; }
  /// The error category.
  StatusCode code() const { return code_; }
  /// Static diagnostic string; never null, empty for OK.
  const char* message() const { return message_; }

  /// Statuses compare equal iff their codes match (messages are
  /// diagnostics, not identity).
  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_;
  const char* message_;
};

/// Shorthand for Status(kInvalidId, msg).
inline Status InvalidIdError(const char* msg = "no live item with this id") {
  return Status(StatusCode::kInvalidId, msg);
}
/// Shorthand for Status(kInvalidArgument, msg).
inline Status InvalidArgumentError(const char* msg) {
  return Status(StatusCode::kInvalidArgument, msg);
}
/// Shorthand for Status(kWeightOverflow, msg).
inline Status WeightOverflowError(const char* msg) {
  return Status(StatusCode::kWeightOverflow, msg);
}
/// Shorthand for Status(kBadSnapshot, msg).
inline Status BadSnapshotError(const char* msg) {
  return Status(StatusCode::kBadSnapshot, msg);
}
/// Shorthand for Status(kUnsupported, msg).
inline Status UnsupportedError(const char* msg) {
  return Status(StatusCode::kUnsupported, msg);
}
/// Shorthand for Status(kIoError, msg).
inline Status IoError(const char* msg) {
  return Status(StatusCode::kIoError, msg);
}

/// Value-or-error: either a T or a non-OK Status explaining its absence.
///
/// T must be default-constructible (ItemId, Weight, double,
/// `std::unique_ptr<Sampler>` — all interface value types are). Accessing
/// value() on an error aborts, so callers are expected to branch on ok()
/// first; status() is always safe.
///
/// Both constructors are intentionally implicit, mirroring absl:
/// `return id;` / `return status;` both work inside a
/// StatusOr-returning function.
template <typename T>
class StatusOr {
 public:
  /// Error state. \pre !status.ok() (OK without a value is meaningless —
  /// checked).
  StatusOr(const Status& status) : status_(status) {
    DPSS_CHECK(!status.ok());
  }
  /// Value state.
  StatusOr(T value) : value_(std::move(value)) {}

  /// True iff a value is present.
  bool ok() const { return status_.ok(); }
  /// The status; Ok() when a value is present.
  const Status& status() const { return status_; }

  /// The contained value. \pre ok() (checked; aborts otherwise).
  const T& value() const& {
    DPSS_CHECK(status_.ok());
    return value_;
  }
  /// The contained value, mutable. \pre ok() (checked; aborts otherwise).
  T& value() & {
    DPSS_CHECK(status_.ok());
    return value_;
  }
  /// Moves the contained value out. \pre ok() (checked; aborts otherwise).
  T&& value() && {
    DPSS_CHECK(status_.ok());
    return std::move(value_);
  }

  /// Dereference sugar for value(). \pre ok().
  const T& operator*() const& { return value(); }
  /// Mutable dereference sugar for value(). \pre ok().
  T& operator*() & { return value(); }
  /// Member-access sugar for value(). \pre ok().
  const T* operator->() const { return &value(); }
  /// Mutable member-access sugar for value(). \pre ok().
  T* operator->() { return &value(); }

 private:
  Status status_;
  T value_{};
};

}  // namespace dpss

#endif  // DPSS_CORE_STATUS_H_
