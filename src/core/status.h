// Recoverable error handling for the public dpss::Sampler interface.
//
// The concrete structures (DpssSampler, the baselines) keep the library's
// Google-style contract: internal invariant violations abort via DPSS_CHECK.
// The *interface* layer, by contrast, must never take the process down on
// caller misuse — a service embedding a sampler cannot afford an abort on a
// stale id arriving over the wire. Status carries a closed error-code set
// plus a static diagnostic string; StatusOr<T> is the value-or-error return
// used by Insert and the accessors. Neither ever heap-allocates: messages
// are string literals, so Status is two words and cheap to return by value.

#ifndef DPSS_CORE_STATUS_H_
#define DPSS_CORE_STATUS_H_

#include <cstdint>
#include <utility>

#include "util/check.h"

namespace dpss {

enum class StatusCode : uint8_t {
  kOk = 0,
  // The id does not name a live item (never issued, already erased, or a
  // stale generation left over from before an Erase).
  kInvalidId,
  // A query or op parameter is malformed (zero denominator, null output
  // pointer, malformed Op record).
  kInvalidArgument,
  // The weight exceeds what the backend can represent (mult·2^exp outside
  // the level-1 universe, or a float weight given to an integer-only
  // backend).
  kWeightOverflow,
  // Serialized bytes are not a valid snapshot (truncated, corrupted, or
  // wrong version).
  kBadSnapshot,
  // The backend does not implement this operation (see
  // Sampler::capabilities()), e.g. per-query (α, β) on a fixed-parameter
  // baseline or snapshots on a backend without a serial format.
  kUnsupported,
};

// Returns a human-readable name for the code ("kOk", "kInvalidId", ...).
const char* StatusCodeName(StatusCode code);

class Status {
 public:
  // OK status.
  Status() : code_(StatusCode::kOk), message_("") {}
  Status(StatusCode code, const char* message)
      : code_(code), message_(message) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  // Static diagnostic string; never null, empty for OK.
  const char* message() const { return message_; }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_;
  const char* message_;
};

// Shorthand constructors for the interface implementations.
inline Status InvalidIdError(const char* msg = "no live item with this id") {
  return Status(StatusCode::kInvalidId, msg);
}
inline Status InvalidArgumentError(const char* msg) {
  return Status(StatusCode::kInvalidArgument, msg);
}
inline Status WeightOverflowError(const char* msg) {
  return Status(StatusCode::kWeightOverflow, msg);
}
inline Status BadSnapshotError(const char* msg) {
  return Status(StatusCode::kBadSnapshot, msg);
}
inline Status UnsupportedError(const char* msg) {
  return Status(StatusCode::kUnsupported, msg);
}

// Value-or-error. T must be default-constructible (ItemId, Weight, double —
// all interface value types are). Accessing value() on an error aborts, so
// callers are expected to branch on ok() first; status() is always safe.
template <typename T>
class StatusOr {
 public:
  // Intentionally implicit, mirroring absl: `return id;` / `return status;`.
  StatusOr(const Status& status) : status_(status) {
    DPSS_CHECK(!status.ok());  // OK without a value is meaningless
  }
  StatusOr(T value) : value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    DPSS_CHECK(status_.ok());
    return value_;
  }
  T& value() & {
    DPSS_CHECK(status_.ok());
    return value_;
  }
  T&& value() && {
    DPSS_CHECK(status_.ok());
    return std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  T value_{};
};

}  // namespace dpss

#endif  // DPSS_CORE_STATUS_H_
