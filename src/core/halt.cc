#include "core/halt.h"

#include <algorithm>

#include "bigint/rational.h"
#include "random/bernoulli.h"
#include "random/block_rng.h"
#include "random/geometric.h"
#include "util/bits.h"
#include "util/check.h"

namespace dpss {

// ---------------------------------------------------------------------------
// Instance: one node of the three-level hierarchy.
// ---------------------------------------------------------------------------

struct HaltStructure::Instance : BucketStructure::RelocationListener {
  Instance(HaltStructure* owner_in, int level_in, int universe,
           int group_width, BucketStructure::RelocationListener* loc_sink_in,
           int parent_group)
      : owner(owner_in),
        level(level_in),
        loc_sink(loc_sink_in),
        bg(universe, group_width, loc_sink_in, owner_in->arena_.get()),
        synthetic_loc(level_in < 3 ? universe : 0) {
    if (level < 3) {
      children.resize(bg.num_groups());
    } else {
      adapter.Init(parent_group * owner->g2_ + 1, owner->g2_ + 7,
                   LookupTable::BitsPerSlot(owner->m_));
    }
  }

  // Child bucket structures report relocations of our synthetic items here
  // (the handle of a synthetic item is our bucket index).
  void OnRelocate(uint64_t handle, Location loc) override {
    DPSS_DCHECK(handle < synthetic_loc.size());
    synthetic_loc[handle] = loc;
  }

  HaltStructure* owner;
  int level;
  // Receives insert/relocate notifications for OUR elements: the parent
  // instance for levels 2/3, the external item listener for level 1.
  BucketStructure::RelocationListener* loc_sink;
  BucketStructure bg;
  std::vector<std::unique_ptr<Instance>> children;  // by group (levels 1, 2)
  std::vector<Location> synthetic_loc;  // by our bucket index (levels 1, 2)
  Adapter adapter;                      // level 3 only
};

struct HaltStructure::QueryContext {
  const BigUInt* wnum;
  const BigUInt* wden;
  // u128 mirrors of W's terms, valid when `fast` is set. The fast path is a
  // value-level mirror of the BigUInt path (same random bits, same
  // results), so per-site dispatch on operand width is distribution- and
  // stream-invisible.
  U128 wnum128 = 0;
  U128 wden128 = 0;
  bool fast = false;
  int floor_log2_w;
  int ceil_log2_w;
  int i1_final;  // final-level insignificance threshold (may be negative)
  RandomEngine* rng;
  QueryScratch* scratch;
};

// Pooled per-query temporaries, owned by the structure and reused across
// calls so a warmed-up query never allocates. `child_out` is indexed by the
// child instance's level: at most one child query per level is in flight at
// a time, and its candidate list is consumed by ExtractItems before the
// next sibling is visited. `entries` stages CollectUpTo/CollectFrom output;
// every use clears it first and consumes it before any nested use.
struct HaltStructure::QueryScratch {
  std::vector<uint64_t> child_out[4];
  std::vector<BucketStructure::Entry> entries;
  std::vector<uint64_t> candidates;  // final-level candidate buckets
};

// ---------------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------------

HaltStructure::HaltStructure(
    int level1_log2_capacity, BucketStructure::RelocationListener* item_listener)
    : g1_(level1_log2_capacity),
      g2_(FloorLog2(NextPowerOf16(static_cast<uint64_t>(level1_log2_capacity)))),
      m_(g2_),
      k_(2 * CeilLog2(static_cast<uint64_t>(g2_)) + 2),
      table_(m_, k_),
      arena_(std::make_unique<Arena>()),
      scratch_(std::make_unique<QueryScratch>()) {
  DPSS_CHECK(g1_ >= 4 && g1_ % 4 == 0 && g1_ <= 60);
  root_ = std::make_unique<Instance>(this, 1, kLevel1Universe, g1_,
                                     item_listener, /*parent_group=*/0);
}

HaltStructure::~HaltStructure() = default;

uint64_t HaltStructure::size() const { return root_->bg.size(); }

const BucketStructure& HaltStructure::level1() const { return root_->bg; }

// ---------------------------------------------------------------------------
// Updates (paper §4.5): O(1) worst-case propagation.
// ---------------------------------------------------------------------------

HaltStructure::Instance* HaltStructure::EnsureChild(Instance* inst,
                                                    int group) {
  DPSS_DCHECK(inst->level < 3);
  auto& slot = inst->children[group];
  if (slot == nullptr) {
    if (inst->level == 1) {
      slot = std::make_unique<Instance>(this, 2, kLevel2Universe, g2_, inst,
                                        group);
    } else {
      slot = std::make_unique<Instance>(this, 3, kLevel3Universe,
                                        /*group_width=*/64, inst, group);
    }
  }
  return slot.get();
}

void HaltStructure::InsertInto(Instance* inst, uint64_t handle, Weight w) {
  const int bucket = w.BucketIndex();
  const uint64_t old_size = inst->bg.BucketSize(bucket);
  const Location loc = inst->bg.Insert(handle, w);
  inst->loc_sink->OnRelocate(handle, loc);
  BucketSizeChanged(inst, bucket, old_size, old_size + 1);
}

void HaltStructure::EraseFrom(Instance* inst, Location loc) {
  const int bucket = loc.bucket;
  const uint64_t old_size = inst->bg.BucketSize(bucket);
  inst->bg.Erase(loc);
  BucketSizeChanged(inst, bucket, old_size, old_size - 1);
}

void HaltStructure::BucketSizeChanged(Instance* inst, int bucket,
                                      uint64_t old_size, uint64_t new_size) {
  if (inst->level == 3) {
    inst->adapter.SetCount(bucket, static_cast<int>(new_size));
    return;
  }
  // The synthetic next-level item for this bucket changes weight from
  // 2^{bucket+1}·old_size to 2^{bucket+1}·new_size: delete + re-insert.
  Instance* child = EnsureChild(inst, inst->bg.GroupOfBucket(bucket));
  if (old_size > 0) {
    EraseFrom(child, inst->synthetic_loc[bucket]);
  }
  if (new_size > 0) {
    InsertInto(child, static_cast<uint64_t>(bucket),
               Weight(new_size, static_cast<uint32_t>(bucket) + 1));
  }
}

void HaltStructure::Insert(uint64_t handle, Weight w) {
  InsertInto(root_.get(), handle, w);
}

void HaltStructure::Erase(Location loc) { EraseFrom(root_.get(), loc); }

void HaltStructure::SetWeight(Location loc, Weight w) {
  // Level-2/3 weights are 2^{i+1}·|B(i)| — functions of bucket sizes only —
  // so a same-bucket patch leaves every other level untouched.
  root_->bg.SetWeight(loc, w);
}

// ---------------------------------------------------------------------------
// Queries (paper §4.1 Algorithms 1-5, §4.4 final level)
// ---------------------------------------------------------------------------

namespace {

// Numerator of p_x = w/W as a big integer: w.mult * 2^w.exp * wden.
BigUInt ItemProbNumerator(const Weight& w, const BigUInt& wden) {
  return BigUInt::MulU64(wden, w.mult) << static_cast<int>(w.exp);
}

// u128 mirror of ItemProbNumerator. Returns false when wden·mult·2^exp
// could need more than 128 bits (the caller then uses the BigUInt form).
inline bool ItemProbNumeratorU128(U128 wden, const Weight& w, U128* out) {
  const int bits =
      BitLength(wden) + BitLength(w.mult) + static_cast<int>(w.exp);
  if (bits > 128) return false;
  *out = (wden * w.mult) << static_cast<int>(w.exp);
  return true;
}

}  // namespace

std::vector<uint64_t> HaltStructure::Sample(const BigUInt& wnum,
                                            const BigUInt& wden,
                                            RandomEngine& rng) const {
  std::vector<uint64_t> out;
  SampleInto(wnum, wden, rng, &out);
  return out;
}

void HaltStructure::SampleInto(const BigUInt& wnum, const BigUInt& wden,
                               RandomEngine& rng,
                               std::vector<uint64_t>* out) const {
  out->clear();
  if (root_->bg.Empty()) return;
  DPSS_CHECK(!wden.IsZero());

  if (wnum.IsZero()) {
    // W == 0: every (positive-weight) element has probability
    // min{w/0, 1} = 1. Stream the handles straight out of the slab.
    root_->bg.AppendHandlesUpTo(kLevel1Universe - 1, out);
    return;
  }

  const BigRational w_rat(wnum, wden);
  QueryContext ctx;
  ctx.wnum = &wnum;
  ctx.wden = &wden;
  ctx.fast = !force_bigint_ && wnum.FitsU128() && wden.FitsU128();
  if (ctx.fast) {
    ctx.wnum128 = wnum.ToU128();
    ctx.wden128 = wden.ToU128();
  }
  ctx.floor_log2_w = w_rat.FloorLog2();
  ctx.ceil_log2_w = w_rat.CeilLog2();
  // Final-level threshold: largest i1 with 2^{i1+1} <= 2W/m².
  const BigRational r(wnum << 1,
                      BigUInt::MulU64(wden, static_cast<uint64_t>(m_) *
                                                static_cast<uint64_t>(m_)));
  ctx.i1_final = r.FloorLog2() - 1;
  ctx.rng = &rng;
  ctx.scratch = scratch_.get();
  // Batch the first block of random words up front (stream-invisible; see
  // random/block_rng.h for the consumption-order contract).
  if (use_block_rng_) rng.PrefetchWords(kQueryPrefetchWords);
  Query(root_.get(), ctx, out);
}

void HaltStructure::Query(const Instance* inst, const QueryContext& ctx,
                          std::vector<uint64_t>* out) const {
  if (inst->bg.Empty()) return;
  const int g = inst->bg.group_width();
  // Bucket-level thresholds: buckets <= i1 are insignificant
  // (2^{i1+1}·2^{2g} <= W), buckets >= i2 are certain (2^{i2} >= W).
  const int i1 = ctx.floor_log2_w - 2 * g - 1;
  const int i2 = ctx.ceil_log2_w;
  // Group-aligned boundaries: groups <= j1 are entirely insignificant,
  // groups >= j2 entirely certain; groups strictly between are significant.
  const int j1 = (i1 + 1 >= g) ? (i1 + 1) / g - 1 : -1;
  const int j2 = i2 <= 0 ? 0 : (i2 + g - 1) / g;

  if (j1 >= 0) {
    // The insignificance coin has probability 1/2^{2g}; 2g can reach 128
    // only for instances that never take this branch via Query (level 3 is
    // queried through QueryFinalLevel), but guard anyway.
    const U128 coin_den128 =
        2 * g <= 127 ? static_cast<U128>(1) << (2 * g) : 0;
    QueryInsignificant(inst, ctx, (j1 + 1) * g - 1, /*coin_num=*/1,
                       BigUInt::PowerOfTwo(2 * g), coin_den128, out);
  }
  QueryCertain(inst, ctx, j2 * g, out);

  const BitmapConstRef groups = inst->bg.nonempty_groups();
  if (j1 + 1 < groups.universe() && j1 + 1 < j2) {
    for (int j = groups.Ceiling(std::max(j1 + 1, 0)); j != -1 && j < j2;
         j = groups.Next(j)) {
      const Instance* child = inst->children[j].get();
      DPSS_CHECK(child != nullptr && !child->bg.Empty());
      // Overlap the next significant sibling's instance (its bitmaps and
      // header array front) with the walk into this child.
      const int j_next = groups.Next(j);
      if (j_next != -1 && j_next < j2 && inst->children[j_next] != nullptr) {
        const Instance* sibling = inst->children[j_next].get();
        __builtin_prefetch(sibling, /*rw=*/0, /*locality=*/2);
        __builtin_prefetch(&sibling->bg, /*rw=*/0, /*locality=*/2);
      }
      // One candidate list per child level is live at a time: it is filled
      // by the child query and consumed by ExtractItems before the next
      // sibling group is visited.
      std::vector<uint64_t>& candidates = ctx.scratch->child_out[child->level];
      candidates.clear();
      if (inst->level == 2) {
        QueryFinalLevel(child, ctx, &candidates);
      } else {
        Query(child, ctx, &candidates);
      }
      ExtractItems(inst, candidates, ctx, out);
    }
  }
}

namespace {

// One Ber(p_x) coin for an item, dispatching to the u128 mirror when the
// probability numerator fits two words.
inline bool SampleItemCoin(const HaltStructure::Entry& e, bool fast, U128 wden128,
                           U128 wnum128, const BigUInt& wden,
                           const BigUInt& wnum, RandomEngine& rng) {
  U128 num128;
  if (fast && ItemProbNumeratorU128(wden128, e.weight, &num128)) {
    return SampleBernoulliRational(num128, wnum128, rng);
  }
  return SampleBernoulliRational(ItemProbNumerator(e.weight, wden), wnum, rng);
}

}  // namespace

void HaltStructure::QueryInsignificant(const Instance* inst,
                                       const QueryContext& ctx, int max_bucket,
                                       uint64_t coin_num,
                                       const BigUInt& coin_den,
                                       U128 coin_den128,
                                       std::vector<uint64_t>* out) const {
  if (max_bucket < 0) return;
  const uint64_t n = inst->bg.size();
  if (n == 0) return;

  if (insignificant_linear_scan_) {
    // Ablation A2: one exact coin per insignificant item.
    std::vector<Entry>& all = ctx.scratch->entries;
    all.clear();
    inst->bg.CollectUpTo(max_bucket, &all);
    for (const Entry& e : all) {
      if (SampleItemCoin(e, ctx.fast, ctx.wden128, ctx.wnum128, *ctx.wden,
                         *ctx.wnum, *ctx.rng)) {
        out->push_back(e.handle);
      }
    }
    return;
  }

  // One coin of probability coin >= p_x decides whether anything at all is
  // sampled; the full scan below runs with probability <= n·coin = O(1/N).
  const bool fast = ctx.fast && coin_den128 != 0;
  const uint64_t k =
      fast ? SampleBoundedGeo(static_cast<U128>(coin_num), coin_den128, n + 1,
                              *ctx.rng)
           : SampleBoundedGeo(BigUInt(coin_num), coin_den, n + 1, *ctx.rng);
  if (k > n) return;

  std::vector<Entry>& items = ctx.scratch->entries;
  items.clear();
  inst->bg.CollectUpTo(max_bucket, &items);
  if (k > items.size()) return;

  // Item at index k was hit by the coin: accept with p_x / coin.
  {
    const Entry& e = items[k - 1];
    U128 base128;
    bool hit;
    if (fast && ItemProbNumeratorU128(ctx.wden128, e.weight, &base128) &&
        MulFits(base128, coin_den128) && MulFits(ctx.wnum128, coin_num)) {
      const U128 num = base128 * coin_den128;
      const U128 den = ctx.wnum128 * coin_num;
      DPSS_DCHECK(num <= den);
      hit = SampleBernoulliRational(num, den, *ctx.rng);
    } else {
      const BigUInt num = ItemProbNumerator(e.weight, *ctx.wden) * coin_den;
      const BigUInt den = BigUInt::MulU64(*ctx.wnum, coin_num);
      DPSS_DCHECK(BigUInt::Compare(num, den) <= 0);
      hit = SampleBernoulliRational(num, den, *ctx.rng);
    }
    if (hit) out->push_back(e.handle);
  }
  // Remaining items: plain Ber(p_x) coins (we already pay O(|A|) here).
  for (size_t idx = k; idx < items.size(); ++idx) {
    if (SampleItemCoin(items[idx], ctx.fast, ctx.wden128, ctx.wnum128,
                       *ctx.wden, *ctx.wnum, *ctx.rng)) {
      out->push_back(items[idx].handle);
    }
  }
}

void HaltStructure::QueryCertain(const Instance* inst, const QueryContext& ctx,
                                 int min_bucket,
                                 std::vector<uint64_t>* out) const {
  // Certain items are output verbatim: stream the handles straight out of
  // the slab instead of materializing Entry copies in scratch.
  (void)ctx;
  inst->bg.AppendHandlesFrom(min_bucket, out);
}

void HaltStructure::ExtractItems(const Instance* inst,
                                 const std::vector<uint64_t>& candidate_buckets,
                                 const QueryContext& ctx,
                                 std::vector<uint64_t>* out) const {
  for (size_t ci = 0; ci < candidate_buckets.size(); ++ci) {
    const int bucket = static_cast<int>(candidate_buckets[ci]);
    // Overlap the next candidate's extent with the draws over this one, and
    // keep the word buffer topped up for the coins below.
    if (ci + 1 < candidate_buckets.size()) {
      inst->bg.PrefetchBucket(static_cast<int>(candidate_buckets[ci + 1]));
    }
    if (use_block_rng_) ctx.rng->PrefetchWords(kBucketPrefetchWords);
    const BucketStructure::BucketView entries = inst->bg.Bucket(bucket);
    const uint64_t n_i = entries.size();
    DPSS_CHECK(n_i >= 1);

    // Per-item potential probability p = min{1, 2^{bucket+1}/W}. The whole
    // bucket runs on the u128 mirror when 2^{bucket+1}·wden fits two words
    // (the overwhelmingly common case for u64 weights).
    if (ctx.fast && ShiftLeftFits(ctx.wden128, bucket + 1)) {
      const U128 pnum = ctx.wden128 << (bucket + 1);
      const U128 pden = ctx.wnum128;
      const bool p_is_one = pnum >= pden;

      bool case1 = p_is_one;
      if (!case1) {
        // p·n_i >= 1? The product can exceed two words; settle those in
        // BigUInt (a pure comparison — no bits drawn).
        case1 = MulFits(pnum, n_i)
                    ? pnum * n_i >= pden
                    : BigUInt::Compare(
                          BigUInt::MulU64(BigUInt::FromU128(pnum), n_i),
                          *ctx.wnum) >= 0;
      }
      uint64_t k;
      if (case1) {
        k = SampleBoundedGeo(pnum, pden, n_i + 1, *ctx.rng);
        if (k > n_i) continue;
      } else {
        if (!SampleBernoulliPStar(pnum, pden, n_i, *ctx.rng)) continue;
        k = SampleTruncatedGeo(pnum, pden, n_i, *ctx.rng);
      }

      while (k <= n_i) {
        const BucketStructure::PackedEntry& e =
            entries[static_cast<uint32_t>(k - 1)];
        bool accept;
        if (p_is_one) {
          accept = SampleItemCoin(entries.EntryAt(static_cast<uint32_t>(k - 1)),
                                  /*fast=*/true, ctx.wden128, ctx.wnum128,
                                  *ctx.wden, *ctx.wnum, *ctx.rng);
        } else {
          // Accept with p_x/p = mult / 2^{bucket+1-exp}; the packed layout's
          // implied exponent makes the draw width bitlen(mult) directly.
          accept = ctx.rng->NextBits(BitLength(e.mult)) < e.mult;
        }
        if (accept) out->push_back(e.handle);
        k += SampleBoundedGeo(pnum, pden, n_i + 1, *ctx.rng);
      }
      continue;
    }

    const BigUInt pnum = *ctx.wden << (bucket + 1);
    const BigUInt& pden = *ctx.wnum;
    const bool p_is_one = BigUInt::Compare(pnum, pden) >= 0;

    uint64_t k;
    if (p_is_one || BigUInt::Compare(BigUInt::MulU64(pnum, n_i), pden) >= 0) {
      // Case 1 (p·n_i >= 1): the bucket was a certain candidate; reject it
      // iff a fresh B-Geo jump clears the bucket.
      k = SampleBoundedGeo(pnum, pden, n_i + 1, *ctx.rng);
      if (k > n_i) continue;
    } else {
      // Case 2 (p·n_i < 1): the bucket was sampled with probability p·n_i;
      // promote with Ber(p*) so that overall Pr[promising] = 1-(1-p)^{n_i},
      // then locate the first potential item with T-Geo.
      if (!SampleBernoulliPStar(pnum, pden, n_i, *ctx.rng)) continue;
      k = SampleTruncatedGeo(pnum, pden, n_i, *ctx.rng);
    }

    while (k <= n_i) {
      const BucketStructure::PackedEntry& e =
          entries[static_cast<uint32_t>(k - 1)];
      bool accept;
      if (p_is_one) {
        // Accept with p_x itself.
        const Weight w = entries.WeightAt(static_cast<uint32_t>(k - 1));
        accept = SampleBernoulliRational(ItemProbNumerator(w, *ctx.wden),
                                         pden, *ctx.rng);
      } else {
        // Accept with p_x/p = mult / 2^{bucket+1-exp}, a dyadic rational in
        // [1/2, 1): one random draw of bitlen(mult) bits (the implied
        // exponent makes the width bitlen(mult) directly).
        accept = ctx.rng->NextBits(BitLength(e.mult)) < e.mult;
      }
      if (accept) out->push_back(e.handle);
      k += SampleBoundedGeo(pnum, pden, n_i + 1, *ctx.rng);
    }
  }
}

void HaltStructure::QueryFinalLevel(const Instance* inst,
                                    const QueryContext& ctx,
                                    std::vector<uint64_t>* out) const {
  if (inst->bg.Empty()) return;
  const int i1 = ctx.i1_final;
  const int i2 = ctx.ceil_log2_w;
  const uint64_t m_sq = static_cast<uint64_t>(m_) * static_cast<uint64_t>(m_);

  QueryInsignificant(inst, ctx, i1, /*coin_num=*/2, BigUInt(m_sq),
                     static_cast<U128>(m_sq), out);
  QueryCertain(inst, ctx, i2, out);

  const int width = i2 - i1 - 1;
  if (width <= 0) return;
  DPSS_CHECK(width <= k_);

  std::vector<uint64_t>& candidates = ctx.scratch->candidates;
  candidates.clear();
  if (!use_lookup_table_) {
    // Ablation A1: one exact Bernoulli per significant bucket (O(K)).
    for (int j = 1; j <= width; ++j) {
      const int bucket = i1 + j;
      const uint64_t c = inst->bg.BucketSize(bucket);
      if (c == 0) continue;
      bool hit;
      if (ctx.fast && MulFits(ctx.wden128, c) &&
          ShiftLeftFits(ctx.wden128 * c, bucket + 1)) {
        hit = SampleBernoulliRational((ctx.wden128 * c) << (bucket + 1),
                                      ctx.wnum128, *ctx.rng);
      } else {
        const BigUInt pv_num = BigUInt::MulU64(*ctx.wden, c) << (bucket + 1);
        hit = SampleBernoulliRational(pv_num, *ctx.wnum, *ctx.rng);
      }
      if (hit) candidates.push_back(static_cast<uint64_t>(bucket));
    }
    ExtractItems(inst, candidates, ctx, out);
    return;
  }

  // Adapter → 4S configuration → lookup table (paper §4.4). Slots beyond
  // `width` stay zero so certain buckets are not double-counted.
  const uint64_t config = inst->adapter.ExtractConfig(i1 + 1, width);
  if (config == 0) return;  // no non-empty significant buckets
  const uint32_t result = table_.Sample(config, *ctx.rng);

  // Every bucket the table selected will be opened below (first by the
  // accept coin, then by ExtractItems): start streaming their extents now
  // so the memory latency overlaps the coin draws.
  for (uint32_t bits = result; bits != 0; bits &= bits - 1) {
    inst->bg.PrefetchBucket(i1 + LowestSetBit(bits) + 1);
  }

  for (uint32_t bits = result; bits != 0; bits &= bits - 1) {
    const int j = LowestSetBit(bits) + 1;  // 1-based slot
    const int bucket = i1 + j;
    const uint64_t c = static_cast<uint64_t>(inst->adapter.GetCount(bucket));
    DPSS_DCHECK(c >= 1 && c == static_cast<uint64_t>(inst->bg.BucketSize(bucket)));
    // Accept the bucket with pv/pj, where pv = min{1, 2^{bucket+1}·c/W} is
    // its true sampling probability and pj = min{m², 2^{j+1}·c}/m² the
    // table's (always >= pv by the choice of i1).
    const uint64_t aj = table_.SlotProbNumerator(j, static_cast<int>(c));
    bool hit;
    bool resolved = false;
    if (ctx.fast && MulFits(ctx.wden128, c) &&
        ShiftLeftFits(ctx.wden128 * c, bucket + 1) &&
        MulFits(ctx.wnum128, aj)) {
      const U128 pv_num = (ctx.wden128 * c) << (bucket + 1);
      const U128 pv_den = ctx.wnum128;
      const U128 min_pv = pv_num >= pv_den ? pv_den : pv_num;
      if (MulFits(min_pv, m_sq)) {
        const U128 num = min_pv * m_sq;
        const U128 den = pv_den * aj;
        DPSS_DCHECK(num <= den);
        hit = SampleBernoulliRational(num, den, *ctx.rng);
        resolved = true;
      }
    }
    if (!resolved) {
      const BigUInt pv_num = BigUInt::MulU64(*ctx.wden, c) << (bucket + 1);
      const BigUInt& pv_den = *ctx.wnum;
      const BigUInt num = BigUInt::MulU64(
          BigUInt::Compare(pv_num, pv_den) >= 0 ? pv_den : pv_num, m_sq);
      const BigUInt den = BigUInt::MulU64(pv_den, aj);
      DPSS_DCHECK(BigUInt::Compare(num, den) <= 0);
      hit = SampleBernoulliRational(num, den, *ctx.rng);
    }
    if (hit) candidates.push_back(static_cast<uint64_t>(bucket));
  }
  ExtractItems(inst, candidates, ctx, out);
}

// ---------------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------------

void HaltStructure::CheckInstanceInvariants(const Instance* inst) const {
  uint64_t total = 0;
  for (int b = 0; b < inst->bg.universe(); ++b) {
    const uint64_t sz = inst->bg.BucketSize(b);
    total += sz;
    DPSS_CHECK(inst->bg.nonempty_buckets().Contains(b) == (sz > 0));
    const BucketStructure::BucketView view = inst->bg.Bucket(b);
    for (uint32_t i = 0; i < view.size(); ++i) {
      const Entry e = view.EntryAt(i);
      DPSS_CHECK(!e.weight.IsZero());
      DPSS_CHECK(e.weight.BucketIndex() == b);
    }
    if (inst->level < 3) {
      if (sz > 0) {
        const Instance* child =
            inst->children[inst->bg.GroupOfBucket(b)].get();
        DPSS_CHECK(child != nullptr);
        const Location loc = inst->synthetic_loc[b];
        DPSS_CHECK(loc.IsValid());
        const Entry syn = child->bg.EntryAt(loc);
        DPSS_CHECK(syn.handle == static_cast<uint64_t>(b));
        DPSS_CHECK(syn.weight ==
                   Weight(sz, static_cast<uint32_t>(b) + 1));
      }
    } else {
      DPSS_CHECK(inst->adapter.GetCount(b) == static_cast<int>(sz));
    }
  }
  DPSS_CHECK(total == inst->bg.size());
  // Group bitmap consistency and child sizes.
  for (int j = 0; j < inst->bg.num_groups(); ++j) {
    uint64_t nonempty = 0;
    for (int b = j * inst->bg.group_width();
         b < std::min((j + 1) * inst->bg.group_width(), inst->bg.universe());
         ++b) {
      nonempty += inst->bg.BucketSize(b) > 0 ? 1 : 0;
    }
    DPSS_CHECK(inst->bg.nonempty_groups().Contains(j) == (nonempty > 0));
    if (inst->level < 3 && inst->children[j] != nullptr) {
      DPSS_CHECK(inst->children[j]->bg.size() == nonempty);
      CheckInstanceInvariants(inst->children[j].get());
    } else if (inst->level < 3) {
      DPSS_CHECK(nonempty == 0);
    }
  }
}

void HaltStructure::CheckInvariants() const {
  CheckInstanceInvariants(root_.get());
}

size_t HaltStructure::ApproxMemoryBytes() const {
  // The shared arena backs every instance's slab/headers/bitmaps; counted
  // once here (BucketStructure::MemoryBytes excludes a borrowed arena).
  return InstanceBytes(root_.get()) + arena_->capacity_bytes() +
         table_.CacheBytes() + sizeof(*this);
}

size_t HaltStructure::InstanceBytes(const Instance* inst) const {
  size_t bytes = sizeof(*inst);
  bytes += inst->synthetic_loc.capacity() * sizeof(Location);
  bytes += inst->children.capacity() * sizeof(void*);
  bytes += inst->bg.MemoryBytes();
  for (const auto& child : inst->children) {
    if (child != nullptr) bytes += InstanceBytes(child.get());
  }
  return bytes;
}

namespace {

void AccumulateSlabStats(const BucketStructure::SlabStats& in,
                         BucketStructure::SlabStats* out) {
  out->capacity_bytes += in.capacity_bytes;
  out->extent_bytes += in.extent_bytes;
  out->live_bytes += in.live_bytes;
  out->free_bytes += in.free_bytes;
  out->arena_page_count += in.arena_page_count;
  out->arena_dirty_pages += in.arena_dirty_pages;
}

}  // namespace

BucketStructure::SlabStats HaltStructure::SlabStatsTotal() const {
  BucketStructure::SlabStats total;
  // Plain recursion over the (at most three-level) instance tree.
  struct Walker {
    static void Walk(const Instance* inst, BucketStructure::SlabStats* out) {
      AccumulateSlabStats(inst->bg.slab_stats(), out);
      for (const auto& child : inst->children) {
        if (child != nullptr) Walk(child.get(), out);
      }
    }
  };
  Walker::Walk(root_.get(), &total);
  // The shared arena's page footprint, counted once for the whole tree
  // (per-instance slab_stats leave these fields zero for a borrowed arena).
  total.arena_page_count = arena_->page_count();
  total.arena_dirty_pages = arena_->DirtyPageCount();
  return total;
}

}  // namespace dpss
