// Lightweight CHECK-style assertion macros.
//
// The library does not use exceptions (Google style); contract violations
// abort with a diagnostic. DCHECK compiles away in NDEBUG builds and is used
// on hot paths; CHECK is always on and is used at API boundaries.

#ifndef DPSS_UTIL_CHECK_H_
#define DPSS_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace dpss {
namespace internal_check {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal_check
}  // namespace dpss

#define DPSS_CHECK(expr)                                             \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::dpss::internal_check::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                                \
  } while (0)

#ifdef NDEBUG
#define DPSS_DCHECK(expr) \
  do {                    \
  } while (0)
#else
#define DPSS_DCHECK(expr) DPSS_CHECK(expr)
#endif

#endif  // DPSS_UTIL_CHECK_H_
