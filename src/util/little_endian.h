// The library's one little-endian integer codec, shared by every binary
// format: the DpssSampler and FlatTable snapshot payloads (core/,
// baseline/), the sharded per-shard sections (concurrent/), and the
// snapshot container + WAL framing (persist/). One definition keeps the
// formats bit-compatible by construction; it lives in util/ because every
// layer above may encode bytes.
//
// Readers take a string_view cursor and return false on exhaustion
// instead of reading out of bounds — the property the snapshot/WAL fuzz
// suites lean on.

#ifndef DPSS_UTIL_LITTLE_ENDIAN_H_
#define DPSS_UTIL_LITTLE_ENDIAN_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace dpss {

inline void AppendU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

inline void AppendU16(std::string* out, uint16_t v) {
  for (int i = 0; i < 2; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

inline void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

inline void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

inline bool ReadU8(std::string_view in, size_t* pos, uint8_t* v) {
  if (*pos + 1 > in.size()) return false;
  *v = static_cast<uint8_t>(in[*pos]);
  *pos += 1;
  return true;
}

inline bool ReadU16(std::string_view in, size_t* pos, uint16_t* v) {
  if (*pos + 2 > in.size()) return false;
  uint16_t r = 0;
  for (int i = 0; i < 2; ++i) {
    r = static_cast<uint16_t>(
        r | static_cast<uint16_t>(static_cast<unsigned char>(in[*pos + i]))
                << (8 * i));
  }
  *pos += 2;
  *v = r;
  return true;
}

inline bool ReadU32(std::string_view in, size_t* pos, uint32_t* v) {
  if (*pos + 4 > in.size()) return false;
  uint32_t r = 0;
  for (int i = 0; i < 4; ++i) {
    r |= static_cast<uint32_t>(static_cast<unsigned char>(in[*pos + i]))
         << (8 * i);
  }
  *pos += 4;
  *v = r;
  return true;
}

inline bool ReadU64(std::string_view in, size_t* pos, uint64_t* v) {
  if (*pos + 8 > in.size()) return false;
  uint64_t r = 0;
  for (int i = 0; i < 8; ++i) {
    r |= static_cast<uint64_t>(static_cast<unsigned char>(in[*pos + i]))
         << (8 * i);
  }
  *pos += 8;
  *v = r;
  return true;
}

}  // namespace dpss

#endif  // DPSS_UTIL_LITTLE_ENDIAN_H_
