// Word-RAM bit primitives.
//
// The Word RAM model (paper §2.1) assumes O(1)-time access to the index of
// the highest / lowest set bit of a word; on real hardware these are the
// CLZ/CTZ instructions exposed through <bit>.

#ifndef DPSS_UTIL_BITS_H_
#define DPSS_UTIL_BITS_H_

#include <bit>
#include <cstdint>

#include "util/check.h"

namespace dpss {

// Number of significant bits of `x`: 0 for x == 0, otherwise
// 1 + floor(log2 x).
inline int BitLength(uint64_t x) { return 64 - std::countl_zero(x); }

// floor(log2 x). Requires x > 0.
inline int FloorLog2(uint64_t x) {
  DPSS_DCHECK(x > 0);
  return 63 - std::countl_zero(x);
}

// ceil(log2 x). Requires x > 0.
inline int CeilLog2(uint64_t x) {
  DPSS_DCHECK(x > 0);
  return x == 1 ? 0 : 64 - std::countl_zero(x - 1);
}

// Index of the lowest set bit. Requires x != 0.
inline int LowestSetBit(uint64_t x) {
  DPSS_DCHECK(x != 0);
  return std::countr_zero(x);
}

// Index of the highest set bit. Requires x != 0.
inline int HighestSetBit(uint64_t x) {
  DPSS_DCHECK(x != 0);
  return 63 - std::countl_zero(x);
}

// True iff x is a power of two (x > 0).
inline bool IsPowerOfTwo(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

// Smallest power of 16 that is >= x. Requires x >= 1 and the result to be
// representable (x <= 2^60).
inline uint64_t NextPowerOf16(uint64_t x) {
  DPSS_DCHECK(x >= 1 && x <= (uint64_t{1} << 60));
  uint64_t p = 1;
  while (p < x) p <<= 4;
  return p;
}

}  // namespace dpss

#endif  // DPSS_UTIL_BITS_H_
