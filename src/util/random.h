// Random-word source for the Word RAM model.
//
// The paper assumes a uniformly random d-bit word can be drawn in O(1) time
// (§2.1). RandomEngine provides that primitive (xoshiro256** under the hood,
// deterministically seeded via splitmix64) plus the derived exact helpers the
// sampling algorithms need: k random bits, and a uniform integer below an
// arbitrary bound via rejection.
//
// The engine can also generate words in blocks: PrefetchWords(n) runs the
// recurrence with its state held in registers and parks the results in an
// internal FIFO that NextWord drains before touching the state again. The
// buffered words are exactly the words the recurrence would have produced
// one call at a time, in the same order, so block filling is invisible to
// the bit stream — callers batching a query may prefetch freely without
// perturbing reproducibility (tests/fastpath_equivalence_test.cc drives a
// prefetching and a non-prefetching engine in lockstep and asserts equal
// outputs). Seeding discards any buffered words.
//
// All randomness consumed by the library flows through this class, so a fixed
// seed makes every sampler fully reproducible.

#ifndef DPSS_UTIL_RANDOM_H_
#define DPSS_UTIL_RANDOM_H_

#include <cstdint>

#include "util/bits.h"
#include "util/check.h"

namespace dpss {

// xoshiro256** 1.0 (Blackman & Vigna), seeded with splitmix64.
// Not cryptographically secure; statistically strong and fast.
class RandomEngine {
 public:
  // Capacity of the internal block buffer, in words.
  static constexpr int kBufferWords = 64;

  explicit RandomEngine(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  RandomEngine(const RandomEngine&) = default;
  RandomEngine& operator=(const RandomEngine&) = default;

  // Re-seeds the engine deterministically from `seed` and discards any
  // block-buffered words.
  void Seed(uint64_t seed);

  // A uniformly random 64-bit word. O(1). Serves block-buffered words first
  // (generation order), then falls back to stepping the recurrence.
  uint64_t NextWord() {
    if (buf_pos_ != buf_len_) return buf_[buf_pos_++];
    return Advance();
  }

  // Ensures at least min(n, kBufferWords) future NextWord results are
  // already buffered, bulk-running the recurrence with its state in
  // registers. Purely an amortization hint: the served word sequence is
  // identical with or without any pattern of PrefetchWords calls.
  void PrefetchWords(int n) {
    if (buf_len_ - buf_pos_ < (n < kBufferWords ? n : kBufferWords)) Refill();
  }

  // Words currently buffered ahead of the recurrence (tests/diagnostics).
  int BufferedWords() const { return buf_len_ - buf_pos_; }

  // A uniformly random integer with exactly `bits` random low bits
  // (0 <= bits <= 64). Unused high bits are zero.
  uint64_t NextBits(int bits) {
    DPSS_DCHECK(bits >= 0 && bits <= 64);
    if (bits == 0) return 0;
    return NextWord() >> (64 - bits);
  }

  // A uniformly random integer in [0, bound). Requires bound > 0.
  // Exact (rejection sampling), O(1) expected time.
  uint64_t NextBelow(uint64_t bound) {
    DPSS_CHECK(bound > 0);
    if (bound == 1) return 0;
    const int bits = CeilLog2(bound);
    // Each draw of `bits` bits lands below `bound` with probability > 1/2,
    // so the expected number of iterations is < 2.
    for (;;) {
      const uint64_t v = NextBits(bits);
      if (v < bound) return v;
    }
  }

  // A fair coin.
  bool NextBit() { return (NextWord() >> 63) != 0; }

  // A uniform double in [0, 1) with 53 random bits. Only for baselines and
  // diagnostics; the exact samplers never use floating point randomness.
  double NextDouble() {
    return static_cast<double>(NextWord() >> 11) * 0x1.0p-53;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  // One step of the xoshiro256** recurrence.
  uint64_t Advance() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Compacts the unserved tail of the buffer and tops it up to capacity.
  void Refill();

  uint64_t s_[4];
  int32_t buf_pos_ = 0;
  int32_t buf_len_ = 0;
  uint64_t buf_[kBufferWords];
};

}  // namespace dpss

#endif  // DPSS_UTIL_RANDOM_H_
