// Random-word source for the Word RAM model.
//
// The paper assumes a uniformly random d-bit word can be drawn in O(1) time
// (§2.1). RandomEngine provides that primitive (xoshiro256** under the hood,
// deterministically seeded via splitmix64) plus the derived exact helpers the
// sampling algorithms need: k random bits, and a uniform integer below an
// arbitrary bound via rejection.
//
// All randomness consumed by the library flows through this class, so a fixed
// seed makes every sampler fully reproducible.

#ifndef DPSS_UTIL_RANDOM_H_
#define DPSS_UTIL_RANDOM_H_

#include <cstdint>

#include "util/bits.h"
#include "util/check.h"

namespace dpss {

// xoshiro256** 1.0 (Blackman & Vigna), seeded with splitmix64.
// Not cryptographically secure; statistically strong and fast.
class RandomEngine {
 public:
  explicit RandomEngine(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  RandomEngine(const RandomEngine&) = default;
  RandomEngine& operator=(const RandomEngine&) = default;

  // Re-seeds the engine deterministically from `seed`.
  void Seed(uint64_t seed);

  // A uniformly random 64-bit word. O(1).
  uint64_t NextWord();

  // A uniformly random integer with exactly `bits` random low bits
  // (0 <= bits <= 64). Unused high bits are zero.
  uint64_t NextBits(int bits) {
    DPSS_DCHECK(bits >= 0 && bits <= 64);
    if (bits == 0) return 0;
    return NextWord() >> (64 - bits);
  }

  // A uniformly random integer in [0, bound). Requires bound > 0.
  // Exact (rejection sampling), O(1) expected time.
  uint64_t NextBelow(uint64_t bound);

  // A fair coin.
  bool NextBit() { return (NextWord() >> 63) != 0; }

  // A uniform double in [0, 1) with 53 random bits. Only for baselines and
  // diagnostics; the exact samplers never use floating point randomness.
  double NextDouble() {
    return static_cast<double>(NextWord() >> 11) * 0x1.0p-53;
  }

 private:
  uint64_t s_[4];
};

}  // namespace dpss

#endif  // DPSS_UTIL_RANDOM_H_
