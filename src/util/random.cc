#include "util/random.h"

namespace dpss {
namespace {

inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

void RandomEngine::Seed(uint64_t seed) {
  uint64_t state = seed;
  for (auto& s : s_) s = SplitMix64(state);
  // Avoid the all-zero state (splitmix64 cannot produce four zeros from any
  // seed, but keep the guard cheap and explicit).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
  buf_pos_ = 0;
  buf_len_ = 0;
}

void RandomEngine::Refill() {
  // Keep any unserved words at the front — they precede whatever the
  // recurrence produces next, and NextWord must serve them first.
  const int32_t pending = buf_len_ - buf_pos_;
  for (int32_t i = 0; i < pending; ++i) buf_[i] = buf_[buf_pos_ + i];
  // Run the recurrence with the state in locals; one state writeback for
  // the whole block instead of one per word.
  uint64_t s0 = s_[0], s1 = s_[1], s2 = s_[2], s3 = s_[3];
  int32_t len = pending;
  while (len < kBufferWords) {
    buf_[len++] = Rotl(s1 * 5, 7) * 9;
    const uint64_t t = s1 << 17;
    s2 ^= s0;
    s3 ^= s1;
    s1 ^= s2;
    s0 ^= s3;
    s2 ^= t;
    s3 = Rotl(s3, 45);
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
  buf_pos_ = 0;
  buf_len_ = len;
}

}  // namespace dpss
