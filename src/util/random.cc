#include "util/random.h"

namespace dpss {
namespace {

inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void RandomEngine::Seed(uint64_t seed) {
  uint64_t state = seed;
  for (auto& s : s_) s = SplitMix64(state);
  // Avoid the all-zero state (splitmix64 cannot produce four zeros from any
  // seed, but keep the guard cheap and explicit).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t RandomEngine::NextWord() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t RandomEngine::NextBelow(uint64_t bound) {
  DPSS_CHECK(bound > 0);
  if (bound == 1) return 0;
  const int bits = CeilLog2(bound);
  // Each draw of `bits` bits lands below `bound` with probability > 1/2,
  // so the expected number of iterations is < 2.
  for (;;) {
    const uint64_t v = NextBits(bits);
    if (v < bound) return v;
  }
}

}  // namespace dpss
