// Exact Bernoulli random variates in the Word RAM model (paper §3.1).
//
// Three generator families, all exact (no floating-point bias):
//
//  * SampleBernoulliRational — type (i): p = num/den with O(1)-word terms
//    (Fact 1, Bringmann–Friedrich): draw a uniform integer below den by
//    rejection and compare with num. O(1) expected time.
//
//  * SampleBernoulliApprox — the lazy bit-stream framework (Fact 2): a
//    uniform real U is revealed bit by bit and compared against certified
//    enclosures of p of geometrically increasing precision; the comparison
//    U < p resolves after O(1) bits in expectation.
//
//  * Wrappers for the specific parameters HALT needs: (1-p)^m powers,
//    p* = (1-(1-q)^n)/(nq) (type (ii), Theorem 3.1) and 1/(2 p*)
//    (type (iii), Theorem 3.1), each backed by the approximations in
//    random/approx.h.

#ifndef DPSS_RANDOM_BERNOULLI_H_
#define DPSS_RANDOM_BERNOULLI_H_

#include <cstdint>
#include <functional>

#include "bigint/big_uint.h"
#include "random/approx.h"
#include "util/random.h"

namespace dpss {

// A uniformly random integer with exactly `bits` random bits.
BigUInt RandomBigBits(RandomEngine& rng, int bits);

// A uniformly random integer in [0, bound). Requires bound > 0.
// Exact; O(1) expected draws of bitlen(bound) bits.
BigUInt RandomBigBelow(const BigUInt& bound, RandomEngine& rng);

// Ber(min(num/den, 1)). Requires den > 0. Exact, O(1) expected time.
bool SampleBernoulliRational(const BigUInt& num, const BigUInt& den,
                             RandomEngine& rng);

// Ber(p) where `approx(t)` returns a certified enclosure of p of width
// <= 2^-t. Exact: equivalent to drawing a uniform real U and returning
// U < p. O(1) enclosure refinements in expectation.
bool SampleBernoulliApprox(
    const std::function<FixedInterval(int target_bits)>& approx,
    RandomEngine& rng);

// Continuation entry of SampleBernoulliApprox: resume the bit-revelation
// loop with `i` bits of the uniform real already drawn into `u` and the
// next rung at precision `prec`. The public function above is
// Resume(approx, rng, 0, 0, 16); the u128 fast path runs the first rung in
// machine words and calls this only when that rung cannot resolve the coin
// (probability ~2^-16 per coin).
bool SampleBernoulliApproxResume(
    const std::function<FixedInterval(int target_bits)>& approx,
    RandomEngine& rng, BigUInt u, int i, int prec);

// Ber((num/den)^m). Requires num <= den, den > 0.
bool SampleBernoulliPow(const BigUInt& num, const BigUInt& den, uint64_t m,
                        RandomEngine& rng);

// Ber(p*) with p* = (1-(1-q)^n)/(n q), q = qnum/qden (type (ii)).
// Requires 0 < q, n >= 1, n·q <= 1.
bool SampleBernoulliPStar(const BigUInt& qnum, const BigUInt& qden, uint64_t n,
                          RandomEngine& rng);

// --- Small-integer fast path (zero-allocation) ----------------------------
//
// u128 overloads used by the HALT query hot path. Each is an exact
// value-level mirror of its BigUInt counterpart: same random bits consumed,
// same result returned for equal operand values. They touch the heap only
// on the rare (~2^-16 per coin) fallback into the BigUInt enclosure rungs.

// Mirror of RandomBigBelow for bounds up to 2^128 - 1.
U128 RandomBigBelow(U128 bound, RandomEngine& rng);

// Mirror of SampleBernoulliRational.
bool SampleBernoulliRational(U128 num, U128 den, RandomEngine& rng);

// Mirror of SampleBernoulliPow.
bool SampleBernoulliPow(U128 num, U128 den, uint64_t m, RandomEngine& rng);

// Mirror of SampleBernoulliPStar.
bool SampleBernoulliPStar(U128 qnum, U128 qden, uint64_t n, RandomEngine& rng);

// Ber(1/(2 p*)) (type (iii)); same preconditions as SampleBernoulliPStar.
bool SampleBernoulliHalfRecipPStar(const BigUInt& qnum, const BigUInt& qden,
                                   uint64_t n, RandomEngine& rng);

}  // namespace dpss

#endif  // DPSS_RANDOM_BERNOULLI_H_
