// Exact Bernoulli random variates in the Word RAM model (paper §3.1).
//
// Three generator families, all exact (no floating-point bias):
//
//  * SampleBernoulliRational — type (i): p = num/den with O(1)-word terms
//    (Fact 1, Bringmann–Friedrich): draw a uniform integer below den by
//    rejection and compare with num. O(1) expected time.
//
//  * SampleBernoulliApprox — the lazy bit-stream framework (Fact 2): a
//    uniform real U is revealed bit by bit and compared against certified
//    enclosures of p of geometrically increasing precision; the comparison
//    U < p resolves after O(1) bits in expectation.
//
//  * Wrappers for the specific parameters HALT needs: (1-p)^m powers,
//    p* = (1-(1-q)^n)/(nq) (type (ii), Theorem 3.1) and 1/(2 p*)
//    (type (iii), Theorem 3.1), each backed by the approximations in
//    random/approx.h.

#ifndef DPSS_RANDOM_BERNOULLI_H_
#define DPSS_RANDOM_BERNOULLI_H_

#include <cstdint>
#include <functional>

#include "bigint/big_uint.h"
#include "random/approx.h"
#include "util/random.h"

namespace dpss {

// A uniformly random integer with exactly `bits` random bits.
BigUInt RandomBigBits(RandomEngine& rng, int bits);

// A uniformly random integer in [0, bound). Requires bound > 0.
// Exact; O(1) expected draws of bitlen(bound) bits.
BigUInt RandomBigBelow(const BigUInt& bound, RandomEngine& rng);

// Ber(min(num/den, 1)). Requires den > 0. Exact, O(1) expected time.
bool SampleBernoulliRational(const BigUInt& num, const BigUInt& den,
                             RandomEngine& rng);

// Ber(p) where `approx(t)` returns a certified enclosure of p of width
// <= 2^-t. Exact: equivalent to drawing a uniform real U and returning
// U < p. O(1) enclosure refinements in expectation.
bool SampleBernoulliApprox(
    const std::function<FixedInterval(int target_bits)>& approx,
    RandomEngine& rng);

// Ber((num/den)^m). Requires num <= den, den > 0.
bool SampleBernoulliPow(const BigUInt& num, const BigUInt& den, uint64_t m,
                        RandomEngine& rng);

// Ber(p*) with p* = (1-(1-q)^n)/(n q), q = qnum/qden (type (ii)).
// Requires 0 < q, n >= 1, n·q <= 1.
bool SampleBernoulliPStar(const BigUInt& qnum, const BigUInt& qden, uint64_t n,
                          RandomEngine& rng);

// Ber(1/(2 p*)) (type (iii)); same preconditions as SampleBernoulliPStar.
bool SampleBernoulliHalfRecipPStar(const BigUInt& qnum, const BigUInt& qden,
                                   uint64_t n, RandomEngine& rng);

}  // namespace dpss

#endif  // DPSS_RANDOM_BERNOULLI_H_
