#include "random/block_rng.h"

namespace dpss {

namespace {

// Direct-mapped thread-local memo. 8192 slots x 64 bytes = 512 KiB of
// lazily-committed thread-local storage; a conflict miss just falls
// through to the real computation. The table is sized for the query walk's
// steady state, not a single query: every candidate bucket contributes one
// (num, den) pair whose offset coins draw m uniformly from the bucket's
// block size, and those triples recur across queries, so a table that
// holds the union converts the per-coin enclosure into a hash + one line.
struct alignas(64) PowCacheSlot {
  U128 num = 0;
  U128 den = 0;  // 0 marks an empty slot (ApproxPowSmall requires den > 0)
  uint64_t m = 0;
  SmallInterval enc;
};

constexpr int kPowCacheSlots = 8192;
thread_local PowCacheSlot t_pow_cache[kPowCacheSlots];

// Second level: the squares chain s_k = (num/den)^(2^k) at working
// precision f. A fresh enclosure costs one ShlDivFloor long division plus
// ~2·bitlen(m) interval multiplications; the geometric samplers draw the
// exponent m uniformly per coin (the offset within a block), so the
// (num, den, m) level above misses constantly on the query walk. But the
// chain depends on m only through f = ApproxPowSmallFracBits(m, 18), which
// takes one value per bitlen(m) — so (num, den, f) repeats for every coin
// of a bucket, and a chain hit reduces the coin to popcount(m)
// accumulation multiplies. The accumulation below replays exactly the
// right-to-left loop of ApproxPowSmallFromBase against the cached chain,
// so the served enclosure is bit-identical to a fresh computation.
constexpr int kPowChainLevels = 64;

struct PowChainSlot {
  U128 num = 0;
  U128 den = 0;  // 0 marks an empty slot
  int32_t f = -1;
  int32_t built = 0;  // chain levels filled in sq_lo/sq_hi
  uint64_t sq_lo[kPowChainLevels];
  uint64_t sq_hi[kPowChainLevels];
};

constexpr int kPowChainSlots = 128;
thread_local PowChainSlot t_pow_chain_cache[kPowChainSlots];

inline uint64_t MixPow(U128 num, U128 den, uint64_t salt) {
  uint64_t h = static_cast<uint64_t>(num) ^
               (static_cast<uint64_t>(num >> 64) * 0x9e3779b97f4a7c15ULL);
  h ^= static_cast<uint64_t>(den) * 0xbf58476d1ce4e5b9ULL;
  h ^= (static_cast<uint64_t>(den >> 64) + salt) * 0x94d049bb133111ebULL;
  h ^= h >> 29;
  return h;
}

}  // namespace

SmallInterval CachedApproxPowSmall(U128 num, U128 den, uint64_t m) {
  PowCacheSlot& slot = t_pow_cache[MixPow(num, den, m) & (kPowCacheSlots - 1)];
  if (slot.den == den && slot.num == num && slot.m == m) return slot.enc;

  const int f = ApproxPowSmallFracBits(m, kPowFirstRungTargetBits);
  PowChainSlot& chain =
      t_pow_chain_cache[MixPow(num, den, static_cast<uint64_t>(f)) &
                        (kPowChainSlots - 1)];
  if (chain.den != den || chain.num != num || chain.f != f) {
    chain.num = num;
    chain.den = den;
    chain.f = f;
    chain.built = 1;
    ApproxPowSmallBase(num, den, f, &chain.sq_lo[0], &chain.sq_hi[0]);
  }

  const int bits = BitLength(m);
  const uint64_t one = uint64_t{1} << f;
  DPSS_DCHECK(bits <= kPowChainLevels);
  while (chain.built < bits) {
    const int k = chain.built;
    chain.sq_lo[k] = MulFloorSmall(chain.sq_lo[k - 1], chain.sq_lo[k - 1], f);
    const uint64_t hi =
        MulCeilSmall(chain.sq_hi[k - 1], chain.sq_hi[k - 1], f);
    chain.sq_hi[k] = hi > one ? one : hi;
    chain.built = k + 1;
  }

  // Fold set bits low-to-high — the same order, products and caps as
  // ApproxPowSmallFromBase, just with the squares read from the chain.
  uint64_t res_lo = 0, res_hi = 0;
  bool started = false;
  for (int bit = 0; bit < bits; ++bit) {
    if (((m >> bit) & 1) == 0) continue;
    if (started) {
      res_lo = MulFloorSmall(res_lo, chain.sq_lo[bit], f);
      const uint64_t hi = MulCeilSmall(res_hi, chain.sq_hi[bit], f);
      res_hi = hi > one ? one : hi;
    } else {
      res_lo = chain.sq_lo[bit];
      res_hi = chain.sq_hi[bit];
      started = true;
    }
  }

  slot.num = num;
  slot.den = den;
  slot.m = m;
  slot.enc.lo = res_lo;
  slot.enc.hi = res_hi;
  slot.enc.frac_bits = f;
  return slot.enc;
}

void ClearPowEnclosureCache() {
  for (auto& slot : t_pow_cache) slot = PowCacheSlot{};
  for (auto& slot : t_pow_chain_cache) slot = PowChainSlot{};
}

}  // namespace dpss
