#include "random/bernoulli.h"

#include <algorithm>

#include "util/check.h"

namespace dpss {

BigUInt RandomBigBits(RandomEngine& rng, int bits) {
  DPSS_CHECK(bits >= 0);
  BigUInt r;
  int rem = bits;
  while (rem > 0) {
    const int take = std::min(64, rem);
    r = (r << take) + BigUInt(rng.NextBits(take));
    rem -= take;
  }
  return r;
}

BigUInt RandomBigBelow(const BigUInt& bound, RandomEngine& rng) {
  DPSS_CHECK(!bound.IsZero());
  const int bits = bound.BitLength();
  // bound > 2^(bits-1), so each draw succeeds with probability > 1/2.
  for (;;) {
    BigUInt v = RandomBigBits(rng, bits);
    if (BigUInt::Compare(v, bound) < 0) return v;
  }
}

bool SampleBernoulliRational(const BigUInt& num, const BigUInt& den,
                             RandomEngine& rng) {
  DPSS_CHECK(!den.IsZero());
  if (num.IsZero()) return false;
  if (BigUInt::Compare(num, den) >= 0) return true;
  // Fast path: one-word terms need no big-integer uniform.
  if (den.FitsU64()) {
    return rng.NextBelow(den.ToU64()) < num.ToU64();
  }
  return BigUInt::Compare(RandomBigBelow(den, rng), num) < 0;
}

bool SampleBernoulliApprox(
    const std::function<FixedInterval(int target_bits)>& approx,
    RandomEngine& rng) {
  // Reveal the uniform real U bit by bit. With u = the first i bits of U,
  // U lies in [u/2^i, (u+1)/2^i); compare that window against a certified
  // enclosure [lo, hi] of p and refine while they overlap. Each doubling of
  // the precision shrinks the overlap probability geometrically, so the
  // expected number of refinements is O(1).
  BigUInt u;
  int i = 0;
  // The first rung dominates the expected cost (later rungs are reached
  // with probability ~2^-prec); start small and widen aggressively.
  int prec = 16;
  for (;;) {
    const FixedInterval enc = approx(prec + 2);
    while (i < prec) {
      const int take = std::min(64, prec - i);
      u = (u << take) + BigUInt(rng.NextBits(take));
      i += take;
    }
    BigUInt u_plus_1 = u;
    u_plus_1.Increment();
    if (enc.CompareLoWithDyadic(u_plus_1, i) >= 0) return true;  // U < p
    if (enc.CompareHiWithDyadic(u, i) <= 0) return false;        // U >= p
    prec *= 4;
    // Termination safeguard: ambiguity at precision 2^22 has probability
    // < 2^-4e6; reaching it indicates a broken approximation oracle.
    DPSS_CHECK(prec <= (1 << 22));
  }
}

bool SampleBernoulliPow(const BigUInt& num, const BigUInt& den, uint64_t m,
                        RandomEngine& rng) {
  DPSS_CHECK(!den.IsZero() && BigUInt::Compare(num, den) <= 0);
  if (m == 0) return true;
  if (num.IsZero()) return false;
  if (BigUInt::Compare(num, den) == 0) return true;
  if (m == 1) return SampleBernoulliRational(num, den, rng);
  return SampleBernoulliApprox(
      [&](int t) { return ApproxPow(num, den, m, t); }, rng);
}

bool SampleBernoulliPStar(const BigUInt& qnum, const BigUInt& qden, uint64_t n,
                          RandomEngine& rng) {
  if (n == 1) return true;  // p* = 1
  return SampleBernoulliApprox(
      [&](int t) { return ApproxPStar(qnum, qden, n, t); }, rng);
}

bool SampleBernoulliHalfRecipPStar(const BigUInt& qnum, const BigUInt& qden,
                                   uint64_t n, RandomEngine& rng) {
  return SampleBernoulliApprox(
      [&](int t) { return ApproxHalfRecipPStar(qnum, qden, n, t); }, rng);
}

}  // namespace dpss
