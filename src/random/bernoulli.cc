#include "random/bernoulli.h"

#include <algorithm>

#include "random/block_rng.h"
#include "util/check.h"

namespace dpss {

BigUInt RandomBigBits(RandomEngine& rng, int bits) {
  DPSS_CHECK(bits >= 0);
  BigUInt r;
  int rem = bits;
  while (rem > 0) {
    const int take = std::min(64, rem);
    r = (r << take) + BigUInt(rng.NextBits(take));
    rem -= take;
  }
  return r;
}

BigUInt RandomBigBelow(const BigUInt& bound, RandomEngine& rng) {
  DPSS_CHECK(!bound.IsZero());
  const int bits = bound.BitLength();
  // bound > 2^(bits-1), so each draw succeeds with probability > 1/2.
  for (;;) {
    BigUInt v = RandomBigBits(rng, bits);
    if (BigUInt::Compare(v, bound) < 0) return v;
  }
}

bool SampleBernoulliRational(const BigUInt& num, const BigUInt& den,
                             RandomEngine& rng) {
  DPSS_CHECK(!den.IsZero());
  if (num.IsZero()) return false;
  if (BigUInt::Compare(num, den) >= 0) return true;
  // Fast path: one-word terms need no big-integer uniform.
  if (den.FitsU64()) {
    return rng.NextBelow(den.ToU64()) < num.ToU64();
  }
  return BigUInt::Compare(RandomBigBelow(den, rng), num) < 0;
}

bool SampleBernoulliApprox(
    const std::function<FixedInterval(int target_bits)>& approx,
    RandomEngine& rng) {
  // The first rung dominates the expected cost (later rungs are reached
  // with probability ~2^-prec); start small and widen aggressively.
  return SampleBernoulliApproxResume(approx, rng, BigUInt(), /*i=*/0,
                                     /*prec=*/16);
}

bool SampleBernoulliApproxResume(
    const std::function<FixedInterval(int target_bits)>& approx,
    RandomEngine& rng, BigUInt u, int i, int prec) {
  // Reveal the uniform real U bit by bit. With u = the first i bits of U,
  // U lies in [u/2^i, (u+1)/2^i); compare that window against a certified
  // enclosure [lo, hi] of p and refine while they overlap. Each doubling of
  // the precision shrinks the overlap probability geometrically, so the
  // expected number of refinements is O(1).
  for (;;) {
    const FixedInterval enc = approx(prec + 2);
    while (i < prec) {
      const int take = std::min(64, prec - i);
      u = (u << take) + BigUInt(rng.NextBits(take));
      i += take;
    }
    BigUInt u_plus_1 = u;
    u_plus_1.Increment();
    if (enc.CompareLoWithDyadic(u_plus_1, i) >= 0) return true;  // U < p
    if (enc.CompareHiWithDyadic(u, i) <= 0) return false;        // U >= p
    prec *= 4;
    // Termination safeguard: ambiguity at precision 2^22 has probability
    // < 2^-4e6; reaching it indicates a broken approximation oracle.
    DPSS_CHECK(prec <= (1 << 22));
  }
}

bool SampleBernoulliPow(const BigUInt& num, const BigUInt& den, uint64_t m,
                        RandomEngine& rng) {
  DPSS_CHECK(!den.IsZero() && BigUInt::Compare(num, den) <= 0);
  if (m == 0) return true;
  if (num.IsZero()) return false;
  if (BigUInt::Compare(num, den) == 0) return true;
  if (m == 1) return SampleBernoulliRational(num, den, rng);
  return SampleBernoulliApprox(
      [&](int t) { return ApproxPow(num, den, m, t); }, rng);
}

bool SampleBernoulliPStar(const BigUInt& qnum, const BigUInt& qden, uint64_t n,
                          RandomEngine& rng) {
  if (n == 1) return true;  // p* = 1
  return SampleBernoulliApprox(
      [&](int t) { return ApproxPStar(qnum, qden, n, t); }, rng);
}

bool SampleBernoulliHalfRecipPStar(const BigUInt& qnum, const BigUInt& qden,
                                   uint64_t n, RandomEngine& rng) {
  return SampleBernoulliApprox(
      [&](int t) { return ApproxHalfRecipPStar(qnum, qden, n, t); }, rng);
}

// ---------------------------------------------------------------------------
// Small-integer fast path. Each routine mirrors its BigUInt counterpart
// step for step (same bit draws, same comparisons), so operand-size
// dispatch is invisible to the sampling distribution AND to the bit stream.
// ---------------------------------------------------------------------------

namespace {

// The first rung of the lazy framework runs at precision 16 and refines by
// x4, exactly like SampleBernoulliApproxResume.
constexpr int kFirstRungPrec = 16;
static_assert(kFirstRungPrec + 2 == kPowFirstRungTargetBits,
              "the block-RNG enclosure memo is keyed on operands only, which "
              "is sound only while the first-rung target is a fixed constant");

// Resolves Ber(p) against a word-sized first-rung enclosure. Returns true /
// false when resolved; otherwise leaves the 16 drawn bits in *u_out and
// lets the caller continue in the BigUInt rungs.
enum class Rung1 { kTrue, kFalse, kUnresolved };

Rung1 ResolveFirstRung(const SmallInterval& enc, RandomEngine& rng,
                       uint64_t* u_out) {
  const uint64_t u = rng.NextBits(kFirstRungPrec);
  const int shift = enc.frac_bits - kFirstRungPrec;
  DPSS_DCHECK(shift >= 0);
  if (enc.lo >= (u + 1) << shift) return Rung1::kTrue;   // U < p
  if (enc.hi <= u << shift) return Rung1::kFalse;        // U >= p
  *u_out = u;
  return Rung1::kUnresolved;
}

}  // namespace

U128 RandomBigBelow(U128 bound, RandomEngine& rng) {
  DPSS_CHECK(bound != 0);
  const int bits = BitLength(bound);
  for (;;) {
    U128 v = 0;
    int rem = bits;
    while (rem > 0) {
      const int take = rem < 64 ? rem : 64;
      v = (v << take) + rng.NextBits(take);
      rem -= take;
    }
    if (v < bound) return v;
  }
}

bool SampleBernoulliRational(U128 num, U128 den, RandomEngine& rng) {
  DPSS_DCHECK(den != 0);
  if (num == 0) return false;
  if (num >= den) return true;
  if (den <= UINT64_MAX) {
    return rng.NextBelow(static_cast<uint64_t>(den)) <
           static_cast<uint64_t>(num);
  }
  return RandomBigBelow(den, rng) < num;
}

bool SampleBernoulliPow(U128 num, U128 den, uint64_t m, RandomEngine& rng) {
  DPSS_DCHECK(den != 0 && num <= den);
  if (m == 0) return true;
  if (num == 0) return false;
  if (num == den) return true;
  if (m == 1) return SampleBernoulliRational(num, den, rng);

  // The enclosure is a pure function of the operands (no random bits), so
  // the memoized copy decides the coin exactly as a fresh computation would.
  const SmallInterval enc = CachedApproxPowSmall(num, den, m);
  uint64_t u = 0;
  switch (ResolveFirstRung(enc, rng, &u)) {
    case Rung1::kTrue:
      return true;
    case Rung1::kFalse:
      return false;
    case Rung1::kUnresolved:
      break;
  }
  const BigUInt bnum = BigUInt::FromU128(num);
  const BigUInt bden = BigUInt::FromU128(den);
  return SampleBernoulliApproxResume(
      [&](int t) { return ApproxPow(bnum, bden, m, t); }, rng, BigUInt(u),
      kFirstRungPrec, 4 * kFirstRungPrec);
}

bool SampleBernoulliPStar(U128 qnum, U128 qden, uint64_t n, RandomEngine& rng) {
  if (n == 1) return true;  // p* = 1
  SmallInterval enc;
  if (ApproxPStarSmall(qnum, qden, n, /*target_bits=*/kFirstRungPrec + 2,
                       &enc)) {
    uint64_t u = 0;
    switch (ResolveFirstRung(enc, rng, &u)) {
      case Rung1::kTrue:
        return true;
      case Rung1::kFalse:
        return false;
      case Rung1::kUnresolved:
        break;
    }
    const BigUInt bqnum = BigUInt::FromU128(qnum);
    const BigUInt bqden = BigUInt::FromU128(qden);
    return SampleBernoulliApproxResume(
        [&](int t) { return ApproxPStar(bqnum, bqden, n, t); }, rng,
        BigUInt(u), kFirstRungPrec, 4 * kFirstRungPrec);
  }
  // Operands too wide for the word-sized series: run the BigUInt sampler
  // outright (bit-identical — it begins with the same first rung).
  return SampleBernoulliPStar(BigUInt::FromU128(qnum), BigUInt::FromU128(qden),
                              n, rng);
}

}  // namespace dpss
