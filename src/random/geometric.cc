#include "random/geometric.h"

#include <algorithm>

#include "bigint/rational.h"
#include "random/bernoulli.h"
#include "util/bits.h"
#include "util/check.h"

namespace dpss {

namespace {

// Samples the index j in [1, b] of the first success within a block of b
// independent Ber(p) trials, conditioned on the block containing at least
// one success: Pr[j] ∝ (1-p)^{j-1}. Requires b·p < 2 so the uniform-index
// rejection accepts with probability >= (1-p)^b >= e^-2 - o(1).
uint64_t SampleOffsetWithinBlock(const BigUInt& qnum, const BigUInt& qden,
                                 uint64_t b, RandomEngine& rng) {
  for (;;) {
    const uint64_t j = 1 + rng.NextBelow(b);
    if (j == 1) return 1;
    if (SampleBernoulliPow(qnum, qden, j - 1, rng)) return j;
  }
}

uint64_t SampleOffsetWithinBlock(U128 qnum, U128 qden, uint64_t b,
                                 RandomEngine& rng) {
  for (;;) {
    const uint64_t j = 1 + rng.NextBelow(b);
    if (j == 1) return 1;
    if (SampleBernoulliPow(qnum, qden, j - 1, rng)) return j;
  }
}

}  // namespace

uint64_t SampleBoundedGeo(const BigUInt& pnum, const BigUInt& pden, uint64_t n,
                          RandomEngine& rng) {
  DPSS_CHECK(!pden.IsZero());
  DPSS_CHECK(n >= 1 && n <= kMaxGeoBound);
  if (BigUInt::Compare(pnum, pden) >= 0) return 1;  // p >= 1
  if (pnum.IsZero()) return n;                      // p == 0
  if (n == 1) return 1;

  const BigUInt qnum = BigUInt::Sub(pden, pnum);  // 1-p numerator

  // p >= 1/2: direct trials, expected <= 2 coins.
  if (BigUInt::Compare(pnum << 1, pden) >= 0) {
    for (uint64_t k = 1; k < n; ++k) {
      if (SampleBernoulliRational(pnum, pden, rng)) return k;
    }
    return n;
  }

  // Block size b = 2^t, the smallest power of two with b·p >= 1, capped so a
  // single block covers [1, n] when p is tiny. In both regimes b·p < 2.
  const int t_uncapped = BigRational(pden, pnum).CeilLog2();
  const int t_cap = CeilLog2(n + 1);
  const int t = std::min(t_uncapped, t_cap);
  const uint64_t b = uint64_t{1} << t;

  // Count leading all-fail blocks. Each continues with probability
  // (1-p)^b <= e^-1 when uncapped (b·p >= 1); when capped, offset reaches n
  // after at most one block.
  uint64_t offset = 0;
  for (;;) {
    if (offset >= n) return n;
    if (!SampleBernoulliPow(qnum, pden, b, rng)) break;  // block has a success
    offset += b;
  }
  const uint64_t j = SampleOffsetWithinBlock(qnum, pden, b, rng);
  return std::min(n, offset + j);
}

uint64_t SampleTruncatedGeo(const BigUInt& pnum, const BigUInt& pden,
                            uint64_t n, RandomEngine& rng) {
  DPSS_CHECK(!pnum.IsZero() && !pden.IsZero());
  DPSS_CHECK(n >= 1 && n <= kMaxGeoBound);
  if (BigUInt::Compare(pnum, pden) >= 0) return 1;  // p >= 1

  // Case 1: n <= 2.
  if (n == 1) return 1;
  if (n == 2) {
    // T-Geo(p, 2) = Ber((1-p)/(2-p)) + 1.
    const BigUInt num = BigUInt::Sub(pden, pnum);          // 1-p
    const BigUInt den = BigUInt::Sub(pden << 1, pnum);     // 2-p
    return SampleBernoulliRational(num, den, rng) ? 2 : 1;
  }

  const BigUInt np = BigUInt::MulU64(pnum, n);
  if (BigUInt::Compare(np, pden) >= 0) {
    // Case 2.1: n·p >= 1 — rejection from B-Geo(p, n+1); accepts with
    // probability 1-(1-p)^n > 1-1/e per round.
    for (;;) {
      const uint64_t i = SampleBoundedGeo(pnum, pden, n + 1, rng);
      if (i <= n) return i;
    }
  }

  // Case 2.2: n >= 3 and n·p < 1.
  //
  // Deviation from the paper (documented in DESIGN.md): Theorem 1.3's
  // pseudocode for this case scans candidates left to right and returns the
  // first accepted one, where each index i is accepted with probability
  // exactly Pr[T-Geo = i]; the *first*-accepted index is then biased toward
  // small i (our distribution tests catch this). We use an equivalent-cost
  // unbiased rejection sampler instead: propose i uniform in {1..n} and
  // accept with probability (1-p)^{i-1}, so accepted proposals are
  // distributed ∝ (1-p)^{i-1} — the truncated geometric. The per-round
  // acceptance rate is (1-(1-p)^n)/(np) = p* >= 1-1/e under n·p <= 1
  // (the same quantity the paper's scheme uses), so O(1) expected rounds.
  const BigUInt qnum = BigUInt::Sub(pden, pnum);  // 1-p numerator
  for (;;) {
    const uint64_t i = 1 + rng.NextBelow(n);
    if (i == 1 || SampleBernoulliPow(qnum, pden, i - 1, rng)) return i;
  }
}

// ---------------------------------------------------------------------------
// Small-integer fast path: word-level mirrors of the two variates. Control
// flow, comparisons and bit draws match the BigUInt versions exactly; where
// an intermediate could exceed 128 bits the whole call falls back to the
// BigUInt variate (bit-identical, since the mirrors agree on values).
// ---------------------------------------------------------------------------

uint64_t SampleBoundedGeo(U128 pnum, U128 pden, uint64_t n, RandomEngine& rng) {
  DPSS_DCHECK(pden != 0);
  DPSS_DCHECK(n >= 1 && n <= kMaxGeoBound);
  if (pnum >= pden) return 1;  // p >= 1
  if (pnum == 0) return n;     // p == 0
  if (n == 1) return 1;

  const U128 qnum = pden - pnum;  // 1-p numerator

  // p >= 1/2 (pnum·2 >= pden, tested overflow-free as pnum >= pden - pnum).
  if (pnum >= qnum) {
    for (uint64_t k = 1; k < n; ++k) {
      if (SampleBernoulliRational(pnum, pden, rng)) return k;
    }
    return n;
  }

  const int t_uncapped = CeilLog2Ratio(pden, pnum);
  const int t_cap = CeilLog2(n + 1);
  const int t = std::min(t_uncapped, t_cap);
  const uint64_t b = uint64_t{1} << t;

  uint64_t offset = 0;
  for (;;) {
    if (offset >= n) return n;
    if (!SampleBernoulliPow(qnum, pden, b, rng)) break;  // block has a success
    offset += b;
  }
  const uint64_t j = SampleOffsetWithinBlock(qnum, pden, b, rng);
  return std::min(n, offset + j);
}

uint64_t SampleTruncatedGeo(U128 pnum, U128 pden, uint64_t n,
                            RandomEngine& rng) {
  DPSS_DCHECK(pnum != 0 && pden != 0);
  DPSS_DCHECK(n >= 1 && n <= kMaxGeoBound);
  if (pnum >= pden) return 1;  // p >= 1

  if (n == 1) return 1;
  if (n == 2) {
    // T-Geo(p, 2) = Ber((1-p)/(2-p)) + 1; 2·pden needs a 129th bit when
    // pden >= 2^127 — delegate those to the BigUInt mirror.
    if ((pden >> 127) != 0) {
      return SampleTruncatedGeo(BigUInt::FromU128(pnum),
                                BigUInt::FromU128(pden), n, rng);
    }
    const U128 num = pden - pnum;
    const U128 den = (pden << 1) - pnum;
    return SampleBernoulliRational(num, den, rng) ? 2 : 1;
  }

  // n·p >= 1 decides between the two case-2 samplers; when the product
  // needs more than 128 bits, settle the comparison in BigUInt (no bits are
  // drawn here, so this cannot perturb the stream).
  const bool np_at_least_one =
      MulFits(pnum, n)
          ? pnum * n >= pden
          : BigUInt::Compare(BigUInt::MulU64(BigUInt::FromU128(pnum), n),
                             BigUInt::FromU128(pden)) >= 0;
  if (np_at_least_one) {
    // Case 2.1: rejection from B-Geo(p, n+1).
    for (;;) {
      const uint64_t i = SampleBoundedGeo(pnum, pden, n + 1, rng);
      if (i <= n) return i;
    }
  }

  // Case 2.2: uniform proposal accepted with (1-p)^{i-1} (see the BigUInt
  // version for the deviation-from-paper note).
  const U128 qnum = pden - pnum;
  for (;;) {
    const uint64_t i = 1 + rng.NextBelow(n);
    if (i == 1 || SampleBernoulliPow(qnum, pden, i - 1, rng)) return i;
  }
}

}  // namespace dpss
