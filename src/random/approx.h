// Certified i-bit approximations (Definition 3.2) of the probabilities the
// DPSS algorithm samples from.
//
// Values are enclosed in fixed-point intervals [lo, hi] · 2^-frac_bits with
// directed (outward) rounding, so `lo/2^F <= value <= hi/2^F` always holds
// and the enclosure width is certified to be at most 2^-target. This is the
// "working precision" arithmetic of Lemmas 3.3/3.4, specialised to the
// value range [0, 2] that all our probabilities inhabit (which lets plain
// scaled integers replace exponent/mantissa floats).
//
// Provided approximations:
//   * ApproxRational  — num/den                        (exact up to 1 ulp)
//   * ApproxPow       — (num/den)^m, num <= den        (binary exponentiation)
//   * ApproxPStar     — p* = (1-(1-q)^n)/(nq), nq <= 1 (Lemma 3.3 series)
//   * ApproxHalfRecipPStar — 1/(2p*)                   (Lemma 3.4)

#ifndef DPSS_RANDOM_APPROX_H_
#define DPSS_RANDOM_APPROX_H_

#include <cstdint>

#include "bigint/big_uint.h"
#include "bigint/u128.h"
#include "util/bits.h"
#include "util/check.h"

namespace dpss {

// A certified enclosure [lo, hi] · 2^-frac_bits of a non-negative real.
struct FixedInterval {
  BigUInt lo;
  BigUInt hi;
  int frac_bits = 0;

  // Compares lo (resp. hi) against the dyadic rational u / 2^i.
  // Requires i <= frac_bits. Returns <0, 0, >0.
  int CompareLoWithDyadic(const BigUInt& u, int i) const {
    DPSS_DCHECK(i <= frac_bits);
    return BigUInt::Compare(lo, u << (frac_bits - i));
  }
  int CompareHiWithDyadic(const BigUInt& u, int i) const {
    DPSS_DCHECK(i <= frac_bits);
    return BigUInt::Compare(hi, u << (frac_bits - i));
  }

  // Enclosure width as a double (diagnostics/tests).
  double WidthToDouble() const;
  // Midpoint value as a double (diagnostics/tests).
  double MidToDouble() const;
};

// Enclosure of num/den with width <= 2^-target_bits. Requires den > 0.
FixedInterval ApproxRational(const BigUInt& num, const BigUInt& den,
                             int target_bits);

// Enclosure of (num/den)^m with width <= 2^-target_bits.
// Requires 0 <= num <= den, den > 0, m >= 0.
FixedInterval ApproxPow(const BigUInt& num, const BigUInt& den, uint64_t m,
                        int target_bits);

// Enclosure of p* = (1 - (1-q)^n) / (n q) with q = qnum/qden, width
// <= 2^-target_bits. Requires 0 < q, n >= 1, and n·q <= 1 (paper Thm 3.1).
// Uses the alternating binomial series of Lemma 3.3 truncated at
// target_bits + 3 terms (term magnitudes halve at least geometrically).
FixedInterval ApproxPStar(const BigUInt& qnum, const BigUInt& qden, uint64_t n,
                          int target_bits);

// Enclosure of 1/(2 p*) with width <= 2^-target_bits (Lemma 3.4: p* >= 1/2
// under n·q <= 1, so the reciprocal is a probability in [1/2, 1]).
FixedInterval ApproxHalfRecipPStar(const BigUInt& qnum, const BigUInt& qden,
                                   uint64_t n, int target_bits);

// --- Small-integer fast path ----------------------------------------------
//
// First-rung enclosures computed entirely in machine words. These are exact
// value-level mirrors of ApproxPow / ApproxPStar at small target precisions
// (the first rung of the lazy Bernoulli framework uses target_bits == 18):
// for equal operand values they produce the same lo/hi/frac_bits integers,
// so a coin resolved against a small enclosure decides identically to one
// resolved against the BigUInt enclosure.

struct SmallInterval {
  uint64_t lo = 0;
  uint64_t hi = 0;
  int frac_bits = 0;
};

// f-fractional-bit fixed-point products with directed rounding, for
// word-sized values (a, b <= 2^60). Shared by ApproxPowSmallFromBase and
// the squares-chain memo in random/block_rng.cc, which must round exactly
// like the uncached computation.
inline uint64_t MulFloorSmall(uint64_t a, uint64_t b, int f) {
  return static_cast<uint64_t>((static_cast<U128>(a) * b) >> f);
}
inline uint64_t MulCeilSmall(uint64_t a, uint64_t b, int f) {
  const U128 p = static_cast<U128>(a) * b;
  uint64_t q = static_cast<uint64_t>(p >> f);
  if ((static_cast<U128>(q) << f) != p) ++q;
  return q;
}

// Mirror of ApproxPow(num, den, m, target_bits) for 0 < num < den, m >= 2.
// Requires target_bits small enough that the working precision stays below
// 60 bits (the callers use 18). Works for any 128-bit operands.
SmallInterval ApproxPowSmall(U128 num, U128 den, uint64_t m, int target_bits);

// ApproxPowSmall decomposed, so the expensive half can be cached. The
// working precision f depends on m only through bitlen(m) (each of the
// <= 2·bitlen(m)+2 interval multiplications spends error budget), the base
// enclosure of num/den at f fractional bits is one long division — the
// dominant cost — and the square-and-multiply continuation is cheap word
// arithmetic. ApproxPowSmall(num, den, m, t) is by definition
//   ApproxPowSmallFromBase(base_lo, base_hi, f, m)
// with f = ApproxPowSmallFracBits(m, t) and (base_lo, base_hi) from
// ApproxPowSmallBase(num, den, f); the block-RNG layer memoizes the base
// per (num, den, f) (see random/block_rng.h).
inline int ApproxPowSmallFracBits(uint64_t m, int target_bits) {
  const int ops = 2 * BitLength(m) + 2;
  return target_bits + CeilLog2(static_cast<uint64_t>(ops)) + 4;
}
void ApproxPowSmallBase(U128 num, U128 den, int f, uint64_t* base_lo,
                        uint64_t* base_hi);
SmallInterval ApproxPowSmallFromBase(uint64_t base_lo, uint64_t base_hi, int f,
                                     uint64_t m);

// Mirror of ApproxPStar(qnum, qden, n, target_bits) for n >= 2. Returns
// false (leaving *out untouched) when an intermediate product could exceed
// 128 bits; callers then fall back to the BigUInt oracle.
bool ApproxPStarSmall(U128 qnum, U128 qden, uint64_t n, int target_bits,
                      SmallInterval* out);

}  // namespace dpss

#endif  // DPSS_RANDOM_APPROX_H_
