// Block-RNG layer for the batched query hot path.
//
// The query walk consumes randomness one short draw at a time (16-bit
// first-rung uniforms, bitlen(mult)-bit accept draws, rejection draws for
// NextBelow). Two per-draw overheads dominate once the arithmetic runs on
// the u128 fast path:
//
//   1. stepping the generator state word by word, and
//   2. recomputing the certified (1-p)^m first-rung enclosure for every
//      Bernoulli-power coin — a deterministic fixed-point computation whose
//      operands repeat heavily within a query (the B-Geo block coin reuses
//      one (qnum, pden, b) triple for every jump through a bucket, and the
//      offset/T-Geo coins cycle through a small set of exponents).
//
// This layer amortizes both without touching the bit stream:
//
// Consumption-order contract. RandomEngine::PrefetchWords(n) bulk-runs the
// recurrence into a FIFO inside the engine that NextWord drains in
// generation order, so the sequence of served words — and therefore every
// sampling decision — is identical for any pattern of prefetch calls,
// including none. Batching is a pure amortization and can never perturb
// reproducibility; the fastpath-equivalence harness drives a prefetching
// and a non-prefetching query side by side from one seed and asserts equal
// outputs. The constants below are the prefetch block sizes the HALT query
// path uses (capped by RandomEngine::kBufferWords).
//
// Enclosure memo. CachedApproxPowSmall memoizes ApproxPowSmall at the fixed
// first-rung precision in two small thread-local direct-mapped tables: the
// full enclosure keyed on (num, den, m) — hit by the repeated B-Geo block
// coin — and the squares chain (num/den)^(2^k) keyed on (num, den, f) — hit
// by the offset coins whose random exponent m varies per draw but whose
// working precision f only depends on bitlen(m), leaving just popcount(m)
// accumulation multiplies per coin. The enclosure computation consumes
// no random bits and is a pure function of its operands, so serving a
// cached copy is invisible to both the bit stream and the sampling
// distribution — it returns bit-for-bit the same SmallInterval the direct
// call would (see the ApproxPowSmall* decomposition in random/approx.h).

#ifndef DPSS_RANDOM_BLOCK_RNG_H_
#define DPSS_RANDOM_BLOCK_RNG_H_

#include <cstdint>

#include "bigint/u128.h"
#include "random/approx.h"

namespace dpss {

// Words prefetched once per query (SampleInto) and per candidate bucket
// (ExtractItems). One extracted item costs ~4-6 words (block coin + offset
// + accept draw), so a bucket block covers several items per refill.
inline constexpr int kQueryPrefetchWords = 64;
inline constexpr int kBucketPrefetchWords = 32;

// The fixed precision of the lazy Bernoulli framework's first rung
// (kFirstRungPrec + 2 in random/bernoulli.cc; the memo is keyed on operands
// only because every fast-path call uses this one target).
inline constexpr int kPowFirstRungTargetBits = 18;

// ApproxPowSmall(num, den, m, kPowFirstRungTargetBits) through a
// thread-local memo. Bit-for-bit identical to the direct call.
SmallInterval CachedApproxPowSmall(U128 num, U128 den, uint64_t m);

// Drops every memoized enclosure on this thread (tests; also useful to
// re-measure cold-cache behaviour in benchmarks).
void ClearPowEnclosureCache();

}  // namespace dpss

#endif  // DPSS_RANDOM_BLOCK_RNG_H_
