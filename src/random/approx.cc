#include "random/approx.h"

#include <cmath>

#include "util/bits.h"

namespace dpss {

namespace {

// floor((a * b) / 2^f)
BigUInt MulFloor(const BigUInt& a, const BigUInt& b, int f) {
  return (a * b) >> f;
}

// ceil((a * b) / 2^f)
BigUInt MulCeil(const BigUInt& a, const BigUInt& b, int f) {
  BigUInt p = a * b;
  BigUInt q = p >> f;
  if (BigUInt::Compare(q << f, p) != 0) q.Increment();
  return q;
}

// floor(num * 2^f / den)
BigUInt DivFloor(const BigUInt& num, const BigUInt& den, int f) {
  return BigUInt::Div(num << f, den);
}

// ceil(num * 2^f / den)
BigUInt DivCeil(const BigUInt& num, const BigUInt& den, int f) {
  auto [q, r] = BigUInt::DivMod(num << f, den);
  if (!r.IsZero()) q.Increment();
  return q;
}

}  // namespace

double FixedInterval::WidthToDouble() const {
  return std::ldexp(BigUInt::Sub(hi, lo).ToDouble(), -frac_bits);
}

double FixedInterval::MidToDouble() const {
  return std::ldexp((lo + hi).ToDouble(), -(frac_bits + 1));
}

FixedInterval ApproxRational(const BigUInt& num, const BigUInt& den,
                             int target_bits) {
  DPSS_CHECK(!den.IsZero() && target_bits >= 1);
  FixedInterval out;
  out.frac_bits = target_bits;
  out.lo = DivFloor(num, den, target_bits);
  out.hi = DivCeil(num, den, target_bits);
  return out;
}

FixedInterval ApproxPow(const BigUInt& num, const BigUInt& den, uint64_t m,
                        int target_bits) {
  DPSS_CHECK(BigUInt::Compare(num, den) <= 0 && !den.IsZero());
  DPSS_CHECK(target_bits >= 1);
  FixedInterval out;
  if (m == 0 || BigUInt::Compare(num, den) == 0) {
    // Exactly 1.
    out.frac_bits = target_bits;
    out.lo = BigUInt::PowerOfTwo(target_bits);
    out.hi = out.lo;
    return out;
  }
  if (num.IsZero()) {
    out.frac_bits = target_bits;
    out.lo = BigUInt();
    out.hi = out.lo;
    return out;
  }

  // Right-to-left binary exponentiation with outward rounding: maintain the
  // squares chain s = q^(2^bit) and fold it into the result on set bits of
  // m. The chain depends only on the base and f — never on m — which is what
  // lets the word-sized mirror memoize it per (num, den, f) and serve coins
  // with arbitrary exponents from it (random/block_rng.cc); this BigUInt
  // version must therefore perform the exact same operation sequence. Each
  // of the <= 2*bitlen(m) interval multiplications adds at most ~2 ulp of
  // width to values <= 1, and the base enclosure contributes 1 ulp, so
  // working precision target + log2(ops) + 4 certifies the target width.
  const int ops = 2 * BitLength(m) + 2;
  const int f = target_bits + CeilLog2(static_cast<uint64_t>(ops)) + 4;
  const BigUInt one = BigUInt::PowerOfTwo(f);

  BigUInt s_lo = DivFloor(num, den, f);
  BigUInt s_hi = DivCeil(num, den, f);
  BigUInt res_lo, res_hi;
  bool started = false;

  const int bits = BitLength(m);
  for (int bit = 0; bit < bits; ++bit) {
    if (bit > 0) {
      s_lo = MulFloor(s_lo, s_lo, f);
      s_hi = MulCeil(s_hi, s_hi, f);
      // The true value is <= 1; capping preserves the enclosure while
      // controlling growth.
      if (BigUInt::Compare(s_hi, one) > 0) s_hi = one;
    }
    if ((m >> bit) & 1) {
      if (started) {
        res_lo = MulFloor(res_lo, s_lo, f);
        res_hi = MulCeil(res_hi, s_hi, f);
        if (BigUInt::Compare(res_hi, one) > 0) res_hi = one;
      } else {
        res_lo = s_lo;
        res_hi = s_hi;
        started = true;
      }
    }
  }

  out.frac_bits = f;
  out.lo = std::move(res_lo);
  out.hi = std::move(res_hi);
  return out;
}

FixedInterval ApproxPStar(const BigUInt& qnum, const BigUInt& qden, uint64_t n,
                          int target_bits) {
  DPSS_CHECK(!qnum.IsZero() && !qden.IsZero());
  DPSS_CHECK(n >= 1 && target_bits >= 1);
  // n*q <= 1 required (checked cheaply via cross multiplication).
  DPSS_CHECK(BigUInt::Compare(BigUInt::MulU64(qnum, n), qden) <= 0);

  FixedInterval out;
  if (n == 1) {
    // p* = 1 exactly.
    out.frac_bits = target_bits;
    out.lo = BigUInt::PowerOfTwo(target_bits);
    out.hi = out.lo;
    return out;
  }

  // p* = sum_{j>=1} t_j  with  t_1 = 1,
  //   t_{j+1} = t_j * (-q) (n-j) / (j+1),  |t_j| <= 2^{-(j-1)}.
  // Truncate after J = target_bits + 3 terms; the alternating tail is
  // bounded by |t_{J+1}| <= 2^-J.
  const uint64_t terms = static_cast<uint64_t>(target_bits) + 3;
  const int f = target_bits + CeilLog2(terms + 2) + 6;

  // Interval magnitude of the current term.
  BigUInt t_lo = BigUInt::PowerOfTwo(f);  // t_1 = 1
  BigUInt t_hi = t_lo;
  // Positive / negative partial sums (interval endpoints).
  BigUInt pos_lo = t_lo, pos_hi = t_hi;
  BigUInt neg_lo, neg_hi;  // zero

  for (uint64_t j = 1; j < terms && j < n; ++j) {
    // |t_{j+1}| = |t_j| * qnum*(n-j) / (qden*(j+1))
    const BigUInt mul_num = BigUInt::MulU64(qnum, n - j);
    const BigUInt mul_den = BigUInt::MulU64(qden, j + 1);
    t_lo = BigUInt::Div(t_lo * mul_num, mul_den);
    t_hi = BigUInt::Div(t_hi * mul_num, mul_den);
    t_hi.Increment();
    if ((j + 1) % 2 == 0) {
      neg_lo = neg_lo + t_lo;
      neg_hi = neg_hi + t_hi;
    } else {
      pos_lo = pos_lo + t_lo;
      pos_hi = pos_hi + t_hi;
    }
    if (t_hi.IsZero()) break;
  }

  // Tail bound: 2^{-(terms-1)} scaled to f fractional bits (only needed if
  // the series was truncated before n terms).
  BigUInt tail;
  if (terms < n) {
    const int tail_shift = f - static_cast<int>(terms) + 1;
    tail = tail_shift >= 0 ? BigUInt::PowerOfTwo(tail_shift)
                           : BigUInt(uint64_t{1});
  }

  // value in [pos_lo - neg_hi - tail, pos_hi - neg_lo + tail], clamped to
  // [0, 1] (p* is a probability).
  BigUInt lo_bound = pos_lo;
  const BigUInt down = neg_hi + tail;
  lo_bound = BigUInt::Compare(lo_bound, down) > 0 ? BigUInt::Sub(lo_bound, down)
                                                  : BigUInt();
  BigUInt hi_bound = pos_hi + tail;
  hi_bound = BigUInt::Compare(hi_bound, neg_lo) > 0
                 ? BigUInt::Sub(hi_bound, neg_lo)
                 : BigUInt();
  const BigUInt one = BigUInt::PowerOfTwo(f);
  if (BigUInt::Compare(hi_bound, one) > 0) hi_bound = one;
  if (BigUInt::Compare(lo_bound, hi_bound) > 0) lo_bound = hi_bound;

  out.frac_bits = f;
  out.lo = std::move(lo_bound);
  out.hi = std::move(hi_bound);
  return out;
}

FixedInterval ApproxHalfRecipPStar(const BigUInt& qnum, const BigUInt& qden,
                                   uint64_t n, int target_bits) {
  // 1/(2 p*) with p* in [1/2, 1]: an enclosure of p* of width w yields a
  // reciprocal enclosure of width <= 2w (since 2*p* >= 1), plus 2 ulp of
  // rounding.
  const FixedInterval ps = ApproxPStar(qnum, qden, n, target_bits + 3);
  const int f = ps.frac_bits;
  FixedInterval out;
  out.frac_bits = f;
  // 1/(2 p*) scaled by 2^f  =  2^(2f-1) / (p* * 2^f).
  DPSS_CHECK(!ps.lo.IsZero());  // p* >= 1/2 > 0 under the preconditions
  const BigUInt two_pow = BigUInt::PowerOfTwo(2 * f - 1);
  out.lo = BigUInt::Div(two_pow, ps.hi);
  auto [q, r] = BigUInt::DivMod(two_pow, ps.lo);
  if (!r.IsZero()) q.Increment();
  out.hi = std::move(q);
  const BigUInt one = BigUInt::PowerOfTwo(f);
  if (BigUInt::Compare(out.hi, one) > 0) out.hi = one;
  if (BigUInt::Compare(out.lo, out.hi) > 0) out.lo = out.hi;
  return out;
}

// ---------------------------------------------------------------------------
// Small-integer fast path: word-sized mirrors of the first enclosure rung.
// Every arithmetic step below computes the same integer as its BigUInt
// counterpart in ApproxPow / ApproxPStar, so the enclosures are identical.
// ---------------------------------------------------------------------------

void ApproxPowSmallBase(U128 num, U128 den, int f, uint64_t* base_lo,
                        uint64_t* base_hi) {
  DPSS_DCHECK(num != 0 && num < den && f >= 1 && f <= 60);
  bool exact = false;
  *base_lo = ShlDivFloor(num, den, f, &exact);
  *base_hi = *base_lo + (exact ? 0 : 1);
}

SmallInterval ApproxPowSmall(U128 num, U128 den, uint64_t m, int target_bits) {
  DPSS_DCHECK(num != 0 && num < den && m >= 2);
  const int f = ApproxPowSmallFracBits(m, target_bits);
  uint64_t base_lo, base_hi;
  ApproxPowSmallBase(num, den, f, &base_lo, &base_hi);
  return ApproxPowSmallFromBase(base_lo, base_hi, f, m);
}

SmallInterval ApproxPowSmallFromBase(uint64_t base_lo, uint64_t base_hi, int f,
                                     uint64_t m) {
  DPSS_DCHECK(m >= 2 && f >= 1 && f <= 60);
  // Right-to-left, mirroring ApproxPow step for step: the squares chain
  // s = base^(2^bit) is independent of m, so the memoized variant in
  // random/block_rng.cc can replay the accumulation against a cached chain
  // and land on exactly these integers.
  const uint64_t one = uint64_t{1} << f;
  uint64_t s_lo = base_lo;
  uint64_t s_hi = base_hi;
  uint64_t res_lo = 0;
  uint64_t res_hi = 0;
  bool started = false;

  const int bits = BitLength(m);
  for (int bit = 0; bit < bits; ++bit) {
    if (bit > 0) {
      s_lo = MulFloorSmall(s_lo, s_lo, f);
      s_hi = MulCeilSmall(s_hi, s_hi, f);
      if (s_hi > one) s_hi = one;
    }
    if ((m >> bit) & 1) {
      if (started) {
        res_lo = MulFloorSmall(res_lo, s_lo, f);
        res_hi = MulCeilSmall(res_hi, s_hi, f);
        if (res_hi > one) res_hi = one;
      } else {
        res_lo = s_lo;
        res_hi = s_hi;
        started = true;
      }
    }
  }

  SmallInterval out;
  out.frac_bits = f;
  out.lo = res_lo;
  out.hi = res_hi;
  return out;
}

bool ApproxPStarSmall(U128 qnum, U128 qden, uint64_t n, int target_bits,
                      SmallInterval* out) {
  DPSS_DCHECK(qnum != 0 && qden != 0 && n >= 2);
  // n·q <= 1, checked without forming the (possibly 129-bit) product.
  DPSS_DCHECK(qnum <= qden / n);
  const uint64_t terms = static_cast<uint64_t>(target_bits) + 3;
  const int f = target_bits + CeilLog2(terms + 2) + 6;
  DPSS_DCHECK(f >= 1 && f <= 60);

  // Term magnitudes stay <= 2^f + j; give them f+1 bits of headroom and
  // require the t·qnum·(n-j) and qden·(j+1) products to fit 128 bits.
  if ((f + 1) + BitLength(qnum) + BitLength(n) > 128) return false;
  if (BitLength(qden) + BitLength(terms + 1) > 128) return false;

  U128 t_lo = static_cast<U128>(1) << f;  // t_1 = 1
  U128 t_hi = t_lo;
  U128 pos_lo = t_lo, pos_hi = t_hi;
  U128 neg_lo = 0, neg_hi = 0;

  for (uint64_t j = 1; j < terms && j < n; ++j) {
    const U128 mul_num = qnum * (n - j);
    const U128 mul_den = qden * (j + 1);
    t_lo = (t_lo * mul_num) / mul_den;
    t_hi = (t_hi * mul_num) / mul_den + 1;
    if ((j + 1) % 2 == 0) {
      neg_lo += t_lo;
      neg_hi += t_hi;
    } else {
      pos_lo += t_lo;
      pos_hi += t_hi;
    }
    if (t_hi == 0) break;
  }

  U128 tail = 0;
  if (terms < n) {
    const int tail_shift = f - static_cast<int>(terms) + 1;
    tail = tail_shift >= 0 ? static_cast<U128>(1) << tail_shift
                           : static_cast<U128>(1);
  }

  const U128 down = neg_hi + tail;
  U128 lo_bound = pos_lo > down ? pos_lo - down : 0;
  U128 hi_bound = pos_hi + tail;
  hi_bound = hi_bound > neg_lo ? hi_bound - neg_lo : 0;
  const U128 one = static_cast<U128>(1) << f;
  if (hi_bound > one) hi_bound = one;
  if (lo_bound > hi_bound) lo_bound = hi_bound;

  out->frac_bits = f;
  out->lo = static_cast<uint64_t>(lo_bound);
  out->hi = static_cast<uint64_t>(hi_bound);
  return true;
}

}  // namespace dpss
