// Bounded and Truncated Geometric random variates in the Word RAM model
// (paper §3.2, Fact 3 and Theorem 1.3).
//
//  * B-Geo(p, n) = min(Geo(p), n):
//      Pr[i] = p (1-p)^{i-1} for i in {1..n-1},  Pr[n] = (1-p)^{n-1}.
//  * T-Geo(p, n): Pr[i] = p (1-p)^{i-1} / (1 - (1-p)^n) for i in {1..n}.
//
// Both run in O(1) expected time for any rational p given on the fly, and
// are exact. B-Geo uses a block decomposition: the number of leading
// all-fail blocks of size b (with b·p in [1,2)) is sampled with exact
// Ber((1-p)^b) coins, and the offset of the first success inside the hit
// block is sampled by uniform-index rejection with Ber((1-p)^{j-1})
// acceptance — the acceptance rate is at least e^-2. T-Geo is the paper's
// three-case algorithm (Theorem 1.3), built on B-Geo and the type (ii)/(iii)
// Bernoulli generators.

#ifndef DPSS_RANDOM_GEOMETRIC_H_
#define DPSS_RANDOM_GEOMETRIC_H_

#include <cstdint>

#include "bigint/big_uint.h"
#include "bigint/u128.h"
#include "util/random.h"

namespace dpss {

// Maximum supported bound for geometric variates. Callers pass bucket or
// instance sizes, which are far below this.
inline constexpr uint64_t kMaxGeoBound = uint64_t{1} << 62;

// B-Geo(p, n) with p = pnum/pden. Requires pden > 0, n in [1, kMaxGeoBound].
// p >= 1 returns 1 deterministically; p == 0 returns n.
uint64_t SampleBoundedGeo(const BigUInt& pnum, const BigUInt& pden, uint64_t n,
                          RandomEngine& rng);

// T-Geo(p, n) with p = pnum/pden. Requires 0 < p, pden > 0,
// n in [1, kMaxGeoBound]. p >= 1 returns 1 deterministically.
uint64_t SampleTruncatedGeo(const BigUInt& pnum, const BigUInt& pden,
                            uint64_t n, RandomEngine& rng);

// --- Small-integer fast path ----------------------------------------------
// u128 overloads, exact value-level mirrors of the BigUInt variates above
// (same bit stream, same results for equal operand values). Zero heap
// allocations outside the rare deep-precision coin fallback.

uint64_t SampleBoundedGeo(U128 pnum, U128 pden, uint64_t n, RandomEngine& rng);

uint64_t SampleTruncatedGeo(U128 pnum, U128 pden, uint64_t n,
                            RandomEngine& rng);

}  // namespace dpss

#endif  // DPSS_RANDOM_GEOMETRIC_H_
