#include "apps/graph.h"

namespace dpss {

void Graph::AddEdge(uint32_t u, uint32_t v, uint64_t weight) {
  DPSS_CHECK(u < num_nodes() && v < num_nodes());
  out_[u].push_back(Edge{v, weight});
  in_[v].push_back(Edge{u, weight});
  out_weight_[u] += weight;
  ++num_edges_;
}

Graph Graph::ErdosRenyi(uint32_t n, double avg_out_degree, uint64_t max_weight,
                        uint64_t seed) {
  Graph g(n);
  RandomEngine rng(seed);
  const uint64_t edges =
      static_cast<uint64_t>(avg_out_degree * static_cast<double>(n));
  for (uint64_t e = 0; e < edges; ++e) {
    const uint32_t u = static_cast<uint32_t>(rng.NextBelow(n));
    const uint32_t v = static_cast<uint32_t>(rng.NextBelow(n));
    if (u == v) continue;
    g.AddEdge(u, v, 1 + rng.NextBelow(max_weight));
  }
  return g;
}

Graph Graph::PreferentialAttachment(uint32_t n, int edges_per_node,
                                    uint64_t max_weight, uint64_t seed) {
  Graph g(n);
  RandomEngine rng(seed);
  // Repeated-endpoint trick: targets drawn uniformly from the endpoint list
  // are degree-biased.
  std::vector<uint32_t> endpoints;
  endpoints.push_back(0);
  for (uint32_t v = 1; v < n; ++v) {
    for (int e = 0; e < edges_per_node; ++e) {
      const uint32_t target = endpoints[rng.NextBelow(endpoints.size())];
      if (target == v) continue;
      const uint64_t w = 1 + rng.NextBelow(max_weight);
      g.AddEdge(v, target, w);
      g.AddEdge(target, v, w);
      endpoints.push_back(target);
    }
    endpoints.push_back(v);
  }
  return g;
}

Graph Graph::PlantedPartition(uint32_t n, double p_in, double p_out,
                              uint64_t seed) {
  Graph g(n);
  RandomEngine rng(seed);
  const uint32_t half = n / 2;
  for (uint32_t u = 0; u < n; ++u) {
    for (uint32_t v = u + 1; v < n; ++v) {
      const bool same = (u < half) == (v < half);
      const double p = same ? p_in : p_out;
      if (rng.NextDouble() < p) {
        g.AddEdge(u, v, 1);
        g.AddEdge(v, u, 1);
      }
    }
  }
  return g;
}

}  // namespace dpss
