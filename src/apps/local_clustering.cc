#include "apps/local_clustering.h"

#include <algorithm>

#include "util/check.h"

namespace dpss {

LocalClusteringEngine::LocalClusteringEngine(const Graph& graph,
                                             uint64_t seed,
                                             const std::string& backend)
    : graph_(graph) {
  for (uint32_t u = 0; u < graph_.num_nodes(); ++u) {
    SamplerSpec spec;
    spec.seed = seed * 0x2545f4914f6cdd1dULL + u;
    nodes_.push_back({MakeSampler(backend, spec), {}});
    NodeState& state = nodes_.back();
    // Unknown backend, or one that cannot answer the per-push α = 1/R'_u.
    DPSS_CHECK(state.sampler != nullptr &&
               state.sampler->capabilities().parameterized);
    for (const Graph::Edge& e : graph_.OutEdges(u)) {
      // Indexed by slot, not full id (ids carry a generation in high bits).
      const uint64_t slot = SlotIndexOf(*state.sampler->Insert(e.weight));
      if (state.item_to_target.size() <= slot) {
        state.item_to_target.resize(slot + 1);
      }
      state.item_to_target[slot] = e.to;
    }
    total_degree_ += graph_.Degree(u);
  }
}

void LocalClusteringEngine::AddEdge(uint32_t u, uint32_t v, uint64_t weight) {
  DPSS_CHECK(u < nodes_.size() && v < nodes_.size() && weight > 0);
  graph_.AddEdge(u, v, weight);
  NodeState& state = nodes_[u];
  const uint64_t slot = SlotIndexOf(*state.sampler->Insert(weight));
  if (state.item_to_target.size() <= slot) {
    state.item_to_target.resize(slot + 1);
  }
  state.item_to_target[slot] = v;
  ++total_degree_;
}

std::vector<uint64_t> LocalClusteringEngine::EstimateMass(
    uint32_t seed_node, uint64_t num_quanta, uint64_t teleport_recip,
    RandomEngine& rng, PushStats* stats) const {
  DPSS_CHECK(seed_node < nodes_.size());
  DPSS_CHECK(num_quanta >= 1 && teleport_recip >= 2);
  const uint32_t n = static_cast<uint32_t>(nodes_.size());
  std::vector<uint64_t> residue(n, 0);
  std::vector<uint64_t> absorbed(n, 0);
  std::vector<bool> queued(n, false);
  std::vector<uint32_t> queue;
  residue[seed_node] = num_quanta;
  queued[seed_node] = true;
  queue.push_back(seed_node);

  // Safety cap: the expected total number of quantum-steps is
  // num_quanta · teleport_recip; runs exceeding 64x that are truncated by
  // absorbing all remaining residue in place.
  const uint64_t max_steps = num_quanta * teleport_recip * 64 + 1024;
  uint64_t steps = 0;
  PushStats local_stats;

  for (size_t head = 0; head < queue.size(); ++head) {
    const uint32_t u = queue[head];
    queued[u] = false;
    uint64_t r = residue[u];
    residue[u] = 0;
    if (r == 0) continue;
    ++local_stats.pushes;

    // Teleport absorption: each quantum stops here with prob 1/recip —
    // deterministic quotient plus randomly rounded remainder.
    uint64_t stay = r / teleport_recip;
    if (rng.NextBelow(teleport_recip) < r % teleport_recip) ++stay;
    const NodeState& state = nodes_[u];
    uint64_t forward = r - stay;
    if (state.sampler->size() == 0 || steps >= max_steps) {
      stay = r;  // dangling node or budget exhausted: absorb everything
      forward = 0;
    }
    absorbed[u] += stay;
    local_stats.quanta_spent += stay;

    steps += forward;
    // Integer floor shares are forwarded deterministically: touching all
    // deg(u) neighbours is paid for by the >= 2·deg(u) quanta moved.
    const auto& edges = graph_.OutEdges(u);
    const uint64_t sum_w = graph_.OutWeight(u);
    if (forward >= 2 * edges.size() && sum_w > 0) {
      uint64_t distributed = 0;
      for (const Graph::Edge& e : edges) {
        const uint64_t share = static_cast<uint64_t>(
            static_cast<unsigned __int128>(forward) * e.weight / sum_w);
        if (share == 0) continue;
        distributed += share;
        if (residue[e.to] == 0 && !queued[e.to]) {
          queued[e.to] = true;
          queue.push_back(e.to);
        }
        residue[e.to] += share;
      }
      forward -= distributed;
    }
    // Sub-quantum remainder: PSS queries with α = 1/forward select each
    // out-neighbour with min{1, w·forward/Σw}; every selected neighbour
    // receives one quantum. Expected quanta forwarded per round equals
    // `forward`, so a couple of rounds drain it.
    int rounds = 0;
    std::vector<ItemId> selected;
    while (forward > 0) {
      ++local_stats.queries;
      DPSS_CHECK(state.sampler
                     ->SampleInto(Rational64{1, forward}, Rational64{0, 1},
                                  rng, &selected)
                     .ok());
      for (const auto item : selected) {
        if (forward == 0) break;
        const uint32_t v = state.item_to_target[SlotIndexOf(item)];
        --forward;
        if (residue[v]++ == 0 && !queued[v]) {
          queued[v] = true;
          queue.push_back(v);
        }
      }
      if (steps >= max_steps || ++rounds > 200) {
        absorbed[u] += forward;
        local_stats.quanta_spent += forward;
        forward = 0;
      }
    }
  }
  if (stats != nullptr) *stats = local_stats;
  return absorbed;
}

LocalClusteringEngine::SweepResult LocalClusteringEngine::SweepCluster(
    const std::vector<uint64_t>& mass) const {
  SweepResult result;
  std::vector<uint32_t> order;
  for (uint32_t u = 0; u < mass.size(); ++u) {
    if (mass[u] > 0 && graph_.Degree(u) > 0) order.push_back(u);
  }
  if (order.empty()) return result;
  // Sort by mass/degree descending (cross-multiplied to stay in integers).
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    const unsigned __int128 lhs =
        static_cast<unsigned __int128>(mass[a]) * graph_.Degree(b);
    const unsigned __int128 rhs =
        static_cast<unsigned __int128>(mass[b]) * graph_.Degree(a);
    if (lhs != rhs) return lhs > rhs;
    return a < b;
  });

  std::vector<bool> in_set(mass.size(), false);
  uint64_t volume = 0;
  uint64_t cut = 0;
  double best = 2.0;
  size_t best_prefix = 0;
  for (size_t i = 0; i < order.size(); ++i) {
    const uint32_t u = order[i];
    uint64_t to_set = 0;
    for (const Graph::Edge& e : graph_.OutEdges(u)) {
      to_set += in_set[e.to] ? 1 : 0;
    }
    in_set[u] = true;
    volume += graph_.Degree(u);
    cut += graph_.Degree(u) - 2 * to_set;
    const uint64_t other = total_degree_ - volume;
    const uint64_t denom = std::min(volume, other);
    if (denom == 0) continue;
    const double phi = static_cast<double>(cut) / static_cast<double>(denom);
    if (phi < best) {
      best = phi;
      best_prefix = i + 1;
    }
  }
  result.conductance = best;
  result.cluster.assign(order.begin(), order.begin() + best_prefix);
  return result;
}

LocalClusteringEngine::SweepResult LocalClusteringEngine::Cluster(
    uint32_t seed_node, uint64_t num_quanta, uint64_t teleport_recip,
    RandomEngine& rng) const {
  return SweepCluster(
      EstimateMass(seed_node, num_quanta, teleport_recip, rng));
}

}  // namespace dpss
