#include "apps/integer_sort.h"

#include <list>

#include "core/halt.h"
#include "core/sampler.h"
#include "util/check.h"

namespace dpss {

std::vector<uint64_t> SortIntegersDescendingViaDpss(
    const std::vector<uint64_t>& values, uint64_t seed,
    IntegerSortStats* stats, const std::string& backend) {
  IntegerSortStats local;
  SamplerSpec spec;
  spec.seed = seed;
  std::unique_ptr<Sampler> sampler = MakeSampler(backend, spec);
  DPSS_CHECK(sampler != nullptr &&
             sampler->capabilities().parameterized &&
             sampler->capabilities().float_weights);
  std::vector<uint64_t> exponent_of_item;  // slot index -> value
  exponent_of_item.reserve(values.size());
  for (const uint64_t a : values) {
    DPSS_CHECK(a + 1 < static_cast<uint64_t>(kLevel1Universe));
    const uint64_t slot = SlotIndexOf(
        *sampler->InsertWeight(Weight(1, static_cast<uint32_t>(a))));
    if (exponent_of_item.size() <= slot) exponent_of_item.resize(slot + 1);
    exponent_of_item[slot] = a;
  }

  // R: the output, maintained sorted descending by insertion from the back.
  std::list<uint64_t> sorted;
  const Rational64 alpha{1, 1};
  const Rational64 beta{0, 1};
  uint64_t remaining = values.size();
  while (remaining > 0) {
    // Repeat the PSS query until the sample is non-empty (expected <= 2
    // tries, Lemma 5.1; expected sample size exactly 1, Lemma 5.2).
    std::vector<ItemId> sample;
    do {
      ++local.queries;
      DPSS_CHECK(sampler->SampleInto(alpha, beta, &sample).ok());
    } while (sample.empty());
    local.sampled_items += sample.size();

    // The largest sampled item.
    ItemId best = sample[0];
    for (const auto id : sample) {
      if (exponent_of_item[SlotIndexOf(id)] >
          exponent_of_item[SlotIndexOf(best)]) {
        best = id;
      }
    }
    const uint64_t a = exponent_of_item[SlotIndexOf(best)];
    DPSS_CHECK(sampler->Erase(best).ok());
    --remaining;

    // Insertion sort from the back of the descending list.
    auto it = sorted.end();
    while (it != sorted.begin()) {
      auto prev = std::prev(it);
      if (*prev >= a) break;
      it = prev;
      ++local.swaps;
    }
    sorted.insert(it, a);
  }

  if (stats != nullptr) *stats = local;
  return std::vector<uint64_t>(sorted.begin(), sorted.end());
}

}  // namespace dpss
