// Influence maximization on a dynamic network via DPSS (paper Appendix A.1).
//
// Reverse-reachable (RR) set sampling under the weighted independent-cascade
// model: an RR set for a uniformly random target v is grown backwards, and
// at every activated node u each in-neighbor w is activated independently
// with probability
//
//     p(w, u) = w(w, u) / Σ_{x} w(x, u)   (weighted cascade)
//
// — i.e., one PSS query with parameters (α, β) = (1, 0) on the DPSS instance
// holding u's in-edges. Inserting or deleting an edge (x, u) changes the
// denominator and therefore every in-probability of u simultaneously; with
// DPSS each such update costs O(1), which is precisely the scenario of
// Appendix A.1 where fixed-probability DSS structures need Ω(deg) work.
//
// Seed selection is the standard greedy maximum coverage over R sampled RR
// sets (Borgs et al. / TIM-style estimator).

#ifndef DPSS_APPS_INFLUENCE_MAX_H_
#define DPSS_APPS_INFLUENCE_MAX_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/sampler.h"
#include "util/random.h"

namespace dpss {

class InfluenceMaximizer {
 public:
  // `backend` selects the per-node sampler from the dpss::Sampler registry.
  // The cascade queries run at (α, β) = (1, 0) — the registry default for
  // fixed-parameter backends — so every backend works here; the
  // fixed-probability ones simply pay Ω(deg) per edge update, which is the
  // separation the paper measures (Appendix A.1).
  InfluenceMaximizer(uint32_t num_nodes, uint64_t seed,
                     const std::string& backend = "halt");

  uint32_t num_nodes() const {
    return static_cast<uint32_t>(in_samplers_.size());
  }

  // Adds a directed edge u -> v with the given positive weight. O(1).
  void AddEdge(uint32_t u, uint32_t v, uint64_t weight);

  // Samples one RR set for a uniformly random target node.
  std::vector<uint32_t> SampleRRSet(RandomEngine& rng) const;

  struct SeedResult {
    std::vector<uint32_t> seeds;
    // Estimated expected influence of the chosen seeds (RR-set estimator:
    // n · covered / R).
    double estimated_influence = 0;
  };

  // Greedy seed selection over `num_rr_sets` freshly sampled RR sets.
  SeedResult SelectSeeds(int k, int num_rr_sets, RandomEngine& rng) const;

  // Parallel variant: the RR-set workload is partitioned across
  // `num_workers` threads (GreeDIMM-style per-worker sampling), each with
  // a private engine derived from `seed`, then one greedy max-coverage
  // pass runs over the merged sets. Deterministic for a fixed
  // (seed, num_workers) pair.
  //
  // Backend query state is not generally safe to share across threads
  // (see docs/CONCURRENCY.md), so workers colliding on one node's sampler
  // serialize on a per-node mutex; with a "sharded:*" backend the inner
  // queries additionally pipeline across shards. Edge mutations (AddEdge)
  // must not run concurrently with this call.
  SeedResult SelectSeedsParallel(int k, int num_rr_sets, int num_workers,
                                 uint64_t seed) const;

 private:
  struct NodeState {
    std::unique_ptr<Sampler> sampler;
    // Maps the sampler item's slot index to the source node of that
    // in-edge (side arrays use SlotIndexOf, never the full id).
    std::vector<uint32_t> item_to_source;
  };

  // One RR set; `node_locks` (when non-null, one mutex per node) guards
  // each node's sampler query so concurrent workers stay safe.
  std::vector<uint32_t> SampleRRSetImpl(RandomEngine& rng,
                                        std::mutex* node_locks) const;

  // Greedy maximum coverage over already-sampled RR sets (the tail shared
  // by SelectSeeds and SelectSeedsParallel).
  SeedResult GreedyOverRRSets(
      int k, const std::vector<std::vector<uint32_t>>& rr_sets) const;

  std::deque<NodeState> in_samplers_;
};

}  // namespace dpss

#endif  // DPSS_APPS_INFLUENCE_MAX_H_
