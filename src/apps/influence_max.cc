#include "apps/influence_max.h"

#include <algorithm>
#include <thread>

#include "util/check.h"

namespace dpss {

InfluenceMaximizer::InfluenceMaximizer(uint32_t num_nodes, uint64_t seed,
                                       const std::string& backend) {
  for (uint32_t v = 0; v < num_nodes; ++v) {
    SamplerSpec spec;
    spec.seed = seed * 0x9e3779b97f4a7c15ULL + v;
    in_samplers_.push_back({MakeSampler(backend, spec), {}});
    DPSS_CHECK(in_samplers_.back().sampler != nullptr);  // unknown backend
  }
}

void InfluenceMaximizer::AddEdge(uint32_t u, uint32_t v, uint64_t weight) {
  DPSS_CHECK(u < num_nodes() && v < num_nodes() && weight > 0);
  NodeState& state = in_samplers_[v];
  // Side arrays are indexed by the id's dense slot index (stable for the
  // item's lifetime), not the full id, which carries a generation.
  const StatusOr<ItemId> id = state.sampler->Insert(weight);
  DPSS_CHECK(id.ok());  // positive u64 weights are valid on every backend
  const uint64_t slot = SlotIndexOf(*id);
  if (state.item_to_source.size() <= slot) {
    state.item_to_source.resize(slot + 1);
  }
  state.item_to_source[slot] = u;
}

std::vector<uint32_t> InfluenceMaximizer::SampleRRSet(
    RandomEngine& rng) const {
  return SampleRRSetImpl(rng, /*node_locks=*/nullptr);
}

std::vector<uint32_t> InfluenceMaximizer::SampleRRSetImpl(
    RandomEngine& rng, std::mutex* node_locks) const {
  std::vector<uint32_t> rr;
  if (num_nodes() == 0) return rr;
  const uint32_t root = static_cast<uint32_t>(rng.NextBelow(num_nodes()));
  std::vector<bool> visited(num_nodes(), false);
  std::vector<uint32_t> queue;
  visited[root] = true;
  queue.push_back(root);
  rr.push_back(root);
  // Weighted-cascade activation: (α, β) = (1, 0) makes the activation
  // probability of in-edge (w, u) equal w(w,u)/Σ_in — re-parameterised on
  // the fly after any edge update.
  const Rational64 alpha{1, 1};
  const Rational64 beta{0, 1};
  std::vector<ItemId> selected;
  for (size_t head = 0; head < queue.size(); ++head) {
    const uint32_t node = queue[head];
    const NodeState& state = in_samplers_[node];
    {
      // Concurrent workers expanding the same node serialize here: one
      // node's sampler query reuses per-structure scratch state and may
      // not race (see docs/CONCURRENCY.md).
      std::unique_lock<std::mutex> lock;
      if (node_locks != nullptr) {
        lock = std::unique_lock<std::mutex>(node_locks[node]);
      }
      DPSS_CHECK(
          state.sampler->SampleInto(alpha, beta, rng, &selected).ok());
    }
    for (const auto item : selected) {
      const uint32_t src = state.item_to_source[SlotIndexOf(item)];
      if (!visited[src]) {
        visited[src] = true;
        queue.push_back(src);
        rr.push_back(src);
      }
    }
  }
  return rr;
}

InfluenceMaximizer::SeedResult InfluenceMaximizer::SelectSeeds(
    int k, int num_rr_sets, RandomEngine& rng) const {
  std::vector<std::vector<uint32_t>> rr_sets;
  rr_sets.reserve(num_rr_sets);
  for (int i = 0; i < num_rr_sets; ++i) rr_sets.push_back(SampleRRSet(rng));
  return GreedyOverRRSets(k, rr_sets);
}

InfluenceMaximizer::SeedResult InfluenceMaximizer::SelectSeedsParallel(
    int k, int num_rr_sets, int num_workers, uint64_t seed) const {
  if (num_workers < 1) num_workers = 1;
  if (num_workers > num_rr_sets && num_rr_sets > 0) {
    num_workers = num_rr_sets;
  }
  if (num_workers == 1) {
    // No concurrency: skip the per-node mutex array and the thread spawn
    // entirely. Same engine derivation as worker 0 of the generic path,
    // so the result is identical to a one-worker parallel run.
    RandomEngine rng(seed * 0x9e3779b97f4a7c15ULL + 1);
    std::vector<std::vector<uint32_t>> rr_sets;
    rr_sets.reserve(num_rr_sets);
    for (int i = 0; i < num_rr_sets; ++i) {
      rr_sets.push_back(SampleRRSetImpl(rng, /*node_locks=*/nullptr));
    }
    return GreedyOverRRSets(k, rr_sets);
  }
  // GreeDIMM-style partition of the sample space: worker w owns the RR-set
  // indices [w·R/W, (w+1)·R/W) and samples them with a private engine, so
  // the merged workload is deterministic for a fixed (seed, num_workers)
  // regardless of thread scheduling.
  std::vector<std::mutex> node_locks(num_nodes());
  std::vector<std::vector<std::vector<uint32_t>>> per_worker(num_workers);
  std::vector<std::thread> workers;
  workers.reserve(num_workers);
  for (int w = 0; w < num_workers; ++w) {
    workers.emplace_back([&, w] {
      const int begin = static_cast<int>(
          static_cast<int64_t>(num_rr_sets) * w / num_workers);
      const int end = static_cast<int>(
          static_cast<int64_t>(num_rr_sets) * (w + 1) / num_workers);
      RandomEngine rng(seed * 0x9e3779b97f4a7c15ULL +
                       static_cast<uint64_t>(w) + 1);
      auto& sets = per_worker[w];
      sets.reserve(static_cast<size_t>(end - begin));
      for (int i = begin; i < end; ++i) {
        sets.push_back(SampleRRSetImpl(rng, node_locks.data()));
      }
    });
  }
  for (std::thread& t : workers) t.join();

  std::vector<std::vector<uint32_t>> rr_sets;
  rr_sets.reserve(num_rr_sets);
  for (auto& sets : per_worker) {
    for (auto& rr : sets) rr_sets.push_back(std::move(rr));
  }
  return GreedyOverRRSets(k, rr_sets);
}

InfluenceMaximizer::SeedResult InfluenceMaximizer::GreedyOverRRSets(
    int k, const std::vector<std::vector<uint32_t>>& rr_sets) const {
  SeedResult result;
  std::vector<uint64_t> coverage(num_nodes(), 0);
  std::vector<bool> covered(rr_sets.size(), false);
  for (const auto& rr : rr_sets) {
    for (uint32_t v : rr) ++coverage[v];
  }
  uint64_t covered_count = 0;
  for (int round = 0; round < k; ++round) {
    const auto best = std::max_element(coverage.begin(), coverage.end());
    if (*best == 0) break;
    const uint32_t seed = static_cast<uint32_t>(best - coverage.begin());
    result.seeds.push_back(seed);
    // Remove every RR set the new seed covers from all counters.
    for (size_t i = 0; i < rr_sets.size(); ++i) {
      if (covered[i]) continue;
      bool hits = false;
      for (uint32_t v : rr_sets[i]) hits |= v == seed;
      if (!hits) continue;
      covered[i] = true;
      ++covered_count;
      for (uint32_t v : rr_sets[i]) --coverage[v];
    }
  }
  result.estimated_influence =
      rr_sets.empty() ? 0.0
                      : static_cast<double>(num_nodes()) *
                            static_cast<double>(covered_count) /
                            static_cast<double>(rr_sets.size());
  return result;
}

}  // namespace dpss
