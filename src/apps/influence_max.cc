#include "apps/influence_max.h"

#include <algorithm>

#include "util/check.h"

namespace dpss {

InfluenceMaximizer::InfluenceMaximizer(uint32_t num_nodes, uint64_t seed,
                                       const std::string& backend) {
  for (uint32_t v = 0; v < num_nodes; ++v) {
    SamplerSpec spec;
    spec.seed = seed * 0x9e3779b97f4a7c15ULL + v;
    in_samplers_.push_back({MakeSampler(backend, spec), {}});
    DPSS_CHECK(in_samplers_.back().sampler != nullptr);  // unknown backend
  }
}

void InfluenceMaximizer::AddEdge(uint32_t u, uint32_t v, uint64_t weight) {
  DPSS_CHECK(u < num_nodes() && v < num_nodes() && weight > 0);
  NodeState& state = in_samplers_[v];
  // Side arrays are indexed by the id's dense slot index (stable for the
  // item's lifetime), not the full id, which carries a generation.
  const StatusOr<ItemId> id = state.sampler->Insert(weight);
  DPSS_CHECK(id.ok());  // positive u64 weights are valid on every backend
  const uint64_t slot = SlotIndexOf(*id);
  if (state.item_to_source.size() <= slot) {
    state.item_to_source.resize(slot + 1);
  }
  state.item_to_source[slot] = u;
}

std::vector<uint32_t> InfluenceMaximizer::SampleRRSet(
    RandomEngine& rng) const {
  std::vector<uint32_t> rr;
  if (num_nodes() == 0) return rr;
  const uint32_t root = static_cast<uint32_t>(rng.NextBelow(num_nodes()));
  std::vector<bool> visited(num_nodes(), false);
  std::vector<uint32_t> queue;
  visited[root] = true;
  queue.push_back(root);
  rr.push_back(root);
  // Weighted-cascade activation: (α, β) = (1, 0) makes the activation
  // probability of in-edge (w, u) equal w(w,u)/Σ_in — re-parameterised on
  // the fly after any edge update.
  const Rational64 alpha{1, 1};
  const Rational64 beta{0, 1};
  std::vector<ItemId> selected;
  for (size_t head = 0; head < queue.size(); ++head) {
    const NodeState& state = in_samplers_[queue[head]];
    DPSS_CHECK(state.sampler->SampleInto(alpha, beta, rng, &selected).ok());
    for (const auto item : selected) {
      const uint32_t src = state.item_to_source[SlotIndexOf(item)];
      if (!visited[src]) {
        visited[src] = true;
        queue.push_back(src);
        rr.push_back(src);
      }
    }
  }
  return rr;
}

InfluenceMaximizer::SeedResult InfluenceMaximizer::SelectSeeds(
    int k, int num_rr_sets, RandomEngine& rng) const {
  std::vector<std::vector<uint32_t>> rr_sets;
  rr_sets.reserve(num_rr_sets);
  for (int i = 0; i < num_rr_sets; ++i) rr_sets.push_back(SampleRRSet(rng));

  SeedResult result;
  std::vector<uint64_t> coverage(num_nodes(), 0);
  std::vector<bool> covered(rr_sets.size(), false);
  for (const auto& rr : rr_sets) {
    for (uint32_t v : rr) ++coverage[v];
  }
  uint64_t covered_count = 0;
  for (int round = 0; round < k; ++round) {
    const auto best = std::max_element(coverage.begin(), coverage.end());
    if (*best == 0) break;
    const uint32_t seed = static_cast<uint32_t>(best - coverage.begin());
    result.seeds.push_back(seed);
    // Remove every RR set the new seed covers from all counters.
    for (size_t i = 0; i < rr_sets.size(); ++i) {
      if (covered[i]) continue;
      bool hits = false;
      for (uint32_t v : rr_sets[i]) hits |= v == seed;
      if (!hits) continue;
      covered[i] = true;
      ++covered_count;
      for (uint32_t v : rr_sets[i]) --coverage[v];
    }
  }
  result.estimated_influence =
      rr_sets.empty() ? 0.0
                      : static_cast<double>(num_nodes()) *
                            static_cast<double>(covered_count) /
                            static_cast<double>(rr_sets.size());
  return result;
}

}  // namespace dpss
