// A small dynamic weighted directed graph plus deterministic synthetic
// generators, shared by the application layer (influence maximization and
// local clustering, paper Appendix A).

#ifndef DPSS_APPS_GRAPH_H_
#define DPSS_APPS_GRAPH_H_

#include <cstdint>
#include <vector>

#include "util/check.h"
#include "util/random.h"

namespace dpss {

class Graph {
 public:
  struct Edge {
    uint32_t to = 0;
    uint64_t weight = 1;
  };

  explicit Graph(uint32_t num_nodes)
      : out_(num_nodes), in_(num_nodes), out_weight_(num_nodes, 0) {}

  uint32_t num_nodes() const { return static_cast<uint32_t>(out_.size()); }
  uint64_t num_edges() const { return num_edges_; }

  // Adds the directed edge u -> v. O(1).
  void AddEdge(uint32_t u, uint32_t v, uint64_t weight);

  const std::vector<Edge>& OutEdges(uint32_t u) const { return out_[u]; }
  const std::vector<Edge>& InEdges(uint32_t v) const { return in_[v]; }

  uint64_t OutWeight(uint32_t u) const { return out_weight_[u]; }
  uint64_t Degree(uint32_t u) const {
    return out_[u].size();
  }

  // --- Deterministic synthetic generators -------------------------------

  // G(n, p)-style digraph with expected out-degree `avg_out_degree` and
  // uniform random weights in [1, max_weight].
  static Graph ErdosRenyi(uint32_t n, double avg_out_degree,
                          uint64_t max_weight, uint64_t seed);

  // Preferential attachment: each new node attaches `edges_per_node` edges
  // to earlier nodes, biased toward high-degree targets; both directions
  // are added (heavy-tailed in-degrees, the influence-max regime).
  static Graph PreferentialAttachment(uint32_t n, int edges_per_node,
                                      uint64_t max_weight, uint64_t seed);

  // Two planted communities of n/2 nodes: intra-community edge probability
  // `p_in`, inter `p_out`, undirected (both directions added). Used by the
  // local-clustering example and tests.
  static Graph PlantedPartition(uint32_t n, double p_in, double p_out,
                                uint64_t seed);

 private:
  std::vector<std::vector<Edge>> out_;
  std::vector<std::vector<Edge>> in_;
  std::vector<uint64_t> out_weight_;
  uint64_t num_edges_ = 0;
};

}  // namespace dpss

#endif  // DPSS_APPS_GRAPH_H_
