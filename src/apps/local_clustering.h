// Local clustering via subset-sampling probability propagation
// (paper Appendix A.2, after Wang et al.'s approximate graph propagation).
//
// Personalized-PageRank mass from a seed node is propagated in integer
// quanta. A push at node u holding R_u quanta of residue keeps the
// teleport share and forwards the rest across u's out-edges; instead of
// touching all deg(u) neighbours, the push issues ONE PSS query with
// parameters (α, β) = (1/R'_u, 0) on the DPSS instance holding u's
// out-edges, so that neighbour v is selected with probability
//
//     min{ 1, w(u,v) · R'_u / Σ_x w(u,x) },
//
// and every selected neighbour receives one quantum — an unbiased
// single-quantum estimator of its expected share whenever the share is
// below one quantum (larger shares are forwarded deterministically).
// Because the query parameter α = 1/R'_u changes at every push, this is a
// genuinely *parameterized* workload: a fixed-probability sampler would
// have to rebuild per push, while DPSS answers each query in O(1 + output).
//
// The cluster is then extracted with the standard sweep: order nodes by
// π(u)/deg(u) and return the prefix with the best conductance.

#ifndef DPSS_APPS_LOCAL_CLUSTERING_H_
#define DPSS_APPS_LOCAL_CLUSTERING_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "apps/graph.h"
#include "core/sampler.h"
#include "util/random.h"

namespace dpss {

class LocalClusteringEngine {
 public:
  // Builds per-node sampler instances over the graph's out-edges. O(m).
  // `backend` must name a *parameterized* registry backend ("halt",
  // "naive"): every push queries at a fresh α = 1/R'_u, which the
  // fixed-(α, β) baselines cannot answer.
  LocalClusteringEngine(const Graph& graph, uint64_t seed,
                        const std::string& backend = "halt");

  // Adds an edge at runtime (kept in sync with the internal samplers; the
  // caller's Graph is not modified). O(1).
  void AddEdge(uint32_t u, uint32_t v, uint64_t weight);

  struct PushStats {
    uint64_t pushes = 0;
    uint64_t quanta_spent = 0;
    uint64_t queries = 0;
  };

  // Estimated personalized-PageRank mass from `seed_node`: value[u] is the
  // (unnormalised) number of quanta absorbed at u. `num_quanta` controls
  // accuracy (~1/sqrt relative error); `teleport_recip` r encodes the
  // teleport probability 1/r.
  std::vector<uint64_t> EstimateMass(uint32_t seed_node, uint64_t num_quanta,
                                     uint64_t teleport_recip,
                                     RandomEngine& rng,
                                     PushStats* stats = nullptr) const;

  struct SweepResult {
    std::vector<uint32_t> cluster;
    double conductance = 1.0;
  };

  // Conductance sweep over the mass estimates (π(u)/deg(u) ordering).
  SweepResult SweepCluster(const std::vector<uint64_t>& mass) const;

  // Convenience: EstimateMass + SweepCluster.
  SweepResult Cluster(uint32_t seed_node, uint64_t num_quanta,
                      uint64_t teleport_recip, RandomEngine& rng) const;

 private:
  struct NodeState {
    std::unique_ptr<Sampler> sampler;
    std::vector<uint32_t> item_to_target;
  };

  Graph graph_;  // private copy, kept in sync with the samplers
  uint64_t total_degree_ = 0;
  std::deque<NodeState> nodes_;
};

}  // namespace dpss

#endif  // DPSS_APPS_LOCAL_CLUSTERING_H_
