// Integer sorting through deletion-only DPSS (paper Theorem 1.2, §5).
//
// Each integer a_i becomes an item of weight 2^{a_i} — the paper's
// float-weight regime, represented exactly by Weight{1, a_i}. The sorter
// repeatedly issues PSS queries with parameters (1, 0) until the sample is
// non-empty, takes the sampled item with the largest weight (with distinct
// exponents this is the global maximum with probability >= 1/2, Lemma 5.1),
// deletes it, and inserts its exponent into a descending list by insertion
// sort from the back. Lemma 5.3: the expected total number of insertion-sort
// swaps is O(N), so with an O(1)-update/O(1+μ)-query DPSS structure the
// whole sort runs in O(N) expected time.
//
// Scope note (DESIGN.md §5(d)): exponents must satisfy
// a_i < kLevel1Universe - 1, the bucket-index universe of the level-1
// structure; duplicates are allowed (ties resolve arbitrarily, which is
// still a correct sort).

#ifndef DPSS_APPS_INTEGER_SORT_H_
#define DPSS_APPS_INTEGER_SORT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dpss {

struct IntegerSortStats {
  uint64_t queries = 0;        // PSS queries issued (incl. empty results)
  uint64_t sampled_items = 0;  // total items across all samples
  uint64_t swaps = 0;          // insertion-sort swaps
};

// Sorts `values` in descending order using the Theorem 1.2 reduction.
// Requires every value < kLevel1Universe - 1 (~255). `backend` must name a
// registry backend with parameterized queries and float weights (the
// reduction inserts items of weight 2^{a_i}); "halt" is the only built-in
// that qualifies, but external registrations can compete here.
std::vector<uint64_t> SortIntegersDescendingViaDpss(
    const std::vector<uint64_t>& values, uint64_t seed,
    IntegerSortStats* stats = nullptr, const std::string& backend = "halt");

}  // namespace dpss

#endif  // DPSS_APPS_INTEGER_SORT_H_
