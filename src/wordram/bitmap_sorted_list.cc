// BitmapSortedList is fully inline (see the header: Floor/Ceiling sit on
// the query walk's per-bucket scan path). This translation unit only anchors
// the header into the build so it keeps compiling standalone.

#include "wordram/bitmap_sorted_list.h"

namespace dpss {

static_assert(BitmapSortedList::kWords * 64 == BitmapSortedList::kMaxUniverse,
              "bitmap words must exactly cover the universe");

}  // namespace dpss
