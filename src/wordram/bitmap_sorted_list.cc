#include "wordram/bitmap_sorted_list.h"

namespace dpss {

int BitmapSortedList::Floor(int q) const {
  DPSS_DCHECK(InRange(q));
  int w = q >> 6;
  // Mask off bits strictly above q within its word.
  const int bit = q & 63;
  uint64_t masked =
      words_[w] & (bit == 63 ? ~uint64_t{0} : ((uint64_t{1} << (bit + 1)) - 1));
  for (;;) {
    if (masked != 0) return (w << 6) + HighestSetBit(masked);
    if (--w < 0) return -1;
    masked = words_[w];
  }
}

int BitmapSortedList::Ceiling(int q) const {
  DPSS_DCHECK(InRange(q));
  int w = q >> 6;
  const int bit = q & 63;
  uint64_t masked = words_[w] & (~uint64_t{0} << bit);
  for (;;) {
    if (masked != 0) {
      const int r = (w << 6) + LowestSetBit(masked);
      return r < universe_ ? r : -1;
    }
    if (++w >= kWords) return -1;
    masked = words_[w];
  }
}

}  // namespace dpss
