// Fact 2.1 (paper §2.1, Appendix B): a dynamic set over the integer
// universe {0, ..., U-1} with U = O(d) that supports insert, delete,
// predecessor and successor in O(1) worst-case time and O(1) words of space.
//
// The implementation is the paper's bitmap M: because the universe is the
// set of possible bucket/group indices (at most a small constant multiple of
// the word size), the whole membership bitmap fits in O(1) words, and
// predecessor/successor reduce to masked highest/lowest-set-bit queries —
// each a single CLZ/CTZ per word.
//
// The word storage is split from the operations: BitmapConstRef/BitmapRef
// run every query/update over an externally owned word block (in practice a
// 64-byte block inside a relocatable dpss::Arena, so the bitmap words are
// part of the position-independent snapshot image), while BitmapSortedList
// keeps the original inline-owning value type for callers that just need a
// small set (bucket_jump, odss). Everything stays inline: Floor/Ceiling
// drive the query walk's per-bucket scan and must fold into the caller.
//
// The paper's auxiliary pointer/menu arrays (P, Q) exist to attach satellite
// data to members; callers here index dense side arrays by the integer key
// directly, which serves the same purpose.

#ifndef DPSS_WORDRAM_BITMAP_SORTED_LIST_H_
#define DPSS_WORDRAM_BITMAP_SORTED_LIST_H_

#include <cstdint>

#include "util/bits.h"
#include "util/check.h"

namespace dpss {

// Shared bounds for every bitmap variant: universe sizes up to kMaxUniverse
// are supported; the word block always spans exactly kWords words.
inline constexpr int kBitmapMaxUniverse = 512;
inline constexpr int kBitmapWords = kBitmapMaxUniverse / 64;

// Read-only Fact 2.1 operations over an externally owned word block of
// kBitmapWords words. A trivially copyable two-word view: callers return it
// by value from accessors without exposing the storage.
class BitmapConstRef {
 public:
  BitmapConstRef(const uint64_t* words, int universe)
      : words_(words), universe_(universe) {}

  int universe() const { return universe_; }
  bool Empty() const {
    uint64_t acc = 0;
    for (int w = 0; w < kBitmapWords; ++w) acc |= words_[w];
    return acc == 0;
  }
  int Size() const {
    int n = 0;
    for (int w = 0; w < kBitmapWords; ++w) {
      n += __builtin_popcountll(words_[w]);
    }
    return n;
  }

  bool Contains(int q) const {
    DPSS_DCHECK(InRange(q));
    return ((words_[q >> 6] >> (q & 63)) & 1) != 0;
  }

  // Largest member <= q, or -1 if none. Inline: Floor/Ceiling drive every
  // bitmap-ordered scan of the query walk (Next(i) per non-empty bucket),
  // so they must fold into the caller's loop rather than cost a call.
  int Floor(int q) const {
    DPSS_DCHECK(InRange(q));
    int w = q >> 6;
    // Mask off bits strictly above q within its word.
    const int bit = q & 63;
    uint64_t masked =
        words_[w] &
        (bit == 63 ? ~uint64_t{0} : ((uint64_t{1} << (bit + 1)) - 1));
    for (;;) {
      if (masked != 0) return (w << 6) + HighestSetBit(masked);
      if (--w < 0) return -1;
      masked = words_[w];
    }
  }
  // Smallest member >= q, or -1 if none.
  int Ceiling(int q) const {
    DPSS_DCHECK(InRange(q));
    int w = q >> 6;
    const int bit = q & 63;
    uint64_t masked = words_[w] & (~uint64_t{0} << bit);
    for (;;) {
      if (masked != 0) {
        const int r = (w << 6) + LowestSetBit(masked);
        return r < universe_ ? r : -1;
      }
      if (++w >= kBitmapWords) return -1;
      masked = words_[w];
    }
  }
  // Largest member < q, or -1 if none.
  int Prev(int q) const { return q == 0 ? -1 : Floor(q - 1); }
  // Smallest member > q, or -1 if none.
  int Next(int q) const { return q + 1 >= universe_ ? -1 : Ceiling(q + 1); }
  // Smallest member, or -1 if empty.
  int Min() const { return Ceiling(0); }
  // Largest member, or -1 if empty.
  int Max() const { return Floor(universe_ - 1); }

 protected:
  bool InRange(int q) const { return q >= 0 && q < universe_; }

  const uint64_t* words_;
  int universe_;
};

// Mutable variant: adds Insert/Erase/Clear over the same external block.
class BitmapRef : public BitmapConstRef {
 public:
  BitmapRef(uint64_t* words, int universe)
      : BitmapConstRef(words, universe) {}

  // Inserts q (idempotent).
  void Insert(int q) {
    DPSS_DCHECK(InRange(q));
    mutable_words()[q >> 6] |= uint64_t{1} << (q & 63);
  }

  // Erases q (idempotent).
  void Erase(int q) {
    DPSS_DCHECK(InRange(q));
    mutable_words()[q >> 6] &= ~(uint64_t{1} << (q & 63));
  }

  // Empties the set.
  void Clear() {
    for (int w = 0; w < kBitmapWords; ++w) mutable_words()[w] = 0;
  }

 private:
  // The constructor only accepts mutable blocks, so this cast is sound.
  uint64_t* mutable_words() { return const_cast<uint64_t*>(words_); }
};

// The original inline-owning value type: O(1) words of storage embedded in
// the object, operations delegated to the refs above.
class BitmapSortedList {
 public:
  static constexpr int kMaxUniverse = kBitmapMaxUniverse;
  static constexpr int kWords = kBitmapWords;

  // An empty set over {0, ..., universe-1}.
  explicit BitmapSortedList(int universe = kMaxUniverse) : universe_(universe) {
    DPSS_CHECK(universe >= 1 && universe <= kMaxUniverse);
    for (auto& w : words_) w = 0;
  }

  int universe() const { return universe_; }
  bool Empty() const { return cref().Empty(); }
  int Size() const { return cref().Size(); }
  bool Contains(int q) const { return cref().Contains(q); }
  void Insert(int q) { ref().Insert(q); }
  void Erase(int q) { ref().Erase(q); }
  int Floor(int q) const { return cref().Floor(q); }
  int Ceiling(int q) const { return cref().Ceiling(q); }
  int Prev(int q) const { return cref().Prev(q); }
  int Next(int q) const { return cref().Next(q); }
  int Min() const { return cref().Min(); }
  int Max() const { return cref().Max(); }

 private:
  BitmapRef ref() { return BitmapRef(words_, universe_); }
  BitmapConstRef cref() const { return BitmapConstRef(words_, universe_); }

  uint64_t words_[kWords];
  int universe_;
};

}  // namespace dpss

#endif  // DPSS_WORDRAM_BITMAP_SORTED_LIST_H_
