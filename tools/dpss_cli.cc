// dpss_cli — interactive shell around the dpss::Sampler interface.
//
// Useful for poking at any registered backend, scripting reproductions,
// and inspecting snapshots. Reads commands from stdin (one per line, '#'
// comments ignored):
//
//   backend <name>             swap to a fresh sampler of that backend
//                              (current items are dropped); the sharded
//                              grammar works here: sharded:halt,
//                              sharded16:naive, ...
//   backends                   list registered backends (current marked *)
//   shards <k>                 set SamplerSpec::num_shards for the next
//                              'backend sharded:...' (default 8)
//   threads <k>                set SamplerSpec::num_threads (parallel
//                              drain width; default 1)
//   insert <weight>            add an item (prints its id)
//   insertbatch <w1> <w2> ...  add many items in one InsertBatch call
//   insertexp <mult> <exp>     add an item with weight mult·2^exp
//   erase <id>                 remove an item
//   set <id> <weight>          update an item's weight in place
//   setexp <id> <mult> <exp>   update to weight mult·2^exp
//   weight <id>                print an item's weight
//   sample <an> <ad> <bn> <bd> one PSS query with α=an/ad, β=bn/bd
//   mu <an> <ad> <bn> <bd>     expected sample size for (α, β)
//   stats                      backend-specific stats + memory
//   check                      run the structural invariant checker
//   save <file>                write a container snapshot (any backend;
//                              fsync'd; records backend name + spec)
//   load <file>                load a container snapshot — recreates the
//                              backend the file names, items and ids intact
//   info <file>                print a snapshot's header without loading it
//                              (container format version included)
//   wal <dir> [sync_every]     go durable: recover <dir> (creating it on
//                              first use), then log every mutation to its
//                              write-ahead log (fsync per sync_every
//                              records; default 1)
//   recover <dir>              like wal, and print the recovery stats
//                              (snapshot epoch, records replayed, torn
//                              bytes truncated)
//   checkpoint [--incremental|--full]
//                              durable mode: snapshot + rotate the WAL.
//                              --incremental writes only the pages dirtied
//                              since the last checkpoint (arena-capable
//                              backends; falls back to full otherwise)
//   syncwal                    durable mode: force a WAL fsync now
//   seed <v>                   reseed (snapshot round trip)
//   connect <host:port>        client mode: route the verbs below through a
//                              running dpss-serverd over the wire protocol
//                              (insert, insertexp, erase, set, setexp,
//                              weight, sample, stats, ping); other commands
//                              are refused until 'disconnect'
//   disconnect                 leave client mode (the local sampler is
//                              untouched and becomes active again)
//   quit
//
// Misuse never kills the shell: every operation reports its Status, e.g.
//   > erase 999
//   error kInvalidId: no live item with this id
//
// Example:
//   printf 'backend naive\ninsert 10\nsample 1 1 0 1\nstats\n' | ./dpss_cli

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "concurrent/sharded_sampler.h"
#include "core/sampler.h"
#include "persist/recovery.h"
#include "persist/snapshot.h"
#include "server/client.h"

namespace {

void PrintSample(const std::vector<dpss::ItemId>& sample) {
  std::printf("sampled %zu item(s):", sample.size());
  for (auto id : sample) std::printf(" %llu", (unsigned long long)id);
  std::printf("\n");
}

void PrintStatus(const dpss::Status& st) {
  if (st.ok()) {
    std::printf("ok\n");
  } else {
    std::printf("error %s: %s\n", dpss::StatusCodeName(st.code()),
                st.message());
  }
}

bool ParseU64(std::istringstream& in, uint64_t* v) {
  return static_cast<bool>(in >> *v);
}

// Client-mode dispatch: runs one command against a connected dpss-serverd.
// Returns false for commands that have no remote equivalent.
bool HandleRemote(dpss::server::Client& remote, const std::string& cmd,
                  std::istringstream& in) {
  if (cmd == "ping") {
    PrintStatus(remote.Ping());
  } else if (cmd == "insert" || cmd == "insertexp") {
    uint64_t mult, exp = 0;
    const bool ok = cmd == "insert"
                        ? ParseU64(in, &mult)
                        : (ParseU64(in, &mult) && ParseU64(in, &exp) &&
                           exp <= 0xffffffffull);
    if (!ok) {
      std::printf("usage: %s %s\n", cmd.c_str(),
                  cmd == "insert" ? "<weight>" : "<mult> <exp>");
      return true;
    }
    const auto id =
        remote.Insert(dpss::Weight(mult, static_cast<uint32_t>(exp)));
    if (id.ok()) {
      std::printf("id %llu\n", (unsigned long long)*id);
    } else {
      PrintStatus(id.status());
    }
  } else if (cmd == "erase") {
    uint64_t id;
    if (!ParseU64(in, &id)) {
      std::printf("usage: erase <id>\n");
      return true;
    }
    PrintStatus(remote.Erase(id));
  } else if (cmd == "set" || cmd == "setexp") {
    uint64_t id, mult, exp = 0;
    const bool ok = ParseU64(in, &id) && ParseU64(in, &mult) &&
                    (cmd == "set" ||
                     (ParseU64(in, &exp) && exp <= 0xffffffffull));
    if (!ok) {
      std::printf("usage: %s <id> %s\n", cmd.c_str(),
                  cmd == "set" ? "<weight>" : "<mult> <exp>");
      return true;
    }
    PrintStatus(remote.SetWeight(
        id, dpss::Weight(mult, static_cast<uint32_t>(exp))));
  } else if (cmd == "weight") {
    uint64_t id;
    if (!ParseU64(in, &id)) {
      std::printf("usage: weight <id>\n");
      return true;
    }
    const auto w = remote.GetWeight(id);
    if (w.ok()) {
      std::printf("weight %llu * 2^%u\n", (unsigned long long)w->mult,
                  w->exp);
    } else {
      PrintStatus(w.status());
    }
  } else if (cmd == "sample") {
    uint64_t an, ad, bn, bd;
    if (!ParseU64(in, &an) || !ParseU64(in, &ad) || !ParseU64(in, &bn) ||
        !ParseU64(in, &bd)) {
      std::printf("usage: sample <anum> <aden> <bnum> <bden>\n");
      return true;
    }
    const auto sample =
        remote.Sample(dpss::Rational64{an, ad}, dpss::Rational64{bn, bd});
    if (sample.ok()) {
      PrintSample(*sample);
    } else {
      PrintStatus(sample.status());
    }
  } else if (cmd == "stats") {
    const auto json = remote.Stats();
    if (json.ok()) {
      std::printf("%s", json->c_str());
    } else {
      PrintStatus(json.status());
    }
  } else {
    return false;
  }
  return true;
}

}  // namespace

int main() {
  dpss::SamplerSpec spec;
  spec.seed = 2024;
  std::string backend = "halt";
  auto sampler = dpss::MakeSampler(backend, spec);
  // Non-null while the shell runs in durable (write-ahead-logged) mode;
  // always aliases `sampler`.
  dpss::persist::DurableSampler* durable = nullptr;
  // Non-null while in client mode ('connect'); local commands are refused
  // until 'disconnect'.
  std::unique_ptr<dpss::server::Client> remote;
  std::string line;
  while (std::getline(std::cin, line)) {
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd)) continue;

    if (cmd == "quit" || cmd == "exit") break;

    if (cmd == "connect") {
      std::string target;
      const size_t colon =
          (in >> target) ? target.rfind(':') : std::string::npos;
      if (colon == std::string::npos || colon + 1 >= target.size()) {
        std::printf("usage: connect <host:port>\n");
        continue;
      }
      const std::string host = target.substr(0, colon);
      const int port = std::atoi(target.c_str() + colon + 1);
      auto conn = dpss::server::Client::Connect(host, port);
      if (!conn.ok()) {
        PrintStatus(conn.status());
        continue;
      }
      remote = std::move(*conn);
      std::printf("connected to %s (local sampler idle until "
                  "'disconnect')\n",
                  target.c_str());
      continue;
    }
    if (cmd == "disconnect") {
      if (remote == nullptr) {
        std::printf("not connected\n");
      } else {
        remote.reset();
        std::printf("disconnected (local sampler active)\n");
      }
      continue;
    }
    if (remote != nullptr) {
      if (!HandleRemote(*remote, cmd, in)) {
        std::printf("'%s' is not available in client mode ('disconnect' "
                    "first)\n",
                    cmd.c_str());
      }
      continue;
    }

    if (cmd == "backend") {
      std::string name;
      if (!(in >> name)) {
        std::printf("usage: backend <name>\n");
        continue;
      }
      auto fresh = dpss::MakeSamplerChecked(name, spec);
      if (!fresh.ok()) {
        std::printf("cannot create '%s': %s: %s (try 'backends')\n",
                    name.c_str(), dpss::StatusCodeName(fresh.status().code()),
                    fresh.status().message());
        continue;
      }
      if (!sampler->empty()) {
        std::printf("note: dropping %llu item(s) from the old sampler\n",
                    (unsigned long long)sampler->size());
      }
      if (durable != nullptr) {
        std::printf("note: leaving durable mode (the directory keeps its "
                    "last durable state)\n");
        durable = nullptr;
      }
      sampler = std::move(*fresh);
      backend = name;
      std::printf("backend %s\n", backend.c_str());
    } else if (cmd == "backends") {
      for (const std::string& name : dpss::RegisteredSamplerNames()) {
        std::printf("%s %s\n", name == backend ? "*" : " ", name.c_str());
      }
      std::printf("  sharded[K]:<inner>  (thread-safe wrapper; K from "
                  "'shards' when omitted)\n");
    } else if (cmd == "shards" || cmd == "threads") {
      // Validate against the sampler's real bounds up front, so the value
      // is not confirmed here only to fail at the next 'backend' command.
      const uint64_t max = cmd == "shards"
                               ? dpss::ShardedSampler::kMaxShards
                               : dpss::ShardedSampler::kMaxThreads;
      uint64_t v;
      if (!ParseU64(in, &v) || v < 1 || v > max) {
        std::printf("usage: %s <k>   (1 <= k <= %llu)\n", cmd.c_str(),
                    (unsigned long long)max);
        continue;
      }
      if (cmd == "shards") {
        spec.num_shards = static_cast<int>(v);
      } else {
        spec.num_threads = static_cast<int>(v);
      }
      std::printf("%s %llu (applies to the next 'backend' command)\n",
                  cmd.c_str(), (unsigned long long)v);
    } else if (cmd == "insert") {
      uint64_t w;
      if (!ParseU64(in, &w)) {
        std::printf("usage: insert <weight>\n");
        continue;
      }
      const auto id = sampler->Insert(w);
      if (id.ok()) {
        std::printf("id %llu\n", (unsigned long long)*id);
      } else {
        PrintStatus(id.status());
      }
    } else if (cmd == "insertbatch") {
      std::vector<uint64_t> weights;
      uint64_t w;
      while (ParseU64(in, &w)) weights.push_back(w);
      if (weights.empty()) {
        std::printf("usage: insertbatch <w1> <w2> ...\n");
        continue;
      }
      std::vector<dpss::ItemId> ids;
      const dpss::Status st = sampler->InsertBatch(weights, &ids);
      std::printf("inserted %zu item(s):", ids.size());
      for (auto id : ids) std::printf(" %llu", (unsigned long long)id);
      std::printf("\n");
      if (!st.ok()) PrintStatus(st);
    } else if (cmd == "insertexp") {
      uint64_t mult, exp;
      if (!ParseU64(in, &mult) || !ParseU64(in, &exp) ||
          exp > 0xffffffffull) {
        std::printf("usage: insertexp <mult> <exp>\n");
        continue;
      }
      const auto id = sampler->InsertWeight(
          dpss::Weight(mult, static_cast<uint32_t>(exp)));
      if (id.ok()) {
        std::printf("id %llu\n", (unsigned long long)*id);
      } else {
        PrintStatus(id.status());
      }
    } else if (cmd == "erase") {
      uint64_t id;
      if (!ParseU64(in, &id)) {
        std::printf("usage: erase <id>\n");
        continue;
      }
      PrintStatus(sampler->Erase(id));
    } else if (cmd == "set") {
      uint64_t id, w;
      if (!ParseU64(in, &id) || !ParseU64(in, &w)) {
        std::printf("usage: set <id> <weight>\n");
        continue;
      }
      PrintStatus(sampler->SetWeight(id, w));
    } else if (cmd == "setexp") {
      uint64_t id, mult, exp;
      if (!ParseU64(in, &id) || !ParseU64(in, &mult) || !ParseU64(in, &exp) ||
          exp > 0xffffffffull) {
        std::printf("usage: setexp <id> <mult> <exp>\n");
        continue;
      }
      PrintStatus(sampler->SetWeight(
          id, dpss::Weight(mult, static_cast<uint32_t>(exp))));
    } else if (cmd == "weight") {
      uint64_t id;
      if (!ParseU64(in, &id)) {
        std::printf("usage: weight <id>\n");
        continue;
      }
      const auto w = sampler->GetWeight(id);
      if (w.ok()) {
        std::printf("weight %llu * 2^%u\n", (unsigned long long)w->mult,
                    w->exp);
      } else {
        PrintStatus(w.status());
      }
    } else if (cmd == "sample" || cmd == "mu") {
      uint64_t an, ad, bn, bd;
      if (!ParseU64(in, &an) || !ParseU64(in, &ad) || !ParseU64(in, &bn) ||
          !ParseU64(in, &bd)) {
        std::printf("usage: %s <anum> <aden> <bnum> <bden>\n", cmd.c_str());
        continue;
      }
      const dpss::Rational64 alpha{an, ad}, beta{bn, bd};
      if (cmd == "sample") {
        std::vector<dpss::ItemId> out;
        const dpss::Status st = sampler->SampleInto(alpha, beta, &out);
        if (st.ok()) {
          PrintSample(out);
        } else {
          PrintStatus(st);
        }
      } else {
        const auto mu = sampler->ExpectedSampleSize(alpha, beta);
        if (mu.ok()) {
          std::printf("mu = %.6f\n", *mu);
        } else {
          PrintStatus(mu.status());
        }
      }
    } else if (cmd == "stats") {
      std::printf("%s\n", sampler->DebugString().c_str());
      std::printf("~memory: %zu B\n", sampler->ApproxMemoryBytes());
    } else if (cmd == "check") {
      const dpss::Status st = sampler->CheckInvariants();
      if (st.ok()) {
        std::printf("invariants OK\n");
      } else {
        PrintStatus(st);
      }
    } else if (cmd == "save") {
      std::string path;
      if (!(in >> path)) {
        std::printf("usage: save <file>\n");
        continue;
      }
      // In durable mode snapshot the *inner* sampler: its registry name in
      // the header is what makes the file loadable anywhere ("durable:x"
      // is not a constructible backend).
      const dpss::Sampler& to_save =
          durable != nullptr ? durable->inner() : *sampler;
      const dpss::Status st = dpss::persist::SaveSamplerToFile(
          to_save, spec, dpss::persist::SystemEnv(), path);
      if (st.ok()) {
        std::printf("saved %s snapshot of %llu item(s) to %s\n",
                    to_save.name(), (unsigned long long)to_save.size(),
                    path.c_str());
      } else {
        PrintStatus(st);
      }
    } else if (cmd == "load" || cmd == "info") {
      std::string path;
      if (!(in >> path)) {
        std::printf("usage: %s <file>\n", cmd.c_str());
        continue;
      }
      std::string bytes;
      const dpss::Status read = dpss::persist::SystemEnv()->ReadFileToString(
          path, &bytes);
      if (!read.ok()) {
        PrintStatus(read);
        continue;
      }
      const auto info = dpss::persist::ReadSnapshotInfo(bytes);
      if (!info.ok()) {
        PrintStatus(info.status());
        continue;
      }
      std::printf("container v%u%s backend=%s items=%llu total_weight=%s\n",
                  info->version,
                  info->version == dpss::persist::kContainerVersionArena
                      ? " (arena image)"
                      : "",
                  info->backend.c_str(), (unsigned long long)info->size,
                  info->total_weight.ToDecimalString().c_str());
      if (cmd == "info") continue;
      auto loaded = dpss::persist::LoadSampler(bytes);
      if (!loaded.ok()) {
        PrintStatus(loaded.status());
        continue;
      }
      if (durable != nullptr) {
        std::printf("note: leaving durable mode\n");
        durable = nullptr;
      }
      sampler = std::move(*loaded);
      backend = info->backend;
      spec = info->spec;
      std::printf("loaded %llu item(s) into a fresh '%s'\n",
                  (unsigned long long)sampler->size(), backend.c_str());
    } else if (cmd == "wal" || cmd == "recover") {
      std::string dir;
      if (!(in >> dir)) {
        std::printf("usage: %s <dir> [sync_every]\n", cmd.c_str());
        continue;
      }
      uint64_t sync_every = 1;
      ParseU64(in, &sync_every);
      dpss::persist::DurableOptions opts;
      opts.backend = backend;
      opts.spec = spec;
      opts.wal_sync_every = static_cast<uint32_t>(sync_every);
      auto opened = dpss::persist::RecoveryManager::Open(dir, opts);
      if (!opened.ok()) {
        PrintStatus(opened.status());
        continue;
      }
      const dpss::persist::RecoveryStats& rs = (*opened)->recovery_stats();
      if (rs.fresh_start) {
        std::printf("fresh durable state in %s\n", dir.c_str());
      } else {
        std::printf(
            "recovered epoch %llu (container v%u, %llu delta(s)): %llu "
            "record(s) / %llu op(s) replayed, %llu torn byte(s) truncated, "
            "%llu bad snapshot(s) skipped\n",
            (unsigned long long)rs.snapshot_epoch, rs.snapshot_version,
            (unsigned long long)rs.deltas_applied,
            (unsigned long long)rs.records_replayed,
            (unsigned long long)rs.ops_replayed,
            (unsigned long long)rs.wal_bytes_truncated,
            (unsigned long long)rs.snapshots_skipped);
      }
      durable = opened->get();
      sampler = std::move(*opened);
      // Track the *inner* registry name: the directory's snapshot may have
      // picked a different backend than requested, and "durable:x" is not
      // a name later 'wal'/'backend' commands could construct.
      backend = durable->inner().name();
      std::printf("%s: %llu item(s), wal fsync every %llu record(s)\n",
                  sampler->name(), (unsigned long long)sampler->size(),
                  (unsigned long long)(sync_every == 0 ? 0 : sync_every));
    } else if (cmd == "checkpoint" || cmd == "syncwal") {
      if (durable == nullptr) {
        std::printf("not in durable mode (use 'wal <dir>' first)\n");
        continue;
      }
      if (cmd == "checkpoint") {
        std::string flag;
        in >> flag;
        dpss::Status st;
        if (flag == "--incremental") {
          st = durable->Checkpoint(dpss::persist::CheckpointMode::kIncremental);
        } else if (flag == "--full" || flag.empty()) {
          st = durable->Checkpoint(dpss::persist::CheckpointMode::kFull);
        } else {
          std::printf("usage: checkpoint [--incremental|--full]\n");
          continue;
        }
        if (st.ok()) {
          std::printf("checkpointed to epoch %llu\n",
                      (unsigned long long)durable->epoch());
        } else {
          PrintStatus(st);
        }
      } else {
        PrintStatus(durable->SyncWal());
      }
    } else if (cmd == "seed") {
      uint64_t v;
      if (!ParseU64(in, &v)) {
        std::printf("usage: seed <v>\n");
        continue;
      }
      // Reseeding round-trips the item set through a snapshot, so it needs
      // a snapshot-capable backend (and a registry-creatable one — leave
      // durable mode first).
      if (durable != nullptr) {
        std::printf("not supported in durable mode (use 'backend' first)\n");
        continue;
      }
      std::string bytes;
      dpss::Status st = sampler->Serialize(&bytes);
      if (st.ok()) {
        spec.seed = v;
        auto reseeded = dpss::MakeSampler(backend, spec);
        st = reseeded->Restore(bytes);
        if (st.ok()) sampler = std::move(reseeded);
      }
      PrintStatus(st);
    } else {
      std::printf("unknown command: %s\n", cmd.c_str());
    }
  }
  return 0;
}
