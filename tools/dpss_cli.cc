// dpss_cli — interactive shell around DpssSampler.
//
// Useful for poking at the structure, scripting reproductions, and
// inspecting snapshots. Reads commands from stdin (one per line, '#'
// comments ignored):
//
//   insert <weight>            add an item (prints its id)
//   insertexp <mult> <exp>     add an item with weight mult·2^exp
//   erase <id>                 remove an item
//   set <id> <weight>          update an item's weight in place (O(1))
//   setexp <id> <mult> <exp>   update to weight mult·2^exp
//   weight <id>                print an item's weight
//   sample <an> <ad> <bn> <bd> one PSS query with α=an/ad, β=bn/bd
//   mu <an> <ad> <bn> <bd>     expected sample size for (α, β)
//   stats                      size / Σw / capacity / memory / rebuilds
//   check                      run the structural invariant checker
//   save <file>                write a snapshot
//   load <file>                replace the sampler with a snapshot
//   seed <v>                   reseed the query RNG
//   quit
//
// Example:
//   printf 'insert 10\ninsert 90\nsample 1 1 0 1\nstats\n' | ./dpss_cli

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/dpss_sampler.h"
#include "core/halt.h"
#include "util/bits.h"

namespace {

void PrintSample(const std::vector<dpss::DpssSampler::ItemId>& sample) {
  std::printf("sampled %zu item(s):", sample.size());
  for (auto id : sample) std::printf(" %llu", (unsigned long long)id);
  std::printf("\n");
}

bool ParseU64(std::istringstream& in, uint64_t* v) {
  return static_cast<bool>(in >> *v);
}

// The sampler requires exp + floor(log2(mult)) < kLevel1Universe for
// non-zero weights; rejecting here keeps a bad input from aborting the
// whole session on the sampler's always-on precondition check.
bool ValidExpWeight(uint64_t mult, uint64_t exp) {
  if (mult == 0) return exp < 256;
  return exp + static_cast<uint64_t>(dpss::FloorLog2(mult)) <
         static_cast<uint64_t>(dpss::kLevel1Universe);
}

}  // namespace

int main() {
  auto sampler = std::make_unique<dpss::DpssSampler>(uint64_t{2024});
  std::string line;
  while (std::getline(std::cin, line)) {
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd)) continue;

    if (cmd == "quit" || cmd == "exit") break;

    if (cmd == "insert") {
      uint64_t w;
      if (!ParseU64(in, &w)) {
        std::printf("usage: insert <weight>\n");
        continue;
      }
      std::printf("id %llu\n", (unsigned long long)sampler->Insert(w));
    } else if (cmd == "insertexp") {
      uint64_t mult, exp;
      if (!ParseU64(in, &mult) || !ParseU64(in, &exp) ||
          !ValidExpWeight(mult, exp)) {
        std::printf("usage: insertexp <mult> <exp> with exp+log2(mult)<256\n");
        continue;
      }
      std::printf("id %llu\n",
                  (unsigned long long)sampler->InsertWeight(
                      dpss::Weight(mult, static_cast<uint32_t>(exp))));
    } else if (cmd == "erase") {
      uint64_t id;
      if (!ParseU64(in, &id) || !sampler->Contains(id)) {
        std::printf("no such item\n");
        continue;
      }
      sampler->Erase(id);
      std::printf("ok\n");
    } else if (cmd == "set") {
      uint64_t id, w;
      if (!ParseU64(in, &id) || !ParseU64(in, &w)) {
        std::printf("usage: set <id> <weight>\n");
        continue;
      }
      if (!sampler->Contains(id)) {
        std::printf("no such item\n");
        continue;
      }
      sampler->SetWeight(id, w);
      std::printf("ok\n");
    } else if (cmd == "setexp") {
      uint64_t id, mult, exp;
      if (!ParseU64(in, &id) || !ParseU64(in, &mult) || !ParseU64(in, &exp) ||
          !ValidExpWeight(mult, exp)) {
        std::printf(
            "usage: setexp <id> <mult> <exp> with exp+log2(mult)<256\n");
        continue;
      }
      if (!sampler->Contains(id)) {
        std::printf("no such item\n");
        continue;
      }
      sampler->SetWeight(id, dpss::Weight(mult, static_cast<uint32_t>(exp)));
      std::printf("ok\n");
    } else if (cmd == "weight") {
      uint64_t id;
      if (!ParseU64(in, &id) || !sampler->Contains(id)) {
        std::printf("no such item\n");
        continue;
      }
      const dpss::Weight w = sampler->GetWeight(id);
      std::printf("weight %llu * 2^%u\n", (unsigned long long)w.mult, w.exp);
    } else if (cmd == "sample" || cmd == "mu") {
      uint64_t an, ad, bn, bd;
      if (!ParseU64(in, &an) || !ParseU64(in, &ad) || !ParseU64(in, &bn) ||
          !ParseU64(in, &bd) || ad == 0 || bd == 0) {
        std::printf("usage: %s <anum> <aden> <bnum> <bden>\n", cmd.c_str());
        continue;
      }
      const dpss::Rational64 alpha{an, ad}, beta{bn, bd};
      if (cmd == "sample") {
        PrintSample(sampler->Sample(alpha, beta));
      } else {
        std::printf("mu = %.6f\n", sampler->ExpectedSampleSize(alpha, beta));
      }
    } else if (cmd == "stats") {
      std::printf("items: %llu, total weight: %s\n",
                  (unsigned long long)sampler->size(),
                  sampler->total_weight().ToDecimalString().c_str());
      std::printf("level-1 capacity: 2^%d, rebuilds: %llu, ~memory: %zu B\n",
                  sampler->level1_log2_capacity(),
                  (unsigned long long)sampler->rebuild_count(),
                  sampler->ApproxMemoryBytes());
    } else if (cmd == "check") {
      sampler->CheckInvariants();
      std::printf("invariants OK\n");
    } else if (cmd == "save") {
      std::string path;
      if (!(in >> path)) {
        std::printf("usage: save <file>\n");
        continue;
      }
      std::string bytes;
      sampler->Serialize(&bytes);
      std::ofstream out(path, std::ios::binary);
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
      std::printf(out.good() ? "saved %zu bytes\n" : "write failed\n",
                  bytes.size());
    } else if (cmd == "load") {
      std::string path;
      if (!(in >> path)) {
        std::printf("usage: load <file>\n");
        continue;
      }
      std::ifstream src(path, std::ios::binary);
      std::stringstream buf;
      buf << src.rdbuf();
      auto loaded = std::make_unique<dpss::DpssSampler>(uint64_t{2024});
      if (!src.good() ||
          !dpss::DpssSampler::Deserialize(buf.str(), dpss::DpssSampler::Options{},
                                          loaded.get())) {
        std::printf("load failed\n");
        continue;
      }
      sampler = std::move(loaded);
      std::printf("loaded %llu item(s)\n", (unsigned long long)sampler->size());
    } else if (cmd == "seed") {
      uint64_t v;
      if (!ParseU64(in, &v)) {
        std::printf("usage: seed <v>\n");
        continue;
      }
      dpss::DpssSampler::Options o;
      o.seed = v;
      std::string bytes;
      sampler->Serialize(&bytes);
      auto reseeded = std::make_unique<dpss::DpssSampler>(o);
      if (dpss::DpssSampler::Deserialize(bytes, o, reseeded.get())) {
        sampler = std::move(reseeded);
        std::printf("ok\n");
      } else {
        std::printf("reseed failed\n");
      }
    } else {
      std::printf("unknown command: %s\n", cmd.c_str());
    }
  }
  return 0;
}
