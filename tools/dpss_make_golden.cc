// Regenerates the golden snapshot files under tests/golden/ — run from the
// repository root:
//
//   ./build/dpss_make_golden tests/golden
//
// ONLY run this when the container format version is being bumped on
// purpose; the whole point of the golden files is that the v1 bytes never
// change silently (tests/persist_snapshot_test.cc pins them byte-exactly).
// The scripted states exercise a hole (bumped generation + non-trivial
// free list), a float-form weight where supported, and the sharded
// wrapper's per-shard sections.

#include <cstdio>
#include <string>

#include "core/sampler.h"
#include "persist/snapshot.h"

namespace {

bool WriteFile(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(bytes.data(), 1, bytes.size(), f) ==
                  bytes.size();
  return std::fclose(f) == 0 && ok;
}

// The shared script for the halt-shaped cases: weights 10, 0 (parked),
// 3·2^40 (float form), 999; the parked item erased.
bool BuildHaltLike(const std::string& backend, const dpss::SamplerSpec& spec,
                   std::string* out) {
  auto s = dpss::MakeSampler(backend, spec);
  if (s == nullptr) return false;
  const auto a = s->Insert(10);
  const auto parked = s->Insert(0);
  const auto big = s->InsertWeight(dpss::Weight(3, 40));
  const auto c = s->Insert(999);
  if (!a.ok() || !parked.ok() || !big.ok() || !c.ok()) return false;
  if (!s->Erase(*parked).ok()) return false;
  return dpss::persist::SaveSampler(*s, spec, out).ok();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "tests/golden";
  dpss::SamplerSpec spec;
  spec.seed = 2024;

  std::string bytes;
  if (!BuildHaltLike("halt", spec, &bytes) ||
      !WriteFile(dir + "/halt_v1.snapshot", bytes)) {
    std::fprintf(stderr, "halt golden failed\n");
    return 1;
  }

  bytes.clear();
  dpss::SamplerSpec sharded_spec = spec;
  sharded_spec.num_shards = 2;
  if (!BuildHaltLike("sharded2:halt", sharded_spec, &bytes) ||
      !WriteFile(dir + "/sharded2_halt_v1.snapshot", bytes)) {
    std::fprintf(stderr, "sharded golden failed\n");
    return 1;
  }

  bytes.clear();
  {
    auto s = dpss::MakeSampler("naive", spec);
    const auto a = s->Insert(10);
    const auto b = s->Insert(7);
    const auto c = s->Insert(999);
    if (!a.ok() || !b.ok() || !c.ok() || !s->Erase(*b).ok() ||
        !dpss::persist::SaveSampler(*s, spec, &bytes).ok() ||
        !WriteFile(dir + "/naive_v1.snapshot", bytes)) {
      std::fprintf(stderr, "naive golden failed\n");
      return 1;
    }
    // The same state as a v2 arena-image container: pins the arena byte
    // layout (bump order, alignment, root block) in addition to the frame
    // format.
    bytes.clear();
    if (!dpss::persist::SaveSamplerArena(s.get(), spec, &bytes).ok() ||
        !WriteFile(dir + "/naive_v2.snapshot", bytes)) {
      std::fprintf(stderr, "naive v2 golden failed\n");
      return 1;
    }
  }

  bytes.clear();
  {
    dpss::SamplerSpec sh = spec;
    sh.num_shards = 2;
    auto s = dpss::MakeSampler("sharded2:naive", sh);
    const auto a = s->Insert(10);
    const auto b = s->Insert(7);
    const auto c = s->Insert(999);
    if (s == nullptr || !a.ok() || !b.ok() || !c.ok() || !s->Erase(*b).ok() ||
        !dpss::persist::SaveSamplerArena(s.get(), sh, &bytes).ok() ||
        !WriteFile(dir + "/sharded2_naive_v2.snapshot", bytes)) {
      std::fprintf(stderr, "sharded naive v2 golden failed\n");
      return 1;
    }
  }
  std::printf("golden snapshots written to %s\n", dir.c_str());
  return 0;
}
