// dpss-serverd: the long-running serving daemon. Binds the thread-per-core
// serving layer (src/server/) around any registered backend, optionally
// durable, and runs until SIGTERM/SIGINT triggers a graceful drain (finish
// admitted work, fsync WAL, final checkpoint, flush replies, exit).
//
// Usage:
//   dpss-serverd [--host H] [--port P] [--backend NAME] [--seed S]
//                [--durable-dir DIR] [--io-threads N]
//                [--batch-window-us U] [--max-batch-ops N]
//                [--max-queue-depth N] [--max-inflight-mb N]
//                [--stats-interval-s S] [--port-file PATH]
//                [--replica-of HOST:PORT] [--min-replica-acks N]
//                [--advertise-addr HOST:PORT]
//
// --port 0 (the default) binds an ephemeral port; the resolved port is
// printed on stdout as "listening on HOST:PORT" and, with --port-file,
// written to PATH so scripts can find it without parsing stdout.
//
// Replication (docs/REPLICATION.md): --replica-of runs the daemon as a
// read replica mirroring into --durable-dir; SIGUSR1 promotes it to a
// primary (failover). --min-replica-acks makes a durable primary withhold
// mutation acks until that many replicas applied the write.

#include <signal.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "server/server.h"

namespace {

dpss::server::Server* g_server = nullptr;

void HandleTermSignal(int) {
  if (g_server != nullptr) g_server->NotifyDrainFromSignal();
}

void HandlePromoteSignal(int) {
  if (g_server != nullptr) g_server->NotifyPromoteFromSignal();
}

void Usage() {
  std::fprintf(
      stderr,
      "usage: dpss-serverd [--host H] [--port P] [--backend NAME]\n"
      "                    [--seed S] [--durable-dir DIR] [--io-threads N]\n"
      "                    [--batch-window-us U] [--max-batch-ops N]\n"
      "                    [--max-queue-depth N] [--max-inflight-mb N]\n"
      "                    [--wal-sync-every N] [--stats-interval-s S]\n"
      "                    [--port-file PATH] [--replica-of HOST:PORT]\n"
      "                    [--min-replica-acks N]\n"
      "                    [--advertise-addr HOST:PORT]\n");
}

}  // namespace

int main(int argc, char** argv) {
  dpss::server::ServerOptions opts;
  double stats_interval_s = 0;
  std::string port_file;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "dpss-serverd: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--host") {
      opts.host = next();
    } else if (arg == "--port") {
      opts.port = std::atoi(next());
    } else if (arg == "--backend") {
      opts.backend = next();
    } else if (arg == "--seed") {
      opts.spec.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--durable-dir") {
      opts.durable_dir = next();
    } else if (arg == "--io-threads") {
      opts.io_threads = std::atoi(next());
    } else if (arg == "--batch-window-us") {
      opts.batch_window_us = static_cast<uint32_t>(std::atoi(next()));
    } else if (arg == "--max-batch-ops") {
      opts.max_batch_ops = static_cast<uint32_t>(std::atoi(next()));
    } else if (arg == "--max-queue-depth") {
      opts.max_queue_depth = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--max-inflight-mb") {
      opts.max_inflight_bytes = std::strtoull(next(), nullptr, 10) << 20;
    } else if (arg == "--wal-sync-every") {
      opts.wal_sync_every = static_cast<uint32_t>(std::atoi(next()));
    } else if (arg == "--replica-of") {
      opts.replica_of = next();
    } else if (arg == "--min-replica-acks") {
      opts.min_replica_acks = static_cast<uint32_t>(std::atoi(next()));
    } else if (arg == "--advertise-addr") {
      opts.advertise_addr = next();
    } else if (arg == "--stats-interval-s") {
      stats_interval_s = std::atof(next());
    } else if (arg == "--port-file") {
      port_file = next();
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else {
      std::fprintf(stderr, "dpss-serverd: unknown flag %s\n", arg.c_str());
      Usage();
      return 2;
    }
  }

  auto started = dpss::server::Server::Start(opts);
  if (!started.ok()) {
    std::fprintf(stderr, "dpss-serverd: start failed: %s (%s)\n",
                 started.status().message(),
                 dpss::StatusCodeName(started.status().code()));
    return 1;
  }
  g_server = started->get();

  struct sigaction sa{};
  sa.sa_handler = HandleTermSignal;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
  struct sigaction sp{};
  sp.sa_handler = HandlePromoteSignal;
  sigaction(SIGUSR1, &sp, nullptr);
  signal(SIGPIPE, SIG_IGN);

  std::printf("listening on %s:%d (backend=%s%s%s%s%s)\n", opts.host.c_str(),
              g_server->port(), opts.backend.c_str(),
              opts.durable_dir.empty() ? "" : ", durable_dir=",
              opts.durable_dir.c_str(),
              opts.replica_of.empty() ? "" : ", replica of ",
              opts.replica_of.c_str());
  std::fflush(stdout);
  if (!port_file.empty()) {
    std::FILE* f = std::fopen(port_file.c_str(), "w");
    if (f != nullptr) {
      std::fprintf(f, "%d\n", g_server->port());
      std::fclose(f);
    }
  }

  if (stats_interval_s > 0) {
    const auto interval = std::chrono::duration<double>(stats_interval_s);
    while (!g_server->stopped()) {
      std::this_thread::sleep_for(interval);
      if (g_server->stopped()) break;
      std::fprintf(stderr, "%s", g_server->StatsJson().c_str());
    }
  }

  g_server->WaitUntilStopped();
  std::fprintf(stderr, "dpss-serverd: drained, final stats:\n%s",
               g_server->StatsJson().c_str());
  g_server = nullptr;
  return 0;
}
