// Reply accounting shared by dpss_loadgen and its unit test.
//
// The rule this header pins down: a kShed reply is an admission-control
// rejection the server produced *instead of* doing the work, so it must
// not enter the latency distribution — folding sub-microsecond rejections
// into the quantiles makes an overloaded server look faster the harder it
// sheds. Sheds count toward their own rate (reported as `shed_rate`);
// only replies that actually traversed the serving path (kOk and error
// replies) are measured.

#ifndef DPSS_TOOLS_LOADGEN_STATS_H_
#define DPSS_TOOLS_LOADGEN_STATS_H_

#include <cstdint>

#include "server/metrics.h"
#include "server/protocol.h"

namespace dpss {
namespace loadgen {

// Outcome counters for one worker or one merged phase.
struct ReplyCounters {
  uint64_t ops = 0;     // kOk replies
  uint64_t shed = 0;    // kShed replies (admission rejections)
  uint64_t errors = 0;  // every other non-kOk reply
  uint64_t total() const { return ops + shed + errors; }
};

// Folds one reply into the counters and, for non-shed replies only, the
// latency histogram.
inline void AccountReply(server::WireStatus status, uint64_t latency_ns,
                         ReplyCounters* counters,
                         server::LatencyHistogram* latency) {
  if (status == server::WireStatus::kOk) {
    ++counters->ops;
    latency->Record(latency_ns);
  } else if (status == server::WireStatus::kShed) {
    // Rejected before the serving path: rate-tracked, never timed.
    ++counters->shed;
  } else {
    ++counters->errors;
    latency->Record(latency_ns);
  }
}

// Fraction of replies that were sheds, in [0, 1]; 0 when nothing ran.
inline double ShedRate(const ReplyCounters& counters) {
  const uint64_t total = counters.total();
  return total == 0
             ? 0.0
             : static_cast<double>(counters.shed) /
                   static_cast<double>(total);
}

}  // namespace loadgen
}  // namespace dpss

#endif  // DPSS_TOOLS_LOADGEN_STATS_H_
