// dpss_loadgen: multi-threaded pipelined load generator for dpss-serverd.
//
// Drives the wire protocol from N client threads (one connection each,
// pipelined `--window` requests deep) through a fixed phase sequence:
//
//   load       bulk-insert --items items (all mutations, group-committed)
//   mix90      90% sample / 10% mutation for --duration-s seconds
//   mix50      50% sample / 50% mutation for --duration-s seconds
//   hotkey     flash crowd: every thread hammers one hot item
//              (setweight/getweight) plus samples for --duration-s seconds
//   overdrive  floods with maximum pipelining and counts kShed responses
//              (point it at a server started with a small --max-queue-depth
//              to see admission control engage)
//
// Every acked mutation is tracked; `--ack-log FILE` writes the final acked
// live set as "id mult exp" lines. After killing the server (SIGTERM) and
// restarting it from the same --durable-dir, `--verify FILE` reads each id
// back over the wire and exits non-zero on any mismatch — the zero
// acked-write-loss check.
//
// `--json PATH` (default BENCH_server.json) writes one row per executed
// phase in the standard bench shape:
//   {"name": "server/mix90", "ns_per_query": <mean client latency>,
//    "iterations": <ops>, "qps": ..., "p50_ns": ..., "p99_ns": ...,
//    "p999_ns": ..., "shed": ..., "shed_rate": ..., "errors": ...}
// Latency fields (mean and quantiles) cover non-shed replies only: a shed
// is an admission rejection produced instead of the work, and timing it
// would make an overloaded server look faster the harder it sheds
// (tools/loadgen_stats.h pins the rule; loadgen_stats_test.cc tests it).

#include <time.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "server/client.h"
#include "server/metrics.h"
#include "tools/loadgen_stats.h"
#include "util/random.h"

namespace {

using dpss::ItemId;
using dpss::Rational64;
using dpss::Weight;
using dpss::server::Client;
using dpss::server::HistogramSnapshot;
using dpss::server::LatencyHistogram;
using dpss::server::MsgType;
using dpss::server::Request;
using dpss::server::Response;
using dpss::server::WireStatus;

uint64_t NowNs() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

struct Options {
  std::string host = "127.0.0.1";
  int port = 0;
  int threads = 4;
  uint64_t items = 1'000'000;
  double duration_s = 5.0;
  int window = 64;
  int overdrive_window = 4096;
  std::string phases = "load,mix90,mix50,hotkey,overdrive";
  std::string json_path = "BENCH_server.json";
  std::string ack_log;
  std::string verify;
  // --verify against a replica that may still be applying shipped WAL:
  // retry a missing/mismatched id for up to this long before counting it
  // lost. 0 = the strict single-shot read (primary restarts).
  int verify_lag_ms = 0;
};

// Aggregated outcome of one phase across all worker threads.
struct PhaseResult {
  std::string name;
  dpss::loadgen::ReplyCounters counts;
  uint64_t wall_ns = 1;
  // Client-observed request latency (ns) over non-shed replies only — the
  // accounting rule loadgen_stats.h pins down.
  HistogramSnapshot latency;
};

// One worker's view of the items it owns: ids it inserted and saw acked,
// with the last acked weight. Threads never touch each other's ids, so the
// bookkeeping needs no locks.
struct WorkerState {
  std::vector<ItemId> ids;
  std::unordered_map<ItemId, Weight> acked;  // the durable contract
  dpss::RandomEngine rng{0};
  LatencyHistogram latency;
  dpss::loadgen::ReplyCounters counts;
};

// The pipelining core every phase shares: keeps `window` requests in
// flight, calling `make` to produce the next request (returns false to stop
// issuing) and `on_ack` for each response. Returns false on transport
// failure.
bool RunPipelined(Client& client, int window, WorkerState& ws,
                  const std::function<bool(Request*)>& make,
                  const std::function<void(const Request&, const Response&)>&
                      on_ack) {
  std::unordered_map<uint64_t, std::pair<Request, uint64_t>> inflight;
  inflight.reserve(static_cast<size_t>(window) * 2);
  bool more = true;
  for (;;) {
    while (more && inflight.size() < static_cast<size_t>(window)) {
      Request req;
      if (!make(&req)) {
        more = false;
        break;
      }
      const uint64_t seq = client.SendRequest(req);
      inflight.emplace(seq, std::make_pair(req, NowNs()));
    }
    if (inflight.empty()) return true;
    auto resp = client.ReadResponse();
    if (!resp.ok()) return false;
    auto it = inflight.find(resp->seq);
    if (it == inflight.end()) continue;  // late reply to an earlier phase
    const uint64_t lat = NowNs() - it->second.second;
    dpss::loadgen::AccountReply(resp->status, lat, &ws.counts, &ws.latency);
    if (resp->status == WireStatus::kOk) {
      on_ack(it->second.first, *resp);
    }
    inflight.erase(it);
  }
}

Request MakeInsert(WorkerState& ws) {
  Request req;
  req.type = MsgType::kInsert;
  req.weight = Weight{1 + ws.rng.NextWord() % 1000, 0};
  return req;
}

void AckMutation(WorkerState& ws, const Request& req, const Response& resp) {
  switch (req.type) {
    case MsgType::kInsert:
    case MsgType::kInsertW:
      ws.ids.push_back(resp.id);
      ws.acked[resp.id] = req.weight;
      break;
    case MsgType::kErase:
      ws.acked.erase(req.id);
      break;
    case MsgType::kSetWeight:
      ws.acked[req.id] = req.weight;
      break;
    default:
      break;
  }
}

// A mixed-phase request: `mutation_pct` percent mutations (half inserts,
// a quarter setweights, a quarter erases of an owned id), the rest samples.
Request MakeMixed(WorkerState& ws, int mutation_pct) {
  const uint64_t roll = ws.rng.NextWord() % 100;
  if (roll < static_cast<uint64_t>(mutation_pct) && !ws.ids.empty()) {
    const uint64_t kind = ws.rng.NextWord() % 4;
    if (kind < 2) return MakeInsert(ws);
    Request req;
    const size_t pick = ws.rng.NextWord() % ws.ids.size();
    if (kind == 2) {
      req.type = MsgType::kSetWeight;
      req.id = ws.ids[pick];
      req.weight = Weight{1 + ws.rng.NextWord() % 1000, 0};
    } else {
      req.type = MsgType::kErase;
      req.id = ws.ids[pick];
      // Swap-remove now; a failed erase (already-erased id) just means the
      // acked map was already clean.
      ws.ids[pick] = ws.ids.back();
      ws.ids.pop_back();
    }
    return req;
  }
  Request req;
  req.type = MsgType::kSample;
  req.alpha = Rational64{1, 1};
  req.beta = Rational64{0, 1};
  req.max_ids = 4096;
  return req;
}

void MergeWorker(PhaseResult& out, WorkerState& ws) {
  out.counts.ops += ws.counts.ops;
  out.counts.shed += ws.counts.shed;
  out.counts.errors += ws.counts.errors;
  ws.latency.AccumulateInto(out.latency.buckets());
  ws.counts = {};
  ws.latency.Reset();  // fresh histogram for the next phase
}

int Verify(const Options& opt) {
  std::FILE* f = std::fopen(opt.verify.c_str(), "r");
  if (f == nullptr) {
    std::fprintf(stderr, "loadgen: cannot read %s\n", opt.verify.c_str());
    return 1;
  }
  auto conn = Client::Connect(opt.host, opt.port);
  if (!conn.ok()) {
    std::fprintf(stderr, "loadgen: connect failed: %s\n",
                 conn.status().message());
    std::fclose(f);
    return 1;
  }
  uint64_t checked = 0, missing = 0, mismatched = 0;
  unsigned long long id, mult;
  unsigned exp;
  // Lag-aware mode: the deadline is shared across ids — replication
  // applies in seq order, so once the replica has caught up every
  // remaining read succeeds on its first try.
  const uint64_t lag_deadline_ns =
      NowNs() + static_cast<uint64_t>(opt.verify_lag_ms) * 1'000'000ull;
  while (std::fscanf(f, "%llu %llu %u", &id, &mult, &exp) == 3) {
    for (;;) {
      auto w = (*conn)->GetWeight(static_cast<ItemId>(id));
      const bool ok_weight = w.ok() && w->mult == mult && w->exp == exp;
      if (!ok_weight && NowNs() < lag_deadline_ns) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        continue;
      }
      if (!w.ok()) {
        ++missing;
        if (missing <= 10) {
          std::fprintf(stderr,
                       "loadgen: acked id %llu missing after restart\n", id);
        }
      } else if (!ok_weight) {
        ++mismatched;
        if (mismatched <= 10) {
          std::fprintf(stderr,
                       "loadgen: id %llu weight %llu*2^%u, expected "
                       "%llu*2^%u\n",
                       id, static_cast<unsigned long long>(w->mult), w->exp,
                       mult, exp);
        }
      }
      break;
    }
    ++checked;
  }
  std::fclose(f);
  std::printf("loadgen: verified %llu acked writes: %llu missing, %llu "
              "mismatched\n",
              static_cast<unsigned long long>(checked),
              static_cast<unsigned long long>(missing),
              static_cast<unsigned long long>(mismatched));
  return (missing == 0 && mismatched == 0) ? 0 : 1;
}

void WriteBenchJson(const std::string& path,
                    const std::vector<PhaseResult>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "loadgen: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const PhaseResult& r = results[i];
    const uint64_t total = r.counts.total();
    // Latency fields cover non-shed replies only; sheds are reported as an
    // explicit rate instead of silently deflating the quantiles.
    const uint64_t measured = r.counts.ops + r.counts.errors;
    const double ns_per = measured > 0 ? r.latency.Mean() : 0.0;
    const double qps =
        static_cast<double>(total) * 1e9 / static_cast<double>(r.wall_ns);
    std::fprintf(f,
                 "  {\"name\": \"server/%s\", \"ns_per_query\": %.2f, "
                 "\"iterations\": %llu, \"qps\": %.6g, \"p50_ns\": %llu, "
                 "\"p99_ns\": %llu, \"p999_ns\": %llu, \"shed\": %llu, "
                 "\"shed_rate\": %.6f, \"errors\": %llu}%s\n",
                 r.name.c_str(), ns_per,
                 static_cast<unsigned long long>(total), qps,
                 static_cast<unsigned long long>(
                     r.latency.ValueAtQuantile(0.50)),
                 static_cast<unsigned long long>(
                     r.latency.ValueAtQuantile(0.99)),
                 static_cast<unsigned long long>(
                     r.latency.ValueAtQuantile(0.999)),
                 static_cast<unsigned long long>(r.counts.shed),
                 dpss::loadgen::ShedRate(r.counts),
                 static_cast<unsigned long long>(r.counts.errors),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("loadgen: wrote %s (%zu phases)\n", path.c_str(),
              results.size());
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "loadgen: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--host") opt.host = next();
    else if (arg == "--port") opt.port = std::atoi(next());
    else if (arg == "--threads") opt.threads = std::atoi(next());
    else if (arg == "--items") opt.items = std::strtoull(next(), nullptr, 10);
    else if (arg == "--duration-s") opt.duration_s = std::atof(next());
    else if (arg == "--window") opt.window = std::atoi(next());
    else if (arg == "--overdrive-window") opt.overdrive_window =
        std::atoi(next());
    else if (arg == "--phases") opt.phases = next();
    else if (arg == "--json") opt.json_path = next();
    else if (arg == "--ack-log") opt.ack_log = next();
    else if (arg == "--verify") opt.verify = next();
    else if (arg == "--verify-lag-ms") opt.verify_lag_ms = std::atoi(next());
    else {
      std::fprintf(stderr, "loadgen: unknown flag %s\n", arg.c_str());
      return 2;
    }
  }
  if (opt.port == 0) {
    std::fprintf(stderr, "loadgen: --port is required\n");
    return 2;
  }
  if (!opt.verify.empty()) return Verify(opt);

  const int T = opt.threads > 0 ? opt.threads : 1;
  std::vector<WorkerState> workers(static_cast<size_t>(T));
  std::vector<std::unique_ptr<Client>> clients;
  for (int t = 0; t < T; ++t) {
    workers[static_cast<size_t>(t)].rng =
        dpss::RandomEngine(0x10adull * 2654435761u + static_cast<uint64_t>(t));
    auto c = Client::Connect(opt.host, opt.port);
    if (!c.ok()) {
      std::fprintf(stderr, "loadgen: connect failed: %s\n",
                   c.status().message());
      return 1;
    }
    clients.push_back(std::move(*c));
  }

  // The hot item for the flash-crowd phase (inserted up front so the phase
  // list can exclude "load").
  ItemId hot_id = 0;
  {
    auto ins = clients[0]->Insert(Weight{1000, 0});
    if (!ins.ok()) {
      std::fprintf(stderr, "loadgen: seed insert failed: %s\n",
                   ins.status().message());
      return 1;
    }
    hot_id = *ins;
    // Deliberately NOT in workers[0].ids: the mixed phases erase from that
    // pool, and the flash-crowd phase needs the hot item alive.
    workers[0].acked[hot_id] = Weight{1000, 0};
  }

  std::vector<PhaseResult> results;
  auto phase_enabled = [&](const char* name) {
    return opt.phases.find(name) != std::string::npos;
  };

  auto run_phase = [&](const std::string& name,
                       const std::function<void(int, WorkerState&, Client&)>&
                           body) {
    PhaseResult pr;
    pr.name = name;
    const uint64_t t0 = NowNs();
    std::vector<std::thread> threads;
    for (int t = 0; t < T; ++t) {
      threads.emplace_back([&, t] {
        body(t, workers[static_cast<size_t>(t)], *clients[static_cast<size_t>(t)]);
      });
    }
    for (auto& th : threads) th.join();
    pr.wall_ns = NowNs() - t0;
    for (auto& ws : workers) MergeWorker(pr, ws);
    const double qps = static_cast<double>(pr.counts.total()) * 1e9 /
                       static_cast<double>(pr.wall_ns);
    std::printf("loadgen: %-10s %9llu ok %7llu shed %5llu err  %10.0f "
                "req/s  p50 %llu ns  p99 %llu ns\n",
                name.c_str(),
                static_cast<unsigned long long>(pr.counts.ops),
                static_cast<unsigned long long>(pr.counts.shed),
                static_cast<unsigned long long>(pr.counts.errors), qps,
                static_cast<unsigned long long>(
                    pr.latency.ValueAtQuantile(0.50)),
                static_cast<unsigned long long>(
                    pr.latency.ValueAtQuantile(0.99)));
    std::fflush(stdout);
    results.push_back(std::move(pr));
  };

  if (phase_enabled("load")) {
    const uint64_t per_thread = opt.items / static_cast<uint64_t>(T);
    run_phase("load", [&](int, WorkerState& ws, Client& c) {
      uint64_t issued = 0;
      RunPipelined(
          c, opt.window, ws,
          [&](Request* req) {
            if (issued >= per_thread) return false;
            ++issued;
            *req = MakeInsert(ws);
            return true;
          },
          [&](const Request& req, const Response& resp) {
            AckMutation(ws, req, resp);
          });
    });
  }

  auto timed_mix = [&](const char* name, int mutation_pct) {
    run_phase(name, [&, mutation_pct](int, WorkerState& ws, Client& c) {
      const uint64_t deadline =
          NowNs() + static_cast<uint64_t>(opt.duration_s * 1e9);
      RunPipelined(
          c, opt.window, ws,
          [&](Request* req) {
            if (NowNs() >= deadline) return false;
            *req = MakeMixed(ws, mutation_pct);
            return true;
          },
          [&](const Request& req, const Response& resp) {
            AckMutation(ws, req, resp);
          });
    });
  };
  if (phase_enabled("mix90")) timed_mix("mix90", 10);
  if (phase_enabled("mix50")) timed_mix("mix50", 50);

  if (phase_enabled("hotkey")) {
    run_phase("hotkey", [&](int t, WorkerState& ws, Client& c) {
      const uint64_t deadline =
          NowNs() + static_cast<uint64_t>(opt.duration_s * 1e9);
      RunPipelined(
          c, opt.window, ws,
          [&](Request* req) {
            if (NowNs() >= deadline) return false;
            const uint64_t roll = ws.rng.NextWord() % 10;
            if (roll < 4 && t == 0) {
              // Only the owning thread mutates the hot item, so the acked
              // bookkeeping stays single-writer; everyone else reads it.
              req->type = MsgType::kSetWeight;
              req->id = hot_id;
              req->weight = Weight{1 + ws.rng.NextWord() % 1000, 0};
            } else if (roll < 7) {
              req->type = MsgType::kGetWeight;
              req->id = hot_id;
            } else {
              req->type = MsgType::kSample;
              req->alpha = Rational64{1, 1};
              req->beta = Rational64{0, 1};
              req->max_ids = 4096;
            }
            return true;
          },
          [&](const Request& req, const Response& resp) {
            AckMutation(ws, req, resp);
          });
    });
  }

  if (phase_enabled("overdrive")) {
    run_phase("overdrive", [&](int, WorkerState& ws, Client& c) {
      const uint64_t deadline =
          NowNs() + static_cast<uint64_t>(opt.duration_s * 1e9);
      RunPipelined(
          c, opt.overdrive_window, ws,
          [&](Request* req) {
            if (NowNs() >= deadline) return false;
            req->type = MsgType::kSample;
            req->alpha = Rational64{1, 1};
            req->beta = Rational64{0, 1};
            req->max_ids = 256;
            return true;
          },
          [](const Request&, const Response&) {});
    });
  }

  if (!opt.ack_log.empty()) {
    std::FILE* f = std::fopen(opt.ack_log.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "loadgen: cannot write %s\n", opt.ack_log.c_str());
      return 1;
    }
    uint64_t n = 0;
    for (const WorkerState& ws : workers) {
      for (const auto& [id, w] : ws.acked) {
        std::fprintf(f, "%llu %llu %u\n",
                     static_cast<unsigned long long>(id),
                     static_cast<unsigned long long>(w.mult), w.exp);
        ++n;
      }
    }
    std::fclose(f);
    std::printf("loadgen: ack log %s (%llu live acked writes)\n",
                opt.ack_log.c_str(), static_cast<unsigned long long>(n));
  }

  WriteBenchJson(opt.json_path, results);
  return 0;
}
