// dpss_trace: deterministic trace-replay harness for every registered
// backend (docs/WORKLOADS.md).
//
// A *trace* is a flat list of operations over an anonymous live-item pool:
// inserts append to the pool, erase/set address it by index (swap-remove on
// erase), queries draw from whatever the pool holds. The same trace
// therefore replays against any backend — in process through the registry,
// or over the wire against a live dpss-serverd — and, with a fixed seed,
// byte-for-byte identically across runs.
//
// Built-in scenarios (regenerated from --seed; see docs/WORKLOADS.md):
//
//   zipf_sweep    Zipf(s) weights swept through s = 0.5, 1.0, 1.5, with
//                 queries after each re-skew — probes skew sensitivity.
//   flash_crowd   one item spikes x10000 mid-trace and later recovers —
//                 probes hot-key handling and top-k under a moving head.
//   churn_storm   insert/erase-heavy mix at a steady pool size — probes
//                 structural maintenance cost.
//   decay_stream  periodic Decay(63/64) over a steady insert stream with
//                 sample/top-k/distinct reads — probes the O(1)-metadata
//                 decay path against the O(n) rewrite backends.
//
// Output: one row per (scenario, backend) in the standard bench JSON shape
// consumed by tools/bench_diff:
//   {"name": "trace/<scenario>/<backend>", "ns_per_query": <mean ns/op>,
//    "iterations": <ops>, ...}
// plus an optional --markdown table for the docs.
//
// Usage:
//   dpss_trace [--backends halt,naive,...] [--scenarios zipf_sweep,...]
//              [--items N] [--seed S] [--json PATH] [--markdown PATH]
//              [--dump-dir DIR] [--trace FILE]
//              [--host H --port P]        # replay against dpss-serverd
//
// Text trace format (one op per line; '#' starts a comment):
//   insert <mult> <exp>        insert an item with weight mult*2^exp
//   erase <idx>                erase the idx-th live item (swap-remove)
//   set <idx> <mult> <exp>     set the idx-th live item's weight
//   sample <an> <ad> <bn> <bd> one PSS query with alpha=an/ad, beta=bn/bd
//   distinct <k>               k-distinct weighted draw (no replacement)
//   topk <k>                   k heaviest items
//   decay <num> <den>          scale every weight by num/den
// Indices are taken modulo the current pool size, so traces never go
// out of range even after heavy churn.

#include <time.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/sampler.h"
#include "server/client.h"
#include "util/random.h"

namespace {

using dpss::ItemId;
using dpss::RandomEngine;
using dpss::Rational64;
using dpss::Sampler;
using dpss::SamplerSpec;
using dpss::Status;
using dpss::Weight;

uint64_t NowNs() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

struct TraceOp {
  enum class Kind : uint8_t {
    kInsert,    // a = mult, b = exp
    kErase,     // a = pool index
    kSet,       // a = pool index, b = mult, c = exp
    kSample,    // a/b = alpha, c/d = beta
    kDistinct,  // a = k
    kTopK,      // a = k
    kDecay,     // a/b = factor
  };
  Kind kind = Kind::kInsert;
  uint64_t a = 0, b = 0, c = 0, d = 0;
};

struct Trace {
  std::string name;
  std::vector<TraceOp> ops;
};

struct Options {
  std::string backends = "halt,naive,rebuild,bucket_jump,odss,sharded4:halt";
  std::string scenarios = "zipf_sweep,flash_crowd,churn_storm,decay_stream";
  uint64_t items = 4000;
  uint64_t seed = 0x7eaceull;
  std::string json_path = "BENCH_workloads.json";
  std::string markdown_path;
  std::string dump_dir;
  std::string trace_file;
  std::string host = "127.0.0.1";
  int port = 0;  // 0 = in-process replay
};

// Outcome of one (scenario, backend) replay.
struct RunResult {
  std::string scenario;
  std::string backend;
  uint64_t ops = 0;         // ops executed (excludes skipped)
  uint64_t skipped = 0;     // ops the target cannot express (server mode)
  uint64_t errors = 0;      // non-Ok statuses (should stay 0)
  uint64_t sampled_ids = 0; // total ids returned by all queries
  uint64_t wall_ns = 1;
  double ns_per_op() const {
    return ops > 0 ? static_cast<double>(wall_ns) / static_cast<double>(ops)
                   : 0.0;
  }
};

// --- Scenario generators --------------------------------------------------

// Zipf-ish weight for 1-based rank r at skew s, floored to >= 1.
uint64_t ZipfWeight(uint64_t rank, double skew, double scale) {
  const double w = scale / std::pow(static_cast<double>(rank), skew);
  return w < 1.0 ? 1 : static_cast<uint64_t>(w);
}

void PushSample(Trace* t) {
  t->ops.push_back({TraceOp::Kind::kSample, 1, 1, 0, 1});
}

Trace MakeZipfSweep(uint64_t items, RandomEngine& rng) {
  Trace t{"zipf_sweep", {}};
  for (uint64_t i = 0; i < items; ++i) {
    t.ops.push_back(
        {TraceOp::Kind::kInsert, ZipfWeight(i + 1, 0.5, 1e6), 0, 0, 0});
  }
  for (const double skew : {0.5, 1.0, 1.5}) {
    // Re-skew the whole pool, then read it every way we know how.
    for (uint64_t i = 0; i < items; ++i) {
      t.ops.push_back(
          {TraceOp::Kind::kSet, i, ZipfWeight(i + 1, skew, 1e6), 0, 0});
    }
    for (int q = 0; q < 200; ++q) {
      PushSample(&t);
      if (q % 10 == 0) t.ops.push_back({TraceOp::Kind::kTopK, 10, 0, 0, 0});
      if (q % 25 == 0) {
        t.ops.push_back({TraceOp::Kind::kDistinct, 8, 0, 0, 0});
      }
    }
    (void)rng;
  }
  return t;
}

Trace MakeFlashCrowd(uint64_t items, RandomEngine& rng) {
  Trace t{"flash_crowd", {}};
  for (uint64_t i = 0; i < items; ++i) {
    t.ops.push_back(
        {TraceOp::Kind::kInsert, 1 + rng.NextWord() % 100, 0, 0, 0});
  }
  const uint64_t hot = rng.NextWord() % items;
  auto reads = [&](int n) {
    for (int q = 0; q < n; ++q) {
      PushSample(&t);
      if (q % 8 == 0) t.ops.push_back({TraceOp::Kind::kTopK, 5, 0, 0, 0});
    }
  };
  reads(150);
  t.ops.push_back({TraceOp::Kind::kSet, hot, 1'000'000, 0, 0});  // the spike
  reads(150);
  t.ops.push_back({TraceOp::Kind::kSet, hot, 50, 0, 0});  // crowd moves on
  reads(150);
  return t;
}

Trace MakeChurnStorm(uint64_t items, RandomEngine& rng) {
  Trace t{"churn_storm", {}};
  for (uint64_t i = 0; i < items / 2; ++i) {
    t.ops.push_back(
        {TraceOp::Kind::kInsert, 1 + rng.NextWord() % 1000, 0, 0, 0});
  }
  for (uint64_t i = 0; i < items * 4; ++i) {
    const uint64_t roll = rng.NextWord() % 10;
    if (roll < 4) {
      t.ops.push_back(
          {TraceOp::Kind::kInsert, 1 + rng.NextWord() % 1000, 0, 0, 0});
    } else if (roll < 8) {
      t.ops.push_back({TraceOp::Kind::kErase, rng.NextWord(), 0, 0, 0});
    } else {
      PushSample(&t);
    }
  }
  return t;
}

Trace MakeDecayStream(uint64_t items, RandomEngine& rng) {
  Trace t{"decay_stream", {}};
  for (uint64_t i = 0; i < items; ++i) {
    t.ops.push_back(
        {TraceOp::Kind::kInsert, 1 + rng.NextWord() % 1000, 3, 0, 0});
  }
  for (int round = 0; round < 40; ++round) {
    for (int i = 0; i < 25; ++i) {
      t.ops.push_back(
          {TraceOp::Kind::kInsert, 1 + rng.NextWord() % 1000, 3, 0, 0});
    }
    t.ops.push_back({TraceOp::Kind::kDecay, 63, 64, 0, 0});
    for (int q = 0; q < 20; ++q) PushSample(&t);
    t.ops.push_back({TraceOp::Kind::kTopK, 10, 0, 0, 0});
    t.ops.push_back({TraceOp::Kind::kDistinct, 8, 0, 0, 0});
  }
  return t;
}

std::vector<Trace> BuildScenarios(const Options& opt) {
  std::vector<Trace> traces;
  auto enabled = [&](const char* name) {
    return opt.scenarios.find(name) != std::string::npos;
  };
  // One engine per scenario, re-seeded from the base seed, so enabling or
  // reordering scenarios never changes another scenario's trace.
  if (enabled("zipf_sweep")) {
    RandomEngine rng(opt.seed ^ 0x21f5ull);
    traces.push_back(MakeZipfSweep(opt.items, rng));
  }
  if (enabled("flash_crowd")) {
    RandomEngine rng(opt.seed ^ 0xf1a5ull);
    traces.push_back(MakeFlashCrowd(opt.items, rng));
  }
  if (enabled("churn_storm")) {
    RandomEngine rng(opt.seed ^ 0xc442ull);
    traces.push_back(MakeChurnStorm(opt.items, rng));
  }
  if (enabled("decay_stream")) {
    RandomEngine rng(opt.seed ^ 0xdecaull);
    traces.push_back(MakeDecayStream(opt.items, rng));
  }
  return traces;
}

// --- Trace file I/O -------------------------------------------------------

bool DumpTrace(const Trace& t, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "# dpss_trace scenario %s (%zu ops)\n", t.name.c_str(),
               t.ops.size());
  for (const TraceOp& op : t.ops) {
    switch (op.kind) {
      case TraceOp::Kind::kInsert:
        std::fprintf(f, "insert %llu %llu\n",
                     static_cast<unsigned long long>(op.a),
                     static_cast<unsigned long long>(op.b));
        break;
      case TraceOp::Kind::kErase:
        std::fprintf(f, "erase %llu\n",
                     static_cast<unsigned long long>(op.a));
        break;
      case TraceOp::Kind::kSet:
        std::fprintf(f, "set %llu %llu %llu\n",
                     static_cast<unsigned long long>(op.a),
                     static_cast<unsigned long long>(op.b),
                     static_cast<unsigned long long>(op.c));
        break;
      case TraceOp::Kind::kSample:
        std::fprintf(f, "sample %llu %llu %llu %llu\n",
                     static_cast<unsigned long long>(op.a),
                     static_cast<unsigned long long>(op.b),
                     static_cast<unsigned long long>(op.c),
                     static_cast<unsigned long long>(op.d));
        break;
      case TraceOp::Kind::kDistinct:
        std::fprintf(f, "distinct %llu\n",
                     static_cast<unsigned long long>(op.a));
        break;
      case TraceOp::Kind::kTopK:
        std::fprintf(f, "topk %llu\n",
                     static_cast<unsigned long long>(op.a));
        break;
      case TraceOp::Kind::kDecay:
        std::fprintf(f, "decay %llu %llu\n",
                     static_cast<unsigned long long>(op.a),
                     static_cast<unsigned long long>(op.b));
        break;
    }
  }
  std::fclose(f);
  return true;
}

bool LoadTrace(const std::string& path, Trace* t) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return false;
  // Name = file basename without extension.
  const size_t slash = path.find_last_of('/');
  std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  const size_t dot = base.find_last_of('.');
  if (dot != std::string::npos) base.resize(dot);
  t->name = base;
  char line[256];
  int lineno = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    ++lineno;
    char word[32];
    unsigned long long a = 0, b = 0, c = 0, d = 0;
    const int n = std::sscanf(line, "%31s %llu %llu %llu %llu", word, &a,
                              &b, &c, &d);
    if (n < 1 || word[0] == '#') continue;
    TraceOp op;
    op.a = a;
    op.b = b;
    op.c = c;
    op.d = d;
    bool ok = true;
    if (std::strcmp(word, "insert") == 0 && n >= 3) {
      op.kind = TraceOp::Kind::kInsert;
    } else if (std::strcmp(word, "erase") == 0 && n >= 2) {
      op.kind = TraceOp::Kind::kErase;
    } else if (std::strcmp(word, "set") == 0 && n >= 4) {
      op.kind = TraceOp::Kind::kSet;
    } else if (std::strcmp(word, "sample") == 0 && n >= 5) {
      op.kind = TraceOp::Kind::kSample;
    } else if (std::strcmp(word, "distinct") == 0 && n >= 2) {
      op.kind = TraceOp::Kind::kDistinct;
    } else if (std::strcmp(word, "topk") == 0 && n >= 2) {
      op.kind = TraceOp::Kind::kTopK;
    } else if (std::strcmp(word, "decay") == 0 && n >= 3) {
      op.kind = TraceOp::Kind::kDecay;
    } else {
      ok = false;
    }
    if (!ok) {
      std::fprintf(stderr, "dpss_trace: %s:%d: malformed line\n",
                   path.c_str(), lineno);
      std::fclose(f);
      return false;
    }
    t->ops.push_back(op);
  }
  std::fclose(f);
  return true;
}

// --- Replay ---------------------------------------------------------------

// In-process replay through the registry.
bool ReplayLocal(const Trace& t, const std::string& backend,
                 const Options& opt, RunResult* r) {
  SamplerSpec spec;
  spec.seed = opt.seed;
  auto made = dpss::MakeSamplerChecked(backend, spec);
  if (!made.ok()) {
    std::fprintf(stderr, "dpss_trace: backend %s: %s\n", backend.c_str(),
                 made.status().message());
    return false;
  }
  Sampler& s = **made;
  std::vector<ItemId> pool;
  std::vector<ItemId> out;
  const uint64_t t0 = NowNs();
  for (const TraceOp& op : t.ops) {
    Status st;
    switch (op.kind) {
      case TraceOp::Kind::kInsert: {
        auto id = s.InsertWeight(
            Weight{op.a, static_cast<uint32_t>(op.b)});
        st = id.status();
        if (id.ok()) pool.push_back(*id);
        break;
      }
      case TraceOp::Kind::kErase: {
        if (pool.empty()) continue;
        const size_t i = op.a % pool.size();
        st = s.Erase(pool[i]);
        pool[i] = pool.back();
        pool.pop_back();
        break;
      }
      case TraceOp::Kind::kSet: {
        if (pool.empty()) continue;
        st = s.SetWeight(pool[op.a % pool.size()],
                         Weight{op.b, static_cast<uint32_t>(op.c)});
        break;
      }
      case TraceOp::Kind::kSample:
        st = s.SampleInto(Rational64{op.a, op.b}, Rational64{op.c, op.d},
                          &out);
        if (st.ok()) r->sampled_ids += out.size();
        break;
      case TraceOp::Kind::kDistinct:
        st = s.SampleDistinct(op.a, &out);
        if (st.ok()) r->sampled_ids += out.size();
        break;
      case TraceOp::Kind::kTopK:
        st = s.TopK(op.a, &out);
        if (st.ok()) r->sampled_ids += out.size();
        break;
      case TraceOp::Kind::kDecay:
        st = s.Decay(Rational64{op.a, op.b});
        break;
    }
    ++r->ops;
    if (!st.ok()) ++r->errors;
  }
  r->wall_ns = NowNs() - t0;
  if (r->wall_ns == 0) r->wall_ns = 1;
  return true;
}

// Wire replay against a live dpss-serverd. The wire protocol has no
// distinct/topk/decay verbs, so those ops are counted as skipped rather
// than silently folded into the timing.
bool ReplayServer(const Trace& t, const Options& opt, RunResult* r) {
  auto conn = dpss::server::Client::Connect(opt.host, opt.port);
  if (!conn.ok()) {
    std::fprintf(stderr, "dpss_trace: connect failed: %s\n",
                 conn.status().message());
    return false;
  }
  dpss::server::Client& c = **conn;
  std::vector<ItemId> pool;
  const uint64_t t0 = NowNs();
  for (const TraceOp& op : t.ops) {
    Status st;
    switch (op.kind) {
      case TraceOp::Kind::kInsert: {
        auto id = c.Insert(Weight{op.a, static_cast<uint32_t>(op.b)});
        st = id.status();
        if (id.ok()) pool.push_back(*id);
        break;
      }
      case TraceOp::Kind::kErase: {
        if (pool.empty()) continue;
        const size_t i = op.a % pool.size();
        st = c.Erase(pool[i]);
        pool[i] = pool.back();
        pool.pop_back();
        break;
      }
      case TraceOp::Kind::kSet: {
        if (pool.empty()) continue;
        st = c.SetWeight(pool[op.a % pool.size()],
                         Weight{op.b, static_cast<uint32_t>(op.c)});
        break;
      }
      case TraceOp::Kind::kSample: {
        auto ids = c.Sample(Rational64{op.a, op.b}, Rational64{op.c, op.d},
                            /*max_ids=*/0);
        st = ids.status();
        if (ids.ok()) r->sampled_ids += ids->size();
        break;
      }
      case TraceOp::Kind::kDistinct:
      case TraceOp::Kind::kTopK:
      case TraceOp::Kind::kDecay:
        ++r->skipped;
        continue;
    }
    ++r->ops;
    if (!st.ok()) ++r->errors;
  }
  r->wall_ns = NowNs() - t0;
  if (r->wall_ns == 0) r->wall_ns = 1;
  return true;
}

// --- Output ---------------------------------------------------------------

bool WriteBenchJson(const std::string& path,
                    const std::vector<RunResult>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "dpss_trace: cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    std::fprintf(f,
                 "  {\"name\": \"trace/%s/%s\", \"ns_per_query\": %.2f, "
                 "\"iterations\": %llu, \"errors\": %llu, "
                 "\"skipped\": %llu, \"sampled_ids\": %llu}%s\n",
                 r.scenario.c_str(), r.backend.c_str(), r.ns_per_op(),
                 static_cast<unsigned long long>(r.ops),
                 static_cast<unsigned long long>(r.errors),
                 static_cast<unsigned long long>(r.skipped),
                 static_cast<unsigned long long>(r.sampled_ids),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("dpss_trace: wrote %s (%zu rows)\n", path.c_str(),
              results.size());
  return true;
}

void WriteMarkdown(const std::string& path,
                   const std::vector<Trace>& traces,
                   const std::vector<RunResult>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "dpss_trace: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "<!-- generated by dpss_trace; do not edit by hand -->\n");
  std::fprintf(f, "| scenario | ops |");
  std::vector<std::string> backends;
  for (const RunResult& r : results) {
    bool seen = false;
    for (const std::string& b : backends) seen = seen || b == r.backend;
    if (!seen) backends.push_back(r.backend);
  }
  for (const std::string& b : backends) {
    std::fprintf(f, " %s ns/op |", b.c_str());
  }
  std::fprintf(f, "\n|---|---|");
  for (size_t i = 0; i < backends.size(); ++i) std::fprintf(f, "---|");
  std::fprintf(f, "\n");
  for (const Trace& t : traces) {
    uint64_t ops = 0;
    for (const RunResult& r : results) {
      if (r.scenario == t.name) ops = r.ops;
    }
    std::fprintf(f, "| %s | %llu |", t.name.c_str(),
                 static_cast<unsigned long long>(ops));
    for (const std::string& b : backends) {
      bool found = false;
      for (const RunResult& r : results) {
        if (r.scenario == t.name && r.backend == b) {
          std::fprintf(f, " %.0f |", r.ns_per_op());
          found = true;
        }
      }
      if (!found) std::fprintf(f, " — |");
    }
    std::fprintf(f, "\n");
  }
  std::fclose(f);
  std::printf("dpss_trace: wrote %s\n", path.c_str());
}

std::vector<std::string> SplitCsv(const std::string& s) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= s.size()) {
    size_t comma = s.find(',', start);
    if (comma == std::string::npos) comma = s.size();
    if (comma > start) parts.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return parts;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "dpss_trace: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--backends") opt.backends = next();
    else if (arg == "--scenarios") opt.scenarios = next();
    else if (arg == "--items") opt.items = std::strtoull(next(), nullptr, 10);
    else if (arg == "--seed") opt.seed = std::strtoull(next(), nullptr, 10);
    else if (arg == "--json") opt.json_path = next();
    else if (arg == "--markdown") opt.markdown_path = next();
    else if (arg == "--dump-dir") opt.dump_dir = next();
    else if (arg == "--trace") opt.trace_file = next();
    else if (arg == "--host") opt.host = next();
    else if (arg == "--port") opt.port = std::atoi(next());
    else {
      std::fprintf(stderr, "dpss_trace: unknown flag %s\n", arg.c_str());
      return 2;
    }
  }
  if (opt.items == 0) {
    std::fprintf(stderr, "dpss_trace: --items must be >= 1\n");
    return 2;
  }

  std::vector<Trace> traces;
  if (!opt.trace_file.empty()) {
    Trace t;
    if (!LoadTrace(opt.trace_file, &t)) return 1;
    traces.push_back(std::move(t));
  } else {
    traces = BuildScenarios(opt);
  }
  if (traces.empty()) {
    std::fprintf(stderr, "dpss_trace: no scenarios selected\n");
    return 2;
  }

  if (!opt.dump_dir.empty()) {
    for (const Trace& t : traces) {
      const std::string path = opt.dump_dir + "/" + t.name + ".trace";
      if (!DumpTrace(t, path)) {
        std::fprintf(stderr, "dpss_trace: cannot write %s\n", path.c_str());
        return 1;
      }
      std::printf("dpss_trace: dumped %s (%zu ops)\n", path.c_str(),
                  t.ops.size());
    }
  }

  std::vector<RunResult> results;
  if (opt.port != 0) {
    for (const Trace& t : traces) {
      RunResult r;
      r.scenario = t.name;
      r.backend = "server";
      if (!ReplayServer(t, opt, &r)) return 1;
      std::printf("dpss_trace: %-12s %-16s %8llu ops %6llu skipped "
                  "%4llu err  %8.0f ns/op\n",
                  t.name.c_str(), "server",
                  static_cast<unsigned long long>(r.ops),
                  static_cast<unsigned long long>(r.skipped),
                  static_cast<unsigned long long>(r.errors), r.ns_per_op());
      results.push_back(std::move(r));
    }
  } else {
    const std::vector<std::string> backends = SplitCsv(opt.backends);
    for (const Trace& t : traces) {
      for (const std::string& backend : backends) {
        RunResult r;
        r.scenario = t.name;
        r.backend = backend;
        if (!ReplayLocal(t, backend, opt, &r)) return 1;
        std::printf("dpss_trace: %-12s %-16s %8llu ops %4llu err  "
                    "%8.0f ns/op\n",
                    t.name.c_str(), backend.c_str(),
                    static_cast<unsigned long long>(r.ops),
                    static_cast<unsigned long long>(r.errors),
                    r.ns_per_op());
        results.push_back(std::move(r));
      }
    }
  }

  uint64_t total_errors = 0;
  for (const RunResult& r : results) total_errors += r.errors;
  if (!WriteBenchJson(opt.json_path, results)) return 1;
  if (!opt.markdown_path.empty()) {
    WriteMarkdown(opt.markdown_path, traces, results);
  }
  if (total_errors > 0) {
    std::fprintf(stderr, "dpss_trace: %llu ops returned errors\n",
                 static_cast<unsigned long long>(total_errors));
    return 1;
  }
  return 0;
}
