// Experiment E7 — space consumption vs n.
//
// Paper claim (Theorem 1.1): O(n) words at all times, including after
// shrinking (global rebuilding keeps capacity proportional to the live
// size). Expected shape: bytes/item flat in n, and bytes/item after
// deleting 7/8 of the items back near the fresh-build figure.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/dpss_sampler.h"

namespace {

void BM_MemoryPerItemFresh(benchmark::State& state) {
  const uint64_t n = state.range(0);
  const auto weights =
      dpss::bench::MakeWeights(n, dpss::bench::WeightDist::kUniform, 1);
  double bytes_per_item = 0;
  for (auto _ : state) {
    dpss::DpssSampler s(weights, 2);
    bytes_per_item = static_cast<double>(s.ApproxMemoryBytes()) /
                     static_cast<double>(n);
    benchmark::DoNotOptimize(bytes_per_item);
  }
  state.counters["bytes_per_item"] = bytes_per_item;
}
BENCHMARK(BM_MemoryPerItemFresh)->RangeMultiplier(4)->Range(1 << 10, 1 << 20);

void BM_MemoryPerItemAfterShrink(benchmark::State& state) {
  const uint64_t n = state.range(0);
  const auto weights =
      dpss::bench::MakeWeights(n, dpss::bench::WeightDist::kUniform, 3);
  double bytes_per_item = 0;
  for (auto _ : state) {
    dpss::DpssSampler s(weights, 4);
    for (uint64_t id = 0; id < n - n / 8; ++id) s.Erase(id);
    bytes_per_item = static_cast<double>(s.ApproxMemoryBytes()) /
                     static_cast<double>(s.size());
    benchmark::DoNotOptimize(bytes_per_item);
  }
  state.counters["bytes_per_live_item"] = bytes_per_item;
}
BENCHMARK(BM_MemoryPerItemAfterShrink)
    ->RangeMultiplier(4)
    ->Range(1 << 12, 1 << 20);

void BM_LookupTableCache(benchmark::State& state) {
  // Size of the lazily built lookup-table row cache after heavy querying —
  // bounded by the number of distinct configurations actually touched.
  const uint64_t n = state.range(0);
  const auto weights = dpss::bench::MakeWeights(
      n, dpss::bench::WeightDist::kExponentialSpread, 5);
  dpss::DpssSampler s(weights, 6);
  dpss::RandomEngine rng(7);
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      auto t = s.Sample({1, static_cast<uint64_t>(1 + i)}, {0, 1}, rng);
      benchmark::DoNotOptimize(t);
    }
  }
  state.counters["cached_rows"] =
      static_cast<double>(s.halt().lookup_table().CachedRows());
  state.counters["cache_bytes"] =
      static_cast<double>(s.halt().lookup_table().CacheBytes());
}
BENCHMARK(BM_LookupTableCache)->RangeMultiplier(16)->Range(1 << 12, 1 << 20);

}  // namespace

BENCHMARK_MAIN();
