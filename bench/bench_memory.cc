// Experiment E7 — space consumption vs n.
//
// Paper claim (Theorem 1.1): O(n) words at all times, including after
// shrinking (global rebuilding keeps capacity proportional to the live
// size). Expected shape: bytes/item flat in n, and bytes/item after
// deleting 7/8 of the items back near the fresh-build figure.
//
// Every run is teed into BENCH_memory.json (the standard BENCH_*.json
// shape) so bytes/item per backend and the slab occupancy/fragmentation
// counters are diffable across PRs with tools/bench_diff.

#include <benchmark/benchmark.h>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "core/dpss_sampler.h"
#include "core/sampler.h"

namespace {

// Attaches the aggregated slab counters of the HALT hierarchy: how full the
// live bucket extents are (occupancy) and how much of the arena is neither
// live data nor reusable extents (fragmentation).
void ReportSlabCounters(benchmark::State& state, const dpss::DpssSampler& s) {
  const dpss::BucketStructure::SlabStats stats = s.halt().SlabStatsTotal();
  state.counters["slab_occupancy"] = stats.Occupancy();
  state.counters["slab_fragmentation"] = stats.Fragmentation();
  state.counters["slab_capacity_bytes"] =
      static_cast<double>(stats.capacity_bytes);
  // The relocatable-arena footprint behind the slabs: pages the v2
  // snapshot image would cover, and how many an incremental checkpoint
  // would have to write right now (the dirty ratio is the expected
  // delta/full size ratio).
  state.counters["arena_pages"] = static_cast<double>(stats.arena_page_count);
  state.counters["arena_dirty_pages"] =
      static_cast<double>(stats.arena_dirty_pages);
  state.counters["arena_dirty_ratio"] =
      stats.arena_page_count == 0
          ? 0.0
          : static_cast<double>(stats.arena_dirty_pages) /
                static_cast<double>(stats.arena_page_count);
}

void BM_MemoryPerItemFresh(benchmark::State& state) {
  const uint64_t n = state.range(0);
  const auto weights =
      dpss::bench::MakeWeights(n, dpss::bench::WeightDist::kUniform, 1);
  double bytes_per_item = 0;
  for (auto _ : state) {
    dpss::DpssSampler s(weights, 2);
    bytes_per_item = static_cast<double>(s.ApproxMemoryBytes()) /
                     static_cast<double>(n);
    benchmark::DoNotOptimize(bytes_per_item);
  }
  state.counters["bytes_per_item"] = bytes_per_item;
  {
    dpss::DpssSampler s(weights, 2);
    ReportSlabCounters(state, s);
  }
}
BENCHMARK(BM_MemoryPerItemFresh)->RangeMultiplier(4)->Range(1 << 10, 1 << 20);

void BM_MemoryPerItemAfterShrink(benchmark::State& state) {
  const uint64_t n = state.range(0);
  const auto weights =
      dpss::bench::MakeWeights(n, dpss::bench::WeightDist::kUniform, 3);
  double bytes_per_item = 0;
  for (auto _ : state) {
    dpss::DpssSampler s(weights, 4);
    for (uint64_t id = 0; id < n - n / 8; ++id) s.Erase(id);
    bytes_per_item = static_cast<double>(s.ApproxMemoryBytes()) /
                     static_cast<double>(s.size());
    benchmark::DoNotOptimize(bytes_per_item);
  }
  state.counters["bytes_per_live_item"] = bytes_per_item;
  {
    dpss::DpssSampler s(weights, 4);
    for (uint64_t id = 0; id < n - n / 8; ++id) s.Erase(id);
    ReportSlabCounters(state, s);
  }
}
BENCHMARK(BM_MemoryPerItemAfterShrink)
    ->RangeMultiplier(4)
    ->Range(1 << 12, 1 << 20);

// Bytes/item across the registered backends at a fixed n, so the HALT
// structure's footprint is comparable against the baselines in one series.
// n is modest because the non-parameterized baselines pay Ω(n) per insert.
void BM_MemoryPerItemBackend(benchmark::State& state,
                             const std::string& backend) {
  constexpr uint64_t kN = 1 << 14;
  const auto weights =
      dpss::bench::MakeWeights(kN, dpss::bench::WeightDist::kUniform, 8);
  dpss::SamplerSpec spec;
  spec.seed = 9;
  double bytes_per_item = 0;
  for (auto _ : state) {
    auto s = dpss::MakeSampler(backend, spec);
    if (s == nullptr || !s->InsertBatch(weights, nullptr).ok()) {
      state.SkipWithError("backend unavailable");
      return;
    }
    bytes_per_item = static_cast<double>(s->ApproxMemoryBytes()) /
                     static_cast<double>(kN);
    benchmark::DoNotOptimize(bytes_per_item);
  }
  state.counters["bytes_per_item"] = bytes_per_item;
  state.counters["n"] = static_cast<double>(kN);
}
BENCHMARK_CAPTURE(BM_MemoryPerItemBackend, halt, "halt");
BENCHMARK_CAPTURE(BM_MemoryPerItemBackend, naive, "naive");
BENCHMARK_CAPTURE(BM_MemoryPerItemBackend, rebuild, "rebuild");
BENCHMARK_CAPTURE(BM_MemoryPerItemBackend, bucket_jump, "bucket_jump");
BENCHMARK_CAPTURE(BM_MemoryPerItemBackend, odss, "odss");

void BM_LookupTableCache(benchmark::State& state) {
  // Size of the lazily built lookup-table row cache after heavy querying —
  // bounded by the number of distinct configurations actually touched.
  const uint64_t n = state.range(0);
  const auto weights = dpss::bench::MakeWeights(
      n, dpss::bench::WeightDist::kExponentialSpread, 5);
  dpss::DpssSampler s(weights, 6);
  dpss::RandomEngine rng(7);
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      auto t = s.Sample({1, static_cast<uint64_t>(1 + i)}, {0, 1}, rng);
      benchmark::DoNotOptimize(t);
    }
  }
  state.counters["cached_rows"] =
      static_cast<double>(s.halt().lookup_table().CachedRows());
  state.counters["cache_bytes"] =
      static_cast<double>(s.halt().lookup_table().CacheBytes());
}
BENCHMARK(BM_LookupTableCache)->RangeMultiplier(16)->Range(1 << 12, 1 << 20);

}  // namespace

int main(int argc, char** argv) {
  return dpss::bench::RunWithJsonReport(argc, argv, "BENCH_memory.json");
}
