// Experiment E2 — query time vs expected output size μ at fixed n.
//
// Paper claim (Theorem 4.8 / Lemma 4.11): query time is O(1 + μ). Expected
// shape: an affine line in μ — a constant dispatch cost plus a per-output
// cost.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/dpss_sampler.h"

namespace {

constexpr uint64_t kN = 1 << 16;

void BM_HaltQueryByMu(benchmark::State& state) {
  const uint64_t mu = state.range(0);
  const auto weights =
      dpss::bench::MakeWeights(kN, dpss::bench::WeightDist::kUniform, 1);
  dpss::DpssSampler s(weights, 2);
  dpss::RandomEngine rng(3);
  const dpss::Rational64 alpha = dpss::bench::AlphaForMu(mu);
  uint64_t out_items = 0;
  for (auto _ : state) {
    auto t = s.Sample(alpha, {0, 1}, rng);
    out_items += t.size();
    benchmark::DoNotOptimize(t);
  }
  const double realized =
      static_cast<double>(out_items) / static_cast<double>(state.iterations());
  state.counters["mu"] = realized;
  state.SetItemsProcessed(static_cast<int64_t>(out_items));
}
BENCHMARK(BM_HaltQueryByMu)->RangeMultiplier(4)->Range(1, 1 << 12);

// μ < 1 regime: queries usually return nothing; the claim is O(1), i.e.
// flat time regardless of how tiny μ gets (β sweeps the denominator up).
void BM_HaltQuerySubOne(benchmark::State& state) {
  const int beta_log2 = static_cast<int>(state.range(0));
  const auto weights =
      dpss::bench::MakeWeights(kN, dpss::bench::WeightDist::kUniform, 4);
  dpss::DpssSampler s(weights, 5);
  dpss::RandomEngine rng(6);
  const dpss::Rational64 beta{uint64_t{1} << beta_log2, 1};
  for (auto _ : state) {
    auto t = s.Sample({0, 1}, beta, rng);
    benchmark::DoNotOptimize(t);
  }
  state.counters["mu"] = s.ExpectedSampleSize({0, 1}, beta);
}
BENCHMARK(BM_HaltQuerySubOne)->DenseRange(36, 60, 6);

}  // namespace

BENCHMARK_MAIN();
