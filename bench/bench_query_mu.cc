// Experiment E2 — query time vs expected output size μ at fixed n.
//
// Paper claim (Theorem 4.8 / Lemma 4.11): query time is O(1 + μ). Expected
// shape: an affine line in μ — a constant dispatch cost plus a per-output
// cost.
//
// Queries run through DpssSampler::SampleInto with a reused output buffer:
// on the u128 fast path a warmed-up query performs zero heap allocations,
// so the numbers here measure arithmetic, not the allocator. Results are
// also written to BENCH_query_mu.json for cross-PR tracking (compare two
// runs with tools/bench_diff).

#include <benchmark/benchmark.h>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "core/dpss_sampler.h"

namespace {

constexpr uint64_t kN = 1 << 20;

// Shared measurement loop; `force_bigint` selects the exact-arithmetic
// ablation reference for the u128 fast path (the distribution is identical
// by construction, only the arithmetic differs).
void RunQueryByMu(benchmark::State& state, bool force_bigint) {
  const uint64_t mu = state.range(0);
  const auto weights =
      dpss::bench::MakeWeights(kN, dpss::bench::WeightDist::kUniform, 1);
  dpss::DpssSampler s(weights, 2);
  s.SetForceBigIntArithmetic(force_bigint);
  dpss::RandomEngine rng(3);
  const dpss::Rational64 alpha = dpss::bench::AlphaForMu(mu);
  std::vector<dpss::DpssSampler::ItemId> out;
  uint64_t out_items = 0;
  for (auto _ : state) {
    s.SampleInto(alpha, {0, 1}, rng, &out);
    out_items += out.size();
    benchmark::DoNotOptimize(out.data());
  }
  const double realized =
      static_cast<double>(out_items) / static_cast<double>(state.iterations());
  state.counters["mu"] = realized;
  state.counters["n"] = static_cast<double>(kN);
  state.SetItemsProcessed(static_cast<int64_t>(out_items));
}

void BM_HaltQueryByMu(benchmark::State& state) {
  RunQueryByMu(state, /*force_bigint=*/false);
}
BENCHMARK(BM_HaltQueryByMu)
    ->Arg(1)
    ->Arg(4)
    ->Arg(32)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(1 << 12);

void BM_HaltQueryByMuBigInt(benchmark::State& state) {
  RunQueryByMu(state, /*force_bigint=*/true);
}
BENCHMARK(BM_HaltQueryByMuBigInt)->Arg(1)->Arg(32)->Arg(1024);

// μ < 1 regime: queries usually return nothing; the claim is O(1), i.e.
// flat time regardless of how tiny μ gets (β sweeps the denominator up).
void BM_HaltQuerySubOne(benchmark::State& state) {
  const int beta_log2 = static_cast<int>(state.range(0));
  const auto weights =
      dpss::bench::MakeWeights(kN, dpss::bench::WeightDist::kUniform, 4);
  dpss::DpssSampler s(weights, 5);
  dpss::RandomEngine rng(6);
  const dpss::Rational64 beta{uint64_t{1} << beta_log2, 1};
  std::vector<dpss::DpssSampler::ItemId> out;
  for (auto _ : state) {
    s.SampleInto({0, 1}, beta, rng, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["mu"] = s.ExpectedSampleSize({0, 1}, beta);
  state.counters["n"] = static_cast<double>(kN);
}
BENCHMARK(BM_HaltQuerySubOne)->DenseRange(36, 60, 6);

}  // namespace

int main(int argc, char** argv) {
  return dpss::bench::RunWithJsonReport(argc, argv, "BENCH_query_mu.json");
}
