// Interface-overhead experiment — what does the unified dpss::Sampler
// surface cost over direct concrete calls, and what do batched mutations
// buy back?
//
//   * BM_DirectSampleInto vs BM_InterfaceSampleInto: identically
//     constructed n = 2^20 instances (same incremental insert stream, same
//     seeds) queried through DpssSampler::SampleInto directly and through
//     Sampler::SampleInto ("halt" backend: virtual dispatch + Status
//     plumbing). Acceptance gate for the API redesign: <= 5% ns/query
//     overhead at every μ.
//   * BM_DirectSetWeight vs BM_InterfaceSetWeight vs BM_ApplyBatch: one
//     pre-generated SetWeight op stream replayed through the concrete
//     class, through per-op virtual calls, and through one ApplyBatch call
//     per kBatch ops; sec_per_op counters make the three comparable.
//
// Results are teed to BENCH_interface.json for cross-PR tracking.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "core/dpss_sampler.h"
#include "core/sampler.h"

namespace {

constexpr uint64_t kN = uint64_t{1} << 20;
constexpr int kBatch = 1024;
constexpr int kOpBatches = 16;

std::vector<uint64_t> BuildWeights(uint64_t seed) {
  return dpss::bench::MakeWeights(kN, dpss::bench::WeightDist::kUniform,
                                  seed);
}

// A stationary SetWeight stream over the bulk-inserted ids (slots
// 0..kN-1, generation 0): targets are uniform, new weights re-drawn from
// the construction distribution, so the weight profile never drifts
// however long the benchmark runs.
std::vector<std::vector<dpss::Op>> BuildOpBatches(uint64_t seed) {
  dpss::RandomEngine rng(seed);
  std::vector<std::vector<dpss::Op>> batches(kOpBatches);
  for (auto& batch : batches) {
    batch.reserve(kBatch);
    for (int i = 0; i < kBatch; ++i) {
      batch.push_back(dpss::Op::SetWeight(
          rng.NextBelow(kN), 1 + rng.NextBelow(uint64_t{1} << 20)));
    }
  }
  return batches;
}

// --- Query path ----------------------------------------------------------

void BM_DirectSampleInto(benchmark::State& state) {
  const uint64_t mu = state.range(0);
  const auto weights = BuildWeights(1);
  dpss::DpssSampler s(uint64_t{2});
  for (const uint64_t w : weights) s.Insert(w);
  dpss::RandomEngine rng(3);
  const dpss::Rational64 alpha = dpss::bench::AlphaForMu(mu);
  std::vector<dpss::DpssSampler::ItemId> out;
  for (auto _ : state) {
    s.SampleInto(alpha, {0, 1}, rng, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["mu"] = static_cast<double>(mu);
  state.counters["n"] = static_cast<double>(kN);
}
BENCHMARK(BM_DirectSampleInto)->Arg(1)->Arg(32)->Arg(1024);

void BM_InterfaceSampleInto(benchmark::State& state) {
  const uint64_t mu = state.range(0);
  const auto weights = BuildWeights(1);
  dpss::SamplerSpec spec;
  spec.seed = 2;
  auto s = dpss::MakeSampler("halt", spec);
  s->InsertBatch(weights, nullptr);
  dpss::RandomEngine rng(3);
  const dpss::Rational64 alpha = dpss::bench::AlphaForMu(mu);
  std::vector<dpss::ItemId> out;
  for (auto _ : state) {
    s->SampleInto(alpha, {0, 1}, rng, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["mu"] = static_cast<double>(mu);
  state.counters["n"] = static_cast<double>(kN);
}
BENCHMARK(BM_InterfaceSampleInto)->Arg(1)->Arg(32)->Arg(1024);

// --- Update path ---------------------------------------------------------

void BM_DirectSetWeight(benchmark::State& state) {
  const auto weights = BuildWeights(4);
  dpss::DpssSampler s(uint64_t{5});
  for (const uint64_t w : weights) s.Insert(w);
  const auto batches = BuildOpBatches(6);
  size_t b = 0;
  for (auto _ : state) {
    for (const dpss::Op& op : batches[b]) {
      s.SetWeight(op.id, op.weight);
    }
    b = (b + 1) % kOpBatches;
  }
  state.counters["sec_per_op"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kBatch,
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
  state.counters["batch"] = kBatch;
}
BENCHMARK(BM_DirectSetWeight);

void BM_InterfaceSetWeight(benchmark::State& state) {
  const auto weights = BuildWeights(4);
  dpss::SamplerSpec spec;
  spec.seed = 5;
  auto s = dpss::MakeSampler("halt", spec);
  s->InsertBatch(weights, nullptr);
  const auto batches = BuildOpBatches(6);
  size_t b = 0;
  for (auto _ : state) {
    for (const dpss::Op& op : batches[b]) {
      benchmark::DoNotOptimize(s->SetWeight(op.id, op.weight));
    }
    b = (b + 1) % kOpBatches;
  }
  state.counters["sec_per_op"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kBatch,
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
  state.counters["batch"] = kBatch;
}
BENCHMARK(BM_InterfaceSetWeight);

void BM_ApplyBatch(benchmark::State& state) {
  const auto weights = BuildWeights(4);
  dpss::SamplerSpec spec;
  spec.seed = 5;
  auto s = dpss::MakeSampler("halt", spec);
  s->InsertBatch(weights, nullptr);
  const auto batches = BuildOpBatches(6);
  size_t b = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(s->ApplyBatch(batches[b], nullptr));
    b = (b + 1) % kOpBatches;
  }
  state.counters["sec_per_op"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kBatch,
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
  state.counters["batch"] = kBatch;
}
BENCHMARK(BM_ApplyBatch);

}  // namespace

int main(int argc, char** argv) {
  return dpss::bench::RunWithJsonReport(argc, argv, "BENCH_interface.json");
}
