// Experiment E3 — update cost vs n.
//
// Paper claim (Theorem 4.19): HALT supports each insert/delete in O(1)
// worst-case time (amortised O(1) across global rebuilds), and this repo
// extends that to in-place weight updates (SetWeight). A DSS-style
// structure must recompute all probabilities after any update to Σw —
// RebuildDpss makes that Ω(n) cost explicit.
//
// Expected shape: HALT flat in n; Rebuild linear in n. The max_ns counters
// expose HALT's rebuild spikes (amortisation, not hidden). Same-bucket
// SetWeight should be the cheapest operation of all: a pure entry patch
// with no hierarchy propagation.
//
// Like the query benches, results are teed to BENCH_update.json
// (ns/update per operation, n, rebuilds) for cross-PR tracking.

#include <benchmark/benchmark.h>

#include <chrono>

#include "baseline/rebuild_dpss.h"
#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "core/dpss_sampler.h"

namespace {

void BM_HaltInsertErasePair(benchmark::State& state) {
  const uint64_t n = state.range(0);
  const auto weights =
      dpss::bench::MakeWeights(n, dpss::bench::WeightDist::kUniform, 1);
  dpss::DpssSampler s(weights, 2);
  dpss::RandomEngine rng(3);
  double max_ns = 0;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto id = s.Insert(1 + rng.NextBelow(uint64_t{1} << 20));
    s.Erase(id);
    const auto t1 = std::chrono::steady_clock::now();
    const double ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count();
    if (ns > max_ns) max_ns = ns;
    benchmark::DoNotOptimize(id);
  }
  state.counters["max_pair_ns"] = max_ns;
  state.counters["rebuilds"] = static_cast<double>(s.rebuild_count());
}
BENCHMARK(BM_HaltInsertErasePair)->RangeMultiplier(4)->Range(1 << 10, 1 << 20);

void BM_HaltChurn(benchmark::State& state) {
  // Random replacement churn at steady-state size n (delete a random live
  // item, insert a fresh one).
  const uint64_t n = state.range(0);
  const auto weights =
      dpss::bench::MakeWeights(n, dpss::bench::WeightDist::kExponentialSpread,
                               4);
  dpss::DpssSampler s(weights, 5);
  std::vector<dpss::DpssSampler::ItemId> live;
  for (uint64_t i = 0; i < n; ++i) live.push_back(i);
  dpss::RandomEngine rng(6);
  for (auto _ : state) {
    const size_t idx = rng.NextBelow(live.size());
    s.Erase(live[idx]);
    live[idx] = s.Insert(1 + rng.NextBelow(uint64_t{1} << 30));
    benchmark::DoNotOptimize(live[idx]);
  }
}
BENCHMARK(BM_HaltChurn)->RangeMultiplier(4)->Range(1 << 10, 1 << 20);

void BM_HaltSetWeightSameBucket(benchmark::State& state) {
  // The O(1) best case: the new weight stays in the item's level-1 bucket,
  // so the update is a pure in-place patch (no relocation, no propagation).
  const uint64_t n = state.range(0);
  const auto weights =
      dpss::bench::MakeWeights(n, dpss::bench::WeightDist::kUniform, 7);
  dpss::DpssSampler s(weights, 8);
  std::vector<dpss::DpssSampler::ItemId> live;
  for (uint64_t i = 0; i < n; ++i) live.push_back(i);
  dpss::RandomEngine rng(9);
  double max_ns = 0;
  for (auto _ : state) {
    const size_t idx = rng.NextBelow(live.size());
    const uint64_t bucket_floor =
        uint64_t{1} << s.GetWeight(live[idx]).BucketIndex();
    // A fresh weight drawn from [2^b, 2^{b+1}): same bucket by definition.
    const uint64_t w = bucket_floor + rng.NextBelow(bucket_floor);
    const auto t0 = std::chrono::steady_clock::now();
    s.SetWeight(live[idx], w);
    const auto t1 = std::chrono::steady_clock::now();
    const double ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count();
    if (ns > max_ns) max_ns = ns;
  }
  state.counters["max_update_ns"] = max_ns;
  state.counters["rebuilds"] = static_cast<double>(s.rebuild_count());
}
BENCHMARK(BM_HaltSetWeightSameBucket)
    ->RangeMultiplier(4)
    ->Range(1 << 10, 1 << 20);

void BM_HaltSetWeightRebucket(benchmark::State& state) {
  // The general case: random new weights, usually changing buckets, so the
  // update degrades to an id-preserving internal erase+reinsert.
  const uint64_t n = state.range(0);
  const auto weights =
      dpss::bench::MakeWeights(n, dpss::bench::WeightDist::kExponentialSpread,
                               10);
  dpss::DpssSampler s(weights, 11);
  std::vector<dpss::DpssSampler::ItemId> live;
  for (uint64_t i = 0; i < n; ++i) live.push_back(i);
  dpss::RandomEngine rng(12);
  double max_ns = 0;
  for (auto _ : state) {
    const size_t idx = rng.NextBelow(live.size());
    const int e = static_cast<int>(rng.NextBelow(40));
    const uint64_t w = (uint64_t{1} << e) + rng.NextBelow(uint64_t{1} << e);
    const auto t0 = std::chrono::steady_clock::now();
    s.SetWeight(live[idx], w);
    const auto t1 = std::chrono::steady_clock::now();
    const double ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count();
    if (ns > max_ns) max_ns = ns;
  }
  state.counters["max_update_ns"] = max_ns;
  state.counters["rebuilds"] = static_cast<double>(s.rebuild_count());
}
BENCHMARK(BM_HaltSetWeightRebucket)
    ->RangeMultiplier(4)
    ->Range(1 << 10, 1 << 20);

void BM_RebuildDpssUpdate(benchmark::State& state) {
  const uint64_t n = state.range(0);
  dpss::RebuildDpss s(dpss::bench::AlphaForMu(8), {0, 1});
  dpss::RandomEngine rng(7);
  for (uint64_t i = 0; i < n; ++i) s.Insert(1 + rng.NextBelow(1u << 20));
  for (auto _ : state) {
    const auto id = s.Insert(1 + rng.NextBelow(1u << 20));
    s.Erase(id);
  }
}
BENCHMARK(BM_RebuildDpssUpdate)->RangeMultiplier(4)->Range(1 << 10, 1 << 14);

void BM_RebuildDpssSetWeight(benchmark::State& state) {
  // A weight change costs a full Ω(n) rebuild in the DSS-style baseline —
  // the apples-to-apples contrast for BM_HaltSetWeight*.
  const uint64_t n = state.range(0);
  dpss::RebuildDpss s(dpss::bench::AlphaForMu(8), {0, 1});
  dpss::RandomEngine rng(13);
  std::vector<dpss::RebuildDpss::ItemId> live;
  for (uint64_t i = 0; i < n; ++i) {
    live.push_back(s.Insert(1 + rng.NextBelow(1u << 20)));
  }
  for (auto _ : state) {
    const size_t idx = rng.NextBelow(live.size());
    s.SetWeight(live[idx], 1 + rng.NextBelow(1u << 20));
  }
}
BENCHMARK(BM_RebuildDpssSetWeight)->RangeMultiplier(4)->Range(1 << 10, 1 << 14);

}  // namespace

int main(int argc, char** argv) {
  return dpss::bench::RunWithJsonReport(argc, argv, "BENCH_update.json");
}
