// Experiment E3 — update cost vs n.
//
// Paper claim (Theorem 4.19): HALT supports each insert/delete in O(1)
// worst-case time (amortised O(1) across global rebuilds). A DSS-style
// structure must recompute all probabilities after any update to Σw —
// RebuildDpss makes that Ω(n) cost explicit.
//
// Expected shape: HALT flat in n; Rebuild linear in n. The max_ns counter
// exposes HALT's rebuild spikes (amortisation, not hidden).

#include <benchmark/benchmark.h>

#include <chrono>

#include "baseline/rebuild_dpss.h"
#include "bench/bench_util.h"
#include "core/dpss_sampler.h"

namespace {

void BM_HaltInsertErasePair(benchmark::State& state) {
  const uint64_t n = state.range(0);
  const auto weights =
      dpss::bench::MakeWeights(n, dpss::bench::WeightDist::kUniform, 1);
  dpss::DpssSampler s(weights, 2);
  dpss::RandomEngine rng(3);
  double max_ns = 0;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto id = s.Insert(1 + rng.NextBelow(uint64_t{1} << 20));
    s.Erase(id);
    const auto t1 = std::chrono::steady_clock::now();
    const double ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count();
    if (ns > max_ns) max_ns = ns;
    benchmark::DoNotOptimize(id);
  }
  state.counters["max_pair_ns"] = max_ns;
  state.counters["rebuilds"] = static_cast<double>(s.rebuild_count());
}
BENCHMARK(BM_HaltInsertErasePair)->RangeMultiplier(4)->Range(1 << 10, 1 << 20);

void BM_HaltChurn(benchmark::State& state) {
  // Random replacement churn at steady-state size n (delete a random live
  // item, insert a fresh one).
  const uint64_t n = state.range(0);
  const auto weights =
      dpss::bench::MakeWeights(n, dpss::bench::WeightDist::kExponentialSpread,
                               4);
  dpss::DpssSampler s(weights, 5);
  std::vector<dpss::DpssSampler::ItemId> live;
  for (uint64_t i = 0; i < n; ++i) live.push_back(i);
  dpss::RandomEngine rng(6);
  for (auto _ : state) {
    const size_t idx = rng.NextBelow(live.size());
    s.Erase(live[idx]);
    live[idx] = s.Insert(1 + rng.NextBelow(uint64_t{1} << 30));
    benchmark::DoNotOptimize(live[idx]);
  }
}
BENCHMARK(BM_HaltChurn)->RangeMultiplier(4)->Range(1 << 10, 1 << 20);

void BM_RebuildDpssUpdate(benchmark::State& state) {
  const uint64_t n = state.range(0);
  dpss::RebuildDpss s(dpss::bench::AlphaForMu(8), {0, 1});
  dpss::RandomEngine rng(7);
  for (uint64_t i = 0; i < n; ++i) s.Insert(1 + rng.NextBelow(1u << 20));
  for (auto _ : state) {
    const auto id = s.Insert(1 + rng.NextBelow(1u << 20));
    s.Erase(id);
  }
}
BENCHMARK(BM_RebuildDpssUpdate)->RangeMultiplier(4)->Range(1 << 10, 1 << 14);

}  // namespace

BENCHMARK_MAIN();
